// ace_shell — a command-line console onto a live ACE.
//
// Boots a small demo environment (infrastructure + a conference room with
// a camera, a projector and an iButton reader), then reads lines from
// stdin of the form
//
//     @<service-name> <ace command>;        e.g.  @cam1 ptzMove pan=10 tilt=2;
//     @<service-name> info;                       @asd query class="Service/Device*";
//     .services                              (list the directory)
//     .quit
//
// resolving each service through the ASD and printing the reply command.
// With no stdin (or end of input) it runs a short built-in demo script, so
// it is usable both interactively and in CI.
#include <cstdio>
#include <iostream>
#include <sstream>

#include "daemon/devices.hpp"
#include "daemon/host.hpp"
#include "services/asd.hpp"
#include "services/auth_db.hpp"
#include "services/identification.hpp"
#include "services/net_logger.hpp"
#include "services/room_db.hpp"
#include "services/user_db.hpp"

using namespace ace;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

daemon::DaemonConfig cfg(const std::string& name, const std::string& room) {
  daemon::DaemonConfig c;
  c.name = name;
  c.room = room;
  return c;
}

void run_line(daemon::Environment& env, daemon::AceClient& client,
              const std::string& line) {
  if (line.empty() || line[0] == '#') return;
  if (line == ".quit") std::exit(0);
  if (line == ".services") {
    auto all = services::AsdClient(client, env.asd_address).query("*", "*", "*");
    if (!all.ok()) {
      std::printf("! %s\n", all.error().to_string().c_str());
      return;
    }
    for (const auto& svc : all.value())
      std::printf("  %-16s %-22s room=%-12s class=%s\n", svc.name.c_str(),
                  svc.address.to_string().c_str(), svc.room.c_str(),
                  svc.service_class.c_str());
    return;
  }
  if (line[0] != '@') {
    std::printf("! expected '@service command...;', '.services' or '.quit'\n");
    return;
  }
  auto space = line.find(' ');
  if (space == std::string::npos) {
    std::printf("! missing command after service name\n");
    return;
  }
  std::string service = line.substr(1, space - 1);
  std::string command_text = line.substr(space + 1);

  auto parsed = cmdlang::Parser::parse(command_text);
  if (!parsed.ok()) {
    std::printf("! parse error: %s\n", parsed.error().message.c_str());
    return;
  }
  // Infrastructure services live at well-known sockets and are not in the
  // directory; everything else resolves through the ASD.
  net::Address target;
  if (service == "asd") {
    target = env.asd_address;
  } else if (service == "room-db") {
    target = env.room_db_address;
  } else if (service == "net-logger") {
    target = env.net_logger_address;
  } else if (service == "auth-db") {
    target = env.auth_db_address;
  } else {
    auto loc = services::AsdClient(client, env.asd_address).lookup(service);
    if (!loc.ok()) {
      std::printf("! no such service '%s' in the ASD\n", service.c_str());
      return;
    }
    target = loc->address;
  }
  auto reply = client.call(target, parsed.value());
  if (!reply.ok()) {
    std::printf("! call failed: %s\n", reply.error().to_string().c_str());
    return;
  }
  std::printf("  %s\n", reply->to_string().c_str());
}

}  // namespace

int main() {
  daemon::Environment env(6);
  env.asd_address = {"infra", daemon::kAsdPort};
  env.room_db_address = {"infra", daemon::kRoomDbPort};
  env.net_logger_address = {"infra", daemon::kNetLoggerPort};
  env.auth_db_address = {"infra", daemon::kAuthDbPort};

  daemon::DaemonHost infra(env, "infra");
  {
    daemon::DaemonConfig c = cfg("asd", "machine-room");
    c.port = daemon::kAsdPort;
    c.register_with_room_db = false;
    infra.add_daemon<services::AsdDaemon>(c, services::AsdOptions{});
    c = cfg("room-db", "machine-room");
    c.port = daemon::kRoomDbPort;
    infra.add_daemon<services::RoomDbDaemon>(c);
    c = cfg("net-logger", "machine-room");
    c.port = daemon::kNetLoggerPort;
    infra.add_daemon<services::NetLoggerDaemon>(c,
                                                services::NetLoggerOptions{});
    c = cfg("auth-db", "machine-room");
    c.port = daemon::kAuthDbPort;
    infra.add_daemon<services::AuthDbDaemon>(c);
  }
  if (!infra.start_all().ok()) return 1;

  daemon::DaemonHost room(env, "hawk-box");
  auto& camera = room.add_daemon<daemon::PtzCameraDaemon>(
      cfg("cam1", "hawk"), daemon::vcc4_spec());
  auto& projector = room.add_daemon<daemon::ProjectorDaemon>(
      cfg("proj1", "hawk"), daemon::epson7350_spec());
  auto& aud = room.add_daemon<services::UserDbDaemon>(cfg("aud", "hawk"));
  auto& reader =
      room.add_daemon<services::IButtonDaemon>(cfg("door1", "hawk"));
  for (daemon::ServiceDaemon* d :
       std::vector<daemon::ServiceDaemon*>{&camera, &projector, &aud,
                                           &reader}) {
    if (!d->start().ok()) return 1;
  }

  auto& console = env.network().add_host("console");
  daemon::AceClient client(env, console, env.issue_identity("user/operator"));

  std::puts("ace_shell — demo ACE is up. Commands:");
  std::puts("  @<service> <command...;>   .services   .quit");

  std::string line;
  bool had_input = false;
  while (std::getline(std::cin, line)) {
    had_input = true;
    std::printf("> %s\n", line.c_str());
    run_line(env, client, line);
  }

  if (!had_input) {
    std::puts("(no stdin; running the built-in demo script)");
    const char* script[] = {
        ".services",
        "@cam1 deviceOn;",
        "@cam1 ptzMove pan=20 tilt=5 zoom=3;",
        "@cam1 ptzGet;",
        "@proj1 deviceOn;",
        "@proj1 projSetInput input=network;",
        "@proj1 projGet;",
        "@aud userAdd username=demo fullname=\"Demo User\" ibutton=\"IB-1\";",
        "@door1 ibuttonRead serial=\"IB-1\" station=\"hawk-door\";",
        "@asd count;",
        "@net-logger logCount;",
    };
    for (const char* cmd : script) {
      std::printf("> %s\n", cmd);
      run_line(env, client, cmd);
    }
  }
  return 0;
}
