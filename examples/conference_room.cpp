// Conference room walkthrough — the paper's Scenarios 2, 3 and 5 as one
// runnable program: John identifies himself at the podium fingerprint
// scanner; the ID Monitor updates his location and brings his workspace to
// the podium screen; John then uses the device GUI to turn on the
// projector, display his workspace with the camera picture-in-picture, and
// point the camera at the podium.
#include <cstdio>
#include <thread>

#include "apps/admin_gui.hpp"
#include "apps/workspace_backend.hpp"
#include "daemon/devices.hpp"
#include "services/asd.hpp"
#include "services/auth_db.hpp"
#include "services/identification.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "services/net_logger.hpp"
#include "services/room_db.hpp"
#include "services/user_db.hpp"
#include "services/workspace.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {
daemon::DaemonConfig cfg(const std::string& name, const std::string& room) {
  daemon::DaemonConfig c;
  c.name = name;
  c.room = room;
  return c;
}
}  // namespace

int main() {
  daemon::Environment env(2);
  env.asd_address = {"infra", daemon::kAsdPort};
  env.room_db_address = {"infra", daemon::kRoomDbPort};
  env.net_logger_address = {"infra", daemon::kNetLoggerPort};
  env.auth_db_address = {"infra", daemon::kAuthDbPort};

  daemon::DaemonHost infra(env, "infra");
  {
    daemon::DaemonConfig c = cfg("asd", "machine-room");
    c.port = daemon::kAsdPort;
    c.register_with_room_db = false;
    infra.add_daemon<services::AsdDaemon>(c, services::AsdOptions{});
    c = cfg("room-db", "machine-room");
    c.port = daemon::kRoomDbPort;
    infra.add_daemon<services::RoomDbDaemon>(c);
    c = cfg("net-logger", "machine-room");
    c.port = daemon::kNetLoggerPort;
    infra.add_daemon<services::NetLoggerDaemon>(c,
                                                services::NetLoggerOptions{});
    c = cfg("auth-db", "machine-room");
    c.port = daemon::kAuthDbPort;
    infra.add_daemon<services::AuthDbDaemon>(c);
  }
  if (!infra.start_all().ok()) return 1;

  // Compute hosts and the podium access point.
  daemon::DaemonHost bar(env, "bar"), tube(env, "tube"), podium(env, "podium");
  for (auto* host : {&bar, &tube}) {
    host->add_daemon<services::HrmDaemon>(
        cfg("hrm-" + host->name(), "machine-room"));
    host->add_daemon<services::HalDaemon>(
        cfg("hal-" + host->name(), "machine-room"));
    (void)host->start_all();
  }
  services::SrmOptions srm_options;
  srm_options.cache_ttl = 0ms;
  auto& srm =
      bar.add_daemon<services::SrmDaemon>(cfg("srm", "machine-room"),
                                          srm_options);
  auto& sal = bar.add_daemon<services::SalDaemon>(cfg("sal", "machine-room"));
  auto& aud = tube.add_daemon<services::UserDbDaemon>(cfg("aud", "machine-room"));
  auto& wss = tube.add_daemon<services::WssDaemon>(cfg("wss", "machine-room"));
  (void)srm.start();
  (void)sal.start();
  (void)aud.start();
  (void)wss.start();

  apps::VncWorkspaceFactory factory(env, {&bar, &tube},
                                    {{"podium", &podium}});
  factory.install(wss);

  auto& fiu = podium.add_daemon<services::FiuDaemon>(cfg("fiu", "hawk"));
  (void)fiu.start();
  auto& id_monitor = tube.add_daemon<services::IdMonitorDaemon>(
      cfg("id-monitor", "machine-room"));
  (void)id_monitor.start();
  (void)id_monitor.watch_device(fiu.address());

  auto& camera = podium.add_daemon<daemon::PtzCameraDaemon>(
      cfg("hawk_camera", "hawk"), daemon::vcc4_spec());
  auto& projector = podium.add_daemon<daemon::ProjectorDaemon>(
      cfg("hawk_projector", "hawk"), daemon::epson7350_spec());
  (void)camera.start();
  (void)projector.start();
  std::puts("[setup] ACE is up: infra + 2 compute hosts + podium devices");

  // Provision John (Scenario 1, abbreviated).
  auto& admin_pc = env.network().add_host("admin-pc");
  daemon::AceClient admin(env, admin_pc, env.issue_identity("user/admin"));
  CmdLine add("userAdd");
  add.arg("username", Word{"john"});
  add.arg("fullname", "John Doe");
  add.arg("fingerprint", "fp_john");
  (void)admin.call(aud.address(), add, daemon::kCallOk);
  CmdLine enroll("fiuEnroll");
  enroll.arg("template", Word{"fp_john"});
  enroll.arg("features", cmdlang::real_vector({0.12, 0.88, 0.34, 0.56}));
  (void)admin.call(fiu.address(), enroll, daemon::kCallOk);
  std::puts("[setup] John registered with the AUD and enrolled at the FIU");

  // --- Scenario 2: identification at the podium ---------------------------
  std::puts("\n[scenario 2] John presses his thumb to the podium scanner...");
  CmdLine scan("fiuScan");
  scan.arg("features", cmdlang::real_vector({0.12, 0.88, 0.34, 0.56}));
  scan.arg("station", "podium");
  auto id = admin.call(fiu.address(), scan, daemon::kCallOk);
  if (!id.ok()) {
    std::fprintf(stderr, "identification failed\n");
    return 1;
  }
  std::printf("  FIU: positively identified '%s' (distance %.3f)\n",
              id->get_text("user").c_str(), id->get_real("distance"));

  // --- Scenario 3: the workspace appears at the podium --------------------
  std::puts("[scenario 3] ID Monitor -> AUD location + WSS -> VNC viewer...");
  for (int i = 0; i < 500; ++i) {
    auto ws = wss.workspace("john/default");
    auto* viewer = factory.viewer_on("podium");
    if (ws && viewer) {
      auto* server = factory.server_at(ws->server);
      if (server && server->framebuffer_hash() == viewer->framebuffer_hash()) {
        std::printf("  workspace john/default (server on %s) now visible at "
                    "the podium\n",
                    ws->server.host.c_str());
        break;
      }
    }
    std::this_thread::sleep_for(10ms);
  }
  auto john = aud.user("john");
  if (john)
    std::printf("  AUD: John's location is room '%s', station '%s'\n",
                john->location_room.c_str(), john->location_station.c_str());

  // --- Scenario 5: device control through the GUI -------------------------
  std::puts("[scenario 5] John opens the ACE device GUI...");
  apps::AdminGuiModel gui(env, admin);
  if (!gui.refresh().ok()) return 1;
  for (const auto& room : gui.tree()) {
    std::printf("  room '%s': ", room.room.c_str());
    for (const auto& svc : room.services) std::printf("%s ", svc.name.c_str());
    std::puts("");
  }

  (void)gui.invoke("hawk_projector", CmdLine("deviceOn"));
  CmdLine display("projDisplay");
  display.arg("source", "john/default");
  (void)gui.invoke("hawk_projector", display);
  CmdLine pip("projPictureInPicture");
  pip.arg("source", "hawk_camera");
  pip.arg("enable", Word{"on"});
  (void)gui.invoke("hawk_projector", pip);
  (void)gui.invoke("hawk_camera", CmdLine("deviceOn"));
  CmdLine point("ptzPointAt");
  point.arg("x", 2.0);
  point.arg("y", 4.0);
  (void)gui.invoke("hawk_camera", point);

  auto pstate = projector.projector_state();
  auto cstate = camera.ptz_state();
  std::printf("  projector: showing '%s', pip=%s from '%s'\n",
              pstate.source_service.c_str(),
              pstate.picture_in_picture ? "on" : "off",
              pstate.pip_source.c_str());
  std::printf("  camera: pan=%.1f deg toward the podium\n", cstate.pan);
  std::puts("\nJohn is now ready to give his presentation.");
  return 0;
}
