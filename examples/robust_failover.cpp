// Robust applications demo — the reliability story the paper builds toward
// (Ch 6, §5.2-5.3, Ch 9):
//   * state checkpointed into the 3-way replicated persistent store,
//   * a replica crash that the store rides out,
//   * a service crash detected by ASD lease expiry and repaired by the
//     Robustness Manager through SAL/HAL,
//   * a mobile-socket client that fails over to the restarted instance
//     without ever holding a fixed address.
#include <cstdio>
#include <thread>

#include "apps/mobile.hpp"
#include "services/asd.hpp"
#include "services/auth_db.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "services/net_logger.hpp"
#include "services/room_db.hpp"
#include "store/persistent_store.hpp"
#include "store/robustness.hpp"
#include "store/store_client.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {
daemon::DaemonConfig cfg(const std::string& name) {
  daemon::DaemonConfig c;
  c.name = name;
  c.room = "machine-room";
  return c;
}
}  // namespace

int main() {
  daemon::Environment env(5);
  env.asd_address = {"infra", daemon::kAsdPort};
  env.room_db_address = {"infra", daemon::kRoomDbPort};
  env.net_logger_address = {"infra", daemon::kNetLoggerPort};
  env.auth_db_address = {"infra", daemon::kAuthDbPort};

  daemon::DaemonHost infra(env, "infra");
  {
    daemon::DaemonConfig c = cfg("asd");
    c.port = daemon::kAsdPort;
    c.register_with_room_db = false;
    infra.add_daemon<services::AsdDaemon>(c, services::AsdOptions{});
    c = cfg("room-db");
    c.port = daemon::kRoomDbPort;
    infra.add_daemon<services::RoomDbDaemon>(c);
    c = cfg("net-logger");
    c.port = daemon::kNetLoggerPort;
    infra.add_daemon<services::NetLoggerDaemon>(c,
                                                services::NetLoggerOptions{});
    c = cfg("auth-db");
    c.port = daemon::kAuthDbPort;
    infra.add_daemon<services::AuthDbDaemon>(c);
  }
  if (!infra.start_all().ok()) return 1;

  // --- three-replica persistent store (Fig 17) ----------------------------
  std::vector<std::unique_ptr<daemon::DaemonHost>> store_hosts;
  std::vector<store::PersistentStoreDaemon*> replicas;
  for (int i = 0; i < 3; ++i) {
    store_hosts.push_back(std::make_unique<daemon::DaemonHost>(
        env, "store" + std::to_string(i + 1)));
    daemon::DaemonConfig c = cfg("store" + std::to_string(i + 1));
    c.port = 6000;
    replicas.push_back(
        &store_hosts.back()->add_daemon<store::PersistentStoreDaemon>(c,
                                                                      i + 1));
  }
  std::vector<net::Address> replica_addrs;
  for (int i = 0; i < 3; ++i) {
    std::vector<net::Address> peers;
    for (int j = 0; j < 3; ++j)
      if (j != i) peers.push_back(replicas[j]->address());
    replicas[i]->set_peers(peers);
    if (!replicas[i]->start().ok()) return 1;
    replica_addrs.push_back(replicas[i]->address());
  }
  std::puts("[1] persistent store: 3 replicas meshed and serving");

  auto& app_pc = env.network().add_host("app-pc");
  daemon::AceClient client(env, app_pc, env.issue_identity("svc/app"));
  store::StoreClient store(client, replica_addrs);
  (void)store.save_state("demo-app", "progress",
                         util::to_bytes("slide 17 of 42"));
  std::puts("[2] application state checkpointed ('slide 17 of 42')");

  store_hosts[0]->fail();
  auto loaded = store.load_state("demo-app", "progress");
  std::printf("[3] replica 1 crashed; state still readable: '%s'\n",
              loaded.ok() ? util::to_string(loaded.value()).c_str()
                          : loaded.error().to_string().c_str());

  // --- robustness manager + relaunch (Ch 9 future work, implemented) ------
  daemon::DaemonHost worker(env, "worker");
  auto& hal = worker.add_daemon<services::HalDaemon>(cfg("hal"));
  auto& sal = worker.add_daemon<services::SalDaemon>(cfg("sal"));
  if (!hal.start().ok() || !sal.start().ok()) return 1;

  daemon::DaemonConfig frag_cfg = cfg("telemetry");
  frag_cfg.lease = 300ms;
  frag_cfg.lease_renew = 100ms;
  auto* telemetry = &worker.add_daemon<services::HrmDaemon>(frag_cfg);
  if (!telemetry->start().ok()) return 1;

  hal.register_launchable("telemetry", [&worker]() -> util::Status {
    daemon::DaemonConfig c = cfg("telemetry");
    c.lease = std::chrono::milliseconds(300);
    c.lease_renew = std::chrono::milliseconds(100);
    auto& revived = worker.add_daemon<services::HrmDaemon>(c);
    return revived.start();
  });

  auto& rm = worker.add_daemon<store::RobustnessManagerDaemon>(cfg("rm"));
  if (!rm.start().ok()) return 1;
  CmdLine manage("rmRegister");
  manage.arg("name", Word{"telemetry"});
  manage.arg("kind", Word{"restart"});
  manage.arg("host", "worker");
  if (!client.call(rm.address(), manage, daemon::kCallOk).ok()) return 1;
  std::puts("[4] 'telemetry' registered as a restart application");

  // The mobile client binds by class, not address.
  apps::MobileServiceClient mobile(env, client, "Service/Monitor/HRM*");
  auto first = mobile.call(CmdLine("hrmStatus"));
  if (!first.ok()) return 1;
  std::printf("[5] mobile client bound to %s\n",
              mobile.bound().to_string().c_str());

  telemetry->crash();
  std::puts("[6] telemetry daemon crashed (no deregistration!)");

  for (int i = 0; i < 500; ++i) {
    if (rm.total_restarts() > 0) break;
    std::this_thread::sleep_for(10ms);
  }
  std::printf("[7] robustness manager relaunched it (restarts=%d)\n",
              rm.total_restarts());
  std::this_thread::sleep_for(200ms);

  auto after = mobile.call(CmdLine("hrmStatus"));
  std::printf("[8] mobile client call after crash: %s (failovers=%d, now "
              "bound to %s)\n",
              after.ok() ? "ok" : after.error().to_string().c_str(),
              mobile.failovers(), mobile.bound().to_string().c_str());
  std::puts("failover demo complete.");
  return 0;
}
