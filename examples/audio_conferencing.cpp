// Two-site audio conferencing — the paper's Fig 15 pipeline, assembled
// from basic ACE services:
//
//   site A mic -> [mixer A] ---> distribution ---> site B speaker
//   site B mic -> [echo cancel B] -> back to site A, both legs recorded,
//   plus a text-to-speech announcement decoded back into an ACE command by
//   the speech-to-command service.
#include <cstdio>
#include <thread>

#include "daemon/devices.hpp"
#include "daemon/host.hpp"
#include "media/audio_services.hpp"
#include "media/dsp.hpp"
#include "services/asd.hpp"
#include "services/auth_db.hpp"
#include "services/net_logger.hpp"
#include "services/room_db.hpp"
#include "services/streaming.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {
daemon::DaemonConfig cfg(const std::string& name, const std::string& room) {
  daemon::DaemonConfig c;
  c.name = name;
  c.room = room;
  return c;
}
}  // namespace

int main() {
  daemon::Environment env(3);
  env.asd_address = {"infra", daemon::kAsdPort};
  env.room_db_address = {"infra", daemon::kRoomDbPort};
  env.net_logger_address = {"infra", daemon::kNetLoggerPort};

  daemon::DaemonHost infra(env, "infra");
  {
    daemon::DaemonConfig c = cfg("asd", "machine-room");
    c.port = daemon::kAsdPort;
    c.register_with_room_db = false;
    infra.add_daemon<services::AsdDaemon>(c, services::AsdOptions{});
    c = cfg("room-db", "machine-room");
    c.port = daemon::kRoomDbPort;
    infra.add_daemon<services::RoomDbDaemon>(c);
    c = cfg("net-logger", "machine-room");
    c.port = daemon::kNetLoggerPort;
    infra.add_daemon<services::NetLoggerDaemon>(c,
                                                services::NetLoggerOptions{});
  }
  if (!infra.start_all().ok()) return 1;

  daemon::DaemonHost site_a(env, "room-hawk"), site_b(env, "room-dove");
  auto& client_host = env.network().add_host("operator");
  daemon::AceClient client(env, client_host, env.issue_identity("user/op"));

  // Site A elements.
  auto& mic_a1 = site_a.add_daemon<media::AudioCaptureDaemon>(
      cfg("mic-a1", "hawk"), "micA1");
  auto& mic_a2 = site_a.add_daemon<media::AudioCaptureDaemon>(
      cfg("mic-a2", "hawk"), "micA2");
  auto& mixer_a = site_a.add_daemon<media::AudioMixerDaemon>(
      cfg("mixer-a", "hawk"), "siteA");
  auto& spk_a = site_a.add_daemon<media::AudioPlayDaemon>(cfg("spk-a", "hawk"));
  auto& tts = site_a.add_daemon<media::TextToSpeechDaemon>(
      cfg("tts", "hawk"), "announce");

  // Site B elements.
  auto& mic_b = site_b.add_daemon<media::AudioCaptureDaemon>(
      cfg("mic-b", "dove"), "micB");
  auto& spk_b = site_b.add_daemon<media::AudioPlayDaemon>(cfg("spk-b", "dove"));
  auto& stc = site_b.add_daemon<media::SpeechToCommandDaemon>(
      cfg("stc", "dove"));
  auto& camera_b = site_b.add_daemon<daemon::PtzCameraDaemon>(
      cfg("cam-b", "dove"), daemon::vcc4_spec());

  // Shared distribution + recorder.
  auto& dist = site_a.add_daemon<services::DistributionDaemon>(
      cfg("dist", "hawk"));
  auto& recorder = site_a.add_daemon<media::AudioRecorderDaemon>(
      cfg("recorder", "hawk"));

  const std::vector<daemon::ServiceDaemon*> pipeline = {
      &mic_a1, &mic_a2, &mixer_a, &spk_a, &tts,      &mic_b,
      &spk_b,  &stc,    &camera_b, &dist, &recorder};
  for (daemon::ServiceDaemon* d : pipeline) {
    if (!d->start().ok()) {
      std::fprintf(stderr, "failed to start %s\n", d->config().name.c_str());
      return 1;
    }
  }
  std::puts("[setup] two-site pipeline daemons running");

  // Wire the graph (all plumbing is ordinary ACE commands). The presenter
  // and audience microphones at site A are combined by the mixer; the
  // text-to-speech announcement travels as its own stream (in real DTMF
  // signalling, too, voice must not be mixed over the tones).
  mic_a1.add_sink(mixer_a.data_address());
  mic_a2.add_sink(mixer_a.data_address());
  for (const char* tag : {"micA1", "micA2"}) {
    CmdLine add("mixerAddInput");
    add.arg("stream", tag);
    if (!client.call(mixer_a.address(), add, daemon::kCallOk).ok()) return 1;
  }
  mixer_a.add_sink(dist.data_address());
  mic_b.add_sink(dist.data_address());
  tts.add_sink(dist.data_address());
  for (const auto& [stream, dest] :
       std::vector<std::pair<std::string, net::Address>>{
           {"siteA", spk_b.data_address()},
           {"siteA", recorder.data_address()},
           {"micB", spk_a.data_address()},
           {"micB", recorder.data_address()},
           {"announce", spk_b.data_address()},
           {"announce", stc.data_address()}}) {
    CmdLine add("distAddSink");
    add.arg("stream", stream);
    add.arg("dest", dest.to_string());
    if (!client.call(dist.address(), add, daemon::kCallOk).ok()) return 1;
  }
  std::puts("[setup] graph wired: mics -> mixer -> distribution -> speakers"
            " + recorder + speech-to-command");

  // Voice traffic from both sites (two speakers at site A get mixed).
  mic_a1.capture_push(media::sine_wave(440, 8000, 40 * media::kFrameSamples, 0));
  mic_a2.capture_push(media::sine_wave(523, 6000, 40 * media::kFrameSamples, 0));
  mic_b.capture_push(media::sine_wave(660, 8000, 40 * media::kFrameSamples, 0));
  std::this_thread::sleep_for(300ms);
  std::printf("[audio] site B speaker has played %llu frames; "
              "site A speaker %llu frames\n",
              static_cast<unsigned long long>(spk_b.frames_played()),
              static_cast<unsigned long long>(spk_a.frames_played()));
  std::printf("[record] recorder captured %zu samples of siteA and %zu of "
              "micB\n",
              recorder.recorded("siteA").size(),
              recorder.recorded("micB").size());

  // A spoken command travels the same audio path and lands on the camera.
  CmdLine target("stcSetTarget");
  target.arg("service", camera_b.address().to_string());
  (void)client.call(stc.address(), target, daemon::kCallOk);
  (void)client.call(camera_b.address(), CmdLine("deviceOn"), daemon::kCallOk);

  std::puts("[voice] announcing 'ptzMove pan=15 tilt=5;' over the conference"
            " audio...");
  CmdLine say("say");
  say.arg("text", "ptzMove pan=15 tilt=5;");
  (void)client.call(tts.address(), say, daemon::kCallOk);
  std::this_thread::sleep_for(300ms);
  CmdLine flush("stcFlush");
  flush.arg("stream", "announce");
  auto decoded = client.call(stc.address(), flush, daemon::kCallOk);
  if (decoded.ok()) {
    std::printf("[voice] speech-to-command decoded: %s (executed: %s)\n",
                decoded->get_text("decoded").c_str(),
                decoded->get_text("executed").c_str());
    auto state = camera_b.ptz_state();
    std::printf("[voice] camera at site B moved to pan=%.1f tilt=%.1f\n",
                state.pan, state.tilt);
  } else {
    std::printf("[voice] decode failed: %s\n",
                decoded.error().to_string().c_str());
  }

  std::puts("conference demo complete.");
  return 0;
}
