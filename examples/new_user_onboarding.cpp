// New-user onboarding — the paper's Scenario 1 (Fig 18), end to end:
// the administrator creates John's ACE account, enrolls his fingerprint,
// grants him KeyNote credentials, and the WSS provisions his default
// workspace by asking the SAL, which consults the SRM/HRMs to pick the
// least-loaded machine and delegates to that machine's HAL.
#include <cstdio>

#include "apps/workspace_backend.hpp"
#include "services/asd.hpp"
#include "services/auth_db.hpp"
#include "services/identification.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "services/net_logger.hpp"
#include "services/room_db.hpp"
#include "services/user_db.hpp"
#include "services/workspace.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {
daemon::DaemonConfig cfg(const std::string& name) {
  daemon::DaemonConfig c;
  c.name = name;
  c.room = "machine-room";
  return c;
}
}  // namespace

int main() {
  daemon::Environment env(4);
  env.asd_address = {"infra", daemon::kAsdPort};
  env.room_db_address = {"infra", daemon::kRoomDbPort};
  env.net_logger_address = {"infra", daemon::kNetLoggerPort};
  env.auth_db_address = {"infra", daemon::kAuthDbPort};

  daemon::DaemonHost infra(env, "infra");
  {
    daemon::DaemonConfig c = cfg("asd");
    c.port = daemon::kAsdPort;
    c.register_with_room_db = false;
    infra.add_daemon<services::AsdDaemon>(c, services::AsdOptions{});
    c = cfg("room-db");
    c.port = daemon::kRoomDbPort;
    infra.add_daemon<services::RoomDbDaemon>(c);
    c = cfg("net-logger");
    c.port = daemon::kNetLoggerPort;
    infra.add_daemon<services::NetLoggerDaemon>(c,
                                                services::NetLoggerOptions{});
    c = cfg("auth-db");
    c.port = daemon::kAuthDbPort;
    infra.add_daemon<services::AuthDbDaemon>(c);
  }
  if (!infra.start_all().ok()) return 1;

  // Two compute hosts with different load so the placement is visible.
  daemon::HostSpec fast;
  fast.bogomips = 2000;
  daemon::DaemonHost busy(env, "busy-box"), idle(env, "idle-box", fast);
  busy.set_base_load(0.8);
  for (auto* host : {&busy, &idle}) {
    host->add_daemon<services::HrmDaemon>(cfg("hrm-" + host->name()));
    host->add_daemon<services::HalDaemon>(cfg("hal-" + host->name()));
    (void)host->start_all();
  }
  services::SrmOptions srm_options;
  srm_options.cache_ttl = 0ms;
  auto& srm = busy.add_daemon<services::SrmDaemon>(cfg("srm"), srm_options);
  auto& sal = busy.add_daemon<services::SalDaemon>(cfg("sal"));
  auto& aud = busy.add_daemon<services::UserDbDaemon>(cfg("aud"));
  auto& wss = busy.add_daemon<services::WssDaemon>(cfg("wss"));
  (void)srm.start();
  (void)sal.start();
  (void)aud.start();
  (void)wss.start();

  daemon::DaemonHost podium(env, "podium");
  auto& fiu = podium.add_daemon<services::FiuDaemon>(cfg("fiu"));
  (void)fiu.start();

  apps::VncWorkspaceFactory factory(env, {&busy, &idle},
                                    {{"podium", &podium}});
  factory.install(wss);

  auto& admin_pc = env.network().add_host("admin-pc");
  daemon::AceClient admin(env, admin_pc, env.issue_identity("user/admin"));

  std::puts("John Doe is a new employee at ACECo...");

  // 1. Account in the AUD.
  CmdLine add("userAdd");
  add.arg("username", Word{"john"});
  add.arg("fullname", "John Doe");
  add.arg("password", "welcome1");
  add.arg("fingerprint", "fp_john");
  add.arg("pubkey", "user/john");
  if (!admin.call(aud.address(), add, daemon::kCallOk).ok()) return 1;
  std::puts("[1] administrator added John to the ACE User Database");

  // 2. Fingerprint enrollment at the FIU.
  CmdLine enroll("fiuEnroll");
  enroll.arg("template", Word{"fp_john"});
  enroll.arg("features", cmdlang::real_vector({0.3, 0.6, 0.1, 0.8, 0.5}));
  if (!admin.call(fiu.address(), enroll, daemon::kCallOk).ok()) return 1;
  std::puts("[2] fingerprint scanned and enrolled at the FIU");

  // 3. KeyNote credentials: admin delegates device control to John.
  env.register_principal("admin-key");
  keynote::Assertion policy;
  policy.authorizer = keynote::kPolicyAuthorizer;
  policy.licensees = keynote::licensee_key("admin-key");
  env.add_policy(policy);
  auto granted = services::grant_credential(
      admin, env.auth_db_address, env, "admin-key", "user/john",
      "app_domain == \"ace\" && command ~= \"ptz*\"",
      "John may drive the cameras");
  if (!granted.ok()) return 1;
  std::puts("[3] KeyNote credential stored in the Authorization Database");

  // 4. Default workspace: WSS -> SAL -> SRM -> HAL on the best host.
  CmdLine ws("wssDefault");
  ws.arg("owner", Word{"john"});
  auto created = admin.call(wss.address(), ws, daemon::kCallOk);
  if (!created.ok()) {
    std::fprintf(stderr, "workspace creation failed: %s\n",
                 created.error().to_string().c_str());
    return 1;
  }
  std::printf("[4] default workspace '%s' created; VNC server placed on "
              "'%s' (the less-loaded host)\n",
              created->get_text("workspace").c_str(),
              created->get_text("host").c_str());

  std::printf("\nJohn now has a workspace constantly running on %s.\n",
              created->get_text("host").c_str());
  return 0;
}
