// Quickstart: the smallest complete ACE.
//
// Boots the infrastructure services (ASD, Room Database, Network Logger,
// Authorization Database), starts a PTZ camera daemon in room "hawk"
// (which walks the paper's Fig 9 startup sequence), then acts as a client:
// discovers the camera through the ASD and drives it with ACE commands.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "daemon/devices.hpp"
#include "daemon/environment.hpp"
#include "daemon/host.hpp"
#include "services/asd.hpp"
#include "services/auth_db.hpp"
#include "services/net_logger.hpp"
#include "services/room_db.hpp"

using namespace ace;
using cmdlang::CmdLine;
using cmdlang::Word;

int main() {
  // 1. One environment = one ACE deployment (network + CA + policies).
  daemon::Environment env(/*seed=*/1);
  env.asd_address = {"infra", daemon::kAsdPort};
  env.room_db_address = {"infra", daemon::kRoomDbPort};
  env.net_logger_address = {"infra", daemon::kNetLoggerPort};
  env.auth_db_address = {"infra", daemon::kAuthDbPort};

  // 2. The infrastructure machine.
  daemon::DaemonHost infra(env, "infra");
  daemon::DaemonConfig asd_cfg;
  asd_cfg.name = "asd";
  asd_cfg.port = daemon::kAsdPort;
  asd_cfg.register_with_room_db = false;
  infra.add_daemon<services::AsdDaemon>(asd_cfg, services::AsdOptions{});
  daemon::DaemonConfig room_cfg;
  room_cfg.name = "room-db";
  room_cfg.port = daemon::kRoomDbPort;
  infra.add_daemon<services::RoomDbDaemon>(room_cfg);
  daemon::DaemonConfig log_cfg;
  log_cfg.name = "net-logger";
  log_cfg.port = daemon::kNetLoggerPort;
  infra.add_daemon<services::NetLoggerDaemon>(log_cfg,
                                              services::NetLoggerOptions{});
  daemon::DaemonConfig auth_cfg;
  auth_cfg.name = "auth-db";
  auth_cfg.port = daemon::kAuthDbPort;
  infra.add_daemon<services::AuthDbDaemon>(auth_cfg);
  if (auto s = infra.start_all(); !s.ok()) {
    std::fprintf(stderr, "infrastructure failed: %s\n",
                 s.error().to_string().c_str());
    return 1;
  }
  std::puts("[1] infrastructure up: asd, room-db, net-logger, auth-db");

  // 3. A camera daemon in the conference room (full startup sequence:
  //    Room DB -> ASD registration with lease -> Network Logger).
  daemon::DaemonHost room_machine(env, "hawk-box");
  daemon::DaemonConfig cam_cfg;
  cam_cfg.name = "hawk_camera";
  cam_cfg.room = "hawk";
  auto& camera = room_machine.add_daemon<daemon::PtzCameraDaemon>(
      cam_cfg, daemon::vcc4_spec());
  if (auto s = camera.start(); !s.ok()) {
    std::fprintf(stderr, "camera failed: %s\n", s.error().to_string().c_str());
    return 1;
  }
  std::puts("[2] camera daemon started in room 'hawk' and registered");

  // 4. A client at some access point: discover, then command.
  auto& laptop = env.network().add_host("laptop");
  daemon::AceClient client(env, laptop, env.issue_identity("user/you"));

  auto found = services::AsdClient(client, env.asd_address).lookup("hawk_camera");
  if (!found.ok()) {
    std::fprintf(stderr, "lookup failed: %s\n",
                 found.error().to_string().c_str());
    return 1;
  }
  std::printf("[3] ASD says hawk_camera lives at %s (class %s)\n",
              found->address.to_string().c_str(),
              found->service_class.c_str());

  (void)client.call(found->address, CmdLine("deviceOn"), daemon::kCallOk);
  CmdLine move("ptzMove");
  move.arg("pan", 25.0);
  move.arg("tilt", 10.0);
  move.arg("zoom", 4.0);
  std::printf("[4] sending: %s\n", move.to_string().c_str());
  auto reply = client.call(found->address, move, daemon::kCallOk);
  if (!reply.ok()) {
    std::fprintf(stderr, "command failed: %s\n",
                 reply.error().to_string().c_str());
    return 1;
  }

  auto state = client.call(found->address, CmdLine("ptzGet"), daemon::kCallOk);
  if (state.ok()) {
    std::printf("[5] camera now at pan=%.1f tilt=%.1f zoom=%.1f (model %s)\n",
                state->get_real("pan"), state->get_real("tilt"),
                state->get_real("zoom"), state->get_text("model").c_str());
  }
  std::puts("quickstart complete.");
  return 0;
}
