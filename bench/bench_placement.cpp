// E6 — Resource-aware placement (paper §4.1-4.4, Fig 11).
//
// The SRM/SAL pair is the paper's mechanism for "invisible distribution of
// computational resources". This harness launches a stream of applications
// through the SAL under three policies and reports the resulting load
// imbalance across hosts. Expected shape: least_loaded keeps max/mean close
// to 1 even on heterogeneous hosts; random and first degrade.
#include "bench_common.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

struct Deployment {
  std::unique_ptr<testenv::AceTestEnv> env;
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts;
  net::Address sal;
};

// Four hosts, two fast (2000 bogomips) and two slow (1000).
Deployment make_deployment(std::uint64_t seed) {
  Deployment d;
  d.env = std::make_unique<testenv::AceTestEnv>(seed);
  if (!d.env->start().ok()) return d;
  for (int i = 0; i < 4; ++i) {
    daemon::HostSpec spec;
    spec.bogomips = i < 2 ? 2000 : 1000;
    auto host = std::make_unique<daemon::DaemonHost>(
        d.env->env, "host" + std::to_string(i), spec);
    daemon::DaemonConfig hrm_cfg;
    hrm_cfg.name = "hrm-" + host->name();
    hrm_cfg.room = "machine-room";
    host->add_daemon<services::HrmDaemon>(hrm_cfg);
    daemon::DaemonConfig hal_cfg;
    hal_cfg.name = "hal-" + host->name();
    hal_cfg.room = "machine-room";
    host->add_daemon<services::HalDaemon>(hal_cfg);
    (void)host->start_all();
    d.hosts.push_back(std::move(host));
  }
  daemon::DaemonConfig srm_cfg;
  srm_cfg.name = "srm";
  srm_cfg.room = "machine-room";
  services::SrmOptions srm_options;
  srm_options.cache_ttl = 0ms;
  auto& srm = d.hosts[0]->add_daemon<services::SrmDaemon>(srm_cfg,
                                                          srm_options);
  daemon::DaemonConfig sal_cfg;
  sal_cfg.name = "sal";
  sal_cfg.room = "machine-room";
  auto& sal = d.hosts[0]->add_daemon<services::SalDaemon>(sal_cfg);
  (void)srm.start();
  (void)sal.start();
  d.sal = sal.address();
  return d;
}

void placement_policy_ablation() {
  bench::header("E6", "load imbalance by placement policy (Fig 11)");
  std::printf("%-14s %10s %10s %12s %14s\n", "policy", "apps", "max_load",
              "mean_load", "max/mean");
  for (const char* policy : {"least_loaded", "random", "first"}) {
    Deployment d = make_deployment(90);
    if (!d.env) return;
    auto client = d.env->make_client("bench", "user/bench");

    constexpr int kApps = 40;
    util::Rng rng(9);
    for (int i = 0; i < kApps; ++i) {
      CmdLine launch("salLaunch");
      launch.arg("command", "app" + std::to_string(i));
      launch.arg("cpu", 0.05 + 0.1 * rng.next_double());
      launch.arg("policy", Word{policy});
      auto r = client->call(d.sal, launch, daemon::kCallOk);
      if (!r.ok()) {
        std::fprintf(stderr, "launch failed: %s\n",
                     r.error().to_string().c_str());
        return;
      }
    }

    // Normalized load = cpu_load / (bogomips/1000).
    double max_load = 0.0, total = 0.0;
    for (const auto& host : d.hosts) {
      auto snap = host->resources();
      double normalized = snap.cpu_load / (host->spec().bogomips / 1000.0);
      max_load = std::max(max_load, normalized);
      total += normalized;
    }
    double mean = total / static_cast<double>(d.hosts.size());
    std::printf("%-14s %10d %10.3f %12.3f %13.2fx\n", policy, kApps,
                max_load, mean, max_load / std::max(mean, 1e-9));
  }
  std::printf(
      "  (shape: least_loaded stays near 1.0x; first piles everything on\n"
      "   one host; random lands in between)\n");
}

void hrm_query_rate() {
  bench::header("E6b", "HRM status query rate");
  Deployment d = make_deployment(91);
  if (!d.env) return;
  auto client = d.env->make_client("bench", "user/bench");
  auto hrms = services::AsdClient(*client, d.env->env.asd_address).query("*", "Service/Monitor/HRM*", "*");
  if (!hrms.ok() || hrms->empty()) return;
  auto target = hrms->front().address;
  (void)client->call(target, CmdLine("hrmStatus"));
  constexpr int kQueries = 2000;
  auto start = bench::Clock::now();
  for (int i = 0; i < kQueries; ++i)
    if (!client->call(target, CmdLine("hrmStatus"), daemon::kCallOk).ok()) return;
  double total_us = bench::us_since(start);
  std::printf("  %d queries in %.1f ms -> %.0f queries/s\n", kQueries,
              total_us / 1000.0, kQueries / (total_us / 1e6));
}

}  // namespace

int main() {
  placement_policy_ablation();
  hrm_query_rate();
  return 0;
}
