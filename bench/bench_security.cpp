// E5 — Security overhead (paper §3, Fig 10).
//
// Quantifies the cost of the ACE security stack layer by layer:
//   * secure-channel handshake (the connection-setup cost of "SSL"),
//   * per-command encryption vs plaintext (crypto ablation),
//   * per-command KeyNote authorization: uncached (AuthDB fetch + check)
//     vs credential-cache hit vs authorization off.
//
// Expected shape: the handshake dominates connection setup; steady-state
// encryption adds a modest per-command cost; authorization is nearly free
// when the credential cache hits and costs one extra round trip when cold.
#include "bench_common.hpp"
#include "daemon/daemon.hpp"
#include "services/auth_db.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;

namespace {

class EchoDaemon : public daemon::ServiceDaemon {
 public:
  EchoDaemon(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(cmdlang::CommandSpec("echo").arg(
                         cmdlang::string_arg("text")),
                     [](const CmdLine& cmd, const daemon::CallerInfo&) {
                       CmdLine reply = cmdlang::make_ok();
                       reply.arg("text", cmd.get_text("text"));
                       return reply;
                     });
  }
};

void handshake_cost() {
  bench::header("E5a", "secure-channel handshake vs plaintext connect");
  for (bool encrypt : {true, false}) {
    testenv::AceTestEnv deployment(80, encrypt);
    if (!deployment.start().ok()) return;
    daemon::DaemonHost host(deployment.env, "work");
    daemon::DaemonConfig c;
    c.name = "echo";
    c.room = "hawk";
    auto& echo = host.add_daemon<EchoDaemon>(c);
    if (!echo.start().ok()) return;

    bench::Series connect_us;
    for (int i = 0; i < 50; ++i) {
      auto client = deployment.make_client("client" + std::to_string(i),
                                           "user/bench");
      auto start = bench::Clock::now();
      auto r = client->call(echo.address(), CmdLine("ping"));
      connect_us.add(bench::us_since(start));
      if (!r.ok()) return;
    }
    std::printf("  %-10s first-command latency (connect+handshake+cmd): "
                "p50=%.1f us  p95=%.1f us\n",
                encrypt ? "encrypted" : "plaintext", connect_us.percentile(50),
                connect_us.percentile(95));
  }
}

void steady_state_command_cost() {
  bench::header("E5b", "steady-state command latency, crypto ablation");
  for (bool encrypt : {true, false}) {
    testenv::AceTestEnv deployment(81, encrypt);
    if (!deployment.start().ok()) return;
    daemon::DaemonHost host(deployment.env, "work");
    daemon::DaemonConfig c;
    c.name = "echo";
    c.room = "hawk";
    auto& echo = host.add_daemon<EchoDaemon>(c);
    if (!echo.start().ok()) return;
    auto client = deployment.make_client("client", "user/bench");

    CmdLine cmd("echo");
    cmd.arg("text", "a moderately sized payload for the echo command");
    (void)client->call(echo.address(), cmd);  // warm the channel

    bench::Series cmd_us;
    for (int i = 0; i < 2000; ++i) {
      auto start = bench::Clock::now();
      auto r = client->call(echo.address(), cmd);
      cmd_us.add(bench::us_since(start));
      if (!r.ok()) return;
    }
    std::printf("  %-10s per-command: p50=%.1f us  p95=%.1f us\n",
                encrypt ? "encrypted" : "plaintext", cmd_us.percentile(50),
                cmd_us.percentile(95));
  }
}

void authorization_cost() {
  bench::header("E5c", "KeyNote authorization cost (Fig 10)");
  struct Variant {
    const char* label;
    bool enforce;
    std::chrono::milliseconds cache_ttl;
  };
  const Variant variants[] = {
      {"authorization off", false, 0ms},
      {"authorize, cache hit", true, 60000ms},
      {"authorize, cache cold (AuthDB fetch each cmd)", true, 0ms},
  };
  for (const Variant& v : variants) {
    testenv::AceTestEnv deployment(82);
    if (!deployment.start().ok()) return;
    auto admin = deployment.make_client("admin", "user/admin");
    deployment.env.register_principal("admin-key");
    keynote::Assertion policy;
    policy.authorizer = keynote::kPolicyAuthorizer;
    policy.licensees = keynote::licensee_key("admin-key");
    deployment.env.add_policy(policy);
    auto granted = services::grant_credential(
        *admin, deployment.env.auth_db_address, deployment.env, "admin-key",
        "user/bench", "app_domain == \"ace\"");
    if (!granted.ok()) return;

    daemon::DaemonHost host(deployment.env, "work");
    daemon::DaemonConfig c;
    c.name = "echo";
    c.room = "hawk";
    c.enforce_authorization = v.enforce;
    c.credential_cache_ttl = v.cache_ttl;
    auto& echo = host.add_daemon<EchoDaemon>(c);
    if (!echo.start().ok()) return;
    auto client = deployment.make_client("client", "user/bench");

    CmdLine cmd("echo");
    cmd.arg("text", "hello");
    (void)client->call(echo.address(), cmd);

    bench::Series cmd_us;
    for (int i = 0; i < 500; ++i) {
      auto start = bench::Clock::now();
      auto r = client->call(echo.address(), cmd);
      cmd_us.add(bench::us_since(start));
      if (!r.ok() || cmdlang::is_error(r.value())) {
        std::fprintf(stderr, "  command failed under '%s'\n", v.label);
        break;
      }
    }
    std::printf("  %-48s p50=%.1f us  p95=%.1f us\n", v.label,
                cmd_us.percentile(50), cmd_us.percentile(95));
  }
}

}  // namespace

int main() {
  handshake_cost();
  steady_state_command_cost();
  authorization_cost();
  return 0;
}
