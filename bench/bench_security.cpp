// E5 — Security overhead (paper §3, Fig 10).
//
// Quantifies the cost of the ACE security stack layer by layer:
//   * secure-channel handshake (the connection-setup cost of "SSL"),
//   * per-command encryption vs plaintext (crypto ablation),
//   * per-command KeyNote authorization: uncached (AuthDB fetch + check)
//     vs credential-cache hit vs authorization off.
//
// Expected shape: the handshake dominates connection setup; steady-state
// encryption adds a modest per-command cost; authorization is nearly free
// when the credential cache hits and costs one extra round trip when cold.
#include <algorithm>

#include "bench_common.hpp"
#include "crypto/chacha20.hpp"
#include "daemon/daemon.hpp"
#include "services/auth_db.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;

namespace {

class EchoDaemon : public daemon::ServiceDaemon {
 public:
  EchoDaemon(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(cmdlang::CommandSpec("echo").arg(
                         cmdlang::string_arg("text")),
                     [](const CmdLine& cmd, const daemon::CallerInfo&) {
                       CmdLine reply = cmdlang::make_ok();
                       reply.arg("text", cmd.get_text("text"));
                       return reply;
                     });
  }
};

void handshake_cost() {
  bench::header("E5a", "secure-channel handshake vs plaintext connect");
  for (bool encrypt : {true, false}) {
    testenv::AceTestEnv deployment(80, encrypt);
    if (!deployment.start().ok()) return;
    daemon::DaemonHost host(deployment.env, "work");
    daemon::DaemonConfig c;
    c.name = "echo";
    c.room = "hawk";
    auto& echo = host.add_daemon<EchoDaemon>(c);
    if (!echo.start().ok()) return;

    bench::Series connect_us;
    for (int i = 0; i < 50; ++i) {
      auto client = deployment.make_client("client" + std::to_string(i),
                                           "user/bench");
      auto start = bench::Clock::now();
      auto r = client->call(echo.address(), CmdLine("ping"));
      connect_us.add(bench::us_since(start));
      if (!r.ok()) return;
    }
    std::printf("  %-10s first-command latency (connect+handshake+cmd): "
                "p50=%.1f us  p95=%.1f us\n",
                encrypt ? "encrypted" : "plaintext", connect_us.percentile(50),
                connect_us.percentile(95));
  }
}

void steady_state_command_cost() {
  bench::header("E5b", "steady-state command latency, crypto ablation");
  for (bool encrypt : {true, false}) {
    testenv::AceTestEnv deployment(81, encrypt);
    if (!deployment.start().ok()) return;
    daemon::DaemonHost host(deployment.env, "work");
    daemon::DaemonConfig c;
    c.name = "echo";
    c.room = "hawk";
    auto& echo = host.add_daemon<EchoDaemon>(c);
    if (!echo.start().ok()) return;
    auto client = deployment.make_client("client", "user/bench");

    CmdLine cmd("echo");
    cmd.arg("text", "a moderately sized payload for the echo command");
    (void)client->call(echo.address(), cmd);  // warm the channel

    bench::Series cmd_us;
    for (int i = 0; i < 2000; ++i) {
      auto start = bench::Clock::now();
      auto r = client->call(echo.address(), cmd);
      cmd_us.add(bench::us_since(start));
      if (!r.ok()) return;
    }
    std::printf("  %-10s per-command: p50=%.1f us  p95=%.1f us\n",
                encrypt ? "encrypted" : "plaintext", cmd_us.percentile(50),
                cmd_us.percentile(95));
  }
}

void authorization_cost() {
  bench::header("E5c", "KeyNote authorization cost (Fig 10)");
  struct Variant {
    const char* label;
    bool enforce;
    std::chrono::milliseconds cache_ttl;
  };
  const Variant variants[] = {
      {"authorization off", false, 0ms},
      {"authorize, cache hit", true, 60000ms},
      {"authorize, cache cold (AuthDB fetch each cmd)", true, 0ms},
  };
  for (const Variant& v : variants) {
    testenv::AceTestEnv deployment(82);
    if (!deployment.start().ok()) return;
    auto admin = deployment.make_client("admin", "user/admin");
    deployment.env.register_principal("admin-key");
    keynote::Assertion policy;
    policy.authorizer = keynote::kPolicyAuthorizer;
    policy.licensees = keynote::licensee_key("admin-key");
    deployment.env.add_policy(policy);
    auto granted = services::grant_credential(
        *admin, deployment.env.auth_db_address, deployment.env, "admin-key",
        "user/bench", "app_domain == \"ace\"");
    if (!granted.ok()) return;

    daemon::DaemonHost host(deployment.env, "work");
    daemon::DaemonConfig c;
    c.name = "echo";
    c.room = "hawk";
    c.enforce_authorization = v.enforce;
    c.credential_cache_ttl = v.cache_ttl;
    auto& echo = host.add_daemon<EchoDaemon>(c);
    if (!echo.start().ok()) return;
    auto client = deployment.make_client("client", "user/bench");

    CmdLine cmd("echo");
    cmd.arg("text", "hello");
    (void)client->call(echo.address(), cmd);

    bench::Series cmd_us;
    for (int i = 0; i < 500; ++i) {
      auto start = bench::Clock::now();
      auto r = client->call(echo.address(), cmd);
      cmd_us.add(bench::us_since(start));
      if (!r.ok() || cmdlang::is_error(r.value())) {
        std::fprintf(stderr, "  command failed under '%s'\n", v.label);
        break;
      }
    }
    std::printf("  %-48s p50=%.1f us  p95=%.1f us\n", v.label,
                cmd_us.percentile(50), cmd_us.percentile(95));
  }
}

// Reference ChaCha20 with the original per-byte keystream XOR, kept here
// as the ablation baseline for the word-at-a-time XOR in
// crypto/chacha20.cpp (RFC 8439 block function, identical output).
namespace reference {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                    std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

void block(const crypto::ChaChaKey& key, const crypto::ChaChaNonce& nonce,
           std::uint32_t counter, std::uint8_t out[64]) {
  std::uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
  for (int i = 0; i < 8; ++i)
    state[4 + i] = static_cast<std::uint32_t>(key[4 * i]) |
                   static_cast<std::uint32_t>(key[4 * i + 1]) << 8 |
                   static_cast<std::uint32_t>(key[4 * i + 2]) << 16 |
                   static_cast<std::uint32_t>(key[4 * i + 3]) << 24;
  state[12] = counter;
  for (int i = 0; i < 3; ++i)
    state[13 + i] = static_cast<std::uint32_t>(nonce[4 * i]) |
                    static_cast<std::uint32_t>(nonce[4 * i + 1]) << 8 |
                    static_cast<std::uint32_t>(nonce[4 * i + 2]) << 16 |
                    static_cast<std::uint32_t>(nonce[4 * i + 3]) << 24;
  std::uint32_t w[16];
  std::copy(std::begin(state), std::end(state), std::begin(w));
  for (int round = 0; round < 10; ++round) {
    quarter(w[0], w[4], w[8], w[12]);
    quarter(w[1], w[5], w[9], w[13]);
    quarter(w[2], w[6], w[10], w[14]);
    quarter(w[3], w[7], w[11], w[15]);
    quarter(w[0], w[5], w[10], w[15]);
    quarter(w[1], w[6], w[11], w[12]);
    quarter(w[2], w[7], w[8], w[13]);
    quarter(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

void xor_per_byte(const crypto::ChaChaKey& key,
                  const crypto::ChaChaNonce& nonce, std::uint32_t counter,
                  std::uint8_t* data, std::size_t n) {
  std::uint8_t keystream[64];
  std::size_t offset = 0;
  while (offset < n) {
    block(key, nonce, counter++, keystream);
    std::size_t take = std::min<std::size_t>(64, n - offset);
    for (std::size_t i = 0; i < take; ++i) data[offset + i] ^= keystream[i];
    offset += take;
  }
}

}  // namespace reference

void raw_cipher_throughput() {
  bench::header("E5d",
                "raw ChaCha20 throughput: per-byte vs word-at-a-time XOR");
  crypto::ChaChaKey key{};
  for (std::size_t i = 0; i < key.size(); ++i)
    key[i] = static_cast<std::uint8_t>(i);
  const crypto::ChaChaNonce nonce = crypto::nonce_from_sequence(7, 0x1234);

  std::printf("%12s %22s %22s %9s\n", "buffer", "per_byte(MB/s)",
              "word_xor(MB/s)", "delta");
  for (std::size_t size : {256u, 4096u, 65536u}) {
    std::vector<std::uint8_t> a(size, 0xab), b(size, 0xab);
    // Equal work per variant; enough iterations to dominate timer noise.
    const int iters = static_cast<int>(64 * 1024 * 1024 / size);
    auto t0 = bench::Clock::now();
    for (int i = 0; i < iters; ++i)
      reference::xor_per_byte(key, nonce, 1, a.data(), a.size());
    const double per_byte_us = bench::us_since(t0);
    t0 = bench::Clock::now();
    for (int i = 0; i < iters; ++i)
      crypto::chacha20_xor(key, nonce, 1, b.data(), b.size());
    const double word_us = bench::us_since(t0);
    // Outputs must agree bit-for-bit (both ran an even number of
    // encrypt/decrypt passes over identical plaintext).
    if (a != b) std::fprintf(stderr, "  MISMATCH: variants disagree\n");
    const double mb = static_cast<double>(size) * iters / (1024.0 * 1024.0);
    std::printf("%10zu B %22.0f %22.0f %8.2fx\n", size,
                mb / (per_byte_us / 1e6), mb / (word_us / 1e6),
                per_byte_us / word_us);
  }
}

}  // namespace

int main() {
  handshake_cost();
  steady_state_command_cost();
  authorization_cost();
  raw_cipher_throughput();
  return 0;
}
