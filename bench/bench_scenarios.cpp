// E10 — End-to-end scenario latencies (paper Ch 7, Figs 18-19).
//
// Times the user-visible paths the paper walks through:
//   * Scenario 1: new-user provisioning (account + FIU enrollment +
//     default workspace creation through WSS -> SAL -> SRM/HAL),
//   * Scenarios 2+3: fingerprint scan -> identification -> AUD location
//     update -> workspace viewer on screen at the access point,
//   * Scenario 4: switching to a second workspace.
#include "apps/workspace_backend.hpp"
#include "bench_common.hpp"
#include "services/identification.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "services/user_db.hpp"
#include "services/workspace.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

struct Ace {
  std::unique_ptr<testenv::AceTestEnv> deployment;
  std::unique_ptr<daemon::DaemonHost> bar, tube, podium;
  std::unique_ptr<apps::VncWorkspaceFactory> factory;
  std::unique_ptr<daemon::AceClient> admin;
  services::UserDbDaemon* aud = nullptr;
  services::WssDaemon* wss = nullptr;
  services::FiuDaemon* fiu = nullptr;
  services::IdMonitorDaemon* id_monitor = nullptr;
};

daemon::DaemonConfig cfg(const std::string& name, const std::string& room) {
  daemon::DaemonConfig c;
  c.name = name;
  c.room = room;
  return c;
}

Ace make_ace(std::uint64_t seed) {
  Ace a;
  a.deployment = std::make_unique<testenv::AceTestEnv>(seed);
  if (!a.deployment->start().ok()) return a;
  a.admin = a.deployment->make_client("admin-pc", "user/admin");
  a.bar = std::make_unique<daemon::DaemonHost>(a.deployment->env, "bar");
  a.tube = std::make_unique<daemon::DaemonHost>(a.deployment->env, "tube");
  a.podium = std::make_unique<daemon::DaemonHost>(a.deployment->env, "podium");

  for (auto* host : {a.bar.get(), a.tube.get()}) {
    host->add_daemon<services::HrmDaemon>(
        cfg("hrm-" + host->name(), "machine-room"));
    host->add_daemon<services::HalDaemon>(
        cfg("hal-" + host->name(), "machine-room"));
    (void)host->start_all();
  }
  services::SrmOptions srm_options;
  srm_options.cache_ttl = 0ms;
  auto& srm = a.bar->add_daemon<services::SrmDaemon>(
      cfg("srm", "machine-room"), srm_options);
  auto& sal = a.bar->add_daemon<services::SalDaemon>(cfg("sal", "machine-room"));
  (void)srm.start();
  (void)sal.start();

  a.aud = &a.tube->add_daemon<services::UserDbDaemon>(cfg("aud", "machine-room"));
  a.wss = &a.tube->add_daemon<services::WssDaemon>(cfg("wss", "machine-room"));
  (void)a.aud->start();
  (void)a.wss->start();

  a.factory = std::make_unique<apps::VncWorkspaceFactory>(
      a.deployment->env,
      std::vector<daemon::DaemonHost*>{a.bar.get(), a.tube.get()},
      std::map<std::string, daemon::DaemonHost*>{{"podium", a.podium.get()}});
  a.factory->install(*a.wss);

  a.fiu = &a.podium->add_daemon<services::FiuDaemon>(cfg("fiu", "hawk"));
  (void)a.fiu->start();
  a.id_monitor = &a.tube->add_daemon<services::IdMonitorDaemon>(
      cfg("id-monitor", "machine-room"));
  (void)a.id_monitor->start();
  (void)a.id_monitor->watch_device(a.fiu->address());
  return a;
}

cmdlang::Vector finger(int user_index) {
  return cmdlang::real_vector({0.1 * user_index, 0.9, 0.3, 0.5});
}

void scenario1_provisioning() {
  bench::header("E10a", "Scenario 1: new user + default workspace");
  Ace a = make_ace(130);
  if (!a.admin) return;
  bench::Series provision_ms;
  for (int u = 0; u < 10; ++u) {
    std::string username = "user" + std::to_string(u);
    auto start = bench::Clock::now();
    CmdLine add("userAdd");
    add.arg("username", Word{username});
    add.arg("fullname", "User " + std::to_string(u));
    add.arg("password", "pw");
    add.arg("fingerprint", "fp_" + username);
    if (!a.admin->call(a.aud->address(), add, daemon::kCallOk).ok()) return;
    CmdLine enroll("fiuEnroll");
    enroll.arg("template", Word{"fp_" + username});
    enroll.arg("features", finger(u));
    if (!a.admin->call(a.fiu->address(), enroll, daemon::kCallOk).ok()) return;
    CmdLine ws("wssDefault");
    ws.arg("owner", Word{username});
    if (!a.admin->call(a.wss->address(), ws, daemon::kCallOk).ok()) return;
    provision_ms.add(bench::us_since(start) / 1000.0);
  }
  std::printf("  account + enrollment + live workspace server: p50=%.1f ms "
              "p95=%.1f ms\n",
              provision_ms.percentile(50), provision_ms.percentile(95));
}

void scenario23_identification_to_screen() {
  bench::header("E10b",
                "Scenarios 2+3: fingerprint scan -> workspace on screen");
  bench::Series id_ms, screen_ms;
  for (int trial = 0; trial < 8; ++trial) {
    Ace a = make_ace(131 + trial);
    if (!a.admin) return;
    CmdLine add("userAdd");
    add.arg("username", Word{"john"});
    add.arg("fingerprint", "fp_john");
    if (!a.admin->call(a.aud->address(), add, daemon::kCallOk).ok()) return;
    CmdLine enroll("fiuEnroll");
    enroll.arg("template", Word{"fp_john"});
    enroll.arg("features", finger(3));
    if (!a.admin->call(a.fiu->address(), enroll, daemon::kCallOk).ok()) return;

    auto start = bench::Clock::now();
    CmdLine scan("fiuScan");
    scan.arg("features", finger(3));
    scan.arg("station", "podium");
    auto r = a.admin->call(a.fiu->address(), scan, daemon::kCallOk);
    if (!r.ok()) return;
    id_ms.add(bench::us_since(start) / 1000.0);

    // Wait until the viewer at the podium mirrors the workspace server.
    auto deadline = bench::Clock::now() + 5s;
    bool on_screen = false;
    while (bench::Clock::now() < deadline && !on_screen) {
      auto ws = a.wss->workspace("john/default");
      auto* viewer = a.factory->viewer_on("podium");
      if (ws && viewer) {
        auto* server = a.factory->server_at(ws->server);
        on_screen = server &&
                    server->framebuffer_hash() == viewer->framebuffer_hash();
      }
      if (!on_screen) std::this_thread::sleep_for(1ms);
    }
    if (!on_screen) {
      std::fprintf(stderr, "  trial %d: workspace never appeared\n", trial);
      continue;
    }
    screen_ms.add(bench::us_since(start) / 1000.0);
  }
  std::printf("  positive identification reply:        p50=%.1f ms\n",
              id_ms.percentile(50));
  std::printf("  scan -> workspace visible at podium:  p50=%.1f ms  "
              "p95=%.1f ms\n",
              screen_ms.percentile(50), screen_ms.percentile(95));
}

void scenario4_workspace_switch() {
  bench::header("E10c", "Scenario 4: switching to a second workspace");
  Ace a = make_ace(140);
  if (!a.admin) return;
  CmdLine add("userAdd");
  add.arg("username", Word{"john"});
  if (!a.admin->call(a.aud->address(), add, daemon::kCallOk).ok()) return;
  CmdLine ws1("wssDefault");
  ws1.arg("owner", Word{"john"});
  if (!a.admin->call(a.wss->address(), ws1, daemon::kCallOk).ok()) return;
  CmdLine ws2("wssCreate");
  ws2.arg("owner", Word{"john"});
  ws2.arg("name", Word{"slides"});
  if (!a.admin->call(a.wss->address(), ws2, daemon::kCallOk).ok()) return;

  bench::Series switch_ms;
  const char* targets[] = {"john/default", "john/slides"};
  for (int i = 0; i < 10; ++i) {
    auto start = bench::Clock::now();
    CmdLine show("wssShow");
    show.arg("workspace", targets[i % 2]);
    show.arg("location", "podium");
    if (!a.admin->call(a.wss->address(), show, daemon::kCallOk).ok()) return;
    switch_ms.add(bench::us_since(start) / 1000.0);
  }
  std::printf("  selector switch (wssShow): p50=%.1f ms  p95=%.1f ms\n",
              switch_ms.percentile(50), switch_ms.percentile(95));
}

}  // namespace

int main() {
  scenario1_provisioning();
  scenario23_identification_to_screen();
  scenario4_workspace_switch();
  return 0;
}
