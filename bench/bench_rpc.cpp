// E13 — pipelined multiplexed command channel (wire protocol v2).
//
// Measures what multiplexing buys on a latency-bound link: 8 concurrent
// callers sharing one AceClient against one daemon over a 5ms-latency hop,
// with pipelining on (v2, default) vs off (the client offers protocol v1,
// so every call serializes its full round trip). Also checks the cost side:
// single-caller latency must not regress for the demux machinery.
//
// Both modes run from this one binary; the results land in the deployment
// metrics registry as `bench.rpc.*` gauges and are exported to
// bench_rpc.metrics.json for the perf dashboard.
#include <atomic>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "daemon/wire.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;

namespace {

constexpr int kCallers = 8;
constexpr int kCallsPerCaller = 40;
constexpr int kLatencySamples = 200;
constexpr auto kLinkLatency = 5ms;  // one-way; 10ms RTT

// Minimal target daemon: replies instantly, so the wire dominates.
class EchoDaemon : public daemon::ServiceDaemon {
 public:
  EchoDaemon(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(
        cmdlang::CommandSpec("echo", "echo the text back")
            .arg(cmdlang::string_arg("text")),
        [](const CmdLine& cmd, const daemon::CallerInfo&) {
          CmdLine reply = cmdlang::make_ok();
          reply.arg("text", cmd.get_text("text"));
          return reply;
        });
  }
};

struct Mode {
  const char* name;
  std::uint8_t protocol_offer;  // 0 = environment default (v2)
};

// One warmed-up client per mode so the handshake and channel cache are
// outside the timed region.
std::unique_ptr<daemon::AceClient> make_mode_client(
    testenv::AceTestEnv& deployment, const net::Address& svc,
    const Mode& mode) {
  auto client = deployment.make_client("bench", "user/bench");
  if (mode.protocol_offer != 0) {
    auto policy = client->policy();
    policy.protocol_offer = mode.protocol_offer;
    client->set_policy(policy);
  }
  CmdLine warm("echo");
  warm.arg("text", "warmup");
  if (!client->call(svc, warm, daemon::kCallOk).ok())
    std::fprintf(stderr, "warmup call failed (%s)\n", mode.name);
  return client;
}

double concurrent_throughput(daemon::AceClient& client,
                             const net::Address& svc) {
  std::atomic<int> failures{0};
  const auto start = bench::Clock::now();
  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back([&, t] {
        CmdLine cmd("echo");
        cmd.arg("text", "caller " + std::to_string(t));
        for (int i = 0; i < kCallsPerCaller; ++i)
          if (!client.call(svc, cmd, daemon::kCallOk).ok()) failures++;
      });
    }
  }
  const double total_s = bench::us_since(start) / 1e6;
  if (failures.load() > 0)
    std::fprintf(stderr, "%d calls failed\n", failures.load());
  return static_cast<double>(kCallers * kCallsPerCaller) / total_s;
}

bench::Series single_caller_latency(daemon::AceClient& client,
                                    const net::Address& svc) {
  bench::Series us;
  CmdLine cmd("echo");
  cmd.arg("text", "solo");
  for (int i = 0; i < kLatencySamples; ++i) {
    const auto start = bench::Clock::now();
    if (!client.call(svc, cmd, daemon::kCallOk).ok())
      std::fprintf(stderr, "latency call failed\n");
    us.add(bench::us_since(start));
  }
  return us;
}

}  // namespace

int main() {
  testenv::AceTestEnv deployment(42);
  if (!deployment.start().ok()) {
    std::fprintf(stderr, "deployment failed to start\n");
    return 1;
  }
  daemon::DaemonHost svc_host(deployment.env, "svc");
  daemon::DaemonConfig cfg;
  cfg.name = "echo";
  cfg.room = "lab";
  cfg.service_class = "Service/Bench";
  EchoDaemon& echo = svc_host.add_daemon<EchoDaemon>(cfg);
  if (!svc_host.start_all().ok()) {
    std::fprintf(stderr, "echo daemon failed to start\n");
    return 1;
  }
  const net::Address svc = echo.address();
  deployment.env.network().set_link("bench", "svc",
                                    net::LinkPolicy{.latency = kLinkLatency});

  const Mode modes[] = {
      {"pipelined", 0},
      {"serialized", daemon::wire::kProtocolV1},
  };

  bench::header("E13a", "8 concurrent callers, one destination, 10ms RTT");
  std::printf("%12s %16s %18s %18s\n", "mode", "throughput_cps",
              "solo_latency_p50", "solo_latency_mean");
  double throughput[2] = {0, 0};
  double solo_p50[2] = {0, 0};
  auto& metrics = deployment.env.metrics();
  for (int m = 0; m < 2; ++m) {
    auto client = make_mode_client(deployment, svc, modes[m]);
    throughput[m] = concurrent_throughput(*client, svc);
    bench::Series solo = single_caller_latency(*client, svc);
    solo_p50[m] = solo.percentile(50);
    std::printf("%12s %16.1f %18.1f %18.1f\n", modes[m].name, throughput[m],
                solo_p50[m], solo.mean());
    const std::string prefix = std::string("bench.rpc.") + modes[m].name;
    metrics.gauge(prefix + ".throughput_cps")
        .set(static_cast<std::int64_t>(throughput[m]));
    metrics.gauge(prefix + ".solo_latency_us_p50")
        .set(static_cast<std::int64_t>(solo_p50[m]));
    metrics.gauge(prefix + ".solo_latency_us_mean")
        .set(static_cast<std::int64_t>(solo.mean()));
  }

  const double speedup =
      throughput[1] > 0 ? throughput[0] / throughput[1] : 0.0;
  const double latency_delta_pct =
      solo_p50[1] > 0 ? (solo_p50[0] - solo_p50[1]) / solo_p50[1] * 100.0
                      : 0.0;
  std::printf("  pipelining speedup: %.2fx  solo latency delta: %+.2f%%\n",
              speedup, latency_delta_pct);
  metrics.gauge("bench.rpc.speedup_x100")
      .set(static_cast<std::int64_t>(speedup * 100));
  metrics.gauge("bench.rpc.solo_latency_delta_bp")
      .set(static_cast<std::int64_t>(latency_delta_pct * 100));

  bench::export_metrics_json("bench_rpc", metrics.snapshot());
  return 0;
}
