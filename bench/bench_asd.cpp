// E2  — ASD registration/lookup and lease behaviour (paper §2.4, Fig 7).
// E15 — directory scalability: indexed snapshot reads vs linear scan under
//       churn, client-side lookup caching, and batched lease renewal.
// E21 — federated campus: per-room directories under gossip membership,
//       cross-room query forwarding (scoped cache on/off) vs one flat
//       directory, convergence after a chaos-injected inter-room partition,
//       a relay-served room during a direct-link partition, and batched vs
//       per-event notification fan-out.
//
// E2 reproduces the Fig 7 interaction quantitatively. E15 measures the
// AsdIndex rework: query throughput and tail latency at 1k/10k/50k
// registrations with a concurrent writer churning the directory, the
// indexed vs. linear-scan ablation (AsdOptions.use_index), cached vs.
// uncached AsdClient lookups, and per-lease vs. batched renewal traffic.
//
// `--smoke` runs a seconds-scale subset (used by ci.sh bench-smoke) and
// still exports bench_asd.metrics.json.
#include <atomic>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "chaos/chaos.hpp"
#include "services/asd.hpp"
#include "services/monitors.hpp"
#include "services/relay.hpp"
#include "util/rng.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

void register_synthetic(daemon::AceClient& client, const net::Address& asd,
                        int index, std::int64_t lease_ms = 60000) {
  CmdLine reg("register");
  reg.arg("name", Word{"svc" + std::to_string(index)});
  reg.arg("host", "host" + std::to_string(index % 32));
  reg.arg("port", std::int64_t{1000 + index % 60000});
  reg.arg("room", Word{"room" + std::to_string(index % 16)});
  reg.arg("class", "Service/Synthetic/Kind" + std::to_string(index % 8));
  reg.arg("lease", lease_ms);
  auto r = client.call(asd, reg, daemon::kCallOk);
  if (!r.ok()) std::fprintf(stderr, "register failed: %s\n",
                            r.error().to_string().c_str());
}

void lookup_latency_vs_directory_size() {
  bench::header("E2a", "lookup latency vs directory size (Fig 7 flow)");
  std::printf("%10s %14s %14s %14s\n", "services", "lookup_us(p50)",
              "lookup_us(p95)", "query_us(p50)");
  for (int n : {10, 100, 500, 2000}) {
    testenv::AceTestEnv deployment(42);
    if (!deployment.start().ok()) return;
    auto client = deployment.make_client("bench", "user/bench");
    for (int i = 0; i < n; ++i)
      register_synthetic(*client, deployment.env.asd_address, i);

    bench::Series lookup_us, query_us;
    util::Rng rng(7);
    for (int i = 0; i < 300; ++i) {
      std::string name =
          "svc" + std::to_string(rng.next_below(static_cast<std::uint64_t>(n)));
      auto start = bench::Clock::now();
      auto r = services::AsdClient(*client, deployment.env.asd_address).lookup(name);
      lookup_us.add(bench::us_since(start));
      if (!r.ok()) std::fprintf(stderr, "lookup failed\n");
    }
    for (int i = 0; i < 50; ++i) {
      auto start = bench::Clock::now();
      auto r = services::AsdClient(*client, deployment.env.asd_address).query("*", "Service/Synthetic/Kind3", "*");
      query_us.add(bench::us_since(start));
      if (!r.ok()) std::fprintf(stderr, "query failed\n");
    }
    std::printf("%10d %14.1f %14.1f %14.1f\n", n, lookup_us.percentile(50),
                lookup_us.percentile(95), query_us.percentile(50));
  }
}

void registration_throughput() {
  bench::header("E2b", "registration throughput");
  testenv::AceTestEnv deployment(43);
  if (!deployment.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");
  constexpr int kCount = 1000;
  auto start = bench::Clock::now();
  for (int i = 0; i < kCount; ++i)
    register_synthetic(*client, deployment.env.asd_address, i);
  double total_us = bench::us_since(start);
  std::printf("  %d registrations in %.1f ms -> %.0f registrations/s\n",
              kCount, total_us / 1000.0, kCount / (total_us / 1e6));
}

void lease_expiry_ablation() {
  bench::header("E2c",
                "lease ablation: stale-entry removal time vs lease length");
  std::printf("%12s %18s %22s\n", "lease_ms", "removal_ms(mean)",
              "renewals_per_svc_min");
  for (int lease_ms : {200, 500, 1000, 2000}) {
    testenv::AceTestEnv deployment(44);
    if (!deployment.start().ok()) return;
    auto client = deployment.make_client("bench", "user/bench");

    bench::Series removal_ms;
    for (int trial = 0; trial < 3; ++trial) {
      register_synthetic(*client, deployment.env.asd_address, trial,
                         lease_ms);
      // The "service" crashes immediately (never renews). Measure the time
      // until the directory stops returning it.
      auto start = bench::Clock::now();
      std::string name = "svc" + std::to_string(trial);
      while (services::AsdClient(*client, deployment.env.asd_address).lookup(name)
                 .ok()) {
        std::this_thread::sleep_for(5ms);
      }
      removal_ms.add(bench::us_since(start) / 1000.0);
    }
    // A service renews at half its lease: renewal rate per minute.
    double renewals_per_min = 60000.0 / (lease_ms / 2.0);
    std::printf("%12d %18.1f %22.1f\n", lease_ms, removal_ms.mean(),
                renewals_per_min);
  }
  std::printf(
      "  (shape: removal time tracks the lease; shorter leases buy faster\n"
      "   failure detection with proportionally more renewal traffic)\n");
}

// ------------------------------------------------------------------- E15a

struct QueryBenchResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Drives the directory core directly (execute(); transport cost is E13's
// subject, not this experiment's): seeds `n` registrations, then hammers
// class-constrained queries from `readers` threads while one writer churns
// re-registrations and renewals. Class cardinality scales with n so bucket
// sizes stay realistic (many small classes, not 8 giant ones).
QueryBenchResult run_query_config(int n, bool use_index, int readers,
                                  std::chrono::milliseconds duration,
                                  obs::MetricsSnapshot* snapshot_out = nullptr) {
  daemon::Environment env(7);
  daemon::DaemonHost host(env, "bench-dir");
  daemon::DaemonConfig c;
  c.name = "asd";
  c.room = "machine-room";
  c.register_with_asd = false;
  c.register_with_room_db = false;
  c.log_to_net_logger = false;
  services::AsdOptions opts;
  opts.use_index = use_index;
  auto& asd = host.add_daemon<services::AsdDaemon>(c, opts);
  const daemon::CallerInfo caller{"bench", {}};

  const int classes = std::max(8, n / 64);
  const int rooms = std::max(4, n / 256);
  auto register_one = [&](int i, std::int64_t port_salt) {
    CmdLine reg("register");
    reg.arg("name", Word{"svc" + std::to_string(i)});
    reg.arg("host", "host" + std::to_string(i % 32));
    reg.arg("port", std::int64_t{1 + (i + port_salt) % 60000});
    reg.arg("room", Word{"room" + std::to_string(i % rooms)});
    reg.arg("class", "Service/Synthetic/Kind" + std::to_string(i % classes));
    reg.arg("lease", std::int64_t{60000});
    (void)asd.execute(reg, caller);
  };
  for (int i = 0; i < n; ++i) register_one(i, 0);

  // Writer churn: steady re-registrations (which move index buckets) and
  // renewals (which push expiry-heap nodes) throughout the read window.
  std::atomic<bool> stop{false};
  std::jthread churn([&] {
    util::Rng rng(99);
    while (!stop.load()) {
      const int i = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      register_one(i, static_cast<std::int64_t>(rng.next_below(50000)));
      CmdLine renew("renew");
      renew.arg("name",
                Word{"svc" + std::to_string(rng.next_below(
                         static_cast<std::uint64_t>(n)))});
      (void)asd.execute(renew, caller);
    }
  });

  std::vector<bench::Series> latencies(static_cast<std::size_t>(readers));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(readers), 0);
  std::vector<std::jthread> threads;
  const auto deadline = bench::Clock::now() + duration;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      while (bench::Clock::now() < deadline) {
        CmdLine query("query");
        query.arg("name", "*");
        query.arg("class",
                  "Service/Synthetic/Kind" +
                      std::to_string(rng.next_below(
                          static_cast<std::uint64_t>(classes))));
        query.arg("room", "*");
        auto start = bench::Clock::now();
        (void)asd.execute(query, caller);
        latencies[static_cast<std::size_t>(t)].add(bench::us_since(start));
        counts[static_cast<std::size_t>(t)]++;
      }
    });
  }
  threads.clear();  // join readers
  stop.store(true);
  churn = {};

  bench::Series merged;
  std::uint64_t total = 0;
  for (int t = 0; t < readers; ++t) {
    total += counts[static_cast<std::size_t>(t)];
    for (double v : latencies[static_cast<std::size_t>(t)].samples)
      merged.add(v);
  }
  QueryBenchResult result;
  result.qps = static_cast<double>(total) /
               std::chrono::duration<double>(duration).count();
  result.p50_us = merged.percentile(50);
  result.p99_us = merged.percentile(99);
  if (snapshot_out) *snapshot_out = env.metrics().snapshot();
  return result;
}

void query_scaling(bool smoke) {
  bench::header("E15a",
                "query throughput under churn: indexed vs linear scan");
  std::printf("%10s %8s %14s %12s %12s %10s\n", "services", "index",
              "queries/s", "p50_us", "p99_us", "speedup");
  const std::vector<int> sizes =
      smoke ? std::vector<int>{500} : std::vector<int>{1000, 10000, 50000};
  const auto duration = smoke ? 150ms : 400ms;
  const int readers = 4;
  for (int n : sizes) {
    auto indexed = run_query_config(n, true, readers, duration);
    auto linear = run_query_config(n, false, readers, duration);
    std::printf("%10d %8s %14.0f %12.1f %12.1f %10s\n", n, "on", indexed.qps,
                indexed.p50_us, indexed.p99_us, "");
    std::printf("%10d %8s %14.0f %12.1f %12.1f %9.1fx\n", n, "off",
                linear.qps, linear.p50_us, linear.p99_us,
                indexed.qps / std::max(1.0, linear.qps));
  }
  std::printf(
      "  (speedup = indexed qps / linear qps at equal size and churn)\n");
  // The bench_asd.metrics.json artifact is exported by E21 (last in the
  // binary); its campus registry also carries the index-hit proof.
}

// ------------------------------------------------------------------- E15b

void client_cache(bool smoke) {
  bench::header("E15b", "client lookup cache: cached vs uncached AsdClient");
  testenv::AceTestEnv deployment(45);
  if (!deployment.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");
  for (int i = 0; i < 64; ++i)
    register_synthetic(*client, deployment.env.asd_address, i);

  const int lookups = smoke ? 500 : 5000;
  // Skewed workload: most lookups go to a handful of hot services, as when
  // every application in a room resolves the same camera and display.
  auto run = [&](services::AsdClient& asd, const char* label) {
    util::Rng rng(11);
    bench::Series lat;
    auto start = bench::Clock::now();
    for (int i = 0; i < lookups; ++i) {
      const std::uint64_t idx = rng.next_below(100) < 90
                                    ? rng.next_below(5)
                                    : rng.next_below(64);
      auto t0 = bench::Clock::now();
      auto r = asd.lookup("svc" + std::to_string(idx));
      lat.add(bench::us_since(t0));
      if (!r.ok()) std::fprintf(stderr, "lookup failed\n");
    }
    double total_s = bench::us_since(start) / 1e6;
    std::printf("  %-10s %10.0f lookups/s   p50=%.2f us  p99=%.2f us\n",
                label, lookups / total_s, lat.percentile(50),
                lat.percentile(99));
  };

  services::AsdClient uncached(*client, deployment.env.asd_address);
  run(uncached, "uncached");
  services::AsdClient cached(*client, deployment.env.asd_address,
                             services::AsdCacheOptions{.enabled = true});
  run(cached, "cached");
  auto& m = deployment.env.metrics();
  std::printf("  cache: %lld hits / %lld misses\n",
              static_cast<long long>(m.counter("asd_client.cache_hits").value()),
              static_cast<long long>(
                  m.counter("asd_client.cache_misses").value()));
}

// ------------------------------------------------------------------- E15c

void renewal_batching(bool smoke) {
  bench::header("E15c",
                "renewal traffic: per-lease RPCs vs one renewBatch per host");
  const auto window = smoke ? 600ms : 2s;
  const int workers = 10;
  std::printf("%12s %16s %18s\n", "scheme", "renew_rpcs/s",
              "renewals/interval");
  double rates[2] = {0, 0};
  for (int scheme = 0; scheme < 2; ++scheme) {
    const bool batched = scheme == 1;
    testenv::AceTestEnv deployment(46);
    if (!deployment.start().ok()) return;
    daemon::DaemonHost host(deployment.env, "workstation");
    for (int i = 0; i < workers; ++i) {
      daemon::DaemonConfig c;
      c.name = "w" + std::to_string(i);
      c.room = "hawk";
      c.lease = 1000ms;
      c.lease_renew = 100ms;
      c.batch_renew = batched;
      host.add_daemon<services::HrmDaemon>(c);
    }
    if (!host.start_all().ok()) return;
    auto& rpcs = deployment.env.metrics().counter("asd.renew_rpcs");
    const auto before = rpcs.value();
    std::this_thread::sleep_for(window);
    const double per_s =
        static_cast<double>(rpcs.value() - before) /
        std::chrono::duration<double>(window).count();
    rates[scheme] = per_s;
    std::printf("%12s %16.1f %18.1f\n", batched ? "batched" : "per-lease",
                per_s, per_s * 0.1);
    host.stop_all();
  }
  if (rates[1] > 0)
    std::printf("  reduction: %.1fx fewer renewal RPCs for a %d-service host\n",
                rates[0] / rates[1], workers);
}

// -------------------------------------------------------------------- E21

// Polls `pred` until it holds or the budget runs out; returns the elapsed
// milliseconds (budget count on failure).
double poll_ms(std::chrono::milliseconds budget,
               const std::function<bool()>& pred) {
  const auto start = bench::Clock::now();
  const auto deadline = start + budget;
  while (bench::Clock::now() < deadline) {
    if (pred()) return bench::us_since(start) / 1000.0;
    std::this_thread::sleep_for(5ms);
  }
  return static_cast<double>(budget.count());
}

// A minimal subscriber for the fan-out measurement: counts `noted`
// deliveries (the notify pump's method) and exposes a `poke` trigger.
class NotifySink : public daemon::ServiceDaemon {
 public:
  NotifySink(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(
        cmdlang::CommandSpec("noted", "bench notification sink")
            .arg(cmdlang::string_arg("source"))
            .arg(cmdlang::word_arg("command"))
            .arg(cmdlang::string_arg("detail"))
            .concurrent_ok(),
        [this](const CmdLine&, const daemon::CallerInfo&) {
          received_.fetch_add(1);
          return cmdlang::make_ok();
        });
    register_command(
        cmdlang::CommandSpec("poke", "notification trigger").concurrent_ok(),
        [](const CmdLine&, const daemon::CallerInfo&) {
          return cmdlang::make_ok();
        });
  }
  int received() const { return received_.load(); }

 private:
  std::atomic<int> received_{0};
};

// A campus of federated rooms, one ASD per room on its own host, all in a
// single simulated Environment (so one metrics registry sees every room).
// The last room sits behind a rendezvous relay.
struct BenchCampus {
  struct Room {
    std::string name;
    std::unique_ptr<daemon::DaemonHost> host;
    services::AsdDaemon* asd = nullptr;
    net::Address address;
  };

  explicit BenchCampus(std::uint64_t seed) : env(seed) {}

  // Gossip cadence, set before build_and_start. The full 100-room campus
  // runs a slower round clock than the 6-room smoke: 100 agents at a 50 ms
  // interval saturate a small CI container, and a starved round clock reads
  // as spurious suspicion/eviction churn rather than an honest measurement.
  std::chrono::milliseconds gossip_interval{50};
  int gossip_fanout = 3;
  std::chrono::milliseconds sync_timeout{250};

  bool build_and_start(int room_count, const net::Address& relay_addr) {
    for (int i = 0; i < room_count; ++i) {
      Room room;
      room.name = "r" + std::to_string(i);
      room.host =
          std::make_unique<daemon::DaemonHost>(env, "site-" + room.name);
      room.address = {"site-" + room.name, daemon::kAsdPort};
      rooms.push_back(std::move(room));
    }
    const std::size_t relayed = rooms.size() - 1;  // last room, behind relay
    for (std::size_t i = 0; i < rooms.size(); ++i) {
      services::FederationOptions fed;
      fed.enabled = true;
      fed.gossip_interval = gossip_interval;
      fed.gossip_fanout = gossip_fanout;
      fed.sync_timeout = sync_timeout;
      fed.forward_timeout = 750ms;
      fed.forward_cache_ttl = 60000ms;  // invalidation by gossip, not TTL
      if (i == relayed) fed.relay = relay_addr;
      for (std::size_t j = 0; j < rooms.size(); ++j) {
        if (j == i) continue;
        services::GossipPeerSeed seed;
        seed.room = rooms[j].name;
        seed.address = rooms[j].address;
        if (j == relayed) seed.relay = relay_addr;
        fed.seeds.push_back(std::move(seed));
      }
      daemon::DaemonConfig c;
      c.name = "asd-" + rooms[i].name;
      c.port = daemon::kAsdPort;
      c.room = rooms[i].name;
      c.register_with_room_db = false;
      c.log_to_net_logger = false;
      services::AsdOptions opts;
      // The default 60 s lease cap is tuned for liveness experiments; the
      // full campaign runs longer than that and E21 is not a lease
      // experiment, so raise the cap and let entries outlive the run.
      opts.max_lease = std::chrono::milliseconds{600000};
      opts.federation = std::move(fed);
      rooms[i].asd = &rooms[i].host->add_daemon<services::AsdDaemon>(c, opts);
    }
    for (auto& room : rooms)
      if (!room.host->start_all().ok()) return false;
    return true;
  }

  // Every room has heard from every room (seeds start alive at heartbeat
  // 0, so heartbeat > 0 distinguishes "configured" from "actually heard
  // from") and nobody is evicted. Transient *suspicion* is accepted: at
  // 100 rooms some pair is always a few rounds stale on somebody's local
  // clock, so "all pairs alive at one instant" is a condition steady-state
  // gossip never satisfies — eviction, not suspicion, is what removes a
  // room from query fan-out.
  bool converged() const {
    for (const auto& room : rooms) {
      auto view = room.asd->gossip()->view();
      if (view.size() != rooms.size()) return false;
      for (const auto& v : view)
        if (v.state == services::RoomState::evicted || v.heartbeat == 0)
          return false;
    }
    return true;
  }

  daemon::Environment env;
  std::vector<Room> rooms;
};

// Issues `query name=<glob> class=* room=<glob>` at a directory and returns
// the latency in microseconds (entry count via out param).
double timed_query(services::AsdDaemon& asd, const std::string& name_glob,
                   const std::string& room_glob, const daemon::CallerInfo& who,
                   std::size_t* count_out = nullptr) {
  CmdLine query("query");
  query.arg("name", name_glob);
  query.arg("class", "*");
  query.arg("room", room_glob);
  auto start = bench::Clock::now();
  auto reply = asd.execute(query, who);
  double us = bench::us_since(start);
  if (count_out) {
    *count_out = 0;
    if (auto vec = reply.get_vector("services")) *count_out = vec->elements.size();
  }
  return us;
}

void federated_campus(bool smoke) {
  bench::header("E21",
                "federated campus: cross-room queries, gossip, relay, "
                "batched fan-out");
  const int kRooms = smoke ? 6 : 100;
  const int kPerRoom = smoke ? 40 : 100;  // 240 smoke / 10k full
  const daemon::CallerInfo caller{"bench", {}};

  BenchCampus campus(21);
  if (!smoke) {
    campus.gossip_interval = 250ms;
    campus.gossip_fanout = 2;
    campus.sync_timeout = 1000ms;
  }

  // Rendezvous relay on its own host, up before the rooms so the relayed
  // room's first gossip round can take out its lease.
  daemon::DaemonHost relay_host(campus.env, "relay-site");
  daemon::DaemonConfig rc;
  rc.name = "relay";
  rc.port = 5100;
  rc.room = "machine-room";
  rc.register_with_room_db = false;
  rc.log_to_net_logger = false;
  auto& relay = relay_host.add_daemon<services::RelayDaemon>(rc);
  if (!relay_host.start_all().ok()) return;

  const auto build_start = bench::Clock::now();
  if (!campus.build_and_start(kRooms, {"relay-site", 5100})) return;

  // Populate each room's directory (registration is room-local).
  for (int r = 0; r < kRooms; ++r) {
    auto& room = campus.rooms[static_cast<std::size_t>(r)];
    for (int i = 0; i < kPerRoom; ++i) {
      CmdLine reg("register");
      reg.arg("name", Word{"svc-" + room.name + "-" + std::to_string(i)});
      reg.arg("host", "site-" + room.name);
      reg.arg("port", std::int64_t{1000 + i});
      reg.arg("room", Word{room.name});
      reg.arg("class", "Service/Synthetic/Kind" + std::to_string(i % 8));
      // Long lease: the full campaign runs for minutes and E21 is not a
      // lease experiment (E2 is) — entries must outlive the measurements.
      reg.arg("lease", std::int64_t{600000});
      (void)room.asd->execute(reg, caller);
    }
  }
  // Some explicit lease renewals at room 0 (renewal is room-local too).
  for (int i = 0; i < kPerRoom; ++i) {
    CmdLine renew("renew");
    renew.arg("name", Word{"svc-r0-" + std::to_string(i)});
    (void)campus.rooms[0].asd->execute(renew, caller);
  }

  const double startup_ms =
      poll_ms(smoke ? 15000ms : 60000ms, [&] { return campus.converged(); });
  std::printf("  %d rooms x %d services: gossip converged %.0f ms after "
              "start (%.0f ms total build)\n",
              kRooms, kPerRoom, startup_ms,
              bench::us_since(build_start) / 1000.0);

  // ---- cross-room query latency, federated vs one flat directory --------
  auto& asd0 = *campus.rooms[0].asd;
  bench::Series targeted_uncached, targeted_cached, fanout_lat;
  for (int r = 1; r < kRooms; ++r)  // first touch per room: cache miss
    targeted_uncached.add(
        timed_query(asd0, "*", campus.rooms[static_cast<std::size_t>(r)].name,
                    caller));
  for (int round = 0; round < 3; ++round)
    for (int r = 1; r < kRooms; ++r)
      targeted_cached.add(
          timed_query(asd0, "*",
                      campus.rooms[static_cast<std::size_t>(r)].name, caller));
  std::size_t fanout_count = 0;
  for (int i = 0; i < 10; ++i)
    fanout_lat.add(timed_query(asd0, "*", "*", caller, &fanout_count));

  // Baseline: the same campus as one flat directory (no federation).
  daemon::Environment flat_env(22);
  daemon::DaemonHost flat_host(flat_env, "flat-site");
  daemon::DaemonConfig fc;
  fc.name = "asd-flat";
  fc.room = "r0";
  fc.register_with_room_db = false;
  fc.log_to_net_logger = false;
  services::AsdOptions flat_opts;
  flat_opts.max_lease = std::chrono::milliseconds{600000};
  auto& flat = flat_host.add_daemon<services::AsdDaemon>(fc, flat_opts);
  if (!flat_host.start_all().ok()) return;
  for (int r = 0; r < kRooms; ++r)
    for (int i = 0; i < kPerRoom; ++i) {
      CmdLine reg("register");
      reg.arg("name", Word{"svc-r" + std::to_string(r) + "-" +
                           std::to_string(i)});
      reg.arg("host", "site-r" + std::to_string(r));
      reg.arg("port", std::int64_t{1000 + i});
      reg.arg("room", Word{"r" + std::to_string(r)});
      reg.arg("class", "Service/Synthetic/Kind" + std::to_string(i % 8));
      reg.arg("lease", std::int64_t{600000});
      (void)flat.execute(reg, caller);
    }
  bench::Series flat_targeted, flat_fanout;
  for (int round = 0; round < 4; ++round)
    for (int r = 1; r < kRooms; ++r)
      flat_targeted.add(
          timed_query(flat, "*", "r" + std::to_string(r), caller));
  for (int i = 0; i < 10; ++i)
    flat_fanout.add(timed_query(flat, "*", "*", caller));

  std::printf("  cross-room query latency (us):\n");
  std::printf("  %-28s %10s %10s\n", "shape", "p50", "p99");
  std::printf("  %-28s %10.1f %10.1f\n", "targeted, uncached",
              targeted_uncached.percentile(50),
              targeted_uncached.percentile(99));
  std::printf("  %-28s %10.1f %10.1f\n", "targeted, scoped cache",
              targeted_cached.percentile(50), targeted_cached.percentile(99));
  std::printf("  %-28s %10.1f %10.1f   (%zu entries)\n", "fan-out room=*",
              fanout_lat.percentile(50), fanout_lat.percentile(99),
              fanout_count);
  std::printf("  %-28s %10.1f %10.1f\n", "flat directory, targeted",
              flat_targeted.percentile(50), flat_targeted.percentile(99));
  std::printf("  %-28s %10.1f %10.1f\n", "flat directory, full",
              flat_fanout.percentile(50), flat_fanout.percentile(99));
  flat_host.stop_all();

  // ---- chaos: inter-room partition, then convergence after the heal -----
  // Room r1 is cut off from the entire rest of the campus (the "rest"
  // group holds every other host incl. the relay), repeatedly, while room
  // r0 keeps querying. After the final heal the views must knit back.
  chaos::ScheduleParams cp;
  cp.duration = smoke ? 1500ms : 4000ms;
  cp.mean_interval = 300ms;
  cp.weight_service_crash = 0;
  cp.weight_link_down = 0;
  cp.weight_host_isolate = 0;
  cp.weight_latency_spike = 0;
  cp.weight_loss_burst = 0;
  cp.weight_room_partition = 6;
  chaos::Targets ct;
  chaos::Targets::RoomGroup isolated{"r1", {"site-r1"}};
  chaos::Targets::RoomGroup rest{"rest", {"relay-site"}};
  for (const auto& room : campus.rooms)
    if (room.name != "r1") rest.hosts.push_back("site-" + room.name);
  ct.rooms = {isolated, rest};
  auto schedule =
      chaos::generate_schedule(chaos::seed_from_env(2100), cp, ct);
  chaos::ChaosEngine engine(campus.env, schedule);
  engine.start();
  bench::Series chaos_lat;
  std::uint64_t chaos_queries = 0;
  while (!engine.done()) {
    chaos_lat.add(timed_query(asd0, "*", "*", caller));
    ++chaos_queries;
    std::this_thread::sleep_for(20ms);
  }
  engine.join();
  const double reconverge_ms =
      poll_ms(smoke ? 15000ms : 30000ms, [&] { return campus.converged(); });
  std::printf("  chaos (%zu room partitions): %llu fan-out queries kept "
              "completing, p99 %.1f us;\n"
              "  gossip re-converged %.0f ms after the final heal\n",
              schedule.events.size() / 2,
              static_cast<unsigned long long>(chaos_queries),
              chaos_lat.percentile(99), reconverge_ms);

  // ---- relay: the relayed room answers across a direct-link partition ---
  const auto& relayed = campus.rooms.back();
  campus.env.network().set_partitioned("site-r0", "site-" + relayed.name,
                                       true);
  auto& frames = campus.env.metrics().counter("asd.relay_frames");
  const auto frames_before = frames.value();
  // Fresh name glob = fresh cache key, so the query must cross the relay.
  std::size_t via_relay = 0;
  const double relay_us = timed_query(
      asd0, "svc-" + relayed.name + "-0", relayed.name, caller, &via_relay);
  campus.env.network().set_partitioned("site-r0", "site-" + relayed.name,
                                       false);
  std::printf("  relay: room %s answered %zu entr%s in %.1f us during the "
              "direct-link partition\n         (relay frames +%llu, rooms "
              "registered at relay: %zu)\n",
              relayed.name.c_str(), via_relay, via_relay == 1 ? "y" : "ies",
              relay_us,
              static_cast<unsigned long long>(frames.value() - frames_before),
              relay.room_count());

  // ---- notification fan-out: coalesced batches vs per-event sends -------
  daemon::DaemonHost floor(campus.env, "bench-floor");
  auto sub_config = [](const char* name, bool batch) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "r0";
    c.register_with_asd = false;
    c.register_with_room_db = false;
    c.log_to_net_logger = false;
    c.batch_notify = batch;
    return c;
  };
  auto& emitter = floor.add_daemon<NotifySink>(sub_config("emitter", true));
  auto& ablated =
      floor.add_daemon<NotifySink>(sub_config("emitter-ablate", false));
  auto& sink = floor.add_daemon<NotifySink>(sub_config("sink", true));
  if (!floor.start_all().ok()) return;
  for (daemon::ServiceDaemon* from :
       {static_cast<daemon::ServiceDaemon*>(&emitter),
        static_cast<daemon::ServiceDaemon*>(&ablated)}) {
    CmdLine sub("addNotification");
    sub.arg("command", Word{"poke"});
    sub.arg("service", sink.address().to_string());
    sub.arg("method", Word{"noted"});
    (void)from->execute(sub, caller);
  }
  auto& batches = campus.env.metrics().counter("daemon.notify_batches");
  const int kEvents = smoke ? 300 : 3000;
  CmdLine poke("poke");
  std::printf("  notification fan-out, %d-event burst:\n", kEvents);
  int delivered_floor = 0;
  for (int scheme = 0; scheme < 2; ++scheme) {
    const bool batched = scheme == 0;
    auto& source = batched ? emitter : ablated;
    const auto batches_before = batches.value();
    const auto start = bench::Clock::now();
    for (int i = 0; i < kEvents; ++i) (void)source.execute(poke, caller);
    delivered_floor += kEvents;
    poll_ms(15000ms, [&] { return sink.received() >= delivered_floor; });
    const double total_ms = bench::us_since(start) / 1000.0;
    std::printf("  %-12s %8.1f ms to full delivery, %6llu wire batches\n",
                batched ? "batched" : "per-event", total_ms,
                static_cast<unsigned long long>(batches.value() -
                                                batches_before));
  }

  // The bench-smoke artifact: one registry covering every room's directory,
  // gossip, forwarding, relay and notify counters. Must stay the last
  // export in the binary — ci.sh gates on these counters being nonzero.
  auto& m = campus.env.metrics();
  std::printf(
      "  counters: registrations=%llu queries=%llu index_hits=%llu "
      "renewals=%llu\n            gossip_rounds=%llu forwarded=%llu "
      "relay_frames=%llu\n",
      static_cast<unsigned long long>(m.counter("asd.registrations").value()),
      static_cast<unsigned long long>(m.counter("asd.queries").value()),
      static_cast<unsigned long long>(
          m.counter("asd.query_index_hits").value()),
      static_cast<unsigned long long>(m.counter("asd.renewals").value()),
      static_cast<unsigned long long>(m.counter("asd.gossip_rounds").value()),
      static_cast<unsigned long long>(
          m.counter("asd.forwarded_queries").value()),
      static_cast<unsigned long long>(m.counter("asd.relay_frames").value()));
  bench::export_metrics_json("bench_asd", m.snapshot());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  if (!smoke) {
    lookup_latency_vs_directory_size();
    registration_throughput();
    lease_expiry_ablation();
  }
  query_scaling(smoke);
  client_cache(smoke);
  renewal_batching(smoke);
  federated_campus(smoke);  // exports bench_asd.metrics.json last
  return 0;
}
