// E2 — ASD registration/lookup and lease behaviour (paper §2.4, Fig 7).
//
// Reproduces the Fig 7 interaction quantitatively: how long a lookup takes
// as the directory grows, registration throughput, and the claim that
// crashed services are removed automatically on lease expiry (including a
// lease-interval ablation: shorter leases -> faster stale-entry removal at
// the cost of more renewal traffic).
#include "bench_common.hpp"
#include "services/asd.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

void register_synthetic(daemon::AceClient& client, const net::Address& asd,
                        int index, std::int64_t lease_ms = 60000) {
  CmdLine reg("register");
  reg.arg("name", Word{"svc" + std::to_string(index)});
  reg.arg("host", "host" + std::to_string(index % 32));
  reg.arg("port", std::int64_t{1000 + index % 60000});
  reg.arg("room", Word{"room" + std::to_string(index % 16)});
  reg.arg("class", "Service/Synthetic/Kind" + std::to_string(index % 8));
  reg.arg("lease", lease_ms);
  auto r = client.call(asd, reg, daemon::kCallOk);
  if (!r.ok()) std::fprintf(stderr, "register failed: %s\n",
                            r.error().to_string().c_str());
}

void lookup_latency_vs_directory_size() {
  bench::header("E2a", "lookup latency vs directory size (Fig 7 flow)");
  std::printf("%10s %14s %14s %14s\n", "services", "lookup_us(p50)",
              "lookup_us(p95)", "query_us(p50)");
  for (int n : {10, 100, 500, 2000}) {
    testenv::AceTestEnv deployment(42);
    if (!deployment.start().ok()) return;
    auto client = deployment.make_client("bench", "user/bench");
    for (int i = 0; i < n; ++i)
      register_synthetic(*client, deployment.env.asd_address, i);

    bench::Series lookup_us, query_us;
    util::Rng rng(7);
    for (int i = 0; i < 300; ++i) {
      std::string name =
          "svc" + std::to_string(rng.next_below(static_cast<std::uint64_t>(n)));
      auto start = bench::Clock::now();
      auto r = services::AsdClient(*client, deployment.env.asd_address).lookup(name);
      lookup_us.add(bench::us_since(start));
      if (!r.ok()) std::fprintf(stderr, "lookup failed\n");
    }
    for (int i = 0; i < 50; ++i) {
      auto start = bench::Clock::now();
      auto r = services::AsdClient(*client, deployment.env.asd_address).query("*", "Service/Synthetic/Kind3", "*");
      query_us.add(bench::us_since(start));
      if (!r.ok()) std::fprintf(stderr, "query failed\n");
    }
    std::printf("%10d %14.1f %14.1f %14.1f\n", n, lookup_us.percentile(50),
                lookup_us.percentile(95), query_us.percentile(50));
  }
}

void registration_throughput() {
  bench::header("E2b", "registration throughput");
  testenv::AceTestEnv deployment(43);
  if (!deployment.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");
  constexpr int kCount = 1000;
  auto start = bench::Clock::now();
  for (int i = 0; i < kCount; ++i)
    register_synthetic(*client, deployment.env.asd_address, i);
  double total_us = bench::us_since(start);
  std::printf("  %d registrations in %.1f ms -> %.0f registrations/s\n",
              kCount, total_us / 1000.0, kCount / (total_us / 1e6));
  // Dump the deployment-wide obs snapshot (asd.registrations,
  // daemon.cmd.* latency histograms, net.* counters) as a JSON artifact.
  bench::export_metrics_json("bench_asd", deployment.env.metrics().snapshot());
}

void lease_expiry_ablation() {
  bench::header("E2c",
                "lease ablation: stale-entry removal time vs lease length");
  std::printf("%12s %18s %22s\n", "lease_ms", "removal_ms(mean)",
              "renewals_per_svc_min");
  for (int lease_ms : {200, 500, 1000, 2000}) {
    testenv::AceTestEnv deployment(44);
    if (!deployment.start().ok()) return;
    auto client = deployment.make_client("bench", "user/bench");

    bench::Series removal_ms;
    for (int trial = 0; trial < 3; ++trial) {
      register_synthetic(*client, deployment.env.asd_address, trial,
                         lease_ms);
      // The "service" crashes immediately (never renews). Measure the time
      // until the directory stops returning it.
      auto start = bench::Clock::now();
      std::string name = "svc" + std::to_string(trial);
      while (services::AsdClient(*client, deployment.env.asd_address).lookup(name)
                 .ok()) {
        std::this_thread::sleep_for(5ms);
      }
      removal_ms.add(bench::us_since(start) / 1000.0);
    }
    // A service renews at half its lease: renewal rate per minute.
    double renewals_per_min = 60000.0 / (lease_ms / 2.0);
    std::printf("%12d %18.1f %22.1f\n", lease_ms, removal_ms.mean(),
                renewals_per_min);
  }
  std::printf(
      "  (shape: removal time tracks the lease; shorter leases buy faster\n"
      "   failure detection with proportionally more renewal traffic)\n");
}

}  // namespace

int main() {
  lookup_latency_vs_directory_size();
  registration_throughput();
  lease_expiry_ablation();
  return 0;
}
