// E2 — ASD registration/lookup and lease behaviour (paper §2.4, Fig 7).
// E15 — directory scalability: indexed snapshot reads vs linear scan under
//       churn, client-side lookup caching, and batched lease renewal.
//
// E2 reproduces the Fig 7 interaction quantitatively. E15 measures the
// AsdIndex rework: query throughput and tail latency at 1k/10k/50k
// registrations with a concurrent writer churning the directory, the
// indexed vs. linear-scan ablation (AsdOptions.use_index), cached vs.
// uncached AsdClient lookups, and per-lease vs. batched renewal traffic.
//
// `--smoke` runs a seconds-scale subset (used by ci.sh bench-smoke) and
// still exports bench_asd.metrics.json.
#include <atomic>
#include <cstring>
#include <thread>

#include "bench_common.hpp"
#include "services/asd.hpp"
#include "services/monitors.hpp"
#include "util/rng.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

void register_synthetic(daemon::AceClient& client, const net::Address& asd,
                        int index, std::int64_t lease_ms = 60000) {
  CmdLine reg("register");
  reg.arg("name", Word{"svc" + std::to_string(index)});
  reg.arg("host", "host" + std::to_string(index % 32));
  reg.arg("port", std::int64_t{1000 + index % 60000});
  reg.arg("room", Word{"room" + std::to_string(index % 16)});
  reg.arg("class", "Service/Synthetic/Kind" + std::to_string(index % 8));
  reg.arg("lease", lease_ms);
  auto r = client.call(asd, reg, daemon::kCallOk);
  if (!r.ok()) std::fprintf(stderr, "register failed: %s\n",
                            r.error().to_string().c_str());
}

void lookup_latency_vs_directory_size() {
  bench::header("E2a", "lookup latency vs directory size (Fig 7 flow)");
  std::printf("%10s %14s %14s %14s\n", "services", "lookup_us(p50)",
              "lookup_us(p95)", "query_us(p50)");
  for (int n : {10, 100, 500, 2000}) {
    testenv::AceTestEnv deployment(42);
    if (!deployment.start().ok()) return;
    auto client = deployment.make_client("bench", "user/bench");
    for (int i = 0; i < n; ++i)
      register_synthetic(*client, deployment.env.asd_address, i);

    bench::Series lookup_us, query_us;
    util::Rng rng(7);
    for (int i = 0; i < 300; ++i) {
      std::string name =
          "svc" + std::to_string(rng.next_below(static_cast<std::uint64_t>(n)));
      auto start = bench::Clock::now();
      auto r = services::AsdClient(*client, deployment.env.asd_address).lookup(name);
      lookup_us.add(bench::us_since(start));
      if (!r.ok()) std::fprintf(stderr, "lookup failed\n");
    }
    for (int i = 0; i < 50; ++i) {
      auto start = bench::Clock::now();
      auto r = services::AsdClient(*client, deployment.env.asd_address).query("*", "Service/Synthetic/Kind3", "*");
      query_us.add(bench::us_since(start));
      if (!r.ok()) std::fprintf(stderr, "query failed\n");
    }
    std::printf("%10d %14.1f %14.1f %14.1f\n", n, lookup_us.percentile(50),
                lookup_us.percentile(95), query_us.percentile(50));
  }
}

void registration_throughput() {
  bench::header("E2b", "registration throughput");
  testenv::AceTestEnv deployment(43);
  if (!deployment.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");
  constexpr int kCount = 1000;
  auto start = bench::Clock::now();
  for (int i = 0; i < kCount; ++i)
    register_synthetic(*client, deployment.env.asd_address, i);
  double total_us = bench::us_since(start);
  std::printf("  %d registrations in %.1f ms -> %.0f registrations/s\n",
              kCount, total_us / 1000.0, kCount / (total_us / 1e6));
}

void lease_expiry_ablation() {
  bench::header("E2c",
                "lease ablation: stale-entry removal time vs lease length");
  std::printf("%12s %18s %22s\n", "lease_ms", "removal_ms(mean)",
              "renewals_per_svc_min");
  for (int lease_ms : {200, 500, 1000, 2000}) {
    testenv::AceTestEnv deployment(44);
    if (!deployment.start().ok()) return;
    auto client = deployment.make_client("bench", "user/bench");

    bench::Series removal_ms;
    for (int trial = 0; trial < 3; ++trial) {
      register_synthetic(*client, deployment.env.asd_address, trial,
                         lease_ms);
      // The "service" crashes immediately (never renews). Measure the time
      // until the directory stops returning it.
      auto start = bench::Clock::now();
      std::string name = "svc" + std::to_string(trial);
      while (services::AsdClient(*client, deployment.env.asd_address).lookup(name)
                 .ok()) {
        std::this_thread::sleep_for(5ms);
      }
      removal_ms.add(bench::us_since(start) / 1000.0);
    }
    // A service renews at half its lease: renewal rate per minute.
    double renewals_per_min = 60000.0 / (lease_ms / 2.0);
    std::printf("%12d %18.1f %22.1f\n", lease_ms, removal_ms.mean(),
                renewals_per_min);
  }
  std::printf(
      "  (shape: removal time tracks the lease; shorter leases buy faster\n"
      "   failure detection with proportionally more renewal traffic)\n");
}

// ------------------------------------------------------------------- E15a

struct QueryBenchResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Drives the directory core directly (execute(); transport cost is E13's
// subject, not this experiment's): seeds `n` registrations, then hammers
// class-constrained queries from `readers` threads while one writer churns
// re-registrations and renewals. Class cardinality scales with n so bucket
// sizes stay realistic (many small classes, not 8 giant ones).
QueryBenchResult run_query_config(int n, bool use_index, int readers,
                                  std::chrono::milliseconds duration,
                                  obs::MetricsSnapshot* snapshot_out = nullptr) {
  daemon::Environment env(7);
  daemon::DaemonHost host(env, "bench-dir");
  daemon::DaemonConfig c;
  c.name = "asd";
  c.room = "machine-room";
  c.register_with_asd = false;
  c.register_with_room_db = false;
  c.log_to_net_logger = false;
  services::AsdOptions opts;
  opts.use_index = use_index;
  auto& asd = host.add_daemon<services::AsdDaemon>(c, opts);
  const daemon::CallerInfo caller{"bench", {}};

  const int classes = std::max(8, n / 64);
  const int rooms = std::max(4, n / 256);
  auto register_one = [&](int i, std::int64_t port_salt) {
    CmdLine reg("register");
    reg.arg("name", Word{"svc" + std::to_string(i)});
    reg.arg("host", "host" + std::to_string(i % 32));
    reg.arg("port", std::int64_t{1 + (i + port_salt) % 60000});
    reg.arg("room", Word{"room" + std::to_string(i % rooms)});
    reg.arg("class", "Service/Synthetic/Kind" + std::to_string(i % classes));
    reg.arg("lease", std::int64_t{60000});
    (void)asd.execute(reg, caller);
  };
  for (int i = 0; i < n; ++i) register_one(i, 0);

  // Writer churn: steady re-registrations (which move index buckets) and
  // renewals (which push expiry-heap nodes) throughout the read window.
  std::atomic<bool> stop{false};
  std::jthread churn([&] {
    util::Rng rng(99);
    while (!stop.load()) {
      const int i = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
      register_one(i, static_cast<std::int64_t>(rng.next_below(50000)));
      CmdLine renew("renew");
      renew.arg("name",
                Word{"svc" + std::to_string(rng.next_below(
                         static_cast<std::uint64_t>(n)))});
      (void)asd.execute(renew, caller);
    }
  });

  std::vector<bench::Series> latencies(static_cast<std::size_t>(readers));
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(readers), 0);
  std::vector<std::jthread> threads;
  const auto deadline = bench::Clock::now() + duration;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      while (bench::Clock::now() < deadline) {
        CmdLine query("query");
        query.arg("name", "*");
        query.arg("class",
                  "Service/Synthetic/Kind" +
                      std::to_string(rng.next_below(
                          static_cast<std::uint64_t>(classes))));
        query.arg("room", "*");
        auto start = bench::Clock::now();
        (void)asd.execute(query, caller);
        latencies[static_cast<std::size_t>(t)].add(bench::us_since(start));
        counts[static_cast<std::size_t>(t)]++;
      }
    });
  }
  threads.clear();  // join readers
  stop.store(true);
  churn = {};

  bench::Series merged;
  std::uint64_t total = 0;
  for (int t = 0; t < readers; ++t) {
    total += counts[static_cast<std::size_t>(t)];
    for (double v : latencies[static_cast<std::size_t>(t)].samples)
      merged.add(v);
  }
  QueryBenchResult result;
  result.qps = static_cast<double>(total) /
               std::chrono::duration<double>(duration).count();
  result.p50_us = merged.percentile(50);
  result.p99_us = merged.percentile(99);
  if (snapshot_out) *snapshot_out = env.metrics().snapshot();
  return result;
}

void query_scaling(bool smoke) {
  bench::header("E15a",
                "query throughput under churn: indexed vs linear scan");
  std::printf("%10s %8s %14s %12s %12s %10s\n", "services", "index",
              "queries/s", "p50_us", "p99_us", "speedup");
  const std::vector<int> sizes =
      smoke ? std::vector<int>{500} : std::vector<int>{1000, 10000, 50000};
  const auto duration = smoke ? 150ms : 400ms;
  const int readers = 4;
  obs::MetricsSnapshot exported;
  for (int n : sizes) {
    obs::MetricsSnapshot snap;
    auto indexed = run_query_config(n, true, readers, duration, &snap);
    auto linear = run_query_config(n, false, readers, duration);
    exported = snap;  // keep the largest indexed run's counters
    std::printf("%10d %8s %14.0f %12.1f %12.1f %10s\n", n, "on", indexed.qps,
                indexed.p50_us, indexed.p99_us, "");
    std::printf("%10d %8s %14.0f %12.1f %12.1f %9.1fx\n", n, "off",
                linear.qps, linear.p50_us, linear.p99_us,
                indexed.qps / std::max(1.0, linear.qps));
  }
  std::printf(
      "  (speedup = indexed qps / linear qps at equal size and churn)\n");
  // The machine-readable artifact carries the proof the index served the
  // queries: asd.query_index_hits / asd.query_scans from the indexed run.
  bench::export_metrics_json("bench_asd", exported);
}

// ------------------------------------------------------------------- E15b

void client_cache(bool smoke) {
  bench::header("E15b", "client lookup cache: cached vs uncached AsdClient");
  testenv::AceTestEnv deployment(45);
  if (!deployment.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");
  for (int i = 0; i < 64; ++i)
    register_synthetic(*client, deployment.env.asd_address, i);

  const int lookups = smoke ? 500 : 5000;
  // Skewed workload: most lookups go to a handful of hot services, as when
  // every application in a room resolves the same camera and display.
  auto run = [&](services::AsdClient& asd, const char* label) {
    util::Rng rng(11);
    bench::Series lat;
    auto start = bench::Clock::now();
    for (int i = 0; i < lookups; ++i) {
      const std::uint64_t idx = rng.next_below(100) < 90
                                    ? rng.next_below(5)
                                    : rng.next_below(64);
      auto t0 = bench::Clock::now();
      auto r = asd.lookup("svc" + std::to_string(idx));
      lat.add(bench::us_since(t0));
      if (!r.ok()) std::fprintf(stderr, "lookup failed\n");
    }
    double total_s = bench::us_since(start) / 1e6;
    std::printf("  %-10s %10.0f lookups/s   p50=%.2f us  p99=%.2f us\n",
                label, lookups / total_s, lat.percentile(50),
                lat.percentile(99));
  };

  services::AsdClient uncached(*client, deployment.env.asd_address);
  run(uncached, "uncached");
  services::AsdClient cached(*client, deployment.env.asd_address,
                             services::AsdCacheOptions{.enabled = true});
  run(cached, "cached");
  auto& m = deployment.env.metrics();
  std::printf("  cache: %lld hits / %lld misses\n",
              static_cast<long long>(m.counter("asd_client.cache_hits").value()),
              static_cast<long long>(
                  m.counter("asd_client.cache_misses").value()));
}

// ------------------------------------------------------------------- E15c

void renewal_batching(bool smoke) {
  bench::header("E15c",
                "renewal traffic: per-lease RPCs vs one renewBatch per host");
  const auto window = smoke ? 600ms : 2s;
  const int workers = 10;
  std::printf("%12s %16s %18s\n", "scheme", "renew_rpcs/s",
              "renewals/interval");
  double rates[2] = {0, 0};
  for (int scheme = 0; scheme < 2; ++scheme) {
    const bool batched = scheme == 1;
    testenv::AceTestEnv deployment(46);
    if (!deployment.start().ok()) return;
    daemon::DaemonHost host(deployment.env, "workstation");
    for (int i = 0; i < workers; ++i) {
      daemon::DaemonConfig c;
      c.name = "w" + std::to_string(i);
      c.room = "hawk";
      c.lease = 1000ms;
      c.lease_renew = 100ms;
      c.batch_renew = batched;
      host.add_daemon<services::HrmDaemon>(c);
    }
    if (!host.start_all().ok()) return;
    auto& rpcs = deployment.env.metrics().counter("asd.renew_rpcs");
    const auto before = rpcs.value();
    std::this_thread::sleep_for(window);
    const double per_s =
        static_cast<double>(rpcs.value() - before) /
        std::chrono::duration<double>(window).count();
    rates[scheme] = per_s;
    std::printf("%12s %16.1f %18.1f\n", batched ? "batched" : "per-lease",
                per_s, per_s * 0.1);
    host.stop_all();
  }
  if (rates[1] > 0)
    std::printf("  reduction: %.1fx fewer renewal RPCs for a %d-service host\n",
                rates[0] / rates[1], workers);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  if (!smoke) {
    lookup_latency_vs_directory_size();
    registration_throughput();
    lease_expiry_ablation();
  }
  query_scaling(smoke);
  client_cache(smoke);
  renewal_batching(smoke);
  return 0;
}
