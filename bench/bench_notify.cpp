// E3 — Notification fan-out (paper §2.5, Fig 8).
//
// Measures the latency from command execution at the notifying service to
// delivery at all subscribed services, as the subscriber count grows, plus
// the cost of addNotification itself. Expected shape: delivery latency
// grows roughly linearly with fan-out (one notifier thread walks the list),
// while the issuing client's command latency stays flat (fan-out is
// asynchronous, off the control thread).
#include <atomic>

#include "bench_common.hpp"
#include "daemon/daemon.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

class PingSource : public daemon::ServiceDaemon {
 public:
  PingSource(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(cmdlang::CommandSpec("fire", "fires notifications"),
                     [](const CmdLine&, const daemon::CallerInfo&) {
                       return cmdlang::make_ok();
                     });
  }
};

class CountingSink : public daemon::ServiceDaemon {
 public:
  CountingSink(daemon::Environment& env, daemon::DaemonHost& host,
               daemon::DaemonConfig config, std::atomic<int>* counter)
      : ServiceDaemon(env, host, std::move(config)), counter_(counter) {
    register_command(cmdlang::CommandSpec("onFire", "sink")
                         .arg(cmdlang::string_arg("source"))
                         .arg(cmdlang::word_arg("command"))
                         .arg(cmdlang::string_arg("detail")),
                     [this](const CmdLine&, const daemon::CallerInfo&) {
                       counter_->fetch_add(1);
                       return cmdlang::make_ok();
                     });
  }

 private:
  std::atomic<int>* counter_;
};

void fanout_latency() {
  bench::header("E3", "notification fan-out latency vs subscriber count");
  std::printf("%12s %16s %18s %18s\n", "subscribers", "cmd_reply_us",
              "all_delivered_ms", "per_subscriber_us");
  for (int subscribers : {1, 2, 4, 8, 16, 32}) {
    testenv::AceTestEnv deployment(50);
    if (!deployment.start().ok()) return;
    auto client = deployment.make_client("bench", "user/bench");
    daemon::DaemonHost host(deployment.env, "work");

    daemon::DaemonConfig src_cfg;
    src_cfg.name = "source";
    src_cfg.room = "hawk";
    auto& source = host.add_daemon<PingSource>(src_cfg);
    if (!source.start().ok()) return;

    std::atomic<int> delivered{0};
    for (int i = 0; i < subscribers; ++i) {
      daemon::DaemonConfig sink_cfg;
      sink_cfg.name = "sink" + std::to_string(i);
      sink_cfg.room = "hawk";
      auto& sink = host.add_daemon<CountingSink>(sink_cfg, &delivered);
      if (!sink.start().ok()) return;
      CmdLine sub("addNotification");
      sub.arg("command", Word{"fire"});
      sub.arg("service", sink.address().to_string());
      sub.arg("method", Word{"onFire"});
      auto r = client->call(source.address(), sub, daemon::kCallOk);
      if (!r.ok()) return;
    }

    constexpr int kRounds = 20;
    bench::Series reply_us, delivered_ms;
    for (int round = 0; round < kRounds; ++round) {
      int target = (round + 1) * subscribers;
      auto start = bench::Clock::now();
      auto r = client->call(source.address(), CmdLine("fire"), daemon::kCallOk);
      reply_us.add(bench::us_since(start));
      if (!r.ok()) return;
      while (delivered.load() < target) std::this_thread::sleep_for(200us);
      delivered_ms.add(bench::us_since(start) / 1000.0);
    }
    std::printf("%12d %16.1f %18.2f %18.1f\n", subscribers,
                reply_us.percentile(50), delivered_ms.percentile(50),
                delivered_ms.percentile(50) * 1000.0 / subscribers);
  }
  std::printf(
      "  (shape: client-visible command latency stays flat; delivery time\n"
      "   scales with fan-out since one notifier thread serves the list)\n");
}

}  // namespace

int main() {
  fanout_latency();
  return 0;
}
