// E14 — MTTR and goodput under deterministic chaos (paper §2.4, §5.2).
//
// A standard 30-second fault schedule (seed-reproducible, overridable via
// ACE_CHAOS_SEED / ACE_CHAOS_DURATION_MS) is applied to a deployment of
// four Robustness-Manager-managed services spread over three worker hosts,
// with `restart_services = false`: the chaos engine only crashes; every
// recovery is the fabric's job (lease expiry -> serviceExpired -> RM ->
// SAL -> HAL relaunch). Two measurement threads run alongside:
//
//  * a prober (breaker disabled, so the instrument does not distort the
//    measurement) pings each managed service on a tight cadence; MTTR for
//    a crash is the gap between the crash event and the first successful
//    probe after it,
//  * a load generator (full hardened client: retries, jittered backoff,
//    circuit breaker) issues round-robin calls and counts goodput.
//
// The run asserts the acceptance bar — every managed service alive and
// re-registered with the ASD at schedule end — and exports the deployment
// metrics snapshot (chaos.*, rm.*, client.*, bench.chaos.*) to
// bench_chaos.metrics.json.
#include <cstdlib>
#include <thread>

#include "bench_common.hpp"
#include "chaos/chaos.hpp"
#include "services/asd.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "store/robustness.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

struct ProbeSample {
  bench::Clock::time_point at;
  bool ok = false;
};

std::chrono::milliseconds duration_from_env() {
  if (const char* raw = std::getenv("ACE_CHAOS_DURATION_MS"))
    if (long ms = std::atol(raw); ms > 0) return std::chrono::milliseconds(ms);
  return 30000ms;
}

daemon::DaemonConfig service_cfg(const std::string& name) {
  daemon::DaemonConfig cfg;
  cfg.name = name;
  cfg.room = "machine-room";
  return cfg;
}

daemon::DaemonConfig managed_cfg(const std::string& name) {
  // Short leases so the directory notices a death quickly; MTTR is
  // dominated by detection (lease expiry) + relaunch, not probe cadence.
  daemon::DaemonConfig cfg = service_cfg(name);
  cfg.lease = 300ms;
  cfg.lease_renew = 100ms;
  return cfg;
}

}  // namespace

int main() {
  const std::uint64_t seed = chaos::seed_from_env(0xe14);
  const auto duration = duration_from_env();

  bench::header("E14", "MTTR and goodput under deterministic chaos");

  testenv::AceTestEnv deployment;
  if (!deployment.start().ok()) return 1;
  auto& env = deployment.env;
  auto& metrics = env.metrics();

  // --- fabric: three worker hosts with HALs, a stable control host with
  // --- SAL + Robustness Manager (the recovery machinery itself is not a
  // --- chaos target; the experiment measures *service* recovery).
  const std::vector<std::string> worker_names = {"w1", "w2", "w3"};
  std::vector<std::unique_ptr<daemon::DaemonHost>> workers;
  std::vector<services::HalDaemon*> hals;
  for (const auto& name : worker_names) {
    workers.push_back(std::make_unique<daemon::DaemonHost>(env, name));
    auto& hal =
        workers.back()->add_daemon<services::HalDaemon>(service_cfg("hal-" +
                                                                    name));
    if (!hal.start().ok()) return 1;
    hals.push_back(&hal);
  }

  daemon::DaemonHost control(env, "control");
  auto& sal = control.add_daemon<services::SalDaemon>(service_cfg("sal"));
  if (!sal.start().ok()) return 1;

  store::RobustnessOptions rm_opts;
  rm_opts.watch_interval = 100ms;
  auto& rm = control.add_daemon<store::RobustnessManagerDaemon>(
      service_cfg("rm"), rm_opts);
  if (!rm.start().ok()) return 1;

  // --- four managed services spread over the workers. Relaunch restarts
  // --- the same daemon object on the same host (and the same address, as
  // --- the first ephemeral port binding is sticky), so the chaos engine's
  // --- and prober's handles stay valid across every crash cycle.
  const std::vector<std::string> svc_names = {"svc1", "svc2", "svc3", "svc4"};
  std::vector<services::HrmDaemon*> svcs;
  auto mgmt = deployment.make_client("mgmt", "user/mgmt");
  for (std::size_t i = 0; i < svc_names.size(); ++i) {
    auto& worker = *workers[i % workers.size()];
    auto* svc =
        &worker.add_daemon<services::HrmDaemon>(managed_cfg(svc_names[i]));
    if (!svc->start().ok()) return 1;
    svcs.push_back(svc);
    hals[i % hals.size()]->register_launchable(
        svc_names[i], [svc]() -> util::Status { return svc->start(); });

    CmdLine manage("rmRegister");
    manage.arg("name", Word{svc_names[i]});
    manage.arg("kind", Word{"restart"});
    manage.arg("host", worker.name());
    if (!mgmt->call(rm.address(), manage, daemon::kCallOk).ok()) return 1;
  }

  // --- chaos schedule: crashes are never paired with restarts; network
  // --- faults run among the worker hosts only, so the measurement plane
  // --- (prober / load client on their own hosts) is never partitioned and
  // --- a failed probe always means the service itself was unavailable.
  chaos::ScheduleParams params;
  params.duration = duration;
  params.mean_interval = 600ms;
  params.min_fault = 300ms;
  params.max_fault = 1500ms;
  params.restart_services = false;
  chaos::Targets targets;
  targets.services = svc_names;
  targets.hosts = worker_names;

  chaos::Schedule schedule = chaos::generate_schedule(seed, params, targets);
  chaos::ChaosEngine engine(env, schedule);
  for (std::size_t i = 0; i < svcs.size(); ++i)
    engine.add_service(svc_names[i], svcs[i]);
  std::printf("  seed=%llu duration=%lldms events=%zu\n",
              static_cast<unsigned long long>(seed),
              static_cast<long long>(duration.count()),
              schedule.events.size());

  // --- prober: recovery detector. Breaker off so open-state fast-fails
  // --- cannot quantise the recovery timestamps it records.
  std::vector<std::vector<ProbeSample>> probes(svcs.size());
  auto prober_client = deployment.make_client("probe", "user/probe");
  prober_client->set_policy({.breaker = {.failure_threshold = 0}});
  std::jthread prober([&](std::stop_token st) {
    const daemon::CallOptions opts{.timeout = 100ms,
                                   .require_ok = true,
                                   .retries = 0,
                                   .backoff = 1ms};
    while (!st.stop_requested()) {
      for (std::size_t i = 0; i < svcs.size(); ++i) {
        const bool ok =
            prober_client->call(svcs[i]->address(), CmdLine("ping"), opts)
                .ok();
        probes[i].push_back({bench::Clock::now(), ok});
      }
      std::this_thread::sleep_for(10ms);
    }
  });

  // --- load generator: the hardened client path end to end (retries with
  // --- jittered backoff + circuit breaker). Goodput is the fraction of
  // --- calls that complete despite the ongoing faults.
  std::atomic<std::uint64_t> load_total{0}, load_ok{0};
  auto load_client = deployment.make_client("load", "user/load");
  std::jthread load([&](std::stop_token st) {
    const daemon::CallOptions opts{.timeout = 400ms,
                                   .require_ok = true,
                                   .retries = 2,
                                   .backoff = 20ms,
                                   .backoff_cap = 200ms};
    std::size_t next = 0;
    while (!st.stop_requested()) {
      const auto& target = *svcs[next++ % svcs.size()];
      load_total++;
      if (load_client->call(target.address(), CmdLine("ping"), opts).ok())
        load_ok++;
      std::this_thread::sleep_for(10ms);
    }
  });

  // Warm-up window: everything healthy, establishes the baseline.
  std::this_thread::sleep_for(1s);
  const std::uint64_t base_total = load_total.load();
  const std::uint64_t base_ok = load_ok.load();

  const auto chaos_start = bench::Clock::now();
  engine.start();
  engine.join();
  const std::uint64_t chaos_total = load_total.load() - base_total;
  const std::uint64_t chaos_ok = load_ok.load() - base_ok;

  // --- acceptance bar: every managed service alive and re-registered with
  // --- the ASD after the schedule completes (the last crash may land near
  // --- the horizon, so give the relaunch chain room to finish).
  services::AsdClient asd(*mgmt, env.asd_address);
  bool all_live = false;
  for (int i = 0; i < 1000 && !all_live; ++i) {
    all_live = true;
    for (std::size_t s = 0; s < svcs.size(); ++s) {
      const bool live =
          asd.lookup(svc_names[s]).ok() &&
          mgmt->call(svcs[s]->address(), CmdLine("ping"),
                     {.timeout = 200ms, .require_ok = true, .retries = 0})
              .ok();
      if (!live) {
        all_live = false;
        break;
      }
    }
    if (!all_live) std::this_thread::sleep_for(10ms);
  }
  prober.request_stop();
  load.request_stop();
  prober.join();
  load.join();

  // --- MTTR: per applied crash, the gap to the first successful probe of
  // --- that service after the crash instant.
  bench::Series mttr_ms;
  int crashes = 0, recovered = 0;
  std::printf("\n%8s %8s %12s\n", "service", "at_ms", "mttr_ms");
  for (const auto& applied : engine.log()) {
    if (applied.event.kind != chaos::FaultKind::service_crash ||
        !applied.applied)
      continue;
    crashes++;
    std::size_t idx = 0;
    while (idx < svc_names.size() && svc_names[idx] != applied.event.a) idx++;
    const auto crash_at =
        chaos_start + std::chrono::milliseconds(applied.applied_at);
    double mttr = -1.0;
    for (const auto& sample : probes[idx]) {
      if (sample.ok && sample.at > crash_at) {
        mttr = std::chrono::duration_cast<
                   std::chrono::duration<double, std::milli>>(sample.at -
                                                              crash_at)
                   .count();
        break;
      }
    }
    if (mttr >= 0) {
      recovered++;
      mttr_ms.add(mttr);
    }
    std::printf("%8s %8lld %12.1f\n", applied.event.a.c_str(),
                static_cast<long long>(applied.applied_at.count()), mttr);
  }

  const double goodput =
      chaos_total ? 100.0 * static_cast<double>(chaos_ok) /
                        static_cast<double>(chaos_total)
                  : 0.0;
  const double baseline = base_total ? 100.0 * static_cast<double>(base_ok) /
                                           static_cast<double>(base_total)
                                     : 0.0;
  std::printf("\n  crashes=%d recovered=%d all_live_at_end=%s\n", crashes,
              recovered, all_live ? "yes" : "NO");
  std::printf("  MTTR ms: mean=%.0f p50=%.0f max=%.0f\n", mttr_ms.mean(),
              mttr_ms.percentile(50), mttr_ms.max());
  std::printf("  goodput: %.1f%% under chaos (baseline %.1f%%, %llu calls)\n",
              goodput, baseline,
              static_cast<unsigned long long>(chaos_total));
  std::printf("  rm restarts=%d client retries=%llu breaker trips=%llu\n",
              rm.total_restarts(),
              static_cast<unsigned long long>(
                  metrics.counter("client.retries").value()),
              static_cast<unsigned long long>(
                  metrics.counter("client.breaker_trips").value()));

  metrics.gauge("bench.chaos.seed").set(static_cast<std::int64_t>(seed));
  metrics.gauge("bench.chaos.duration_ms").set(duration.count());
  metrics.gauge("bench.chaos.crashes").set(crashes);
  metrics.gauge("bench.chaos.recovered").set(recovered);
  metrics.gauge("bench.chaos.all_live").set(all_live ? 1 : 0);
  metrics.gauge("bench.chaos.mttr_ms_mean")
      .set(static_cast<std::int64_t>(mttr_ms.mean()));
  metrics.gauge("bench.chaos.mttr_ms_p50")
      .set(static_cast<std::int64_t>(mttr_ms.percentile(50)));
  metrics.gauge("bench.chaos.mttr_ms_max")
      .set(static_cast<std::int64_t>(mttr_ms.max()));
  metrics.gauge("bench.chaos.goodput_permille")
      .set(static_cast<std::int64_t>(goodput * 10.0));
  bench::export_metrics_json("bench_chaos", metrics.snapshot());

  const bool pass = all_live && crashes > 0 && recovered == crashes;
  std::printf("  E14 %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
