// E16 — Scaled persistent store: sharding, quorum replication, Merkle
// anti-entropy, group commit (supersedes E9's resync and throughput
// numbers; see EXPERIMENTS.md).
//
// Measures the four claims of the scaled design:
//   * E16a sharding: a >N cluster spreads the namespace, each key keeps
//     exactly N copies on its ring preference list,
//   * E16b Merkle anti-entropy: resync cost is ~flat in total store size
//     for fixed divergence, vs the full-digest exchange growing linearly,
//   * E16c quorum ablation: write latency vs W,
//   * E16d group commit: concurrent replicated-write throughput, batched
//     vs per-write fan-out (the E9e 9.4k writes/s baseline),
//   * E16e chaos torture: acked-write durability under W=2 with replicas
//     crashing and restarting mid-storm.
//
// Plus the read-path experiments (E20, see EXPERIMENTS.md):
//   * E20a digest reads: read latency vs R with the parallel digest
//     fan-out on/off, and read repair converging a stale replica,
//   * E20b paginated scans: storeScan page streaming vs one-shot
//     storeList at growing key counts, reply size bounded by the limit.
//
// `--smoke` runs a seconds-scale subset (used by ci.sh bench-smoke) and
// still exports `bench_store.metrics.json` for counter validation.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <thread>

#include "bench_common.hpp"
#include "chaos/chaos.hpp"
#include "store/persistent_store.hpp"
#include "store/store_client.hpp"

using namespace ace;
using namespace std::chrono_literals;

namespace {

struct Cluster {
  std::unique_ptr<testenv::AceTestEnv> deployment;
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts;
  std::vector<std::shared_ptr<io::SimDisk>> disks;  // durable clusters only
  std::vector<store::PersistentStoreDaemon*> replicas;
  std::vector<net::Address> addresses;
  std::unique_ptr<daemon::AceClient> client;
};

Cluster make_cluster(int replica_count, std::uint64_t seed,
                     store::StoreOptions options = {}, bool durable = false) {
  Cluster c;
  c.deployment = std::make_unique<testenv::AceTestEnv>(seed);
  if (!c.deployment->start().ok()) return c;
  for (int i = 0; i < replica_count; ++i) {
    c.hosts.push_back(std::make_unique<daemon::DaemonHost>(
        c.deployment->env, "store" + std::to_string(i + 1)));
    daemon::DaemonConfig cfg;
    cfg.name = "store" + std::to_string(i + 1);
    cfg.room = "machine-room";
    cfg.port = 6000;
    if (durable) {
      c.disks.push_back(std::make_shared<io::SimDisk>(seed * 10 + i));
      options.disk = c.disks.back();
    }
    c.replicas.push_back(&c.hosts.back()->add_daemon<store::PersistentStoreDaemon>(
        cfg, i + 1, options));
  }
  for (int i = 0; i < replica_count; ++i) {
    std::vector<net::Address> peers;
    for (int j = 0; j < replica_count; ++j)
      if (j != i) peers.push_back(c.replicas[j]->address());
    c.replicas[i]->set_peers(peers);
    (void)c.replicas[i]->start();
    c.addresses.push_back(c.replicas[i]->address());
  }
  c.client = c.deployment->make_client("app", "svc/app");
  return c;
}

// ------------------------------------------------------------------- E16a
void shard_layout(bool smoke) {
  bench::header("E16a", "sharding: 5 replicas, N=3 preference lists");
  store::StoreOptions opts;
  opts.replication = 3;
  Cluster c = make_cluster(5, 160, opts);
  if (!c.client) return;
  store::StoreClient store(*c.client, c.addresses, 3);

  const int keys = smoke ? 60 : 200;
  util::Bytes payload(64, 0x42);
  for (int i = 0; i < keys; ++i)
    if (!store.put("shard/k" + std::to_string(i), payload).ok()) return;

  int copies = 0, misplaced = 0;
  for (int i = 0; i < keys; ++i) {
    const std::string key = "shard/k" + std::to_string(i);
    auto owners = c.replicas[0]->ring().preference_list(key, 3);
    for (std::size_t r = 0; r < c.replicas.size(); ++r) {
      const bool holds = c.replicas[r]->object(key).has_value();
      const bool owns = std::find(owners.begin(), owners.end(),
                                  c.addresses[r]) != owners.end();
      if (holds) ++copies;
      if (holds != owns) ++misplaced;
    }
  }
  std::printf("  %d keys -> %d copies (expect %d), %d misplaced\n", keys,
              copies, keys * 3, misplaced);
  std::printf("  per-replica live objects:");
  for (auto* r : c.replicas)
    std::printf(" %zu", r->object_count());
  std::printf("\n  (shape: ~3/5 of the keyspace per replica, not full "
              "copies everywhere)\n");
}

// ------------------------------------------------------------------- E16b
struct ResyncResult {
  double ms = 0;
  long long fetched = 0;
  std::uint64_t tree_rpcs = 0;
  std::uint64_t bucket_rpcs = 0;
};

ResyncResult run_resync(int total_objects, int divergent, bool merkle,
                        obs::MetricsSnapshot* snapshot_out = nullptr) {
  store::StoreOptions opts;
  opts.merkle_sync = merkle;
  Cluster c = make_cluster(3, 161, opts);
  ResyncResult r;
  if (!c.client) return r;
  store::StoreClient store(*c.client, c.addresses);
  util::Bytes payload(128, 0x5a);
  for (int i = 0; i < total_objects; ++i)
    if (!store.put("base/" + std::to_string(i), payload).ok()) return r;

  // Fixed divergence: replica 3 misses `divergent` writes, then resyncs.
  // fail() crashes the daemon too, so the resync below is the only
  // anti-entropy running — no monitor thread races the measurement.
  c.hosts[2]->fail();
  for (int i = 0; i < divergent; ++i)
    (void)store.put("miss/" + std::to_string(i), payload);
  c.hosts[2]->restore();

  auto& metrics = c.deployment->env.metrics();
  const auto tree0 = metrics.counter("store.sync_tree_rpcs").value();
  const auto bucket0 = metrics.counter("store.sync_bucket_rpcs").value();
  auto start = bench::Clock::now();
  auto fetched = c.replicas[2]->sync_from_peers();
  r.ms = bench::us_since(start) / 1000.0;
  if (fetched.ok()) r.fetched = fetched.value();
  r.tree_rpcs = metrics.counter("store.sync_tree_rpcs").value() - tree0;
  r.bucket_rpcs = metrics.counter("store.sync_bucket_rpcs").value() - bucket0;
  if (snapshot_out) *snapshot_out = metrics.snapshot();
  return r;
}

void merkle_resync(bool smoke, obs::MetricsSnapshot* exported) {
  bench::header("E16b",
                "anti-entropy: Merkle tree vs full digest, fixed divergence");
  std::printf("%10s %8s %12s %10s %10s %10s\n", "objects", "mode",
              "resync_ms", "fetched", "tree_rpcs", "bkt_rpcs");
  const std::vector<int> sizes =
      smoke ? std::vector<int>{400} : std::vector<int>{500, 2000, 8000};
  const int divergent = 64;
  for (int n : sizes) {
    obs::MetricsSnapshot snap;
    ResyncResult m = run_resync(n, divergent, true, &snap);
    *exported = snap;  // largest Merkle run's counters back the claims
    std::printf("%10d %8s %12.1f %10lld %10llu %10llu\n", n, "merkle", m.ms,
                m.fetched, static_cast<unsigned long long>(m.tree_rpcs),
                static_cast<unsigned long long>(m.bucket_rpcs));
    ResyncResult f = run_resync(n, divergent, false);
    std::printf("%10d %8s %12.1f %10lld %10s %10s\n", n, "full", f.ms,
                f.fetched, "-", "-");
  }
  std::printf("  (shape: merkle resync ~flat in store size — O(log buckets "
              "+ divergence); full digest grows linearly)\n");
}

// ------------------------------------------------------------------- E16c
void quorum_ablation(bool smoke) {
  bench::header("E16c", "write latency vs write quorum W (3 replicas)");
  std::printf("%6s %14s %14s %10s\n", "W", "write_us(p50)", "write_us(p99)",
              "acks");
  const int writes = smoke ? 100 : 300;
  for (int w : {0, 1, 2, 3}) {
    store::StoreOptions opts;
    opts.write_quorum = w;
    Cluster c = make_cluster(3, 162, opts);
    if (!c.client) return;
    store::StoreClient store(*c.client, c.addresses);
    util::Bytes payload(256, 0xab);
    (void)store.put("warm", payload);
    bench::Series us;
    for (int i = 0; i < writes; ++i) {
      auto start = bench::Clock::now();
      if (!store.put("q/" + std::to_string(i % 50), payload).ok()) return;
      us.add(bench::us_since(start));
    }
    const auto acks =
        c.deployment->env.metrics().counter("store.replica_acks").value();
    std::printf("%6d %14.1f %14.1f %10llu\n", w, us.percentile(50),
                us.percentile(99), static_cast<unsigned long long>(acks));
  }
  std::printf("  (shape: W changes the failure contract, not the happy "
              "path — every attempt is awaited so hints are observed)\n");
}

// ------------------------------------------------------------------- E16d
// Writers injecting storePut through execute() — the same concurrency the
// wire sees for concurrent_ok commands, minus the client-RPC overhead that
// dominates wall-clock on small hosts. This isolates the replication
// engine: coordinate_write + preference-list fan-out.
double run_engine_storm(Cluster& c, int writers,
                        std::chrono::milliseconds duration) {
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(writers), 0);
  util::Bytes payload(256, 0x7e);
  const std::string hex = store::hex_of(payload);
  daemon::CallerInfo caller;
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      auto* coordinator = c.replicas[static_cast<std::size_t>(t) %
                                     c.replicas.size()];
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        cmdlang::CmdLine put("storePut");
        put.arg("key",
                "w" + std::to_string(t) + "/" + std::to_string(i++ % 100))
            .arg("data", hex);
        if (cmdlang::is_ok(coordinator->execute(put, caller)))
          counts[static_cast<std::size_t>(t)]++;
      }
    });
  }
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (auto n : counts) total += n;
  return static_cast<double>(total) /
         std::chrono::duration<double>(duration).count();
}

// End-to-end contrast: writers going through StoreClient over the wire.
double run_wire_storm(Cluster& c, int writers,
                      std::chrono::milliseconds duration) {
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<daemon::AceClient>> clients;
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(writers), 0);
  for (int t = 0; t < writers; ++t)
    clients.push_back(c.deployment->make_client("app" + std::to_string(t),
                                                "svc/app" + std::to_string(t)));
  util::Bytes payload(256, 0x7e);
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      store::StoreClient store(*clients[static_cast<std::size_t>(t)],
                               c.addresses);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key =
            "w" + std::to_string(t) + "/" + std::to_string(i++ % 100);
        if (store.put(key, payload).ok())
          counts[static_cast<std::size_t>(t)]++;
      }
    });
  }
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (auto n : counts) total += n;
  return static_cast<double>(total) /
         std::chrono::duration<double>(duration).count();
}

void group_commit_throughput(bool smoke) {
  bench::header("E16d",
                "group commit: concurrent replicated-write throughput");
  std::printf("%10s %14s %10s %14s %16s\n", "harness", "group_commit",
              "writers", "writes/s", "records/flush");
  const auto duration = smoke ? 500ms : 1500ms;
  const int engine_writers = 28, wire_writers = 6;
  double engine_on = 0, engine_off = 0;
  for (bool batched : {true, false}) {
    store::StoreOptions opts;
    opts.group_commit = batched;
    Cluster c = make_cluster(3, 163, opts);
    if (!c.client) return;
    double rate = run_engine_storm(c, engine_writers, duration);
    (batched ? engine_on : engine_off) = rate;
    auto& m = c.deployment->env.metrics();
    const double flushes =
        static_cast<double>(m.counter("store.batch_flushes").value());
    const double records =
        static_cast<double>(m.counter("store.batch_records").value());
    std::printf("%10s %14s %10d %14.0f %16.1f\n", "engine",
                batched ? "on" : "off", engine_writers, rate,
                flushes > 0 ? records / flushes : 0.0);
  }
  {
    Cluster c = make_cluster(3, 163);
    if (!c.client) return;
    std::printf("%10s %14s %10d %14.0f %16s\n", "wire", "on", wire_writers,
                run_wire_storm(c, wire_writers, duration), "-");
  }
  if (engine_off > 0)
    std::printf("  group-commit speedup: %.1fx over per-write fan-out; "
                "%.1fx over the E9e wire baseline (~9.4k writes/s)\n",
                engine_on / engine_off, engine_on / 9400.0);
}

// ------------------------------------------------------------------- E16e
void chaos_durability(bool smoke) {
  bench::header("E16e",
                "acked-write durability under chaos (W=2, crash/restart)");
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 2;
  opts.probe_interval = 100ms;
  Cluster c = make_cluster(3, 164, opts);
  if (!c.client) return;
  store::StoreClient store(*c.client, c.addresses);

  chaos::ScheduleParams params;
  params.duration = smoke ? 1200ms : 3000ms;
  params.mean_interval = 300ms;
  params.min_fault = 200ms;
  params.max_fault = 700ms;
  params.service_cooldown = 300ms;
  params.weight_service_crash = 1;
  params.weight_link_down = 0;
  params.weight_host_isolate = 0;
  params.weight_latency_spike = 0;
  params.weight_loss_burst = 0;
  params.max_concurrent_crashes = 1;  // keep a W=2 majority alive
  chaos::Targets targets;
  targets.services = {"store1", "store2", "store3"};
  targets.hosts = {"store1", "store2", "store3"};
  auto schedule =
      chaos::generate_schedule(chaos::seed_from_env(0x16e), params, targets);

  std::mutex acked_mu;
  std::map<std::string, int> acked;
  std::atomic<bool> stop{false};
  std::atomic<int> attempts{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      const std::string key = "t/" + std::to_string(i % 64);
      attempts.fetch_add(1);
      if (store.put(key, util::to_bytes("v" + std::to_string(i))).ok()) {
        std::scoped_lock lock(acked_mu);
        acked[key] = i;
      }
      ++i;
      std::this_thread::sleep_for(1ms);
    }
  });

  int crashes = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& e : schedule.events) {
    std::this_thread::sleep_until(start + e.at);
    if (e.kind == chaos::FaultKind::service_crash) {
      c.replicas[e.a == "store1" ? 0 : e.a == "store2" ? 1 : 2]->crash();
      ++crashes;
    } else if (e.kind == chaos::FaultKind::service_restart) {
      (void)c.replicas[e.a == "store1" ? 0 : e.a == "store2" ? 1 : 2]->start();
    }
  }
  std::this_thread::sleep_until(start + schedule.duration);
  stop.store(true);
  writer.join();

  auto total_hints = [&] {
    return c.replicas[0]->hints_pending() + c.replicas[1]->hints_pending() +
           c.replicas[2]->hints_pending();
  };
  bool settled = false;
  for (int i = 0; i < 1000 && !settled; ++i) {
    settled = total_hints() == 0 &&
              c.replicas[0]->merkle_root() == c.replicas[1]->merkle_root() &&
              c.replicas[1]->merkle_root() == c.replicas[2]->merkle_root();
    if (!settled) std::this_thread::sleep_for(10ms);
  }

  // Durability contract (monotone LWW): every acked write reads back at
  // its own value or a later one — never older, never absent.
  int checked = 0, survived = 0;
  for (const auto& [key, seq] : acked) {
    auto got = store.get(key);
    ++checked;
    if (!got.ok()) continue;
    const std::string text = util::to_string(got.value());
    if (text.rfind("v", 0) == 0 && std::stoi(text.substr(1)) >= seq)
      ++survived;
  }
  std::printf("  %d crash events; %d write attempts, %zu keys acked\n",
              crashes, attempts.load(), acked.size());
  std::printf("  converged: %s; acked writes surviving: %d/%d (%.1f%%)\n",
              settled ? "yes" : "no", survived, checked,
              checked ? 100.0 * survived / checked : 0.0);
}

// ------------------------------------------------------------------- E19a
struct RecoveryRun {
  double recover_ms = 0;
  std::uint64_t snap_records = 0;
  std::uint64_t wal_records = 0;
  double resync_ms = 0;
  long long fetched = 0;
};

RecoveryRun run_restart_recovery(int total_objects, int divergent,
                                 obs::MetricsSnapshot* snapshot_out = nullptr) {
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 2;
  opts.probe_interval = 5s;    // keep the monitor out of the measurements
  opts.compact_wal_bytes = 0;  // compaction is explicit below
  Cluster c = make_cluster(3, 190, opts, /*durable=*/true);
  RecoveryRun r;
  if (!c.client) return r;
  store::StoreClient store(*c.client, c.addresses);
  util::Bytes payload(128, 0x5a);

  // First half, snapshot replica 3, second half: recovery must stitch the
  // snapshot and the post-snapshot WAL back together.
  for (int i = 0; i < total_objects / 2; ++i)
    if (!store.put("base/" + std::to_string(i), payload).ok()) return r;
  if (!c.replicas[2]->compact_now().ok()) return r;
  for (int i = total_objects / 2; i < total_objects; ++i)
    if (!store.put("base/" + std::to_string(i), payload).ok()) return r;

  // Machine power loss on replica 3; the survivors take `divergent` writes
  // it misses — the tail anti-entropy must cover after recovery.
  c.replicas[2]->crash();
  c.disks[2]->crash();
  for (int i = 0; i < divergent; ++i)
    (void)store.put("miss/" + std::to_string(i), payload);

  auto start = bench::Clock::now();
  if (!c.replicas[2]->start().ok()) return r;
  r.recover_ms = bench::us_since(start) / 1000.0;
  auto rs = c.replicas[2]->last_recovery();
  r.snap_records = rs.snapshot_records;
  r.wal_records = rs.wal_records;

  start = bench::Clock::now();
  auto fetched = c.replicas[2]->sync_from_peers();
  r.resync_ms = bench::us_since(start) / 1000.0;
  if (fetched.ok()) r.fetched = fetched.value();
  if (snapshot_out) *snapshot_out = c.deployment->env.metrics().snapshot();
  return r;
}

void restart_recovery(bool smoke, obs::MetricsSnapshot* exported) {
  bench::header("E19a",
                "restart recovery: snapshot + WAL replay, then tail resync");
  std::printf("%10s %12s %10s %10s %11s %8s\n", "objects", "recover_ms",
              "snap_rec", "wal_rec", "resync_ms", "fetched");
  const std::vector<int> sizes =
      smoke ? std::vector<int>{500} : std::vector<int>{1000, 8000, 32000};
  const int divergent = 64;
  for (int n : sizes) {
    obs::MetricsSnapshot snap;
    RecoveryRun r = run_restart_recovery(n, divergent, &snap);
    *exported = snap;  // largest durable run's counters back the claims
    std::printf("%10d %12.1f %10llu %10llu %11.1f %8lld\n", n, r.recover_ms,
                static_cast<unsigned long long>(r.snap_records),
                static_cast<unsigned long long>(r.wal_records), r.resync_ms,
                r.fetched);
  }
  std::printf("  (shape: recovery replay grows with store size; the "
              "post-restart Merkle resync stays ~flat — it covers only the "
              "missed-write tail, not the recovered bulk)\n");
}

// ------------------------------------------------------------------- E19b
void chaos_disk_durability(bool smoke) {
  bench::header("E19b",
                "durability under combined crash + disk-fault chaos (W=2)");
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 2;
  opts.probe_interval = 100ms;
  opts.compact_wal_bytes = 32u << 10;  // compact mid-storm, under fire
  Cluster c = make_cluster(3, 191, opts, /*durable=*/true);
  if (!c.client) return;
  store::StoreClient store(*c.client, c.addresses);

  chaos::ScheduleParams params;
  params.duration = smoke ? 1200ms : 3000ms;
  params.mean_interval = 250ms;
  params.min_fault = 200ms;
  params.max_fault = 700ms;
  params.service_cooldown = 300ms;
  params.weight_service_crash = 2;
  params.weight_link_down = 0;
  params.weight_host_isolate = 0;
  params.weight_latency_spike = 0;
  params.weight_loss_burst = 0;
  params.weight_disk_fault = 3;
  params.disk_bit_rot = false;  // torn tails + dropped fsyncs
  params.fsync_drop_count = 2;
  params.max_concurrent_crashes = 1;  // keep a W=2 majority alive
  chaos::Targets targets;
  targets.services = {"store1", "store2", "store3"};
  targets.hosts = {"store1", "store2", "store3"};
  targets.disks = {"store1", "store2", "store3"};
  auto schedule =
      chaos::generate_schedule(chaos::seed_from_env(0x19b), params, targets);
  int crashes = 0, disk_faults = 0;
  for (const auto& e : schedule.events) {
    if (e.kind == chaos::FaultKind::service_crash) ++crashes;
    if (e.kind == chaos::FaultKind::disk_torn_tail ||
        e.kind == chaos::FaultKind::disk_fsync_drop)
      ++disk_faults;
  }

  chaos::ChaosEngine engine(c.deployment->env, schedule);
  for (int i = 0; i < 3; ++i) {
    const std::string name = "store" + std::to_string(i + 1);
    engine.add_service(name, c.replicas[static_cast<std::size_t>(i)]);
    // A crash on this name is a machine power event: process AND tails die.
    engine.add_disk(name, c.disks[static_cast<std::size_t>(i)].get());
  }

  std::mutex acked_mu;
  std::map<std::string, int> acked;
  std::atomic<bool> stop{false};
  std::atomic<int> attempts{0};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      const std::string key = "t/" + std::to_string(i % 64);
      attempts.fetch_add(1);
      if (store.put(key, util::to_bytes("v" + std::to_string(i))).ok()) {
        std::scoped_lock lock(acked_mu);
        acked[key] = i;
      }
      ++i;
      std::this_thread::sleep_for(1ms);
    }
  });
  engine.start();
  engine.join();
  stop.store(true);
  writer.join();

  auto total_hints = [&] {
    return c.replicas[0]->hints_pending() + c.replicas[1]->hints_pending() +
           c.replicas[2]->hints_pending();
  };
  auto converge = [&] {
    bool settled = false;
    for (int i = 0; i < 1000 && !settled; ++i) {
      settled = total_hints() == 0 &&
                c.replicas[0]->merkle_root() == c.replicas[1]->merkle_root() &&
                c.replicas[1]->merkle_root() == c.replicas[2]->merkle_root();
      if (!settled) std::this_thread::sleep_for(10ms);
    }
    return settled;
  };
  bool settled = converge();

  // One final whole-cluster power cycle: whatever reads back after this
  // came off the disks, not out of anyone's memory.
  for (auto* r : c.replicas) r->crash();
  for (auto& d : c.disks) d->crash();
  for (auto* r : c.replicas) (void)r->start();
  settled = converge() && settled;

  int checked = 0, survived = 0;
  for (const auto& [key, seq] : acked) {
    auto got = store.get(key);
    ++checked;
    if (!got.ok()) continue;
    const std::string text = util::to_string(got.value());
    if (text.rfind("v", 0) == 0 && std::stoi(text.substr(1)) >= seq)
      ++survived;
  }
  auto& m = c.deployment->env.metrics();
  std::printf("  %d power-cycle events, %d disk faults; %d write attempts, "
              "%zu keys acked\n",
              crashes, disk_faults, attempts.load(), acked.size());
  std::printf("  recoveries=%llu compactions=%llu torn_tails_dropped=%llu\n",
              static_cast<unsigned long long>(
                  m.counter("store.recoveries").value()),
              static_cast<unsigned long long>(
                  m.counter("store.snapshot_compactions").value()),
              static_cast<unsigned long long>(
                  m.counter("store.wal_torn_tail_dropped").value()));
  std::printf("  converged: %s; acked writes surviving final power cycle: "
              "%d/%d (%.1f%%)\n",
              settled ? "yes" : "no", survived, checked,
              checked ? 100.0 * survived / checked : 0.0);
}

// Sums `from`'s counters into `into` (and appends unseen gauges) so one
// exported artifact can carry evidence from several independent clusters —
// E19a's WAL counters and E20's read-path counters both survive.
void merge_counters(obs::MetricsSnapshot* into,
                    const obs::MetricsSnapshot& from) {
  for (const auto& ce : from.counters) {
    auto it = std::find_if(
        into->counters.begin(), into->counters.end(),
        [&](const obs::MetricsSnapshot::CounterEntry& e) {
          return e.name == ce.name;
        });
    if (it == into->counters.end())
      into->counters.push_back(ce);
    else
      it->value += ce.value;
  }
  for (const auto& ge : from.gauges) {
    auto it = std::find_if(into->gauges.begin(), into->gauges.end(),
                           [&](const obs::MetricsSnapshot::GaugeEntry& e) {
                             return e.name == ge.name;
                           });
    if (it == into->gauges.end())
      into->gauges.push_back(ge);
    else
      it->value = ge.value;
  }
}

// ------------------------------------------------------------------- E20a
// The read path's latency is dominated by replica round trips once links
// have real latency, so the cluster here runs with a 1 ms default link
// delay: the serial path pays one RTT per extra replica consulted, the
// digest path pays one RTT total (all fan-out RPCs in flight together) and
// moves the full value only once.
void read_path_ablation(bool smoke, obs::MetricsSnapshot* merged) {
  bench::header("E20a",
                "read latency vs R: parallel digest reads vs serial reads");
  std::printf("%6s %8s %13s %13s %10s\n", "R", "digest", "read_us(p50)",
              "read_us(p99)", "reads/s");
  const int reads = smoke ? 60 : 240;
  const int key_count = 32;
  double digest_p50_r3 = 0, serial_p50_r3 = 0;
  double digest_rate_r3 = 0, serial_rate_r3 = 0;
  for (int r : {1, 2, 3}) {
    for (bool digest : {true, false}) {
      store::StoreOptions opts;
      opts.read_quorum = r;
      opts.digest_reads = digest;
      opts.probe_interval = 5s;  // keep the monitor out of the measurement
      Cluster c = make_cluster(3, 200, opts);
      if (!c.client) return;
      c.deployment->env.network().set_default_latency(1ms);
      store::StoreClient store(*c.client, c.addresses);
      util::Bytes payload(1024, 0x3c);  // >=1 KB: full-value copies matter
      for (int i = 0; i < key_count; ++i)
        if (!store.put("r/" + std::to_string(i), payload).ok()) return;
      (void)store.get("r/0");  // warm connections
      bench::Series us;
      const auto t0 = bench::Clock::now();
      for (int i = 0; i < reads; ++i) {
        auto t = bench::Clock::now();
        if (!store.get("r/" + std::to_string(i % key_count)).ok()) return;
        us.add(bench::us_since(t));
      }
      const double rate = reads / (bench::us_since(t0) / 1e6);
      if (r == 3) {
        (digest ? digest_p50_r3 : serial_p50_r3) = us.percentile(50);
        (digest ? digest_rate_r3 : serial_rate_r3) = rate;
      }
      std::printf("%6d %8s %13.1f %13.1f %10.0f\n", r, digest ? "on" : "off",
                  us.percentile(50), us.percentile(99), rate);
      merge_counters(merged, c.deployment->env.metrics().snapshot());
    }
  }
  if (serial_p50_r3 > 0 && digest_p50_r3 > 0) {
    const double speedup = serial_p50_r3 / digest_p50_r3;
    std::printf("  R=3 digest-read speedup: %.2fx on p50 latency "
                "(%.2fx on throughput)\n",
                speedup, digest_rate_r3 / serial_rate_r3);
    merged->gauges.push_back(
        {"bench.e20a_digest_speedup_x100",
         static_cast<std::int64_t>(speedup * 100)});
  }

  // Read repair: one replica misses an overwrite behind a partition; after
  // the heal, a single strict-quorum read both answers the newest value
  // and pushes it back onto the stale replica.
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 3;
  opts.probe_interval = 60s;  // only read repair may converge the replica
  Cluster c = make_cluster(3, 201, opts);
  if (!c.client) return;
  store::StoreClient store(*c.client, c.addresses);
  if (!store.put("rr/k", util::to_bytes("v1")).ok()) return;
  auto& net = c.deployment->env.network();
  for (const char* peer : {"store1", "store2", "app"})
    net.set_partitioned("store3", peer, true);
  if (!store.put("rr/k", util::to_bytes("v2")).ok()) return;
  for (const char* peer : {"store1", "store2", "app"})
    net.set_partitioned("store3", peer, false);
  const auto t0 = bench::Clock::now();
  // Read through store1 specifically: a coordinator that is NOT the stale
  // replica, so the repair is a remote push (store3 coordinating would
  // self-heal inline without exercising the async path).
  cmdlang::CmdLine getcmd("storeGet");
  getcmd.arg("key", "rr/k");
  auto got = c.client->call(
      c.addresses[0], getcmd,
      daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
  auto& m = c.deployment->env.metrics();
  // Converged = replica holds the newest value AND the repair ack made it
  // back to the coordinator (the counter ticks one network beat later).
  bool repaired = false;
  for (int i = 0; i < 600 && !repaired; ++i) {
    auto obj = c.replicas[2]->object("rr/k");
    repaired = obj && util::to_string(obj->data) == "v2" &&
               m.counter("store.read_repairs").value() >= 1;
    if (!repaired) std::this_thread::sleep_for(5ms);
  }
  std::printf("  read repair: stale replica %s in %.1f ms after one read "
              "(read_repairs=%llu, mismatches=%llu)\n",
              repaired ? "converged" : "DID NOT CONVERGE",
              bench::us_since(t0) / 1000.0,
              static_cast<unsigned long long>(
                  m.counter("store.read_repairs").value()),
              static_cast<unsigned long long>(
                  m.counter("store.digest_mismatches").value()));
  if (!got.ok() || !cmdlang::is_ok(got.value()) ||
      got->get_text("data") != store::hex_of(util::to_bytes("v2")))
    std::printf("  WARNING: post-heal read did not return the newest value\n");
  merge_counters(merged, m.snapshot());
}

// ------------------------------------------------------------------- E20b
void scan_pagination(bool smoke, obs::MetricsSnapshot* merged) {
  bench::header("E20b",
                "paginated scans vs one-shot list (5 replicas, limit=256)");
  std::printf("%10s %10s %10s %8s %10s %14s\n", "keys", "list_ms", "scan_ms",
              "pages", "max_page", "scan_keys/s");
  const std::vector<int> sizes = smoke ? std::vector<int>{1000}
                                       : std::vector<int>{1000, 10000, 50000};
  std::size_t worst_page = 0;
  for (int n : sizes) {
    store::StoreOptions opts;
    opts.probe_interval = 5s;
    Cluster c = make_cluster(5, 202, opts);
    if (!c.client) return;
    store::StoreClient store(*c.client, c.addresses, 3);
    util::Bytes payload(64, 0x5e);
    char keybuf[32];
    for (int i = 0; i < n; ++i) {
      std::snprintf(keybuf, sizeof(keybuf), "scan/%06d", i);
      if (!store.put(keybuf, payload).ok()) return;
    }

    // One-shot wire storeList, called directly with a generous deadline:
    // the point of this column is the cost of materializing the whole
    // namespace in a single reply. (StoreClient::list() itself drains the
    // scan pager precisely so that callers never issue this RPC shape —
    // with a production 800 ms call timeout it stops fitting somewhere
    // past 10k keys.)
    cmdlang::CmdLine list_cmd("storeList");
    list_cmd.arg("prefix", std::string("scan/"));
    auto t0 = bench::Clock::now();
    auto one_shot = c.client->call(
        c.addresses[0], list_cmd,
        daemon::CallOptions{.timeout = 60000ms, .retries = 0});
    const double list_ms = bench::us_since(t0) / 1000.0;
    if (!one_shot.ok() || !cmdlang::is_ok(one_shot.value())) return;
    std::size_t listed_keys = 0;
    if (auto vec = one_shot->get_vector("keys"))
      listed_keys = vec->elements.size();

    t0 = bench::Clock::now();
    store::StoreScanner scanner = store.scan("scan/", 256);
    std::size_t scanned = 0, pages = 0, max_page = 0;
    while (!scanner.done()) {
      auto page = scanner.next_page();
      if (!page.ok()) return;
      scanned += page->size();
      max_page = std::max(max_page, page->size());
      ++pages;
    }
    const double scan_ms = bench::us_since(t0) / 1000.0;
    worst_page = std::max(worst_page, max_page);
    std::printf("%10d %10.1f %10.1f %8zu %10zu %14.0f\n", n, list_ms,
                scan_ms, pages, max_page,
                scan_ms > 0 ? scanned / (scan_ms / 1000.0) : 0.0);
    if (scanned != listed_keys || scanned != static_cast<std::size_t>(n))
      std::printf("  WARNING: scan saw %zu keys, list %zu, expected %d\n",
                  scanned, listed_keys, n);
    merge_counters(merged, c.deployment->env.metrics().snapshot());
  }
  merged->gauges.push_back(
      {"bench.e20b_scan_max_page_keys",
       static_cast<std::int64_t>(worst_page)});
  std::printf("  (shape: list() materializes the whole namespace in one "
              "reply; every scan reply is bounded by the page limit — "
              "max_page <= 256 at every size)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  obs::MetricsSnapshot exported;
  shard_layout(smoke);
  merkle_resync(smoke, &exported);
  quorum_ablation(smoke);
  group_commit_throughput(smoke);
  if (!smoke) chaos_durability(smoke);
  restart_recovery(smoke, &exported);
  if (!smoke) chaos_disk_durability(smoke);
  read_path_ablation(smoke, &exported);
  scan_pagination(smoke, &exported);
  // The artifact carries the proof of the mechanisms at work: quorum
  // writes (store.writes, store.replica_acks), group commit
  // (store.batch_records), Merkle anti-entropy (store.sync_tree_rpcs), the
  // WAL plane from the E19a durable run (store.wal_appends,
  // store.wal_fsyncs, store.recoveries, store.snapshot_compactions), and —
  // merged in from the E20 clusters — the read path
  // (store.digest_reads, store.digest_mismatches, store.read_repairs) and
  // paginated scans (store.scan_pages).
  bench::export_metrics_json("bench_store", exported);
  return 0;
}
