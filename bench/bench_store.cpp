// E9 — Persistent store (paper Ch 6, Fig 17).
//
// Reproduces the figure's claims as measurements:
//   * replicated write / read latency and throughput,
//   * availability under 1 and 2 replica failures ("ACE services may still
//     access the stored information"),
//   * anti-entropy resynchronisation time vs missed-write count,
//   * replica-count ablation (1/2/3): write cost vs redundancy,
//   * read load spreading across replicas (the bottleneck argument).
#include "bench_common.hpp"
#include "store/persistent_store.hpp"
#include "store/store_client.hpp"

using namespace ace;
using namespace std::chrono_literals;

namespace {

struct Cluster {
  std::unique_ptr<testenv::AceTestEnv> deployment;
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts;
  std::vector<store::PersistentStoreDaemon*> replicas;
  std::vector<net::Address> addresses;
  std::unique_ptr<daemon::AceClient> client;
};

Cluster make_cluster(int replica_count, std::uint64_t seed) {
  Cluster c;
  c.deployment = std::make_unique<testenv::AceTestEnv>(seed);
  if (!c.deployment->start().ok()) return c;
  for (int i = 0; i < replica_count; ++i) {
    c.hosts.push_back(std::make_unique<daemon::DaemonHost>(
        c.deployment->env, "store" + std::to_string(i + 1)));
    daemon::DaemonConfig cfg;
    cfg.name = "store" + std::to_string(i + 1);
    cfg.room = "machine-room";
    cfg.port = 6000;
    c.replicas.push_back(
        &c.hosts.back()->add_daemon<store::PersistentStoreDaemon>(cfg, i + 1));
  }
  for (int i = 0; i < replica_count; ++i) {
    std::vector<net::Address> peers;
    for (int j = 0; j < replica_count; ++j)
      if (j != i) peers.push_back(c.replicas[j]->address());
    c.replicas[i]->set_peers(peers);
    (void)c.replicas[i]->start();
    c.addresses.push_back(c.replicas[i]->address());
  }
  c.client = c.deployment->make_client("app", "svc/app");
  return c;
}

void replica_count_ablation() {
  bench::header("E9a", "write/read latency vs replica count (ablation)");
  std::printf("%10s %14s %14s\n", "replicas", "write_us(p50)",
              "read_us(p50)");
  for (int replicas : {1, 2, 3}) {
    Cluster c = make_cluster(replicas, 120);
    if (!c.client) return;
    store::StoreClient store(*c.client, c.addresses);
    util::Bytes payload(256, 0xab);
    (void)store.put("warm", payload);

    bench::Series write_us, read_us;
    for (int i = 0; i < 300; ++i) {
      auto start = bench::Clock::now();
      if (!store.put("key" + std::to_string(i % 50), payload).ok()) return;
      write_us.add(bench::us_since(start));
    }
    for (int i = 0; i < 300; ++i) {
      auto start = bench::Clock::now();
      if (!store.get("key" + std::to_string(i % 50)).ok()) return;
      read_us.add(bench::us_since(start));
    }
    std::printf("%10d %14.1f %14.1f\n", replicas, write_us.percentile(50),
                read_us.percentile(50));
  }
  std::printf("  (shape: write cost grows with replication factor; reads "
              "stay flat)\n");
}

void availability_under_failures() {
  bench::header("E9b", "availability under replica failures (Fig 17 claim)");
  std::printf("%16s %12s %12s\n", "failed_replicas", "reads_ok",
              "writes_ok");
  for (int failures : {0, 1, 2}) {
    Cluster c = make_cluster(3, 121);
    if (!c.client) return;
    store::StoreClient store(*c.client, c.addresses);
    for (int i = 0; i < 20; ++i)
      (void)store.put("pre" + std::to_string(i), util::to_bytes("x"));
    for (int f = 0; f < failures; ++f) c.hosts[f]->fail();

    int reads_ok = 0, writes_ok = 0;
    constexpr int kOps = 40;
    for (int i = 0; i < kOps; ++i) {
      if (store.get("pre" + std::to_string(i % 20)).ok()) reads_ok++;
      if (store.put("during" + std::to_string(i), util::to_bytes("y")).ok())
        writes_ok++;
      store.rotate();
    }
    std::printf("%16d %9d/%d %9d/%d\n", failures, reads_ok, kOps, writes_ok,
                kOps);
  }
}

void resync_time() {
  bench::header("E9c", "anti-entropy resync time vs missed writes");
  std::printf("%14s %14s %14s\n", "missed_writes", "resync_ms",
              "objects_fetched");
  for (int missed : {10, 50, 200, 500}) {
    Cluster c = make_cluster(3, 122);
    if (!c.client) return;
    store::StoreClient store(*c.client, c.addresses);
    c.hosts[2]->fail();
    util::Bytes payload(128, 0x5a);
    for (int i = 0; i < missed; ++i)
      (void)store.put("miss" + std::to_string(i), payload);
    c.hosts[2]->restore();
    auto start = bench::Clock::now();
    auto fetched = c.replicas[2]->sync_from_peers();
    double ms = bench::us_since(start) / 1000.0;
    if (!fetched.ok()) return;
    std::printf("%14d %14.1f %14lld\n", missed, ms,
                static_cast<long long>(fetched.value()));
  }
  std::printf("  (shape: resync time linear in the number of missed "
              "objects)\n");
}

void read_spreading() {
  bench::header("E9d", "read load spreading across replicas");
  Cluster c = make_cluster(3, 123);
  if (!c.client) return;
  store::StoreClient store(*c.client, c.addresses);
  (void)store.put("hot", util::Bytes(64, 1));
  constexpr int kReads = 300;
  for (int i = 0; i < kReads; ++i) {
    (void)store.get("hot");
    store.rotate();
  }
  std::printf("  %d reads of one hot key; per-replica commands executed:", kReads);
  for (auto* r : c.replicas)
    std::printf(" %llu",
                static_cast<unsigned long long>(r->stats().commands_executed));
  std::printf("\n  (shape: roughly even split instead of one hot server)\n");
}

void throughput() {
  bench::header("E9e", "sustained write throughput (3 replicas, 256B values)");
  Cluster c = make_cluster(3, 124);
  if (!c.client) return;
  store::StoreClient store(*c.client, c.addresses);
  util::Bytes payload(256, 0x7e);
  constexpr int kWrites = 1000;
  auto start = bench::Clock::now();
  for (int i = 0; i < kWrites; ++i)
    if (!store.put("k" + std::to_string(i % 100), payload).ok()) return;
  double seconds = bench::us_since(start) / 1e6;
  std::printf("  %d replicated writes in %.2f s -> %.0f writes/s\n", kWrites,
              seconds, kWrites / seconds);
}

}  // namespace

int main() {
  replica_count_ablation();
  availability_under_failures();
  resync_time();
  read_spreading();
  throughput();
  return 0;
}
