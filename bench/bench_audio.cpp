// E7 — Audio conferencing pipeline (paper §4.15, Fig 15).
//
// Reproduces the figure's composition quantitatively:
//   * end-to-end latency through capture -> mixer -> recorder,
//   * NLMS echo-canceller ERLE in dB vs adaptation time,
//   * speech-to-command (DTMF/Goertzel) decode accuracy vs noise level,
//   * ADPCM conversion throughput (the Converter in the voice path).
#include "bench_common.hpp"
#include "media/audio_services.hpp"
#include "media/codec.hpp"
#include "media/dsp.hpp"

using namespace ace;
using namespace ace::media;
using namespace std::chrono_literals;
using cmdlang::CmdLine;

namespace {

void pipeline_latency() {
  bench::header("E7a", "capture -> mixer -> recorder end-to-end latency");
  testenv::AceTestEnv deployment(100);
  if (!deployment.start().ok()) return;
  daemon::DaemonHost host(deployment.env, "av");
  auto client = deployment.make_client("bench", "user/bench");

  daemon::DaemonConfig cfg;
  cfg.room = "hawk";
  cfg.name = "cap";
  auto& cap = host.add_daemon<AudioCaptureDaemon>(cfg, "mic");
  cfg.name = "mix";
  auto& mixer = host.add_daemon<AudioMixerDaemon>(cfg, "mixed");
  cfg.name = "rec";
  auto& recorder = host.add_daemon<AudioRecorderDaemon>(cfg);
  if (!cap.start().ok() || !mixer.start().ok() || !recorder.start().ok())
    return;
  cap.add_sink(mixer.data_address());
  mixer.add_sink(recorder.data_address());
  CmdLine add("mixerAddInput");
  add.arg("stream", "mic");
  if (!client->call(mixer.address(), add, daemon::kCallOk).ok()) return;

  bench::Series latency_ms;
  std::size_t expected = 0;
  for (int round = 0; round < 50; ++round) {
    expected += kFrameSamples;
    auto start = bench::Clock::now();
    cap.capture_push(sine_wave(440, 8000, kFrameSamples, 0));
    while (recorder.recorded("mixed").size() < expected)
      std::this_thread::sleep_for(100us);
    latency_ms.add(bench::us_since(start) / 1000.0);
  }
  std::printf("  one 20ms frame through 3 daemons: p50=%.2f ms  p95=%.2f ms\n",
              latency_ms.percentile(50), latency_ms.percentile(95));
}

void echo_cancellation_convergence() {
  bench::header("E7b", "NLMS echo canceller: ERLE vs adaptation time");
  std::printf("%14s %12s\n", "audio_seconds", "erle_db");
  util::Rng rng(11);
  EchoCanceller ec(128, 0.6);
  constexpr std::size_t kDelay = 37;
  std::vector<std::int16_t> history(kDelay, 0);
  double processed_seconds = 0.0;
  for (double checkpoint : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    while (processed_seconds < checkpoint) {
      std::vector<std::int16_t> far(kFrameSamples), mic(kFrameSamples);
      for (std::size_t i = 0; i < kFrameSamples; ++i) {
        far[i] = static_cast<std::int16_t>(rng.next_gaussian() * 6000.0);
        history.push_back(far[i]);
        mic[i] = static_cast<std::int16_t>(0.55 * history.front());
        history.erase(history.begin());
      }
      ec.process(far, mic);
      processed_seconds += static_cast<double>(kFrameSamples) / kSampleRate;
    }
    std::printf("%14.2f %12.1f\n", checkpoint, ec.erle_db());
  }
  std::printf("  (shape: ERLE climbs as the adaptive filter converges)\n");
}

void speech_to_command_accuracy() {
  bench::header("E7c", "voice-command decode accuracy vs noise");
  std::printf("%12s %12s\n", "noise_rms", "decoded_ok");
  const std::string command = "ptzMove pan=10 tilt=5;";
  for (double noise : {0.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    util::Rng rng(13);
    int ok = 0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      auto audio = dtmf_encode(command);
      for (auto& s : audio) {
        double noisy = s + rng.next_gaussian() * noise;
        s = static_cast<std::int16_t>(std::clamp(noisy, -32767.0, 32767.0));
      }
      auto decoded = dtmf_decode(audio);
      if (decoded && *decoded == command) ++ok;
    }
    std::printf("%12.0f %10d/%d\n", noise, ok, kTrials);
  }
  std::printf("  (shape: perfect at low noise, degrades past the tone "
              "amplitude)\n");
}

void adpcm_throughput() {
  bench::header("E7d", "ADPCM conversion throughput (Converter voice path)");
  auto pcm = sine_wave(440, 9000, 80000, 0);
  AdpcmState enc;
  auto start = bench::Clock::now();
  constexpr int kRounds = 50;
  std::size_t bytes = 0;
  for (int i = 0; i < kRounds; ++i) {
    auto out = adpcm_encode(pcm, enc);
    bytes += out.size();
  }
  double seconds = bench::us_since(start) / 1e6;
  double audio_seconds =
      static_cast<double>(pcm.size()) * kRounds / kSampleRate;
  std::printf("  encoded %.0f s of audio in %.2f s (%.0fx realtime, "
              "%.1f MB/s PCM in)\n",
              audio_seconds, seconds, audio_seconds / seconds,
              pcm.size() * 2.0 * kRounds / seconds / 1e6);
  (void)bytes;
}

}  // namespace

int main() {
  pipeline_latency();
  echo_cancellation_convergence();
  speech_to_command_accuracy();
  adpcm_throughput();
  return 0;
}
