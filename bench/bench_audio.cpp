// E7 — Audio conferencing pipeline (paper §4.15, Fig 15) and
// E18 — zero-copy tag-routed data plane (docs/media.md).
//
// E7 reproduces the figure's composition quantitatively:
//   * end-to-end latency through capture -> mixer -> recorder,
//   * NLMS echo-canceller ERLE in dB vs adaptation time,
//   * speech-to-command (DTMF/Goertzel) decode accuracy vs noise level,
//   * ADPCM conversion throughput (the Converter in the voice path).
//
// E18 measures what the router rework bought:
//   * E18a: per-stage CPU per frame — header peek and view parse vs the
//     full decode + re-encode every hop used to pay,
//   * E18b: frames/s per CPU core through the full conference graph
//     (capture -> mixer -> echo canceller -> distribution -> N players),
//     zero-copy plane vs the legacy copying plane (set_legacy_copy_mode),
//     with the media.* counters proving zero payload copies on fan-out.
//
// `--smoke` runs a seconds-scale E18 subset (used by ci.sh bench-smoke)
// and exports bench_audio.metrics.json from the zero-copy run.
#include "bench_common.hpp"
#include "media/audio_services.hpp"
#include "media/codec.hpp"
#include "media/dsp.hpp"
#include "services/streaming.hpp"

#include <cstring>
#include <ctime>

using namespace ace;
using namespace ace::media;
using namespace std::chrono_literals;
using cmdlang::CmdLine;

namespace {

void pipeline_latency() {
  bench::header("E7a", "capture -> mixer -> recorder end-to-end latency");
  testenv::AceTestEnv deployment(100);
  if (!deployment.start().ok()) return;
  daemon::DaemonHost host(deployment.env, "av");
  auto client = deployment.make_client("bench", "user/bench");

  daemon::DaemonConfig cfg;
  cfg.room = "hawk";
  cfg.name = "cap";
  auto& cap = host.add_daemon<AudioCaptureDaemon>(cfg, "mic");
  cfg.name = "mix";
  auto& mixer = host.add_daemon<AudioMixerDaemon>(cfg, "mixed");
  cfg.name = "rec";
  auto& recorder = host.add_daemon<AudioRecorderDaemon>(cfg);
  if (!cap.start().ok() || !mixer.start().ok() || !recorder.start().ok())
    return;
  cap.add_sink(mixer.data_address());
  mixer.add_sink(recorder.data_address());
  CmdLine add("mixerAddInput");
  add.arg("stream", "mic");
  if (!client->call(mixer.address(), add, daemon::kCallOk).ok()) return;

  bench::Series latency_ms;
  std::size_t expected = 0;
  for (int round = 0; round < 50; ++round) {
    expected += kFrameSamples;
    auto start = bench::Clock::now();
    cap.capture_push(sine_wave(440, 8000, kFrameSamples, 0));
    while (recorder.recorded("mixed").size() < expected)
      std::this_thread::sleep_for(100us);
    latency_ms.add(bench::us_since(start) / 1000.0);
  }
  std::printf("  one 20ms frame through 3 daemons: p50=%.2f ms  p95=%.2f ms\n",
              latency_ms.percentile(50), latency_ms.percentile(95));
}

void echo_cancellation_convergence() {
  bench::header("E7b", "NLMS echo canceller: ERLE vs adaptation time");
  std::printf("%14s %12s\n", "audio_seconds", "erle_db");
  util::Rng rng(11);
  EchoCanceller ec(128, 0.6);
  constexpr std::size_t kDelay = 37;
  std::vector<std::int16_t> history(kDelay, 0);
  double processed_seconds = 0.0;
  for (double checkpoint : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    while (processed_seconds < checkpoint) {
      std::vector<std::int16_t> far(kFrameSamples), mic(kFrameSamples);
      for (std::size_t i = 0; i < kFrameSamples; ++i) {
        far[i] = static_cast<std::int16_t>(rng.next_gaussian() * 6000.0);
        history.push_back(far[i]);
        mic[i] = static_cast<std::int16_t>(0.55 * history.front());
        history.erase(history.begin());
      }
      ec.process(far, mic);
      processed_seconds += static_cast<double>(kFrameSamples) / kSampleRate;
    }
    std::printf("%14.2f %12.1f\n", checkpoint, ec.erle_db());
  }
  std::printf("  (shape: ERLE climbs as the adaptive filter converges)\n");
}

void speech_to_command_accuracy() {
  bench::header("E7c", "voice-command decode accuracy vs noise");
  std::printf("%12s %12s\n", "noise_rms", "decoded_ok");
  const std::string command = "ptzMove pan=10 tilt=5;";
  for (double noise : {0.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    util::Rng rng(13);
    int ok = 0;
    constexpr int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      auto audio = dtmf_encode(command);
      for (auto& s : audio) {
        double noisy = s + rng.next_gaussian() * noise;
        s = static_cast<std::int16_t>(std::clamp(noisy, -32767.0, 32767.0));
      }
      auto decoded = dtmf_decode(audio);
      if (decoded && *decoded == command) ++ok;
    }
    std::printf("%12.0f %10d/%d\n", noise, ok, kTrials);
  }
  std::printf("  (shape: perfect at low noise, degrades past the tone "
              "amplitude)\n");
}

void adpcm_throughput() {
  bench::header("E7d", "ADPCM conversion throughput (Converter voice path)");
  auto pcm = sine_wave(440, 9000, 80000, 0);
  AdpcmState enc;
  auto start = bench::Clock::now();
  constexpr int kRounds = 50;
  std::size_t bytes = 0;
  for (int i = 0; i < kRounds; ++i) {
    auto out = adpcm_encode(pcm, enc);
    bytes += out.size();
  }
  double seconds = bench::us_since(start) / 1e6;
  double audio_seconds =
      static_cast<double>(pcm.size()) * kRounds / kSampleRate;
  std::printf("  encoded %.0f s of audio in %.2f s (%.0fx realtime, "
              "%.1f MB/s PCM in)\n",
              audio_seconds, seconds, audio_seconds / seconds,
              pcm.size() * 2.0 * kRounds / seconds / 1e6);
  (void)bytes;
}

// ------------------------------------------------------------------- E18a

void per_stage_cpu(bool smoke) {
  bench::header("E18a", "per-stage CPU per 20ms frame: view vs full decode");
  const int iters = smoke ? 2000 : 50000;
  AudioFrame f;
  f.stream = "mic0";
  f.samples = sine_wave(440, 8000, kFrameSamples, 0);
  util::SharedBytes wire(f.serialize());

  auto us_per_frame = [&](auto&& body) {
    auto start = bench::Clock::now();
    for (int i = 0; i < iters; ++i) body();
    return bench::us_since(start) / iters;
  };

  volatile std::int64_t guard = 0;  // keep the loops observable
  double peek = us_per_frame([&] {
    auto tag = peek_tag(wire.view());
    guard = guard + (tag ? static_cast<std::int64_t>(tag->size()) : 0);
  });
  double view = us_per_frame([&] {
    auto v = AudioFrameView::parse(wire.view());
    guard = guard + (v ? v->sample(0) : 0);
  });
  double full = us_per_frame([&] {
    auto parsed = AudioFrame::parse(wire.view());
    guard = guard + static_cast<std::int64_t>(parsed->serialize().size());
  });
  auto frame_view = AudioFrameView::parse(wire.view());
  std::vector<std::int16_t> acc;
  double mix = us_per_frame([&] {
    acc.clear();
    mix_view_into(acc, *frame_view, 0.5);
  });
  EchoCanceller nlms;
  auto far = sine_wave(440, 8000, kFrameSamples, 0);
  auto mic = sine_wave(250, 6000, kFrameSamples, 0);
  double cancel = us_per_frame([&] { guard = guard + nlms.process(far, mic)[0]; });
  (void)guard;

  std::printf("%26s %12s\n", "stage", "us/frame");
  std::printf("%26s %12.3f\n", "peek_tag (route lookup)", peek);
  std::printf("%26s %12.3f\n", "view parse (observe)", view);
  std::printf("%26s %12.3f\n", "full decode+re-encode", full);
  std::printf("%26s %12.3f\n", "mix from view", mix);
  std::printf("%26s %12.3f\n", "echo cancel (NLMS)", cancel);
  std::printf("  (the legacy plane paid the full decode at every hop; observe "
              "stages now pay the view parse)\n");
}

// ------------------------------------------------------------------- E18b

double process_cpu_seconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

struct DataPlaneResult {
  bool ok = false;
  double wall_s = 0.0;
  double cpu_s = 0.0;
  double frames_per_core_s = 0.0;
  std::uint64_t routed = 0, copied = 0, fanned = 0;
};

// Runs kStreams concurrent conferences, each `frames` 20ms frames through
// capture -> mixer -> EC -> shared distribution -> kPlayers players (the
// multi-room fan-out Distribution exists for). Streams run concurrently so
// the fabric is saturated — this measures streaming throughput, not chain
// latency — and pacing keeps each EC's pending window from overflowing.
// The whole process's CPU time is charged to the run; driver-side signal
// synthesis happens before the clock starts, so the measurement is the
// data plane, not the tone generator.
constexpr int kPlayers = 16;
constexpr int kStreams = 4;

DataPlaneResult run_data_plane(bool legacy, int frames,
                               obs::MetricsSnapshot* snapshot_out) {
  DataPlaneResult result;
  testenv::AceTestEnv deployment(legacy ? 181 : 180);
  if (!deployment.start().ok()) return result;
  daemon::DaemonHost host(deployment.env, "av");
  auto client = deployment.make_client("bench", "user/bench");

  daemon::DaemonConfig cfg;
  cfg.room = "hawk";
  // One Distribution serves every conference: its router keys routes by
  // stream tag, so clean0..cleanN each fan out to all players.
  cfg.name = "dist";
  auto& dist = host.add_daemon<services::DistributionDaemon>(cfg);
  std::vector<AudioCaptureDaemon*> caps;
  std::vector<AudioMixerDaemon*> mixers;
  std::vector<EchoCancellationDaemon*> ecs;
  for (int s = 0; s < kStreams; ++s) {
    const std::string id = std::to_string(s);
    cfg.name = "cap-" + id;
    caps.push_back(&host.add_daemon<AudioCaptureDaemon>(cfg, "cap" + id));
    cfg.name = "mix-" + id;
    mixers.push_back(&host.add_daemon<AudioMixerDaemon>(cfg, "far" + id));
    cfg.name = "ec-" + id;
    ecs.push_back(&host.add_daemon<EchoCancellationDaemon>(
        cfg, "far" + id, "mic" + id, "clean" + id));
  }
  std::vector<AudioPlayDaemon*> players;
  for (int p = 0; p < kPlayers; ++p) {
    cfg.name = "spk-" + std::to_string(p);
    players.push_back(&host.add_daemon<AudioPlayDaemon>(cfg));
  }
  if (!host.start_all().ok()) return result;

  for (int s = 0; s < kStreams; ++s) {
    caps[s]->add_sink(mixers[s]->data_address());
    mixers[s]->add_sink(ecs[s]->data_address());
    ecs[s]->add_sink(dist.data_address());
    CmdLine add_input("mixerAddInput");
    add_input.arg("stream", "cap" + std::to_string(s));
    if (!client->call(mixers[s]->address(), add_input, daemon::kCallOk).ok())
      return result;
    // Sinks go through routeAdd — the provisioned control plane E18 claims
    // covers the per-frame path's missing auth checks.
    for (AudioPlayDaemon* p : players) {
      CmdLine add("routeAdd");
      add.arg("stream", "clean" + std::to_string(s));
      add.arg("dest", p->data_address().to_string());
      if (!client->call(dist.address(), add, daemon::kCallOk).ok())
        return result;
    }
  }
  dist.set_legacy_copy_mode(legacy);
  for (int s = 0; s < kStreams; ++s) {
    caps[s]->set_legacy_copy_mode(legacy);
    mixers[s]->set_legacy_copy_mode(legacy);
    ecs[s]->set_legacy_copy_mode(legacy);
  }
  for (AudioPlayDaemon* p : players) {
    p->set_legacy_copy_mode(legacy);
    p->set_window(8 * kFrameSamples);
  }

  auto socket = host.net_host().open_datagram();
  if (!socket.ok()) return result;

  // Pre-synthesize everything the driver sends: mic frames as wire bytes,
  // capture input as raw sample chunks.
  constexpr int kChunk = 32;  // half the EC pending window
  std::vector<std::vector<util::SharedBytes>> mic_wire(kStreams);
  for (int st = 0; st < kStreams; ++st) {
    mic_wire[st].reserve(static_cast<std::size_t>(frames));
    for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(frames); ++s) {
      AudioFrame micf;
      micf.stream = "mic" + std::to_string(st);
      micf.sequence = s;
      micf.samples = sine_wave(250 + 10 * st, 6000, kFrameSamples,
                               s * kFrameSamples);
      mic_wire[st].push_back(util::SharedBytes(micf.serialize()));
    }
  }
  std::vector<std::vector<std::int16_t>> cap_chunks;
  for (int start = 0; start < frames; start += kChunk) {
    const int n = std::min(kChunk, frames - start);
    cap_chunks.push_back(
        sine_wave(440, 8000, static_cast<std::size_t>(n) * kFrameSamples,
                  static_cast<std::size_t>(start) * kFrameSamples));
  }

  const std::uint64_t total_frames =
      static_cast<std::uint64_t>(frames) * kStreams;
  const double cpu0 = process_cpu_seconds();
  const auto wall0 = bench::Clock::now();
  std::uint32_t seq = 0;
  for (const auto& chunk : cap_chunks) {
    const auto n = static_cast<std::uint32_t>(chunk.size() / kFrameSamples);
    // All streams push their chunk before anyone drains: the pumps see
    // concurrent traffic, not one latency-bound chain.
    for (int st = 0; st < kStreams; ++st) {
      for (std::uint32_t i = 0; i < n; ++i)
        if (!(*socket)
                 ->send_to(ecs[st]->data_address(), mic_wire[st][seq + i])
                 .ok())
          return result;
      caps[st]->capture_push(chunk);
    }
    seq += n;
    const std::uint64_t want = static_cast<std::uint64_t>(seq) * kStreams;
    const auto deadline = bench::Clock::now() + std::chrono::seconds(30);
    for (AudioPlayDaemon* p : players) {
      while (p->frames_played() < want) {
        if (bench::Clock::now() > deadline) return result;
        std::this_thread::sleep_for(50us);
      }
    }
  }
  result.wall_s = bench::us_since(wall0) / 1e6;
  result.cpu_s = std::max(process_cpu_seconds() - cpu0, 1e-6);
  result.frames_per_core_s =
      static_cast<double>(total_frames) / result.cpu_s;

  auto snapshot = deployment.env.metrics().snapshot();
  result.routed = snapshot.counter_value("media.frames_routed");
  result.copied = snapshot.counter_value("media.bytes_copied");
  result.fanned = snapshot.counter_value("media.datagrams_fanned");
  if (snapshot_out) *snapshot_out = snapshot;
  result.ok = true;
  return result;
}

void zero_copy_data_plane(bool smoke) {
  bench::header("E18b",
                "conference graph throughput: zero-copy vs copying plane");
  const int frames = smoke ? 128 : 2048;
  std::printf("  graph: %d concurrent streams of capture -> mixer -> echo "
              "canceller -> distribution -> %dx play (%d frames each)\n",
              kStreams, kPlayers, frames);
  // Scheduler noise moves per-run CPU by ~20%, so each plane runs a few
  // times and the best (least-interfered) run represents it — the standard
  // best-of-N discipline for throughput benches.
  const int reps = smoke ? 1 : 3;
  obs::MetricsSnapshot exported;
  DataPlaneResult legacy, routed;
  for (int r = 0; r < reps; ++r) {
    auto l = run_data_plane(true, frames, nullptr);
    if (l.ok && (!legacy.ok || l.cpu_s < legacy.cpu_s)) legacy = l;
    obs::MetricsSnapshot snapshot;
    auto z = run_data_plane(false, frames, &snapshot);
    if (z.ok && (!routed.ok || z.cpu_s < routed.cpu_s)) {
      routed = z;
      exported = snapshot;
    }
  }
  if (!legacy.ok || !routed.ok) {
    std::printf("  E18b failed to run the pipeline\n");
    return;
  }
  std::printf("%12s %10s %8s %8s %16s %14s %14s\n", "plane", "frames",
              "wall_s", "cpu_s", "frames/s/core", "bytes_copied",
              "fanned");
  std::printf("%12s %10d %8.2f %8.2f %16.0f %14llu %14llu\n", "legacy",
              frames, legacy.wall_s, legacy.cpu_s, legacy.frames_per_core_s,
              static_cast<unsigned long long>(legacy.copied),
              static_cast<unsigned long long>(legacy.fanned));
  std::printf("%12s %10d %8.2f %8.2f %16.0f %14llu %14llu\n", "zero-copy",
              frames, routed.wall_s, routed.cpu_s, routed.frames_per_core_s,
              static_cast<unsigned long long>(routed.copied),
              static_cast<unsigned long long>(routed.fanned));
  std::printf("  speedup: %.1fx frames/s per core (target >= 2x); zero-copy "
              "run copied %llu payload bytes\n",
              routed.frames_per_core_s / std::max(1.0, legacy.frames_per_core_s),
              static_cast<unsigned long long>(routed.copied));
  // The artifact carries the zero-copy run's proof: frames routed and
  // fanned out with media.bytes_copied still zero.
  bench::export_metrics_json("bench_audio", exported);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  if (!smoke) {
    pipeline_latency();
    echo_cancellation_convergence();
    speech_to_command_accuracy();
    adpcm_throughput();
  }
  per_stage_cpu(smoke);
  zero_copy_data_plane(smoke);
  return 0;
}
