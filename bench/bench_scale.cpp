// E12 — Scalability goals (paper Ch 9).
//
// "significant amount of testing must be done to ensure the scalability of
//  the system ... Central services such as the ASD, AUD, WSS, etc must be
//  fully tested for large communication loads."
//
// This harness loads the central services far past the scenario scale:
//   * ASD with thousands of registrations under concurrent lookup+renewal,
//   * AUD with thousands of users,
//   * sustained command throughput from several concurrent clients,
//   * media-plane throughput: converter and distribution streaming rates.
#include <thread>

#include "bench_common.hpp"
#include "media/codec.hpp"
#include "services/streaming.hpp"
#include "services/user_db.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

void asd_under_load() {
  bench::header("E12a", "ASD: 2000 services, concurrent lookups + renewals");
  testenv::AceTestEnv deployment(160);
  if (!deployment.start().ok()) return;
  constexpr int kServices = 2000;
  {
    auto loader = deployment.make_client("loader", "user/loader");
    for (int i = 0; i < kServices; ++i) {
      CmdLine reg("register");
      reg.arg("name", Word{"svc" + std::to_string(i)});
      reg.arg("host", "host" + std::to_string(i % 64));
      reg.arg("port", std::int64_t{1000 + i % 60000});
      reg.arg("class", "Service/Load/Kind" + std::to_string(i % 10));
      reg.arg("lease", std::int64_t{60000});
      if (!loader->call(deployment.env.asd_address, reg, daemon::kCallOk).ok()) return;
    }
  }

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 500;
  std::atomic<int> failures{0};
  auto start = bench::Clock::now();
  std::vector<std::jthread> workers;
  for (int w = 0; w < kClients; ++w) {
    workers.emplace_back([&, w] {
      auto client = deployment.make_client("worker" + std::to_string(w),
                                           "user/worker");
      util::Rng rng(w + 1);
      for (int i = 0; i < kOpsPerClient; ++i) {
        std::string name = "svc" + std::to_string(rng.next_below(kServices));
        if (i % 4 == 0) {
          CmdLine renew("renew");
          renew.arg("name", Word{name});
          if (!client->call(deployment.env.asd_address, renew, daemon::kCallOk).ok())
            failures++;
        } else {
          if (!services::AsdClient(*client, deployment.env.asd_address).lookup(name)
                   .ok())
            failures++;
        }
      }
    });
  }
  workers.clear();  // join
  double seconds = bench::us_since(start) / 1e6;
  int total_ops = kClients * kOpsPerClient;
  std::printf("  %d mixed lookup/renew ops from %d clients in %.2f s -> "
              "%.0f ops/s (failures: %d)\n",
              total_ops, kClients, seconds, total_ops / seconds,
              failures.load());
  std::printf("  directory still consistent: live_count=%zu\n",
              deployment.asd->live_count());
}

void aud_with_thousands_of_users() {
  bench::header("E12b", "AUD: 3000 users, lookup latency");
  testenv::AceTestEnv deployment(161);
  if (!deployment.start().ok()) return;
  daemon::DaemonHost host(deployment.env, "db-host");
  daemon::DaemonConfig cfg;
  cfg.name = "aud";
  cfg.room = "machine-room";
  auto& aud = host.add_daemon<services::UserDbDaemon>(cfg);
  if (!aud.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");

  constexpr int kUsers = 3000;
  for (int i = 0; i < kUsers; ++i) {
    CmdLine add("userAdd");
    add.arg("username", Word{"user" + std::to_string(i)});
    add.arg("ibutton", "IB-" + std::to_string(i));
    if (!client->call(aud.address(), add, daemon::kCallOk).ok()) return;
  }

  bench::Series get_us, by_button_us;
  util::Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    std::string user = "user" + std::to_string(rng.next_below(kUsers));
    CmdLine get("userGet");
    get.arg("username", Word{user});
    auto start = bench::Clock::now();
    if (!client->call(aud.address(), get, daemon::kCallOk).ok()) return;
    get_us.add(bench::us_since(start));

    CmdLine find("userByIButton");
    find.arg("serial", "IB-" + std::to_string(rng.next_below(kUsers)));
    start = bench::Clock::now();
    if (!client->call(aud.address(), find, daemon::kCallOk).ok()) return;
    by_button_us.add(bench::us_since(start));
  }
  std::printf("  userGet:       p50=%.1f us  p95=%.1f us\n",
              get_us.percentile(50), get_us.percentile(95));
  std::printf("  userByIButton: p50=%.1f us  p95=%.1f us (linear scan)\n",
              by_button_us.percentile(50), by_button_us.percentile(95));
}

void converter_video_throughput() {
  bench::header("E12c", "converter: raw video -> RLE throughput");
  media::VideoFrame reference;
  bool has_ref = false;
  constexpr int kFrames = 200;
  constexpr int kW = 320, kH = 240;
  std::size_t in_bytes = 0, out_bytes = 0;
  auto start = bench::Clock::now();
  for (int t = 0; t < kFrames; ++t) {
    media::VideoFrame frame = media::synthetic_frame(kW, kH, t);
    auto encoded =
        media::rle_video_encode(frame, has_ref ? &reference : nullptr);
    in_bytes += frame.pixels.size();
    out_bytes += encoded.size();
    reference = std::move(frame);
    has_ref = true;
  }
  double seconds = bench::us_since(start) / 1e6;
  std::printf("  %d frames (%dx%d) in %.2f s -> %.1f fps, compression %.1fx\n",
              kFrames, kW, kH, seconds, kFrames / seconds,
              static_cast<double>(in_bytes) / out_bytes);
}

void distribution_throughput() {
  bench::header("E12d", "distribution service: fan-out streaming rate");
  testenv::AceTestEnv deployment(162);
  if (!deployment.start().ok()) return;
  daemon::DaemonHost host(deployment.env, "stream-box");
  daemon::DaemonConfig cfg;
  cfg.name = "dist";
  cfg.room = "machine-room";
  auto& dist = host.add_daemon<services::DistributionDaemon>(cfg);
  if (!dist.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");

  constexpr int kSinks = 4;
  std::vector<std::shared_ptr<net::DatagramSocket>> sinks;
  for (int i = 0; i < kSinks; ++i) {
    auto sock = host.net_host().open_datagram(
        static_cast<std::uint16_t>(9000 + i));
    if (!sock.ok()) return;
    sinks.push_back(sock.value());
    CmdLine add("distAddSink");
    add.arg("stream", "feed");
    add.arg("dest", "stream-box:" + std::to_string(9000 + i));
    if (!client->call(dist.address(), add, daemon::kCallOk).ok()) return;
  }

  auto src = host.net_host().open_datagram(8999);
  if (!src.ok()) return;
  services::MediaPacket packet;
  packet.stream = "feed";
  packet.format = "raw_pcm";
  packet.payload = util::Bytes(1024, 0x42);
  constexpr int kPackets = 2000;
  auto start = bench::Clock::now();
  for (int i = 0; i < kPackets; ++i) {
    packet.sequence = static_cast<std::uint32_t>(i);
    if (!(*src)->send_to(dist.data_address(), packet.serialize()).ok())
      return;
  }
  // Wait for the fan-out to drain.
  auto deadline = bench::Clock::now() + 10s;
  while (dist.dist_stats().packets <
             static_cast<std::uint64_t>(kPackets) &&
         bench::Clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  double seconds = bench::us_since(start) / 1e6;
  auto stats = dist.dist_stats();
  std::printf("  %llu packets x %d sinks in %.2f s -> %.0f packets/s in, "
              "%.1f MB/s out\n",
              static_cast<unsigned long long>(stats.packets), kSinks, seconds,
              stats.packets / seconds,
              static_cast<double>(stats.fanout) * 1024 / seconds / 1e6);
}

}  // namespace

int main() {
  asd_under_load();
  aud_with_thousands_of_users();
  converter_video_throughput();
  distribution_throughput();
  return 0;
}
