// E12/E17 — Scalability goals (paper Ch 9).
//
// "significant amount of testing must be done to ensure the scalability of
//  the system ... Central services such as the ASD, AUD, WSS, etc must be
//  fully tested for large communication loads."
//
// This harness loads the central services far past the scenario scale:
//   * ASD with thousands of registrations under concurrent lookup+renewal,
//   * AUD with thousands of users,
//   * sustained command throughput from several concurrent clients,
//   * media-plane throughput: converter and distribution streaming rates,
//   * E17: the reactor fabric holding tens of thousands of concurrent
//     endpoints in one process with O(pool) threads and flat per-endpoint
//     memory (the point of the event-driven ace::net rebuild).
//
// `--smoke` runs a seconds-scale E17 subset (used by ci.sh bench-smoke)
// and exports bench_scale.metrics.json for artifact validation.
#include <atomic>
#include <cstring>
#include <fstream>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "media/codec.hpp"
#include "services/streaming.hpp"
#include "services/user_db.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

void asd_under_load() {
  bench::header("E12a", "ASD: 2000 services, concurrent lookups + renewals");
  testenv::AceTestEnv deployment(160);
  if (!deployment.start().ok()) return;
  constexpr int kServices = 2000;
  {
    auto loader = deployment.make_client("loader", "user/loader");
    for (int i = 0; i < kServices; ++i) {
      CmdLine reg("register");
      reg.arg("name", Word{"svc" + std::to_string(i)});
      reg.arg("host", "host" + std::to_string(i % 64));
      reg.arg("port", std::int64_t{1000 + i % 60000});
      reg.arg("class", "Service/Load/Kind" + std::to_string(i % 10));
      reg.arg("lease", std::int64_t{60000});
      if (!loader->call(deployment.env.asd_address, reg, daemon::kCallOk).ok()) return;
    }
  }

  constexpr int kClients = 4;
  constexpr int kOpsPerClient = 500;
  std::atomic<int> failures{0};
  auto start = bench::Clock::now();
  std::vector<std::jthread> workers;
  for (int w = 0; w < kClients; ++w) {
    workers.emplace_back([&, w] {
      auto client = deployment.make_client("worker" + std::to_string(w),
                                           "user/worker");
      util::Rng rng(w + 1);
      for (int i = 0; i < kOpsPerClient; ++i) {
        std::string name = "svc" + std::to_string(rng.next_below(kServices));
        if (i % 4 == 0) {
          CmdLine renew("renew");
          renew.arg("name", Word{name});
          if (!client->call(deployment.env.asd_address, renew, daemon::kCallOk).ok())
            failures++;
        } else {
          if (!services::AsdClient(*client, deployment.env.asd_address).lookup(name)
                   .ok())
            failures++;
        }
      }
    });
  }
  workers.clear();  // join
  double seconds = bench::us_since(start) / 1e6;
  int total_ops = kClients * kOpsPerClient;
  std::printf("  %d mixed lookup/renew ops from %d clients in %.2f s -> "
              "%.0f ops/s (failures: %d)\n",
              total_ops, kClients, seconds, total_ops / seconds,
              failures.load());
  std::printf("  directory still consistent: live_count=%zu\n",
              deployment.asd->live_count());
}

void aud_with_thousands_of_users() {
  bench::header("E12b", "AUD: 3000 users, lookup latency");
  testenv::AceTestEnv deployment(161);
  if (!deployment.start().ok()) return;
  daemon::DaemonHost host(deployment.env, "db-host");
  daemon::DaemonConfig cfg;
  cfg.name = "aud";
  cfg.room = "machine-room";
  auto& aud = host.add_daemon<services::UserDbDaemon>(cfg);
  if (!aud.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");

  constexpr int kUsers = 3000;
  for (int i = 0; i < kUsers; ++i) {
    CmdLine add("userAdd");
    add.arg("username", Word{"user" + std::to_string(i)});
    add.arg("ibutton", "IB-" + std::to_string(i));
    if (!client->call(aud.address(), add, daemon::kCallOk).ok()) return;
  }

  bench::Series get_us, by_button_us;
  util::Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    std::string user = "user" + std::to_string(rng.next_below(kUsers));
    CmdLine get("userGet");
    get.arg("username", Word{user});
    auto start = bench::Clock::now();
    if (!client->call(aud.address(), get, daemon::kCallOk).ok()) return;
    get_us.add(bench::us_since(start));

    CmdLine find("userByIButton");
    find.arg("serial", "IB-" + std::to_string(rng.next_below(kUsers)));
    start = bench::Clock::now();
    if (!client->call(aud.address(), find, daemon::kCallOk).ok()) return;
    by_button_us.add(bench::us_since(start));
  }
  std::printf("  userGet:       p50=%.1f us  p95=%.1f us\n",
              get_us.percentile(50), get_us.percentile(95));
  std::printf("  userByIButton: p50=%.1f us  p95=%.1f us (linear scan)\n",
              by_button_us.percentile(50), by_button_us.percentile(95));
}

void converter_video_throughput() {
  bench::header("E12c", "converter: raw video -> RLE throughput");
  media::VideoFrame reference;
  bool has_ref = false;
  constexpr int kFrames = 200;
  constexpr int kW = 320, kH = 240;
  std::size_t in_bytes = 0, out_bytes = 0;
  auto start = bench::Clock::now();
  for (int t = 0; t < kFrames; ++t) {
    media::VideoFrame frame = media::synthetic_frame(kW, kH, t);
    auto encoded =
        media::rle_video_encode(frame, has_ref ? &reference : nullptr);
    in_bytes += frame.pixels.size();
    out_bytes += encoded.size();
    reference = std::move(frame);
    has_ref = true;
  }
  double seconds = bench::us_since(start) / 1e6;
  std::printf("  %d frames (%dx%d) in %.2f s -> %.1f fps, compression %.1fx\n",
              kFrames, kW, kH, seconds, kFrames / seconds,
              static_cast<double>(in_bytes) / out_bytes);
}

void distribution_throughput() {
  bench::header("E12d", "distribution service: fan-out streaming rate");
  testenv::AceTestEnv deployment(162);
  if (!deployment.start().ok()) return;
  daemon::DaemonHost host(deployment.env, "stream-box");
  daemon::DaemonConfig cfg;
  cfg.name = "dist";
  cfg.room = "machine-room";
  auto& dist = host.add_daemon<services::DistributionDaemon>(cfg);
  if (!dist.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");

  constexpr int kSinks = 4;
  std::vector<std::shared_ptr<net::DatagramSocket>> sinks;
  for (int i = 0; i < kSinks; ++i) {
    auto sock = host.net_host().open_datagram(
        static_cast<std::uint16_t>(9000 + i));
    if (!sock.ok()) return;
    sinks.push_back(sock.value());
    CmdLine add("distAddSink");
    add.arg("stream", "feed");
    add.arg("dest", "stream-box:" + std::to_string(9000 + i));
    if (!client->call(dist.address(), add, daemon::kCallOk).ok()) return;
  }

  auto src = host.net_host().open_datagram(8999);
  if (!src.ok()) return;
  services::MediaPacket packet;
  packet.stream = "feed";
  packet.format = "raw_pcm";
  packet.payload = util::Bytes(1024, 0x42);
  constexpr int kPackets = 2000;
  auto start = bench::Clock::now();
  for (int i = 0; i < kPackets; ++i) {
    packet.sequence = static_cast<std::uint32_t>(i);
    if (!(*src)->send_to(dist.data_address(), packet.serialize()).ok())
      return;
  }
  // Wait for the fan-out to drain.
  auto deadline = bench::Clock::now() + 10s;
  while (dist.dist_stats().packets <
             static_cast<std::uint64_t>(kPackets) &&
         bench::Clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  double seconds = bench::us_since(start) / 1e6;
  auto stats = dist.dist_stats();
  std::printf("  %llu packets x %d sinks in %.2f s -> %.0f packets/s in, "
              "%.1f MB/s out\n",
              static_cast<unsigned long long>(stats.packets), kSinks, seconds,
              stats.packets / seconds,
              static_cast<double>(stats.fanout) * 1024 / seconds / 1e6);
}

// ------------------------------------------------------------------- E17

// /proc introspection for the O(threads) / flat-memory claims.
long process_threads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line))
    if (line.rfind("Threads:", 0) == 0)
      return std::strtol(line.c_str() + 8, nullptr, 10);
  return -1;
}

double process_rss_mb() {
  std::ifstream statm("/proc/self/statm");
  long size = 0, resident = 0;
  statm >> size >> resident;
  return resident * 4096.0 / 1e6;
}

// Echo service used for the secure-fabric slice of E17.
class EchoDaemon : public daemon::ServiceDaemon {
 public:
  EchoDaemon(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(
        cmdlang::CommandSpec("echo", "echo the text back")
            .arg(cmdlang::string_arg("text"))
            .concurrent_ok(),
        [](const CmdLine& cmd, const daemon::CallerInfo&) {
          CmdLine reply = cmdlang::make_ok();
          reply.arg("text", cmd.get_text("text"));
          return reply;
        });
  }
};

// The reactor-fabric scalability experiment: park tens of thousands of
// live stream endpoints (every one driven by an on_frame pump on the
// deployment's single reactor), then push a sustained ping round through
// all of them. The claims under test:
//   * thread count is O(reactor pool), independent of endpoint count,
//   * per-endpoint memory is flat (a queue pair + pump state, no stacks),
//   * the fabric still routes real daemon RPC traffic while loaded.
void endpoint_scale(bool smoke) {
  bench::header("E17", smoke
      ? "reactor fabric: concurrent endpoints (smoke scale)"
      : "reactor fabric: 60k+ concurrent endpoints, O(pool) threads");
  testenv::AceTestEnv deployment(170);
  if (!deployment.start().ok()) return;
  auto& network = deployment.env.network();
  auto& reactor = deployment.env.reactor();

  // Secure-fabric slice: a real daemon + pipelined client, so the exported
  // artifact carries end-to-end counters (handshake, dispatch, demux) from
  // the same process that holds the endpoint load.
  daemon::DaemonHost svc_host(deployment.env, "svc");
  daemon::DaemonConfig cfg;
  cfg.name = "echo";
  cfg.room = "machine-room";
  cfg.service_class = "Service/Test";
  auto& echo = svc_host.add_daemon<EchoDaemon>(cfg);
  if (!echo.start().ok()) return;
  auto client = deployment.make_client("bench", "user/bench");

  const long threads_before = process_threads();
  const double rss_before = process_rss_mb();

  // Mass-endpoint slice: raw stream connections to one hub listener. Both
  // ends of every connection get a pump, so kConns connections = 2*kConns
  // live endpoints multiplexed on the one reactor.
  const int kConns = smoke ? 1500 : 30000;
  net::Host& hub = network.add_host("hub");
  auto listener = hub.listen(100);
  if (!listener.ok()) return;

  std::atomic<long> echoed{0};
  std::mutex mu;
  std::vector<std::shared_ptr<net::Connection>> hub_side;
  std::vector<net::Subscription> pumps;
  hub_side.reserve(kConns);
  pumps.reserve(kConns * 2);
  auto accept_sub = (*listener)->on_accept(
      reactor, [&](std::optional<net::Connection> conn) {
        if (!conn) return;
        auto shared = std::make_shared<net::Connection>(std::move(*conn));
        auto pump = shared->on_frame(
            reactor, [&, shared](std::optional<net::Frame> frame) {
              if (frame) (void)shared->send(std::move(*frame));  // echo
            });
        std::scoped_lock lock(mu);
        hub_side.push_back(std::move(shared));
        pumps.push_back(std::move(pump));
      });

  std::atomic<long> replies{0};
  std::vector<net::Connection> client_side;
  client_side.reserve(kConns);
  auto connect_start = bench::Clock::now();
  for (int i = 0; i < kConns; ++i) {
    // ~25k ephemeral ports per host: spread the origins.
    net::Host* origin = network.find_host("origin" + std::to_string(i / 20000));
    if (!origin)
      origin = &network.add_host("origin" + std::to_string(i / 20000));
    auto conn = origin->connect({"hub", 100}, std::chrono::seconds(5));
    if (!conn.ok()) {
      std::printf("  connect %d failed: %s\n", i,
                  conn.error().to_string().c_str());
      return;
    }
    client_side.push_back(std::move(*conn));
  }
  double connect_s = bench::us_since(connect_start) / 1e6;
  {
    // Client-side pumps count echo replies.
    std::vector<net::Subscription> client_pumps;
    client_pumps.reserve(kConns);
    for (auto& conn : client_side)
      client_pumps.push_back(conn.on_frame(
          reactor, [&](std::optional<net::Frame> frame) {
            if (frame) replies++;
          }));
    // Wait for all accepts to land.
    auto deadline = bench::Clock::now() + 60s;
    while (bench::Clock::now() < deadline) {
      std::scoped_lock lock(mu);
      if (hub_side.size() == static_cast<std::size_t>(kConns)) break;
      std::this_thread::sleep_for(1ms);
    }

    const long threads_loaded = process_threads();
    const double rss_loaded = process_rss_mb();

    // Sustained round: one ping through every endpoint pair, interleaved
    // with real RPC traffic on the secure fabric.
    const int kRpcs = smoke ? 50 : 500;
    std::jthread rpc_traffic([&] {
      CmdLine cmd("echo");
      cmd.arg("text", "loaded");
      for (int i = 0; i < kRpcs; ++i)
        if (!client->call(echo.address(), cmd, daemon::kCallOk).ok()) return;
    });
    auto ping_start = bench::Clock::now();
    for (auto& conn : client_side)
      if (!conn.send(util::to_bytes("ping")).ok()) return;
    deadline = bench::Clock::now() + 120s;
    while (replies.load() < kConns && bench::Clock::now() < deadline)
      std::this_thread::sleep_for(1ms);
    double ping_s = bench::us_since(ping_start) / 1e6;
    rpc_traffic.join();

    std::printf("  %d connections (%d live endpoints) up in %.2f s\n",
                kConns, 2 * kConns, connect_s);
    std::printf("  threads: %ld before, %ld loaded (delta %ld — O(pool), "
                "not O(connections))\n",
                threads_before, threads_loaded,
                threads_loaded - threads_before);
    std::printf("  rss: %.1f MB before, %.1f MB loaded -> %.1f KB per "
                "endpoint\n",
                rss_before, rss_loaded,
                (rss_loaded - rss_before) * 1000.0 / (2 * kConns));
    std::printf("  ping round: %ld/%d echoed in %.2f s -> %.0f frames/s "
                "(+%d RPCs on the secure fabric)\n",
                replies.load(), kConns, ping_s,
                replies.load() * 2 / std::max(ping_s, 1e-9), kRpcs);
    auto stats = reactor.stats();
    std::printf("  reactor: %llu tasks, %llu timers, %d core + %d ops "
                "threads\n",
                static_cast<unsigned long long>(stats.tasks_run),
                static_cast<unsigned long long>(stats.timers_fired),
                stats.core_threads, stats.ops_threads);

    for (auto& conn : client_side) conn.close();
    for (auto& sub : client_pumps) sub.stop();
  }
  (*listener)->close();
  accept_sub.stop();
  {
    std::scoped_lock lock(mu);
    for (auto& sub : pumps) sub.stop();
    hub_side.clear();
  }
  bench::export_metrics_json("bench_scale", deployment.env.metrics().snapshot());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  if (!smoke) {
    asd_under_load();
    aud_with_thousands_of_users();
    converter_video_throughput();
    distribution_throughput();
  }
  endpoint_scale(smoke);
  return 0;
}
