// Shared helpers for the ACE experiment harness (EXPERIMENTS.md E1-E12).
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "ace_test_env.hpp"
#include "obs/metrics.hpp"

namespace ace::bench {

using Clock = std::chrono::steady_clock;

inline double us_since(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             Clock::now() - start)
      .count();
}

struct Series {
  std::vector<double> samples;

  void add(double v) { samples.push_back(v); }
  double mean() const {
    if (samples.empty()) return 0.0;
    return std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  }
  double percentile(double p) const {
    if (samples.empty()) return 0.0;
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    std::size_t idx = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  }
  double min() const { return percentile(0); }
  double max() const { return percentile(100); }
};

inline void header(const char* experiment, const char* title) {
  std::printf("\n=== %s: %s ===\n", experiment, title);
}

// Writes a metrics snapshot to `<name>.metrics.json` in the working
// directory, so benchmark runs leave a machine-readable artifact alongside
// their stdout tables (same shape as the daemon's `metrics;` command).
inline void export_metrics_json(const std::string& name,
                                const obs::MetricsSnapshot& snapshot) {
  const std::string path = name + ".metrics.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << obs::to_json(snapshot) << '\n';
  std::printf("  metrics exported to %s\n", path.c_str());
}

}  // namespace ace::bench
