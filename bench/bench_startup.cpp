// E4 — Daemon startup sequence (paper §2.6, Fig 9).
//
// Times the five-step initialization (launch -> Room DB -> ASD register ->
// notifications -> Network Logger) per daemon, and a cold boot of N daemons
// on one machine ("Upon booting, the Unix machine ... automatically
// launches the ACE service"). Also isolates the cost of each registration
// leg by toggling the steps off.
#include "bench_common.hpp"
#include "services/monitors.hpp"

using namespace ace;
using namespace std::chrono_literals;

namespace {

daemon::DaemonConfig base_config(const std::string& name) {
  daemon::DaemonConfig c;
  c.name = name;
  c.room = "hawk";
  return c;
}

void single_daemon_breakdown() {
  bench::header("E4a", "startup sequence cost breakdown (Fig 9)");
  struct Variant {
    const char* label;
    bool room_db;
    bool asd;
    bool logger;
  };
  const Variant variants[] = {
      {"listen only (step 1)", false, false, false},
      {"+ room db (step 2)", true, false, false},
      {"+ asd register (step 3)", true, true, false},
      {"+ net logger (step 5) = full", true, true, true},
  };
  std::printf("%-34s %14s\n", "variant", "start_ms(p50)");
  for (const Variant& v : variants) {
    bench::Series start_ms;
    for (int trial = 0; trial < 10; ++trial) {
      testenv::AceTestEnv deployment(60 + trial);
      if (!deployment.start().ok()) return;
      daemon::DaemonHost host(deployment.env, "work");
      daemon::DaemonConfig c = base_config("probe");
      c.register_with_room_db = v.room_db;
      c.register_with_asd = v.asd;
      c.log_to_net_logger = v.logger;
      auto& d = host.add_daemon<services::HrmDaemon>(c);
      auto start = bench::Clock::now();
      if (!d.start().ok()) return;
      start_ms.add(bench::us_since(start) / 1000.0);
      d.stop();
    }
    std::printf("%-34s %14.2f\n", v.label, start_ms.percentile(50));
  }
}

void cold_boot_many() {
  bench::header("E4b", "cold boot of N daemons on one machine");
  std::printf("%10s %14s %18s\n", "daemons", "boot_ms", "per_daemon_ms");
  for (int n : {1, 4, 16, 64}) {
    testenv::AceTestEnv deployment(70);
    if (!deployment.start().ok()) return;
    daemon::DaemonHost host(deployment.env, "bar");
    for (int i = 0; i < n; ++i)
      host.add_daemon<services::HrmDaemon>(
          base_config("svc" + std::to_string(i)));
    auto start = bench::Clock::now();
    if (!host.start_all().ok()) return;
    double boot_ms = bench::us_since(start) / 1000.0;
    std::printf("%10d %14.1f %18.2f\n", n, boot_ms, boot_ms / n);
    if (deployment.asd->live_count() != static_cast<std::size_t>(n) + 3)
      std::fprintf(stderr, "  warning: expected %d registrations\n", n);
  }
}

}  // namespace

int main() {
  single_daemon_breakdown();
  cold_boot_many();
  return 0;
}
