// E11 — Architecture comparisons (paper Ch 8).
//
//  * Discovery: ACE's fixed-address ASD vs Jini-style multicast discovery
//    (§8.4) — messages on the wire and time-to-first-lookup as the network
//    segment grows. ACE pays zero discovery messages (the ASD socket is
//    known); Jini probes every host.
//  * Placement: ACE's distributed in-room services vs a Ninja-style
//    centralized base (§8.1) — device-command RTT as the WAN latency to the
//    central cluster grows; the crossover never comes for the centralized
//    design because it pays the WAN on every command.
#include "baselines/centralized.hpp"
#include "baselines/jini.hpp"
#include "bench_common.hpp"
#include "services/asd.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

void discovery_comparison() {
  bench::header("E11a", "service discovery: ACE ASD vs Jini multicast");
  std::printf("%14s %16s %14s %16s %14s\n", "segment_hosts", "ace_msgs",
              "ace_us(p50)", "jini_probe_msgs", "jini_us(p50)");
  for (int hosts : {4, 16, 64, 256}) {
    testenv::AceTestEnv deployment(150);
    if (!deployment.start().ok()) return;
    auto client = deployment.make_client("seeker", "user/seeker");

    // Populate the segment.
    std::vector<std::string> segment;
    for (int i = 0; i < hosts; ++i) {
      std::string name = "seg" + std::to_string(i);
      deployment.env.network().add_host(name);
      segment.push_back(name);
    }
    // One target service registered in both directories.
    CmdLine reg("register");
    reg.arg("name", Word{"printer"});
    reg.arg("host", segment[hosts / 2]);
    reg.arg("port", 99);
    reg.arg("class", "Service/Device/Printer");
    if (!client->call(deployment.env.asd_address, reg, daemon::kCallOk).ok()) return;

    daemon::DaemonHost lookup_host(deployment.env,
                                   "seg" + std::to_string(hosts / 2));
    daemon::DaemonConfig c;
    c.name = "jini-lookup";
    auto& lookup = lookup_host.add_daemon<baselines::JiniLookupDaemon>(c);
    if (!lookup.start().ok()) return;

    // ACE path: direct lookup at the well-known ASD socket.
    bench::Series ace_us;
    for (int i = 0; i < 50; ++i) {
      auto start = bench::Clock::now();
      auto r = services::AsdClient(*client, deployment.env.asd_address).lookup("printer");
      ace_us.add(bench::us_since(start));
      if (!r.ok()) return;
    }

    // Jini path: multicast probe of the whole segment, then the lookup.
    bench::Series jini_us;
    int probes = 0;
    auto& prober = deployment.env.network().add_host("prober");
    for (int i = 0; i < 10; ++i) {
      auto start = bench::Clock::now();
      auto d = baselines::jini_discover(deployment.env, prober, segment, 2s);
      if (!d.ok()) return;
      probes = d->probes_sent;
      jini_us.add(bench::us_since(start));
    }
    // ACE: 1 request + 1 reply; discovery itself costs nothing.
    std::printf("%14d %16s %14.1f %16d %14.1f\n", hosts, "2 (req+rep)",
                ace_us.percentile(50), probes, jini_us.percentile(50));
  }
  std::printf("  (shape: Jini's probe count grows with the segment; the "
              "ASD's is constant)\n");
}

void placement_rtt_sweep() {
  bench::header("E11b",
                "device-command RTT: distributed vs centralized placement");
  std::printf("%18s %18s %18s %10s\n", "cluster_latency_us",
              "distributed_us", "centralized_us", "ratio");
  for (int wan_us : {100, 500, 1000, 2000, 5000}) {
    baselines::PlacementExperiment distributed(
        baselines::Placement::distributed, std::chrono::microseconds(wan_us));
    baselines::PlacementExperiment centralized(
        baselines::Placement::centralized, std::chrono::microseconds(wan_us));
    // Warm connections.
    (void)distributed.device_command_rtt();
    (void)centralized.device_command_rtt();

    bench::Series d_us, c_us;
    for (int i = 0; i < 15; ++i) {
      auto d = distributed.device_command_rtt();
      auto c = centralized.device_command_rtt();
      if (!d.ok() || !c.ok()) return;
      d_us.add(static_cast<double>(d->count()));
      c_us.add(static_cast<double>(c->count()));
    }
    std::printf("%18d %18.1f %18.1f %9.1fx\n", wan_us, d_us.percentile(50),
                c_us.percentile(50),
                c_us.percentile(50) / std::max(d_us.percentile(50), 1.0));
  }
  std::printf("  (shape: §8.1's argument — the centralized base pays the WAN\n"
              "   on every device command; in-room placement stays flat)\n");
}

}  // namespace

int main() {
  discovery_comparison();
  placement_rtt_sweep();
  return 0;
}
