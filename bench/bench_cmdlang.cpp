// E1 — Command language vs RMI-style serialization (paper §2.2 Fig 5, §8.1).
//
// Quantifies: "providing ACE with a unique and simple command language
// allows for a very lightweight form of communication ... much more
// lightweight than utilizing something like RMI."
//
// Expected shape: ACE command strings are several times smaller than the
// equivalent RMI object stream (which carries class descriptors), and
// build+serialize+parse round trips are correspondingly cheaper. Warm RMI
// connections (descriptor caching) narrow but do not close the gap.
#include <benchmark/benchmark.h>

#include "baselines/rmi.hpp"
#include "bench_common.hpp"
#include "cmdlang/parser.hpp"

using namespace ace;

namespace {

cmdlang::CmdLine make_ace_command(int args) {
  cmdlang::CmdLine cmd("ptzMove");
  for (int i = 0; i < args; ++i) {
    switch (i % 3) {
      case 0: cmd.arg("real" + std::to_string(i), 30.5 + i); break;
      case 1: cmd.arg("int" + std::to_string(i), std::int64_t{i * 7}); break;
      default: cmd.arg("str" + std::to_string(i),
                       "value with spaces " + std::to_string(i));
    }
  }
  return cmd;
}

baselines::RmiInvocation make_rmi_invocation(int args) {
  baselines::RmiInvocation inv;
  inv.interface_name = "edu.ku.ittc.ace.PTZCamera";
  inv.method_name = "ptzMove";
  for (int i = 0; i < args; ++i) {
    switch (i % 3) {
      case 0:
        inv.arguments.emplace_back("real" + std::to_string(i),
                                   baselines::RmiValue(30.5 + i));
        break;
      case 1:
        inv.arguments.emplace_back("int" + std::to_string(i),
                                   baselines::RmiValue(std::int64_t{i * 7}));
        break;
      default:
        inv.arguments.emplace_back(
            "str" + std::to_string(i),
            baselines::RmiValue("value with spaces " + std::to_string(i)));
    }
  }
  return inv;
}

void BM_AceSerialize(benchmark::State& state) {
  auto cmd = make_ace_command(static_cast<int>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(cmd.to_string());
  state.counters["wire_bytes"] =
      static_cast<double>(cmd.to_string().size());
}
BENCHMARK(BM_AceSerialize)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_AceParse(benchmark::State& state) {
  std::string wire =
      make_ace_command(static_cast<int>(state.range(0))).to_string();
  for (auto _ : state) {
    auto parsed = cmdlang::Parser::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_AceParse)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_AceRoundTrip(benchmark::State& state) {
  auto cmd = make_ace_command(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string wire = cmd.to_string();
    auto parsed = cmdlang::Parser::parse(wire);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_AceRoundTrip)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_RmiRoundTripCold(benchmark::State& state) {
  auto inv = make_rmi_invocation(static_cast<int>(state.range(0)));
  baselines::RmiMarshaller out(false), in(false);
  for (auto _ : state) {
    auto wire = out.marshal(inv);
    auto parsed = in.unmarshal(wire);
    benchmark::DoNotOptimize(parsed);
  }
  baselines::RmiMarshaller sizer(false);
  state.counters["wire_bytes"] =
      static_cast<double>(sizer.marshal(inv).size());
}
BENCHMARK(BM_RmiRoundTripCold)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_RmiRoundTripWarm(benchmark::State& state) {
  auto inv = make_rmi_invocation(static_cast<int>(state.range(0)));
  baselines::RmiMarshaller out(true), in(true);
  // Prime the descriptor caches.
  (void)in.unmarshal(out.marshal(inv));
  for (auto _ : state) {
    auto wire = out.marshal(inv);
    auto parsed = in.unmarshal(wire);
    benchmark::DoNotOptimize(parsed);
  }
  baselines::RmiMarshaller sizer(true);
  (void)sizer.marshal(inv);
  state.counters["wire_bytes"] =
      static_cast<double>(sizer.marshal(inv).size());
}
BENCHMARK(BM_RmiRoundTripWarm)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_SemanticValidation(benchmark::State& state) {
  cmdlang::SemanticRegistry registry;
  registry.add(cmdlang::CommandSpec("ptzMove")
                   .arg(cmdlang::real_arg("real0"))
                   .arg(cmdlang::integer_arg("int1"))
                   .arg(cmdlang::string_arg("str2"))
                   .extra_ok());
  auto cmd = make_ace_command(3);
  for (auto _ : state) {
    auto status = registry.validate(cmd);
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_SemanticValidation);

void print_size_table() {
  bench::header("E1", "wire size, ACE command language vs RMI object stream");
  std::printf("%8s %12s %12s %12s %10s\n", "args", "ace_bytes", "rmi_cold",
              "rmi_warm", "rmi/ace");
  for (int args : {1, 2, 4, 8, 16, 32, 64}) {
    std::size_t ace = make_ace_command(args).to_string().size();
    baselines::RmiMarshaller cold(false);
    std::size_t rmi_cold = cold.marshal(make_rmi_invocation(args)).size();
    baselines::RmiMarshaller warm(true);
    (void)warm.marshal(make_rmi_invocation(args));
    std::size_t rmi_warm = warm.marshal(make_rmi_invocation(args)).size();
    std::printf("%8d %12zu %12zu %12zu %9.1fx\n", args, ace, rmi_cold,
                rmi_warm, static_cast<double>(rmi_cold) / ace);
  }
}

// Replays serialize+parse round trips through the obs layer so the run
// leaves a bench_cmdlang.metrics.json artifact with a
// cmdlang.roundtrip.latency_us histogram (process-global registry: this
// tool runs no deployment).
void record_roundtrip_metrics() {
  auto& registry = obs::MetricsRegistry::global();
  auto& roundtrips = registry.counter("cmdlang.roundtrips");
  for (int args : {1, 4, 16, 64}) {
    auto cmd = make_ace_command(args);
    for (int i = 0; i < 1000; ++i) {
      obs::Span span(registry, "cmdlang", "roundtrip");
      auto parsed = cmdlang::Parser::parse(cmd.to_string());
      span.set_ok(parsed.ok());
      roundtrips.inc();
    }
  }
  bench::export_metrics_json("bench_cmdlang", registry.snapshot());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_size_table();
  record_roundtrip_metrics();
  return 0;
}
