// E8 — Workspace access (paper §1.3, §5.4, Fig 16).
//
// Measures the user-visible workspace mechanics:
//   * bring-up latency at a new access point (attach + initial full frame),
//   * state preservation across detach/reattach moves (hash-verified),
//   * dirty-rect incremental updates vs full-frame retransmission
//     (the property that makes remote viewing cheap).
#include "apps/vnc.hpp"
#include "apps/workspace_backend.hpp"
#include "bench_common.hpp"
#include "services/workspace.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

bool wait_converged(apps::VncServerDaemon& server,
                    apps::VncViewerDaemon& viewer,
                    std::chrono::milliseconds timeout = 3s) {
  auto deadline = bench::Clock::now() + timeout;
  while (bench::Clock::now() < deadline) {
    if (server.framebuffer_hash() == viewer.framebuffer_hash()) return true;
    std::this_thread::sleep_for(200us);
  }
  return false;
}

void bringup_latency() {
  bench::header("E8a", "workspace bring-up latency at a new access point");
  testenv::AceTestEnv deployment(110);
  if (!deployment.start().ok()) return;
  auto client = deployment.make_client("bench", "user/john");
  daemon::DaemonHost server_host(deployment.env, "vnc-host");

  daemon::DaemonConfig cfg;
  cfg.name = "vnc-john";
  cfg.room = "machine-room";
  auto& server = server_host.add_daemon<apps::VncServerDaemon>(
      cfg, "john", "default");
  server.set_password("pw");
  if (!server.start().ok()) return;
  // Populate the workspace so the initial frame is non-trivial.
  for (int i = 0; i < 6; ++i) {
    CmdLine run("vncRunApp");
    run.arg("command", "app" + std::to_string(i));
    (void)client->call(server.address(), run, daemon::kCallOk);
  }

  bench::Series bringup_ms;
  for (int i = 0; i < 20; ++i) {
    daemon::DaemonHost ap(deployment.env, "ap" + std::to_string(i));
    daemon::DaemonConfig vcfg;
    vcfg.name = "viewer" + std::to_string(i);
    vcfg.room = "hall";
    auto& viewer = ap.add_daemon<apps::VncViewerDaemon>(vcfg);
    if (!viewer.start().ok()) return;
    auto start = bench::Clock::now();
    if (!viewer.attach(server.address(), "pw").ok()) return;
    if (!wait_converged(server, viewer)) return;
    bringup_ms.add(bench::us_since(start) / 1000.0);
    (void)viewer.detach();
  }
  std::printf("  attach + initial frame: p50=%.2f ms  p95=%.2f ms\n",
              bringup_ms.percentile(50), bringup_ms.percentile(95));
}

void state_preserved_across_moves() {
  bench::header("E8b", "state preservation across access-point moves");
  testenv::AceTestEnv deployment(111);
  if (!deployment.start().ok()) return;
  auto client = deployment.make_client("bench", "user/john");
  daemon::DaemonHost server_host(deployment.env, "vnc-host");
  daemon::DaemonConfig cfg;
  cfg.name = "vnc-john";
  cfg.room = "machine-room";
  auto& server = server_host.add_daemon<apps::VncServerDaemon>(
      cfg, "john", "default");
  server.set_password("pw");
  if (!server.start().ok()) return;

  int moves = 0, preserved = 0;
  for (int i = 0; i < 10; ++i) {
    // Mutate state at this access point.
    CmdLine run("vncRunApp");
    run.arg("command", "doc" + std::to_string(i));
    (void)client->call(server.address(), run, daemon::kCallOk);
    std::uint64_t before = server.framebuffer_hash();

    daemon::DaemonHost ap(deployment.env, "move-ap" + std::to_string(i));
    daemon::DaemonConfig vcfg;
    vcfg.name = "mv" + std::to_string(i);
    vcfg.room = "hall";
    auto& viewer = ap.add_daemon<apps::VncViewerDaemon>(vcfg);
    if (!viewer.start().ok()) return;
    if (!viewer.attach(server.address(), "pw").ok()) return;
    moves++;
    if (wait_converged(server, viewer) &&
        server.framebuffer_hash() == before)
      preserved++;
    (void)viewer.detach();
  }
  std::printf("  %d/%d moves preserved the exact workspace state\n",
              preserved, moves);
}

void update_bandwidth() {
  bench::header("E8c", "incremental dirty-rect updates vs full frames");
  apps::Framebuffer fb(apps::kWorkspaceWidth, apps::kWorkspaceHeight);
  fb.fill_rect({0, 0, fb.width(), fb.height()}, 0x18);
  fb.clear_dirty();

  std::printf("%-26s %14s %14s %10s\n", "workload", "dirty_bytes",
              "full_bytes", "savings");
  struct Workload {
    const char* label;
    std::function<void(apps::Framebuffer&)> mutate;
  };
  util::Rng rng(5);
  const Workload workloads[] = {
      {"cursor blink (3x3)",
       [](apps::Framebuffer& f) { f.fill_rect({100, 100, 3, 3}, 0xff); }},
      {"typing a line of text",
       [](apps::Framebuffer& f) { f.draw_label(8, 200, "hello_world", 0xd0); }},
      {"window move (96x24)",
       [&rng](apps::Framebuffer& f) {
         int x = static_cast<int>(rng.next_below(200));
         f.fill_rect({x, 60, 96, 24}, 0x80);
       }},
      {"full-screen repaint",
       [](apps::Framebuffer& f) {
         f.fill_rect({0, 0, f.width(), f.height()}, 0x30);
       }},
  };
  for (const Workload& w : workloads) {
    w.mutate(fb);
    std::size_t dirty = fb.encode_updates(false).size();
    std::size_t full = fb.encode_updates(true).size();
    fb.clear_dirty();
    std::printf("%-26s %14zu %14zu %9.1fx\n", w.label, dirty, full,
                static_cast<double>(full) / std::max<std::size_t>(dirty, 1));
  }
}

}  // namespace

int main() {
  bringup_latency();
  state_preserved_across_moves();
  update_bandwidth();
  return 0;
}
