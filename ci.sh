#!/usr/bin/env bash
# Tier-1 verification in three configurations:
#   1. Release         — the build users get (catches optimizer-visible bugs)
#   2. ThreadSanitizer — shakes out data races in the reactor actor
#      structure (frame pumps, async handshakes, channel actors, client
#      demux, timer chains; see docs/net.md),
#      plus a chaos seed sweep: the fault-injection tests replayed under
#      several ACE_CHAOS_SEED values so each CI run exercises distinct
#      crash/partition interleavings under the race detector
#   3. AddressSanitizer — lifetime bugs on the crash/restart paths the chaos
#      engine drives (daemon teardown, channel close, queue reopen),
#      plus a fixed-seed disk-fault sweep: the durable-store suite (power
#      cycles, torn WAL tails, dropped fsyncs, recovery) replayed under
#      several ACE_CHAOS_SEED values
#
# Usage: ./ci.sh [release|tsan|asan]     (no argument = all)
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}")
}

# Runs each bench at its smallest scale and validates the exported metrics
# artifact, so bench bit-rot (bench doesn't build, doesn't run, or stops
# exporting the counters E15/E16 read) is caught before anyone needs a full
# run. The checked counters are the ones the experiments' claims rest on.
bench_smoke() {
  local build_dir="$1"
  echo "=== bench-smoke: bench_asd --smoke ==="
  (cd "${build_dir}/bench" && rm -f bench_asd.metrics.json && ./bench_asd --smoke)
  python3 - "${build_dir}/bench/bench_asd.metrics.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    snapshot = json.load(f)
counters = snapshot["counters"]
for name in ("asd.registrations", "asd.queries", "asd.query_index_hits",
             "asd.renewals"):
    if counters.get(name, 0) <= 0:
        sys.exit(f"bench-smoke: counter {name!r} missing or zero in {path}")
# E21 federation: the gossip rounds, cross-room query fan-out, and relay
# tunnel must all have actually run — a zero here means the federated
# campus silently degraded to a single-room deployment.
for name in ("asd.gossip_rounds", "asd.forwarded_queries",
             "asd.relay_frames"):
    if counters.get(name, 0) <= 0:
        sys.exit(f"bench-smoke: counter {name!r} missing or zero in {path} — "
                 "the federation path never ran")
print(f"bench-smoke: {path} ok "
      f"({counters['asd.queries']} queries, "
      f"{counters['asd.query_index_hits']} index hits, "
      f"{counters['asd.gossip_rounds']} gossip rounds, "
      f"{counters['asd.forwarded_queries']} forwarded queries, "
      f"{counters['asd.relay_frames']} relay frames)")
EOF
  echo "=== bench-smoke: bench_store --smoke ==="
  (cd "${build_dir}/bench" && rm -f bench_store.metrics.json && ./bench_store --smoke)
  python3 - "${build_dir}/bench/bench_store.metrics.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    snapshot = json.load(f)
counters = snapshot["counters"]
for name in ("store.writes", "store.replica_acks", "store.batch_records",
             "store.sync_tree_rpcs", "store.wal_appends", "store.wal_fsyncs",
             "store.snapshot_compactions"):
    if counters.get(name, 0) <= 0:
        sys.exit(f"bench-smoke: counter {name!r} missing or zero in {path}")
# The E19a smoke run restarts a replica from snapshot + WAL; a snapshot
# without at least one real recovery means the durable plane is dead code.
if counters.get("store.recoveries", 0) < 1:
    sys.exit(f"bench-smoke: store.recoveries < 1 in {path} — "
             "restart recovery never ran")
# E20 read path: digest fan-outs must actually run, the E20a stale-replica
# probe must produce at least one async read repair, and E20b must serve
# its scans as bounded pages.
for name in ("store.digest_reads", "store.scan_pages"):
    if counters.get(name, 0) <= 0:
        sys.exit(f"bench-smoke: counter {name!r} missing or zero in {path}")
if counters.get("store.read_repairs", 0) < 1:
    sys.exit(f"bench-smoke: store.read_repairs < 1 in {path} — "
             "the E20a read-repair probe never healed its stale replica")
print(f"bench-smoke: {path} ok "
      f"({counters['store.writes']} writes, "
      f"{counters['store.batch_records']} batched records, "
      f"{counters['store.sync_tree_rpcs']} merkle tree rpcs, "
      f"{counters['store.wal_appends']} wal appends, "
      f"{counters['store.recoveries']} recoveries, "
      f"{counters['store.digest_reads']} digest reads, "
      f"{counters['store.scan_pages']} scan pages)")
EOF
  echo "=== bench-smoke: bench_scale --smoke ==="
  (cd "${build_dir}/bench" && rm -f bench_scale.metrics.json && ./bench_scale --smoke)
  python3 - "${build_dir}/bench/bench_scale.metrics.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    snapshot = json.load(f)
counters = snapshot["counters"]
for name in ("net.connects", "daemon.conn.accepted", "client.calls",
             "reactor.tasks", "crypto.handshakes"):
    if counters.get(name, 0) <= 0:
        sys.exit(f"bench-smoke: counter {name!r} missing or zero in {path}")
print(f"bench-smoke: {path} ok "
      f"({counters['net.connects']} connects, "
      f"{counters['reactor.tasks']} reactor tasks, "
      f"{counters['client.calls']} rpc calls)")
EOF
  echo "=== bench-smoke: bench_audio --smoke ==="
  (cd "${build_dir}/bench" && rm -f bench_audio.metrics.json && ./bench_audio --smoke)
  python3 - "${build_dir}/bench/bench_audio.metrics.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    snapshot = json.load(f)
counters = snapshot["counters"]
for name in ("media.frames_routed", "media.datagrams_fanned",
             "media.route_installs"):
    if counters.get(name, 0) <= 0:
        sys.exit(f"bench-smoke: counter {name!r} missing or zero in {path}")
# The artifact comes from the zero-copy E18b run: any payload copy on the
# fan-out path is a regression of the data plane's core claim.
if counters.get("media.bytes_copied", 0) != 0:
    sys.exit(f"bench-smoke: media.bytes_copied nonzero in {path} — "
             "the zero-copy invariant regressed")
print(f"bench-smoke: {path} ok "
      f"({counters['media.frames_routed']} frames routed, "
      f"{counters['media.datagrams_fanned']} sink sends, "
      f"zero payload bytes copied)")
EOF
}

# The documentation is machine-checked: docs/commands.md is diffed against
# the commands each daemon class actually registers, and every markdown
# cross-link reachable from README.md must resolve (files and anchors).
# ctest already runs test_docs, but run it here as its own named gate so a
# doc drift failure is unmistakable in the CI log rather than buried in the
# suite summary.
doc_lint() {
  local build_dir="$1"
  echo "=== doc-lint: command reference diff + markdown cross-link walk ==="
  "${build_dir}/tests/test_docs"
}

# The zero-copy data plane aliases one payload buffer across daemon threads
# (capture, router fan-out, play/recorder rings). Replay the media suites a
# few times under TSan so buffer-sharing bugs surface as reported races
# rather than flaky audio.
media_race_sweep() {
  local build_dir="$1"
  echo "=== media data-plane sweep under ThreadSanitizer ==="
  "${build_dir}/tests/test_media" --gtest_repeat=3 \
    --gtest_filter='FrameRouterTest.*:AudioPipelineTest.*'
  "${build_dir}/tests/test_services" --gtest_repeat=3 \
    --gtest_filter='ServicesTest.Converter*:ServicesTest.Distribution*'
}

# Replays the chaos suites (schedule properties + live fault injection)
# under a handful of fixed seeds. Fixed rather than random so a CI failure
# is reproducible by running the same seed locally.
chaos_seed_sweep() {
  local build_dir="$1"
  for seed in 1 7 42; do
    echo "=== chaos seed sweep: ACE_CHAOS_SEED=${seed} ==="
    ACE_CHAOS_SEED="${seed}" \
      "${build_dir}/tests/test_failures" --gtest_filter='Chaos*'
  done
}

# The read path fans digest RPCs and async read repairs across the ops
# pool, and cluster scans merge per-shard pages gathered concurrently —
# replay those suites under TSan, plus one fixed-seed chaos torture whose
# final R=2 verification reads drive the digest path under crash/restart.
read_path_race_sweep() {
  local build_dir="$1"
  echo "=== store read-path sweep under ThreadSanitizer ==="
  "${build_dir}/tests/test_store" --gtest_repeat=3 --gtest_filter=\
'QuorumStoreTest.DigestReadRepairConvergesStaleReplica:'\
'QuorumStoreTest.ReadQuorumUnavailableIsSurfaced:'\
'StoreDigestAblationTest.*:ShardedStoreTest.Scan*'
  ACE_CHAOS_SEED=42 "${build_dir}/tests/test_store" \
    --gtest_filter='QuorumStoreTest.ChaosQuorumTortureNeverLosesAckedWrites'
}

# Replays the durable-store suite — power cycles, torn WAL tails, lying
# fsyncs, crash-mid-compaction — under fixed seeds with ASan watching the
# recovery paths (daemon restart swaps the batcher, monitor, and durable
# log; lifetime bugs live exactly there). Fixed seeds keep failures
# replayable: ACE_CHAOS_SEED=<seed> reruns the same schedule.
disk_fault_sweep() {
  local build_dir="$1"
  for seed in 3 11 1337; do
    echo "=== disk-fault chaos sweep: ACE_CHAOS_SEED=${seed} ==="
    ACE_CHAOS_SEED="${seed}" \
      "${build_dir}/tests/test_store" --gtest_filter='DurableStoreTest.*'
  done
  "${build_dir}/tests/test_io"
}

want="${1:-all}"

case "${want}" in
  release|all)
    run_config "release" build-ci -DCMAKE_BUILD_TYPE=Release
    doc_lint build-ci
    bench_smoke build-ci
    ;;&
  tsan|all)
    run_config "tsan" build-tsan -DACE_SANITIZE=thread
    chaos_seed_sweep build-tsan
    media_race_sweep build-tsan
    read_path_race_sweep build-tsan
    ;;&
  asan|all)
    run_config "asan" build-asan -DACE_SANITIZE=address
    disk_fault_sweep build-asan
    ;;&
  release|tsan|asan|all) ;;
  *)
    echo "usage: $0 [release|tsan|asan]" >&2
    exit 2
    ;;
esac

echo "ci.sh: all requested configurations passed"
