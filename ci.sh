#!/usr/bin/env bash
# Tier-1 verification in two configurations:
#   1. Release        — the build users get (catches optimizer-visible bugs)
#   2. ThreadSanitizer — shakes out data races in the daemon/client thread
#      structure (accept/handshake/command/control threads, client demux)
#
# Usage: ./ci.sh [release|tsan]     (no argument = both)
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== ${name}: configure ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== ${name}: build ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}")
}

want="${1:-all}"

case "${want}" in
  release|all)
    run_config "release" build-ci -DCMAKE_BUILD_TYPE=Release
    ;;&
  tsan|all)
    run_config "tsan" build-tsan -DACE_SANITIZE=thread
    ;;&
  release|tsan|all) ;;
  *)
    echo "usage: $0 [release|tsan]" >&2
    exit 2
    ;;
esac

echo "ci.sh: all requested configurations passed"
