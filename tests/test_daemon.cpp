// Tests for the ACE service daemon core: builtin commands, notifications
// (§2.5), startup sequence (§2.6), leases (§2.4), authorization (§3.2),
// device hierarchy (§2.3 Fig 6) and failure behaviour.
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "daemon/devices.hpp"
#include "services/auth_db.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

// A minimal concrete daemon for poking at base behaviour.
class EchoDaemon : public daemon::ServiceDaemon {
 public:
  EchoDaemon(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(
        cmdlang::CommandSpec("echo", "echo the text back")
            .arg(cmdlang::string_arg("text")),
        [](const CmdLine& cmd, const daemon::CallerInfo&) {
          CmdLine reply = cmdlang::make_ok();
          reply.arg("text", cmd.get_text("text"));
          return reply;
        });
    register_command(
        cmdlang::CommandSpec("whoami", "report caller principal"),
        [](const CmdLine&, const daemon::CallerInfo& caller) {
          CmdLine reply = cmdlang::make_ok();
          reply.arg("principal", caller.principal);
          return reply;
        });
  }
};

// Notification sink: records every invocation of its `sink` command.
class SinkDaemon : public daemon::ServiceDaemon {
 public:
  SinkDaemon(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(
        cmdlang::CommandSpec("sink", "notification sink")
            .arg(cmdlang::string_arg("source"))
            .arg(cmdlang::word_arg("command"))
            .arg(cmdlang::string_arg("detail")),
        [this](const CmdLine& cmd, const daemon::CallerInfo&) {
          std::scoped_lock lock(mu_);
          received_.push_back(cmd.get_text("detail"));
          return cmdlang::make_ok();
        });
  }

  std::vector<std::string> received() const {
    std::scoped_lock lock(mu_);
    return received_;
  }

  bool wait_for(std::size_t n, std::chrono::milliseconds timeout) const {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      {
        std::scoped_lock lock(mu_);
        if (received_.size() >= n) return true;
      }
      std::this_thread::sleep_for(5ms);
    }
    return false;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> received_;
};

}  // namespace

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    host_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "work");
    client_ = deployment_->make_client("laptop", "user/tester");
  }

  daemon::DaemonConfig config(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "hawk";
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::DaemonHost> host_;
  std::unique_ptr<daemon::AceClient> client_;
};

TEST_F(DaemonTest, BuiltinPingInfoHelp) {
  auto& echo = host_->add_daemon<EchoDaemon>(config("echo1"));
  ASSERT_TRUE(echo.start().ok());

  auto ping = client_->call(echo.address(), CmdLine("ping"), daemon::kCallOk);
  ASSERT_TRUE(ping.ok());

  auto info = client_->call(echo.address(), CmdLine("info"), daemon::kCallOk);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->get_text("name"), "echo1");
  EXPECT_EQ(info->get_text("room"), "hawk");
  auto commands = info->get_vector("commands");
  ASSERT_TRUE(commands.has_value());
  EXPECT_GE(commands->elements.size(), 8u);  // builtins + echo + whoami

  CmdLine help("help");
  help.arg("command", Word{"echo"});
  auto h = client_->call(echo.address(), help, daemon::kCallOk);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->get_text("command"), "echo");
}

TEST_F(DaemonTest, CustomCommandRoundTrip) {
  auto& echo = host_->add_daemon<EchoDaemon>(config("echo2"));
  ASSERT_TRUE(echo.start().ok());
  CmdLine cmd("echo");
  cmd.arg("text", "hello ace");
  auto reply = client_->call(echo.address(), cmd, daemon::kCallOk);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->get_text("text"), "hello ace");
}

TEST_F(DaemonTest, CallerPrincipalFromCertificate) {
  auto& echo = host_->add_daemon<EchoDaemon>(config("echo3"));
  ASSERT_TRUE(echo.start().ok());
  auto reply = client_->call(echo.address(), CmdLine("whoami"), daemon::kCallOk);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->get_text("principal"), "user/tester");
}

TEST_F(DaemonTest, UnknownCommandAndBadSyntaxRejected) {
  auto& echo = host_->add_daemon<EchoDaemon>(config("echo4"));
  ASSERT_TRUE(echo.start().ok());

  auto bad = client_->call(echo.address(), CmdLine("teleport"));
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(cmdlang::is_error(bad.value()));
  EXPECT_EQ(cmdlang::reply_error(bad.value()).code,
            util::Errc::semantic_error);

  CmdLine missing("echo");  // required arg absent
  auto miss = client_->call(echo.address(), missing);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(cmdlang::is_error(miss.value()));
  EXPECT_GE(echo.stats().commands_rejected, 2u);
}

TEST_F(DaemonTest, NotificationsFireOnCommandExecution) {
  auto& echo = host_->add_daemon<EchoDaemon>(config("source1"));
  auto& sink = host_->add_daemon<SinkDaemon>(config("sink1"));
  ASSERT_TRUE(echo.start().ok());
  ASSERT_TRUE(sink.start().ok());

  CmdLine sub("addNotification");
  sub.arg("command", Word{"echo"});
  sub.arg("service", sink.address().to_string());
  sub.arg("method", Word{"sink"});
  ASSERT_TRUE(client_->call(echo.address(), sub, daemon::kCallOk).ok());

  CmdLine cmd("echo");
  cmd.arg("text", "notify me");
  ASSERT_TRUE(client_->call(echo.address(), cmd, daemon::kCallOk).ok());

  ASSERT_TRUE(sink.wait_for(1, 2s));
  auto received = sink.received();
  ASSERT_EQ(received.size(), 1u);
  // The detail carries the original command, parseable per Fig 5.
  auto detail = cmdlang::Parser::parse(received[0]);
  ASSERT_TRUE(detail.ok());
  EXPECT_EQ(detail->name(), "echo");
  EXPECT_EQ(detail->get_text("text"), "notify me");
}

TEST_F(DaemonTest, RemoveNotificationStopsDelivery) {
  auto& echo = host_->add_daemon<EchoDaemon>(config("source2"));
  auto& sink = host_->add_daemon<SinkDaemon>(config("sink2"));
  ASSERT_TRUE(echo.start().ok());
  ASSERT_TRUE(sink.start().ok());

  CmdLine sub("addNotification");
  sub.arg("command", Word{"echo"});
  sub.arg("service", sink.address().to_string());
  sub.arg("method", Word{"sink"});
  ASSERT_TRUE(client_->call(echo.address(), sub, daemon::kCallOk).ok());

  CmdLine unsub("removeNotification");
  unsub.arg("command", Word{"echo"});
  unsub.arg("service", sink.address().to_string());
  ASSERT_TRUE(client_->call(echo.address(), unsub, daemon::kCallOk).ok());

  CmdLine cmd("echo");
  cmd.arg("text", "should not notify");
  ASSERT_TRUE(client_->call(echo.address(), cmd, daemon::kCallOk).ok());
  EXPECT_FALSE(sink.wait_for(1, 300ms));
}

TEST_F(DaemonTest, FailingCommandDoesNotNotify) {
  auto& echo = host_->add_daemon<EchoDaemon>(config("source3"));
  auto& sink = host_->add_daemon<SinkDaemon>(config("sink3"));
  ASSERT_TRUE(echo.start().ok());
  ASSERT_TRUE(sink.start().ok());

  CmdLine sub("addNotification");
  sub.arg("command", Word{"echo"});
  sub.arg("service", sink.address().to_string());
  sub.arg("method", Word{"sink"});
  ASSERT_TRUE(client_->call(echo.address(), sub, daemon::kCallOk).ok());

  (void)client_->call(echo.address(), CmdLine("echo"));  // missing arg
  EXPECT_FALSE(sink.wait_for(1, 300ms));
}

TEST_F(DaemonTest, LeaseExpiryRemovesCrashedDaemon) {
  daemon::DaemonConfig c = config("mortal");
  c.lease = 300ms;
  c.lease_renew = 100ms;
  auto& echo = host_->add_daemon<EchoDaemon>(c);
  std::size_t before = deployment_->asd->live_count();
  ASSERT_TRUE(echo.start().ok());
  EXPECT_EQ(deployment_->asd->live_count(), before + 1);

  // While renewing, the service outlives several lease periods.
  std::this_thread::sleep_for(700ms);
  EXPECT_EQ(deployment_->asd->live_count(), before + 1);

  // Crash (no deregistration): reaped after the lease runs out.
  echo.crash();
  std::this_thread::sleep_for(600ms);
  EXPECT_EQ(deployment_->asd->live_count(), before);
}

TEST_F(DaemonTest, AuthorizationDeniesUnauthorizedPrincipal) {
  // POLICY: only user/alice may run commands in app_domain ace.
  keynote::Assertion policy;
  policy.authorizer = keynote::kPolicyAuthorizer;
  policy.licensees = keynote::licensee_key("user/alice");
  policy.conditions = "app_domain == \"ace\"";
  deployment_->env.add_policy(policy);

  daemon::DaemonConfig c = config("guarded");
  c.enforce_authorization = true;
  auto& echo = host_->add_daemon<EchoDaemon>(c);
  ASSERT_TRUE(echo.start().ok());

  auto alice = deployment_->make_client("alice-pc", "user/alice");
  CmdLine cmd("echo");
  cmd.arg("text", "hi");
  auto allowed = alice->call(echo.address(), cmd, daemon::kCallOk);
  EXPECT_TRUE(allowed.ok()) << (allowed.ok() ? "" : allowed.error().to_string());

  auto mallory = deployment_->make_client("mallory-pc", "user/mallory");
  auto denied = mallory->call(echo.address(), cmd);
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(cmdlang::is_error(denied.value()));
  EXPECT_EQ(cmdlang::reply_error(denied.value()).code, util::Errc::auth_error);
  EXPECT_GE(echo.stats().authorizations_denied, 1u);
}

TEST_F(DaemonTest, AuthorizationViaAuthDbCredential) {
  // POLICY delegates to the admin key; admin grants user/bob via the
  // Authorization Database (Fig 10 flow end to end).
  deployment_->env.register_principal("admin");
  keynote::Assertion policy;
  policy.authorizer = keynote::kPolicyAuthorizer;
  policy.licensees = keynote::licensee_key("admin");
  deployment_->env.add_policy(policy);

  ASSERT_TRUE(services::grant_credential(
                  *client_, deployment_->env.auth_db_address,
                  deployment_->env, "admin", "user/bob",
                  "command ~= \"echo*\"")
                  .ok());

  daemon::DaemonConfig c = config("guarded2");
  c.enforce_authorization = true;
  auto& echo = host_->add_daemon<EchoDaemon>(c);
  ASSERT_TRUE(echo.start().ok());

  auto bob = deployment_->make_client("bob-pc", "user/bob");
  CmdLine cmd("echo");
  cmd.arg("text", "hi");
  auto allowed = bob->call(echo.address(), cmd, daemon::kCallOk);
  EXPECT_TRUE(allowed.ok()) << (allowed.ok() ? "" : allowed.error().to_string());

  // The credential is command-scoped: ping is not covered.
  auto denied = bob->call(echo.address(), CmdLine("ping"));
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(cmdlang::is_error(denied.value()));
}

TEST_F(DaemonTest, StatsCountConnectionsAndCommands) {
  auto& echo = host_->add_daemon<EchoDaemon>(config("counted"));
  ASSERT_TRUE(echo.start().ok());
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(client_->call(echo.address(), CmdLine("ping"), daemon::kCallOk).ok());
  auto stats = echo.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);  // cached channel reused
  EXPECT_EQ(stats.commands_executed, 5u);
}

// --------------------------------------------------------- device hierarchy

TEST_F(DaemonTest, DeviceInheritsBaseAndAddsPower) {
  daemon::DaemonConfig c = config("cam");
  auto& camera =
      host_->add_daemon<daemon::PtzCameraDaemon>(c, daemon::vcc3_spec());
  ASSERT_TRUE(camera.start().ok());

  // Inherited Service-level command.
  ASSERT_TRUE(client_->call(camera.address(), CmdLine("ping"), daemon::kCallOk).ok());

  // Device-level power command.
  auto status = client_->call(camera.address(), CmdLine("deviceStatus"), daemon::kCallOk);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->get_text("powered"), "off");

  // Camera rejects motion while off.
  CmdLine move("ptzMove");
  move.arg("pan", 10.0);
  move.arg("tilt", 0.0);
  auto rejected = client_->call(camera.address(), move);
  ASSERT_TRUE(rejected.ok());
  EXPECT_TRUE(cmdlang::is_error(rejected.value()));

  ASSERT_TRUE(client_->call(camera.address(), CmdLine("deviceOn"), daemon::kCallOk).ok());
  EXPECT_TRUE(client_->call(camera.address(), move, daemon::kCallOk).ok());
}

TEST_F(DaemonTest, ModelSpecsDifferVcc3Vcc4) {
  auto& vcc3 = host_->add_daemon<daemon::PtzCameraDaemon>(config("cam3"),
                                                          daemon::vcc3_spec());
  auto& vcc4 = host_->add_daemon<daemon::PtzCameraDaemon>(config("cam4"),
                                                          daemon::vcc4_spec());
  ASSERT_TRUE(vcc3.start().ok());
  ASSERT_TRUE(vcc4.start().ok());
  ASSERT_TRUE(client_->call(vcc3.address(), CmdLine("deviceOn"), daemon::kCallOk).ok());
  ASSERT_TRUE(client_->call(vcc4.address(), CmdLine("deviceOn"), daemon::kCallOk).ok());

  // pan=95 is inside the VCC4 envelope but outside the VCC3's.
  CmdLine move("ptzMove");
  move.arg("pan", 95.0);
  move.arg("tilt", 0.0);
  auto r3 = client_->call(vcc3.address(), move);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(cmdlang::is_error(r3.value()));
  EXPECT_TRUE(client_->call(vcc4.address(), move, daemon::kCallOk).ok());
}

TEST_F(DaemonTest, ProjectorStateMachine) {
  auto& proj = host_->add_daemon<daemon::ProjectorDaemon>(
      config("proj"), daemon::epson7350_spec());
  ASSERT_TRUE(proj.start().ok());
  ASSERT_TRUE(client_->call(proj.address(), CmdLine("deviceOn"), daemon::kCallOk).ok());

  CmdLine input("projSetInput");
  input.arg("input", Word{"network"});
  ASSERT_TRUE(client_->call(proj.address(), input, daemon::kCallOk).ok());

  CmdLine display("projDisplay");
  display.arg("source", "workspace/john/default");
  ASSERT_TRUE(client_->call(proj.address(), display, daemon::kCallOk).ok());

  CmdLine pip("projPictureInPicture");
  pip.arg("source", "camera1");
  pip.arg("enable", Word{"on"});
  ASSERT_TRUE(client_->call(proj.address(), pip, daemon::kCallOk).ok());

  auto state = proj.projector_state();
  EXPECT_EQ(state.input, "network");
  EXPECT_EQ(state.source_service, "workspace/john/default");
  EXPECT_TRUE(state.picture_in_picture);
  EXPECT_EQ(state.pip_source, "camera1");
}

TEST_F(DaemonTest, StoppedDaemonRefusesConnections) {
  auto& echo = host_->add_daemon<EchoDaemon>(config("stopping"));
  ASSERT_TRUE(echo.start().ok());
  ASSERT_TRUE(client_->call(echo.address(), CmdLine("ping"), daemon::kCallOk).ok());
  net::Address addr = echo.address();
  echo.stop();
  client_->drop_connection(addr);
  auto reply =
      client_->call(addr, CmdLine("ping"), daemon::CallOptions{.timeout = 200ms});
  EXPECT_FALSE(reply.ok());
}
