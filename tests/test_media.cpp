// Tests for the media substrate and the §4.15 audio pipeline services:
// ADPCM and RLE-video codecs, DTMF/Goertzel voice-command path, NLMS echo
// cancellation, and the capture->mix->play daemon graph.
#include <gtest/gtest.h>

#include <cmath>

#include "ace_test_env.hpp"
#include "daemon/devices.hpp"
#include "media/audio.hpp"
#include "media/audio_services.hpp"
#include "media/codec.hpp"
#include "media/dsp.hpp"
#include "services/streaming.hpp"

using namespace ace;
using namespace ace::media;
using namespace std::chrono_literals;
using cmdlang::CmdLine;

// ------------------------------------------------------------- audio frame

TEST(AudioFrame, SerializeParseRoundTrip) {
  AudioFrame f;
  f.stream = "mic-hawk";
  f.sequence = 42;
  f.samples = sine_wave(440, 10000, kFrameSamples, 0);
  auto parsed = AudioFrame::parse(f.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stream, f.stream);
  EXPECT_EQ(parsed->sequence, f.sequence);
  EXPECT_EQ(parsed->samples, f.samples);
}

TEST(AudioFrame, ParseRejectsTruncated) {
  AudioFrame f;
  f.stream = "x";
  f.samples.assign(kFrameSamples, 100);
  auto wire = f.serialize();
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(AudioFrame::parse(wire).has_value());
}

TEST(AudioHelpers, MixSaturates) {
  std::vector<std::int16_t> acc(4, 30000);
  std::vector<std::int16_t> add(4, 30000);
  mix_into(acc, add, 1.0);
  for (auto s : acc) EXPECT_EQ(s, 32767);
}

TEST(AudioHelpers, RmsDbOfSilenceIsFloor) {
  std::vector<std::int16_t> silence(100, 0);
  EXPECT_DOUBLE_EQ(rms_db(silence), -120.0);
  EXPECT_GT(rms_db(sine_wave(440, 20000, 800, 0)), -10.0);
}

// ------------------------------------------------------------------- ADPCM

TEST(Adpcm, CompressesFourToOne) {
  auto pcm = sine_wave(440, 12000, 1600, 0);
  AdpcmState enc;
  auto encoded = adpcm_encode(pcm, enc);
  EXPECT_EQ(encoded.size(), pcm.size() / 2);  // 4 bits per 16-bit sample
}

TEST(Adpcm, ReconstructionSnrIsUsable) {
  auto pcm = sine_wave(440, 12000, 8000, 0);
  AdpcmState enc, dec;
  auto decoded = adpcm_decode(adpcm_encode(pcm, enc), pcm.size(), dec);
  ASSERT_EQ(decoded.size(), pcm.size());
  double signal = 0, noise = 0;
  for (std::size_t i = 0; i < pcm.size(); ++i) {
    signal += static_cast<double>(pcm[i]) * pcm[i];
    double e = static_cast<double>(pcm[i]) - decoded[i];
    noise += e * e;
  }
  double snr_db = 10.0 * std::log10(signal / (noise + 1e-9));
  EXPECT_GT(snr_db, 20.0);  // telephony-grade
}

TEST(Adpcm, StreamingStateMatchesOneShot) {
  auto pcm = sine_wave(300, 9000, 960, 0);
  AdpcmState enc1, dec1;
  auto one_shot = adpcm_decode(adpcm_encode(pcm, enc1), pcm.size(), dec1);

  AdpcmState enc2, dec2;
  std::vector<std::int16_t> chunked;
  for (std::size_t off = 0; off < pcm.size(); off += kFrameSamples) {
    std::vector<std::int16_t> chunk(pcm.begin() + off,
                                    pcm.begin() + off + kFrameSamples);
    auto part = adpcm_decode(adpcm_encode(chunk, enc2), chunk.size(), dec2);
    chunked.insert(chunked.end(), part.begin(), part.end());
  }
  EXPECT_EQ(one_shot, chunked);  // state carries across frame boundaries
}

// --------------------------------------------------------------- RLE video

TEST(RleVideo, IntraFrameRoundTrip) {
  VideoFrame f = synthetic_frame(64, 48, 0);
  auto encoded = rle_video_encode(f, nullptr);
  auto decoded = rle_video_decode(encoded, nullptr);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->pixels, f.pixels);
}

TEST(RleVideo, InterFrameRoundTripAndCompression) {
  VideoFrame f0 = synthetic_frame(64, 48, 0);
  VideoFrame f1 = synthetic_frame(64, 48, 1);
  auto intra = rle_video_encode(f1, nullptr);
  auto inter = rle_video_encode(f1, &f0);
  // Static background delta-codes to zero runs: inter beats intra.
  EXPECT_LT(inter.size(), intra.size());
  auto decoded = rle_video_decode(inter, &f0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->pixels, f1.pixels);
}

TEST(RleVideo, DecodeRejectsGarbage) {
  util::Bytes garbage{1, 2, 3};
  EXPECT_FALSE(rle_video_decode(garbage, nullptr).has_value());
}

// ------------------------------------------------------------ DTMF/Goertzel

TEST(Dtmf, EncodeDecodeRoundTrip) {
  for (const char* text :
       {"a", "deviceOn;", "ptzMove pan=10 tilt=5;", "hello world 123"}) {
    auto audio = dtmf_encode(text);
    auto decoded = dtmf_decode(audio);
    ASSERT_TRUE(decoded.has_value()) << text;
    EXPECT_EQ(*decoded, text);
  }
}

TEST(Dtmf, DecodeSurvivesAdditiveNoise) {
  auto audio = dtmf_encode("projSetInput input=vga;");
  util::Rng rng(3);
  for (auto& s : audio) {
    double noisy = s + rng.next_gaussian() * 300.0;
    s = static_cast<std::int16_t>(std::clamp(noisy, -32767.0, 32767.0));
  }
  auto decoded = dtmf_decode(audio);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, "projSetInput input=vga;");
}

TEST(Dtmf, GarbageAudioRejected) {
  auto noise = sine_wave(523, 9000, 6 * (kDtmfSymbolSamples + kDtmfGapSamples),
                         0);
  EXPECT_FALSE(dtmf_decode(noise).has_value());
}

TEST(Goertzel, DetectsTargetFrequency) {
  auto tone = sine_wave(770, 10000, 400, 0);
  double at_target = goertzel_power(tone, 0, 200, 770, kSampleRate);
  double off_target = goertzel_power(tone, 0, 200, 1336, kSampleRate);
  EXPECT_GT(at_target, 100.0 * off_target);
}

// -------------------------------------------------------------------- NLMS

TEST(EchoCanceller, ConvergesOnDelayedEcho) {
  EchoCanceller ec(64, 0.6);
  util::Rng rng(17);
  constexpr std::size_t kDelay = 23;
  constexpr double kEchoGain = 0.6;
  std::vector<std::int16_t> far(8000);
  for (auto& s : far)
    s = static_cast<std::int16_t>(rng.next_gaussian() * 6000.0);

  // Mic hears only the delayed, attenuated far-end (no near speech).
  std::vector<std::int16_t> mic(far.size(), 0);
  for (std::size_t i = kDelay; i < far.size(); ++i)
    mic[i] = static_cast<std::int16_t>(kEchoGain * far[i - kDelay]);

  // Feed in frames; after convergence the residual should be tiny.
  for (std::size_t off = 0; off + kFrameSamples <= far.size();
       off += kFrameSamples) {
    std::vector<std::int16_t> fr(far.begin() + off,
                                 far.begin() + off + kFrameSamples);
    std::vector<std::int16_t> mr(mic.begin() + off,
                                 mic.begin() + off + kFrameSamples);
    ec.process(fr, mr);
  }
  EXPECT_GT(ec.erle_db(), 10.0);

  // Steady state: a fresh block is almost fully cancelled.
  std::vector<std::int16_t> fr(far.begin(), far.begin() + kFrameSamples);
  std::vector<std::int16_t> mr(mic.begin(), mic.begin() + kFrameSamples);
  auto out = ec.process(fr, mr);
  EXPECT_LT(rms(out), rms(mr) * 0.7);
}

TEST(EchoCanceller, PreservesNearEndSpeech) {
  EchoCanceller ec(64, 0.5);
  util::Rng rng(19);
  std::vector<std::int16_t> far(4000), near(4000);
  for (auto& s : far)
    s = static_cast<std::int16_t>(rng.next_gaussian() * 5000.0);
  auto speech = sine_wave(250, 6000, near.size(), 0);
  std::vector<std::int16_t> mic(near.size());
  for (std::size_t i = 0; i < mic.size(); ++i) {
    double echo = i >= 10 ? 0.5 * far[i - 10] : 0.0;
    mic[i] = static_cast<std::int16_t>(
        std::clamp(echo + speech[i], -32767.0, 32767.0));
  }
  std::vector<std::int16_t> out_all;
  for (std::size_t off = 0; off + kFrameSamples <= mic.size();
       off += kFrameSamples) {
    std::vector<std::int16_t> fr(far.begin() + off,
                                 far.begin() + off + kFrameSamples);
    std::vector<std::int16_t> mr(mic.begin() + off,
                                 mic.begin() + off + kFrameSamples);
    auto out = ec.process(fr, mr);
    out_all.insert(out_all.end(), out.begin(), out.end());
  }
  // The near-end tone must survive: residual power is dominated by it.
  std::vector<std::int16_t> tail(out_all.end() - 800, out_all.end());
  double tone_power = goertzel_power(tail, 0, 800, 250, kSampleRate);
  double other_power = goertzel_power(tail, 0, 800, 900, kSampleRate);
  EXPECT_GT(tone_power, 5.0 * other_power);
}

// --------------------------------------------------------- pipeline daemons

class AudioPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    host_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "av-box");
    client_ = deployment_->make_client("laptop", "user/tester");
  }

  daemon::DaemonConfig config(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "hawk";
    return c;
  }

  template <typename T>
  static bool wait_until(T predicate, std::chrono::milliseconds timeout) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(10ms);
    }
    return predicate();
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::DaemonHost> host_;
  std::unique_ptr<daemon::AceClient> client_;
};

TEST_F(AudioPipelineTest, CaptureStreamsToPlay) {
  auto& capture = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap"), "mic1");
  auto& play = host_->add_daemon<media::AudioPlayDaemon>(config("spk"));
  ASSERT_TRUE(capture.start().ok());
  ASSERT_TRUE(play.start().ok());
  capture.add_sink(play.data_address());

  CmdLine gen("captureGenerate");
  gen.arg("frames", 10);
  gen.arg("frequency", 440.0);
  ASSERT_TRUE(client_->call(capture.address(), gen, daemon::kCallOk).ok());

  ASSERT_TRUE(wait_until([&] { return play.frames_played() >= 10; }, 2s));
  EXPECT_GT(rms(play.played()), 1000.0);
}

TEST_F(AudioPipelineTest, MixerCombinesDeclaredInputs) {
  auto& cap_a = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap-a"), "micA");
  auto& cap_b = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap-b"), "micB");
  auto& mixer = host_->add_daemon<media::AudioMixerDaemon>(
      config("mix"), "mixed");
  auto& recorder =
      host_->add_daemon<media::AudioRecorderDaemon>(config("rec"));
  ASSERT_TRUE(cap_a.start().ok());
  ASSERT_TRUE(cap_b.start().ok());
  ASSERT_TRUE(mixer.start().ok());
  ASSERT_TRUE(recorder.start().ok());

  cap_a.add_sink(mixer.data_address());
  cap_b.add_sink(mixer.data_address());
  mixer.add_sink(recorder.data_address());
  for (const char* tag : {"micA", "micB"}) {
    CmdLine add("mixerAddInput");
    add.arg("stream", tag);
    ASSERT_TRUE(client_->call(mixer.address(), add, daemon::kCallOk).ok());
  }

  cap_a.capture_push(sine_wave(440, 8000, 5 * kFrameSamples, 0));
  cap_b.capture_push(sine_wave(880, 8000, 5 * kFrameSamples, 0));

  ASSERT_TRUE(wait_until(
      [&] { return recorder.recorded("mixed").size() >= 5 * kFrameSamples; },
      2s));
  auto mixed = recorder.recorded("mixed");
  // Both tones present in the mix.
  double p440 = goertzel_power(mixed, 0, 400, 440, kSampleRate);
  double p880 = goertzel_power(mixed, 0, 400, 880, kSampleRate);
  double p660 = goertzel_power(mixed, 0, 400, 660, kSampleRate);
  EXPECT_GT(p440, 10.0 * p660);
  EXPECT_GT(p880, 10.0 * p660);
}

TEST_F(AudioPipelineTest, SpeechToCommandExecutesDecodedCommand) {
  // Fig 15's right edge: text-to-speech -> (audio) -> speech-to-command ->
  // ACE command execution on a target service.
  auto& tts = host_->add_daemon<media::TextToSpeechDaemon>(
      config("tts"), "voice");
  auto& stc =
      host_->add_daemon<media::SpeechToCommandDaemon>(config("stc"));
  auto& camera = host_->add_daemon<daemon::PtzCameraDaemon>(
      config("cam"), daemon::vcc4_spec());
  ASSERT_TRUE(tts.start().ok());
  ASSERT_TRUE(stc.start().ok());
  ASSERT_TRUE(camera.start().ok());
  tts.add_sink(stc.data_address());

  CmdLine target("stcSetTarget");
  target.arg("service", camera.address().to_string());
  ASSERT_TRUE(client_->call(stc.address(), target, daemon::kCallOk).ok());

  CmdLine say("say");
  say.arg("text", "deviceOn;");
  auto said = client_->call(tts.address(), say, daemon::kCallOk);
  ASSERT_TRUE(said.ok());
  std::int64_t frames = said->get_integer("frames");

  ASSERT_TRUE(wait_until(
      [&] { return stc.stats().datagrams_received >= static_cast<std::uint64_t>(frames); },
      2s));

  CmdLine flush("stcFlush");
  flush.arg("stream", "voice");
  auto r = client_->call(stc.address(), flush, daemon::kCallOk);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->get_text("decoded"), "deviceOn;");
  EXPECT_EQ(r->get_text("executed"), "yes");
  EXPECT_TRUE(camera.powered());
}

TEST_F(AudioPipelineTest, EchoCancellationDaemonImprovesErle) {
  auto& ec = host_->add_daemon<media::EchoCancellationDaemon>(
      config("ec"), "farend", "mic", "clean");
  auto& recorder =
      host_->add_daemon<media::AudioRecorderDaemon>(config("rec"));
  ASSERT_TRUE(ec.start().ok());
  ASSERT_TRUE(recorder.start().ok());
  ec.add_sink(recorder.data_address());

  // Far-end reference and mic-with-echo streams, aligned by sequence.
  util::Rng rng(23);
  auto socket = host_->net_host().open_datagram();
  ASSERT_TRUE(socket.ok());
  std::vector<std::int16_t> delay_line(40, 0);
  for (std::uint32_t seq = 0; seq < 50; ++seq) {
    AudioFrame far;
    far.stream = "farend";
    far.sequence = seq;
    far.samples.resize(kFrameSamples);
    for (auto& s : far.samples)
      s = static_cast<std::int16_t>(rng.next_gaussian() * 5000.0);

    AudioFrame mic;
    mic.stream = "mic";
    mic.sequence = seq;
    mic.samples.resize(kFrameSamples);
    for (std::size_t i = 0; i < kFrameSamples; ++i) {
      delay_line.push_back(far.samples[i]);
      mic.samples[i] = static_cast<std::int16_t>(0.5 * delay_line.front());
      delay_line.erase(delay_line.begin());
    }
    ASSERT_TRUE(
        (*socket)->send_to(ec.data_address(), far.serialize()).ok());
    ASSERT_TRUE(
        (*socket)->send_to(ec.data_address(), mic.serialize()).ok());
  }

  ASSERT_TRUE(wait_until(
      [&] { return recorder.recorded("clean").size() >= 49 * kFrameSamples; },
      3s));
  EXPECT_GT(ec.erle_db(), 6.0);
}

// --------------------------------------------- zero-copy frames and routing

TEST(AudioFrameView, MatchesFullParse) {
  AudioFrame f;
  f.stream = "mic-hawk";
  f.sequence = 7;
  f.samples = sine_wave(440, 9000, kFrameSamples, 3);
  auto wire = f.serialize();
  auto view = AudioFrameView::parse(wire);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->stream, f.stream);
  EXPECT_EQ(view->sequence, f.sequence);
  ASSERT_EQ(view->sample_count, f.samples.size());
  EXPECT_EQ(view->samples(), f.samples);
  // The view points into the wire buffer — no sample was copied to parse.
  EXPECT_GE(view->sample_data, wire.data());
  EXPECT_LT(view->sample_data, wire.data() + wire.size());
}

TEST(AudioFrameView, RejectsTruncated) {
  AudioFrame f;
  f.stream = "x";
  f.samples.assign(kFrameSamples, 100);
  auto wire = f.serialize();
  for (std::size_t cut : {std::size_t{2}, wire.size() / 2, wire.size() - 1}) {
    util::Bytes t(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(AudioFrameView::parse(t).has_value()) << cut;
  }
}

TEST(AudioFrameView, SerializeFrameMatchesAudioFrame) {
  AudioFrame f;
  f.stream = "s";
  f.sequence = 3;
  f.samples = sine_wave(880, 5000, kFrameSamples, 0);
  util::SharedBytes shared = serialize_frame(f.stream, f.sequence, f.samples);
  EXPECT_EQ(shared.to_bytes(), f.serialize());
}

TEST(SharedBytesTest, SlicesShareOneOwner) {
  util::SharedBytes a(util::Bytes{1, 2, 3, 4, 5});
  util::SharedBytes b = a;
  util::SharedBytes c = a.slice(1, 3);
  EXPECT_EQ(b.data(), a.data());
  EXPECT_EQ(c.data(), a.data() + 1);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.to_bytes(), c.to_bytes());
}

TEST(FrameRouterTest, StagesResolveAtInstallTime) {
  FrameRouter router;
  router.register_stage("upper", [](std::string_view,
                                    const util::SharedBytes& p) {
    return std::optional<util::SharedBytes>(p);
  });
  EXPECT_TRUE(router.set_stages("a", {"upper"}).ok());
  auto status = router.set_stages("a", {"upper", "missing"});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Errc::not_found);
  // The failed install did not clobber the previous route.
  auto route = router.lookup("a");
  ASSERT_TRUE(route);
  EXPECT_EQ(route->stage_names, std::vector<std::string>{"upper"});
}

TEST(FrameRouterTest, LookupSnapshotSurvivesMutation) {
  FrameRouter router;
  net::Address s1{"h1", 1}, s2{"h2", 2};
  router.add_sink("tag", s1);
  auto before = router.lookup("tag");
  router.add_sink("tag", s2);
  router.remove_sink("tag", s1);
  // The earlier snapshot is immutable; the table moved on.
  ASSERT_TRUE(before);
  EXPECT_EQ(before->sinks, std::vector<net::Address>{s1});
  auto after = router.lookup("tag");
  ASSERT_TRUE(after);
  EXPECT_EQ(after->sinks, std::vector<net::Address>{s2});
}

TEST(FrameRouterTest, RemoveSinkAndRoute) {
  FrameRouter router;
  net::Address s1{"h1", 1};
  EXPECT_FALSE(router.remove_sink("tag", s1));
  router.add_sink("tag", s1);
  router.add_sink("tag", s1);  // idempotent
  ASSERT_TRUE(router.lookup("tag"));
  EXPECT_EQ(router.lookup("tag")->sinks.size(), 1u);
  EXPECT_TRUE(router.remove_sink("tag", s1));
  EXPECT_TRUE(router.lookup("tag"));  // route survives with no sinks
  EXPECT_TRUE(router.remove_route("tag"));
  EXPECT_FALSE(router.lookup("tag"));
  EXPECT_FALSE(router.remove_route("tag"));
}

TEST(FrameRouterTest, PeekTagReadsOnlyTheHeader) {
  AudioFrame f;
  f.stream = "room-hawk-mic";
  f.samples.assign(kFrameSamples, 5);
  auto wire = f.serialize();
  auto tag = peek_tag(wire);
  ASSERT_TRUE(tag.has_value());
  EXPECT_EQ(*tag, "room-hawk-mic");
  EXPECT_FALSE(peek_tag(util::Bytes{1, 2}).has_value());
  EXPECT_FALSE(peek_tag(util::Bytes{255, 0, 0, 0, 'x'}).has_value());
}

TEST_F(AudioPipelineTest, RouteCommandsDriveTheTable) {
  auto& dist =
      host_->add_daemon<services::DistributionDaemon>(config("dist"));
  auto& play = host_->add_daemon<media::AudioPlayDaemon>(config("spk"));
  ASSERT_TRUE(dist.start().ok());
  ASSERT_TRUE(play.start().ok());

  CmdLine add("routeAdd");
  add.arg("stream", "mic1");
  add.arg("dest", play.data_address().to_string());
  ASSERT_TRUE(client_->call(dist.address(), add, daemon::kCallOk).ok());

  CmdLine table("routeTable");
  auto reply = client_->call(dist.address(), table, daemon::kCallOk);
  ASSERT_TRUE(reply.ok());
  auto routes = reply->get_vector("routes");
  ASSERT_TRUE(routes.has_value());
  ASSERT_EQ(routes->elements.size(), 1u);
  EXPECT_EQ(routes->elements[0].as_text(),
            "mic1 stages= sinks=" + play.data_address().to_string());

  // Frames tagged mic1 now reach the play daemon through the route.
  auto socket = host_->net_host().open_datagram();
  ASSERT_TRUE(socket.ok());
  AudioFrame f;
  f.stream = "mic1";
  f.samples = sine_wave(440, 8000, kFrameSamples, 0);
  ASSERT_TRUE((*socket)->send_to(dist.data_address(), f.serialize()).ok());
  ASSERT_TRUE(wait_until([&] { return play.frames_played() >= 1; }, 2s));

  // routeRemove retires the sink; removing again reports not_found.
  CmdLine rm("routeRemove");
  rm.arg("stream", "mic1");
  rm.arg("dest", play.data_address().to_string());
  ASSERT_TRUE(client_->call(dist.address(), rm, daemon::kCallOk).ok());
  auto again = client_->call(dist.address(), rm, daemon::kCallOk);
  ASSERT_FALSE(again.ok());
}

TEST_F(AudioPipelineTest, RouteAddRejectsUnknownStage) {
  auto& play = host_->add_daemon<media::AudioPlayDaemon>(config("spk"));
  ASSERT_TRUE(play.start().ok());
  CmdLine add("routeAdd");
  add.arg("stream", "mic1");
  add.arg("stages", cmdlang::string_vector({"audio", "nonsense"}));
  auto r = client_->call(play.address(), add, daemon::kCallOk);
  ASSERT_FALSE(r.ok());
}

TEST_F(AudioPipelineTest, FanOutSharesOnePayloadBuffer) {
  // The zero-copy invariant: capture -> Distribution -> two players moves
  // exactly one buffer; every receiver aliases the captured bytes and the
  // data plane reports zero payload copies.
  auto& capture = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap"), "mic1");
  auto& dist =
      host_->add_daemon<services::DistributionDaemon>(config("dist"));
  auto& play_a = host_->add_daemon<media::AudioPlayDaemon>(config("spk-a"));
  auto& play_b = host_->add_daemon<media::AudioPlayDaemon>(config("spk-b"));
  ASSERT_TRUE(capture.start().ok());
  ASSERT_TRUE(dist.start().ok());
  ASSERT_TRUE(play_a.start().ok());
  ASSERT_TRUE(play_b.start().ok());

  capture.add_sink(dist.data_address());
  for (auto* p : {&play_a, &play_b}) {
    CmdLine add("distAddSink");
    add.arg("stream", "mic1");
    add.arg("dest", p->data_address().to_string());
    ASSERT_TRUE(client_->call(dist.address(), add, daemon::kCallOk).ok());
  }

  capture.capture_push(sine_wave(440, 8000, kFrameSamples, 0));
  ASSERT_TRUE(wait_until(
      [&] {
        return play_a.frames_played() >= 1 && play_b.frames_played() >= 1;
      },
      2s));

  // Both players hold views of the very same buffer the capture serialized.
  EXPECT_EQ(play_a.last_payload().data(), play_b.last_payload().data());
  EXPECT_EQ(play_a.last_payload(), play_b.last_payload());
  EXPECT_EQ(
      deployment_->env.metrics().snapshot().counter_value("media.bytes_copied"), 0u);
  EXPECT_GE(
      deployment_->env.metrics().snapshot().counter_value("media.frames_routed"), 2u);
}

TEST_F(AudioPipelineTest, PlayAndRecorderWindowsBoundMemory) {
  auto& play = host_->add_daemon<media::AudioPlayDaemon>(config("spk"));
  auto& rec = host_->add_daemon<media::AudioRecorderDaemon>(config("rec"));
  ASSERT_TRUE(play.start().ok());
  ASSERT_TRUE(rec.start().ok());
  play.set_window(2 * kFrameSamples);
  rec.set_window(3 * kFrameSamples);

  auto socket = host_->net_host().open_datagram();
  ASSERT_TRUE(socket.ok());
  for (std::uint32_t seq = 0; seq < 6; ++seq) {
    AudioFrame f;
    f.stream = "mic1";
    f.sequence = seq;
    f.samples.assign(kFrameSamples, static_cast<std::int16_t>(seq + 1));
    ASSERT_TRUE((*socket)->send_to(play.data_address(), f.serialize()).ok());
    ASSERT_TRUE((*socket)->send_to(rec.data_address(), f.serialize()).ok());
  }
  ASSERT_TRUE(wait_until([&] { return play.frames_played() >= 6; }, 2s));
  ASSERT_TRUE(wait_until(
      [&] { return rec.stats().datagrams_received >= 6; }, 2s));

  // Retention is capped but the frame counter keeps the full history.
  EXPECT_EQ(play.frames_played(), 6u);
  auto played = play.played();
  ASSERT_EQ(played.size(), 2 * kFrameSamples);
  EXPECT_EQ(played.front(), 5);  // oldest retained frame is seq 4
  EXPECT_EQ(played.back(), 6);
  auto recorded = rec.recorded("mic1");
  EXPECT_EQ(recorded.front(), 4);
  EXPECT_EQ(recorded.back(), 6);
}

TEST_F(AudioPipelineTest, RoutedPipelineMatchesDirectDspGoldenModel) {
  // Old-vs-new parity for the Fig 15 conference graph: two mics -> mixer
  // ("farend") -> echo canceller (with a "mic" stream) -> play. The daemon
  // pipeline must produce bit-identical samples — and the same ERLE — as
  // running the DSP directly on the same frames, proving the zero-copy
  // rework changed the transport, not the audio.
  constexpr std::size_t kFrames = 20;
  auto& cap_a = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap-a"), "micA");
  auto& cap_b = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap-b"), "micB");
  auto& mixer = host_->add_daemon<media::AudioMixerDaemon>(
      config("mix"), "farend");
  auto& ec = host_->add_daemon<media::EchoCancellationDaemon>(
      config("ec"), "farend", "mic", "clean");
  auto& play = host_->add_daemon<media::AudioPlayDaemon>(config("spk"));
  for (auto* d : std::initializer_list<daemon::ServiceDaemon*>{
           &cap_a, &cap_b, &mixer, &ec, &play})
    ASSERT_TRUE(d->start().ok());

  cap_a.add_sink(mixer.data_address());
  cap_b.add_sink(mixer.data_address());
  mixer.add_sink(ec.data_address());
  ec.add_sink(play.data_address());
  for (const char* tag : {"micA", "micB"}) {
    CmdLine add("mixerAddInput");
    add.arg("stream", tag);
    ASSERT_TRUE(client_->call(mixer.address(), add, daemon::kCallOk).ok());
  }

  auto tone_a = sine_wave(440, 8000, kFrames * kFrameSamples, 0);
  auto tone_b = sine_wave(660, 7000, kFrames * kFrameSamples, 0);
  auto near = sine_wave(250, 6000, kFrames * kFrameSamples, 0);

  // "mic" frames arrive from a raw socket, sequence-aligned with the mix.
  auto socket = host_->net_host().open_datagram();
  ASSERT_TRUE(socket.ok());
  for (std::uint32_t seq = 0; seq < kFrames; ++seq) {
    AudioFrame mic;
    mic.stream = "mic";
    mic.sequence = seq;
    mic.samples.assign(near.begin() + seq * kFrameSamples,
                       near.begin() + (seq + 1) * kFrameSamples);
    ASSERT_TRUE((*socket)->send_to(ec.data_address(), mic.serialize()).ok());
  }
  cap_a.capture_push(tone_a);
  cap_b.capture_push(tone_b);

  ASSERT_TRUE(wait_until([&] { return play.frames_played() >= kFrames; }, 3s));

  // Golden model: identical DSP, no daemons, no network.
  EchoCanceller golden_ec;
  std::vector<std::int16_t> golden_out;
  for (std::uint32_t seq = 0; seq < kFrames; ++seq) {
    std::vector<std::int16_t> mixed;
    std::vector<std::int16_t> fa(tone_a.begin() + seq * kFrameSamples,
                                 tone_a.begin() + (seq + 1) * kFrameSamples);
    std::vector<std::int16_t> fb(tone_b.begin() + seq * kFrameSamples,
                                 tone_b.begin() + (seq + 1) * kFrameSamples);
    mix_into(mixed, fa, 0.5);
    mix_into(mixed, fb, 0.5);
    std::vector<std::int16_t> mic(near.begin() + seq * kFrameSamples,
                                  near.begin() + (seq + 1) * kFrameSamples);
    auto clean = golden_ec.process(mixed, mic);
    golden_out.insert(golden_out.end(), clean.begin(), clean.end());
  }

  EXPECT_EQ(play.played(), golden_out);  // bit-identical audio
  EXPECT_DOUBLE_EQ(ec.erle_db(), golden_ec.erle_db());
}

TEST_F(AudioPipelineTest, LegacyCopyModeIsEquivalentButCopies) {
  // The E18 ablation switch reproduces the pre-router data plane (full
  // re-parse per hop, one copy per sink) with identical delivered audio.
  auto& capture = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap"), "mic1");
  auto& play = host_->add_daemon<media::AudioPlayDaemon>(config("spk"));
  ASSERT_TRUE(capture.start().ok());
  ASSERT_TRUE(play.start().ok());
  capture.add_sink(play.data_address());
  capture.set_legacy_copy_mode(true);
  play.set_legacy_copy_mode(true);

  auto tone = sine_wave(440, 8000, 4 * kFrameSamples, 0);
  capture.capture_push(tone);
  ASSERT_TRUE(wait_until([&] { return play.frames_played() >= 4; }, 2s));
  EXPECT_EQ(play.played(), tone);
  EXPECT_GT(
      deployment_->env.metrics().snapshot().counter_value("media.bytes_copied"), 0u);
}
