// Tests for the media substrate and the §4.15 audio pipeline services:
// ADPCM and RLE-video codecs, DTMF/Goertzel voice-command path, NLMS echo
// cancellation, and the capture->mix->play daemon graph.
#include <gtest/gtest.h>

#include <cmath>

#include "ace_test_env.hpp"
#include "daemon/devices.hpp"
#include "media/audio.hpp"
#include "media/audio_services.hpp"
#include "media/codec.hpp"
#include "media/dsp.hpp"

using namespace ace;
using namespace ace::media;
using namespace std::chrono_literals;
using cmdlang::CmdLine;

// ------------------------------------------------------------- audio frame

TEST(AudioFrame, SerializeParseRoundTrip) {
  AudioFrame f;
  f.stream = "mic-hawk";
  f.sequence = 42;
  f.samples = sine_wave(440, 10000, kFrameSamples, 0);
  auto parsed = AudioFrame::parse(f.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->stream, f.stream);
  EXPECT_EQ(parsed->sequence, f.sequence);
  EXPECT_EQ(parsed->samples, f.samples);
}

TEST(AudioFrame, ParseRejectsTruncated) {
  AudioFrame f;
  f.stream = "x";
  f.samples.assign(kFrameSamples, 100);
  auto wire = f.serialize();
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(AudioFrame::parse(wire).has_value());
}

TEST(AudioHelpers, MixSaturates) {
  std::vector<std::int16_t> acc(4, 30000);
  std::vector<std::int16_t> add(4, 30000);
  mix_into(acc, add, 1.0);
  for (auto s : acc) EXPECT_EQ(s, 32767);
}

TEST(AudioHelpers, RmsDbOfSilenceIsFloor) {
  std::vector<std::int16_t> silence(100, 0);
  EXPECT_DOUBLE_EQ(rms_db(silence), -120.0);
  EXPECT_GT(rms_db(sine_wave(440, 20000, 800, 0)), -10.0);
}

// ------------------------------------------------------------------- ADPCM

TEST(Adpcm, CompressesFourToOne) {
  auto pcm = sine_wave(440, 12000, 1600, 0);
  AdpcmState enc;
  auto encoded = adpcm_encode(pcm, enc);
  EXPECT_EQ(encoded.size(), pcm.size() / 2);  // 4 bits per 16-bit sample
}

TEST(Adpcm, ReconstructionSnrIsUsable) {
  auto pcm = sine_wave(440, 12000, 8000, 0);
  AdpcmState enc, dec;
  auto decoded = adpcm_decode(adpcm_encode(pcm, enc), pcm.size(), dec);
  ASSERT_EQ(decoded.size(), pcm.size());
  double signal = 0, noise = 0;
  for (std::size_t i = 0; i < pcm.size(); ++i) {
    signal += static_cast<double>(pcm[i]) * pcm[i];
    double e = static_cast<double>(pcm[i]) - decoded[i];
    noise += e * e;
  }
  double snr_db = 10.0 * std::log10(signal / (noise + 1e-9));
  EXPECT_GT(snr_db, 20.0);  // telephony-grade
}

TEST(Adpcm, StreamingStateMatchesOneShot) {
  auto pcm = sine_wave(300, 9000, 960, 0);
  AdpcmState enc1, dec1;
  auto one_shot = adpcm_decode(adpcm_encode(pcm, enc1), pcm.size(), dec1);

  AdpcmState enc2, dec2;
  std::vector<std::int16_t> chunked;
  for (std::size_t off = 0; off < pcm.size(); off += kFrameSamples) {
    std::vector<std::int16_t> chunk(pcm.begin() + off,
                                    pcm.begin() + off + kFrameSamples);
    auto part = adpcm_decode(adpcm_encode(chunk, enc2), chunk.size(), dec2);
    chunked.insert(chunked.end(), part.begin(), part.end());
  }
  EXPECT_EQ(one_shot, chunked);  // state carries across frame boundaries
}

// --------------------------------------------------------------- RLE video

TEST(RleVideo, IntraFrameRoundTrip) {
  VideoFrame f = synthetic_frame(64, 48, 0);
  auto encoded = rle_video_encode(f, nullptr);
  auto decoded = rle_video_decode(encoded, nullptr);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->pixels, f.pixels);
}

TEST(RleVideo, InterFrameRoundTripAndCompression) {
  VideoFrame f0 = synthetic_frame(64, 48, 0);
  VideoFrame f1 = synthetic_frame(64, 48, 1);
  auto intra = rle_video_encode(f1, nullptr);
  auto inter = rle_video_encode(f1, &f0);
  // Static background delta-codes to zero runs: inter beats intra.
  EXPECT_LT(inter.size(), intra.size());
  auto decoded = rle_video_decode(inter, &f0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->pixels, f1.pixels);
}

TEST(RleVideo, DecodeRejectsGarbage) {
  util::Bytes garbage{1, 2, 3};
  EXPECT_FALSE(rle_video_decode(garbage, nullptr).has_value());
}

// ------------------------------------------------------------ DTMF/Goertzel

TEST(Dtmf, EncodeDecodeRoundTrip) {
  for (const char* text :
       {"a", "deviceOn;", "ptzMove pan=10 tilt=5;", "hello world 123"}) {
    auto audio = dtmf_encode(text);
    auto decoded = dtmf_decode(audio);
    ASSERT_TRUE(decoded.has_value()) << text;
    EXPECT_EQ(*decoded, text);
  }
}

TEST(Dtmf, DecodeSurvivesAdditiveNoise) {
  auto audio = dtmf_encode("projSetInput input=vga;");
  util::Rng rng(3);
  for (auto& s : audio) {
    double noisy = s + rng.next_gaussian() * 300.0;
    s = static_cast<std::int16_t>(std::clamp(noisy, -32767.0, 32767.0));
  }
  auto decoded = dtmf_decode(audio);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, "projSetInput input=vga;");
}

TEST(Dtmf, GarbageAudioRejected) {
  auto noise = sine_wave(523, 9000, 6 * (kDtmfSymbolSamples + kDtmfGapSamples),
                         0);
  EXPECT_FALSE(dtmf_decode(noise).has_value());
}

TEST(Goertzel, DetectsTargetFrequency) {
  auto tone = sine_wave(770, 10000, 400, 0);
  double at_target = goertzel_power(tone, 0, 200, 770, kSampleRate);
  double off_target = goertzel_power(tone, 0, 200, 1336, kSampleRate);
  EXPECT_GT(at_target, 100.0 * off_target);
}

// -------------------------------------------------------------------- NLMS

TEST(EchoCanceller, ConvergesOnDelayedEcho) {
  EchoCanceller ec(64, 0.6);
  util::Rng rng(17);
  constexpr std::size_t kDelay = 23;
  constexpr double kEchoGain = 0.6;
  std::vector<std::int16_t> far(8000);
  for (auto& s : far)
    s = static_cast<std::int16_t>(rng.next_gaussian() * 6000.0);

  // Mic hears only the delayed, attenuated far-end (no near speech).
  std::vector<std::int16_t> mic(far.size(), 0);
  for (std::size_t i = kDelay; i < far.size(); ++i)
    mic[i] = static_cast<std::int16_t>(kEchoGain * far[i - kDelay]);

  // Feed in frames; after convergence the residual should be tiny.
  for (std::size_t off = 0; off + kFrameSamples <= far.size();
       off += kFrameSamples) {
    std::vector<std::int16_t> fr(far.begin() + off,
                                 far.begin() + off + kFrameSamples);
    std::vector<std::int16_t> mr(mic.begin() + off,
                                 mic.begin() + off + kFrameSamples);
    ec.process(fr, mr);
  }
  EXPECT_GT(ec.erle_db(), 10.0);

  // Steady state: a fresh block is almost fully cancelled.
  std::vector<std::int16_t> fr(far.begin(), far.begin() + kFrameSamples);
  std::vector<std::int16_t> mr(mic.begin(), mic.begin() + kFrameSamples);
  auto out = ec.process(fr, mr);
  EXPECT_LT(rms(out), rms(mr) * 0.7);
}

TEST(EchoCanceller, PreservesNearEndSpeech) {
  EchoCanceller ec(64, 0.5);
  util::Rng rng(19);
  std::vector<std::int16_t> far(4000), near(4000);
  for (auto& s : far)
    s = static_cast<std::int16_t>(rng.next_gaussian() * 5000.0);
  auto speech = sine_wave(250, 6000, near.size(), 0);
  std::vector<std::int16_t> mic(near.size());
  for (std::size_t i = 0; i < mic.size(); ++i) {
    double echo = i >= 10 ? 0.5 * far[i - 10] : 0.0;
    mic[i] = static_cast<std::int16_t>(
        std::clamp(echo + speech[i], -32767.0, 32767.0));
  }
  std::vector<std::int16_t> out_all;
  for (std::size_t off = 0; off + kFrameSamples <= mic.size();
       off += kFrameSamples) {
    std::vector<std::int16_t> fr(far.begin() + off,
                                 far.begin() + off + kFrameSamples);
    std::vector<std::int16_t> mr(mic.begin() + off,
                                 mic.begin() + off + kFrameSamples);
    auto out = ec.process(fr, mr);
    out_all.insert(out_all.end(), out.begin(), out.end());
  }
  // The near-end tone must survive: residual power is dominated by it.
  std::vector<std::int16_t> tail(out_all.end() - 800, out_all.end());
  double tone_power = goertzel_power(tail, 0, 800, 250, kSampleRate);
  double other_power = goertzel_power(tail, 0, 800, 900, kSampleRate);
  EXPECT_GT(tone_power, 5.0 * other_power);
}

// --------------------------------------------------------- pipeline daemons

class AudioPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    host_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "av-box");
    client_ = deployment_->make_client("laptop", "user/tester");
  }

  daemon::DaemonConfig config(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "hawk";
    return c;
  }

  template <typename T>
  static bool wait_until(T predicate, std::chrono::milliseconds timeout) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(10ms);
    }
    return predicate();
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::DaemonHost> host_;
  std::unique_ptr<daemon::AceClient> client_;
};

TEST_F(AudioPipelineTest, CaptureStreamsToPlay) {
  auto& capture = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap"), "mic1");
  auto& play = host_->add_daemon<media::AudioPlayDaemon>(config("spk"));
  ASSERT_TRUE(capture.start().ok());
  ASSERT_TRUE(play.start().ok());
  capture.add_sink(play.data_address());

  CmdLine gen("captureGenerate");
  gen.arg("frames", 10);
  gen.arg("frequency", 440.0);
  ASSERT_TRUE(client_->call(capture.address(), gen, daemon::kCallOk).ok());

  ASSERT_TRUE(wait_until([&] { return play.frames_played() >= 10; }, 2s));
  EXPECT_GT(rms(play.played()), 1000.0);
}

TEST_F(AudioPipelineTest, MixerCombinesDeclaredInputs) {
  auto& cap_a = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap-a"), "micA");
  auto& cap_b = host_->add_daemon<media::AudioCaptureDaemon>(
      config("cap-b"), "micB");
  auto& mixer = host_->add_daemon<media::AudioMixerDaemon>(
      config("mix"), "mixed");
  auto& recorder =
      host_->add_daemon<media::AudioRecorderDaemon>(config("rec"));
  ASSERT_TRUE(cap_a.start().ok());
  ASSERT_TRUE(cap_b.start().ok());
  ASSERT_TRUE(mixer.start().ok());
  ASSERT_TRUE(recorder.start().ok());

  cap_a.add_sink(mixer.data_address());
  cap_b.add_sink(mixer.data_address());
  mixer.add_sink(recorder.data_address());
  for (const char* tag : {"micA", "micB"}) {
    CmdLine add("mixerAddInput");
    add.arg("stream", tag);
    ASSERT_TRUE(client_->call(mixer.address(), add, daemon::kCallOk).ok());
  }

  cap_a.capture_push(sine_wave(440, 8000, 5 * kFrameSamples, 0));
  cap_b.capture_push(sine_wave(880, 8000, 5 * kFrameSamples, 0));

  ASSERT_TRUE(wait_until(
      [&] { return recorder.recorded("mixed").size() >= 5 * kFrameSamples; },
      2s));
  auto mixed = recorder.recorded("mixed");
  // Both tones present in the mix.
  double p440 = goertzel_power(mixed, 0, 400, 440, kSampleRate);
  double p880 = goertzel_power(mixed, 0, 400, 880, kSampleRate);
  double p660 = goertzel_power(mixed, 0, 400, 660, kSampleRate);
  EXPECT_GT(p440, 10.0 * p660);
  EXPECT_GT(p880, 10.0 * p660);
}

TEST_F(AudioPipelineTest, SpeechToCommandExecutesDecodedCommand) {
  // Fig 15's right edge: text-to-speech -> (audio) -> speech-to-command ->
  // ACE command execution on a target service.
  auto& tts = host_->add_daemon<media::TextToSpeechDaemon>(
      config("tts"), "voice");
  auto& stc =
      host_->add_daemon<media::SpeechToCommandDaemon>(config("stc"));
  auto& camera = host_->add_daemon<daemon::PtzCameraDaemon>(
      config("cam"), daemon::vcc4_spec());
  ASSERT_TRUE(tts.start().ok());
  ASSERT_TRUE(stc.start().ok());
  ASSERT_TRUE(camera.start().ok());
  tts.add_sink(stc.data_address());

  CmdLine target("stcSetTarget");
  target.arg("service", camera.address().to_string());
  ASSERT_TRUE(client_->call(stc.address(), target, daemon::kCallOk).ok());

  CmdLine say("say");
  say.arg("text", "deviceOn;");
  auto said = client_->call(tts.address(), say, daemon::kCallOk);
  ASSERT_TRUE(said.ok());
  std::int64_t frames = said->get_integer("frames");

  ASSERT_TRUE(wait_until(
      [&] { return stc.stats().datagrams_received >= static_cast<std::uint64_t>(frames); },
      2s));

  CmdLine flush("stcFlush");
  flush.arg("stream", "voice");
  auto r = client_->call(stc.address(), flush, daemon::kCallOk);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->get_text("decoded"), "deviceOn;");
  EXPECT_EQ(r->get_text("executed"), "yes");
  EXPECT_TRUE(camera.powered());
}

TEST_F(AudioPipelineTest, EchoCancellationDaemonImprovesErle) {
  auto& ec = host_->add_daemon<media::EchoCancellationDaemon>(
      config("ec"), "farend", "mic", "clean");
  auto& recorder =
      host_->add_daemon<media::AudioRecorderDaemon>(config("rec"));
  ASSERT_TRUE(ec.start().ok());
  ASSERT_TRUE(recorder.start().ok());
  ec.add_sink(recorder.data_address());

  // Far-end reference and mic-with-echo streams, aligned by sequence.
  util::Rng rng(23);
  auto socket = host_->net_host().open_datagram();
  ASSERT_TRUE(socket.ok());
  std::vector<std::int16_t> delay_line(40, 0);
  for (std::uint32_t seq = 0; seq < 50; ++seq) {
    AudioFrame far;
    far.stream = "farend";
    far.sequence = seq;
    far.samples.resize(kFrameSamples);
    for (auto& s : far.samples)
      s = static_cast<std::int16_t>(rng.next_gaussian() * 5000.0);

    AudioFrame mic;
    mic.stream = "mic";
    mic.sequence = seq;
    mic.samples.resize(kFrameSamples);
    for (std::size_t i = 0; i < kFrameSamples; ++i) {
      delay_line.push_back(far.samples[i]);
      mic.samples[i] = static_cast<std::int16_t>(0.5 * delay_line.front());
      delay_line.erase(delay_line.begin());
    }
    ASSERT_TRUE(
        (*socket)->send_to(ec.data_address(), far.serialize()).ok());
    ASSERT_TRUE(
        (*socket)->send_to(ec.data_address(), mic.serialize()).ok());
  }

  ASSERT_TRUE(wait_until(
      [&] { return recorder.recorded("clean").size() >= 49 * kFrameSamples; },
      3s));
  EXPECT_GT(ec.erle_db(), 6.0);
}
