// Integration tests reproducing the paper's Chapter 7 scenarios end to end:
//   Scenario 1 — new user & default workspace provisioning (Fig 18)
//   Scenario 2 — user identification at the podium (Fig 19, steps 1-3)
//   Scenario 3 — workspace brought to the access point (Fig 19, steps 4-7)
//   Scenario 4 — multiple workspaces + selector
//   Scenario 5 — device control through the room database and GUI
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "apps/admin_gui.hpp"
#include "apps/workspace_backend.hpp"
#include "daemon/devices.hpp"
#include "services/identification.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "services/user_db.hpp"
#include "services/workspace.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

cmdlang::Vector john_finger() {
  return cmdlang::real_vector({0.12, 0.88, 0.34, 0.56, 0.71});
}

template <typename Predicate>
bool wait_until(Predicate p, std::chrono::milliseconds timeout = 3s) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (p()) return true;
    std::this_thread::sleep_for(10ms);
  }
  return p();
}

}  // namespace

// Full ACE deployment: infrastructure + monitors/launchers on two compute
// hosts + identification + WSS with the real VNC backend + devices in the
// conference room ("hawk").
class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    admin_ = deployment_->make_client("admin-pc", "user/admin");

    // Compute hosts "bar" and "tube" (Fig 19's host names).
    bar_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "bar");
    tube_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "tube");
    // The podium access point in room hawk.
    podium_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "podium");

    for (auto* host : {bar_.get(), tube_.get()}) {
      daemon::DaemonConfig hrm_cfg;
      hrm_cfg.name = "hrm-" + host->name();
      hrm_cfg.room = "machine-room";
      host->add_daemon<services::HrmDaemon>(hrm_cfg);
      daemon::DaemonConfig hal_cfg;
      hal_cfg.name = "hal-" + host->name();
      hal_cfg.room = "machine-room";
      host->add_daemon<services::HalDaemon>(hal_cfg);
      ASSERT_TRUE(host->start_all().ok());
    }

    daemon::DaemonConfig srm_cfg;
    srm_cfg.name = "srm";
    srm_cfg.room = "machine-room";
    services::SrmOptions srm_options;
    srm_options.cache_ttl = 0ms;
    srm_ = &bar_->add_daemon<services::SrmDaemon>(srm_cfg, srm_options);
    daemon::DaemonConfig sal_cfg;
    sal_cfg.name = "sal";
    sal_cfg.room = "machine-room";
    sal_ = &bar_->add_daemon<services::SalDaemon>(sal_cfg);
    ASSERT_TRUE(srm_->start().ok());
    ASSERT_TRUE(sal_->start().ok());

    daemon::DaemonConfig aud_cfg;
    aud_cfg.name = "aud";
    aud_cfg.room = "machine-room";
    aud_ = &tube_->add_daemon<services::UserDbDaemon>(aud_cfg);
    ASSERT_TRUE(aud_->start().ok());

    daemon::DaemonConfig wss_cfg;
    wss_cfg.name = "wss";
    wss_cfg.room = "machine-room";
    wss_ = &tube_->add_daemon<services::WssDaemon>(wss_cfg);
    ASSERT_TRUE(wss_->start().ok());

    factory_ = std::make_unique<apps::VncWorkspaceFactory>(
        deployment_->env,
        std::vector<daemon::DaemonHost*>{bar_.get(), tube_.get()},
        std::map<std::string, daemon::DaemonHost*>{
            {"podium", podium_.get()}});
    factory_->install(*wss_);

    daemon::DaemonConfig fiu_cfg;
    fiu_cfg.name = "fiu-podium";
    fiu_cfg.room = "hawk";
    fiu_ = &podium_->add_daemon<services::FiuDaemon>(fiu_cfg);
    ASSERT_TRUE(fiu_->start().ok());

    daemon::DaemonConfig idm_cfg;
    idm_cfg.name = "id-monitor";
    idm_cfg.room = "machine-room";
    id_monitor_ = &tube_->add_daemon<services::IdMonitorDaemon>(idm_cfg);
    ASSERT_TRUE(id_monitor_->start().ok());
    ASSERT_TRUE(id_monitor_->watch_device(fiu_->address()).ok());

    // Conference-room devices.
    daemon::DaemonConfig cam_cfg;
    cam_cfg.name = "hawk-camera";
    cam_cfg.room = "hawk";
    camera_ = &podium_->add_daemon<daemon::PtzCameraDaemon>(
        cam_cfg, daemon::vcc4_spec());
    daemon::DaemonConfig proj_cfg;
    proj_cfg.name = "hawk-projector";
    proj_cfg.room = "hawk";
    projector_ = &podium_->add_daemon<daemon::ProjectorDaemon>(
        proj_cfg, daemon::epson7350_spec());
    ASSERT_TRUE(camera_->start().ok());
    ASSERT_TRUE(projector_->start().ok());
  }

  void TearDown() override {
    // The WSS holds backend callbacks into factory_, and factory_ is
    // destroyed before the daemon hosts. Stop the WSS first so no
    // callback can be mid-dispatch when the factory goes away.
    if (wss_) wss_->stop();
  }

  // Scenario 1's administrator flow.
  void provision_john() {
    CmdLine add("userAdd");
    add.arg("username", Word{"john"});
    add.arg("fullname", "John Doe");
    add.arg("password", "new-hire");
    add.arg("fingerprint", "fp_john");
    ASSERT_TRUE(admin_->call(aud_->address(), add, daemon::kCallOk).ok());

    CmdLine enroll("fiuEnroll");
    enroll.arg("template", Word{"fp_john"});
    enroll.arg("features", john_finger());
    ASSERT_TRUE(admin_->call(fiu_->address(), enroll, daemon::kCallOk).ok());

    CmdLine ws("wssDefault");
    ws.arg("owner", Word{"john"});
    ASSERT_TRUE(admin_->call(wss_->address(), ws, daemon::kCallOk).ok());
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> admin_;
  std::unique_ptr<daemon::DaemonHost> bar_, tube_, podium_;
  std::unique_ptr<apps::VncWorkspaceFactory> factory_;
  services::SrmDaemon* srm_ = nullptr;
  services::SalDaemon* sal_ = nullptr;
  services::UserDbDaemon* aud_ = nullptr;
  services::WssDaemon* wss_ = nullptr;
  services::FiuDaemon* fiu_ = nullptr;
  services::IdMonitorDaemon* id_monitor_ = nullptr;
  daemon::PtzCameraDaemon* camera_ = nullptr;
  daemon::ProjectorDaemon* projector_ = nullptr;
};

TEST_F(ScenarioTest, Scenario1NewUserGetsDefaultWorkspace) {
  provision_john();
  EXPECT_TRUE(aud_->user("john").has_value());
  auto ws = wss_->workspace("john/default");
  ASSERT_TRUE(ws.has_value());
  // The workspace server is really running on one of the compute hosts.
  auto* server = factory_->server_at(ws->server);
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->running());
  EXPECT_TRUE(ws->server.host == "bar" || ws->server.host == "tube");
}

TEST_F(ScenarioTest, Scenario2FingerprintIdentificationUpdatesLocation) {
  provision_john();
  CmdLine scan("fiuScan");
  scan.arg("features", john_finger());
  scan.arg("station", "podium");
  auto r = admin_->call(fiu_->address(), scan, daemon::kCallOk);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->get_text("user"), "john");

  EXPECT_TRUE(wait_until([&] {
    auto u = aud_->user("john");
    return u && u->location_room == "hawk" && u->location_station == "podium";
  }));
}

TEST_F(ScenarioTest, Scenario3WorkspaceAppearsAtAccessPoint) {
  provision_john();
  CmdLine scan("fiuScan");
  scan.arg("features", john_finger());
  scan.arg("station", "podium");
  ASSERT_TRUE(admin_->call(fiu_->address(), scan, daemon::kCallOk).ok());

  // The ID monitor drives WSS -> VNC: a viewer on the podium converges to
  // the workspace server's framebuffer.
  ASSERT_TRUE(wait_until([&] {
    return factory_->viewer_on("podium") != nullptr;
  }));
  auto ws = wss_->workspace("john/default");
  ASSERT_TRUE(ws.has_value());
  auto* server = factory_->server_at(ws->server);
  auto* viewer = factory_->viewer_on("podium");
  ASSERT_NE(server, nullptr);
  ASSERT_NE(viewer, nullptr);
  EXPECT_TRUE(wait_until([&] {
    return server->framebuffer_hash() == viewer->framebuffer_hash();
  }));
  EXPECT_EQ(wss_->workspace("john/default")->shown_at, "podium");
}

TEST_F(ScenarioTest, Scenario4MultipleWorkspacesSelectable) {
  provision_john();
  // John worked in a second workspace earlier.
  CmdLine extra("wssCreate");
  extra.arg("owner", Word{"john"});
  extra.arg("name", Word{"slides"});
  ASSERT_TRUE(admin_->call(wss_->address(), extra, daemon::kCallOk).ok());

  // The workspace selector lists both.
  CmdLine list("wssList");
  list.arg("owner", Word{"john"});
  auto l = admin_->call(wss_->address(), list, daemon::kCallOk);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->get_vector("workspaces")->elements.size(), 2u);

  // He selects the secondary workspace; it appears at the podium.
  CmdLine show("wssShow");
  show.arg("workspace", "john/slides");
  show.arg("location", "podium");
  ASSERT_TRUE(admin_->call(wss_->address(), show, daemon::kCallOk).ok());
  auto slides = wss_->workspace("john/slides");
  ASSERT_TRUE(slides.has_value());
  EXPECT_EQ(slides->shown_at, "podium");
  auto* server = factory_->server_at(slides->server);
  auto* viewer = factory_->viewer_on("podium");
  ASSERT_NE(server, nullptr);
  ASSERT_NE(viewer, nullptr);
  EXPECT_TRUE(wait_until([&] {
    return server->framebuffer_hash() == viewer->framebuffer_hash();
  }));
}

TEST_F(ScenarioTest, Scenario5DeviceControlThroughRoomAndGui) {
  // Place devices in the room database with coordinates.
  CmdLine place("roomSetLocation");
  place.arg("room", Word{"hawk"});
  place.arg("name", Word{"hawk-camera"});
  place.arg("x", 3.0);
  place.arg("y", 1.0);
  place.arg("z", 2.4);
  ASSERT_TRUE(admin_->call(deployment_->env.room_db_address, place, daemon::kCallOk).ok());

  // The device GUI discovers what is in the room (Fig 2 / Scenario 5).
  CmdLine in_room("roomServices");
  in_room.arg("room", Word{"hawk"});
  auto services_here =
      admin_->call(deployment_->env.room_db_address, in_room, daemon::kCallOk);
  ASSERT_TRUE(services_here.ok());
  EXPECT_GE(services_here->get_vector("services")->elements.size(), 2u);

  apps::AdminGuiModel gui(deployment_->env, *admin_);
  ASSERT_TRUE(gui.refresh().ok());

  // John turns the projector on and displays his workspace...
  ASSERT_TRUE(gui.invoke("hawk-projector", CmdLine("deviceOn")).ok());
  CmdLine display("projDisplay");
  display.arg("source", "john/default");
  ASSERT_TRUE(gui.invoke("hawk-projector", display).ok());

  // ...adds the camera picture-in-picture...
  CmdLine pip("projPictureInPicture");
  pip.arg("source", "hawk-camera");
  pip.arg("enable", Word{"on"});
  ASSERT_TRUE(gui.invoke("hawk-projector", pip).ok());

  // ...and points the camera at the podium.
  ASSERT_TRUE(gui.invoke("hawk-camera", CmdLine("deviceOn")).ok());
  CmdLine point("ptzPointAt");
  point.arg("x", 2.0);
  point.arg("y", 4.0);
  ASSERT_TRUE(gui.invoke("hawk-camera", point).ok());

  EXPECT_TRUE(projector_->projector_state().picture_in_picture);
  EXPECT_NE(camera_->ptz_state().pan, 0.0);
  EXPECT_TRUE(camera_->powered());
}
