#include <gtest/gtest.h>

#include "cmdlang/parser.hpp"
#include "cmdlang/semantics.hpp"
#include "cmdlang/value.hpp"

using namespace ace;
using namespace ace::cmdlang;

// -------------------------------------------------------------- serializer

TEST(Value, SerializeScalars) {
  EXPECT_EQ(Value(std::int64_t{42}).to_string(), "42");
  EXPECT_EQ(Value(std::int64_t{-7}).to_string(), "-7");
  EXPECT_EQ(Value(Word{"on"}).to_string(), "on");
  EXPECT_EQ(Value("hello world").to_string(), "\"hello world\"");
  EXPECT_EQ(Value("word_safe").to_string(), "\"word_safe\"");
  EXPECT_EQ(Value(2.5).to_string(), "2.5");
}

TEST(Value, RealAlwaysReparsesAsReal) {
  // 3.0 must not serialize as "3" (would come back INTEGER).
  std::string s = Value(3.0).to_string();
  auto cmd = Parser::parse("c x=" + s + ";");
  ASSERT_TRUE(cmd.ok());
  EXPECT_TRUE(cmd->find("x")->is_real());
}

TEST(Value, StringEscaping) {
  Value v(std::string("say \"hi\" \\ back"));
  auto cmd = Parser::parse("c x=" + v.to_string() + ";");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->find("x")->as_string(), "say \"hi\" \\ back");
}

TEST(Value, HyphenatedWordQuotedAndAccepted) {
  Value v(Word{"machine-room"});
  std::string s = v.to_string();
  EXPECT_EQ(s, "\"machine-room\"");
  auto cmd = Parser::parse("c x=" + s + ";");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->get_text("x"), "machine-room");
}

TEST(CmdLine, SerializeMatchesPaperSyntax) {
  CmdLine cmd("ptzMove");
  cmd.arg("pan", 30.5);
  cmd.arg("tilt", std::int64_t{-3});
  cmd.arg("mode", Word{"fast"});
  EXPECT_EQ(cmd.to_string(), "ptzMove pan=30.5 tilt=-3 mode=fast;");
}

// ------------------------------------------------------------------ parser

struct RoundTripCase {
  const char* name;
  const char* text;
};

class ParserRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(ParserRoundTrip, ParseSerializeParseIsStable) {
  auto first = Parser::parse(GetParam().text);
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  std::string serialized = first->to_string();
  auto second = Parser::parse(serialized);
  ASSERT_TRUE(second.ok()) << serialized;
  EXPECT_EQ(first.value(), second.value()) << serialized;
}

INSTANTIATE_TEST_SUITE_P(
    Commands, ParserRoundTrip,
    ::testing::Values(
        RoundTripCase{"bare", "ping;"},
        RoundTripCase{"ints", "cmd a=1 b=-2 c=+3;"},
        RoundTripCase{"floats", "cmd x=1.5 y=-2.75 z=1e3 w=2.5e-2;"},
        RoundTripCase{"words", "cmd mode=fast dir=up_down;"},
        RoundTripCase{"strings", "cmd s=\"hello there\" t=\"a=b;c\";"},
        RoundTripCase{"escapes", "cmd s=\"quote \\\" and slash \\\\\";"},
        RoundTripCase{"int_vector", "cmd v={1,2,3};"},
        RoundTripCase{"float_vector", "cmd v={1.5,2.5};"},
        RoundTripCase{"word_vector", "cmd v={up,down,left};"},
        RoundTripCase{"string_vector", "cmd v={\"a b\",\"c d\"};"},
        RoundTripCase{"array", "cmd a={{1,2},{3,4},{5}};"},
        RoundTripCase{"comma_args", "cmd a=1,b=2,c=3;"},
        RoundTripCase{"mixed_sep", "cmd a=1 b=2,c=3;"},
        RoundTripCase{"empty_vector", "cmd v={};"},
        RoundTripCase{"nested_many",
                      "register name=foo host=\"bar\" port=1234 room=hawk "
                      "class=\"ACEService\" caps={ptz,zoom} "
                      "limits={{-90,90},{-30,30}};"}),
    [](const ::testing::TestParamInfo<RoundTripCase>& info) {
      return info.param.name;
    });

TEST(Parser, TypedValues) {
  auto cmd = Parser::parse("c i=42 f=2.5 w=word s=\"str\" v={1,2} a={{1}};");
  ASSERT_TRUE(cmd.ok());
  EXPECT_TRUE(cmd->find("i")->is_integer());
  EXPECT_TRUE(cmd->find("f")->is_real());
  EXPECT_TRUE(cmd->find("w")->is_word());
  EXPECT_TRUE(cmd->find("s")->is_string());
  EXPECT_TRUE(cmd->find("v")->is_vector());
  EXPECT_TRUE(cmd->find("a")->is_array());
  EXPECT_EQ(cmd->get_integer("i"), 42);
  EXPECT_DOUBLE_EQ(cmd->get_real("f"), 2.5);
  EXPECT_EQ(cmd->get_text("w"), "word");
  EXPECT_EQ(cmd->get_text("s"), "str");
}

TEST(Parser, IntWidensToRealInVector) {
  auto cmd = Parser::parse("c v={1,2.5,3};");
  ASSERT_TRUE(cmd.ok());
  EXPECT_EQ(cmd->find("v")->as_vector().element_type, ValueType::real);
}

struct ErrorCase {
  const char* name;
  const char* text;
};

class ParserErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrors, Rejected) {
  auto cmd = Parser::parse(GetParam().text);
  EXPECT_FALSE(cmd.ok()) << GetParam().text;
  if (!cmd.ok()) EXPECT_EQ(cmd.error().code, util::Errc::parse_error);
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, ParserErrors,
    ::testing::Values(ErrorCase{"empty", ""},
                      ErrorCase{"no_semicolon", "cmd a=1"},
                      ErrorCase{"missing_equals", "cmd a 1;"},
                      ErrorCase{"missing_value", "cmd a=;"},
                      ErrorCase{"bad_number", "cmd a=3x;"},
                      ErrorCase{"unterminated_string", "cmd a=\"oops;"},
                      ErrorCase{"unterminated_vector", "cmd a={1,2;"},
                      ErrorCase{"mixed_vector", "cmd a={1,word};"},
                      ErrorCase{"value_only", "cmd =5;"},
                      ErrorCase{"stray_brace", "cmd a=}5;"},
                      ErrorCase{"number_name", "42 a=1;"}),
    [](const ::testing::TestParamInfo<ErrorCase>& info) {
      return info.param.name;
    });

TEST(Parser, ParseAllSequence) {
  auto cmds = Parser::parse_all("ping; info; move x=1;");
  ASSERT_TRUE(cmds.ok());
  ASSERT_EQ(cmds->size(), 3u);
  EXPECT_EQ((*cmds)[0].name(), "ping");
  EXPECT_EQ((*cmds)[2].get_integer("x"), 1);
}

TEST(Parser, ErrorReportsOffset) {
  auto cmd = Parser::parse("cmd a=1 b=;");
  ASSERT_FALSE(cmd.ok());
  EXPECT_NE(cmd.error().message.find("offset"), std::string::npos);
}

// --------------------------------------------------------------- semantics

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.add(CommandSpec("ptzMove", "move the camera")
                      .arg(real_arg("pan").range_real(-90, 90))
                      .arg(real_arg("tilt").range_real(-30, 30))
                      .arg(real_arg("zoom").optional_arg()));
    registry_.add(CommandSpec("setMode", "select a mode")
                      .arg(word_arg("mode").choices({"fast", "slow"})));
    registry_.add(CommandSpec("setCount", "set a count")
                      .arg(integer_arg("count").range(1, 10)));
    registry_.add(CommandSpec("free", "anything goes").extra_ok());
  }

  util::Status validate(const char* text) {
    auto cmd = Parser::parse(text);
    if (!cmd.ok()) return cmd.error();
    return registry_.validate(cmd.value());
  }

  SemanticRegistry registry_;
};

TEST_F(SemanticsTest, AcceptsValidCommand) {
  EXPECT_TRUE(validate("ptzMove pan=10 tilt=5;").ok());
  EXPECT_TRUE(validate("ptzMove pan=10.5 tilt=-5.25 zoom=2;").ok());
}

TEST_F(SemanticsTest, UnknownCommandRejected) {
  auto s = validate("teleport x=1;");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, util::Errc::semantic_error);
}

TEST_F(SemanticsTest, MissingRequiredArgRejected) {
  EXPECT_FALSE(validate("ptzMove pan=10;").ok());
}

TEST_F(SemanticsTest, OptionalArgMayBeOmitted) {
  EXPECT_TRUE(validate("ptzMove pan=0 tilt=0;").ok());
}

TEST_F(SemanticsTest, UnknownArgRejectedUnlessExtraOk) {
  EXPECT_FALSE(validate("ptzMove pan=0 tilt=0 warp=9;").ok());
  EXPECT_TRUE(validate("free anything=1 at=all;").ok());
}

TEST_F(SemanticsTest, TypeMismatchRejected) {
  EXPECT_FALSE(validate("ptzMove pan=fast tilt=0;").ok());
  EXPECT_FALSE(validate("setCount count=2.5;").ok());
}

TEST_F(SemanticsTest, IntegerAcceptedWhereRealExpected) {
  EXPECT_TRUE(validate("ptzMove pan=10 tilt=0;").ok());
}

TEST_F(SemanticsTest, RangeEnforced) {
  EXPECT_FALSE(validate("ptzMove pan=95 tilt=0;").ok());
  EXPECT_FALSE(validate("setCount count=0;").ok());
  EXPECT_FALSE(validate("setCount count=11;").ok());
  EXPECT_TRUE(validate("setCount count=10;").ok());
}

TEST_F(SemanticsTest, ChoicesEnforced) {
  EXPECT_TRUE(validate("setMode mode=fast;").ok());
  EXPECT_FALSE(validate("setMode mode=warp;").ok());
}

TEST(Semantics, VectorTypeChecks) {
  SemanticRegistry registry;
  registry.add(CommandSpec("c")
                   .arg(vector_arg("iv", ArgType::vector_integer))
                   .arg(vector_arg("wv", ArgType::vector_word).optional_arg()));
  auto ok = Parser::parse("c iv={1,2,3} wv={a,b};");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(registry.validate(ok.value()).ok());
  auto bad = Parser::parse("c iv={1.5,2.5};");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(registry.validate(bad.value()).ok());
}

// ----------------------------------------------------------------- replies

TEST(Replies, OkAndErrorHelpers) {
  EXPECT_TRUE(is_ok(make_ok()));
  CmdLine err = make_error(util::Errc::auth_error, "denied");
  EXPECT_TRUE(is_error(err));
  util::Error decoded = reply_error(err);
  EXPECT_EQ(decoded.code, util::Errc::auth_error);
  EXPECT_EQ(decoded.message, "denied");
}

TEST(Replies, ErrorSurvivesWire) {
  CmdLine err = make_error(util::Errc::not_found, "no such service");
  auto parsed = Parser::parse(err.to_string());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(reply_error(parsed.value()).code, util::Errc::not_found);
}
