// Tests for the extension features beyond the paper's implemented core:
// PTZ slew timing (model ablation), the Room DB nearest-service query
// (Ch 9 task automation), and the personnel tracker (§1.1's non-human
// ACE user).
#include <gtest/gtest.h>

#include <cmath>

#include "ace_test_env.hpp"
#include "daemon/devices.hpp"
#include "services/identification.hpp"
#include "services/tracking.hpp"
#include "services/user_db.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    host_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "work");
    client_ = deployment_->make_client("laptop", "user/tester");
  }

  daemon::DaemonConfig config(const std::string& name,
                              const std::string& room = "hawk") {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = room;
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::DaemonHost> host_;
  std::unique_ptr<daemon::AceClient> client_;
};

// ------------------------------------------------------------ PTZ slew model

TEST_F(ExtensionsTest, CameraReportsMovingDuringSlew) {
  daemon::PtzModelSpec slow = daemon::vcc3_spec();
  slow.degrees_per_second = 100.0;  // 90 degrees -> 0.9 s
  auto& camera = host_->add_daemon<daemon::PtzCameraDaemon>(config("cam"),
                                                            slow);
  ASSERT_TRUE(camera.start().ok());
  ASSERT_TRUE(client_->call(camera.address(), CmdLine("deviceOn"), daemon::kCallOk).ok());

  CmdLine move("ptzMove");
  move.arg("pan", 90.0);
  move.arg("tilt", 0.0);
  ASSERT_TRUE(client_->call(camera.address(), move, daemon::kCallOk).ok());
  EXPECT_TRUE(camera.moving());
  auto state = client_->call(camera.address(), CmdLine("ptzGet"), daemon::kCallOk);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->get_text("moving"), "yes");

  // Wait past the slew time: settled.
  std::this_thread::sleep_for(1000ms);
  EXPECT_FALSE(camera.moving());
  state = client_->call(camera.address(), CmdLine("ptzGet"), daemon::kCallOk);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->get_text("moving"), "no");
}

TEST_F(ExtensionsTest, FasterModelSettlesSooner) {
  // VCC4 slews at 300 deg/s vs VCC3 at 70 deg/s: for the same 60-degree
  // move the VCC4 must settle while the VCC3 is still in motion.
  auto& vcc3 = host_->add_daemon<daemon::PtzCameraDaemon>(config("cam3"),
                                                          daemon::vcc3_spec());
  auto& vcc4 = host_->add_daemon<daemon::PtzCameraDaemon>(config("cam4"),
                                                          daemon::vcc4_spec());
  ASSERT_TRUE(vcc3.start().ok());
  ASSERT_TRUE(vcc4.start().ok());
  for (auto* cam : {&vcc3, &vcc4})
    ASSERT_TRUE(client_->call(cam->address(), CmdLine("deviceOn"), daemon::kCallOk).ok());

  CmdLine move("ptzMove");
  move.arg("pan", 60.0);
  move.arg("tilt", 0.0);
  ASSERT_TRUE(client_->call(vcc3.address(), move, daemon::kCallOk).ok());
  ASSERT_TRUE(client_->call(vcc4.address(), move, daemon::kCallOk).ok());
  // 60/300 = 0.2 s for VCC4; 60/70 = 0.86 s for VCC3.
  std::this_thread::sleep_for(400ms);
  EXPECT_FALSE(vcc4.moving());
  EXPECT_TRUE(vcc3.moving());
}

// --------------------------------------------------- nearest-service lookup

TEST_F(ExtensionsTest, RoomDbFindsNearestPrinter) {
  auto place = [&](const char* name, const char* cls, double x, double y) {
    CmdLine add("roomAddService");
    add.arg("room", Word{"hawk"});
    add.arg("name", Word{name});
    add.arg("host", "box");
    add.arg("port", 1);
    add.arg("class", cls);
    add.arg("x", x);
    add.arg("y", y);
    add.arg("z", 0.0);
    ASSERT_TRUE(client_->call(deployment_->env.room_db_address, add, daemon::kCallOk).ok());
  };
  place("printer_near", "Service/Device/Printer", 1.0, 1.0);
  place("printer_far", "Service/Device/Printer", 9.0, 9.0);
  place("camera", "Service/Device/PTZCamera/VCC4", 0.5, 0.5);

  // "print this out to the nearest printer" from (0,0).
  CmdLine nearest("roomNearestService");
  nearest.arg("room", Word{"hawk"});
  nearest.arg("class", "Service/Device/Printer*");
  nearest.arg("x", 0.0);
  nearest.arg("y", 0.0);
  auto r = client_->call(deployment_->env.room_db_address, nearest, daemon::kCallOk);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->get_text("name"), "printer_near");
  EXPECT_NEAR(r->get_real("distance"), std::sqrt(2.0), 1e-9);

  // From the far corner the other printer wins.
  CmdLine nearest2("roomNearestService");
  nearest2.arg("room", Word{"hawk"});
  nearest2.arg("class", "Service/Device/Printer*");
  nearest2.arg("x", 10.0);
  nearest2.arg("y", 10.0);
  auto r2 = client_->call(deployment_->env.room_db_address, nearest2, daemon::kCallOk);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->get_text("name"), "printer_far");

  // Class filter excludes the camera even though it is nearest overall.
  EXPECT_NE(r->get_text("name"), "camera");
}

TEST_F(ExtensionsTest, NearestServiceIgnoresUnlocatedServices) {
  CmdLine add("roomAddService");
  add.arg("room", Word{"hawk"});
  add.arg("name", Word{"ghost_printer"});
  add.arg("host", "box");
  add.arg("port", 1);
  add.arg("class", "Service/Device/Printer");
  // no coordinates
  ASSERT_TRUE(client_->call(deployment_->env.room_db_address, add, daemon::kCallOk).ok());

  CmdLine nearest("roomNearestService");
  nearest.arg("room", Word{"hawk"});
  nearest.arg("class", "Service/Device/Printer*");
  nearest.arg("x", 0.0);
  nearest.arg("y", 0.0);
  auto r = client_->call(deployment_->env.room_db_address, nearest);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cmdlang::is_error(r.value()));
}

// ---------------------------------------------------------- personnel tracker

class TrackerTest : public ExtensionsTest {
 protected:
  void SetUp() override {
    ExtensionsTest::SetUp();
    aud_ = &host_->add_daemon<services::UserDbDaemon>(config("aud"));
    ASSERT_TRUE(aud_->start().ok());
    for (const char* user : {"kate", "john"}) {
      CmdLine add("userAdd");
      add.arg("username", Word{user});
      add.arg("ibutton", std::string("IB-") + user);
      ASSERT_TRUE(client_->call(aud_->address(), add, daemon::kCallOk).ok());
    }
  }

  services::IButtonDaemon& reader_in(const std::string& room) {
    auto& r = host_->add_daemon<services::IButtonDaemon>(
        config("ibutton-" + room, room));
    EXPECT_TRUE(r.start().ok());
    return r;
  }

  services::UserDbDaemon* aud_ = nullptr;
};

TEST_F(TrackerTest, TracksUsersAcrossRooms) {
  auto& door_hawk = reader_in("hawk");
  auto& door_dove = reader_in("dove");
  auto& tracker = host_->add_daemon<services::TrackerDaemon>(
      config("tracker", "machine-room"));
  ASSERT_TRUE(tracker.start().ok());

  auto subscribed = client_->call(tracker.address(),
                                     CmdLine("trackWatchAll"), daemon::kCallOk);
  ASSERT_TRUE(subscribed.ok());
  EXPECT_EQ(subscribed->get_integer("devices"), 2);

  auto badge = [&](services::IButtonDaemon& reader, const char* serial,
                   const char* station) {
    CmdLine read("ibuttonRead");
    read.arg("serial", serial);
    read.arg("station", station);
    ASSERT_TRUE(client_->call(reader.address(), read, daemon::kCallOk).ok());
  };
  badge(door_hawk, "IB-kate", "hawk-door");
  badge(door_dove, "IB-john", "dove-door");
  badge(door_dove, "IB-kate", "dove-door");  // kate moves to dove

  // Notifications are asynchronous; wait for kate's second sighting.
  bool moved = false;
  for (int i = 0; i < 300 && !moved; ++i) {
    auto s = tracker.last_sighting("kate");
    moved = s && s->room == "dove";
    if (!moved) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(moved);

  CmdLine where("trackWhereIs");
  where.arg("user", Word{"kate"});
  auto r = client_->call(tracker.address(), where, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_text("room"), "dove");
  EXPECT_EQ(r->get_integer("sightings"), 2);

  CmdLine history("trackHistory");
  history.arg("user", Word{"kate"});
  auto h = client_->call(tracker.address(), history, daemon::kCallOk);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->get_vector("entries")->elements.size(), 2u);

  // Presence: kate and john are both last seen in dove.
  CmdLine present("trackPresent");
  present.arg("room", Word{"dove"});
  auto p = client_->call(tracker.address(), present, daemon::kCallOk);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->get_vector("users")->elements.size(), 2u);
  CmdLine present_hawk("trackPresent");
  present_hawk.arg("room", Word{"hawk"});
  auto ph = client_->call(tracker.address(), present_hawk, daemon::kCallOk);
  ASSERT_TRUE(ph.ok());
  EXPECT_TRUE(ph->get_vector("users")->elements.empty());
}

TEST_F(TrackerTest, UnknownUserQueriesFailCleanly) {
  auto& tracker = host_->add_daemon<services::TrackerDaemon>(
      config("tracker", "machine-room"));
  ASSERT_TRUE(tracker.start().ok());
  CmdLine where("trackWhereIs");
  where.arg("user", Word{"nobody"});
  auto r = client_->call(tracker.address(), where);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cmdlang::is_error(r.value()));
}

TEST_F(TrackerTest, FailedIdentificationsAreNotTracked) {
  auto& door = reader_in("hawk");
  auto& tracker = host_->add_daemon<services::TrackerDaemon>(
      config("tracker", "machine-room"));
  ASSERT_TRUE(tracker.start().ok());
  ASSERT_TRUE(client_->call(tracker.address(),
                               CmdLine("trackWatchAll"), daemon::kCallOk).ok());

  CmdLine read("ibuttonRead");
  read.arg("serial", "IB-unknown");
  read.arg("station", "hawk-door");
  (void)client_->call(door.address(), read);  // fails
  std::this_thread::sleep_for(200ms);
  EXPECT_EQ(tracker.tracked_users(), 0u);
}
