// Tests for user applications (paper Ch 5): the VNC workspace system
// (§5.4 Fig 16), the WSS-VNC glue with invisible password management, the
// O-Phone (§5.5), the mobile-socket client (Ch 9) and the admin GUI model
// (§1.2 Fig 2).
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "apps/admin_gui.hpp"
#include "apps/framebuffer.hpp"
#include "apps/mobile.hpp"
#include "apps/ophone.hpp"
#include "apps/vnc.hpp"
#include "apps/workspace_backend.hpp"
#include "daemon/devices.hpp"
#include "media/dsp.hpp"
#include "services/monitors.hpp"
#include "services/workspace.hpp"
#include "store/persistent_store.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

// -------------------------------------------------------------- framebuffer

TEST(Framebuffer, FillAndPixelAccess) {
  apps::Framebuffer fb(64, 48);
  fb.fill_rect({10, 10, 5, 5}, 0x80);
  EXPECT_EQ(fb.pixel(12, 12), 0x80);
  EXPECT_EQ(fb.pixel(9, 12), 0);
  EXPECT_EQ(fb.pixel(100, 100), 0);  // out of bounds reads zero
}

TEST(Framebuffer, DirtyTrackingCoversWrites) {
  apps::Framebuffer fb(64, 48);
  EXPECT_FALSE(fb.has_dirty());
  fb.set_pixel(20, 20, 5);
  EXPECT_TRUE(fb.has_dirty());
  auto rects = fb.dirty_rects();
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_LE(rects[0].x, 20);
  EXPECT_LE(rects[0].y, 20);
  fb.clear_dirty();
  EXPECT_FALSE(fb.has_dirty());
}

TEST(Framebuffer, NoOpWriteDoesNotDirty) {
  apps::Framebuffer fb(32, 32);
  fb.set_pixel(5, 5, 0);  // already 0
  EXPECT_FALSE(fb.has_dirty());
}

TEST(Framebuffer, IncrementalUpdatesReproduceContent) {
  apps::Framebuffer server(64, 48), viewer(64, 48);
  server.fill_rect({0, 0, 64, 48}, 0x20);
  ASSERT_TRUE(viewer.apply_updates(server.encode_updates(true)));
  server.clear_dirty();
  EXPECT_EQ(viewer.content_hash(), server.content_hash());

  server.fill_rect({30, 20, 10, 8}, 0xd0);
  server.draw_label(2, 2, "hello", 0xff);
  util::Bytes delta = server.encode_updates(false);
  server.clear_dirty();
  ASSERT_TRUE(viewer.apply_updates(delta));
  EXPECT_EQ(viewer.content_hash(), server.content_hash());
}

TEST(Framebuffer, DirtyUpdatesSmallerThanFullFrame) {
  apps::Framebuffer fb(320, 240);
  fb.fill_rect({0, 0, 320, 240}, 0x11);
  fb.clear_dirty();
  fb.fill_rect({10, 10, 16, 16}, 0x99);
  EXPECT_LT(fb.encode_updates(false).size(),
            fb.encode_updates(true).size() / 4);
}

// --------------------------------------------------------------------- VNC

class VncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("laptop", "user/john");
    server_host_ =
        std::make_unique<daemon::DaemonHost>(deployment_->env, "vnc-host");
    ap1_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "podium");
    ap2_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "office");
  }

  daemon::DaemonConfig cfg(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "hawk";
    return c;
  }

  apps::VncServerDaemon& make_server() {
    auto& server = server_host_->add_daemon<apps::VncServerDaemon>(
        cfg("vnc-john"), "john", "default");
    server.set_password("s3cret");
    EXPECT_TRUE(server.start().ok());
    return server;
  }

  apps::VncViewerDaemon& make_viewer(daemon::DaemonHost& host,
                                     const std::string& name) {
    auto& viewer = host.add_daemon<apps::VncViewerDaemon>(cfg(name));
    EXPECT_TRUE(viewer.start().ok());
    return viewer;
  }

  static bool converged(const apps::VncServerDaemon& server,
                        const apps::VncViewerDaemon& viewer,
                        std::chrono::milliseconds timeout = 2s) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (server.framebuffer_hash() == viewer.framebuffer_hash()) return true;
      std::this_thread::sleep_for(10ms);
    }
    return false;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
  std::unique_ptr<daemon::DaemonHost> server_host_;
  std::unique_ptr<daemon::DaemonHost> ap1_, ap2_;
};

TEST_F(VncTest, AttachRequiresPassword) {
  auto& server = make_server();
  auto& viewer = make_viewer(*ap1_, "viewer1");
  EXPECT_FALSE(viewer.attach(server.address(), "wrong").ok());
  EXPECT_EQ(server.viewer_count(), 0u);
  EXPECT_TRUE(viewer.attach(server.address(), "s3cret").ok());
  EXPECT_EQ(server.viewer_count(), 1u);
}

TEST_F(VncTest, ViewerMirrorsServerContent) {
  auto& server = make_server();
  auto& viewer = make_viewer(*ap1_, "viewer1");
  ASSERT_TRUE(viewer.attach(server.address(), "s3cret").ok());
  EXPECT_TRUE(converged(server, viewer));

  // Run an app; the incremental update reaches the viewer.
  CmdLine run("vncRunApp");
  run.arg("command", "editor");
  ASSERT_TRUE(client_->call(server.address(), run, daemon::kCallOk).ok());
  EXPECT_TRUE(converged(server, viewer));
  EXPECT_GE(viewer.updates_received(), 2u);
}

TEST_F(VncTest, StatePreservedAcrossAccessPointMoves) {
  // §1.3: "upon leaving ... the workspace and its current state are
  // maintained. The user can then pick up where he/she left off at another
  // access point."
  auto& server = make_server();
  auto& viewer1 = make_viewer(*ap1_, "viewer-podium");
  ASSERT_TRUE(viewer1.attach(server.address(), "s3cret").ok());

  CmdLine run("vncRunApp");
  run.arg("command", "presentation");
  ASSERT_TRUE(client_->call(server.address(), run, daemon::kCallOk).ok());
  CmdLine type("vncInput");
  type.arg("kind", Word{"key"});
  type.arg("key", "x");
  ASSERT_TRUE(client_->call(server.address(), type, daemon::kCallOk).ok());

  std::uint64_t state_before = server.framebuffer_hash();
  ASSERT_TRUE(viewer1.detach().ok());

  // Reattach from a different access point: identical content, and the
  // application windows survived.
  auto& viewer2 = make_viewer(*ap2_, "viewer-office");
  ASSERT_TRUE(viewer2.attach(server.address(), "s3cret").ok());
  EXPECT_TRUE(converged(server, viewer2));
  EXPECT_EQ(server.framebuffer_hash(), state_before);
  ASSERT_EQ(server.windows().size(), 1u);
  EXPECT_EQ(server.windows()[0].command, "presentation");
}

TEST_F(VncTest, MultipleViewersReceiveSameUpdates) {
  auto& server = make_server();
  auto& v1 = make_viewer(*ap1_, "v1");
  auto& v2 = make_viewer(*ap2_, "v2");
  ASSERT_TRUE(v1.attach(server.address(), "s3cret").ok());
  ASSERT_TRUE(v2.attach(server.address(), "s3cret").ok());
  CmdLine run("vncRunApp");
  run.arg("command", "shared-doc");
  ASSERT_TRUE(client_->call(server.address(), run, daemon::kCallOk).ok());
  EXPECT_TRUE(converged(server, v1));
  EXPECT_TRUE(converged(server, v2));
}

TEST_F(VncTest, CheckpointRestoreThroughPersistentStore) {
  // One store replica suffices for the mechanism.
  daemon::DaemonConfig sc = cfg("store1");
  auto& replica =
      server_host_->add_daemon<store::PersistentStoreDaemon>(sc, 1);
  ASSERT_TRUE(replica.start().ok());

  auto& server = make_server();
  server.enable_persistence({replica.address()});

  CmdLine run("vncRunApp");
  run.arg("command", "notes");
  ASSERT_TRUE(client_->call(server.address(), run, daemon::kCallOk).ok());
  std::uint64_t hash = server.framebuffer_hash();
  ASSERT_TRUE(client_->call(server.address(), CmdLine("vncCheckpoint"), daemon::kCallOk).ok());

  // Wreck the workspace, then restore.
  CmdLine wreck("vncInput");
  wreck.arg("kind", Word{"pointer"});
  wreck.arg("x", 50);
  wreck.arg("y", 50);
  ASSERT_TRUE(client_->call(server.address(), wreck, daemon::kCallOk).ok());
  EXPECT_NE(server.framebuffer_hash(), hash);

  ASSERT_TRUE(client_->call(server.address(), CmdLine("vncRestore"), daemon::kCallOk).ok());
  EXPECT_EQ(server.framebuffer_hash(), hash);
  ASSERT_EQ(server.windows().size(), 1u);
  EXPECT_EQ(server.windows()[0].command, "notes");
}

// --------------------------------------------------------- WSS-VNC factory

TEST_F(VncTest, WssFactoryManagesPasswordsInvisibly) {
  auto& wss = server_host_->add_daemon<services::WssDaemon>(cfg("wss"));
  ASSERT_TRUE(wss.start().ok());

  apps::VncWorkspaceFactory factory(
      deployment_->env, {server_host_.get()},
      {{"podium", ap1_.get()}, {"office", ap2_.get()}});
  factory.install(wss);

  CmdLine create("wssDefault");
  create.arg("owner", Word{"kate"});
  auto ws = client_->call(wss.address(), create, daemon::kCallOk);
  ASSERT_TRUE(ws.ok()) << ws.error().to_string();
  net::Address server_addr{ws->get_text("host"),
                           static_cast<std::uint16_t>(ws->get_integer("port"))};

  auto* server = factory.server_at(server_addr);
  ASSERT_NE(server, nullptr);
  EXPECT_FALSE(server->password().empty());  // generated, never shown

  // Show at the podium: the factory attaches a viewer with the managed
  // password; the user never typed one (§5.4).
  CmdLine show("wssShow");
  show.arg("workspace", "kate/default");
  show.arg("location", "podium");
  ASSERT_TRUE(client_->call(wss.address(), show, daemon::kCallOk).ok());
  auto* viewer = factory.viewer_on("podium");
  ASSERT_NE(viewer, nullptr);
  EXPECT_TRUE(converged(*server, *viewer));

  // Move to the office access point (Scenario 3's "pick up where he left
  // off").
  CmdLine run("vncRunApp");
  run.arg("command", "spreadsheet");
  ASSERT_TRUE(client_->call(server_addr, run, daemon::kCallOk).ok());
  CmdLine show2("wssShow");
  show2.arg("workspace", "kate/default");
  show2.arg("location", "office");
  ASSERT_TRUE(client_->call(wss.address(), show2, daemon::kCallOk).ok());
  auto* viewer2 = factory.viewer_on("office");
  ASSERT_NE(viewer2, nullptr);
  EXPECT_TRUE(converged(*server, *viewer2));
}

// ------------------------------------------------------------------ O-Phone

class OPhoneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("laptop", "user/caller");
    h1_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "office-a");
    h2_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "office-b");

    daemon::DaemonConfig c1;
    c1.name = "phone-a";
    c1.room = "office-a";
    phone_a_ = &h1_->add_daemon<apps::OPhoneDaemon>(c1, true);
    daemon::DaemonConfig c2;
    c2.name = "phone-b";
    c2.room = "office-b";
    phone_b_ = &h2_->add_daemon<apps::OPhoneDaemon>(c2, true);
    ASSERT_TRUE(phone_a_->start().ok());
    ASSERT_TRUE(phone_b_->start().ok());
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
  std::unique_ptr<daemon::DaemonHost> h1_, h2_;
  apps::OPhoneDaemon* phone_a_ = nullptr;
  apps::OPhoneDaemon* phone_b_ = nullptr;
};

TEST_F(OPhoneTest, DialConnectsBothEnds) {
  CmdLine dial("phoneDial");
  dial.arg("peer", phone_b_->address().to_string());
  ASSERT_TRUE(client_->call(phone_a_->address(), dial, daemon::kCallOk).ok());
  EXPECT_EQ(phone_a_->state(), apps::OPhoneDaemon::State::in_call);
  EXPECT_EQ(phone_b_->state(), apps::OPhoneDaemon::State::in_call);
}

TEST_F(OPhoneTest, FullDuplexVoiceFlows) {
  CmdLine dial("phoneDial");
  dial.arg("peer", phone_b_->address().to_string());
  ASSERT_TRUE(client_->call(phone_a_->address(), dial, daemon::kCallOk).ok());

  auto voice_a = media::sine_wave(300, 9000, 10 * media::kFrameSamples, 0);
  auto voice_b = media::sine_wave(500, 9000, 10 * media::kFrameSamples, 0);
  ASSERT_TRUE(phone_a_->speak(voice_a).ok());
  ASSERT_TRUE(phone_b_->speak(voice_b).ok());

  auto deadline = std::chrono::steady_clock::now() + 2s;
  while ((phone_a_->frames_received() < 10 ||
          phone_b_->frames_received() < 10) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  EXPECT_GE(phone_a_->frames_received(), 10u);
  EXPECT_GE(phone_b_->frames_received(), 10u);

  // What B hears is A's tone (ADPCM round-trip preserved the pitch).
  auto heard_by_b = phone_b_->drain_audio();
  ASSERT_GE(heard_by_b.size(), 800u);
  double p300 = media::goertzel_power(heard_by_b, 0, 800, 300,
                                      media::kSampleRate);
  double p500 = media::goertzel_power(heard_by_b, 0, 800, 500,
                                      media::kSampleRate);
  EXPECT_GT(p300, 10.0 * p500);
}

TEST_F(OPhoneTest, BusyPhoneRejectsSecondCall) {
  CmdLine dial("phoneDial");
  dial.arg("peer", phone_b_->address().to_string());
  ASSERT_TRUE(client_->call(phone_a_->address(), dial, daemon::kCallOk).ok());

  daemon::DaemonHost h3(deployment_->env, "office-c");
  daemon::DaemonConfig c3;
  c3.name = "phone-c";
  c3.room = "office-c";
  auto& phone_c = h3.add_daemon<apps::OPhoneDaemon>(c3, true);
  ASSERT_TRUE(phone_c.start().ok());

  CmdLine dial2("phoneDial");
  dial2.arg("peer", phone_b_->address().to_string());
  auto r = client_->call(phone_c.address(), dial2);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cmdlang::is_error(r.value()));
}

TEST_F(OPhoneTest, HangupStopsAudio) {
  CmdLine dial("phoneDial");
  dial.arg("peer", phone_b_->address().to_string());
  ASSERT_TRUE(client_->call(phone_a_->address(), dial, daemon::kCallOk).ok());
  ASSERT_TRUE(client_->call(phone_b_->address(), CmdLine("phoneHangup"), daemon::kCallOk).ok());
  EXPECT_EQ(phone_b_->state(), apps::OPhoneDaemon::State::idle);
  // Speaking into a hung-up call is still "sent" but discarded by the peer.
  auto before = phone_b_->frames_received();
  (void)phone_a_->speak(media::sine_wave(300, 5000, media::kFrameSamples, 0));
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(phone_b_->frames_received(), before);
}

// ------------------------------------------------------------ mobile client

TEST(MobileClient, FailsOverToReplacementInstance) {
  testenv::AceTestEnv deployment;
  ASSERT_TRUE(deployment.start().ok());
  auto client = deployment.make_client("laptop", "user/roamer");

  daemon::DaemonHost h1(deployment.env, "host1");
  daemon::DaemonHost h2(deployment.env, "host2");
  daemon::DaemonConfig c1;
  c1.name = "hrm-1";
  c1.room = "hawk";
  c1.lease = 400ms;
  c1.lease_renew = 100ms;
  auto& svc1 = h1.add_daemon<services::HrmDaemon>(c1);
  daemon::DaemonConfig c2;
  c2.name = "hrm-2";
  c2.room = "hawk";
  auto& svc2 = h2.add_daemon<services::HrmDaemon>(c2);
  ASSERT_TRUE(svc1.start().ok());
  ASSERT_TRUE(svc2.start().ok());

  apps::MobileServiceClient mobile(deployment.env, *client,
                                   "Service/Monitor/HRM*");
  auto r1 = mobile.call(CmdLine("hrmStatus"));
  ASSERT_TRUE(r1.ok());
  net::Address first = mobile.bound();

  // Kill whichever instance the client bound to.
  (first == svc1.address() ? svc1 : svc2).crash();
  // Wait for the ASD to reap it so rebinding cannot pick it again.
  std::this_thread::sleep_for(700ms);

  auto r2 = mobile.call(CmdLine("hrmStatus"));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_NE(mobile.bound(), first);
  EXPECT_EQ(mobile.failovers(), 1);
}

// ---------------------------------------------------------------- admin GUI

TEST(AdminGui, TreeGroupsByRoomWithParameterControls) {
  testenv::AceTestEnv deployment;
  ASSERT_TRUE(deployment.start().ok());
  auto client = deployment.make_client("admin-pc", "user/admin");

  daemon::DaemonHost hawk(deployment.env, "hawk-box");
  daemon::DaemonConfig cam_cfg;
  cam_cfg.name = "cam1";
  cam_cfg.room = "hawk";
  auto& camera =
      hawk.add_daemon<daemon::PtzCameraDaemon>(cam_cfg, daemon::vcc4_spec());
  daemon::DaemonConfig proj_cfg;
  proj_cfg.name = "proj1";
  proj_cfg.room = "hawk";
  auto& projector = hawk.add_daemon<daemon::ProjectorDaemon>(
      proj_cfg, daemon::epson7350_spec());
  ASSERT_TRUE(camera.start().ok());
  ASSERT_TRUE(projector.start().ok());

  apps::AdminGuiModel gui(deployment.env, *client);
  ASSERT_TRUE(gui.refresh().ok());

  // Fig 2's left side: services grouped by room.
  const apps::ServiceNode* cam = gui.find_service("cam1");
  ASSERT_NE(cam, nullptr);
  bool hawk_room_found = false;
  for (const auto& room : gui.tree()) {
    if (room.room != "hawk") continue;
    hawk_room_found = true;
    EXPECT_GE(room.services.size(), 2u);
  }
  EXPECT_TRUE(hawk_room_found);

  // Fig 2's right side: the camera's parameter controls include ptzMove
  // with its typed arguments.
  bool has_move = false;
  for (const auto& control : cam->controls) {
    if (control.command != "ptzMove") continue;
    has_move = true;
    EXPECT_FALSE(control.arguments.empty());
  }
  EXPECT_TRUE(has_move);

  // "Clicking" the on/off button and a slider.
  ASSERT_TRUE(gui.invoke("cam1", CmdLine("deviceOn")).ok());
  CmdLine move("ptzMove");
  move.arg("pan", -20.0);
  move.arg("tilt", 5.0);
  ASSERT_TRUE(gui.invoke("cam1", move).ok());
  EXPECT_DOUBLE_EQ(camera.ptz_state().pan, -20.0);
}
