// Shared test deployment: one infrastructure host running the ASD, Room
// Database, Network Logger and Authorization Database — the well-known
// services every daemon's startup sequence (paper Fig 9) talks to.
#pragma once

#include <memory>

#include "daemon/environment.hpp"
#include "daemon/host.hpp"
#include "services/asd.hpp"
#include "services/auth_db.hpp"
#include "services/net_logger.hpp"
#include "services/room_db.hpp"

namespace ace::testenv {

struct AceTestEnv {
  explicit AceTestEnv(std::uint64_t seed = 42, bool encrypt = true,
                      services::AsdOptions asd_options = {})
      : env(seed) {
    env.channel_options().encrypt = encrypt;
    infra_host = std::make_unique<daemon::DaemonHost>(env, "infra");

    env.asd_address = {"infra", daemon::kAsdPort};
    env.room_db_address = {"infra", daemon::kRoomDbPort};
    env.net_logger_address = {"infra", daemon::kNetLoggerPort};
    env.auth_db_address = {"infra", daemon::kAuthDbPort};

    daemon::DaemonConfig asd_config;
    asd_config.name = "asd";
    asd_config.port = daemon::kAsdPort;
    asd_config.room = "machine-room";
    asd_config.register_with_room_db = false;  // boots before the Room DB
    asd = &infra_host->add_daemon<services::AsdDaemon>(asd_config,
                                                       asd_options);

    daemon::DaemonConfig room_config;
    room_config.name = "room-db";
    room_config.port = daemon::kRoomDbPort;
    room_config.room = "machine-room";
    room_db = &infra_host->add_daemon<services::RoomDbDaemon>(room_config);

    daemon::DaemonConfig log_config;
    log_config.name = "net-logger";
    log_config.port = daemon::kNetLoggerPort;
    log_config.room = "machine-room";
    net_logger = &infra_host->add_daemon<services::NetLoggerDaemon>(
        log_config, services::NetLoggerOptions{});

    daemon::DaemonConfig auth_config;
    auth_config.name = "auth-db";
    auth_config.port = daemon::kAuthDbPort;
    auth_config.room = "machine-room";
    auth_db = &infra_host->add_daemon<services::AuthDbDaemon>(auth_config);
  }

  util::Status start() { return infra_host->start_all(); }

  // A client on its own access-point host.
  std::unique_ptr<daemon::AceClient> make_client(const std::string& host_name,
                                                 const std::string& principal) {
    auto& host = env.network().add_host(host_name);
    return std::make_unique<daemon::AceClient>(
        env, host, env.issue_identity(principal));
  }

  daemon::Environment env;
  std::unique_ptr<daemon::DaemonHost> infra_host;
  services::AsdDaemon* asd = nullptr;
  services::RoomDbDaemon* room_db = nullptr;
  services::NetLoggerDaemon* net_logger = nullptr;
  services::AuthDbDaemon* auth_db = nullptr;
};

}  // namespace ace::testenv
