// Directory-at-scale tests for the AsdIndex rework: concurrent
// register/renew/expire/query torture with index<->registry consistency
// checks, indexed-vs-linear ablation equivalence, batched lease renewal,
// and the AsdClient lookup cache (lease bound, negative entries,
// invalidation).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ace_test_env.hpp"
#include "daemon/lease.hpp"
#include "services/asd_index.hpp"
#include "services/monitors.hpp"
#include "store/robustness.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

services::AsdRegistration make_reg(const std::string& name,
                                   const std::string& service_class,
                                   const std::string& room) {
  services::AsdRegistration r;
  r.name = name;
  r.host = "host-" + name;
  r.port = 4242;
  r.room = room;
  r.service_class = service_class;
  r.lease = 1h;
  r.expires = std::chrono::steady_clock::now() + r.lease;
  return r;
}

std::vector<std::string> names_of(
    const std::vector<services::AsdRegistration>& regs) {
  std::vector<std::string> out;
  for (const auto& r : regs) out.push_back(r.name);
  return out;
}

}  // namespace

// ------------------------------------------------------------ index ablation

TEST(AsdIndexAblation, IndexedAndLinearReturnIdenticalResults) {
  services::AsdIndex indexed(/*use_index=*/true);
  services::AsdIndex linear(/*use_index=*/false);

  const std::vector<std::string> classes = {
      "Service/Device/Camera/PTZ", "Service/Device/Camera/Fixed",
      "Service/Device/Display", "Service/Monitor/HRM", "Service/Launcher/SAL"};
  const std::vector<std::string> rooms = {"hawk", "eagle", "falcon", "lobby"};
  for (int i = 0; i < 200; ++i) {
    auto r = make_reg("svc-" + std::to_string(i), classes[i % classes.size()],
                      rooms[i % rooms.size()]);
    indexed.upsert(r);
    linear.upsert(r);
  }

  const auto now = std::chrono::steady_clock::now();
  // Every query shape the index special-cases, plus the full-scan fallback.
  const std::vector<std::array<std::string, 3>> queries = {
      {"svc-17", "*", "*"},                         // exact-name point lookup
      {"no-such-name", "*", "*"},                   // exact-name miss
      {"*", "Service/Device/Display", "*"},         // exact class bucket
      {"*", "*", "falcon"},                         // exact room bucket
      {"svc-*", "Service/Monitor/HRM", "eagle"},    // both exact, intersect
      {"*", "Service/Device/Camera/Fixed", "lobby"},// exact pair, no overlap
      {"*", "No/Such/Class", "*"},                  // exact class, no bucket
      {"*", "Service/Device/*", "*"},               // class glob over keys
      {"*", "*", "?agle"},                          // room glob over keys
      {"*1?", "*", "*"},                            // name glob -> full scan
      {"*", "*", "*"},                              // match-all scan
  };
  for (const auto& q : queries) {
    auto a = indexed.query(q[0], q[1], q[2], now);
    auto b = linear.query(q[0], q[1], q[2], now);
    EXPECT_EQ(names_of(a), names_of(b))
        << "query name=" << q[0] << " class=" << q[1] << " room=" << q[2];
  }
  EXPECT_TRUE(indexed.check_consistency());
}

TEST(AsdIndexAblation, RenewSupersedesHeapAndExpirySticks) {
  services::AsdIndex index(true);
  auto r = make_reg("ephemeral", "Service/X", "hawk");
  r.lease = 50ms;
  r.expires = std::chrono::steady_clock::now() + r.lease;
  index.upsert(r);

  // Renew pushes a fresh heap node; the stale one must be skipped, not
  // reported as due.
  ASSERT_TRUE(index.renew("ephemeral", std::chrono::steady_clock::now() + 40ms)
                  .has_value());
  auto due = index.collect_expired(std::chrono::steady_clock::now() + 60ms);
  EXPECT_TRUE(due.empty());

  // Past the renewed deadline it is due exactly once, and erase_expired
  // refuses to remove an entry that was renewed in the meantime.
  due = index.collect_expired(std::chrono::steady_clock::now() + 200ms);
  ASSERT_EQ(due.size(), 1u);
  ASSERT_TRUE(index.renew("ephemeral", std::chrono::steady_clock::now() + 300ms)
                  .has_value());
  EXPECT_FALSE(index.erase_expired("ephemeral",
                                   std::chrono::steady_clock::now() + 200ms));
  EXPECT_TRUE(index.find("ephemeral").has_value());
  EXPECT_TRUE(index.check_consistency());
}

// --------------------------------------------------------------- torture test

class AsdScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("laptop", "user/tester");
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
};

TEST_F(AsdScaleTest, ConcurrentChurnKeepsIndexConsistent) {
  auto* asd = deployment_->asd;
  const daemon::CallerInfo caller{"user/tester", {}};
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  // Writers churn short-lease registrations so register, renew, deregister
  // and reaper-driven expiry all race; readers hammer every query shape.
  auto writer = [&](int tid) {
    int i = 0;
    while (!stop.load()) {
      const std::string name =
          "churn-" + std::to_string(tid) + "-" + std::to_string(i % 40);
      CmdLine reg("register");
      reg.arg("name", Word{name});
      reg.arg("host", "h" + std::to_string(tid));
      reg.arg("port", std::int64_t{9000 + tid});
      reg.arg("room", Word{i % 2 ? "hawk" : "eagle"});
      reg.arg("class", "Service/Churn/T" + std::to_string(tid));
      reg.arg("lease", std::int64_t{200});
      if (!cmdlang::is_ok(asd->execute(reg, caller))) failures.fetch_add(1);
      if (i % 3 == 0) {
        CmdLine renew("renew");
        renew.arg("name", Word{name});
        (void)asd->execute(renew, caller);
      }
      if (i % 7 == 0) {
        CmdLine dereg("deregister");
        dereg.arg("name", Word{name});
        (void)asd->execute(dereg, caller);
      }
      ++i;
    }
  };
  auto reader = [&] {
    const std::vector<std::array<const char*, 3>> shapes = {
        {"churn-0-1", "*", "*"},
        {"*", "Service/Churn/T1", "*"},
        {"*", "Service/Churn/*", "hawk"},
        {"*", "*", "eagle"},
        {"*", "*", "*"},
    };
    std::size_t i = 0;
    while (!stop.load()) {
      const auto& s = shapes[i++ % shapes.size()];
      CmdLine query("query");
      query.arg("name", s[0]);
      query.arg("class", s[1]);
      query.arg("room", s[2]);
      if (!cmdlang::is_ok(asd->execute(query, caller))) failures.fetch_add(1);
    }
  };

  std::vector<std::jthread> threads;
  for (int t = 0; t < 3; ++t) threads.emplace_back(writer, t);
  for (int t = 0; t < 2; ++t) threads.emplace_back(reader);

  const auto deadline = std::chrono::steady_clock::now() + 800ms;
  auto& gauge = deployment_->env.metrics().gauge("asd.live_count");
  while (std::chrono::steady_clock::now() < deadline) {
    EXPECT_TRUE(asd->index_consistent());
    EXPECT_GE(gauge.value(), 0);
    std::this_thread::sleep_for(20ms);
  }
  stop.store(true);
  threads.clear();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(asd->index_consistent());
  EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(asd->live_count()));
}

// ------------------------------------------------------------- batch renewal

TEST_F(AsdScaleTest, RenewBatchRenewsEveryNameAndFlagsLostLeases) {
  services::AsdClient asd(*client_, deployment_->env.asd_address);
  for (int i = 0; i < 4; ++i) {
    services::ServiceRegistration r;
    r.name = "batch-" + std::to_string(i);
    r.address = {"laptop", static_cast<std::uint16_t>(7000 + i)};
    r.room = "hawk";
    r.service_class = "Service/Test";
    r.lease = 500ms;
    ASSERT_TRUE(asd.register_service(r).ok());
  }

  auto outcomes =
      asd.renew_batch({"batch-0", "batch-1", "ghost", "batch-2", "batch-3"});
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes->size(), 5u);
  int renewed = 0;
  for (const auto& o : *outcomes) {
    if (o.name == "ghost")
      EXPECT_FALSE(o.renewed);
    else
      EXPECT_TRUE(o.renewed);
    renewed += o.renewed ? 1 : 0;
  }
  EXPECT_EQ(renewed, 4);
}

TEST_F(AsdScaleTest, HostCoordinatorKeepsServicesAliveWithOneRpcStream) {
  auto& metrics = deployment_->env.metrics();
  const auto batches_before = metrics.counter("daemon.lease.batches").value();

  daemon::DaemonHost host(deployment_->env, "workstation");
  std::vector<services::HrmDaemon*> daemons;
  for (int i = 0; i < 4; ++i) {
    daemon::DaemonConfig c;
    c.name = "worker-" + std::to_string(i);
    c.room = "hawk";
    c.lease = 300ms;
    c.lease_renew = 100ms;  // batch_renew defaults to true
    daemons.push_back(&host.add_daemon<services::HrmDaemon>(c));
  }
  ASSERT_TRUE(host.start_all().ok());
  EXPECT_EQ(host.leases().enrolled_count(), 4u);

  // All four outlive several lease periods on the coordinator's renewals.
  std::this_thread::sleep_for(900ms);
  services::AsdClient asd(*client_, deployment_->env.asd_address);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(asd.lookup("worker-" + std::to_string(i)).ok())
        << "worker-" << i << " lost its lease";
  EXPECT_GT(metrics.counter("daemon.lease.batches").value(), batches_before);

  // A stopped daemon leaves the batch; a crashed one stops being renewed
  // for, so its lease lapses and the directory notices (§2.4).
  daemons[0]->stop();
  daemons[1]->crash();
  EXPECT_EQ(host.leases().enrolled_count(), 2u);
  std::this_thread::sleep_for(500ms);
  EXPECT_FALSE(asd.lookup("worker-0").ok());  // deregistered at stop
  EXPECT_FALSE(asd.lookup("worker-1").ok());  // lease expired after crash
  EXPECT_TRUE(asd.lookup("worker-2").ok());
  host.stop_all();
}

// ------------------------------------------------------------- client cache

TEST_F(AsdScaleTest, CachedLookupServesFromCacheWithinLease) {
  auto& metrics = deployment_->env.metrics();
  services::AsdClient asd(*client_, deployment_->env.asd_address,
                          services::AsdCacheOptions{.enabled = true});
  services::ServiceRegistration r;
  r.name = "cached-svc";
  r.address = {"laptop", 7100};
  r.room = "hawk";
  r.service_class = "Service/Test";
  r.lease = 10s;
  ASSERT_TRUE(asd.register_service(r).ok());

  const auto server_lookups_before = metrics.counter("asd.lookups").value();
  ASSERT_TRUE(asd.lookup("cached-svc").ok());  // miss, fills cache
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(asd.lookup("cached-svc").ok());
  EXPECT_EQ(metrics.counter("asd.lookups").value(), server_lookups_before + 1);
  EXPECT_GE(metrics.counter("asd_client.cache_hits").value(), 5);

  // Explicit invalidation forces the next lookup back to the directory.
  asd.invalidate("cached-svc");
  ASSERT_TRUE(asd.lookup("cached-svc").ok());
  EXPECT_EQ(metrics.counter("asd.lookups").value(), server_lookups_before + 2);
}

TEST_F(AsdScaleTest, CachedEntryNeverOutlivesItsLease) {
  services::AsdClient asd(*client_, deployment_->env.asd_address,
                          services::AsdCacheOptions{.enabled = true});
  services::ServiceRegistration r;
  r.name = "shortlease";
  r.address = {"laptop", 7101};
  r.room = "hawk";
  r.service_class = "Service/Test";
  r.lease = 300ms;
  ASSERT_TRUE(asd.register_service(r).ok());
  ASSERT_TRUE(asd.lookup("shortlease").ok());  // cached, TTL <= 300ms

  // Nothing renews the lease. Past it, the cache must not keep the entry
  // alive — the lookup misses, goes to the directory, and comes back
  // not_found.
  std::this_thread::sleep_for(450ms);
  auto stale = asd.lookup("shortlease");
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, util::Errc::not_found);
}

TEST_F(AsdScaleTest, NegativeCacheExpiresAndStopsMaskingRegistration) {
  auto& metrics = deployment_->env.metrics();
  services::AsdClient asd(
      *client_, deployment_->env.asd_address,
      services::AsdCacheOptions{.enabled = true, .negative_ttl = 150ms});

  const auto server_lookups_before = metrics.counter("asd.lookups").value();
  EXPECT_FALSE(asd.lookup("late-arriver").ok());  // real miss, cached
  EXPECT_FALSE(asd.lookup("late-arriver").ok());  // served from negative cache
  EXPECT_EQ(metrics.counter("asd.lookups").value(), server_lookups_before + 1);

  services::ServiceRegistration r;
  r.name = "late-arriver";
  r.address = {"laptop", 7102};
  r.room = "hawk";
  r.service_class = "Service/Test";
  ASSERT_TRUE(asd.register_service(r).ok());

  // Once the negative entry's short TTL runs out, the registration shows.
  std::this_thread::sleep_for(200ms);
  EXPECT_TRUE(asd.lookup("late-arriver").ok());
}

TEST_F(AsdScaleTest, ExpiryNotificationEvictsRobustnessManagerCache) {
  daemon::DaemonHost host(deployment_->env, "mgmt");
  daemon::DaemonConfig c;
  c.name = "rm";
  c.room = "machine-room";
  auto& rm = host.add_daemon<store::RobustnessManagerDaemon>(c);
  ASSERT_TRUE(rm.start().ok());

  CmdLine manage("rmRegister");
  manage.arg("name", Word{"doomed"});
  manage.arg("kind", Word{"restart"});
  ASSERT_TRUE(client_->call(rm.address(), manage, daemon::kCallOk).ok());

  // A short-lease registration that nobody renews: the ASD reaps it and
  // notifies the RM, whose rmNotify handler must evict the name from its
  // lookup cache before scheduling the relaunch.
  services::AsdClient asd(*client_, deployment_->env.asd_address);
  services::ServiceRegistration r;
  r.name = "doomed";
  r.address = {"laptop", 7103};
  r.room = "hawk";
  r.service_class = "Service/Test";
  r.lease = 250ms;
  ASSERT_TRUE(asd.register_service(r).ok());

  auto& invalidations =
      deployment_->env.metrics().counter("rm.cache_invalidations");
  const auto before = invalidations.value();
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  while (invalidations.value() == before &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(25ms);
  EXPECT_GT(invalidations.value(), before);
  rm.stop();
}

// ------------------------------------------------------------ reaper latency

TEST_F(AsdScaleTest, AsdStopsPromptlyDespiteLongReapInterval) {
  daemon::DaemonHost host(deployment_->env, "aux");
  daemon::DaemonConfig c;
  c.name = "slow-reap-asd";
  c.room = "machine-room";
  c.register_with_asd = false;
  c.register_with_room_db = false;
  services::AsdOptions opts;
  opts.reap_interval = 5s;  // the cv wait must be cut short by stop()
  auto& asd = host.add_daemon<services::AsdDaemon>(c, opts);
  ASSERT_TRUE(asd.start().ok());
  std::this_thread::sleep_for(50ms);  // reaper parked in its long wait

  const auto t0 = std::chrono::steady_clock::now();
  asd.stop();
  const auto took = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(took, 1s) << "stop() blocked on the reap interval";
}
