// Tests for the pipelined multiplexed command channel (wire protocol v2):
// concurrent in-flight calls per destination, out-of-order reply routing,
// retry across channel death, v1<->v2 interop in both directions, and the
// daemon-side handshake pool keeping slow connectors off the accept path.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "ace_test_env.hpp"
#include "daemon/wire.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;

namespace {

// Echo service with a deliberately slow serialized command and a fast
// concurrent one, for exercising reply interleaving on one channel.
class RpcTestDaemon : public daemon::ServiceDaemon {
 public:
  RpcTestDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(
        cmdlang::CommandSpec("echo", "echo the text back")
            .arg(cmdlang::string_arg("text")),
        [](const CmdLine& cmd, const daemon::CallerInfo&) {
          CmdLine reply = cmdlang::make_ok();
          reply.arg("text", cmd.get_text("text"));
          return reply;
        });
    register_command(
        cmdlang::CommandSpec("slow", "sleep, then echo")
            .arg(cmdlang::string_arg("text")),
        [](const CmdLine& cmd, const daemon::CallerInfo&) {
          std::this_thread::sleep_for(150ms);
          CmdLine reply = cmdlang::make_ok();
          reply.arg("text", cmd.get_text("text"));
          return reply;
        });
    register_command(
        cmdlang::CommandSpec("fast", "thread-safe no-op").concurrent_ok(),
        [](const CmdLine&, const daemon::CallerInfo&) {
          return cmdlang::make_ok();
        });
  }
};

struct RpcFixture {
  explicit RpcFixture(std::uint8_t daemon_protocol = 0) : env(7) {
    if (daemon_protocol != 0)
      env.env.channel_options().protocol = daemon_protocol;
    EXPECT_TRUE(env.start().ok());
    svc_host = std::make_unique<daemon::DaemonHost>(env.env, "svc");
    daemon::DaemonConfig cfg;
    cfg.name = "rpc-test";
    cfg.room = "lab";
    cfg.service_class = "Service/Test";
    svc = &svc_host->add_daemon<RpcTestDaemon>(cfg);
    EXPECT_TRUE(svc_host->start_all().ok());
    client = env.make_client("ap", "user/tester");
  }

  std::int64_t gauge_value(const std::string& name) {
    for (const auto& g : env.env.metrics().snapshot().gauges)
      if (g.name == name) return g.value;
    return 0;
  }
  std::uint64_t counter_value(const std::string& name) {
    for (const auto& c : env.env.metrics().snapshot().counters)
      if (c.name == name) return c.value;
    return 0;
  }

  testenv::AceTestEnv env;
  std::unique_ptr<daemon::DaemonHost> svc_host;
  RpcTestDaemon* svc = nullptr;
  std::unique_ptr<daemon::AceClient> client;
};

// N threads share one AceClient and one destination: every reply must come
// back to the thread that asked for it, even though all calls share a
// single pipelined channel.
TEST(Rpc, ConcurrentCallsRouteRepliesCorrectly) {
  RpcFixture f;
  const net::Address addr = f.svc->address();
  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  std::atomic<int> mismatches{0}, failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kCallsPerThread; ++i) {
          std::string text =
              "t" + std::to_string(t) + "-i" + std::to_string(i);
          CmdLine cmd("echo");
          cmd.arg("text", text);
          auto reply = f.client->call(addr, cmd, daemon::kCallOk);
          if (!reply.ok())
            failures++;
          else if (reply->get_text("text") != text)
            mismatches++;
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Every slot must have been consumed once its reply was routed.
  EXPECT_EQ(f.gauge_value("client.inflight"), 0);
}

// A fast concurrent command overtakes a slow serialized one on the same
// channel: its reply arrives first and the demux routes both correctly.
TEST(Rpc, InterleavedRepliesOnOneChannel) {
  RpcFixture f;
  const net::Address addr = f.svc->address();

  // Prime the channel so both calls below share one connection.
  CmdLine prime("fast");
  ASSERT_TRUE(f.client->call(addr, prime, daemon::kCallOk).ok());

  std::atomic<bool> slow_done{false};
  std::jthread slow_caller([&] {
    CmdLine cmd("slow");
    cmd.arg("text", "tortoise");
    auto reply = f.client->call(addr, cmd, daemon::kCallOk);
    EXPECT_TRUE(reply.ok());
    if (reply.ok()) {
      EXPECT_EQ(reply->get_text("text"), "tortoise");
    }
    slow_done.store(true);
  });

  std::this_thread::sleep_for(30ms);  // let the slow call get in flight
  const auto started = std::chrono::steady_clock::now();
  CmdLine cmd("fast");
  auto reply = f.client->call(addr, cmd, daemon::kCallOk);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_TRUE(reply.ok());
  // The fast reply must not have queued behind the 150ms sleeper.
  EXPECT_LT(elapsed, 100ms);
  EXPECT_FALSE(slow_done.load());
  slow_caller.join();
  EXPECT_TRUE(slow_done.load());
}

// Channel death mid-flight: the pending call fails over to a reconnect
// when retries allow it, and surfaces an error when they don't.
TEST(Rpc, RetriesReconnectAfterChannelDeathMidFlight) {
  RpcFixture f;
  const net::Address addr = f.svc->address();

  std::jthread caller([&] {
    CmdLine cmd("slow");
    cmd.arg("text", "survivor");
    auto reply = f.client->call(
        addr, cmd,
        daemon::CallOptions{.timeout = 2000ms, .require_ok = true,
                            .retries = 1});
    EXPECT_TRUE(reply.ok());
    if (reply.ok()) {
      EXPECT_EQ(reply->get_text("text"), "survivor");
    }
  });
  std::this_thread::sleep_for(50ms);  // call is now waiting on its reply
  f.client->drop_connection(addr);    // kill the channel under it
  caller.join();
  EXPECT_GE(f.counter_value("client.reconnects"), 1u);

  // Same death with retries exhausted: the caller sees the failure.
  std::jthread caller2([&] {
    CmdLine cmd("slow");
    cmd.arg("text", "casualty");
    auto reply = f.client->call(
        addr, cmd, daemon::CallOptions{.timeout = 2000ms, .retries = 0});
    EXPECT_FALSE(reply.ok());
  });
  std::this_thread::sleep_for(50ms);
  f.client->drop_connection(addr);
  caller2.join();
}

// v1 client against a v2 daemon: the client offers protocol 1, the daemon
// accepts, and calls run over the serialized v1 exchange.
TEST(Rpc, V1ClientInteropsWithV2Daemon) {
  RpcFixture f;
  const net::Address addr = f.svc->address();
  f.client->set_policy({.protocol_offer = daemon::wire::kProtocolV1});
  for (int i = 0; i < 3; ++i) {
    CmdLine cmd("echo");
    cmd.arg("text", "old speaker " + std::to_string(i));
    auto reply = f.client->call(addr, cmd, daemon::kCallOk);
    ASSERT_TRUE(reply.ok()) << reply.error().to_string();
    EXPECT_EQ(reply->get_text("text"), "old speaker " + std::to_string(i));
  }
  // send_only falls back to the v1 _noreply argument marker.
  CmdLine fire("echo");
  fire.arg("text", "noreply");
  EXPECT_TRUE(f.client->send_only(addr, fire).ok());
}

// v2 client against a v1 daemon: negotiation lands on the older version
// and everything still works (including concurrent callers, serialized).
TEST(Rpc, V2ClientInteropsWithV1Daemon) {
  RpcFixture f(daemon::wire::kProtocolV1);  // whole deployment speaks v1
  const net::Address addr = f.svc->address();
  f.client->set_policy({.protocol_offer = daemon::wire::kProtocolV2});
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 5; ++i) {
          CmdLine cmd("echo");
          cmd.arg("text", "v1 peer " + std::to_string(t));
          auto reply = f.client->call(addr, cmd, daemon::kCallOk);
          if (!reply.ok() || reply->get_text("text") !=
                                 "v1 peer " + std::to_string(t))
            failures++;
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
}

// A connector that never starts its handshake must not stall other
// clients: the handshake runs on a worker pool, off the accept path.
TEST(Rpc, SlowHandshakerDoesNotBlockAcceptPath) {
  RpcFixture f;
  const net::Address addr = f.svc->address();
  auto& staller_host = f.env.env.network().add_host("staller");
  auto stalled = staller_host.connect(addr, 500ms);
  ASSERT_TRUE(stalled.ok());  // connected, but never sends its hello

  const auto started = std::chrono::steady_clock::now();
  CmdLine cmd("echo");
  cmd.arg("text", "prompt");
  auto reply = f.client->call(addr, cmd, daemon::kCallOk);
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_TRUE(reply.ok());
  // Well under the 2s handshake timeout the staller is burning.
  EXPECT_LT(elapsed, 1500ms);
  stalled.value().close();
}

// Fire-and-forget under v2: the noreply marker travels as a frame flag,
// the daemon executes the command and sends nothing back.
TEST(Rpc, SendOnlyUsesNoReplyFlag) {
  RpcFixture f;
  const net::Address addr = f.svc->address();
  const auto before = f.svc->stats().commands_executed;
  CmdLine fire("echo");
  fire.arg("text", "into the void");
  ASSERT_TRUE(f.client->send_only(addr, fire).ok());
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (f.svc->stats().commands_executed < before + 1 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(5ms);
  EXPECT_GE(f.svc->stats().commands_executed, before + 1);
  // A later regular call still works: the channel never desynchronised.
  CmdLine cmd("echo");
  cmd.arg("text", "still here");
  auto reply = f.client->call(addr, cmd, daemon::kCallOk);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->get_text("text"), "still here");
}

}  // namespace
