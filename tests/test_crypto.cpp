#include <gtest/gtest.h>

#include "crypto/certificate.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/channel.hpp"
#include "crypto/dh.hpp"
#include "crypto/sha256.hpp"
#include "net/network.hpp"

using namespace ace;
using namespace ace::crypto;
using namespace std::chrono_literals;

namespace {
std::string hex(const Digest& d) {
  return util::hex_encode(util::Bytes(d.begin(), d.end()));
}
}  // namespace

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, KnownVectors) {
  // FIPS 180-2 test vectors.
  EXPECT_EQ(hex(sha256(std::string_view(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(sha256(std::string_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      hex(sha256(std::string_view(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongInputMatchesMillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  Sha256 h;
  h.update(std::string_view("hello "));
  h.update(std::string_view("world"));
  EXPECT_EQ(hex(h.finish()), hex(sha256(std::string_view("hello world"))));
}

TEST(Hmac, Rfc4231Vector) {
  // RFC 4231 test case 2.
  util::Bytes key = util::to_bytes("Jefe");
  util::Bytes msg = util::to_bytes("what do ya want for nothing?");
  EXPECT_EQ(hex(hmac_sha256(key, msg)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  util::Bytes key(100, 0xaa);
  util::Bytes msg = util::to_bytes("data");
  // Sanity: deterministic and differs from short-key result.
  EXPECT_EQ(hex(hmac_sha256(key, msg)), hex(hmac_sha256(key, msg)));
  EXPECT_NE(hex(hmac_sha256(key, msg)),
            hex(hmac_sha256(util::Bytes(10, 0xaa), msg)));
}

TEST(Hkdf, ProducesRequestedLengthDeterministically) {
  util::Bytes salt = util::to_bytes("salt");
  util::Bytes ikm = util::to_bytes("input key material");
  auto k1 = hkdf(salt, ikm, "ctx", 96);
  auto k2 = hkdf(salt, ikm, "ctx", 96);
  EXPECT_EQ(k1.size(), 96u);
  EXPECT_EQ(k1, k2);
  EXPECT_NE(hkdf(salt, ikm, "other", 96), k1);
}

// --------------------------------------------------------------- ChaCha20

TEST(ChaCha20, Rfc8439Vector) {
  // RFC 8439 §2.4.2: key 00..1f, nonce 000000000000004a00000000, counter 1.
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce{};
  nonce[3] = 0x4a;  // big-endian 00 00 00 4a in bytes 0..3? RFC layout below
  // RFC nonce: 00 00 00 00 00 00 00 4a 00 00 00 00
  nonce = ChaChaNonce{0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  util::Bytes data = util::to_bytes(plaintext);
  chacha20_xor(key, nonce, 1, data);
  EXPECT_EQ(util::hex_encode(util::Bytes(data.begin(), data.begin() + 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  ChaChaKey key{};
  key[0] = 7;
  ChaChaNonce nonce = nonce_from_sequence(42, 0xabcd);
  util::Bytes data = util::to_bytes("round trip payload of some length");
  util::Bytes original = data;
  chacha20_xor(key, nonce, 1, data);
  EXPECT_NE(data, original);
  chacha20_xor(key, nonce, 1, data);
  EXPECT_EQ(data, original);
}

TEST(ChaCha20, DifferentSequencesProduceDifferentStreams) {
  ChaChaKey key{};
  util::Bytes a = util::to_bytes("same plaintext");
  util::Bytes b = a;
  chacha20_xor(key, nonce_from_sequence(1, 0), 1, a);
  chacha20_xor(key, nonce_from_sequence(2, 0), 1, b);
  EXPECT_NE(a, b);
}

// --------------------------------------------------------------------- DH

TEST(Dh, SharedSecretAgreement) {
  util::Rng rng(5);
  DhKeyPair alice = dh_generate(rng);
  DhKeyPair bob = dh_generate(rng);
  EXPECT_EQ(dh_shared(alice.private_key, bob.public_key),
            dh_shared(bob.private_key, alice.public_key));
}

TEST(Dh, ModPowBasics) {
  EXPECT_EQ(mod_pow(2, 10, 1000000007ULL), 1024u);
  EXPECT_EQ(mod_pow(5, 0, 97), 1u);
  EXPECT_EQ(mod_pow(7, 1, 97), 7u);
}

// ------------------------------------------------------------ certificates

TEST(Certificates, IssueAndVerify) {
  CertificateAuthority ca(1);
  Identity id = ca.issue("svc/test");
  EXPECT_EQ(id.certificate.subject, "svc/test");
  EXPECT_TRUE(CertificateAuthority::verify(id.certificate,
                                           ca.verification_key()));
}

TEST(Certificates, TamperedCertificateFailsVerification) {
  CertificateAuthority ca(1);
  Identity id = ca.issue("svc/test");
  id.certificate.subject = "svc/evil";  // forge the name
  EXPECT_FALSE(CertificateAuthority::verify(id.certificate,
                                            ca.verification_key()));
}

TEST(Certificates, WrongCaKeyFailsVerification) {
  CertificateAuthority ca(1), other(2);
  Identity id = ca.issue("svc/test");
  EXPECT_FALSE(CertificateAuthority::verify(id.certificate,
                                            other.verification_key()));
}

TEST(Certificates, SerializeParseRoundTrip) {
  CertificateAuthority ca(1);
  Identity id = ca.issue("svc/round-trip");
  auto parsed = Certificate::parse(id.certificate.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->subject, id.certificate.subject);
  EXPECT_EQ(parsed->static_public, id.certificate.static_public);
  EXPECT_EQ(parsed->tag, id.certificate.tag);
}

// ----------------------------------------------------------- SecureChannel

class ChannelTest : public ::testing::Test {
 protected:
  struct Pair {
    SecureChannel client;
    SecureChannel server;
  };

  // Establishes a channel pair over the simulated network.
  util::Result<Pair> make_pair(ChannelOptions options = {}) {
    auto listener = network_.add_host("server").listen(100);
    if (!listener.ok()) return listener.error();
    auto conn = network_.add_host("client").connect({"server", 100}, 1s);
    if (!conn.ok()) return conn.error();
    auto accepted = (*listener)->accept(1s);
    if (!accepted) return util::Error{util::Errc::timeout, "no accept"};

    Identity client_id = ca_.issue("user/client");
    Identity server_id = ca_.issue("svc/server");

    util::Result<SecureChannel> server_side{util::Errc::invalid};
    std::thread server_thread([&] {
      server_side = SecureChannel::accept(std::move(*accepted), server_id,
                                          ca_.verification_key(), 1s, options);
    });
    auto client_side = SecureChannel::connect(std::move(conn.value()),
                                              client_id,
                                              ca_.verification_key(), 1s,
                                              options);
    server_thread.join();
    if (!client_side.ok()) return client_side.error();
    if (!server_side.ok()) return server_side.error();
    return Pair{std::move(client_side.value()),
                std::move(server_side.value())};
  }

  net::Network network_;
  CertificateAuthority ca_{77};
};

TEST_F(ChannelTest, HandshakeAuthenticatesBothPeers) {
  auto pair = make_pair();
  ASSERT_TRUE(pair.ok()) << pair.error().to_string();
  EXPECT_EQ(pair->client.peer_name(), "svc/server");
  EXPECT_EQ(pair->server.peer_name(), "user/client");
}

TEST_F(ChannelTest, EncryptedRoundTrip) {
  auto pair = make_pair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(pair->client.send(util::to_bytes("secret command")).ok());
  auto got = pair->server.recv(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(util::to_string(*got), "secret command");

  ASSERT_TRUE(pair->server.send(util::to_bytes("reply")).ok());
  got = pair->client.recv(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(util::to_string(*got), "reply");
}

TEST_F(ChannelTest, CiphertextDiffersFromPlaintext) {
  // Send through the secure channel and sniff the raw connection bytes by
  // re-doing the experiment at the frame level: encrypt mode must not leak
  // the plaintext in the record.
  auto pair = make_pair();
  ASSERT_TRUE(pair.ok());
  // White-box: a record is seq(8) + ciphertext + mac(16); ensure a second
  // identical payload yields a different record (sequence-keyed nonce).
  ASSERT_TRUE(pair->client.send(util::to_bytes("same payload")).ok());
  ASSERT_TRUE(pair->client.send(util::to_bytes("same payload")).ok());
  auto r1 = pair->server.recv(1s);
  auto r2 = pair->server.recv(1s);
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(*r1, *r2);  // decrypted payloads equal...
  // ...which exercises nonce-per-sequence decryption of distinct records.
}

TEST_F(ChannelTest, ManyMessagesKeepSequence) {
  auto pair = make_pair();
  ASSERT_TRUE(pair.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pair->client.send(util::to_bytes(std::to_string(i))).ok());
  }
  for (int i = 0; i < 200; ++i) {
    auto got = pair->server.recv(1s);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(util::to_string(*got), std::to_string(i));
  }
}

TEST_F(ChannelTest, PlaintextModePassesThrough) {
  ChannelOptions options;
  options.encrypt = false;
  auto pair = make_pair(options);
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(pair->client.send(util::to_bytes("in the clear")).ok());
  auto got = pair->server.recv(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(util::to_string(*got), "in the clear");
  EXPECT_EQ(pair->client.peer_name(), "");  // unauthenticated
}

TEST_F(ChannelTest, ForgedCertificateRejected) {
  auto listener = network_.add_host("server").listen(100);
  ASSERT_TRUE(listener.ok());
  auto conn = network_.add_host("client").connect({"server", 100}, 1s);
  ASSERT_TRUE(conn.ok());
  auto accepted = (*listener)->accept(1s);
  ASSERT_TRUE(accepted.has_value());

  CertificateAuthority rogue_ca(123);  // not trusted by the server
  Identity rogue = rogue_ca.issue("user/mallory");
  Identity server_id = ca_.issue("svc/server");

  util::Result<SecureChannel> server_side{util::Errc::invalid};
  std::thread server_thread([&] {
    server_side = SecureChannel::accept(std::move(*accepted), server_id,
                                        ca_.verification_key(), 300ms);
  });
  auto client_side = SecureChannel::connect(std::move(conn.value()), rogue,
                                            ca_.verification_key(), 300ms);
  server_thread.join();
  EXPECT_FALSE(server_side.ok());
  EXPECT_EQ(server_side.error().code, util::Errc::auth_error);
  (void)client_side;
}
