// Federated multi-room fabric (docs/federation.md):
//  * gossip membership — transitive view spread, suspicion/eviction of a
//    silent room, epoch-bumped rejoin,
//  * cross-room query forwarding — merge semantics, the scope=local loop
//    guard, scoped-cache hits and gossip-driven invalidation,
//  * the relay tier — tunneled queries to a room whose direct link is down,
//  * coalesced notification fan-out (notifyBatch) and its ablation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "ace_test_env.hpp"
#include "services/gossip.hpp"
#include "services/relay.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

const daemon::CallerInfo kCaller{"test", {}};

// Polls `pred` until it holds or the deadline passes.
bool eventually(std::chrono::milliseconds budget,
                const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

// A campus: one room per entry, each room's ASD on its own host, all inside
// one simulated Environment. No shared infrastructure — room ASDs find each
// other purely through their gossip seeds.
struct Campus {
  struct Room {
    std::string name;
    std::unique_ptr<daemon::DaemonHost> host;
    services::AsdDaemon* asd = nullptr;
    net::Address address;
  };

  explicit Campus(std::uint64_t seed) : env(seed) {}

  // `seeds_for[i]` lists the indices of the rooms seeded into room i's
  // federation options; empty outer vector = full mesh.
  void build(const std::vector<std::string>& names,
             services::FederationOptions base,
             std::vector<std::vector<std::size_t>> seeds_for = {},
             const std::vector<net::Address>& relay_of = {}) {
    for (std::size_t i = 0; i < names.size(); ++i) {
      Room room;
      room.name = names[i];
      room.host = std::make_unique<daemon::DaemonHost>(
          env, "site-" + names[i]);
      room.address = {"site-" + names[i], daemon::kAsdPort};
      rooms.push_back(std::move(room));
    }
    for (std::size_t i = 0; i < rooms.size(); ++i) {
      services::FederationOptions fed = base;
      fed.enabled = true;
      if (i < relay_of.size()) fed.relay = relay_of[i];
      std::vector<std::size_t> peers;
      if (i < seeds_for.size()) {
        peers = seeds_for[i];
      } else {
        for (std::size_t j = 0; j < rooms.size(); ++j)
          if (j != i) peers.push_back(j);
      }
      for (std::size_t j : peers) {
        services::GossipPeerSeed seed;
        seed.room = rooms[j].name;
        seed.address = rooms[j].address;
        if (j < relay_of.size()) seed.relay = relay_of[j];
        fed.seeds.push_back(std::move(seed));
      }
      daemon::DaemonConfig c;
      c.name = "asd-" + rooms[i].name;
      c.port = daemon::kAsdPort;
      c.room = rooms[i].name;
      c.register_with_room_db = false;
      c.log_to_net_logger = false;
      services::AsdOptions opts;
      opts.federation = std::move(fed);
      rooms[i].asd =
          &rooms[i].host->add_daemon<services::AsdDaemon>(c, opts);
    }
  }

  util::Status start_all() {
    for (auto& room : rooms) {
      auto s = room.host->start_all();
      if (!s.ok()) return s;
    }
    return util::Status::ok_status();
  }

  void register_service(std::size_t room, const std::string& name) {
    CmdLine reg("register");
    reg.arg("name", Word{name});
    reg.arg("host", "site-" + rooms[room].name);
    reg.arg("port", std::int64_t{7000});
    reg.arg("room", Word{rooms[room].name});
    reg.arg("class", "Service/Synthetic");
    reg.arg("lease", std::int64_t{60000});
    ASSERT_TRUE(cmdlang::is_ok(rooms[room].asd->execute(reg, kCaller)));
  }

  // Names returned by a `query` issued at `room`'s directory.
  std::vector<std::string> query_names(std::size_t room,
                                       const std::string& room_glob = "*",
                                       bool local_only = false) {
    CmdLine query("query");
    query.arg("name", "*");
    query.arg("class", "*");
    query.arg("room", room_glob);
    if (local_only) query.arg("scope", Word{"local"});
    auto reply = rooms[room].asd->execute(query, kCaller);
    std::vector<std::string> names;
    if (auto vec = reply.get_vector("services"))
      for (const auto& elem : vec->elements) {
        const std::string& encoded = elem.as_text();
        names.push_back(encoded.substr(0, encoded.find('|')));
      }
    return names;
  }

  daemon::Environment env;
  std::vector<Room> rooms;
};

bool contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

services::FederationOptions fast_gossip() {
  services::FederationOptions fed;
  fed.gossip_interval = 20ms;
  fed.gossip_fanout = 2;
  fed.suspect_after_rounds = 3;
  fed.evict_after_rounds = 6;
  fed.sync_timeout = 250ms;
  fed.forward_timeout = 400ms;
  fed.forward_cache_ttl = 60000ms;  // tests invalidate via gossip, not TTL
  return fed;
}

}  // namespace

// ------------------------------------------------------------ codec basics

TEST(GossipCodec, EntryRoundTripsThroughWireEncoding) {
  services::RoomView v;
  v.room = "hawk";
  v.address = {"site-hawk", 5000};
  v.relay = {"relay-host", 5100};
  v.epoch = 3;
  v.version = 17;
  v.heartbeat = 99;
  auto decoded =
      services::GossipAgent::decode_entry(services::GossipAgent::encode_entry(v));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->room, "hawk");
  EXPECT_EQ(decoded->address, v.address);
  EXPECT_EQ(decoded->relay, v.relay);
  EXPECT_EQ(decoded->epoch, 3u);
  EXPECT_EQ(decoded->version, 17u);
  EXPECT_EQ(decoded->heartbeat, 99u);

  v.relay = {};  // no relay encodes as "-"
  auto direct =
      services::GossipAgent::decode_entry(services::GossipAgent::encode_entry(v));
  ASSERT_TRUE(direct.has_value());
  EXPECT_TRUE(direct->relay.host.empty());

  EXPECT_FALSE(services::GossipAgent::decode_entry("garbage").has_value());
  EXPECT_FALSE(
      services::GossipAgent::decode_entry("room|nohost|x|1|2").has_value());
}

// ---------------------------------------------------------- gossip spread

TEST(FederationTest, ViewSpreadsTransitively) {
  Campus campus(101);
  // A chain, not a mesh: A only knows B, B only knows C, C knows nobody.
  // Everyone must still converge on all three rooms through gossip.
  campus.build({"alpha", "beta", "gamma"}, fast_gossip(),
               {{1}, {2}, {}});
  ASSERT_TRUE(campus.start_all().ok());

  auto all_know_all = [&] {
    for (auto& room : campus.rooms) {
      auto view = room.asd->gossip()->view();
      if (view.size() != 3) return false;
      for (const auto& v : view)
        if (v.state != services::RoomState::alive) return false;
    }
    return true;
  };
  EXPECT_TRUE(eventually(5000ms, all_know_all));
}

// ------------------------------------------------------- query forwarding

TEST(FederationTest, CrossRoomQueryMergesAndScopeLocalSuppresses) {
  Campus campus(102);
  campus.build({"alpha", "beta"}, fast_gossip());
  ASSERT_TRUE(campus.start_all().ok());
  campus.register_service(0, "cam-alpha");
  campus.register_service(1, "cam-beta");

  // Unconstrained query at alpha merges beta's matches.
  EXPECT_TRUE(eventually(3000ms, [&] {
    auto names = campus.query_names(0);
    return contains(names, "cam-alpha") && contains(names, "cam-beta");
  }));

  // scope=local pins the answer to the queried directory's own room — the
  // same flag forwarded sub-queries carry, so forwarding can never loop.
  auto local = campus.query_names(0, "*", /*local_only=*/true);
  EXPECT_TRUE(contains(local, "cam-alpha"));
  EXPECT_FALSE(contains(local, "cam-beta"));

  // A room-targeted query only fans out to (and returns) that room.
  auto targeted = campus.query_names(0, "beta");
  EXPECT_FALSE(contains(targeted, "cam-alpha"));
  EXPECT_TRUE(contains(targeted, "cam-beta"));
}

TEST(FederationTest, ForwardCacheHitsAndInvalidatesOnRegistryChange) {
  Campus campus(103);
  campus.build({"alpha", "beta"}, fast_gossip());
  ASSERT_TRUE(campus.start_all().ok());
  campus.register_service(1, "cam-beta");

  // Let alpha see beta's current (epoch, version) before the first query,
  // so the cache fill isn't immediately invalidated by a late first sync.
  auto* gossip = campus.rooms[0].asd->gossip();
  ASSERT_TRUE(eventually(3000ms, [&] {
    auto fresh = gossip->room_freshness("beta");
    return fresh && fresh->second >= 1;  // beta's registration version bump
  }));

  auto& hits = campus.env.metrics().counter("asd.forward_cache_hits");
  const auto hits_before = hits.value();
  ASSERT_TRUE(contains(campus.query_names(0), "cam-beta"));  // fill
  ASSERT_TRUE(contains(campus.query_names(0), "cam-beta"));  // hit
  EXPECT_GT(hits.value(), hits_before);

  // A registration at beta bumps its gossip version; alpha invalidates the
  // cached result and the next query sees the new service.
  campus.register_service(1, "mic-beta");
  EXPECT_TRUE(eventually(3000ms, [&] {
    return contains(campus.query_names(0), "mic-beta");
  }));
}

// -------------------------------------------------- suspicion and rejoin

TEST(FederationTest, SilentRoomIsEvictedAndRejoinsWithNewEpoch) {
  Campus campus(104);
  campus.build({"alpha", "beta"}, fast_gossip());
  ASSERT_TRUE(campus.start_all().ok());

  auto* gossip = campus.rooms[0].asd->gossip();
  ASSERT_TRUE(eventually(3000ms, [&] {
    for (const auto& v : gossip->view())
      if (v.room == "beta" && v.heartbeat > 0) return true;
    return false;
  }));
  const auto epoch_before = [&] {
    for (const auto& v : gossip->view())
      if (v.room == "beta") return v.epoch;
    return std::uint64_t{0};
  }();

  // Beta goes silent: its ASD crashes. Alpha's round clock ages it through
  // suspect into evicted, and evicted rooms leave the fan-out set.
  campus.rooms[1].asd->crash();
  EXPECT_TRUE(eventually(5000ms, [&] {
    for (const auto& v : gossip->view())
      if (v.room == "beta") return v.state == services::RoomState::evicted;
    return false;
  }));
  EXPECT_TRUE(gossip->forward_targets("*").empty());

  // Relaunch: a new incarnation (higher epoch) resurrects the entry.
  ASSERT_TRUE(campus.rooms[1].asd->start().ok());
  EXPECT_TRUE(eventually(5000ms, [&] {
    for (const auto& v : gossip->view())
      if (v.room == "beta")
        return v.state == services::RoomState::alive &&
               v.epoch > epoch_before;
    return false;
  }));
}

TEST(FederationTest, HealedPartitionReknitsMutuallyEvictedRooms) {
  Campus campus(106);
  campus.build({"alpha", "beta"}, fast_gossip());
  ASSERT_TRUE(campus.start_all().ok());

  auto state_of = [&](std::size_t viewer, const std::string& room) {
    for (const auto& v : campus.rooms[viewer].asd->gossip()->view())
      if (v.room == room) return v.state;
    return services::RoomState::evicted;
  };
  auto heard_from = [&](std::size_t viewer, const std::string& room) {
    for (const auto& v : campus.rooms[viewer].asd->gossip()->view())
      if (v.room == room) return v.heartbeat > 0;
    return false;
  };
  ASSERT_TRUE(eventually(3000ms, [&] {
    return heard_from(0, "beta") && heard_from(1, "alpha");
  }));

  // A full partition outlasting the evict horizon: each side evicts the
  // other. Neither restarts, so no epoch bump will announce a rejoin.
  campus.env.network().set_partitioned("site-alpha", "site-beta", true);
  EXPECT_TRUE(eventually(5000ms, [&] {
    return state_of(0, "beta") == services::RoomState::evicted &&
           state_of(1, "alpha") == services::RoomState::evicted;
  }));

  // Heal. Evicted rooms are excluded from peer selection AND withheld from
  // gossiped views, so only the per-round rejoin probe can rediscover the
  // other side; without it this partition would be permanent.
  campus.env.network().set_partitioned("site-alpha", "site-beta", false);
  EXPECT_TRUE(eventually(5000ms, [&] {
    return state_of(0, "beta") == services::RoomState::alive &&
           state_of(1, "alpha") == services::RoomState::alive;
  }));
}

// ------------------------------------------------------------- relay tier

TEST(FederationTest, RelayServesRoomDuringDirectLinkPartition) {
  Campus campus(105);
  // Relay on its own host, started before the rooms so gamma's first
  // gossip round can take out its lease.
  daemon::DaemonHost relay_host(campus.env, "relay-site");
  daemon::DaemonConfig rc;
  rc.name = "relay";
  rc.port = 5100;
  rc.room = "machine-room";
  rc.register_with_room_db = false;
  rc.log_to_net_logger = false;
  auto& relay = relay_host.add_daemon<services::RelayDaemon>(rc);
  ASSERT_TRUE(relay_host.start_all().ok());

  const net::Address relay_addr{"relay-site", 5100};
  // gamma (index 1) sits behind the relay; alpha's seed for it carries the
  // relay address, so alpha always tunnels.
  campus.build({"alpha", "gamma"}, fast_gossip(), {},
               {net::Address{}, relay_addr});
  ASSERT_TRUE(campus.start_all().ok());
  campus.register_service(1, "cam-gamma");

  ASSERT_TRUE(eventually(3000ms, [&] { return relay.room_count() > 0; }));

  // Sever the direct link. Only the relay path remains.
  campus.env.network().set_partitioned("site-alpha", "site-gamma", true);

  auto& frames = campus.env.metrics().counter("asd.relay_frames");
  const auto frames_before = frames.value();
  EXPECT_TRUE(eventually(3000ms, [&] {
    return contains(campus.query_names(0, "gamma"), "cam-gamma");
  }));
  EXPECT_GT(frames.value(), frames_before);

  // Gossip also rides the tunnel: gamma stays alive in alpha's view across
  // several suspicion windows of partition.
  std::this_thread::sleep_for(300ms);
  bool gamma_alive = false;
  for (const auto& v : campus.rooms[0].asd->gossip()->view())
    if (v.room == "gamma") gamma_alive = v.state == services::RoomState::alive;
  EXPECT_TRUE(gamma_alive);
}

// -------------------------------------------------- notification batching

namespace {

// Counts `noted` deliveries; also exercises the notifyBatch receiver path
// (the builtin re-dispatches each event through the normal command path).
class SinkDaemon : public daemon::ServiceDaemon {
 public:
  SinkDaemon(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    using cmdlang::string_arg;
    using cmdlang::word_arg;
    register_command(
        cmdlang::CommandSpec("noted", "test notification sink")
            .arg(string_arg("source"))
            .arg(word_arg("command"))
            .arg(string_arg("detail"))
            .concurrent_ok(),
        [this](const CmdLine&, const daemon::CallerInfo&) {
          received_.fetch_add(1);
          return cmdlang::make_ok();
        });
    register_command(
        cmdlang::CommandSpec("poke", "notification trigger").concurrent_ok(),
        [](const CmdLine&, const daemon::CallerInfo&) {
          return cmdlang::make_ok();
        });
  }

  int received() const { return received_.load(); }

 private:
  std::atomic<int> received_{0};
};

}  // namespace

TEST(NotifyBatchTest, BuiltinDispatchesEachEventAndReportsCounts) {
  testenv::AceTestEnv deployment(77);
  ASSERT_TRUE(deployment.start().ok());
  daemon::DaemonHost host(deployment.env, "workstation");
  daemon::DaemonConfig sc;
  sc.name = "sink";
  sc.room = "hawk";
  auto& sink = host.add_daemon<SinkDaemon>(sc);
  ASSERT_TRUE(host.start_all().ok());

  CmdLine batch("notifyBatch");
  batch.arg("source", "emitter");
  batch.arg("events",
            cmdlang::string_vector(
                {"noted source=\"emitter\" command=poke detail=\"poke;\";",
                 "noted source=\"emitter\" command=poke detail=\"poke;\";",
                 "not a parseable command ]]]"}));
  auto reply = sink.execute(batch, kCaller);
  ASSERT_TRUE(cmdlang::is_ok(reply));
  EXPECT_EQ(reply.get_integer("dispatched", -1), 2);
  EXPECT_EQ(reply.get_integer("rejected", -1), 1);
  EXPECT_EQ(sink.received(), 2);
}

TEST(NotifyBatchTest, BurstCoalescesIntoBatchesAndAblationDoesNot) {
  testenv::AceTestEnv deployment(78);
  ASSERT_TRUE(deployment.start().ok());
  daemon::DaemonHost host(deployment.env, "workstation");

  daemon::DaemonConfig ec;
  ec.name = "emitter";
  ec.room = "hawk";
  auto& emitter = host.add_daemon<SinkDaemon>(ec);
  daemon::DaemonConfig ac;
  ac.name = "emitter-ablate";
  ac.room = "hawk";
  ac.batch_notify = false;  // the per-event ablation
  auto& ablated = host.add_daemon<SinkDaemon>(ac);
  daemon::DaemonConfig sc;
  sc.name = "sink";
  sc.room = "hawk";
  auto& sink = host.add_daemon<SinkDaemon>(sc);
  ASSERT_TRUE(host.start_all().ok());

  auto subscribe = [&](daemon::ServiceDaemon& from) {
    CmdLine sub("addNotification");
    sub.arg("command", Word{"poke"});
    sub.arg("service", sink.address().to_string());
    sub.arg("method", Word{"noted"});
    ASSERT_TRUE(cmdlang::is_ok(from.execute(sub, kCaller)));
  };
  subscribe(emitter);
  subscribe(ablated);

  auto& batches = deployment.env.metrics().counter("daemon.notify_batches");
  auto& batched_events =
      deployment.env.metrics().counter("daemon.notify_batched_events");
  constexpr int kEvents = 300;
  CmdLine poke("poke");

  // Batched emitter: a tight burst piles events behind the notify pump's
  // first (connection-establishing) send, so coalescing must kick in.
  const auto batches_before = batches.value();
  for (int i = 0; i < kEvents; ++i) (void)emitter.execute(poke, kCaller);
  ASSERT_TRUE(eventually(5000ms, [&] { return sink.received() >= kEvents; }));
  EXPECT_EQ(sink.received(), kEvents);
  EXPECT_GT(batches.value(), batches_before);
  EXPECT_GT(batched_events.value(), 0u);

  // Ablated emitter: same burst, zero batches, every event still lands.
  const auto batches_mid = batches.value();
  for (int i = 0; i < kEvents; ++i) (void)ablated.execute(poke, kCaller);
  ASSERT_TRUE(
      eventually(5000ms, [&] { return sink.received() >= 2 * kEvents; }));
  EXPECT_EQ(sink.received(), 2 * kEvents);
  EXPECT_EQ(batches.value(), batches_mid);
}
