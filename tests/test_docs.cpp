// The documentation is machine-checked:
//  * docs/commands.md — this test instantiates every command-registering
//    daemon class and diffs the commands documented under its
//    `## `ClassName`` section (plus the sections of its bases) against
//    semantics().command_names(). A command added, removed or renamed in
//    code without a matching doc edit fails here — and so does a
//    documented command no daemon registers.
//  * cross-links — every docs/*.md must be reachable from README.md by
//    following relative markdown links, and every relative link (file and
//    #anchor) in the reachable set must resolve.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/ophone.hpp"
#include "apps/vnc.hpp"
#include "baselines/jini.hpp"
#include "daemon/devices.hpp"
#include "daemon/environment.hpp"
#include "daemon/host.hpp"
#include "media/audio_services.hpp"
#include "services/asd.hpp"
#include "services/auth_db.hpp"
#include "services/identification.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "services/net_logger.hpp"
#include "services/relay.hpp"
#include "services/room_db.hpp"
#include "services/streaming.hpp"
#include "services/tracking.hpp"
#include "services/user_db.hpp"
#include "services/workspace.hpp"
#include "store/persistent_store.hpp"
#include "store/robustness.hpp"

#ifndef ACE_DOCS_COMMANDS_MD
#error "build must define ACE_DOCS_COMMANDS_MD (path to docs/commands.md)"
#endif
#ifndef ACE_REPO_ROOT
#error "build must define ACE_REPO_ROOT (path to the repository root)"
#endif

namespace {

using ace::daemon::DaemonConfig;

// Extracts the first `backticked` token of a markdown heading line.
std::string backticked(const std::string& line) {
  auto open = line.find('`');
  if (open == std::string::npos) return "";
  auto close = line.find('`', open + 1);
  if (close == std::string::npos) return "";
  return line.substr(open + 1, close - open - 1);
}

// Section name -> set of `### `-documented command names.
std::map<std::string, std::set<std::string>> parse_reference(
    const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::map<std::string, std::set<std::string>> sections;
  std::string line, section;
  while (std::getline(in, line)) {
    if (line.rfind("## ", 0) == 0 && line.rfind("### ", 0) != 0) {
      section = backticked(line);
      EXPECT_FALSE(section.empty()) << "unbackticked section: " << line;
      EXPECT_FALSE(sections.count(section))
          << "duplicate section: " << section;
      sections[section];
    } else if (line.rfind("### ", 0) == 0) {
      std::string cmd = backticked(line);
      EXPECT_FALSE(cmd.empty()) << "unbackticked command: " << line;
      EXPECT_FALSE(section.empty()) << "command before any section: " << cmd;
      if (section.empty()) continue;
      EXPECT_TRUE(sections[section].insert(cmd).second)
          << "duplicate command " << cmd << " in section " << section;
    }
  }
  return sections;
}

std::string join(const std::set<std::string>& names) {
  std::ostringstream out;
  for (const auto& n : names) out << n << " ";
  return out.str();
}

class CommandReferenceTest : public ::testing::Test {
 protected:
  CommandReferenceTest() : env_(42), host_(env_, "doc-host") {}

  DaemonConfig config(const std::string& name) {
    DaemonConfig c;
    c.name = name;
    c.port = next_port_++;
    c.room = "doc-room";
    return c;
  }

  // Diffs one daemon's registered commands against the union of the
  // named doc sections (the class's own section plus inherited bases).
  void check(const ace::daemon::ServiceDaemon& d,
             const std::vector<std::string>& section_names) {
    std::set<std::string> documented;
    for (const auto& s : section_names) {
      ASSERT_TRUE(docs_.count(s)) << "docs/commands.md has no section `" << s
                                  << "` (needed by a registered daemon)";
      used_sections_.insert(s);
      documented.insert(docs_[s].begin(), docs_[s].end());
    }
    std::set<std::string> registered;
    for (const auto& n : d.semantics().command_names()) registered.insert(n);

    std::set<std::string> undocumented, stale;
    std::set_difference(registered.begin(), registered.end(),
                        documented.begin(), documented.end(),
                        std::inserter(undocumented, undocumented.end()));
    std::set_difference(documented.begin(), documented.end(),
                        registered.begin(), registered.end(),
                        std::inserter(stale, stale.end()));
    EXPECT_TRUE(undocumented.empty())
        << section_names.front() << ": registered but not in "
        << "docs/commands.md: " << join(undocumented);
    EXPECT_TRUE(stale.empty())
        << section_names.front() << ": documented but not registered: "
        << join(stale);
  }

  ace::daemon::Environment env_;
  ace::daemon::DaemonHost host_;
  int next_port_ = 7000;
  std::map<std::string, std::set<std::string>> docs_ =
      parse_reference(ACE_DOCS_COMMANDS_MD);
  std::set<std::string> used_sections_;
};

TEST_F(CommandReferenceTest, EveryDaemonMatchesItsDocumentedCommandSet) {
  const std::vector<std::string> base = {"ServiceDaemon"};
  auto with = [&](const char* cls,
                  std::vector<std::string> extra =
                      {}) -> std::vector<std::string> {
    std::vector<std::string> out = {cls};
    out.insert(out.end(), extra.begin(), extra.end());
    out.push_back("ServiceDaemon");
    return out;
  };

  using namespace ace;
  check(host_.add_daemon<services::AsdDaemon>(config("asd")), with("AsdDaemon"));
  check(host_.add_daemon<services::AuthDbDaemon>(config("auth")),
        with("AuthDbDaemon"));
  check(host_.add_daemon<services::UserDbDaemon>(config("users")),
        with("UserDbDaemon"));
  check(host_.add_daemon<services::RoomDbDaemon>(config("rooms")),
        with("RoomDbDaemon"));
  check(host_.add_daemon<services::TrackerDaemon>(config("tracker")),
        with("TrackerDaemon"));
  check(host_.add_daemon<services::FiuDaemon>(config("fiu")),
        with("FiuDaemon", {"DeviceDaemon"}));
  check(host_.add_daemon<services::IButtonDaemon>(config("ibutton")),
        with("IButtonDaemon", {"DeviceDaemon"}));
  check(host_.add_daemon<services::IdMonitorDaemon>(config("idmon")),
        with("IdMonitorDaemon"));
  check(host_.add_daemon<services::HrmDaemon>(config("hrm")),
        with("HrmDaemon"));
  check(host_.add_daemon<services::SrmDaemon>(config("srm")),
        with("SrmDaemon"));
  check(host_.add_daemon<services::HalDaemon>(config("hal")),
        with("HalDaemon"));
  check(host_.add_daemon<services::SalDaemon>(config("sal")),
        with("SalDaemon"));
  check(host_.add_daemon<services::NetLoggerDaemon>(config("logger")),
        with("NetLoggerDaemon"));
  check(host_.add_daemon<services::ConverterDaemon>(config("conv")),
        with("ConverterDaemon", {"RoutedMediaDaemon"}));
  check(host_.add_daemon<services::DistributionDaemon>(config("dist")),
        with("DistributionDaemon", {"RoutedMediaDaemon"}));
  check(host_.add_daemon<services::WssDaemon>(config("wss")),
        with("WssDaemon"));
  check(host_.add_daemon<services::RelayDaemon>(config("relay")),
        with("RelayDaemon"));
  check(host_.add_daemon<store::PersistentStoreDaemon>(config("store"), 1),
        with("PersistentStoreDaemon"));
  check(host_.add_daemon<store::RobustnessManagerDaemon>(config("rm")),
        with("RobustnessManagerDaemon"));
  check(host_.add_daemon<baselines::JiniLookupDaemon>(config("jini")),
        with("JiniLookupDaemon"));
  check(host_.add_daemon<daemon::PtzCameraDaemon>(config("ptz"),
                                                  daemon::vcc4_spec()),
        with("PtzCameraDaemon", {"DeviceDaemon"}));
  check(host_.add_daemon<daemon::ProjectorDaemon>(config("proj"),
                                                  daemon::epson7350_spec()),
        with("ProjectorDaemon", {"DeviceDaemon"}));
  check(host_.add_daemon<media::AudioCaptureDaemon>(config("capture"), "s1"),
        with("AudioCaptureDaemon", {"AudioElementDaemon", "RoutedMediaDaemon"}));
  check(host_.add_daemon<media::AudioMixerDaemon>(config("mixer"), "s2"),
        with("AudioMixerDaemon", {"AudioElementDaemon", "RoutedMediaDaemon"}));
  check(host_.add_daemon<media::EchoCancellationDaemon>(config("ec"), "ref",
                                                        "in", "out"),
        with("EchoCancellationDaemon", {"AudioElementDaemon", "RoutedMediaDaemon"}));
  check(host_.add_daemon<media::AudioPlayDaemon>(config("play")),
        with("AudioPlayDaemon", {"AudioElementDaemon", "RoutedMediaDaemon"}));
  check(host_.add_daemon<media::AudioRecorderDaemon>(config("rec")),
        with("AudioRecorderDaemon", {"AudioElementDaemon", "RoutedMediaDaemon"}));
  check(host_.add_daemon<media::TextToSpeechDaemon>(config("tts"), "s3"),
        with("TextToSpeechDaemon", {"AudioElementDaemon", "RoutedMediaDaemon"}));
  check(host_.add_daemon<media::SpeechToCommandDaemon>(config("stc")),
        with("SpeechToCommandDaemon", {"AudioElementDaemon", "RoutedMediaDaemon"}));
  check(host_.add_daemon<apps::VncServerDaemon>(config("vnc"), "alice",
                                                "main"),
        with("VncServerDaemon"));
  check(host_.add_daemon<apps::OPhoneDaemon>(config("phone")),
        with("OPhoneDaemon"));

  // A daemon that registers nothing beyond the built-ins keeps the
  // built-ins section honest on its own.
  check(host_.add_daemon<apps::VncViewerDaemon>(config("viewer")), base);

  // Every documented section must belong to some daemon above — a
  // section left behind after a class removal fails here.
  std::set<std::string> unclaimed;
  for (const auto& [name, cmds] : docs_)
    if (!used_sections_.count(name)) unclaimed.insert(name);
  EXPECT_TRUE(unclaimed.empty())
      << "docs/commands.md sections no daemon accounts for: "
      << join(unclaimed);
}

// ------------------------------------------------------- markdown linkage

namespace fs = std::filesystem;

// GitHub's heading-to-anchor rule: lowercase, spaces become hyphens,
// punctuation (backticks, dots, slashes, ...) is dropped, hyphens and
// underscores survive.
std::string slugify(const std::string& heading) {
  std::string out;
  for (char ch : heading) {
    const auto c = static_cast<unsigned char>(ch);
    if (std::isalnum(c))
      out += static_cast<char>(std::tolower(c));
    else if (c == ' ')
      out += '-';
    else if (c == '-' || c == '_')
      out += ch;
  }
  return out;
}

struct MarkdownDoc {
  std::set<std::string> anchors;     // heading slugs (with -N dedup suffixes)
  std::vector<std::string> targets;  // raw `](...)` link targets, in order
};

MarkdownDoc parse_markdown(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  MarkdownDoc doc;
  std::map<std::string, int> slug_uses;
  std::string line;
  bool fenced = false;
  while (std::getline(in, line)) {
    if (line.rfind("```", 0) == 0) {
      fenced = !fenced;
      continue;
    }
    if (fenced) continue;
    if (line.rfind("#", 0) == 0) {
      const auto text = line.find_first_not_of('#');
      if (text != std::string::npos && line[text] == ' ') {
        const std::string slug = slugify(line.substr(text + 1));
        const int n = slug_uses[slug]++;
        doc.anchors.insert(n == 0 ? slug : slug + "-" + std::to_string(n));
      }
    }
    // Inline code spans may hold literal `](...)` examples — scrub them.
    std::string scrubbed;
    bool in_code = false;
    for (char c : line) {
      if (c == '`')
        in_code = !in_code;
      else if (!in_code)
        scrubbed += c;
    }
    for (std::size_t i = 0; (i = scrubbed.find("](", i)) != std::string::npos;
         i += 2) {
      const auto close = scrubbed.find(')', i + 2);
      if (close == std::string::npos) break;
      std::string target = scrubbed.substr(i + 2, close - i - 2);
      // `](file.md "title")` — the title is not part of the path.
      if (auto space = target.find(' '); space != std::string::npos)
        target.resize(space);
      if (!target.empty()) doc.targets.push_back(std::move(target));
    }
  }
  return doc;
}

bool is_external(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

// Walks the markdown graph from README.md: every relative link must point
// at an existing file, every `#anchor` at a real heading in its target, and
// every file under docs/ must be reached by the walk — a guide nothing
// links to is dead documentation.
TEST(DocCrossLinks, EveryDocIsReachableAndEveryLinkResolves) {
  const fs::path root = fs::weakly_canonical(ACE_REPO_ROOT);
  std::map<fs::path, MarkdownDoc> parsed;
  auto doc_for = [&](const fs::path& p) -> MarkdownDoc& {
    auto it = parsed.find(p);
    if (it == parsed.end()) it = parsed.emplace(p, parse_markdown(p)).first;
    return it->second;
  };

  std::set<fs::path> visited;
  std::vector<fs::path> queue = {fs::weakly_canonical(root / "README.md")};
  while (!queue.empty()) {
    const fs::path page = queue.back();
    queue.pop_back();
    if (!visited.insert(page).second) continue;
    for (const std::string& raw : doc_for(page).targets) {
      if (is_external(raw)) continue;
      const auto hash = raw.find('#');
      const std::string file = raw.substr(0, hash);
      const std::string anchor =
          hash == std::string::npos ? "" : raw.substr(hash + 1);
      const fs::path target =
          file.empty() ? page
                       : fs::weakly_canonical(page.parent_path() / file);
      if (!fs::exists(target)) {
        ADD_FAILURE() << page.lexically_relative(root).string()
                      << " links to missing target: " << raw;
        continue;
      }
      if (target.extension() != ".md") continue;  // source files, licenses...
      if (!anchor.empty())
        EXPECT_TRUE(doc_for(target).anchors.count(anchor))
            << page.lexically_relative(root).string() << " links to " << raw
            << " but " << target.lexically_relative(root).string()
            << " has no such heading";
      queue.push_back(target);
    }
  }

  for (const auto& entry : fs::directory_iterator(root / "docs")) {
    if (entry.path().extension() != ".md") continue;
    EXPECT_TRUE(visited.count(fs::weakly_canonical(entry.path())))
        << entry.path().lexically_relative(root).string()
        << " is not reachable from README.md";
  }
}

}  // namespace
