// Tests for the persistent store (Ch 6, Fig 17): 3-replica redundancy,
// availability under 1-2 failures, anti-entropy resync, the checkpoint API,
// and the Robustness Manager (restart/robust applications, §5.2-5.3/Ch 9).
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "store/persistent_store.hpp"
#include "store/robustness.hpp"
#include "store/store_client.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("app-host", "svc/app");

    // Three replicas on three hosts, fully meshed (Fig 17).
    for (int i = 0; i < 3; ++i) {
      hosts_.push_back(std::make_unique<daemon::DaemonHost>(
          deployment_->env, "store" + std::to_string(i + 1)));
      daemon::DaemonConfig c;
      c.name = "store" + std::to_string(i + 1);
      c.room = "machine-room";
      c.port = 6000;
      replicas_.push_back(
          &hosts_.back()->add_daemon<store::PersistentStoreDaemon>(c, i + 1));
    }
    for (int i = 0; i < 3; ++i) {
      std::vector<net::Address> peers;
      for (int j = 0; j < 3; ++j)
        if (j != i) peers.push_back(replicas_[j]->address());
      replicas_[i]->set_peers(peers);
      ASSERT_TRUE(replicas_[i]->start().ok());
    }
    for (auto* r : replicas_) addresses_.push_back(r->address());
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts_;
  std::vector<store::PersistentStoreDaemon*> replicas_;
  std::vector<net::Address> addresses_;
};

TEST_F(StoreTest, WriteReplicatesToAllThreeServers) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("ns/app/config", util::to_bytes("v1")).ok());
  for (auto* r : replicas_) {
    auto obj = r->object("ns/app/config");
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(util::to_string(obj->data), "v1");
  }
}

TEST_F(StoreTest, ReadsServedFromAnyReplica) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("k", util::to_bytes("value")).ok());
  for (int i = 0; i < 3; ++i) {
    auto got = store.get("k");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(util::to_string(got.value()), "value");
    store.rotate();  // spread reads (Ch 6 bottleneck argument)
  }
}

TEST_F(StoreTest, LastWriteWinsAcrossReplicas) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("k", util::to_bytes("one")).ok());
  store.rotate();  // write the update through a different replica
  ASSERT_TRUE(store.put("k", util::to_bytes("two")).ok());
  for (auto* r : replicas_) {
    auto obj = r->object("k");
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(util::to_string(obj->data), "two");
  }
}

TEST_F(StoreTest, DeleteTombstonesEverywhere) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("gone", util::to_bytes("x")).ok());
  ASSERT_TRUE(store.remove("gone").ok());
  auto got = store.get("gone");
  EXPECT_FALSE(got.ok());
  for (auto* r : replicas_) EXPECT_EQ(r->object_count(), 0u);
}

TEST_F(StoreTest, ListByNamespacePrefix) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("state/wss/a", util::to_bytes("1")).ok());
  ASSERT_TRUE(store.put("state/wss/b", util::to_bytes("2")).ok());
  ASSERT_TRUE(store.put("state/aud/c", util::to_bytes("3")).ok());
  auto keys = store.list("state/wss/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 2u);
}

TEST_F(StoreTest, SurvivesOneReplicaFailure) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("k", util::to_bytes("before")).ok());

  hosts_[0]->fail();  // replica 1 crashes

  // Paper: "If ... one or two of the servers fail or crash, ACE services
  // may still access the stored information."
  auto got = store.get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(util::to_string(got.value()), "before");

  // Writes also continue (to the surviving pair).
  ASSERT_TRUE(store.put("k2", util::to_bytes("during")).ok());
  EXPECT_TRUE(replicas_[1]->object("k2").has_value());
  EXPECT_TRUE(replicas_[2]->object("k2").has_value());
}

TEST_F(StoreTest, SurvivesTwoReplicaFailures) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("k", util::to_bytes("precious")).ok());
  hosts_[0]->fail();
  hosts_[1]->fail();
  auto got = store.get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(util::to_string(got.value()), "precious");
  ASSERT_TRUE(store.put("k2", util::to_bytes("solo")).ok());
}

TEST_F(StoreTest, RejoiningReplicaCatchesUpViaSync) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("old", util::to_bytes("seen-by-all")).ok());

  hosts_[2]->fail();
  ASSERT_TRUE(store.put("new1", util::to_bytes("missed")).ok());
  ASSERT_TRUE(store.put("new2", util::to_bytes("also-missed")).ok());
  ASSERT_TRUE(store.remove("old").ok());
  EXPECT_FALSE(replicas_[2]->object("new1").has_value());

  // Rejoin: the replica process survived (host network was down); restore
  // connectivity and run anti-entropy. The peer monitor may notice the
  // rejoin and sync first, so the explicit call must succeed but may find
  // nothing left to fetch — assert on converged content, not fetch counts.
  hosts_[2]->restore();
  auto fetched = replicas_[2]->sync_from_peers();
  ASSERT_TRUE(fetched.ok());

  ASSERT_TRUE(replicas_[2]->object("new1").has_value());
  EXPECT_EQ(util::to_string(replicas_[2]->object("new1")->data), "missed");
  ASSERT_TRUE(replicas_[2]->object("new2").has_value());
  ASSERT_TRUE(replicas_[2]->object("old").has_value());
  EXPECT_TRUE(replicas_[2]->object("old")->deleted);
}

TEST_F(StoreTest, PeerRejoinTriggersAutomaticAntiEntropy) {
  store::StoreClient store(*client_, addresses_);
  auto& net = deployment_->env.network();

  // Cut replica 3 off from its peers (the daemon itself stays alive, so
  // its peer monitor keeps probing and sees the outage). Hold the
  // partition across a few probe rounds — rejoin detection is a down->up
  // transition, so the monitor must observe the outage first.
  net.set_partitioned("store3", "store1", true);
  net.set_partitioned("store3", "store2", true);
  ASSERT_TRUE(store.put("while-away", util::to_bytes("v")).ok());
  std::this_thread::sleep_for(600ms);
  EXPECT_FALSE(replicas_[2]->object("while-away").has_value());

  net.set_partitioned("store3", "store1", false);
  net.set_partitioned("store3", "store2", false);

  // No manual storeSync: the monitor notices its peers transition back to
  // reachable and runs an anti-entropy round on its own.
  bool converged = false;
  for (int i = 0; i < 600 && !converged; ++i) {
    converged = replicas_[2]->object("while-away").has_value();
    if (!converged) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(converged);
  EXPECT_EQ(util::to_string(replicas_[2]->object("while-away")->data), "v");
  EXPECT_GE(deployment_->env.metrics().counter("store.rejoin_syncs").value(),
            1u);
}

TEST_F(StoreTest, CheckpointApiStoresServiceState) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(
      store.save_state("wss", "workspaces", util::to_bytes("blob")).ok());
  auto loaded = store.load_state("wss", "workspaces");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(util::to_string(loaded.value()), "blob");
  auto keys = store.list("state/wss/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 1u);
}

TEST_F(StoreTest, BinaryDataSurvivesHexTransport) {
  store::StoreClient store(*client_, addresses_);
  util::Bytes binary(257);
  for (std::size_t i = 0; i < binary.size(); ++i)
    binary[i] = static_cast<std::uint8_t>(i);
  ASSERT_TRUE(store.put("bin", binary).ok());
  auto got = store.get("bin");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), binary);
}

// --------------------------------------------------------------- robustness

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("ops", "user/ops");
    work_host_ =
        std::make_unique<daemon::DaemonHost>(deployment_->env, "worker");

    auto& hal = work_host_->add_daemon<services::HalDaemon>(cfg("hal"));
    auto& sal = work_host_->add_daemon<services::SalDaemon>(cfg("sal"));
    ASSERT_TRUE(hal.start().ok());
    ASSERT_TRUE(sal.start().ok());
    hal_ = &hal;
  }

  daemon::DaemonConfig cfg(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "machine-room";
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
  std::unique_ptr<daemon::DaemonHost> work_host_;
  services::HalDaemon* hal_ = nullptr;
};

TEST_F(RobustnessTest, RestartServiceIsRelaunchedAfterCrash) {
  // The managed "fragile" service: each relaunch constructs a fresh daemon.
  daemon::DaemonConfig fragile_cfg = cfg("fragile");
  fragile_cfg.lease = 300ms;
  fragile_cfg.lease_renew = 100ms;
  auto* fragile = &work_host_->add_daemon<services::HrmDaemon>(fragile_cfg);
  ASSERT_TRUE(fragile->start().ok());

  std::atomic<int> launches{0};
  hal_->register_launchable("fragile", [&]() -> util::Status {
    daemon::DaemonConfig c = cfg("fragile");
    c.lease = 300ms;
    c.lease_renew = 100ms;
    c.port = 0;
    auto& revived = work_host_->add_daemon<services::HrmDaemon>(c);
    launches++;
    return revived.start();
  });

  auto& rm = work_host_->add_daemon<store::RobustnessManagerDaemon>(cfg("rm"));
  ASSERT_TRUE(rm.start().ok());

  CmdLine manage("rmRegister");
  manage.arg("name", Word{"fragile"});
  manage.arg("kind", Word{"restart"});
  manage.arg("host", "worker");
  ASSERT_TRUE(client_->call(rm.address(), manage, daemon::kCallOk).ok());

  fragile->crash();

  // Lease expiry -> ASD serviceExpired notification -> RM -> SAL -> HAL.
  // `launches` flips as soon as the HAL launchable runs, but the RM only
  // counts the restart once the salLaunchService reply makes it back up
  // the chain — poll for both before asserting.
  bool relaunched = false;
  for (int i = 0; i < 400 && !relaunched; ++i) {
    relaunched = launches.load() > 0 && rm.total_restarts() >= 1;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(relaunched);
  EXPECT_GE(rm.total_restarts(), 1);

  // The revived instance is findable through the ASD again.
  bool visible = false;
  for (int i = 0; i < 200 && !visible; ++i) {
    visible = services::AsdClient(*client_, deployment_->env.asd_address).lookup("fragile")
                  .ok();
    if (!visible) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(visible);
}

TEST_F(RobustnessTest, UnmanagedServicesAreNotRelaunched) {
  daemon::DaemonConfig c = cfg("unmanaged");
  c.lease = 300ms;
  c.lease_renew = 100ms;
  auto* svc = &work_host_->add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc->start().ok());

  auto& rm = work_host_->add_daemon<store::RobustnessManagerDaemon>(cfg("rm"));
  ASSERT_TRUE(rm.start().ok());

  svc->crash();
  std::this_thread::sleep_for(800ms);
  EXPECT_EQ(rm.total_restarts(), 0);
}
