// Tests for the persistent store (Ch 6, Fig 17): 3-replica redundancy,
// availability under 1-2 failures, anti-entropy resync, the checkpoint API,
// and the Robustness Manager (restart/robust applications, §5.2-5.3/Ch 9).
// Plus the scaled-out store machinery: consistent-hash ring, Merkle digest
// tree, sharding, sloppy quorums with hinted handoff, and a chaos-driven
// quorum torture run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "ace_test_env.hpp"
#include "chaos/chaos.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "store/merkle.hpp"
#include "store/persistent_store.hpp"
#include "store/ring.hpp"
#include "store/robustness.hpp"
#include "store/store_client.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("app-host", "svc/app");

    // Three replicas on three hosts, fully meshed (Fig 17).
    for (int i = 0; i < 3; ++i) {
      hosts_.push_back(std::make_unique<daemon::DaemonHost>(
          deployment_->env, "store" + std::to_string(i + 1)));
      daemon::DaemonConfig c;
      c.name = "store" + std::to_string(i + 1);
      c.room = "machine-room";
      c.port = 6000;
      replicas_.push_back(
          &hosts_.back()->add_daemon<store::PersistentStoreDaemon>(c, i + 1));
    }
    for (int i = 0; i < 3; ++i) {
      std::vector<net::Address> peers;
      for (int j = 0; j < 3; ++j)
        if (j != i) peers.push_back(replicas_[j]->address());
      replicas_[i]->set_peers(peers);
      ASSERT_TRUE(replicas_[i]->start().ok());
    }
    for (auto* r : replicas_) addresses_.push_back(r->address());
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts_;
  std::vector<store::PersistentStoreDaemon*> replicas_;
  std::vector<net::Address> addresses_;
};

TEST_F(StoreTest, WriteReplicatesToAllThreeServers) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("ns/app/config", util::to_bytes("v1")).ok());
  for (auto* r : replicas_) {
    auto obj = r->object("ns/app/config");
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(util::to_string(obj->data), "v1");
  }
}

TEST_F(StoreTest, ReadsServedFromAnyReplica) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("k", util::to_bytes("value")).ok());
  for (int i = 0; i < 3; ++i) {
    auto got = store.get("k");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(util::to_string(got.value()), "value");
    store.rotate();  // spread reads (Ch 6 bottleneck argument)
  }
}

TEST_F(StoreTest, LastWriteWinsAcrossReplicas) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("k", util::to_bytes("one")).ok());
  store.rotate();  // write the update through a different replica
  ASSERT_TRUE(store.put("k", util::to_bytes("two")).ok());
  for (auto* r : replicas_) {
    auto obj = r->object("k");
    ASSERT_TRUE(obj.has_value());
    EXPECT_EQ(util::to_string(obj->data), "two");
  }
}

TEST_F(StoreTest, DeleteTombstonesEverywhere) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("gone", util::to_bytes("x")).ok());
  ASSERT_TRUE(store.remove("gone").ok());
  auto got = store.get("gone");
  EXPECT_FALSE(got.ok());
  for (auto* r : replicas_) EXPECT_EQ(r->object_count(), 0u);
}

TEST_F(StoreTest, ListByNamespacePrefix) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("state/wss/a", util::to_bytes("1")).ok());
  ASSERT_TRUE(store.put("state/wss/b", util::to_bytes("2")).ok());
  ASSERT_TRUE(store.put("state/aud/c", util::to_bytes("3")).ok());
  auto keys = store.list("state/wss/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 2u);
}

TEST_F(StoreTest, SurvivesOneReplicaFailure) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("k", util::to_bytes("before")).ok());

  hosts_[0]->fail();  // replica 1 crashes

  // Paper: "If ... one or two of the servers fail or crash, ACE services
  // may still access the stored information."
  auto got = store.get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(util::to_string(got.value()), "before");

  // Writes also continue (to the surviving pair).
  ASSERT_TRUE(store.put("k2", util::to_bytes("during")).ok());
  EXPECT_TRUE(replicas_[1]->object("k2").has_value());
  EXPECT_TRUE(replicas_[2]->object("k2").has_value());
}

TEST_F(StoreTest, SurvivesTwoReplicaFailures) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("k", util::to_bytes("precious")).ok());
  hosts_[0]->fail();
  hosts_[1]->fail();
  auto got = store.get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(util::to_string(got.value()), "precious");
  ASSERT_TRUE(store.put("k2", util::to_bytes("solo")).ok());
}

TEST_F(StoreTest, RejoiningReplicaCatchesUpViaSync) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("old", util::to_bytes("seen-by-all")).ok());

  hosts_[2]->fail();
  ASSERT_TRUE(store.put("new1", util::to_bytes("missed")).ok());
  ASSERT_TRUE(store.put("new2", util::to_bytes("also-missed")).ok());
  ASSERT_TRUE(store.remove("old").ok());
  EXPECT_FALSE(replicas_[2]->object("new1").has_value());

  // Rejoin: the replica process survived (host network was down); restore
  // connectivity and run anti-entropy. The peer monitor may notice the
  // rejoin and sync first, so the explicit call must succeed but may find
  // nothing left to fetch — assert on converged content, not fetch counts.
  hosts_[2]->restore();
  auto fetched = replicas_[2]->sync_from_peers();
  ASSERT_TRUE(fetched.ok());

  ASSERT_TRUE(replicas_[2]->object("new1").has_value());
  EXPECT_EQ(util::to_string(replicas_[2]->object("new1")->data), "missed");
  ASSERT_TRUE(replicas_[2]->object("new2").has_value());
  ASSERT_TRUE(replicas_[2]->object("old").has_value());
  EXPECT_TRUE(replicas_[2]->object("old")->deleted);
}

TEST_F(StoreTest, PeerRejoinTriggersAutomaticAntiEntropy) {
  store::StoreClient store(*client_, addresses_);
  auto& net = deployment_->env.network();

  // Cut replica 3 off from its peers AND from the client (the daemon
  // itself stays alive, so its peer monitor keeps probing and sees the
  // outage; the client cut keeps it from coordinating the write itself).
  // Hold the partition across a few probe rounds — rejoin detection is a
  // down->up transition, so the monitor must observe the outage first.
  net.set_partitioned("store3", "store1", true);
  net.set_partitioned("store3", "store2", true);
  net.set_partitioned("store3", "app-host", true);
  ASSERT_TRUE(store.put("while-away", util::to_bytes("v")).ok());
  std::this_thread::sleep_for(600ms);
  EXPECT_FALSE(replicas_[2]->object("while-away").has_value());

  net.set_partitioned("store3", "store1", false);
  net.set_partitioned("store3", "store2", false);
  net.set_partitioned("store3", "app-host", false);

  // No manual storeSync: the monitor notices its peers transition back to
  // reachable and runs an anti-entropy round on its own.
  bool converged = false;
  for (int i = 0; i < 600 && !converged; ++i) {
    converged = replicas_[2]->object("while-away").has_value();
    if (!converged) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(converged);
  EXPECT_EQ(util::to_string(replicas_[2]->object("while-away")->data), "v");
  EXPECT_GE(deployment_->env.metrics().counter("store.rejoin_syncs").value(),
            1u);
}

TEST_F(StoreTest, CheckpointApiStoresServiceState) {
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(
      store.save_state("wss", "workspaces", util::to_bytes("blob")).ok());
  auto loaded = store.load_state("wss", "workspaces");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(util::to_string(loaded.value()), "blob");
  auto keys = store.list("state/wss/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 1u);
}

TEST_F(StoreTest, BinaryDataSurvivesHexTransport) {
  store::StoreClient store(*client_, addresses_);
  util::Bytes binary(257);
  for (std::size_t i = 0; i < binary.size(); ++i)
    binary[i] = static_cast<std::uint8_t>(i);
  ASSERT_TRUE(store.put("bin", binary).ok());
  auto got = store.get("bin");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), binary);
}

// --------------------------------------------------------- ring and merkle

TEST(RingTest, LayoutIsDeterministicAcrossParties) {
  std::vector<net::Address> nodes = {
      {"s1", 6000}, {"s2", 6000}, {"s3", 6000}, {"s4", 6000}};
  std::vector<net::Address> shuffled = {
      {"s3", 6000}, {"s1", 6000}, {"s4", 6000}, {"s2", 6000}};
  store::Ring a(nodes, store::kDefaultVnodes);
  store::Ring b(shuffled, store::kDefaultVnodes);  // order must not matter
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k/" + std::to_string(i);
    EXPECT_EQ(a.preference_list(key, 3), b.preference_list(key, 3)) << key;
  }
}

TEST(RingTest, PreferenceListsAreDistinctAndCapped) {
  std::vector<net::Address> nodes = {
      {"s1", 6000}, {"s2", 6000}, {"s3", 6000}, {"s4", 6000}, {"s5", 6000}};
  store::Ring ring(nodes, store::kDefaultVnodes);
  for (int i = 0; i < 50; ++i) {
    auto prefs = ring.preference_list("k/" + std::to_string(i), 3);
    ASSERT_EQ(prefs.size(), 3u);
    EXPECT_NE(prefs[0], prefs[1]);
    EXPECT_NE(prefs[0], prefs[2]);
    EXPECT_NE(prefs[1], prefs[2]);
    // Asking for more than the cluster yields everyone, once each.
    auto all = ring.preference_list("k/" + std::to_string(i), 99);
    EXPECT_EQ(all.size(), nodes.size());
  }
}

TEST(RingTest, VirtualNodesSpreadOwnership) {
  std::vector<net::Address> nodes = {
      {"s1", 6000}, {"s2", 6000}, {"s3", 6000}, {"s4", 6000}, {"s5", 6000}};
  store::Ring ring(nodes, store::kDefaultVnodes);
  std::map<std::string, int> primary_count;
  for (int i = 0; i < 1000; ++i)
    primary_count[ring.preference_list("obj/" + std::to_string(i), 1)[0]
                       .to_string()]++;
  ASSERT_EQ(primary_count.size(), nodes.size());  // everyone owns something
  for (const auto& [node, count] : primary_count)
    EXPECT_GT(count, 50) << node;  // no starved node (fair share is 200)
}

TEST(MerkleTest, RootDependsOnContentNotHistory) {
  store::MerkleTree a(10);
  store::MerkleTree b(10);
  auto put = [](store::MerkleTree& t, const std::string& key,
                std::uint64_t version) {
    t.update(store::Ring::hash_key(key), 0,
             store::MerkleTree::entry_hash(key, version, false));
  };
  put(a, "x", 1);
  put(a, "y", 2);
  put(b, "y", 2);  // same entries, other order
  put(b, "x", 1);
  EXPECT_EQ(a.root(), b.root());
  EXPECT_NE(a.root(), store::MerkleTree(10).root());

  // An update replaces the old entry hash; both trees track it.
  const std::uint64_t pos = store::Ring::hash_key("x");
  a.update(pos, store::MerkleTree::entry_hash("x", 1, false),
           store::MerkleTree::entry_hash("x", 7, false));
  EXPECT_NE(a.root(), b.root());
  b.update(pos, store::MerkleTree::entry_hash("x", 1, false),
           store::MerkleTree::entry_hash("x", 7, false));
  EXPECT_EQ(a.root(), b.root());
}

TEST(MerkleTest, DivergenceIsLocalizedToOneBucketPath) {
  store::MerkleTree a(10);
  store::MerkleTree b(10);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "k/" + std::to_string(i);
    const auto h = store::MerkleTree::entry_hash(key, 1, false);
    a.update(store::Ring::hash_key(key), 0, h);
    b.update(store::Ring::hash_key(key), 0, h);
  }
  const std::uint64_t pos = store::Ring::hash_key("k/42");
  b.update(pos, store::MerkleTree::entry_hash("k/42", 1, false),
           store::MerkleTree::entry_hash("k/42", 9, false));
  ASSERT_NE(a.root(), b.root());
  // Exactly one leaf differs: the changed key's bucket.
  std::size_t differing = 0;
  for (std::size_t leaf = 0; leaf < a.leaf_count(); ++leaf)
    if (a.node(a.first_leaf() + leaf) != b.node(b.first_leaf() + leaf))
      ++differing;
  EXPECT_EQ(differing, 1u);
  EXPECT_NE(a.node(a.first_leaf() + a.bucket_of(pos)),
            b.node(b.first_leaf() + b.bucket_of(pos)));
}

// -------------------------------------------------------- sharded clusters

class ShardedStoreTest : public ::testing::Test {
 protected:
  static constexpr int kNodes = 5;

  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("app-host", "svc/app");
    for (int i = 0; i < kNodes; ++i) {
      hosts_.push_back(std::make_unique<daemon::DaemonHost>(
          deployment_->env, "shard" + std::to_string(i + 1)));
      daemon::DaemonConfig c;
      c.name = "shard" + std::to_string(i + 1);
      c.room = "machine-room";
      c.port = 6000;
      replicas_.push_back(
          &hosts_.back()->add_daemon<store::PersistentStoreDaemon>(c, i + 1));
    }
    for (int i = 0; i < kNodes; ++i) {
      std::vector<net::Address> peers;
      for (int j = 0; j < kNodes; ++j)
        if (j != i) peers.push_back(replicas_[j]->address());
      replicas_[i]->set_peers(peers);
      ASSERT_TRUE(replicas_[i]->start().ok());
    }
    for (auto* r : replicas_) addresses_.push_back(r->address());
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts_;
  std::vector<store::PersistentStoreDaemon*> replicas_;
  std::vector<net::Address> addresses_;
};

TEST_F(ShardedStoreTest, EachKeyLandsOnExactlyItsPreferenceList) {
  store::StoreClient store(*client_, addresses_);
  const int kKeys = 30;
  for (int i = 0; i < kKeys; ++i)
    ASSERT_TRUE(
        store.put("obj/" + std::to_string(i), util::to_bytes("v")).ok());

  const store::Ring& ring = replicas_[0]->ring();
  for (int i = 0; i < kKeys; ++i) {
    const std::string key = "obj/" + std::to_string(i);
    auto owners = ring.preference_list(key, 3);
    int holders = 0;
    for (int r = 0; r < kNodes; ++r) {
      const bool holds = replicas_[r]->object(key).has_value();
      const bool owner = std::find(owners.begin(), owners.end(),
                                   addresses_[r]) != owners.end();
      EXPECT_EQ(holds, owner) << key << " on replica " << (r + 1);
      if (holds) ++holders;
    }
    EXPECT_EQ(holders, 3) << key;
  }

  // Sharding means nobody stores the whole namespace.
  for (int r = 0; r < kNodes; ++r)
    EXPECT_LT(replicas_[r]->object_count(), static_cast<std::size_t>(kKeys));

  // And every key still reads back through the routed client.
  for (int i = 0; i < kKeys; ++i) {
    auto got = store.get("obj/" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(util::to_string(got.value()), "v");
  }
}

TEST_F(ShardedStoreTest, ClusterListSpansShards) {
  store::StoreClient store(*client_, addresses_);
  for (int i = 0; i < 12; ++i)
    ASSERT_TRUE(
        store.put("ns/list/" + std::to_string(i), util::to_bytes("x")).ok());
  auto keys = store.list("ns/list/");
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 12u);
}

namespace {
std::string padded_key(const std::string& prefix, int i) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%03d", i);
  return prefix + buf;
}
}  // namespace

// Paging through storeScan must reproduce exactly what one giant list()
// reply holds — same keys, same (ascending) order — with every page
// bounded by the requested limit.
TEST_F(ShardedStoreTest, ScanPaginationMatchesListSnapshot) {
  store::StoreClient store(*client_, addresses_);
  for (int i = 0; i < 120; ++i)
    ASSERT_TRUE(store.put(padded_key("scan/", i), util::to_bytes("v")).ok());
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(store.put(padded_key("other/", i), util::to_bytes("x")).ok());
  // Tombstones must be skipped, not emitted.
  for (int i = 0; i < 120; i += 10)
    ASSERT_TRUE(store.remove(padded_key("scan/", i)).ok());

  // Snapshot via the one-shot wire storeList (the server-side shim), so
  // the pager is checked against a single giant reply, not against itself
  // (StoreClient::list() drains the same pager under the hood).
  cmdlang::CmdLine list_cmd("storeList");
  list_cmd.arg("prefix", std::string("scan/"));
  auto list_reply = client_->call(
      addresses_[0], list_cmd,
      daemon::CallOptions{.timeout = std::chrono::seconds(10)});
  ASSERT_TRUE(list_reply.ok());
  ASSERT_TRUE(cmdlang::is_ok(list_reply.value()));
  std::vector<std::string> snapshot_keys;
  auto vec = list_reply->get_vector("keys");
  ASSERT_TRUE(vec.has_value());
  for (const auto& elem : vec->elements) snapshot_keys.push_back(elem.as_text());
  ASSERT_EQ(snapshot_keys.size(), 108u);
  ASSERT_TRUE(std::is_sorted(snapshot_keys.begin(), snapshot_keys.end()));

  // The client-side list() (pager drain) must agree with the wire shim.
  auto drained = store.list("scan/");
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(*drained, snapshot_keys);

  store::StoreScanner scanner = store.scan("scan/", 7);
  std::vector<std::string> paged;
  int pages = 0;
  while (!scanner.done()) {
    auto page = scanner.next_page();
    ASSERT_TRUE(page.ok());
    EXPECT_LE(page->size(), 7u);
    paged.insert(paged.end(), page->begin(), page->end());
    ++pages;
    ASSERT_LT(pages, 1000) << "scan failed to terminate";
  }
  EXPECT_GT(pages, 1);
  EXPECT_EQ(paged, snapshot_keys);
  EXPECT_GE(deployment_->env.metrics().counter("store.scan_pages").value(),
            static_cast<std::uint64_t>(pages));
}

// The scan cursor contract under churn: keys come out strictly ascending
// with no duplicates, and a key that existed untouched for the whole scan
// is emitted exactly once — regardless of concurrent puts and deletes
// around the cursor.
TEST_F(ShardedStoreTest, ScanCursorStableUnderConcurrentChurn) {
  store::StoreClient store(*client_, addresses_);
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(store.put(padded_key("churn/k", i), util::to_bytes("v")).ok());

  store::StoreScanner scanner = store.scan("churn/", 5);
  std::vector<std::string> emitted;
  int round = 0;
  while (!scanner.done()) {
    auto page = scanner.next_page();
    ASSERT_TRUE(page.ok());
    emitted.insert(emitted.end(), page->begin(), page->end());
    // Churn between pages: new keys ahead of and behind the cursor,
    // deletes of odd keys ahead, rewrites of keys already scanned.
    const int i = round++;
    ASSERT_LT(round, 1000) << "scan failed to terminate";
    if (i < 40) {
      ASSERT_TRUE(
          store.put(padded_key("churn/zz", i), util::to_bytes("new")).ok());
      ASSERT_TRUE(
          store.put(padded_key("churn/a", i), util::to_bytes("new")).ok());
      if (i * 2 + 1 < 100) {
        ASSERT_TRUE(store.remove(padded_key("churn/k", i * 2 + 1)).ok());
      }
      ASSERT_TRUE(
          store.put(padded_key("churn/k", i * 2), util::to_bytes("w")).ok());
    }
  }

  // Strictly ascending — which also means duplicate-free.
  for (std::size_t i = 1; i < emitted.size(); ++i)
    ASSERT_LT(emitted[i - 1], emitted[i]) << "at index " << i;
  // Every key untouched for the scan's whole lifetime shows up exactly
  // once (even indices are rewritten with the same key, which must not
  // duplicate or drop them either — count them too).
  for (int i = 0; i < 100; i += 2)
    EXPECT_EQ(std::count(emitted.begin(), emitted.end(),
                         padded_key("churn/k", i)),
              1)
        << padded_key("churn/k", i);
}

// ------------------------------------------- quorums, hints, chaos torture

class QuorumStoreTest : public ::testing::Test {
 protected:
  void start_cluster(store::StoreOptions opts) {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("app-host", "svc/app");
    for (int i = 0; i < 3; ++i) {
      hosts_.push_back(std::make_unique<daemon::DaemonHost>(
          deployment_->env, "store" + std::to_string(i + 1)));
      daemon::DaemonConfig c;
      c.name = "store" + std::to_string(i + 1);
      c.room = "machine-room";
      c.port = 6000;
      replicas_.push_back(&hosts_.back()->add_daemon<store::PersistentStoreDaemon>(
          c, i + 1, opts));
    }
    for (int i = 0; i < 3; ++i) {
      std::vector<net::Address> peers;
      for (int j = 0; j < 3; ++j)
        if (j != i) peers.push_back(replicas_[j]->address());
      replicas_[i]->set_peers(peers);
      ASSERT_TRUE(replicas_[i]->start().ok());
    }
    for (auto* r : replicas_) addresses_.push_back(r->address());
  }

  std::size_t total_hints() const {
    std::size_t n = 0;
    for (auto* r : replicas_) n += r->hints_pending();
    return n;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts_;
  std::vector<store::PersistentStoreDaemon*> replicas_;
  std::vector<net::Address> addresses_;
};

TEST_F(QuorumStoreTest, StrictQuorumRejectsWhenTooFewReplicasAck) {
  store::StoreOptions opts;
  opts.write_quorum = 3;  // every owner must ack
  start_cluster(opts);
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("k", util::to_bytes("all-up")).ok());

  hosts_[2]->fail();
  // W=3 with one replica down: on a 3-node ring there is no fallback
  // successor, so only 2 acks are reachable and the write must fail...
  EXPECT_FALSE(store.put("k2", util::to_bytes("x")).ok());
  EXPECT_GE(
      deployment_->env.metrics().counter("store.quorum_failures").value(),
      1u);

  // ...while W=2 semantics (the surviving majority) are covered by
  // ChaosQuorumTortureNeverLosesAckedWrites below.
  hosts_[2]->restore();
}

TEST_F(QuorumStoreTest, HintedHandoffDrainsOnHeal) {
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.probe_interval = std::chrono::milliseconds(100);
  start_cluster(opts);
  store::StoreClient store(*client_, addresses_);
  auto& metrics = deployment_->env.metrics();

  hosts_[2]->fail();
  ASSERT_TRUE(store.put("hinted/k", util::to_bytes("v")).ok());
  // The coordinator could not reach replica 3; some survivor holds a hint
  // naming it as the intended owner.
  EXPECT_GE(metrics.counter("store.hints_recorded").value(), 1u);
  EXPECT_GE(total_hints(), 1u);
  EXPECT_FALSE(replicas_[2]->object("hinted/k").has_value());

  // Heal: restore the network AND relaunch the crashed replica (fail()
  // models a machine death, so the daemon must be started again).
  hosts_[2]->restore();
  ASSERT_TRUE(replicas_[2]->start().ok());
  // The peer monitor notices the heal and pushes the hinted write home.
  bool drained = false;
  for (int i = 0; i < 600 && !drained; ++i) {
    drained = replicas_[2]->object("hinted/k").has_value() &&
              total_hints() == 0;
    if (!drained) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(drained);
  EXPECT_EQ(util::to_string(replicas_[2]->object("hinted/k")->data), "v");
  EXPECT_GE(metrics.counter("store.hints_drained").value(), 1u);
}

// The E16 durability claim as a test: replicas crash and restart mid
// write-storm (chaos schedule, fixed seed, at most one replica down at a
// time), writes use a strict W=2 sloppy quorum, and at the end every write
// that was *acknowledged* must read back with its final value. Replay any
// failure with ACE_CHAOS_SEED=<seed>.
TEST_F(QuorumStoreTest, ChaosQuorumTortureNeverLosesAckedWrites) {
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 2;
  opts.probe_interval = std::chrono::milliseconds(100);
  start_cluster(opts);
  store::StoreClient store(*client_, addresses_);

  chaos::ScheduleParams params;
  params.duration = std::chrono::milliseconds(2500);
  params.mean_interval = std::chrono::milliseconds(300);
  params.min_fault = std::chrono::milliseconds(200);
  params.max_fault = std::chrono::milliseconds(700);
  params.service_cooldown = std::chrono::milliseconds(300);
  params.weight_service_crash = 1;  // crash/restart faults only
  params.weight_link_down = 0;
  params.weight_host_isolate = 0;
  params.weight_latency_spike = 0;
  params.weight_loss_burst = 0;
  params.max_concurrent_crashes = 1;  // keep a W=2 majority alive
  chaos::Targets targets;
  targets.services = {"store1", "store2", "store3"};
  targets.hosts = {"store1", "store2", "store3"};
  auto schedule =
      chaos::generate_schedule(chaos::seed_from_env(0x57a6e), params, targets);
  int crashes = 0;
  for (const auto& e : schedule.events)
    if (e.kind == chaos::FaultKind::service_crash) ++crashes;

  // Writer storm: per key, remember the sequence number of the last write
  // whose put returned ok (quorum met). A rejected write may still have
  // landed on some replicas with a newer version — allowed to win LWW —
  // so the durability contract is monotone: the final value must be the
  // acked write or a *later* one, never an older state and never absent.
  std::mutex acked_mu;
  std::map<std::string, int> acked;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      const std::string key = "t/" + std::to_string(i % 64);
      if (store.put(key, util::to_bytes("v" + std::to_string(i))).ok()) {
        std::scoped_lock lock(acked_mu);
        acked[key] = i;
      }
      ++i;
      std::this_thread::sleep_for(1ms);
    }
  });

  auto by_name = [&](const std::string& name) {
    return replicas_[name == "store1" ? 0 : name == "store2" ? 1 : 2];
  };
  const auto start = std::chrono::steady_clock::now();
  for (const auto& e : schedule.events) {
    std::this_thread::sleep_until(start + e.at);
    if (e.kind == chaos::FaultKind::service_crash)
      by_name(e.a)->crash();
    else if (e.kind == chaos::FaultKind::service_restart)
      ASSERT_TRUE(by_name(e.a)->start().ok());
  }
  std::this_thread::sleep_until(start + schedule.duration);
  stop.store(true);
  writer.join();
  EXPECT_GT(crashes, 0) << "schedule with this seed injected no faults";

  // Heal: every replica is restarted by the schedule's paired restart
  // events; wait for hints to drain and anti-entropy to converge.
  bool settled = false;
  for (int i = 0; i < 1000 && !settled; ++i) {
    settled = total_hints() == 0 &&
              replicas_[0]->merkle_root() == replicas_[1]->merkle_root() &&
              replicas_[1]->merkle_root() == replicas_[2]->merkle_root();
    if (!settled) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(settled) << "cluster did not converge after the storm";

  // Durability: every acknowledged write reads back, at its own value or a
  // later one.
  std::size_t checked = 0;
  for (const auto& [key, seq] : acked) {
    auto got = store.get(key);
    ASSERT_TRUE(got.ok()) << key << " lost (seed " << schedule.seed << ")";
    const std::string value = util::to_string(got.value());
    ASSERT_TRUE(value.size() > 1 && value[0] == 'v') << value;
    EXPECT_GE(std::stoi(value.substr(1)), seq)
        << key << " rolled back (seed " << schedule.seed << ")";
    ++checked;
  }
  EXPECT_GT(checked, 0u) << "storm acknowledged no writes";
  // The R=2 verification reads above all went through the digest fan-out;
  // the acked-write monotonicity they just proved is the chaos-level
  // correctness check for the parallel read path.
  EXPECT_GT(deployment_->env.metrics().counter("store.digest_reads").value(),
            0u);
}

// A read that observes a stale replica repairs it in the background: after
// a partition heals, one strict-quorum read is enough to push the newest
// version back onto the replica that missed it — without waiting for the
// anti-entropy pass.
TEST_F(QuorumStoreTest, DigestReadRepairConvergesStaleReplica) {
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 3;
  // Park the peer monitor: its first pass runs at boot, then it sleeps for
  // a minute — so neither hint drain nor anti-entropy can converge the
  // stale replica during this test. Only read repair can.
  opts.probe_interval = std::chrono::seconds(60);
  start_cluster(opts);
  auto& metrics = deployment_->env.metrics();
  auto& net = deployment_->env.network();

  cmdlang::CmdLine put1("storePut");
  put1.arg("key", "rr/k");
  put1.arg("data", "7631");  // "v1"
  auto r1 = client_->call(addresses_[0], put1);
  ASSERT_TRUE(r1.ok() && cmdlang::is_ok(r1.value()));

  // Cut store3 off and write v2 through store1: the W=2 sloppy quorum
  // succeeds while store3 keeps v1.
  net.set_partitioned("store3", "store1", true);
  net.set_partitioned("store3", "store2", true);
  net.set_partitioned("store3", "app-host", true);
  cmdlang::CmdLine put2("storePut");
  put2.arg("key", "rr/k");
  put2.arg("data", "7632");  // "v2"
  auto r2 = client_->call(addresses_[0], put2);
  ASSERT_TRUE(r2.ok() && cmdlang::is_ok(r2.value()));
  ASSERT_EQ(util::to_string(replicas_[2]->object("rr/k")->data), "v1");

  net.set_partitioned("store3", "store1", false);
  net.set_partitioned("store3", "store2", false);
  net.set_partitioned("store3", "app-host", false);

  // An R=3 read via store1 sees store3's stale digest, answers v2, and
  // schedules the repair.
  cmdlang::CmdLine get("storeGet");
  get.arg("key", "rr/k");
  auto got = client_->call(addresses_[0], get);
  ASSERT_TRUE(got.ok() && cmdlang::is_ok(got.value()));
  EXPECT_EQ(got->get_text("data"), "7632");
  EXPECT_GE(metrics.counter("store.digest_reads").value(), 1u);
  EXPECT_GE(metrics.counter("store.digest_mismatches").value(), 1u);

  // The replica converges when it applies the repair; the counter ticks a
  // beat later, when the ack reaches the coordinator's repair task — poll
  // for both.
  bool repaired = false;
  for (int i = 0; i < 600 && !repaired; ++i) {
    auto obj = replicas_[2]->object("rr/k");
    repaired = obj && util::to_string(obj->data) == "v2" &&
               metrics.counter("store.read_repairs").value() >= 1;
    if (!repaired) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(repaired) << "read repair never converged the stale replica";

  // Round two, with the *coordinator itself* stale: store3 misses v3, then
  // coordinates the read. Its own copy is outvoted by the remote digests;
  // the reply must still be v3 and the local copy self-heals inline.
  net.set_partitioned("store3", "store1", true);
  net.set_partitioned("store3", "store2", true);
  cmdlang::CmdLine put3("storePut");
  put3.arg("key", "rr/k");
  put3.arg("data", "7633");  // "v3"
  auto r3 = client_->call(addresses_[0], put3);
  ASSERT_TRUE(r3.ok() && cmdlang::is_ok(r3.value()));
  net.set_partitioned("store3", "store1", false);
  net.set_partitioned("store3", "store2", false);

  auto got3 = client_->call(addresses_[2], get);
  ASSERT_TRUE(got3.ok() && cmdlang::is_ok(got3.value()));
  EXPECT_EQ(got3->get_text("data"), "7633");
  auto self = replicas_[2]->object("rr/k");
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(util::to_string(self->data), "v3");
}

// With R=3 and a dead owner the read quorum is unreachable: the
// coordinator must say so (unavailable + counter), never serve a value it
// could not corroborate.
TEST_F(QuorumStoreTest, ReadQuorumUnavailableIsSurfaced) {
  store::StoreOptions opts;
  opts.read_quorum = 3;
  start_cluster(opts);
  store::StoreClient store(*client_, addresses_);
  ASSERT_TRUE(store.put("q/k", util::to_bytes("v")).ok());

  hosts_[2]->fail();
  cmdlang::CmdLine get("storeGet");
  get.arg("key", "q/k");
  auto reply = client_->call(addresses_[0], get);
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(cmdlang::is_error(reply.value()));
  EXPECT_EQ(cmdlang::reply_error(reply.value()).code,
            util::Errc::unavailable);
  EXPECT_GE(
      deployment_->env.metrics().counter("store.read_unavailable").value(),
      1u);
  hosts_[2]->restore();
}

// Ablation identity: the digest fan-out is an optimization, not a
// semantics change. The same workload — binary payloads, overwrites,
// deletes, a stale-replica window — must read back byte-identical with
// digest reads on and off.
TEST(StoreDigestAblationTest, DigestReadsReturnIdenticalResults) {
  struct MiniCluster {
    explicit MiniCluster(bool digest_reads) {
      store::StoreOptions opts;
      opts.write_quorum = 2;
      opts.read_quorum = 2;
      opts.digest_reads = digest_reads;
      opts.probe_interval = std::chrono::seconds(60);
      env = std::make_unique<testenv::AceTestEnv>();
      EXPECT_TRUE(env->start().ok());
      client = env->make_client("app-host", "svc/app");
      for (int i = 0; i < 3; ++i) {
        hosts.push_back(std::make_unique<daemon::DaemonHost>(
            env->env, "store" + std::to_string(i + 1)));
        daemon::DaemonConfig c;
        c.name = "store" + std::to_string(i + 1);
        c.room = "machine-room";
        c.port = 6000;
        replicas.push_back(&hosts.back()->add_daemon<store::PersistentStoreDaemon>(
            c, i + 1, opts));
      }
      for (int i = 0; i < 3; ++i) {
        std::vector<net::Address> peers;
        for (int j = 0; j < 3; ++j)
          if (j != i) peers.push_back(replicas[j]->address());
        replicas[i]->set_peers(peers);
        EXPECT_TRUE(replicas[i]->start().ok());
      }
      for (auto* r : replicas) addresses.push_back(r->address());
      store = std::make_unique<store::StoreClient>(*client, addresses);
    }

    // One deterministic workload; returns every read outcome, encoded.
    std::vector<std::string> run() {
      util::Bytes all_bytes;
      for (int i = 0; i < 256; ++i)
        all_bytes.push_back(static_cast<std::uint8_t>(i));
      EXPECT_TRUE(store->put("a/bin", all_bytes).ok());
      EXPECT_TRUE(store->put("a/x", util::to_bytes("first")).ok());
      EXPECT_TRUE(store->put("a/x", util::to_bytes("second")).ok());
      EXPECT_TRUE(store->put("a/gone", util::to_bytes("doomed")).ok());
      EXPECT_TRUE(store->remove("a/gone").ok());
      // Stale-replica window: store3 misses an overwrite, then the
      // partition heals and reads must still see the newest value.
      auto& net = env->env.network();
      net.set_partitioned("store3", "store1", true);
      net.set_partitioned("store3", "store2", true);
      net.set_partitioned("store3", "app-host", true);
      EXPECT_TRUE(store->put("a/stale", util::to_bytes("newest")).ok());
      net.set_partitioned("store3", "store1", false);
      net.set_partitioned("store3", "store2", false);
      net.set_partitioned("store3", "app-host", false);

      std::vector<std::string> results;
      for (const std::string key : {"a/bin", "a/x", "a/gone", "a/stale",
                                    "a/never-written"}) {
        auto got = store->get(key);
        results.push_back(got.ok() ? "ok:" + util::hex_encode(got.value())
                                   : "err:" + got.error().message);
      }
      return results;
    }

    std::unique_ptr<testenv::AceTestEnv> env;
    std::unique_ptr<daemon::AceClient> client;
    std::vector<std::unique_ptr<daemon::DaemonHost>> hosts;
    std::vector<store::PersistentStoreDaemon*> replicas;
    std::vector<net::Address> addresses;
    std::unique_ptr<store::StoreClient> store;
  };

  MiniCluster with_digests(true);
  MiniCluster without_digests(false);
  const auto digest_results = with_digests.run();
  const auto serial_results = without_digests.run();
  EXPECT_EQ(digest_results, serial_results);
  EXPECT_GE(
      with_digests.env->env.metrics().counter("store.digest_reads").value(),
      1u);
  EXPECT_EQ(without_digests.env->env.metrics()
                .counter("store.digest_reads")
                .value(),
            0u);
}

// --------------------------------------------------------------- durability

TEST(StoreOptionsValidationTest, RejectsContradictoryConfigs) {
  store::StoreOptions good;
  EXPECT_TRUE(store::validate_store_options(good).ok());

  auto expect_invalid = [](store::StoreOptions bad) {
    auto st = store::validate_store_options(bad);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, util::Errc::invalid);
    // Clear config errors name themselves as such.
    EXPECT_NE(st.error().message.find("store config"), std::string::npos)
        << st.error().message;
  };
  store::StoreOptions bad;
  bad.write_quorum = 4;  // W > N: no schedule of acks can ever satisfy it
  expect_invalid(bad);
  bad = {};
  bad.read_quorum = 4;  // R > N
  expect_invalid(bad);
  bad = {};
  bad.read_quorum = 0;  // a read must consult at least one copy
  expect_invalid(bad);
  bad = {};
  bad.replication = 0;
  expect_invalid(bad);
  bad = {};
  bad.vnodes = 0;
  expect_invalid(bad);
  bad = {};
  bad.merkle_depth = 0;
  expect_invalid(bad);
  bad = {};
  bad.merkle_depth = 30;  // 2^30 buckets is a typo, not a config
  expect_invalid(bad);
  bad = {};
  bad.scan_limit = 0;  // a page must hold at least one key
  expect_invalid(bad);
  bad = {};
  bad.scan_limit_max = 0;
  expect_invalid(bad);
  bad = {};
  bad.scan_limit = 512;
  bad.scan_limit_max = 256;  // default page larger than the allowed max
  expect_invalid(bad);
  bad = {};
  bad.list_max_keys = 0;
  expect_invalid(bad);
}

// Crash-consistent durable store: each replica journals to its own
// fault-injectable SimDisk; power cycles wipe memory and recovery must
// rebuild it from snapshot + WAL.
class DurableStoreTest : public ::testing::Test {
 protected:
  void start_cluster(store::StoreOptions base) {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("app-host", "svc/app");
    for (int i = 0; i < 3; ++i) {
      disks_.push_back(std::make_shared<io::SimDisk>(7000 + i));
      hosts_.push_back(std::make_unique<daemon::DaemonHost>(
          deployment_->env, "store" + std::to_string(i + 1)));
      daemon::DaemonConfig c;
      c.name = "store" + std::to_string(i + 1);
      c.room = "machine-room";
      c.port = 6000;
      store::StoreOptions opts = base;
      opts.disk = disks_[i];
      replicas_.push_back(&hosts_.back()->add_daemon<store::PersistentStoreDaemon>(
          c, i + 1, opts));
    }
    for (int i = 0; i < 3; ++i) {
      std::vector<net::Address> peers;
      for (int j = 0; j < 3; ++j)
        if (j != i) peers.push_back(replicas_[j]->address());
      replicas_[i]->set_peers(peers);
      ASSERT_TRUE(replicas_[i]->start().ok());
    }
    for (auto* r : replicas_) addresses_.push_back(r->address());
  }

  // Machine power loss: the process dies AND the disk loses (or tears,
  // if armed) its un-fsynced tails. Memory is gone; disk is the contract.
  void power_off(int i) {
    replicas_[i]->crash();
    disks_[i]->crash();
  }
  void power_on(int i) { ASSERT_TRUE(replicas_[i]->start().ok()); }

  std::size_t total_hints() const {
    std::size_t n = 0;
    for (auto* r : replicas_) n += r->hints_pending();
    return n;
  }

  bool converged() const {
    return total_hints() == 0 &&
           replicas_[0]->merkle_root() == replicas_[1]->merkle_root() &&
           replicas_[1]->merkle_root() == replicas_[2]->merkle_root();
  }

  void wait_converged() {
    bool ok = false;
    for (int i = 0; i < 1000 && !ok; ++i) {
      ok = converged();
      if (!ok) std::this_thread::sleep_for(10ms);
    }
    ASSERT_TRUE(ok) << "cluster did not converge";
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
  std::vector<std::shared_ptr<io::SimDisk>> disks_;
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts_;
  std::vector<store::PersistentStoreDaemon*> replicas_;
  std::vector<net::Address> addresses_;
};

TEST_F(DurableStoreTest, ContradictoryOptionsAlsoFailDaemonStart) {
  deployment_ = std::make_unique<testenv::AceTestEnv>();
  ASSERT_TRUE(deployment_->start().ok());
  hosts_.push_back(std::make_unique<daemon::DaemonHost>(deployment_->env,
                                                        "badstore"));
  daemon::DaemonConfig c;
  c.name = "badstore";
  c.room = "machine-room";
  c.port = 6000;
  store::StoreOptions bad;
  bad.write_quorum = 4;  // > replication
  auto& daemon =
      hosts_.back()->add_daemon<store::PersistentStoreDaemon>(c, 1, bad);
  auto st = daemon.start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, util::Errc::invalid);
}

TEST_F(DurableStoreTest, AckedWritesSurviveClusterWidePowerLoss) {
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 2;
  start_cluster(opts);
  store::StoreClient store(*client_, addresses_);

  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(store.put("pw/" + std::to_string(i),
                          util::to_bytes("v" + std::to_string(i)))
                    .ok());

  // Roll replica 1 into a snapshot so recovery exercises snapshot + WAL,
  // via the operator command (replicas 2-3 recover from WAL alone).
  CmdLine compact("storeCompact");
  auto creply = client_->call(addresses_[0], compact);
  ASSERT_TRUE(creply.ok() && cmdlang::is_ok(creply.value()));
  EXPECT_GE(creply->get_integer("records"), 50);

  // Whole-machine-room power loss: all three replicas at once. Nothing
  // survives in memory — what reads back is what the disks held.
  for (int i = 0; i < 3; ++i) power_off(i);
  for (int i = 0; i < 3; ++i) power_on(i);

  for (int i = 0; i < 50; ++i) {
    auto got = store.get("pw/" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "pw/" << i << " lost across power cycle";
    EXPECT_EQ(util::to_string(got.value()), "v" + std::to_string(i));
  }

  // Replica 1 recovered from its snapshot; its generation moved past 0.
  auto rs = replicas_[0]->last_recovery();
  EXPECT_GE(rs.generation, 1);
  EXPECT_GE(rs.snapshot_records, 50u);
  EXPECT_GE(replicas_[1]->last_recovery().wal_records, 50u);

  // storeWalStats reports the durable plane; recoveries counts both the
  // boot-time (empty-disk) recovery and the real one.
  CmdLine stats("storeWalStats");
  auto reply = client_->call(addresses_[0], stats);
  ASSERT_TRUE(reply.ok() && cmdlang::is_ok(reply.value()));
  EXPECT_EQ(reply->get_text("durable"), "yes");
  EXPECT_GE(reply->get_integer("recoveries"), 2);
  EXPECT_GE(reply->get_integer("compactions"), 1);
  EXPECT_GE(
      deployment_->env.metrics().counter("store.recoveries").value(), 6u);
  EXPECT_GE(
      deployment_->env.metrics().counter("store.wal_appends").value(), 150u);
  EXPECT_GE(
      deployment_->env.metrics().counter("store.wal_fsyncs").value(), 1u);
}

TEST_F(DurableStoreTest, TornWalTailIsDetectedDroppedAndRepaired) {
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 2;
  opts.probe_interval = std::chrono::milliseconds(100);
  start_cluster(opts);
  store::StoreClient store(*client_, addresses_);

  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(
        store.put("early/" + std::to_string(i), util::to_bytes("e")).ok());

  // From here on replica 1's disk lies about fsync: acked writes stay in
  // the volatile tail. A torn power loss then shreds that tail mid-record.
  disks_[0]->arm_fsync_drop(-1);
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(
        store.put("late/" + std::to_string(i), util::to_bytes("l")).ok());
  disks_[0]->arm_torn_tail();
  power_off(0);
  power_on(0);

  // Recovery detected the torn tail by CRC and chopped it off.
  auto rs = replicas_[0]->last_recovery();
  EXPECT_GE(rs.torn_tails, 1u);
  EXPECT_GT(rs.torn_bytes, 0u);
  EXPECT_GE(deployment_->env.metrics()
                .counter("store.wal_torn_tail_dropped")
                .value(),
            1u);

  // The fsynced prefix survived locally...
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(replicas_[0]->object("early/" + std::to_string(i)).has_value())
        << "early/" << i;
  // ...and every acked write still reads back (W=2 put a durable copy on a
  // peer), with anti-entropy refilling replica 1's lost tail.
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(store.get("late/" + std::to_string(i)).ok()) << "late/" << i;
  bool refilled = false;
  for (int i = 0; i < 600 && !refilled; ++i) {
    refilled = true;
    for (int k = 0; k < 8; ++k)
      refilled = refilled &&
                 replicas_[0]->object("late/" + std::to_string(k)).has_value();
    if (!refilled) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(refilled) << "anti-entropy did not repair the torn tail";
}

TEST_F(DurableStoreTest, CorruptSnapshotFallsBackAGeneration) {
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 2;
  start_cluster(opts);
  store::StoreClient store(*client_, addresses_);

  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(
        store.put("a/" + std::to_string(i), util::to_bytes("1")).ok());
  auto compacted = replicas_[0]->compact_now();
  ASSERT_TRUE(compacted.ok());
  EXPECT_GE(compacted.value(), 10);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(
        store.put("b/" + std::to_string(i), util::to_bytes("2")).ok());

  // Latent media corruption in the published snapshot. Recovery must
  // refuse it (CRC) and fall back to the retained previous generation's
  // chain — here the full WAL history, which still covers everything.
  ASSERT_TRUE(disks_[0]->inject_bit_rot("store1.snap."));
  power_off(0);
  power_on(0);

  auto rs = replicas_[0]->last_recovery();
  EXPECT_GE(rs.snapshot_fallbacks, 1u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(replicas_[0]->object("a/" + std::to_string(i)).has_value())
        << "a/" << i;
    EXPECT_TRUE(replicas_[0]->object("b/" + std::to_string(i)).has_value())
        << "b/" << i;
  }
  EXPECT_GE(
      deployment_->env.metrics().counter("store.snapshot_fallbacks").value(),
      1u);
}

TEST_F(DurableStoreTest, HintsSurviveCoordinatorPowerLoss) {
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.probe_interval = std::chrono::milliseconds(100);
  start_cluster(opts);
  store::StoreClient store(*client_, addresses_);

  hosts_[2]->fail();  // replica 3's machine drops off the network
  ASSERT_TRUE(store.put("hinted/k", util::to_bytes("v")).ok());
  ASSERT_GE(replicas_[0]->hints_pending(), 1u)
      << "coordinator should hold the hint on a 3-node ring";

  // The coordinator loses power before it can hand the write home. The
  // hint was WAL-logged and fsynced before the ack, so the handoff
  // obligation must survive the power cycle.
  power_off(0);
  power_on(0);
  EXPECT_GE(replicas_[0]->hints_pending(), 1u)
      << "hint lost across power cycle";

  hosts_[2]->restore();
  ASSERT_TRUE(replicas_[2]->start().ok());
  bool drained = false;
  for (int i = 0; i < 600 && !drained; ++i) {
    drained = replicas_[2]->object("hinted/k").has_value() &&
              total_hints() == 0;
    if (!drained) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(drained) << "recovered hint did not drain to its owner";
  EXPECT_EQ(util::to_string(replicas_[2]->object("hinted/k")->data), "v");
}

// The durability claim under *combined* chaos: machine power cycles
// (process + disk crash) interleaved with disk faults (torn tails, lying
// fsyncs) while compaction races the write storm. Every acknowledged write
// must read back — at its value or a later one — both after the storm and
// after one final whole-cluster power cycle, which proves the surviving
// state is on disk rather than in memory. Replay with ACE_CHAOS_SEED.
TEST_F(DurableStoreTest, ChaosPowerCycleTortureNeverLosesAckedWrites) {
  store::StoreOptions opts;
  opts.write_quorum = 2;
  opts.read_quorum = 2;
  opts.probe_interval = std::chrono::milliseconds(100);
  opts.compact_wal_bytes = 16u << 10;  // compact often, mid-storm
  start_cluster(opts);
  store::StoreClient store(*client_, addresses_);

  chaos::ScheduleParams params;
  params.duration = std::chrono::milliseconds(2500);
  params.mean_interval = std::chrono::milliseconds(250);
  params.min_fault = std::chrono::milliseconds(200);
  params.max_fault = std::chrono::milliseconds(700);
  params.service_cooldown = std::chrono::milliseconds(300);
  params.weight_service_crash = 2;
  params.weight_link_down = 0;
  params.weight_host_isolate = 0;
  params.weight_latency_spike = 0;
  params.weight_loss_burst = 0;
  params.weight_disk_fault = 3;
  params.disk_bit_rot = false;  // torn tails + dropped fsyncs (see E19b)
  params.fsync_drop_count = 2;
  params.max_concurrent_crashes = 1;  // keep a W=2 majority alive
  chaos::Targets targets;
  targets.services = {"store1", "store2", "store3"};
  targets.hosts = {"store1", "store2", "store3"};
  targets.disks = {"store1", "store2", "store3"};
  auto schedule =
      chaos::generate_schedule(chaos::seed_from_env(0xd15c), params, targets);
  int disk_faults = 0, crashes = 0;
  for (const auto& e : schedule.events) {
    if (e.kind == chaos::FaultKind::service_crash) ++crashes;
    if (e.kind == chaos::FaultKind::disk_torn_tail ||
        e.kind == chaos::FaultKind::disk_fsync_drop)
      ++disk_faults;
  }
  ASSERT_GT(crashes, 0) << "seed " << schedule.seed << " crashed nothing";
  ASSERT_GT(disk_faults, 0) << "seed " << schedule.seed << " hurt no disk";

  chaos::ChaosEngine engine(deployment_->env, schedule);
  for (int i = 0; i < 3; ++i) {
    const std::string name = "store" + std::to_string(i + 1);
    engine.add_service(name, replicas_[i]);
    engine.add_disk(name, disks_[i].get());  // crash = machine power event
  }

  std::mutex acked_mu;
  std::map<std::string, int> acked;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      const std::string key = "t/" + std::to_string(i % 64);
      if (store.put(key, util::to_bytes("v" + std::to_string(i))).ok()) {
        std::scoped_lock lock(acked_mu);
        acked[key] = i;
      }
      ++i;
      std::this_thread::sleep_for(1ms);
    }
  });

  engine.start();
  engine.join();
  stop.store(true);
  writer.join();

  wait_converged();

  auto check_all = [&](const char* when) {
    std::size_t checked = 0;
    for (const auto& [key, seq] : acked) {
      auto got = store.get(key);
      ASSERT_TRUE(got.ok()) << key << " lost " << when << " (seed "
                            << schedule.seed << ")";
      const std::string value = util::to_string(got.value());
      ASSERT_TRUE(value.size() > 1 && value[0] == 'v') << value;
      EXPECT_GE(std::stoi(value.substr(1)), seq)
          << key << " rolled back " << when << " (seed " << schedule.seed
          << ")";
      ++checked;
    }
    EXPECT_GT(checked, 0u) << "storm acknowledged no writes";
  };
  check_all("after the storm");

  // Nothing read back so far is allowed to live only in memory.
  for (int i = 0; i < 3; ++i) power_off(i);
  for (int i = 0; i < 3; ++i) power_on(i);
  wait_converged();
  check_all("after the final power cycle");

  auto& metrics = deployment_->env.metrics();
  EXPECT_GE(metrics.counter("chaos.disk_faults").value(), 1u);
  EXPECT_GE(metrics.counter("store.recoveries").value(),
            static_cast<std::uint64_t>(3 + crashes + 3));
}

// --------------------------------------------------------------- robustness

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("ops", "user/ops");
    work_host_ =
        std::make_unique<daemon::DaemonHost>(deployment_->env, "worker");

    auto& hal = work_host_->add_daemon<services::HalDaemon>(cfg("hal"));
    auto& sal = work_host_->add_daemon<services::SalDaemon>(cfg("sal"));
    ASSERT_TRUE(hal.start().ok());
    ASSERT_TRUE(sal.start().ok());
    hal_ = &hal;
  }

  daemon::DaemonConfig cfg(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "machine-room";
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
  std::unique_ptr<daemon::DaemonHost> work_host_;
  services::HalDaemon* hal_ = nullptr;
};

TEST_F(RobustnessTest, RestartServiceIsRelaunchedAfterCrash) {
  // The managed "fragile" service: each relaunch constructs a fresh daemon.
  daemon::DaemonConfig fragile_cfg = cfg("fragile");
  fragile_cfg.lease = 300ms;
  fragile_cfg.lease_renew = 100ms;
  auto* fragile = &work_host_->add_daemon<services::HrmDaemon>(fragile_cfg);
  ASSERT_TRUE(fragile->start().ok());

  std::atomic<int> launches{0};
  hal_->register_launchable("fragile", [&]() -> util::Status {
    daemon::DaemonConfig c = cfg("fragile");
    c.lease = 300ms;
    c.lease_renew = 100ms;
    c.port = 0;
    auto& revived = work_host_->add_daemon<services::HrmDaemon>(c);
    launches++;
    return revived.start();
  });

  auto& rm = work_host_->add_daemon<store::RobustnessManagerDaemon>(cfg("rm"));
  ASSERT_TRUE(rm.start().ok());

  CmdLine manage("rmRegister");
  manage.arg("name", Word{"fragile"});
  manage.arg("kind", Word{"restart"});
  manage.arg("host", "worker");
  ASSERT_TRUE(client_->call(rm.address(), manage, daemon::kCallOk).ok());

  fragile->crash();

  // Lease expiry -> ASD serviceExpired notification -> RM -> SAL -> HAL.
  // `launches` flips as soon as the HAL launchable runs, but the RM only
  // counts the restart once the salLaunchService reply makes it back up
  // the chain — poll for both before asserting.
  bool relaunched = false;
  for (int i = 0; i < 400 && !relaunched; ++i) {
    relaunched = launches.load() > 0 && rm.total_restarts() >= 1;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(relaunched);
  EXPECT_GE(rm.total_restarts(), 1);

  // The revived instance is findable through the ASD again.
  bool visible = false;
  for (int i = 0; i < 200 && !visible; ++i) {
    visible = services::AsdClient(*client_, deployment_->env.asd_address).lookup("fragile")
                  .ok();
    if (!visible) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(visible);
}

TEST_F(RobustnessTest, UnmanagedServicesAreNotRelaunched) {
  daemon::DaemonConfig c = cfg("unmanaged");
  c.lease = 300ms;
  c.lease_renew = 100ms;
  auto* svc = &work_host_->add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc->start().ok());

  auto& rm = work_host_->add_daemon<store::RobustnessManagerDaemon>(cfg("rm"));
  ASSERT_TRUE(rm.start().ok());

  svc->crash();
  std::this_thread::sleep_for(800ms);
  EXPECT_EQ(rm.total_restarts(), 0);
}
