// Failure injection and property-style tests across the stack:
//  * network partitions between daemons and the ASD (lease expiry path),
//  * dead notification subscribers being dropped,
//  * randomized command-language round trips (property: parse(serialize(x))
//    == x for arbitrary generated commands),
//  * store convergence under concurrent writers through different replicas,
//  * datagram loss on media streams.
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "cmdlang/parser.hpp"
#include "media/audio_services.hpp"
#include "services/monitors.hpp"
#include "store/persistent_store.hpp"
#include "store/store_client.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

// ------------------------------------------------ cmdlang round-trip property

namespace {

// Generates a random but grammatically valid command from a seed.
cmdlang::CmdLine random_command(util::Rng& rng) {
  auto random_word = [&] {
    std::string w = "w";
    w += rng.next_name(1 + rng.next_below(8));
    return w;
  };
  auto random_scalar = [&]() -> cmdlang::Value {
    switch (rng.next_below(4)) {
      case 0: return cmdlang::Value(rng.next_range(-1000000, 1000000));
      case 1: return cmdlang::Value(rng.next_gaussian() * 1000.0);
      case 2: return cmdlang::Value(cmdlang::Word{random_word()});
      default: {
        std::string s;
        std::size_t n = rng.next_below(20);
        for (std::size_t i = 0; i < n; ++i)
          s.push_back(static_cast<char>(32 + rng.next_below(95)));
        return cmdlang::Value(s);
      }
    }
  };
  auto random_vector = [&] {
    cmdlang::Vector v;
    std::size_t n = 1 + rng.next_below(5);
    switch (rng.next_below(3)) {
      case 0: {
        v.element_type = cmdlang::ValueType::integer;
        for (std::size_t i = 0; i < n; ++i)
          v.elements.emplace_back(rng.next_range(-100, 100));
        break;
      }
      case 1: {
        v.element_type = cmdlang::ValueType::real;
        for (std::size_t i = 0; i < n; ++i)
          v.elements.emplace_back(rng.next_double() * 100.0);
        break;
      }
      default: {
        v.element_type = cmdlang::ValueType::word;
        for (std::size_t i = 0; i < n; ++i)
          v.elements.emplace_back(cmdlang::Word{random_word()});
      }
    }
    return v;
  };

  cmdlang::CmdLine cmd(random_word());
  std::size_t args = rng.next_below(8);
  for (std::size_t i = 0; i < args; ++i) {
    std::string name = "a" + std::to_string(i);
    switch (rng.next_below(6)) {
      case 0:
      case 1:
      case 2:
        cmd.arg(name, random_scalar());
        break;
      case 3:
      case 4:
        cmd.arg(name, random_vector());
        break;
      default: {
        cmdlang::Array arr;
        std::size_t vectors = 1 + rng.next_below(3);
        for (std::size_t k = 0; k < vectors; ++k)
          arr.vectors.push_back(random_vector());
        cmd.arg(name, std::move(arr));
      }
    }
  }
  return cmd;
}

}  // namespace

class CmdLangRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(CmdLangRoundTripProperty, ParseSerializeIsIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int i = 0; i < 50; ++i) {
    cmdlang::CmdLine original = random_command(rng);
    std::string wire = original.to_string();
    auto parsed = cmdlang::Parser::parse(wire);
    ASSERT_TRUE(parsed.ok()) << wire << " : " << parsed.error().to_string();
    // Value identity modulo the word/string quoting rule: re-serialize and
    // compare strings (stable fixed point).
    EXPECT_EQ(parsed->to_string(), wire) << wire;
    auto reparsed = cmdlang::Parser::parse(parsed->to_string());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.value(), parsed.value()) << wire;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmdLangRoundTripProperty,
                         ::testing::Range(0, 10));

// -------------------------------------------------------- partition failures

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("laptop", "user/tester");
  }

  daemon::DaemonConfig config(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "hawk";
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
};

TEST_F(FailureTest, PartitionFromAsdExpiresLease) {
  daemon::DaemonHost host(deployment_->env, "island");
  daemon::DaemonConfig c = config("islander");
  c.lease = 300ms;
  c.lease_renew = 100ms;
  auto& svc = host.add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc.start().ok());
  ASSERT_TRUE(services::AsdClient(*client_, deployment_->env.asd_address).lookup("islander")
                  .ok());

  // The daemon still runs, but its renewals can no longer reach the ASD.
  deployment_->env.network().set_partitioned("island", "infra", true);
  std::this_thread::sleep_for(700ms);
  EXPECT_TRUE(svc.running());  // alive...
  EXPECT_FALSE(services::AsdClient(*client_, deployment_->env.asd_address).lookup("islander")
                   .ok());  // ...but reaped (paper §2.4 failure model)

  // Healing the partition lets the next renewal fail (not registered), but
  // the service remains reachable directly.
  deployment_->env.network().set_partitioned("island", "infra", false);
  auto direct = client_->call(svc.address(), CmdLine("hrmStatus"), daemon::kCallOk);
  EXPECT_TRUE(direct.ok());
}

TEST_F(FailureTest, DeadNotificationSubscriberIsDropped) {
  daemon::DaemonHost host(deployment_->env, "work");
  auto& source = host.add_daemon<services::HrmDaemon>(config("src"));
  auto& sink = host.add_daemon<services::HrmDaemon>(config("snk"));
  ASSERT_TRUE(source.start().ok());
  ASSERT_TRUE(sink.start().ok());

  CmdLine sub("addNotification");
  sub.arg("command", Word{"hrmStatus"});
  sub.arg("service", sink.address().to_string());
  sub.arg("method", Word{"ping"});
  ASSERT_TRUE(client_->call(source.address(), sub, daemon::kCallOk).ok());

  auto entries = [&] {
    auto r = client_->call(source.address(), CmdLine("listNotifications"), daemon::kCallOk);
    EXPECT_TRUE(r.ok());
    return r.ok() ? r->get_vector("entries")->elements.size() : 0u;
  };
  EXPECT_EQ(entries(), 1u);

  // Kill the subscriber; repeated notification failures must eventually
  // clean up the subscription list.
  sink.crash();
  for (int i = 0; i < 10 && entries() > 0; ++i) {
    (void)client_->call(source.address(), CmdLine("hrmStatus"), daemon::kCallOk);
    std::this_thread::sleep_for(100ms);
  }
  EXPECT_EQ(entries(), 0u);
}

TEST_F(FailureTest, NoReplyCommandsLeaveChannelUsable) {
  daemon::DaemonHost host(deployment_->env, "work");
  auto& svc = host.add_daemon<services::HrmDaemon>(config("quiet"));
  ASSERT_TRUE(svc.start().ok());

  // Interleave fire-and-forget sends with normal calls on one channel.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->send_only(svc.address(), CmdLine("ping")).ok());
    auto r = client_->call(svc.address(), CmdLine("hrmStatus"), daemon::kCallOk);
    ASSERT_TRUE(r.ok()) << "iteration " << i;
    EXPECT_EQ(r->get_text("host"), "work");
  }
}

TEST_F(FailureTest, AnonymousPlaintextCallerIsDeniedUnderAuthorization) {
  // Plaintext channels carry no certificate: the caller is "anonymous"
  // and must be denied when authorization is enforced.
  deployment_->env.channel_options().encrypt = false;
  keynote::Assertion policy;
  policy.authorizer = keynote::kPolicyAuthorizer;
  policy.licensees = keynote::licensee_key("user/tester");
  deployment_->env.add_policy(policy);

  daemon::DaemonHost host(deployment_->env, "work");
  daemon::DaemonConfig c = config("guarded");
  c.enforce_authorization = true;
  auto& svc = host.add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc.start().ok());

  auto anon = deployment_->make_client("anon-pc", "user/tester");
  auto r = anon->call(svc.address(), CmdLine("hrmStatus"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cmdlang::is_error(r.value()));
  EXPECT_EQ(cmdlang::reply_error(r.value()).code, util::Errc::auth_error);
}

// ----------------------------------------------------- store under contention

TEST_F(FailureTest, StoreConvergesUnderConcurrentWriters) {
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts;
  std::vector<store::PersistentStoreDaemon*> replicas;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(std::make_unique<daemon::DaemonHost>(
        deployment_->env, "store" + std::to_string(i)));
    daemon::DaemonConfig c = config("store" + std::to_string(i));
    c.port = 6000;
    replicas.push_back(
        &hosts.back()->add_daemon<store::PersistentStoreDaemon>(c, i + 1));
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<net::Address> peers;
    for (int j = 0; j < 3; ++j)
      if (j != i) peers.push_back(replicas[j]->address());
    replicas[i]->set_peers(peers);
    ASSERT_TRUE(replicas[i]->start().ok());
  }

  // Three writers, each bound to a different replica, hammer the same keys.
  std::vector<std::jthread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      auto client = deployment_->make_client("writer" + std::to_string(w),
                                             "svc/writer");
      store::StoreClient store(*client, {replicas[w]->address()});
      for (int i = 0; i < 50; ++i) {
        (void)store.put("shared" + std::to_string(i % 5),
                        util::to_bytes("w" + std::to_string(w) + "-" +
                                       std::to_string(i)));
      }
    });
  }
  writers.clear();  // join

  // Anti-entropy pass to settle any replication lost to races.
  for (auto* r : replicas) (void)r->sync_from_peers();

  // Convergence: all replicas agree on version and content of every key.
  for (int k = 0; k < 5; ++k) {
    std::string key = "shared" + std::to_string(k);
    auto expected = replicas[0]->object(key);
    ASSERT_TRUE(expected.has_value()) << key;
    for (int i = 1; i < 3; ++i) {
      auto got = replicas[i]->object(key);
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(got->version, expected->version) << key;
      EXPECT_EQ(got->data, expected->data) << key;
    }
  }
}

// ------------------------------------------------------- lossy media streams

TEST_F(FailureTest, AudioPipelineSurvivesDatagramLoss) {
  daemon::DaemonHost host(deployment_->env, "av");
  // 20% loss on the loopback path is impossible (loopback is clean), so
  // run capture and play on different hosts with a lossy link.
  daemon::DaemonHost far_host(deployment_->env, "far");
  net::LinkPolicy lossy;
  lossy.datagram_loss = 0.2;
  deployment_->env.network().set_link("av", "far", lossy);

  auto& cap = host.add_daemon<media::AudioCaptureDaemon>(config("cap"),
                                                         "mic");
  auto& play = far_host.add_daemon<media::AudioPlayDaemon>(config("spk"));
  ASSERT_TRUE(cap.start().ok());
  ASSERT_TRUE(play.start().ok());
  cap.add_sink(play.data_address());

  constexpr int kFrames = 200;
  cap.capture_push(
      media::sine_wave(440, 8000, kFrames * media::kFrameSamples, 0));
  std::this_thread::sleep_for(500ms);
  std::uint64_t delivered = play.frames_played();
  // Best-effort: most frames arrive, some are lost, nothing wedges.
  EXPECT_GT(delivered, kFrames / 2u);
  EXPECT_LT(delivered, static_cast<std::uint64_t>(kFrames));
}

// ------------------------------------------------ authorization lifecycles

TEST_F(FailureTest, RepeatedAuthDenialsRaiseSecurityAlert) {
  keynote::Assertion policy;
  policy.authorizer = keynote::kPolicyAuthorizer;
  policy.licensees = keynote::licensee_key("user/alice");
  deployment_->env.add_policy(policy);

  daemon::DaemonHost host(deployment_->env, "work");
  daemon::DaemonConfig c = config("guarded");
  c.enforce_authorization = true;
  auto& svc = host.add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc.start().ok());

  auto mallory = deployment_->make_client("mallory-pc", "user/mallory");
  for (int i = 0; i < 3; ++i) {
    auto r = mallory->call(svc.address(), CmdLine("hrmStatus"));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(cmdlang::is_error(r.value()));
  }

  // The denials reach the Network Logger as security events, which raises
  // an alert after the configured threshold (paper §4.14).
  bool alerted = false;
  for (int i = 0; i < 200 && !alerted; ++i) {
    alerted = deployment_->net_logger->alerts_raised() > 0;
    if (!alerted) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(alerted);
}

TEST_F(FailureTest, CredentialCacheExpiresAndRevocationTakesEffect) {
  deployment_->env.register_principal("admin-key");
  keynote::Assertion policy;
  policy.authorizer = keynote::kPolicyAuthorizer;
  policy.licensees = keynote::licensee_key("admin-key");
  deployment_->env.add_policy(policy);
  ASSERT_TRUE(services::grant_credential(
                  *client_, deployment_->env.auth_db_address,
                  deployment_->env, "admin-key", "user/bob", "")
                  .ok());

  daemon::DaemonHost host(deployment_->env, "work");
  daemon::DaemonConfig c = config("guarded");
  c.enforce_authorization = true;
  c.credential_cache_ttl = 200ms;
  auto& svc = host.add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc.start().ok());

  auto bob = deployment_->make_client("bob-pc", "user/bob");
  auto allowed = bob->call(svc.address(), CmdLine("hrmStatus"), daemon::kCallOk);
  ASSERT_TRUE(allowed.ok()) << (allowed.ok() ? "" : allowed.error().to_string());

  // Revoke at the Authorization DB. Within the cache TTL the old grant may
  // still apply; after expiry it must not.
  CmdLine revoke("credRemove");
  revoke.arg("principal", "user/bob");
  ASSERT_TRUE(
      client_->call(deployment_->env.auth_db_address, revoke, daemon::kCallOk).ok());
  std::this_thread::sleep_for(300ms);
  auto denied = bob->call(svc.address(), CmdLine("hrmStatus"));
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(cmdlang::is_error(denied.value()));
  EXPECT_EQ(cmdlang::reply_error(denied.value()).code, util::Errc::auth_error);
}
