// Failure injection and property-style tests across the stack:
//  * network partitions between daemons and the ASD (lease expiry path),
//  * dead notification subscribers being dropped,
//  * randomized command-language round trips (property: parse(serialize(x))
//    == x for arbitrary generated commands),
//  * store convergence under concurrent writers through different replicas,
//  * datagram loss on media streams.
#include <gtest/gtest.h>

#include <set>

#include "ace_test_env.hpp"
#include "chaos/chaos.hpp"
#include "cmdlang/parser.hpp"
#include "media/audio_services.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "store/persistent_store.hpp"
#include "store/robustness.hpp"
#include "store/store_client.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

// ------------------------------------------------ cmdlang round-trip property

namespace {

// Generates a random but grammatically valid command from a seed.
cmdlang::CmdLine random_command(util::Rng& rng) {
  auto random_word = [&] {
    std::string w = "w";
    w += rng.next_name(1 + rng.next_below(8));
    return w;
  };
  auto random_scalar = [&]() -> cmdlang::Value {
    switch (rng.next_below(4)) {
      case 0: return cmdlang::Value(rng.next_range(-1000000, 1000000));
      case 1: return cmdlang::Value(rng.next_gaussian() * 1000.0);
      case 2: return cmdlang::Value(cmdlang::Word{random_word()});
      default: {
        std::string s;
        std::size_t n = rng.next_below(20);
        for (std::size_t i = 0; i < n; ++i)
          s.push_back(static_cast<char>(32 + rng.next_below(95)));
        return cmdlang::Value(s);
      }
    }
  };
  auto random_vector = [&] {
    cmdlang::Vector v;
    std::size_t n = 1 + rng.next_below(5);
    switch (rng.next_below(3)) {
      case 0: {
        v.element_type = cmdlang::ValueType::integer;
        for (std::size_t i = 0; i < n; ++i)
          v.elements.emplace_back(rng.next_range(-100, 100));
        break;
      }
      case 1: {
        v.element_type = cmdlang::ValueType::real;
        for (std::size_t i = 0; i < n; ++i)
          v.elements.emplace_back(rng.next_double() * 100.0);
        break;
      }
      default: {
        v.element_type = cmdlang::ValueType::word;
        for (std::size_t i = 0; i < n; ++i)
          v.elements.emplace_back(cmdlang::Word{random_word()});
      }
    }
    return v;
  };

  cmdlang::CmdLine cmd(random_word());
  std::size_t args = rng.next_below(8);
  for (std::size_t i = 0; i < args; ++i) {
    std::string name = "a" + std::to_string(i);
    switch (rng.next_below(6)) {
      case 0:
      case 1:
      case 2:
        cmd.arg(name, random_scalar());
        break;
      case 3:
      case 4:
        cmd.arg(name, random_vector());
        break;
      default: {
        cmdlang::Array arr;
        std::size_t vectors = 1 + rng.next_below(3);
        for (std::size_t k = 0; k < vectors; ++k)
          arr.vectors.push_back(random_vector());
        cmd.arg(name, std::move(arr));
      }
    }
  }
  return cmd;
}

}  // namespace

class CmdLangRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(CmdLangRoundTripProperty, ParseSerializeIsIdentity) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int i = 0; i < 50; ++i) {
    cmdlang::CmdLine original = random_command(rng);
    std::string wire = original.to_string();
    auto parsed = cmdlang::Parser::parse(wire);
    ASSERT_TRUE(parsed.ok()) << wire << " : " << parsed.error().to_string();
    // Value identity modulo the word/string quoting rule: re-serialize and
    // compare strings (stable fixed point).
    EXPECT_EQ(parsed->to_string(), wire) << wire;
    auto reparsed = cmdlang::Parser::parse(parsed->to_string());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.value(), parsed.value()) << wire;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CmdLangRoundTripProperty,
                         ::testing::Range(0, 10));

// -------------------------------------------------------- partition failures

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("laptop", "user/tester");
  }

  daemon::DaemonConfig config(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "hawk";
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
};

TEST_F(FailureTest, PartitionFromAsdExpiresLease) {
  daemon::DaemonHost host(deployment_->env, "island");
  daemon::DaemonConfig c = config("islander");
  c.lease = 300ms;
  c.lease_renew = 100ms;
  auto& svc = host.add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc.start().ok());
  ASSERT_TRUE(services::AsdClient(*client_, deployment_->env.asd_address).lookup("islander")
                  .ok());

  // The daemon still runs, but its renewals can no longer reach the ASD.
  deployment_->env.network().set_partitioned("island", "infra", true);
  std::this_thread::sleep_for(700ms);
  EXPECT_TRUE(svc.running());  // alive...
  EXPECT_FALSE(services::AsdClient(*client_, deployment_->env.asd_address).lookup("islander")
                   .ok());  // ...but reaped (paper §2.4 failure model)

  // Healing the partition lets the next renewal fail (not registered), but
  // the service remains reachable directly.
  deployment_->env.network().set_partitioned("island", "infra", false);
  auto direct = client_->call(svc.address(), CmdLine("hrmStatus"), daemon::kCallOk);
  EXPECT_TRUE(direct.ok());
}

TEST_F(FailureTest, DeadNotificationSubscriberIsDropped) {
  daemon::DaemonHost host(deployment_->env, "work");
  auto& source = host.add_daemon<services::HrmDaemon>(config("src"));
  auto& sink = host.add_daemon<services::HrmDaemon>(config("snk"));
  ASSERT_TRUE(source.start().ok());
  ASSERT_TRUE(sink.start().ok());

  CmdLine sub("addNotification");
  sub.arg("command", Word{"hrmStatus"});
  sub.arg("service", sink.address().to_string());
  sub.arg("method", Word{"ping"});
  ASSERT_TRUE(client_->call(source.address(), sub, daemon::kCallOk).ok());

  auto entries = [&] {
    auto r = client_->call(source.address(), CmdLine("listNotifications"), daemon::kCallOk);
    EXPECT_TRUE(r.ok());
    return r.ok() ? r->get_vector("entries")->elements.size() : 0u;
  };
  EXPECT_EQ(entries(), 1u);

  // Kill the subscriber; repeated notification failures must eventually
  // clean up the subscription list.
  sink.crash();
  for (int i = 0; i < 10 && entries() > 0; ++i) {
    (void)client_->call(source.address(), CmdLine("hrmStatus"), daemon::kCallOk);
    std::this_thread::sleep_for(100ms);
  }
  EXPECT_EQ(entries(), 0u);
}

TEST_F(FailureTest, NoReplyCommandsLeaveChannelUsable) {
  daemon::DaemonHost host(deployment_->env, "work");
  auto& svc = host.add_daemon<services::HrmDaemon>(config("quiet"));
  ASSERT_TRUE(svc.start().ok());

  // Interleave fire-and-forget sends with normal calls on one channel.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->send_only(svc.address(), CmdLine("ping")).ok());
    auto r = client_->call(svc.address(), CmdLine("hrmStatus"), daemon::kCallOk);
    ASSERT_TRUE(r.ok()) << "iteration " << i;
    EXPECT_EQ(r->get_text("host"), "work");
  }
}

TEST_F(FailureTest, AnonymousPlaintextCallerIsDeniedUnderAuthorization) {
  // Plaintext channels carry no certificate: the caller is "anonymous"
  // and must be denied when authorization is enforced.
  deployment_->env.channel_options().encrypt = false;
  keynote::Assertion policy;
  policy.authorizer = keynote::kPolicyAuthorizer;
  policy.licensees = keynote::licensee_key("user/tester");
  deployment_->env.add_policy(policy);

  daemon::DaemonHost host(deployment_->env, "work");
  daemon::DaemonConfig c = config("guarded");
  c.enforce_authorization = true;
  auto& svc = host.add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc.start().ok());

  auto anon = deployment_->make_client("anon-pc", "user/tester");
  auto r = anon->call(svc.address(), CmdLine("hrmStatus"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cmdlang::is_error(r.value()));
  EXPECT_EQ(cmdlang::reply_error(r.value()).code, util::Errc::auth_error);
}

// ----------------------------------------------------- store under contention

TEST_F(FailureTest, StoreConvergesUnderConcurrentWriters) {
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts;
  std::vector<store::PersistentStoreDaemon*> replicas;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(std::make_unique<daemon::DaemonHost>(
        deployment_->env, "store" + std::to_string(i)));
    daemon::DaemonConfig c = config("store" + std::to_string(i));
    c.port = 6000;
    replicas.push_back(
        &hosts.back()->add_daemon<store::PersistentStoreDaemon>(c, i + 1));
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<net::Address> peers;
    for (int j = 0; j < 3; ++j)
      if (j != i) peers.push_back(replicas[j]->address());
    replicas[i]->set_peers(peers);
    ASSERT_TRUE(replicas[i]->start().ok());
  }

  // Three writers, each bound to a different replica, hammer the same keys.
  std::vector<std::jthread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&, w] {
      auto client = deployment_->make_client("writer" + std::to_string(w),
                                             "svc/writer");
      store::StoreClient store(*client, {replicas[w]->address()});
      for (int i = 0; i < 50; ++i) {
        (void)store.put("shared" + std::to_string(i % 5),
                        util::to_bytes("w" + std::to_string(w) + "-" +
                                       std::to_string(i)));
      }
    });
  }
  writers.clear();  // join

  // Anti-entropy pass to settle any replication lost to races.
  for (auto* r : replicas) (void)r->sync_from_peers();

  // Convergence: all replicas agree on version and content of every key.
  for (int k = 0; k < 5; ++k) {
    std::string key = "shared" + std::to_string(k);
    auto expected = replicas[0]->object(key);
    ASSERT_TRUE(expected.has_value()) << key;
    for (int i = 1; i < 3; ++i) {
      auto got = replicas[i]->object(key);
      ASSERT_TRUE(got.has_value()) << key;
      EXPECT_EQ(got->version, expected->version) << key;
      EXPECT_EQ(got->data, expected->data) << key;
    }
  }
}

// ------------------------------------------------------- lossy media streams

TEST_F(FailureTest, AudioPipelineSurvivesDatagramLoss) {
  daemon::DaemonHost host(deployment_->env, "av");
  // 20% loss on the loopback path is impossible (loopback is clean), so
  // run capture and play on different hosts with a lossy link.
  daemon::DaemonHost far_host(deployment_->env, "far");
  net::LinkPolicy lossy;
  lossy.datagram_loss = 0.2;
  deployment_->env.network().set_link("av", "far", lossy);

  auto& cap = host.add_daemon<media::AudioCaptureDaemon>(config("cap"),
                                                         "mic");
  auto& play = far_host.add_daemon<media::AudioPlayDaemon>(config("spk"));
  ASSERT_TRUE(cap.start().ok());
  ASSERT_TRUE(play.start().ok());
  cap.add_sink(play.data_address());

  constexpr int kFrames = 200;
  cap.capture_push(
      media::sine_wave(440, 8000, kFrames * media::kFrameSamples, 0));
  std::this_thread::sleep_for(500ms);
  std::uint64_t delivered = play.frames_played();
  // Best-effort: most frames arrive, some are lost, nothing wedges.
  EXPECT_GT(delivered, kFrames / 2u);
  EXPECT_LT(delivered, static_cast<std::uint64_t>(kFrames));
}

// ------------------------------------------------ authorization lifecycles

TEST_F(FailureTest, RepeatedAuthDenialsRaiseSecurityAlert) {
  keynote::Assertion policy;
  policy.authorizer = keynote::kPolicyAuthorizer;
  policy.licensees = keynote::licensee_key("user/alice");
  deployment_->env.add_policy(policy);

  daemon::DaemonHost host(deployment_->env, "work");
  daemon::DaemonConfig c = config("guarded");
  c.enforce_authorization = true;
  auto& svc = host.add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc.start().ok());

  auto mallory = deployment_->make_client("mallory-pc", "user/mallory");
  for (int i = 0; i < 3; ++i) {
    auto r = mallory->call(svc.address(), CmdLine("hrmStatus"));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(cmdlang::is_error(r.value()));
  }

  // The denials reach the Network Logger as security events, which raises
  // an alert after the configured threshold (paper §4.14).
  bool alerted = false;
  for (int i = 0; i < 200 && !alerted; ++i) {
    alerted = deployment_->net_logger->alerts_raised() > 0;
    if (!alerted) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(alerted);
}

// --------------------------------------------- chaos: schedule determinism

TEST(ChaosSchedule, SameSeedYieldsIdenticalTimeline) {
  chaos::ScheduleParams params;
  params.duration = 10s;
  chaos::Targets targets;
  targets.services = {"svc-a", "svc-b", "svc-c"};
  targets.hosts = {"h1", "h2", "h3", "h4"};

  const std::uint64_t seed = chaos::seed_from_env(0xace5eed);
  auto s1 = chaos::generate_schedule(seed, params, targets);
  auto s2 = chaos::generate_schedule(seed, params, targets);
  EXPECT_EQ(s1.events, s2.events);  // pure function of (seed, params, targets)
  ASSERT_FALSE(s1.events.empty());

  auto s3 = chaos::generate_schedule(seed + 1, params, targets);
  EXPECT_NE(s1.events, s3.events);
}

namespace {

// The open/close bookkeeping key for a fault event, or "" for heal kinds.
std::string fault_open_key(const chaos::FaultEvent& e) {
  using chaos::FaultKind;
  switch (e.kind) {
    case FaultKind::service_crash: return "svc|" + e.a;
    case FaultKind::link_down: return "link|" + e.a + "|" + e.b;
    case FaultKind::host_isolate: return "host|" + e.a;
    case FaultKind::latency_spike: return "lat|" + e.a + "|" + e.b;
    case FaultKind::loss_burst: return "loss|" + e.a + "|" + e.b;
    default: return "";
  }
}

std::string fault_close_key(const chaos::FaultEvent& e) {
  using chaos::FaultKind;
  switch (e.kind) {
    case FaultKind::service_restart: return "svc|" + e.a;
    case FaultKind::link_up: return "link|" + e.a + "|" + e.b;
    case FaultKind::host_heal: return "host|" + e.a;
    case FaultKind::latency_restore: return "lat|" + e.a + "|" + e.b;
    case FaultKind::loss_restore: return "loss|" + e.a + "|" + e.b;
    default: return "";
  }
}

}  // namespace

TEST(ChaosSchedule, EveryFaultIsHealedInsideTheHorizon) {
  chaos::ScheduleParams params;
  params.duration = 8s;
  chaos::Targets targets;
  targets.services = {"s1", "s2"};
  targets.hosts = {"h1", "h2", "h3"};

  for (std::uint64_t base : {1u, 7u, 42u, 1337u}) {
    auto sched =
        chaos::generate_schedule(chaos::seed_from_env(base), params, targets);
    ASSERT_FALSE(sched.events.empty()) << "seed " << base;
    std::set<std::string> open;
    std::chrono::milliseconds prev{0};
    for (const auto& e : sched.events) {
      EXPECT_GE(e.at, prev) << e.to_string();  // sorted
      EXPECT_LT(e.at, params.duration) << e.to_string();
      prev = e.at;
      if (auto k = fault_open_key(e); !k.empty()) {
        EXPECT_TRUE(open.insert(k).second)
            << "fault injected twice without heal: " << e.to_string();
      }
      if (auto k = fault_close_key(e); !k.empty()) {
        EXPECT_EQ(open.erase(k), 1u)
            << "heal without matching fault: " << e.to_string();
      }
    }
    EXPECT_TRUE(open.empty()) << "unhealed faults left at schedule end";
  }
}

TEST(ChaosSchedule, DiskFaultsAreOptInAndDeterministic) {
  chaos::ScheduleParams params;
  params.duration = 8s;
  chaos::Targets targets;
  targets.services = {"s1", "s2"};
  targets.hosts = {"h1", "h2"};

  // Opt-in contract: with the default weight_disk_fault = 0 the schedule
  // must be byte-identical whether or not disks are listed, so every
  // pre-existing (seed, params) replay stays valid.
  auto without = chaos::generate_schedule(11, params, targets);
  targets.disks = {"s1", "s2"};
  auto with_disks_off = chaos::generate_schedule(11, params, targets);
  EXPECT_EQ(without.events, with_disks_off.events);

  params.weight_disk_fault = 3;
  params.fsync_drop_count = 5;
  auto armed = chaos::generate_schedule(11, params, targets);
  EXPECT_EQ(armed.events, chaos::generate_schedule(11, params, targets).events);

  int torn = 0, drops = 0, rot = 0;
  for (const auto& e : armed.events) {
    switch (e.kind) {
      case chaos::FaultKind::disk_torn_tail: ++torn; break;
      case chaos::FaultKind::disk_fsync_drop:
        ++drops;
        EXPECT_EQ(e.count, 5) << e.to_string();
        break;
      case chaos::FaultKind::disk_bit_rot: ++rot; break;
      default: break;
    }
    if (e.kind == chaos::FaultKind::disk_torn_tail ||
        e.kind == chaos::FaultKind::disk_fsync_drop ||
        e.kind == chaos::FaultKind::disk_bit_rot) {
      EXPECT_TRUE(e.a == "s1" || e.a == "s2") << e.to_string();
      EXPECT_TRUE(e.b.empty()) << e.to_string();
    }
  }
  EXPECT_GT(torn + drops + rot, 0) << "weighted disk faults never drawn";

  // Durability-torture mode: bit rot can be excluded (it attacks already
  // durable bytes, a replication-repair story, not a WAL one).
  params.disk_bit_rot = false;
  auto no_rot = chaos::generate_schedule(11, params, targets);
  for (const auto& e : no_rot.events)
    EXPECT_NE(e.kind, chaos::FaultKind::disk_bit_rot) << e.to_string();
}

TEST(ChaosSchedule, RoomPartitionsAreOptInAndDeterministic) {
  chaos::ScheduleParams params;
  params.duration = 8s;
  chaos::Targets targets;
  targets.services = {"s1", "s2"};
  targets.hosts = {"h1", "h2", "h3", "h4"};

  // Opt-in contract, same as disks: with the default
  // weight_room_partition = 0 the schedule must be byte-identical whether
  // or not room groups are listed, so every pre-federation (seed, params)
  // replay stays valid.
  auto without = chaos::generate_schedule(7, params, targets);
  targets.rooms = {{"roomA", {"h1", "h2"}}, {"roomB", {"h3", "h4"}}};
  auto with_rooms_off = chaos::generate_schedule(7, params, targets);
  EXPECT_EQ(without.events, with_rooms_off.events);

  params.weight_room_partition = 8;
  auto armed = chaos::generate_schedule(7, params, targets);
  EXPECT_EQ(armed.events, chaos::generate_schedule(7, params, targets).events);

  // Every partition names two distinct room groups and is healed by a
  // later room_heal carrying the same pair.
  int partitions = 0;
  std::set<std::pair<std::string, std::string>> open_rooms;
  for (const auto& e : armed.events) {
    if (e.kind == chaos::FaultKind::room_partition) {
      ++partitions;
      EXPECT_NE(e.a, e.b) << e.to_string();
      EXPECT_TRUE(e.a == "roomA" || e.a == "roomB") << e.to_string();
      EXPECT_TRUE(e.b == "roomA" || e.b == "roomB") << e.to_string();
      EXPECT_TRUE(open_rooms.insert({e.a, e.b}).second)
          << "room pair partitioned twice without heal: " << e.to_string();
    } else if (e.kind == chaos::FaultKind::room_heal) {
      EXPECT_EQ(open_rooms.erase({e.a, e.b}), 1u)
          << "room heal without matching partition: " << e.to_string();
    }
  }
  EXPECT_GT(partitions, 0) << "weighted room partitions never drawn";
  EXPECT_TRUE(open_rooms.empty()) << "unhealed room partition at horizon";
}

TEST(ChaosSchedule, NoRestartModeLeavesRecoveryToTheFabric) {
  chaos::ScheduleParams params;
  params.duration = 8s;
  params.restart_services = false;
  chaos::Targets targets;
  targets.services = {"s1", "s2"};

  auto sched = chaos::generate_schedule(5, params, targets);
  ASSERT_FALSE(sched.events.empty());
  int crashes = 0;
  for (const auto& e : sched.events) {
    EXPECT_NE(e.kind, chaos::FaultKind::service_restart) << e.to_string();
    if (e.kind == chaos::FaultKind::service_crash) ++crashes;
  }
  EXPECT_GT(crashes, 0);
}

// ------------------------------------------------- chaos: live deployments

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("ops", "user/ops");
  }

  daemon::DaemonConfig cfg(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "machine-room";
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
};

TEST_F(ChaosTest, CircuitBreakerOpensHalfOpensAndCloses) {
  daemon::DaemonHost host(deployment_->env, "brittle");
  auto& svc = host.add_daemon<services::HrmDaemon>(cfg("brittle-svc"));
  ASSERT_TRUE(svc.start().ok());
  const net::Address addr = svc.address();

  auto& metrics = deployment_->env.metrics();
  const auto trips0 = metrics.counter("client.breaker_trips").value();
  const auto closes0 = metrics.counter("client.breaker_closes").value();

  ASSERT_TRUE(client_->call(addr, CmdLine("ping"), daemon::kCallOk).ok());
  svc.crash();

  // Each failed call (no retries, so one attempt each) feeds the breaker;
  // at the threshold it trips open.
  const daemon::CallOptions one_shot{
      .timeout = 300ms, .require_ok = true, .retries = 0, .backoff = 1ms};
  const int threshold = client_->breaker_policy().failure_threshold;
  for (int i = 0; i < threshold; ++i)
    EXPECT_FALSE(client_->call(addr, CmdLine("ping"), one_shot).ok());
  EXPECT_EQ(metrics.counter("client.breaker_trips").value(), trips0 + 1);
  EXPECT_EQ(metrics.gauge("client.breaker_open").value(), 1);

  // While open, calls fail fast without touching the dead destination.
  const auto rejected0 = metrics.counter("client.breaker_rejected").value();
  auto fast = client_->call(addr, CmdLine("ping"), one_shot);
  ASSERT_FALSE(fast.ok());
  EXPECT_EQ(fast.error().code, util::Errc::unavailable);
  EXPECT_GT(metrics.counter("client.breaker_rejected").value(), rejected0);

  // Relaunch the service; after the cooldown the half-open probe goes
  // through, succeeds, and the breaker closes again.
  ASSERT_TRUE(svc.start().ok());
  std::this_thread::sleep_for(client_->breaker_policy().cooldown + 50ms);
  bool recovered = false;
  for (int i = 0; i < 100 && !recovered; ++i) {
    recovered = client_->call(addr, CmdLine("ping"), one_shot).ok();
    if (!recovered) std::this_thread::sleep_for(20ms);
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(metrics.gauge("client.breaker_open").value(), 0);
  EXPECT_EQ(metrics.counter("client.breaker_closes").value(), closes0 + 1);
}

TEST_F(ChaosTest, RetriesAreSpacedByJitteredBackoff) {
  // Refused immediately (no listener on that port), so elapsed time is
  // dominated by the backoff sleeps, not connect timeouts.
  const net::Address dead{"ops", 9999};
  client_->set_policy({.breaker = {.failure_threshold = 0}});  // isolate backoff

  auto& metrics = deployment_->env.metrics();
  const auto retries0 = metrics.counter("client.retries").value();

  const daemon::CallOptions opts{.timeout = 300ms,
                                 .require_ok = true,
                                 .retries = 3,
                                 .backoff = 60ms,
                                 .backoff_cap = 1000ms};
  const auto t0 = std::chrono::steady_clock::now();
  auto r = client_->call(dead, CmdLine("ping"), opts);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(r.ok());
  // Jitter lower bound is 0.5x: at least 0.5 * (60 + 120 + 240) = 210ms.
  EXPECT_GE(elapsed, 200ms);
  EXPECT_GE(metrics.counter("client.retries").value(), retries0 + 3);
}

TEST_F(ChaosTest, AsdRestartDoesNotOrphanTheRobustnessManager) {
  daemon::DaemonHost work(deployment_->env, "worker");
  auto& hal = work.add_daemon<services::HalDaemon>(cfg("hal"));
  auto& sal = work.add_daemon<services::SalDaemon>(cfg("sal"));
  ASSERT_TRUE(hal.start().ok());
  ASSERT_TRUE(sal.start().ok());

  daemon::DaemonConfig fragile_cfg = cfg("fragile");
  fragile_cfg.lease = 300ms;
  fragile_cfg.lease_renew = 100ms;
  auto* fragile = &work.add_daemon<services::HrmDaemon>(fragile_cfg);
  ASSERT_TRUE(fragile->start().ok());

  std::atomic<int> launches{0};
  hal.register_launchable("fragile", [&]() -> util::Status {
    daemon::DaemonConfig c = cfg("fragile");
    c.lease = 300ms;
    c.lease_renew = 100ms;
    auto& revived = work.add_daemon<services::HrmDaemon>(c);
    launches++;
    return revived.start();
  });

  store::RobustnessOptions rm_opts;
  rm_opts.watch_interval = 100ms;
  auto& rm =
      work.add_daemon<store::RobustnessManagerDaemon>(cfg("rm"), rm_opts);
  ASSERT_TRUE(rm.start().ok());

  CmdLine manage("rmRegister");
  manage.arg("name", Word{"fragile"});
  manage.arg("kind", Word{"restart"});
  manage.arg("host", "worker");
  ASSERT_TRUE(client_->call(rm.address(), manage, daemon::kCallOk).ok());

  // Kill and relaunch the ASD. Its registry and notification table — the
  // RM's serviceExpired subscription included — are volatile and are gone
  // after the restart.
  auto& metrics = deployment_->env.metrics();
  const auto resub0 = metrics.counter("rm.resubscribes").value();
  deployment_->asd->crash();
  ASSERT_TRUE(deployment_->asd->start().ok());

  // The RM watchdog notices the missing subscription and re-subscribes.
  bool resubscribed = false;
  for (int i = 0; i < 400 && !resubscribed; ++i) {
    resubscribed = metrics.counter("rm.resubscribes").value() > resub0;
    if (!resubscribed) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(resubscribed);

  // Wait for the fabric to re-register with the fresh ASD (lease renewals
  // bounce with not_found and trigger re-registration).
  auto registered = [&](const std::string& name) {
    return services::AsdClient(*client_, deployment_->env.asd_address)
        .lookup(name)
        .ok();
  };
  bool fabric_back = false;
  for (int i = 0; i < 400 && !fabric_back; ++i) {
    fabric_back = registered("fragile") && registered("sal");
    if (!fabric_back) std::this_thread::sleep_for(10ms);
  }
  ASSERT_TRUE(fabric_back);

  // A crash *after* the ASD restart still runs the full chain: lease
  // expiry -> serviceExpired to the re-subscribed RM -> SAL -> HAL.
  fragile->crash();
  bool relaunched = false;
  for (int i = 0; i < 600 && !relaunched; ++i) {
    relaunched = launches.load() > 0 && rm.total_restarts() >= 1;
    if (!relaunched) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(relaunched);
}

TEST_F(ChaosTest, StoreConvergesAfterAChaosRun) {
  std::vector<std::unique_ptr<daemon::DaemonHost>> hosts;
  std::vector<store::PersistentStoreDaemon*> replicas;
  std::vector<net::Address> addrs;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(std::make_unique<daemon::DaemonHost>(
        deployment_->env, "store" + std::to_string(i + 1)));
    daemon::DaemonConfig c = cfg("store" + std::to_string(i + 1));
    c.port = 6000;
    replicas.push_back(
        &hosts.back()->add_daemon<store::PersistentStoreDaemon>(c, i + 1));
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<net::Address> peers;
    for (int j = 0; j < 3; ++j)
      if (j != i) peers.push_back(replicas[j]->address());
    replicas[i]->set_peers(peers);
    ASSERT_TRUE(replicas[i]->start().ok());
    addrs.push_back(replicas[i]->address());
  }

  chaos::ScheduleParams params;
  params.duration = 3000ms;
  params.mean_interval = 250ms;
  params.min_fault = 150ms;
  params.max_fault = 600ms;
  params.service_cooldown = 1200ms;
  chaos::Targets targets;
  targets.services = {"store1", "store2", "store3"};
  targets.hosts = {"store1", "store2", "store3"};

  chaos::Schedule schedule =
      chaos::generate_schedule(chaos::seed_from_env(99), params, targets);
  chaos::ChaosEngine engine(deployment_->env, schedule);
  for (int i = 0; i < 3; ++i)
    engine.add_service("store" + std::to_string(i + 1), replicas[i]);

  // A writer hammers the store for the whole run; individual puts may fail
  // against a crashed or partitioned replica — that is the point.
  auto wclient = deployment_->make_client("chaos-writer", "svc/writer");
  std::atomic<bool> stop_writer{false};
  std::jthread writer([&] {
    store::StoreClient store(*wclient, addrs);
    for (int i = 0; !stop_writer.load(); ++i) {
      (void)store.put("chaos/k" + std::to_string(i % 8),
                      util::to_bytes("v" + std::to_string(i)));
      if (i % 5 == 0) store.rotate();
      std::this_thread::sleep_for(20ms);
    }
  });

  engine.start();
  engine.join();
  stop_writer = true;
  writer.join();

  EXPECT_TRUE(engine.done());
  EXPECT_EQ(engine.log().size(), schedule.events.size());

  // The schedule heals everything it broke: every replica is running.
  for (auto* r : replicas) EXPECT_TRUE(r->running());

  // Drive anti-entropy until all three replicas agree on every key.
  auto converged = [&] {
    for (int k = 0; k < 8; ++k) {
      const std::string key = "chaos/k" + std::to_string(k);
      auto a = replicas[0]->object(key);
      auto b = replicas[1]->object(key);
      auto c = replicas[2]->object(key);
      if (b.has_value() != a.has_value() || c.has_value() != a.has_value())
        return false;
      if (!a) continue;
      if (a->version != b->version || a->version != c->version) return false;
      if (a->data != b->data || a->data != c->data) return false;
    }
    return true;
  };
  bool ok = false;
  for (int i = 0; i < 100 && !ok; ++i) {
    for (auto* r : replicas) (void)r->sync_from_peers();
    ok = converged();
    if (!ok) std::this_thread::sleep_for(50ms);
  }
  EXPECT_TRUE(ok);
}

TEST_F(FailureTest, CredentialCacheExpiresAndRevocationTakesEffect) {
  deployment_->env.register_principal("admin-key");
  keynote::Assertion policy;
  policy.authorizer = keynote::kPolicyAuthorizer;
  policy.licensees = keynote::licensee_key("admin-key");
  deployment_->env.add_policy(policy);
  ASSERT_TRUE(services::grant_credential(
                  *client_, deployment_->env.auth_db_address,
                  deployment_->env, "admin-key", "user/bob", "")
                  .ok());

  daemon::DaemonHost host(deployment_->env, "work");
  daemon::DaemonConfig c = config("guarded");
  c.enforce_authorization = true;
  c.credential_cache_ttl = 200ms;
  auto& svc = host.add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc.start().ok());

  auto bob = deployment_->make_client("bob-pc", "user/bob");
  auto allowed = bob->call(svc.address(), CmdLine("hrmStatus"), daemon::kCallOk);
  ASSERT_TRUE(allowed.ok()) << (allowed.ok() ? "" : allowed.error().to_string());

  // Revoke at the Authorization DB. Within the cache TTL the old grant may
  // still apply; after expiry it must not.
  CmdLine revoke("credRemove");
  revoke.arg("principal", "user/bob");
  ASSERT_TRUE(
      client_->call(deployment_->env.auth_db_address, revoke, daemon::kCallOk).ok());
  std::this_thread::sleep_for(300ms);
  auto denied = bob->call(svc.address(), CmdLine("hrmStatus"));
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(cmdlang::is_error(denied.value()));
  EXPECT_EQ(cmdlang::reply_error(denied.value()).code, util::Errc::auth_error);
}
