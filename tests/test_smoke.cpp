// End-to-end smoke test: boots the infrastructure, starts a device daemon
// through the full Fig 9 startup sequence, and drives it over the secure
// command channel.
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "daemon/devices.hpp"

using namespace ace;
using namespace std::chrono_literals;

TEST(Smoke, InfrastructureBootsAndServesCommands) {
  testenv::AceTestEnv deployment;
  ASSERT_TRUE(deployment.start().ok());

  auto client = deployment.make_client("laptop", "user/tester");
  auto reply = client->call(deployment.env.asd_address,
                            cmdlang::CmdLine("ping"));
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_TRUE(cmdlang::is_ok(reply.value()));
}

TEST(Smoke, DeviceDaemonFullLifecycle) {
  testenv::AceTestEnv deployment;
  ASSERT_TRUE(deployment.start().ok());

  daemon::DaemonHost room_host(deployment.env, "hawk-host");
  daemon::DaemonConfig config;
  config.name = "camera1";
  config.room = "hawk";
  auto& camera = room_host.add_daemon<daemon::PtzCameraDaemon>(
      config, daemon::vcc4_spec());
  std::size_t before = deployment.asd->live_count();
  ASSERT_TRUE(camera.start().ok());

  // Startup sequence effects: registered with ASD, placed in Room DB,
  // logged with the Network Logger.
  EXPECT_EQ(deployment.asd->live_count(), before + 1);
  auto room = deployment.room_db->room("hawk");
  ASSERT_TRUE(room.has_value());
  EXPECT_TRUE(room->services.contains("camera1"));
  // The startup log entry is fire-and-forget; poll briefly.
  bool logged = false;
  for (int i = 0; i < 100 && !logged; ++i) {
    logged = !deployment.net_logger->entries_from("camera1").empty();
    if (!logged) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(logged);

  // Drive the device over the network.
  auto client = deployment.make_client("laptop", "user/tester");
  auto found = services::AsdClient(*client, deployment.env.asd_address).lookup("camera1");
  ASSERT_TRUE(found.ok()) << found.error().to_string();

  ASSERT_TRUE(client->call(found->address, cmdlang::CmdLine("deviceOn"), daemon::kCallOk).ok());
  cmdlang::CmdLine move("ptzMove");
  move.arg("pan", 30.0);
  move.arg("tilt", 10.0);
  move.arg("zoom", 2.5);
  auto moved = client->call(found->address, move, daemon::kCallOk);
  ASSERT_TRUE(moved.ok()) << moved.error().to_string();

  auto state = camera.ptz_state();
  EXPECT_DOUBLE_EQ(state.pan, 30.0);
  EXPECT_DOUBLE_EQ(state.tilt, 10.0);
  EXPECT_DOUBLE_EQ(state.zoom, 2.5);

  camera.stop();
  EXPECT_EQ(deployment.asd->live_count(), before);
}
