// Tests for the basic ACE services: ASD (§2.4), Room DB (§4.11), Network
// Logger (§4.14), AUD (§4.7), Authorization DB (§4.10), HRM/SRM (§4.1-2),
// HAL/SAL (§4.3-4), WSS (§4.5), Converter (§4.12), Distribution (§4.13).
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "media/audio.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "services/streaming.hpp"
#include "services/user_db.hpp"
#include "services/workspace.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

class ServicesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("laptop", "user/tester");
  }

  daemon::DaemonConfig config(const std::string& name,
                              const std::string& room = "hawk") {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = room;
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
};

// ----------------------------------------------------------------------- ASD

TEST_F(ServicesTest, AsdRegisterLookupDeregister) {
  CmdLine reg("register");
  reg.arg("name", Word{"svc1"});
  reg.arg("host", "box");
  reg.arg("port", 1234);
  reg.arg("room", Word{"hawk"});
  reg.arg("class", "Service/Test");
  reg.arg("lease", 5000);
  auto r = client_->call(deployment_->env.asd_address, reg, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->get_integer("lease"), 0);

  auto found = services::AsdClient(*client_, deployment_->env.asd_address).lookup("svc1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->address.to_string(), "box:1234");
  EXPECT_EQ(found->service_class, "Service/Test");

  CmdLine dereg("deregister");
  dereg.arg("name", Word{"svc1"});
  ASSERT_TRUE(client_->call(deployment_->env.asd_address, dereg, daemon::kCallOk).ok());
  EXPECT_FALSE(services::AsdClient(*client_, deployment_->env.asd_address).lookup("svc1")
                   .ok());
}

TEST_F(ServicesTest, AsdQueryByClassAndRoomGlobs) {
  auto add = [&](const char* name, const char* room, const char* cls) {
    CmdLine reg("register");
    reg.arg("name", Word{name});
    reg.arg("host", "box");
    reg.arg("port", 1000);
    reg.arg("room", Word{room});
    reg.arg("class", cls);
    ASSERT_TRUE(client_->call(deployment_->env.asd_address, reg, daemon::kCallOk).ok());
  };
  add("cam1", "hawk", "Service/Device/PTZCamera/VCC3");
  add("cam2", "dove", "Service/Device/PTZCamera/VCC4");
  add("proj1", "hawk", "Service/Device/Projector/Epson7350");

  auto cameras = services::AsdClient(*client_, deployment_->env.asd_address).query("*", "Service/Device/PTZCamera*", "*");
  ASSERT_TRUE(cameras.ok());
  EXPECT_EQ(cameras->size(), 2u);

  auto hawk_devices = services::AsdClient(*client_, deployment_->env.asd_address).query("*", "Service/Device*", "hawk");
  ASSERT_TRUE(hawk_devices.ok());
  EXPECT_EQ(hawk_devices->size(), 2u);

  auto by_name = services::AsdClient(*client_, deployment_->env.asd_address).query("cam*", "*", "*");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->size(), 2u);
}

TEST_F(ServicesTest, AsdLeaseExpiryReapsSilentService) {
  CmdLine reg("register");
  reg.arg("name", Word{"shortlived"});
  reg.arg("host", "box");
  reg.arg("port", 1);
  reg.arg("lease", 250);
  ASSERT_TRUE(client_->call(deployment_->env.asd_address, reg, daemon::kCallOk).ok());
  ASSERT_TRUE(services::AsdClient(*client_, deployment_->env.asd_address).lookup("shortlived")
                  .ok());

  // Renew once: survives past the original expiry.
  std::this_thread::sleep_for(150ms);
  CmdLine renew("renew");
  renew.arg("name", Word{"shortlived"});
  ASSERT_TRUE(client_->call(deployment_->env.asd_address, renew, daemon::kCallOk).ok());
  std::this_thread::sleep_for(150ms);
  EXPECT_TRUE(services::AsdClient(*client_, deployment_->env.asd_address).lookup("shortlived")
                  .ok());

  // Stop renewing: reaped.
  std::this_thread::sleep_for(400ms);
  EXPECT_FALSE(services::AsdClient(*client_, deployment_->env.asd_address).lookup("shortlived")
                   .ok());
  EXPECT_FALSE(deployment_->asd->find_registration("shortlived").has_value());
}

TEST_F(ServicesTest, AsdRenewUnknownServiceFails) {
  CmdLine renew("renew");
  renew.arg("name", Word{"ghost"});
  auto r = client_->call(deployment_->env.asd_address, renew);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cmdlang::is_error(r.value()));
}

// ------------------------------------------------------------------- Room DB

TEST_F(ServicesTest, RoomDbStoresDimensionsAndPlacements) {
  CmdLine create("roomCreate");
  create.arg("room", Word{"hawk"});
  create.arg("building", "Nichols Hall");
  create.arg("width", 8.0);
  create.arg("depth", 6.0);
  create.arg("height", 3.0);
  ASSERT_TRUE(client_->call(deployment_->env.room_db_address, create, daemon::kCallOk).ok());

  CmdLine add("roomAddService");
  add.arg("room", Word{"hawk"});
  add.arg("name", Word{"cam1"});
  add.arg("host", "box");
  add.arg("port", 1000);
  add.arg("class", "Service/Device/PTZCamera/VCC3");
  add.arg("x", 4.0);
  add.arg("y", 0.5);
  add.arg("z", 2.5);
  ASSERT_TRUE(client_->call(deployment_->env.room_db_address, add, daemon::kCallOk).ok());

  CmdLine info("roomInfo");
  info.arg("room", Word{"hawk"});
  auto r = client_->call(deployment_->env.room_db_address, info, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_text("building"), "Nichols Hall");
  EXPECT_DOUBLE_EQ(r->get_real("width"), 8.0);
  EXPECT_EQ(r->get_integer("service_count"), 1);

  CmdLine where("roomOfService");
  where.arg("name", Word{"cam1"});
  auto loc = client_->call(deployment_->env.room_db_address, where, daemon::kCallOk);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->get_text("room"), "hawk");
  EXPECT_DOUBLE_EQ(loc->get_real("x"), 4.0);
}

TEST_F(ServicesTest, RoomDbRemoveAndList) {
  CmdLine add("roomAddService");
  add.arg("room", Word{"dove"});
  add.arg("name", Word{"svc"});
  add.arg("host", "h");
  add.arg("port", 1);
  ASSERT_TRUE(client_->call(deployment_->env.room_db_address, add, daemon::kCallOk).ok());

  CmdLine list("roomServices");
  list.arg("room", Word{"dove"});
  auto r = client_->call(deployment_->env.room_db_address, list, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_vector("services")->elements.size(), 1u);

  CmdLine remove("roomRemoveService");
  remove.arg("room", Word{"dove"});
  remove.arg("name", Word{"svc"});
  ASSERT_TRUE(client_->call(deployment_->env.room_db_address, remove, daemon::kCallOk).ok());
  r = client_->call(deployment_->env.room_db_address, list, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->get_vector("services")->elements.empty());
}

// -------------------------------------------------------------- NetLogger

TEST_F(ServicesTest, NetLoggerStoresAndQueries) {
  for (int i = 0; i < 5; ++i) {
    CmdLine log("log");
    log.arg("source", "svc" + std::to_string(i % 2));
    log.arg("level", Word{i % 2 ? "warn" : "info"});
    log.arg("message", "event " + std::to_string(i));
    ASSERT_TRUE(
        client_->call(deployment_->env.net_logger_address, log, daemon::kCallOk).ok());
  }
  CmdLine query("queryLog");
  query.arg("source", "svc1");
  auto r = client_->call(deployment_->env.net_logger_address, query, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_vector("entries")->elements.size(), 2u);

  CmdLine count("logCount");
  count.arg("level", Word{"warn"});
  auto c = client_->call(deployment_->env.net_logger_address, count, daemon::kCallOk);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->get_integer("count"), 2);
}

TEST_F(ServicesTest, NetLoggerRaisesSecurityAlertAfterRepeatedFailures) {
  // §4.14: repeated invalid-identification attempts draw attention.
  for (int i = 0; i < 3; ++i) {
    CmdLine log("log");
    log.arg("source", "door-scanner");
    log.arg("level", Word{"security"});
    log.arg("message", "invalid identification attempt");
    ASSERT_TRUE(
        client_->call(deployment_->env.net_logger_address, log, daemon::kCallOk).ok());
  }
  EXPECT_EQ(deployment_->net_logger->alerts_raised(), 1u);
}

// --------------------------------------------------------------------- AUD

TEST_F(ServicesTest, UserDatabaseLifecycle) {
  daemon::DaemonHost host(deployment_->env, "db-host");
  auto& aud = host.add_daemon<services::UserDbDaemon>(config("aud"));
  ASSERT_TRUE(aud.start().ok());

  CmdLine add("userAdd");
  add.arg("username", Word{"john"});
  add.arg("fullname", "John Doe");
  add.arg("password", "hunter2");
  add.arg("ibutton", "IB-0042");
  add.arg("fingerprint", "fp-john-1");
  ASSERT_TRUE(client_->call(aud.address(), add, daemon::kCallOk).ok());

  // Duplicate rejected.
  auto dup = client_->call(aud.address(), add);
  ASSERT_TRUE(dup.ok());
  EXPECT_TRUE(cmdlang::is_error(dup.value()));

  CmdLine get("userGet");
  get.arg("username", Word{"john"});
  auto r = client_->call(aud.address(), get, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_text("fullname"), "John Doe");
  EXPECT_EQ(r->get_text("ibutton"), "IB-0042");

  CmdLine by_button("userByIButton");
  by_button.arg("serial", "IB-0042");
  auto byb = client_->call(aud.address(), by_button, daemon::kCallOk);
  ASSERT_TRUE(byb.ok());
  EXPECT_EQ(byb->get_text("username"), "john");

  CmdLine check("userCheckPassword");
  check.arg("username", Word{"john"});
  check.arg("password", "hunter2");
  auto good = client_->call(aud.address(), check, daemon::kCallOk);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->get_text("valid"), "yes");
  check = CmdLine("userCheckPassword");
  check.arg("username", Word{"john"});
  check.arg("password", "wrong");
  auto bad = client_->call(aud.address(), check, daemon::kCallOk);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->get_text("valid"), "no");

  CmdLine loc("userSetLocation");
  loc.arg("username", Word{"john"});
  loc.arg("room", Word{"hawk"});
  loc.arg("station", "podium");
  ASSERT_TRUE(client_->call(aud.address(), loc, daemon::kCallOk).ok());
  EXPECT_EQ(aud.user("john")->location_room, "hawk");

  CmdLine remove("userRemove");
  remove.arg("username", Word{"john"});
  ASSERT_TRUE(client_->call(aud.address(), remove, daemon::kCallOk).ok());
  EXPECT_EQ(aud.user_count(), 0u);
}

// ----------------------------------------------------------------- AuthDB

TEST_F(ServicesTest, AuthDbRejectsBadCredentials) {
  // Unsigned credential rejected.
  keynote::Assertion a;
  a.authorizer = "nobody";
  a.licensees = keynote::licensee_key("x");
  CmdLine add("credAdd");
  add.arg("principal", "x");
  add.arg("assertion", a.serialize());
  auto r = client_->call(deployment_->env.auth_db_address, add);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cmdlang::is_error(r.value()));

  // POLICY assertions may not be stored as credentials.
  deployment_->env.register_principal("admin");
  keynote::Assertion p;
  p.authorizer = keynote::kPolicyAuthorizer;
  p.licensees = keynote::licensee_key("x");
  CmdLine add2("credAdd");
  add2.arg("principal", "x");
  add2.arg("assertion", p.serialize());
  auto r2 = client_->call(deployment_->env.auth_db_address, add2);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(cmdlang::is_error(r2.value()));
}

TEST_F(ServicesTest, AuthDbStoresAndServesCredentials) {
  deployment_->env.register_principal("admin");
  ASSERT_TRUE(services::grant_credential(
                  *client_, deployment_->env.auth_db_address,
                  deployment_->env, "admin", "user/kate", "command == \"x\"")
                  .ok());
  CmdLine get("getCredentials");
  get.arg("principal", "user/kate");
  auto r = client_->call(deployment_->env.auth_db_address, get, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  auto creds = r->get_vector("credentials");
  ASSERT_TRUE(creds.has_value());
  ASSERT_EQ(creds->elements.size(), 1u);
  auto parsed = keynote::Assertion::parse(creds->elements[0].as_text());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(deployment_->env.keys().verify(parsed.value()));
}

// ----------------------------------------------------------------- HRM/SRM

TEST_F(ServicesTest, HrmReportsHostResources) {
  daemon::HostSpec spec;
  spec.bogomips = 2500;
  spec.mem_total_kb = 1024 * 1024;
  daemon::DaemonHost host(deployment_->env, "big-box", spec);
  auto& hrm = host.add_daemon<services::HrmDaemon>(config("hrm-big"));
  ASSERT_TRUE(hrm.start().ok());

  host.launch_process("simulation", 0.75, 100 * 1024);

  auto r = client_->call(hrm.address(), CmdLine("hrmStatus"), daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_text("host"), "big-box");
  EXPECT_DOUBLE_EQ(r->get_real("cpu_load"), 0.75);
  EXPECT_DOUBLE_EQ(r->get_real("bogomips"), 2500.0);
  EXPECT_EQ(r->get_integer("mem_free"), 1024 * 1024 - 100 * 1024);
  EXPECT_EQ(r->get_integer("processes"), 1);
}

TEST_F(ServicesTest, SrmAggregatesAndPicksLeastLoaded) {
  daemon::DaemonHost busy(deployment_->env, "busy");
  daemon::DaemonHost idle(deployment_->env, "idle");
  auto& hrm1 = busy.add_daemon<services::HrmDaemon>(config("hrm-busy"));
  auto& hrm2 = idle.add_daemon<services::HrmDaemon>(config("hrm-idle"));
  ASSERT_TRUE(hrm1.start().ok());
  ASSERT_TRUE(hrm2.start().ok());
  busy.set_base_load(0.9);

  daemon::DaemonHost mon(deployment_->env, "monitor");
  services::SrmOptions options;
  options.cache_ttl = 0ms;  // always fresh in tests
  auto& srm = mon.add_daemon<services::SrmDaemon>(config("srm"), options);
  ASSERT_TRUE(srm.start().ok());

  auto status = client_->call(srm.address(), CmdLine("srmStatus"), daemon::kCallOk);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->get_vector("hosts")->elements.size(), 2u);

  CmdLine pick("srmPickHost");
  pick.arg("cpu", 0.2);
  auto r = client_->call(srm.address(), pick, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_text("host"), "idle");
}

TEST_F(ServicesTest, SrmHonoursMemoryRequirement) {
  daemon::HostSpec small;
  small.mem_total_kb = 64 * 1024;
  daemon::DaemonHost tiny(deployment_->env, "tiny", small);
  daemon::DaemonHost roomy(deployment_->env, "roomy");
  auto& hrm1 = tiny.add_daemon<services::HrmDaemon>(config("hrm-tiny"));
  auto& hrm2 = roomy.add_daemon<services::HrmDaemon>(config("hrm-roomy"));
  ASSERT_TRUE(hrm1.start().ok());
  ASSERT_TRUE(hrm2.start().ok());
  // Make "tiny" otherwise more attractive.
  roomy.set_base_load(0.5);

  daemon::DaemonHost mon(deployment_->env, "monitor");
  services::SrmOptions options;
  options.cache_ttl = 0ms;
  auto& srm = mon.add_daemon<services::SrmDaemon>(config("srm2"), options);
  ASSERT_TRUE(srm.start().ok());

  CmdLine pick("srmPickHost");
  pick.arg("cpu", 0.1);
  pick.arg("mem", 128 * 1024);  // does not fit on "tiny"
  auto r = client_->call(srm.address(), pick, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_text("host"), "roomy");
}

// ----------------------------------------------------------------- HAL/SAL

TEST_F(ServicesTest, HalLaunchKillAndList) {
  daemon::DaemonHost host(deployment_->env, "apps-box");
  auto& hal = host.add_daemon<services::HalDaemon>(config("hal1"));
  ASSERT_TRUE(hal.start().ok());

  CmdLine launch("halLaunch");
  launch.arg("command", "text-editor");
  launch.arg("cpu", 0.25);
  launch.arg("mem", 2048);
  auto r = client_->call(hal.address(), launch, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  int pid = static_cast<int>(r->get_integer("pid"));
  EXPECT_TRUE(host.process_running(pid));

  CmdLine running("halRunning");
  running.arg("pid", pid);
  auto alive = client_->call(hal.address(), running, daemon::kCallOk);
  ASSERT_TRUE(alive.ok());
  EXPECT_EQ(alive->get_text("running"), "yes");

  CmdLine kill("halKill");
  kill.arg("pid", pid);
  ASSERT_TRUE(client_->call(hal.address(), kill, daemon::kCallOk).ok());
  EXPECT_FALSE(host.process_running(pid));
}

TEST_F(ServicesTest, SalDelegatesToLeastLoadedHal) {
  // Fig 18 wiring: SAL -> SRM -> HRMs, SAL -> HAL on chosen host.
  daemon::DaemonHost h1(deployment_->env, "host1");
  daemon::DaemonHost h2(deployment_->env, "host2");
  auto& hrm1 = h1.add_daemon<services::HrmDaemon>(config("hrm-h1"));
  auto& hrm2 = h2.add_daemon<services::HrmDaemon>(config("hrm-h2"));
  auto& hal1 = h1.add_daemon<services::HalDaemon>(config("hal-h1"));
  auto& hal2 = h2.add_daemon<services::HalDaemon>(config("hal-h2"));
  ASSERT_TRUE(hrm1.start().ok());
  ASSERT_TRUE(hrm2.start().ok());
  ASSERT_TRUE(hal1.start().ok());
  ASSERT_TRUE(hal2.start().ok());
  h1.set_base_load(0.8);

  daemon::DaemonHost mon(deployment_->env, "monitor");
  services::SrmOptions srm_options;
  srm_options.cache_ttl = 0ms;
  auto& srm = mon.add_daemon<services::SrmDaemon>(config("srm3"), srm_options);
  auto& sal = mon.add_daemon<services::SalDaemon>(config("sal"));
  ASSERT_TRUE(srm.start().ok());
  ASSERT_TRUE(sal.start().ok());

  CmdLine launch("salLaunch");
  launch.arg("command", "vncserver:john/default");
  launch.arg("cpu", 0.2);
  auto r = client_->call(sal.address(), launch, daemon::kCallOk);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->get_text("host"), "host2");
  EXPECT_EQ(h2.processes().size(), 1u);
  EXPECT_TRUE(h1.processes().empty());

  // Pinned launch overrides placement.
  CmdLine pinned("salLaunch");
  pinned.arg("command", "monitor-agent");
  pinned.arg("host", "host1");
  auto p = client_->call(sal.address(), pinned, daemon::kCallOk);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->get_text("host"), "host1");
  EXPECT_EQ(h1.processes().size(), 1u);
}

// --------------------------------------------------------------------- WSS

TEST_F(ServicesTest, WssDefaultBackendCreatesAndShowsWorkspaces) {
  daemon::DaemonHost h1(deployment_->env, "ws-host");
  auto& hal = h1.add_daemon<services::HalDaemon>(config("hal-ws"));
  auto& sal = h1.add_daemon<services::SalDaemon>(config("sal-ws"));
  auto& wss = h1.add_daemon<services::WssDaemon>(config("wss"));
  ASSERT_TRUE(hal.start().ok());
  ASSERT_TRUE(sal.start().ok());
  ASSERT_TRUE(wss.start().ok());

  CmdLine create("wssDefault");
  create.arg("owner", Word{"john"});
  auto r = client_->call(wss.address(), create, daemon::kCallOk);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->get_text("workspace"), "john/default");

  // Idempotent: second wssDefault returns the same workspace.
  auto again = client_->call(wss.address(), create, daemon::kCallOk);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->get_text("workspace"), "john/default");
  EXPECT_EQ(wss.workspace_count(), 1u);

  // Second named workspace (Scenario 4).
  CmdLine named("wssCreate");
  named.arg("owner", Word{"john"});
  named.arg("name", Word{"slides"});
  ASSERT_TRUE(client_->call(wss.address(), named, daemon::kCallOk).ok());
  CmdLine list("wssList");
  list.arg("owner", Word{"john"});
  auto l = client_->call(wss.address(), list, daemon::kCallOk);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(l->get_vector("workspaces")->elements.size(), 2u);

  // Show at an access point: a viewer process appears there.
  CmdLine show("wssShow");
  show.arg("workspace", "john/default");
  show.arg("location", "ws-host");
  ASSERT_TRUE(client_->call(wss.address(), show, daemon::kCallOk).ok());
  bool viewer_running = false;
  for (const auto& p : h1.processes())
    viewer_running |= p.running && p.command.find("vncviewer") == 0;
  EXPECT_TRUE(viewer_running);
}

// ------------------------------------------------- Converter / Distribution

TEST_F(ServicesTest, ConverterAdpcmRouteCompressesAudio) {
  daemon::DaemonHost host(deployment_->env, "stream-box");
  auto& conv = host.add_daemon<services::ConverterDaemon>(config("conv"));
  ASSERT_TRUE(conv.start().ok());

  // Destination socket for converted packets.
  auto dest = host.net_host().open_datagram(9000);
  ASSERT_TRUE(dest.ok());

  CmdLine route("convRoute");
  route.arg("stream", "mic1");
  route.arg("from", Word{"raw_pcm"});
  route.arg("to", Word{"adpcm"});
  route.arg("dest", "stream-box:9000");
  ASSERT_TRUE(client_->call(conv.address(), route, daemon::kCallOk).ok());

  // Send raw PCM packets from a source socket.
  auto src = host.net_host().open_datagram(9001);
  ASSERT_TRUE(src.ok());
  auto sine = media::sine_wave(440, 8000, 480, 0);
  services::MediaPacket packet;
  packet.stream = "mic1";
  packet.format = "raw_pcm";
  util::ByteWriter pcm;
  for (auto s : sine) pcm.i16(s);
  packet.payload = pcm.take();
  for (int i = 0; i < 5; ++i) {
    packet.sequence = i;
    ASSERT_TRUE(
        (*src)->send_to(conv.data_address(), packet.serialize()).ok());
  }

  int received = 0;
  std::size_t out_bytes = 0;
  while (auto dg = (*dest)->recv(300ms)) {
    auto out = services::MediaPacket::parse(dg->payload);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->format, "adpcm");
    out_bytes += out->payload.size();
    received++;
    if (received == 5) break;
  }
  EXPECT_EQ(received, 5);
  // 4:1 compression (plus a 4-byte count header per packet).
  EXPECT_LT(out_bytes, 5 * 480 * 2 / 3);

  auto stats = conv.route_stats("mic1");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->packets, 5u);
  EXPECT_GT(stats->in_bytes, stats->out_bytes);
}

TEST_F(ServicesTest, DistributionFansOutToAllSinks) {
  daemon::DaemonHost host(deployment_->env, "dist-box");
  auto& dist = host.add_daemon<services::DistributionDaemon>(config("dist"));
  ASSERT_TRUE(dist.start().ok());

  auto sink1 = host.net_host().open_datagram(9100);
  auto sink2 = host.net_host().open_datagram(9101);
  ASSERT_TRUE(sink1.ok() && sink2.ok());

  for (std::uint16_t port : {9100, 9101}) {
    CmdLine add("distAddSink");
    add.arg("stream", "video1");
    add.arg("dest", "dist-box:" + std::to_string(port));
    ASSERT_TRUE(client_->call(dist.address(), add, daemon::kCallOk).ok());
  }

  auto src = host.net_host().open_datagram(9102);
  ASSERT_TRUE(src.ok());
  services::MediaPacket packet;
  packet.stream = "video1";
  packet.format = "raw_video";
  packet.payload = util::to_bytes("frame-data");
  ASSERT_TRUE((*src)->send_to(dist.data_address(), packet.serialize()).ok());

  auto d1 = (*sink1)->recv(500ms);
  auto d2 = (*sink2)->recv(500ms);
  ASSERT_TRUE(d1.has_value());
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d1->payload, d2->payload);

  // Unsubscribed streams are not forwarded.
  packet.stream = "other";
  ASSERT_TRUE((*src)->send_to(dist.data_address(), packet.serialize()).ok());
  EXPECT_FALSE((*sink1)->recv(200ms).has_value());

  auto stats = dist.dist_stats();
  EXPECT_EQ(stats.packets, 1u);
  EXPECT_EQ(stats.fanout, 2u);
}
