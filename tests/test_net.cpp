#include <gtest/gtest.h>

#include <thread>

#include "net/network.hpp"

using namespace ace;
using namespace ace::net;
using namespace std::chrono_literals;

namespace {
Frame frame_of(const char* s) { return util::to_bytes(s); }
}  // namespace

TEST(Network, ConnectSendRecv) {
  Network network;
  Host& a = network.add_host("a");
  Host& b = network.add_host("b");
  auto listener = b.listen(100);
  ASSERT_TRUE(listener.ok());

  auto client = a.connect({"b", 100}, 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.has_value());

  ASSERT_TRUE(client->send(frame_of("hello")).ok());
  auto got = server->recv(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(util::to_string(*got), "hello");

  ASSERT_TRUE(server->send(frame_of("world")).ok());
  got = client->recv(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(util::to_string(*got), "world");
}

TEST(Network, ConnectionRefusedWithoutListener) {
  Network network;
  Host& a = network.add_host("a");
  network.add_host("b");
  auto conn = a.connect({"b", 9}, 100ms);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, util::Errc::refused);
}

TEST(Network, UnknownHost) {
  Network network;
  Host& a = network.add_host("a");
  auto conn = a.connect({"ghost", 9}, 100ms);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, util::Errc::not_found);
}

TEST(Network, DownHostRefusesConnections) {
  Network network;
  Host& a = network.add_host("a");
  Host& b = network.add_host("b");
  auto listener = b.listen(100);
  ASSERT_TRUE(listener.ok());
  b.set_down(true);
  auto conn = a.connect({"b", 100}, 100ms);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, util::Errc::unavailable);
  b.set_down(false);
  EXPECT_TRUE(a.connect({"b", 100}, 100ms).ok());
}

TEST(Network, PortConflict) {
  Network network;
  Host& a = network.add_host("a");
  auto first = a.listen(5);  // must stay alive to hold the port
  ASSERT_TRUE(first.ok());
  auto second = a.listen(5);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, util::Errc::conflict);
}

TEST(Network, ListenerCloseFreesPort) {
  Network network;
  Host& a = network.add_host("a");
  {
    auto listener = a.listen(5);
    ASSERT_TRUE(listener.ok());
    (*listener)->close();
  }
  EXPECT_TRUE(a.listen(5).ok());
}

TEST(Network, CloseMakesPeerRecvFail) {
  Network network;
  Host& a = network.add_host("a");
  Host& b = network.add_host("b");
  auto listener = b.listen(100);
  ASSERT_TRUE(listener.ok());
  auto client = a.connect({"b", 100}, 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.has_value());

  client->close();
  EXPECT_FALSE(server->recv(100ms).has_value());
  EXPECT_FALSE(server->send(frame_of("x")).ok());
}

TEST(Network, LinkLatencyDelaysDelivery) {
  Network network;
  Host& a = network.add_host("a");
  Host& b = network.add_host("b");
  LinkPolicy slow;
  slow.latency = 20ms;
  network.set_link("a", "b", slow);

  auto listener = b.listen(100);
  ASSERT_TRUE(listener.ok());
  auto client = a.connect({"b", 100}, 1s);
  ASSERT_TRUE(client.ok());
  auto server = (*listener)->accept(1s);
  ASSERT_TRUE(server.has_value());

  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(client->send(frame_of("ping")).ok());
  auto got = server->recv(1s);
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(got.has_value());
  EXPECT_GE(elapsed, 18ms);
}

TEST(Network, PartitionResetsConnection) {
  Network network;
  Host& a = network.add_host("a");
  Host& b = network.add_host("b");
  auto listener = b.listen(100);
  ASSERT_TRUE(listener.ok());
  auto client = a.connect({"b", 100}, 1s);
  ASSERT_TRUE(client.ok());

  network.set_partitioned("a", "b", true);
  auto status = client->send(frame_of("x"));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, util::Errc::io_error);
  EXPECT_TRUE(client->closed());

  // New connections are also refused while partitioned.
  auto again = a.connect({"b", 100}, 100ms);
  EXPECT_FALSE(again.ok());
  network.set_partitioned("a", "b", false);
  EXPECT_TRUE(a.connect({"b", 100}, 100ms).ok());
}

TEST(Network, DatagramDelivery) {
  Network network;
  Host& a = network.add_host("a");
  Host& b = network.add_host("b");
  auto sa = a.open_datagram(200);
  auto sb = b.open_datagram(200);
  ASSERT_TRUE(sa.ok() && sb.ok());

  ASSERT_TRUE((*sa)->send_to({"b", 200}, frame_of("dgram")).ok());
  auto got = (*sb)->recv(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(util::to_string(got->payload), "dgram");
  EXPECT_EQ(got->from.host, "a");
}

TEST(Network, DatagramToMissingSocketSilentlyDropped) {
  Network network;
  Host& a = network.add_host("a");
  network.add_host("b");
  auto sa = a.open_datagram(200);
  ASSERT_TRUE(sa.ok());
  EXPECT_TRUE((*sa)->send_to({"b", 999}, frame_of("x")).ok());
  EXPECT_EQ(network.stats().datagrams_dropped, 1u);
}

TEST(Network, DatagramLossRate) {
  Network network(/*seed=*/99);
  Host& a = network.add_host("a");
  Host& b = network.add_host("b");
  LinkPolicy lossy;
  lossy.datagram_loss = 0.5;
  network.set_link("a", "b", lossy);

  auto sa = a.open_datagram(200);
  auto sb = b.open_datagram(200);
  ASSERT_TRUE(sa.ok() && sb.ok());

  constexpr int kSent = 400;
  for (int i = 0; i < kSent; ++i)
    ASSERT_TRUE((*sa)->send_to({"b", 200}, frame_of("x")).ok());
  int received = 0;
  while ((*sb)->recv(20ms)) received++;
  // ~50% loss with generous tolerance.
  EXPECT_GT(received, kSent / 4);
  EXPECT_LT(received, 3 * kSent / 4);
  EXPECT_EQ(network.stats().datagrams_dropped + received,
            static_cast<std::uint64_t>(kSent));
}

TEST(Network, EphemeralDatagramPortsAreDistinct) {
  Network network;
  Host& a = network.add_host("a");
  auto s1 = a.open_datagram();
  auto s2 = a.open_datagram();
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE((*s1)->address().port, (*s2)->address().port);
}

TEST(Network, StatsCountFramesAndBytes) {
  Network network;
  Host& a = network.add_host("a");
  Host& b = network.add_host("b");
  auto listener = b.listen(100);
  ASSERT_TRUE(listener.ok());
  auto client = a.connect({"b", 100}, 1s);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->send(Frame(128, 0)).ok());
  auto stats = network.stats();
  EXPECT_EQ(stats.frames_sent, 1u);
  EXPECT_EQ(stats.bytes_sent, 128u);
  EXPECT_EQ(stats.connects, 1u);
}

TEST(Address, ParseAndFormat) {
  auto addr = Address::parse("hawk:1234");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->host, "hawk");
  EXPECT_EQ(addr->port, 1234);
  EXPECT_EQ(addr->to_string(), "hawk:1234");

  EXPECT_FALSE(Address::parse("no-port").has_value());
  EXPECT_FALSE(Address::parse("h:99999").has_value());
  EXPECT_FALSE(Address::parse("h:12x").has_value());
  EXPECT_FALSE(Address::parse("h:").has_value());
}

// Regression: ephemeral_port() must never hand out a port a listener or
// datagram socket currently holds — even after the allocator's counter
// wraps the whole 40000..65535 range and comes back around.
TEST(Network, EphemeralPortSkipsBoundPorts) {
  Network network;
  Host& a = network.add_host("a");
  auto l1 = a.listen(40000);
  auto l2 = a.listen(40002);
  auto d1 = a.open_datagram(40001);
  ASSERT_TRUE(l1.ok() && l2.ok() && d1.ok());

  // More draws than the ephemeral range is wide, forcing a full wrap.
  for (int i = 0; i < 26000; ++i) {
    std::uint16_t port = a.ephemeral_port();
    ASSERT_GE(port, 40000);
    ASSERT_NE(port, 40000);
    ASSERT_NE(port, 40001);
    ASSERT_NE(port, 40002);
  }

  // A freed port becomes allocatable again.
  (*l2)->close();
  bool seen_40002 = false;
  for (int i = 0; i < 26000 && !seen_40002; ++i)
    seen_40002 = a.ephemeral_port() == 40002;
  EXPECT_TRUE(seen_40002);
}

TEST(Network, LoopbackHasZeroLatency) {
  Network network;
  network.set_default_latency(50ms);
  auto policy = network.link("same", "same");
  EXPECT_EQ(policy.latency.count(), 0);
}
