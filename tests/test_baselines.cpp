// Tests for the comparison baselines (paper Ch 8): RMI-style marshalling
// (vs the ACE command language), Jini-style multicast discovery (vs the
// fixed-address ASD), and the centralized-placement experiment.
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "baselines/centralized.hpp"
#include "baselines/jini.hpp"
#include "baselines/rmi.hpp"
#include "cmdlang/parser.hpp"

using namespace ace;
using namespace ace::baselines;
using namespace std::chrono_literals;

// --------------------------------------------------------------------- RMI

TEST(Rmi, MarshalUnmarshalRoundTrip) {
  RmiInvocation inv;
  inv.interface_name = "edu.ku.ittc.ace.PTZCamera";
  inv.method_name = "move";
  inv.arguments = {{"pan", RmiValue(30.5)},
                   {"tilt", RmiValue(std::int64_t{-3})},
                   {"mode", RmiValue("fast")}};
  RmiMarshaller out, in;
  auto decoded = in.unmarshal(out.marshal(inv));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value(), inv);
}

TEST(Rmi, NestedListsRoundTrip) {
  RmiInvocation inv;
  inv.interface_name = "Ifc";
  inv.method_name = "m";
  inv.arguments = {
      {"limits", RmiValue(RmiValueList{
                     RmiValue(RmiValueList{RmiValue(std::int64_t{-90}),
                                           RmiValue(std::int64_t{90})}),
                     RmiValue(RmiValueList{RmiValue(std::int64_t{-30}),
                                           RmiValue(std::int64_t{30})})})}};
  RmiMarshaller out, in;
  auto decoded = in.unmarshal(out.marshal(inv));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), inv);
}

TEST(Rmi, GarbageRejected) {
  RmiMarshaller m;
  EXPECT_FALSE(m.unmarshal(util::to_bytes("not a stream")).ok());
}

TEST(Rmi, DescriptorCachingShrinksLaterMessages) {
  RmiInvocation inv;
  inv.interface_name = "edu.ku.ittc.ace.Service";
  inv.method_name = "ping";
  inv.arguments = {{"x", RmiValue(std::int64_t{1})}};
  RmiMarshaller cold(false);
  RmiMarshaller warm(true);
  std::size_t cold1 = cold.marshal(inv).size();
  std::size_t cold2 = cold.marshal(inv).size();
  std::size_t warm1 = warm.marshal(inv).size();
  std::size_t warm2 = warm.marshal(inv).size();
  EXPECT_EQ(cold1, cold2);
  EXPECT_EQ(warm1, cold1);   // first message pays full descriptors
  EXPECT_LT(warm2, warm1);   // later messages use back-references
}

TEST(Rmi, WirePayloadLargerThanAceCommand) {
  // The paper's E1 claim in miniature: same logical call, both encodings.
  cmdlang::CmdLine ace_cmd("ptzMove");
  ace_cmd.arg("pan", 30.5);
  ace_cmd.arg("tilt", std::int64_t{-3});
  ace_cmd.arg("zoom", 2.0);
  std::size_t ace_bytes = ace_cmd.to_string().size();

  RmiInvocation inv;
  inv.interface_name = "edu.ku.ittc.ace.PTZCamera";
  inv.method_name = "ptzMove";
  inv.arguments = {{"pan", RmiValue(30.5)},
                   {"tilt", RmiValue(std::int64_t{-3})},
                   {"zoom", RmiValue(2.0)}};
  RmiMarshaller m;
  std::size_t rmi_bytes = m.marshal(inv).size();
  EXPECT_GT(rmi_bytes, 2 * ace_bytes);
}

TEST(Rmi, DispatcherRoutesInvocations) {
  RmiDispatcher dispatcher;
  dispatcher.register_method("Ifc", "add", [](const RmiInvocation& inv) {
    std::int64_t sum = 0;
    for (const auto& [name, v] : inv.arguments)
      sum += std::get<std::int64_t>(v.v);
    return RmiValue(sum);
  });
  RmiInvocation inv;
  inv.interface_name = "Ifc";
  inv.method_name = "add";
  inv.arguments = {{"a", RmiValue(std::int64_t{2})},
                   {"b", RmiValue(std::int64_t{3})}};
  auto r = dispatcher.dispatch(inv);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::get<std::int64_t>(r->v), 5);

  inv.method_name = "missing";
  EXPECT_FALSE(dispatcher.dispatch(inv).ok());
}

// -------------------------------------------------------------------- Jini

TEST(Jini, MulticastDiscoveryFindsLookupService) {
  testenv::AceTestEnv deployment;
  ASSERT_TRUE(deployment.start().ok());

  // A segment of 8 hosts; the lookup service lives on one of them.
  std::vector<std::string> segment;
  for (int i = 0; i < 8; ++i) {
    std::string name = "seg" + std::to_string(i);
    deployment.env.network().add_host(name);
    segment.push_back(name);
  }
  daemon::DaemonHost lookup_host(deployment.env, "seg5");
  daemon::DaemonConfig c;
  c.name = "jini-lookup";
  auto& lookup = lookup_host.add_daemon<JiniLookupDaemon>(c);
  ASSERT_TRUE(lookup.start().ok());

  auto& probe_host = deployment.env.network().add_host("prober");
  auto result = jini_discover(deployment.env, probe_host, segment, 2s);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result->probes_sent, 8);  // one per segment host vs ACE's 0
  EXPECT_EQ(result->lookup_service, lookup.address());
}

TEST(Jini, JoinAndLookupByAttributes) {
  testenv::AceTestEnv deployment;
  ASSERT_TRUE(deployment.start().ok());
  daemon::DaemonHost host(deployment.env, "jini-host");
  daemon::DaemonConfig c;
  c.name = "jini-lookup";
  auto& lookup = host.add_daemon<JiniLookupDaemon>(c);
  ASSERT_TRUE(lookup.start().ok());
  auto client = deployment.make_client("client", "user/x");

  cmdlang::CmdLine join("jiniJoin");
  join.arg("name", cmdlang::Word{"printer1"});
  join.arg("host", "print-host");
  join.arg("port", 99);
  join.arg("attributes", "device/printer/laser");
  ASSERT_TRUE(client->call(lookup.address(), join, daemon::kCallOk).ok());

  cmdlang::CmdLine find("jiniLookup");
  find.arg("attributes", "device/printer/*");
  auto r = client->call(lookup.address(), find, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_vector("services")->elements.size(), 1u);
}

TEST(Jini, DiscoveryTimesOutWithoutLookupService) {
  testenv::AceTestEnv deployment;
  ASSERT_TRUE(deployment.start().ok());
  deployment.env.network().add_host("lonely");
  auto& prober = deployment.env.network().add_host("prober");
  auto result = jini_discover(deployment.env, prober, {"lonely"}, 200ms);
  EXPECT_FALSE(result.ok());
}

// ------------------------------------------------------- placement baseline

TEST(Placement, DistributedBeatsCentralizedUnderWanLatency) {
  PlacementExperiment distributed(Placement::distributed, 2000us);
  PlacementExperiment centralized(Placement::centralized, 2000us);

  // Warm both connection paths once.
  ASSERT_TRUE(distributed.device_command_rtt().ok());
  ASSERT_TRUE(centralized.device_command_rtt().ok());

  auto d = distributed.device_command_rtt();
  auto c = centralized.device_command_rtt();
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(c.ok());
  // The centralized path pays the WAN latency both ways.
  EXPECT_LT(d->count(), c->count());
  EXPECT_GT(c->count(), 2000);
}
