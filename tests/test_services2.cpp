// Second service-layer suite: notification wiring between infrastructure
// services (ASD watchers, HRM samplers, NetLogger alerts), SAL fallback
// paths, the Converter's video route over the network, and mixed
// concurrent/control command traffic.
#include <gtest/gtest.h>

#include <atomic>

#include "ace_test_env.hpp"
#include "apps/vnc.hpp"
#include "apps/workspace_backend.hpp"
#include "media/codec.hpp"
#include "services/launchers.hpp"
#include "services/monitors.hpp"
#include "services/streaming.hpp"
#include "services/workspace.hpp"
#include "store/persistent_store.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

// Generic notification sink counting deliveries per command name.
class CountingSink : public daemon::ServiceDaemon {
 public:
  CountingSink(daemon::Environment& env, daemon::DaemonHost& host,
               daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(cmdlang::CommandSpec("onEvent", "sink")
                         .arg(cmdlang::string_arg("source"))
                         .arg(cmdlang::word_arg("command"))
                         .arg(cmdlang::string_arg("detail")),
                     [this](const CmdLine& cmd, const daemon::CallerInfo&) {
                       std::scoped_lock lock(mu_);
                       counts_[cmd.get_text("command")]++;
                       last_detail_ = cmd.get_text("detail");
                       return cmdlang::make_ok();
                     });
  }

  int count(const std::string& command) const {
    std::scoped_lock lock(mu_);
    auto it = counts_.find(command);
    return it == counts_.end() ? 0 : it->second;
  }
  std::string last_detail() const {
    std::scoped_lock lock(mu_);
    return last_detail_;
  }
  bool wait_count(const std::string& command, int n,
                  std::chrono::milliseconds timeout = 3s) const {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (count(command) >= n) return true;
      std::this_thread::sleep_for(10ms);
    }
    return count(command) >= n;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, int> counts_;
  std::string last_detail_;
};

}  // namespace

class Services2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    host_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "work");
    client_ = deployment_->make_client("laptop", "user/tester");
  }

  daemon::DaemonConfig config(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "hawk";
    return c;
  }

  CountingSink& make_sink(const std::string& name) {
    auto& sink = host_->add_daemon<CountingSink>(config(name));
    EXPECT_TRUE(sink.start().ok());
    return sink;
  }

  void subscribe(const net::Address& notifier, const std::string& command,
                 const CountingSink& sink) {
    CmdLine sub("addNotification");
    sub.arg("command", Word{command});
    sub.arg("service", sink.address().to_string());
    sub.arg("method", Word{"onEvent"});
    ASSERT_TRUE(client_->call(notifier, sub, daemon::kCallOk).ok());
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::DaemonHost> host_;
  std::unique_ptr<daemon::AceClient> client_;
};

// ------------------------------------------------------------- ASD watchers

TEST_F(Services2Test, AsdRegisterDeregisterNotifyWatchers) {
  auto& sink = make_sink("watcher");
  subscribe(deployment_->env.asd_address, "register", sink);
  subscribe(deployment_->env.asd_address, "deregister", sink);

  auto& svc = host_->add_daemon<services::HrmDaemon>(config("newcomer"));
  ASSERT_TRUE(svc.start().ok());
  ASSERT_TRUE(sink.wait_count("register", 1));
  // The notification detail carries the original register command.
  auto detail = cmdlang::Parser::parse(sink.last_detail());
  ASSERT_TRUE(detail.ok());
  EXPECT_EQ(detail->name(), "register");
  EXPECT_EQ(detail->get_text("name"), "newcomer");

  svc.stop();
  EXPECT_TRUE(sink.wait_count("deregister", 1));
}

TEST_F(Services2Test, AsdExpiryNotifiesWatchers) {
  auto& sink = make_sink("reaper-watcher");
  subscribe(deployment_->env.asd_address, "serviceExpired", sink);

  daemon::DaemonConfig c = config("shortlease");
  c.lease = 300ms;
  c.lease_renew = 100ms;
  auto& svc = host_->add_daemon<services::HrmDaemon>(c);
  ASSERT_TRUE(svc.start().ok());
  svc.crash();
  ASSERT_TRUE(sink.wait_count("serviceExpired", 1, 3s));
  auto detail = cmdlang::Parser::parse(sink.last_detail());
  ASSERT_TRUE(detail.ok());
  EXPECT_EQ(detail->get_text("name"), "shortlease");
}

// ------------------------------------------------------------- HRM sampling

TEST_F(Services2Test, HrmSamplerPushesPeriodicSamples) {
  services::HrmOptions options;
  options.sample_period = 50ms;
  auto& hrm = host_->add_daemon<services::HrmDaemon>(config("hrm"), options);
  ASSERT_TRUE(hrm.start().ok());
  auto& sink = make_sink("load-watcher");
  subscribe(hrm.address(), "hrmSample", sink);

  host_->set_base_load(0.42);
  ASSERT_TRUE(sink.wait_count("hrmSample", 3));
  auto detail = cmdlang::Parser::parse(sink.last_detail());
  ASSERT_TRUE(detail.ok());
  EXPECT_EQ(detail->name(), "hrmSample");
  EXPECT_DOUBLE_EQ(detail->get_real("cpu_load"), 0.42);
}

// --------------------------------------------------------- NetLogger alerts

TEST_F(Services2Test, SecurityAlertNotificationReachesSubscribers) {
  auto& sink = make_sink("siem");
  subscribe(deployment_->env.net_logger_address, "securityAlert", sink);

  for (int i = 0; i < 3; ++i) {
    CmdLine log("log");
    log.arg("source", "door-scanner");
    log.arg("level", Word{"security"});
    log.arg("message", "invalid identification attempt");
    ASSERT_TRUE(
        client_->call(deployment_->env.net_logger_address, log, daemon::kCallOk).ok());
  }
  ASSERT_TRUE(sink.wait_count("securityAlert", 1));
  auto detail = cmdlang::Parser::parse(sink.last_detail());
  ASSERT_TRUE(detail.ok());
  EXPECT_EQ(detail->get_text("source"), "door-scanner");
}

// ------------------------------------------------------------- SAL fallback

TEST_F(Services2Test, SalFallsBackToHalHostWithoutSrm) {
  auto& hal = host_->add_daemon<services::HalDaemon>(config("hal"));
  auto& sal = host_->add_daemon<services::SalDaemon>(config("sal"));
  ASSERT_TRUE(hal.start().ok());
  ASSERT_TRUE(sal.start().ok());
  // No SRM/HRM anywhere: SAL must still place via any registered HAL.
  CmdLine launch("salLaunch");
  launch.arg("command", "lonely-app");
  auto r = client_->call(sal.address(), launch, daemon::kCallOk);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->get_text("host"), "work");
  EXPECT_EQ(host_->processes().size(), 1u);
}

TEST_F(Services2Test, SalFailsCleanlyWithNoHals) {
  auto& sal = host_->add_daemon<services::SalDaemon>(config("sal"));
  ASSERT_TRUE(sal.start().ok());
  CmdLine launch("salLaunch");
  launch.arg("command", "nowhere-app");
  auto r = client_->call(sal.address(), launch);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cmdlang::is_error(r.value()));
}

// -------------------------------------------------------- video conversion

TEST_F(Services2Test, ConverterVideoRouteCompressesAndDecodes) {
  auto& conv = host_->add_daemon<services::ConverterDaemon>(config("conv"));
  ASSERT_TRUE(conv.start().ok());
  auto dest = host_->net_host().open_datagram(9300);
  ASSERT_TRUE(dest.ok());

  CmdLine route("convRoute");
  route.arg("stream", "cam-feed");
  route.arg("from", Word{"raw_video"});
  route.arg("to", Word{"rle_video"});
  route.arg("dest", "work:9300");
  ASSERT_TRUE(client_->call(conv.address(), route, daemon::kCallOk).ok());

  auto src = host_->net_host().open_datagram(9301);
  ASSERT_TRUE(src.ok());

  constexpr int kFrames = 10;
  constexpr int kW = 64, kH = 48;
  media::VideoFrame reference;
  bool has_ref = false;
  std::size_t raw_bytes = 0, encoded_bytes = 0;
  std::size_t last_frame_bytes = 0, frame_raw_bytes = 0;
  for (int t = 0; t < kFrames; ++t) {
    media::VideoFrame frame = media::synthetic_frame(kW, kH, t);
    services::MediaPacket packet;
    packet.stream = "cam-feed";
    packet.sequence = static_cast<std::uint32_t>(t);
    packet.format = "raw_video";
    util::ByteWriter w;
    w.u32(kW);
    w.u32(kH);
    w.raw(frame.pixels);
    packet.payload = w.take();
    raw_bytes += packet.payload.size();
    ASSERT_TRUE(
        (*src)->send_to(conv.data_address(), packet.serialize()).ok());

    auto out = (*dest)->recv(2s);
    ASSERT_TRUE(out.has_value()) << "frame " << t;
    auto out_packet = services::MediaPacket::parse(out->payload);
    ASSERT_TRUE(out_packet.has_value());
    EXPECT_EQ(out_packet->format, "rle_video");
    encoded_bytes += out_packet->payload.size();
    last_frame_bytes = out_packet->payload.size();
    frame_raw_bytes = packet.payload.size();

    // A receiver with matching reference state reconstructs losslessly.
    auto decoded = media::rle_video_decode(out_packet->payload,
                                           has_ref ? &reference : nullptr);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->pixels, frame.pixels);
    reference = std::move(*decoded);
    has_ref = true;
  }
  // The intra (first) frame of the per-pixel gradient compresses poorly;
  // inter frames delta-code the static background to near nothing.
  EXPECT_LT(encoded_bytes, raw_bytes);
  EXPECT_LT(last_frame_bytes, frame_raw_bytes / 8);
}

// -------------------------------------------- concurrent + control commands

TEST_F(Services2Test, ControlCommandsStayResponsiveUnderStoreLoad) {
  daemon::DaemonConfig c = config("store");
  c.port = 6000;
  auto& replica = host_->add_daemon<store::PersistentStoreDaemon>(c, 1);
  ASSERT_TRUE(replica.start().ok());

  // Hammer the concurrent storePut path from two writers while verifying
  // the control-thread path (ping/info) stays live.
  std::atomic<bool> stop{false};
  std::vector<std::jthread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      auto wc = deployment_->make_client("writer" + std::to_string(w),
                                         "svc/writer");
      int i = 0;
      while (!stop.load()) {
        CmdLine put("storePut");
        put.arg("key", "k" + std::to_string(i++ % 20));
        put.arg("data", "abcd");
        (void)wc->call(replica.address(), put,
                       daemon::CallOptions{.timeout = 500ms});
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    auto r = client_->call(replica.address(), CmdLine("info"), daemon::kCallOk);
    ASSERT_TRUE(r.ok()) << "control path wedged at iteration " << i;
  }
  stop.store(true);
  writers.clear();
  EXPECT_GT(replica.object_count(), 0u);
}

// --------------------------------------------- WSS destroy tears down server

TEST_F(Services2Test, WssRemoveDestroysVncServer) {
  auto& wss = host_->add_daemon<services::WssDaemon>(config("wss"));
  ASSERT_TRUE(wss.start().ok());
  apps::VncWorkspaceFactory factory(deployment_->env, {host_.get()}, {});
  factory.install(wss);

  CmdLine create("wssCreate");
  create.arg("owner", Word{"kate"});
  create.arg("name", Word{"scratch"});
  auto ws = client_->call(wss.address(), create, daemon::kCallOk);
  ASSERT_TRUE(ws.ok());
  net::Address server_addr{ws->get_text("host"),
                           static_cast<std::uint16_t>(ws->get_integer("port"))};
  auto* server = factory.server_at(server_addr);
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->running());

  CmdLine remove("wssRemove");
  remove.arg("workspace", "kate/scratch");
  ASSERT_TRUE(client_->call(wss.address(), remove, daemon::kCallOk).ok());
  EXPECT_FALSE(server->running());
  EXPECT_EQ(factory.server_at(server_addr), nullptr);
}

TEST_F(Services2Test, AsdReRegistrationReplacesStaleEntry) {
  // A restarted service re-registers under the same name with a new
  // address (the Robustness Manager path depends on this).
  auto reg = [&](const char* host_name, int port) {
    CmdLine r("register");
    r.arg("name", Word{"phoenix"});
    r.arg("host", host_name);
    r.arg("port", std::int64_t{port});
    r.arg("lease", std::int64_t{60000});
    ASSERT_TRUE(client_->call(deployment_->env.asd_address, r, daemon::kCallOk).ok());
  };
  reg("old-host", 1000);
  reg("new-host", 2000);  // restart elsewhere

  auto found = services::AsdClient(*client_, deployment_->env.asd_address).lookup("phoenix");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->address.to_string(), "new-host:2000");
  EXPECT_EQ(deployment_->asd->live_count(), 4u);  // 3 infra + 1, not 5
}

TEST_F(Services2Test, HelpForUnknownCommandFails) {
  CmdLine help("help");
  help.arg("command", Word{"teleport"});
  auto r = client_->call(deployment_->env.asd_address, help);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(cmdlang::is_error(r.value()));
  EXPECT_EQ(cmdlang::reply_error(r.value()).code, util::Errc::not_found);
}
