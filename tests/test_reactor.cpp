// Tests for net::Reactor — the event loop the fabric multiplexes onto —
// and for the async surfaces built on it: queue pumps (attach_queue),
// endpoint callbacks (on_frame/on_accept), the client's per-destination
// reply demux, and the idle-channel sweeper. Includes a connect/close
// churn soak meant to run under ThreadSanitizer (ci.sh tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "ace_test_env.hpp"
#include "daemon/wire.hpp"
#include "net/network.hpp"
#include "net/reactor.hpp"
#include "util/queue.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;

namespace {

// Spin-waits (with sleeps) until `pred` holds or `deadline_ms` elapses.
template <typename Pred>
bool eventually(Pred&& pred, int deadline_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return pred();
}

std::uint64_t counter_value(const obs::MetricsRegistry& metrics,
                            const std::string& name) {
  for (const auto& c : metrics.snapshot().counters)
    if (c.name == name) return c.value;
  return 0;
}

std::int64_t gauge_value(const obs::MetricsRegistry& metrics,
                         const std::string& name) {
  for (const auto& g : metrics.snapshot().gauges)
    if (g.name == name) return g.value;
  return 0;
}

// ---------------------------------------------------------------- Reactor

TEST(Reactor, PostRunsTasks) {
  net::Reactor reactor;
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) reactor.post([&] { ran++; });
  EXPECT_TRUE(eventually([&] { return ran.load() == 100; }));
  EXPECT_GE(reactor.stats().tasks_run, 100u);
}

TEST(Reactor, BlockingTasksRunOnElasticPoolWithoutStarvingCore) {
  net::Reactor reactor;
  // More simultaneous sleepers than ops_min: the pool must grow (or churn
  // through them) while core tasks keep flowing.
  constexpr int kSleepers = 8;
  std::atomic<int> blocked_done{0}, core_done{0};
  for (int i = 0; i < kSleepers; ++i)
    reactor.post_blocking([&] {
      std::this_thread::sleep_for(50ms);
      blocked_done++;
    });
  for (int i = 0; i < 20; ++i) reactor.post([&] { core_done++; });
  EXPECT_TRUE(eventually([&] { return core_done.load() == 20; }, 1000));
  EXPECT_TRUE(eventually([&] { return blocked_done.load() == kSleepers; }));
  EXPECT_GE(reactor.stats().blocking_tasks_run, kSleepers);
}

TEST(Reactor, TimerFiresOnceAndCancelUnarms) {
  net::Reactor reactor;
  std::atomic<int> fired{0}, cancelled_fired{0};
  reactor.post_after(20ms, [&] { fired++; });
  auto id = reactor.post_after(20ms, [&] { cancelled_fired++; });
  EXPECT_TRUE(reactor.cancel(id));
  EXPECT_TRUE(eventually([&] { return fired.load() == 1; }));
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(cancelled_fired.load(), 0);
  // Cancelling an already-fired (or bogus) id reports false.
  EXPECT_FALSE(reactor.cancel(id));
  EXPECT_FALSE(reactor.cancel(0));
}

TEST(Reactor, StoppedReactorDropsWork) {
  net::Reactor reactor;
  reactor.stop();
  std::atomic<int> ran{0};
  reactor.post([&] { ran++; });
  EXPECT_EQ(reactor.post_after(1ms, [&] { ran++; }), 0u);
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(ran.load(), 0);
}

// ------------------------------------------------------------ attach_queue

TEST(Reactor, PumpDeliversInOrderWithFinalExactlyOnce) {
  net::Reactor reactor;
  util::MessageQueue<int> queue;
  std::mutex mu;
  std::vector<int> seen;
  std::atomic<int> finals{0};
  auto sub = net::attach_queue<int>(
      reactor, queue, [&](std::optional<int> item) {
        if (!item) {
          finals++;
          return;
        }
        std::scoped_lock lock(mu);
        seen.push_back(*item);
      });
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(queue.push(i));
  queue.close();
  EXPECT_TRUE(eventually([&] { return finals.load() == 1; }));
  EXPECT_FALSE(sub.active());
  std::scoped_lock lock(mu);
  ASSERT_EQ(seen.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(seen[i], i);
}

TEST(Reactor, PumpDrainsItemsQueuedBeforeAttach) {
  net::Reactor reactor;
  util::MessageQueue<int> queue;
  for (int i = 0; i < 3; ++i) queue.push(i);
  std::atomic<int> got{0};
  auto sub = net::attach_queue<int>(reactor, queue,
                                    [&](std::optional<int> item) {
                                      if (item) got++;
                                    });
  EXPECT_TRUE(eventually([&] { return got.load() == 3; }));
  sub.stop();
}

TEST(Reactor, PumpHonoursDueTimeGating) {
  net::Reactor reactor;
  util::MessageQueue<int> queue;
  const auto armed = net::Reactor::Clock::now();
  const auto due_at = armed + 120ms;
  std::atomic<bool> delivered{false};
  std::atomic<bool> early{false};
  auto sub = net::attach_queue<int>(
      reactor, queue,
      [&](std::optional<int> item) {
        if (!item) return;
        if (net::Reactor::Clock::now() < due_at) early = true;
        delivered = true;
      },
      {}, [&](const int&) { return due_at; });
  queue.push(1);
  std::this_thread::sleep_for(40ms);
  EXPECT_FALSE(delivered.load());  // not readable before its deliver-at
  EXPECT_TRUE(eventually([&] { return delivered.load(); }));
  EXPECT_FALSE(early.load());
  sub.stop();
}

TEST(Reactor, SubscriptionStopFromInsideHandlerIsAllowed) {
  net::Reactor reactor;
  util::MessageQueue<int> queue;
  std::atomic<int> handled{0};
  net::Subscription sub;
  std::mutex sub_mu;  // handler races attach's return value otherwise
  {
    std::scoped_lock lock(sub_mu);
    sub = net::attach_queue<int>(reactor, queue,
                                 [&](std::optional<int> item) {
                                   if (!item) return;
                                   handled++;
                                   std::scoped_lock inner(sub_mu);
                                   sub.stop();  // self-stop: must not hang
                                 });
  }
  queue.push(1);
  queue.push(2);
  EXPECT_TRUE(eventually([&] { return handled.load() >= 1; }));
  sub.stop();  // idempotent from outside too
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(handled.load(), 1);  // the self-stop halted delivery
}

TEST(Reactor, TaskGuardRevokeMakesPendingTasksNoOps) {
  net::Reactor reactor;
  net::TaskGuard guard;
  std::atomic<int> ran{0};
  reactor.post_after(30ms, guard.wrap([&] { ran++; }));
  guard.revoke();
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(ran.load(), 0);
}

// ------------------------------------------------- async endpoint surfaces

TEST(Reactor, OnAcceptAndOnFrameDriveAConnection) {
  net::Network network;
  net::Reactor reactor;
  net::Host& a = network.add_host("a");
  net::Host& b = network.add_host("b");
  auto listener = b.listen(100);
  ASSERT_TRUE(listener.ok());

  std::mutex mu;
  std::vector<std::string> got;
  std::atomic<bool> conn_final{false};
  net::Subscription frame_sub;
  auto accept_sub = (*listener)->on_accept(
      reactor, [&](std::optional<net::Connection> conn) {
        if (!conn) return;
        auto shared = std::make_shared<net::Connection>(std::move(*conn));
        std::scoped_lock lock(mu);
        frame_sub = shared->on_frame(
            reactor, [&, shared](std::optional<net::Frame> frame) {
              if (!frame) {
                conn_final = true;
                return;
              }
              std::scoped_lock inner(mu);
              got.push_back(util::to_string(*frame));
            });
      });

  auto client = a.connect({"b", 100}, 1s);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->send(util::to_bytes("one")).ok());
  ASSERT_TRUE(client->send(util::to_bytes("two")).ok());
  EXPECT_TRUE(eventually([&] {
    std::scoped_lock lock(mu);
    return got.size() == 2;
  }));
  {
    std::scoped_lock lock(mu);
    EXPECT_EQ(got[0], "one");
    EXPECT_EQ(got[1], "two");
  }
  client->close();
  EXPECT_TRUE(eventually([&] { return conn_final.load(); }));
  accept_sub.stop();
}

// -------------------------------------------------------------- soak tests

// Echo daemon for the churn soak.
class SoakDaemon : public daemon::ServiceDaemon {
 public:
  SoakDaemon(daemon::Environment& env, daemon::DaemonHost& host,
             daemon::DaemonConfig config)
      : ServiceDaemon(env, host, std::move(config)) {
    register_command(
        cmdlang::CommandSpec("echo", "echo the text back")
            .arg(cmdlang::string_arg("text"))
            .concurrent_ok(),
        [](const CmdLine& cmd, const daemon::CallerInfo&) {
          CmdLine reply = cmdlang::make_ok();
          reply.arg("text", cmd.get_text("text"));
          return reply;
        });
  }
};

struct SoakFixture {
  SoakFixture() : env(91) {
    EXPECT_TRUE(env.start().ok());
    svc_host = std::make_unique<daemon::DaemonHost>(env.env, "svc");
    daemon::DaemonConfig cfg;
    cfg.name = "soak";
    cfg.room = "lab";
    cfg.service_class = "Service/Test";
    svc = &svc_host->add_daemon<SoakDaemon>(cfg);
    EXPECT_TRUE(svc_host->start_all().ok());
  }

  testenv::AceTestEnv env;
  std::unique_ptr<daemon::DaemonHost> svc_host;
  SoakDaemon* svc = nullptr;
};

// Connect/close churn under call load: callers hammer one destination
// through a shared client while a churner keeps killing the cached channel
// and raw connections handshake and die mid-stream. Run under TSan (ci.sh
// tsan) this exercises pump teardown, demux replacement, the async
// handshake registry and actor reaping for races; the assertions
// themselves check no call is lost or misrouted.
TEST(ReactorSoak, ConnectCloseChurnUnderLoad) {
  SoakFixture f;
  const net::Address addr = f.svc->address();
  auto client = f.env.make_client("ap", "user/soak");
  client->set_policy({.breaker = {.failure_threshold = 0}});  // retry, don't fast-fail

  constexpr int kCallers = 4;
  constexpr int kCallsPerCaller = 400;
  std::atomic<int> successes{0}, mismatches{0};
  std::atomic<bool> done{false};

  // Churner 1: rips the cached channel out from under the callers. Calls
  // in flight fail and retry; each replacement channel re-registers a
  // fresh demux pump.
  std::jthread channel_churn([&] {
    while (!done.load()) {
      client->drop_connection(addr);
      std::this_thread::sleep_for(1ms);
    }
  });

  // Churner 2: raw connections that handshake and immediately die, so the
  // daemon's async-handshake registry and actor teardown stay busy while
  // real traffic flows.
  std::jthread conn_churn([&] {
    auto& host = f.env.env.network().add_host("churn");
    auto identity = f.env.env.issue_identity("user/churn");
    int i = 0;
    while (!done.load()) {
      auto conn = host.connect(addr, 200ms);
      if (conn.ok()) {
        if (i++ % 2 == 0) {
          conn->close();  // die before the handshake completes
        } else {
          auto ch = crypto::SecureChannel::connect(
              std::move(*conn), identity, f.env.env.ca_key(), 500ms,
              f.env.env.channel_options());
          if (ch.ok()) ch->close();
        }
      }
      std::this_thread::sleep_for(1ms);
    }
  });

  {
    std::vector<std::jthread> callers;
    for (int t = 0; t < kCallers; ++t) {
      callers.emplace_back([&, t] {
        for (int i = 0; i < kCallsPerCaller; ++i) {
          const std::string text =
              "t" + std::to_string(t) + "-i" + std::to_string(i);
          CmdLine cmd("echo");
          cmd.arg("text", text);
          daemon::CallOptions opts;
          opts.retries = 8;  // churn makes individual attempts fail often
          opts.require_ok = true;
          opts.backoff = 1ms;
          auto reply = client->call(addr, cmd, opts);
          if (!reply.ok())
            continue;  // churn can exhaust retries; counted via successes
          successes++;
          if (reply->get_text("text") != text) mismatches++;
        }
      });
    }
  }
  done = true;
  channel_churn.join();
  conn_churn.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Availability under this churn depends on machine speed (sanitizers
  // slow attempts ~15x, so more calls run out of retries); correctness
  // does not. Require enough successes to prove the path was exercised,
  // and that every success carried the right payload with nothing leaked.
  EXPECT_GE(successes.load(), kCallers * kCallsPerCaller / 20);
  EXPECT_EQ(gauge_value(f.env.env.metrics(), "client.inflight"), 0);
}

// Regression: an idle destination's demux state is torn down by the
// sweeper and transparently re-created by the next call.
TEST(ReactorSoak, IdleDemuxTearDownAndRecreate) {
  SoakFixture f;
  const net::Address addr = f.svc->address();
  auto client = f.env.make_client("ap", "user/idle");
  auto& metrics = f.env.env.metrics();

  daemon::ClientPolicy policy;
  policy.idle_channel_ttl = 40ms;
  client->set_policy(policy);

  CmdLine cmd("echo");
  cmd.arg("text", "hi");
  auto reply = client->call(addr, cmd, daemon::kCallOk);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  const auto connects_before = counter_value(metrics, "net.connects");

  // The sweeper closes the channel once it has sat idle past the TTL.
  EXPECT_TRUE(eventually(
      [&] { return counter_value(metrics, "client.idle_closed") >= 1; }));

  // The next call must re-create the whole per-destination state — a new
  // connection, handshake and demux pump — and still route its reply.
  reply = client->call(addr, cmd, daemon::kCallOk);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(reply->get_text("text"), "hi");
  EXPECT_GT(counter_value(metrics, "net.connects"), connects_before);
  EXPECT_EQ(gauge_value(metrics, "client.inflight"), 0);

  // Disarming the sweeper stops further teardown: the fresh channel stays.
  client->set_policy(daemon::ClientPolicy{});
  const auto closed_now = counter_value(metrics, "client.idle_closed");
  std::this_thread::sleep_for(120ms);
  EXPECT_EQ(counter_value(metrics, "client.idle_closed"), closed_now);
  reply = client->call(addr, cmd, daemon::kCallOk);
  ASSERT_TRUE(reply.ok());
}

// Thread count is a function of the reactor pools, not of how many
// endpoints are registered: parking hundreds of pumps on one reactor adds
// zero threads.
TEST(ReactorSoak, ThreadCountIndependentOfEndpointCount) {
  net::Network network;
  net::Reactor reactor;
  net::Host& server = network.add_host("server");
  auto listener = server.listen(100);
  ASSERT_TRUE(listener.ok());

  const int threads_before = reactor.stats().core_threads;

  std::mutex mu;
  std::vector<std::shared_ptr<net::Connection>> server_side;
  std::vector<net::Subscription> pumps;
  std::atomic<int> delivered{0};
  auto accept_sub = (*listener)->on_accept(
      reactor, [&](std::optional<net::Connection> conn) {
        if (!conn) return;
        auto shared = std::make_shared<net::Connection>(std::move(*conn));
        auto pump = shared->on_frame(
            reactor, [&](std::optional<net::Frame> frame) {
              if (frame) delivered++;
            });
        std::scoped_lock lock(mu);
        server_side.push_back(std::move(shared));
        pumps.push_back(std::move(pump));
      });

  constexpr int kConns = 400;
  std::vector<net::Connection> clients;
  net::Host& origin = network.add_host("origin");
  for (int i = 0; i < kConns; ++i) {
    auto conn = origin.connect({"server", 100}, 1s);
    ASSERT_TRUE(conn.ok());
    clients.push_back(std::move(*conn));
  }
  EXPECT_TRUE(eventually([&] {
    std::scoped_lock lock(mu);
    return server_side.size() == kConns;
  }));

  for (auto& c : clients) ASSERT_TRUE(c.send(util::to_bytes("ping")).ok());
  EXPECT_TRUE(eventually([&] { return delivered.load() == kConns; }));

  auto stats = reactor.stats();
  EXPECT_EQ(stats.core_threads, threads_before);  // no per-endpoint threads
  for (auto& c : clients) c.close();
  accept_sub.stop();
  for (auto& p : pumps) p.stop();
}

}  // namespace
