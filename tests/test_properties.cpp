// Property- and model-based tests:
//  * persistent store vs a reference map under random operation sequences,
//  * framebuffer server/viewer convergence under random drawing operations,
//  * secure-channel round-trips over random payloads and sizes,
//  * ADPCM SNR across the voice band (parameterized sweep),
//  * glob self-match and KeyNote condition evaluator total-ness.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "media/audio.hpp"
#include "util/strings.hpp"

#include "ace_test_env.hpp"
#include "apps/framebuffer.hpp"
#include "keynote/expr.hpp"
#include "media/codec.hpp"
#include "store/persistent_store.hpp"
#include "store/store_client.hpp"

using namespace ace;
using namespace std::chrono_literals;

// ----------------------------------------------------- store vs model map

class StoreModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(StoreModelProperty, RandomOpsMatchReferenceModel) {
  testenv::AceTestEnv deployment(200 + GetParam());
  ASSERT_TRUE(deployment.start().ok());
  daemon::DaemonHost host(deployment.env, "store-host");
  daemon::DaemonConfig c;
  c.name = "store";
  c.room = "machine-room";
  auto& replica = host.add_daemon<store::PersistentStoreDaemon>(c, 1);
  ASSERT_TRUE(replica.start().ok());
  auto client = deployment.make_client("model", "svc/model");
  store::StoreClient store(*client, {replica.address()});

  std::map<std::string, util::Bytes> model;
  util::Rng rng(GetParam() * 31 + 7);
  for (int op = 0; op < 120; ++op) {
    std::string key = "k" + std::to_string(rng.next_below(8));
    switch (rng.next_below(3)) {
      case 0: {  // put
        util::Bytes value(rng.next_below(64));
        for (auto& b : value) b = static_cast<std::uint8_t>(rng.next());
        ASSERT_TRUE(store.put(key, value).ok());
        model[key] = value;
        break;
      }
      case 1: {  // delete
        ASSERT_TRUE(store.remove(key).ok());
        model.erase(key);
        break;
      }
      default: {  // get must agree with the model
        auto got = store.get(key);
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_FALSE(got.ok()) << key;
        } else {
          ASSERT_TRUE(got.ok()) << key;
          EXPECT_EQ(got.value(), it->second) << key;
        }
      }
    }
  }
  // Final sweep: every model key readable, counts agree.
  for (const auto& [key, value] : model) {
    auto got = store.get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got.value(), value);
  }
  EXPECT_EQ(replica.object_count(), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreModelProperty, ::testing::Range(0, 4));

// ------------------------------------------- framebuffer replication property

class FramebufferProperty : public ::testing::TestWithParam<int> {};

TEST_P(FramebufferProperty, ViewerConvergesUnderRandomDrawing) {
  apps::Framebuffer server(160, 120), viewer(160, 120);
  util::Rng rng(GetParam() * 97 + 5);
  // Initial sync.
  ASSERT_TRUE(viewer.apply_updates(server.encode_updates(true)));
  server.clear_dirty();

  for (int round = 0; round < 40; ++round) {
    int ops = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < ops; ++i) {
      switch (rng.next_below(3)) {
        case 0:
          server.set_pixel(static_cast<int>(rng.next_below(160)),
                           static_cast<int>(rng.next_below(120)),
                           static_cast<std::uint8_t>(rng.next()));
          break;
        case 1:
          server.fill_rect({static_cast<int>(rng.next_below(150)),
                            static_cast<int>(rng.next_below(110)),
                            static_cast<int>(1 + rng.next_below(40)),
                            static_cast<int>(1 + rng.next_below(30))},
                           static_cast<std::uint8_t>(rng.next()));
          break;
        default:
          server.draw_label(static_cast<int>(rng.next_below(120)),
                            static_cast<int>(rng.next_below(100)),
                            rng.next_name(4),
                            static_cast<std::uint8_t>(rng.next()));
      }
    }
    // One incremental update per round must fully resynchronize.
    util::Bytes delta = server.encode_updates(false);
    server.clear_dirty();
    ASSERT_TRUE(viewer.apply_updates(delta));
    ASSERT_EQ(viewer.content_hash(), server.content_hash())
        << "diverged at round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FramebufferProperty, ::testing::Range(0, 5));

// --------------------------------------------- channel payload round trips

class ChannelPayloadProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChannelPayloadProperty, RandomPayloadsSurviveEncryptedChannel) {
  net::Network network;
  crypto::CertificateAuthority ca(9);
  auto listener = network.add_host("server").listen(100);
  ASSERT_TRUE(listener.ok());
  auto conn = network.add_host("client").connect({"server", 100}, 1s);
  ASSERT_TRUE(conn.ok());
  auto accepted = (*listener)->accept(1s);
  ASSERT_TRUE(accepted.has_value());

  crypto::Identity client_id = ca.issue("c");
  crypto::Identity server_id = ca.issue("s");
  util::Result<crypto::SecureChannel> server_side{util::Errc::invalid};
  std::thread t([&] {
    server_side = crypto::SecureChannel::accept(
        std::move(*accepted), server_id, ca.verification_key(), 1s);
  });
  auto client_side = crypto::SecureChannel::connect(
      std::move(conn.value()), client_id, ca.verification_key(), 1s);
  t.join();
  ASSERT_TRUE(client_side.ok());
  ASSERT_TRUE(server_side.ok());

  util::Rng rng(GetParam() * 13 + 3);
  for (int i = 0; i < 30; ++i) {
    // Sizes spanning empty to multi-block (ChaCha20 block = 64 bytes).
    std::size_t n = rng.next_below(513);
    util::Bytes payload(n);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
    ASSERT_TRUE(client_side->send(payload).ok());
    auto got = server_side->recv(1s);
    ASSERT_TRUE(got.has_value()) << "size " << n;
    EXPECT_EQ(*got, payload) << "size " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelPayloadProperty,
                         ::testing::Range(0, 4));

// ----------------------------------------------------- ADPCM SNR sweep

class AdpcmSnrSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdpcmSnrSweep, VoiceBandToneSnrAboveFloor) {
  double frequency = GetParam();
  auto pcm = media::sine_wave(frequency, 10000, 4000, 0);
  media::AdpcmState enc, dec;
  auto decoded =
      media::adpcm_decode(media::adpcm_encode(pcm, enc), pcm.size(), dec);
  double signal = 0, noise = 0;
  // Skip the attack transient while the predictor ramps up.
  for (std::size_t i = 400; i < pcm.size(); ++i) {
    signal += static_cast<double>(pcm[i]) * pcm[i];
    double e = static_cast<double>(pcm[i]) - decoded[i];
    noise += e * e;
  }
  double snr_db = 10.0 * std::log10(signal / (noise + 1e-9));
  EXPECT_GT(snr_db, 12.0) << frequency << " Hz";
}

INSTANTIATE_TEST_SUITE_P(VoiceBand, AdpcmSnrSweep,
                         ::testing::Values(120, 300, 440, 800, 1600, 3000));

// ------------------------------------------------------- misc properties

TEST(GlobProperty, LiteralStringsMatchThemselves) {
  util::Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    std::string s = rng.next_name(rng.next_below(24));
    EXPECT_TRUE(util::glob_match(s, s)) << s;
    EXPECT_TRUE(util::glob_match("*", s)) << s;
    EXPECT_TRUE(util::glob_match(s + "*", s)) << s;
  }
}

TEST(ConditionProperty, EvaluatorIsTotalOnRandomWellFormedExpressions) {
  // Compose random expressions from a generator that only emits valid
  // syntax: the evaluator must never error and must be deterministic.
  util::Rng rng(91);
  keynote::ActionEnv env{{"a", "1"}, {"b", "xyz"}, {"c", "2.5"}};
  const char* atoms[] = {"a == 1",      "b == \"xyz\"", "c > 2",
                         "a != b",      "missing == \"\"", "true",
                         "false",       "b ~= \"x*\"",  "c <= 2.5"};
  for (int i = 0; i < 200; ++i) {
    std::string expr = atoms[rng.next_below(std::size(atoms))];
    int clauses = static_cast<int>(rng.next_below(4));
    for (int k = 0; k < clauses; ++k) {
      expr = "(" + expr + (rng.next_bool(0.5) ? ") && (" : ") || (") +
             atoms[rng.next_below(std::size(atoms))] + ")";
    }
    if (rng.next_bool(0.3)) expr = "!(" + expr + ")";
    auto first = keynote::ConditionEvaluator::eval(expr, env);
    ASSERT_TRUE(first.ok()) << expr;
    auto second = keynote::ConditionEvaluator::eval(expr, env);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value(), second.value()) << expr;
  }
}

TEST(ParserProperty, ArbitraryBytesNeverCrashParser) {
  util::Rng rng(101);
  for (int i = 0; i < 500; ++i) {
    std::string garbage;
    std::size_t n = rng.next_below(80);
    for (std::size_t k = 0; k < n; ++k)
      garbage.push_back(static_cast<char>(rng.next_below(256)));
    // Must return cleanly (ok or parse_error), never crash or hang.
    auto r = cmdlang::Parser::parse(garbage);
    if (!r.ok()) EXPECT_EQ(r.error().code, util::Errc::parse_error);
  }
}
