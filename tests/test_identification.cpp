// Tests for the identification stack (paper §4.6, §4.8, §4.9; Scenario 2):
// FIU fingerprint matching, iButton resolution, and the ID Monitor's
// reaction chain (AUD location update + workspace bring-up via WSS).
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "services/identification.hpp"
#include "services/launchers.hpp"
#include "services/user_db.hpp"
#include "services/workspace.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {
cmdlang::Vector features(std::initializer_list<double> values) {
  return cmdlang::real_vector(std::vector<double>(values));
}
}  // namespace

class IdentificationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("admin-pc", "user/admin");

    host_ = std::make_unique<daemon::DaemonHost>(deployment_->env, "hawk-box");
    aud_ = &host_->add_daemon<services::UserDbDaemon>(config("aud"));
    ASSERT_TRUE(aud_->start().ok());

    // Register John with fingerprint template + iButton serial.
    CmdLine add("userAdd");
    add.arg("username", Word{"john"});
    add.arg("fullname", "John Doe");
    add.arg("fingerprint", "fp-john");
    add.arg("ibutton", "IB-77");
    ASSERT_TRUE(client_->call(aud_->address(), add, daemon::kCallOk).ok());
  }

  daemon::DaemonConfig config(const std::string& name) {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = "hawk";
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::DaemonHost> host_;
  std::unique_ptr<daemon::AceClient> client_;
  services::UserDbDaemon* aud_ = nullptr;
};

TEST_F(IdentificationTest, FiuEnrollAndExactScan) {
  auto& fiu = host_->add_daemon<services::FiuDaemon>(config("fiu"));
  ASSERT_TRUE(fiu.start().ok());

  CmdLine enroll("fiuEnroll");
  enroll.arg("template", Word{"fp_john"});
  enroll.arg("features", features({0.1, 0.9, 0.3, 0.7}));
  ASSERT_TRUE(client_->call(fiu.address(), enroll, daemon::kCallOk).ok());

  // The AUD knows the template as "fp-john"; re-register to match.
  CmdLine fix("userUpdate");
  fix.arg("username", Word{"john"});
  fix.arg("fingerprint", "fp_john");
  ASSERT_TRUE(client_->call(aud_->address(), fix, daemon::kCallOk).ok());

  CmdLine scan("fiuScan");
  scan.arg("features", features({0.1, 0.9, 0.3, 0.7}));
  scan.arg("station", "podium");
  auto r = client_->call(fiu.address(), scan, daemon::kCallOk);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->get_text("user"), "john");
  EXPECT_NEAR(r->get_real("distance"), 0.0, 1e-9);
}

TEST_F(IdentificationTest, FiuToleratesSensorNoiseWithinThreshold) {
  services::FiuOptions options;
  options.match_threshold = 0.5;
  auto& fiu = host_->add_daemon<services::FiuDaemon>(config("fiu"), options);
  ASSERT_TRUE(fiu.start().ok());

  CmdLine fix("userUpdate");
  fix.arg("username", Word{"john"});
  fix.arg("fingerprint", "fp_john");
  ASSERT_TRUE(client_->call(aud_->address(), fix, daemon::kCallOk).ok());

  CmdLine enroll("fiuEnroll");
  enroll.arg("template", Word{"fp_john"});
  enroll.arg("features", features({0.5, 0.5, 0.5, 0.5}));
  ASSERT_TRUE(client_->call(fiu.address(), enroll, daemon::kCallOk).ok());

  // Slightly noisy scan still matches.
  CmdLine scan("fiuScan");
  scan.arg("features", features({0.55, 0.45, 0.52, 0.48}));
  auto r = client_->call(fiu.address(), scan, daemon::kCallOk);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->get_text("user"), "john");

  // A very different finger does not.
  CmdLine bad("fiuScan");
  bad.arg("features", features({0.9, 0.1, 0.9, 0.1}));
  auto denied = client_->call(fiu.address(), bad);
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(cmdlang::is_error(denied.value()));
}

TEST_F(IdentificationTest, FiuFailureLogsSecurityEvent) {
  auto& fiu = host_->add_daemon<services::FiuDaemon>(config("fiu"));
  ASSERT_TRUE(fiu.start().ok());

  CmdLine scan("fiuScan");
  scan.arg("features", features({0.9, 0.9}));
  scan.arg("station", "back-door");
  auto denied = client_->call(fiu.address(), scan);
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(cmdlang::is_error(denied.value()));

  bool logged = false;
  for (int i = 0; i < 100 && !logged; ++i) {
    for (const auto& e : deployment_->net_logger->entries_from("fiu"))
      logged |= e.level == "security";
    if (!logged) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(logged);
}

TEST_F(IdentificationTest, IButtonResolvesSerialThroughAud) {
  auto& reader = host_->add_daemon<services::IButtonDaemon>(config("ibutton"));
  ASSERT_TRUE(reader.start().ok());

  CmdLine read("ibuttonRead");
  read.arg("serial", "IB-77");
  read.arg("station", "door");
  auto r = client_->call(reader.address(), read, daemon::kCallOk);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->get_text("user"), "john");

  CmdLine unknown("ibuttonRead");
  unknown.arg("serial", "IB-9999");
  auto denied = client_->call(reader.address(), unknown);
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(cmdlang::is_error(denied.value()));
}

TEST_F(IdentificationTest, IdMonitorUpdatesLocationAndShowsWorkspace) {
  // Full Scenario 2+3 chain: FIU -> notification -> ID Monitor -> AUD
  // location + WSS workspace at the access point.
  auto& hal = host_->add_daemon<services::HalDaemon>(config("hal"));
  auto& sal = host_->add_daemon<services::SalDaemon>(config("sal"));
  auto& wss = host_->add_daemon<services::WssDaemon>(config("wss"));
  auto& fiu = host_->add_daemon<services::FiuDaemon>(config("fiu"));
  auto& monitor =
      host_->add_daemon<services::IdMonitorDaemon>(config("id-monitor"));
  ASSERT_TRUE(hal.start().ok());
  ASSERT_TRUE(sal.start().ok());
  ASSERT_TRUE(wss.start().ok());
  ASSERT_TRUE(fiu.start().ok());
  ASSERT_TRUE(monitor.start().ok());
  ASSERT_TRUE(monitor.watch_device(fiu.address()).ok());

  CmdLine fix("userUpdate");
  fix.arg("username", Word{"john"});
  fix.arg("fingerprint", "fp_john");
  ASSERT_TRUE(client_->call(aud_->address(), fix, daemon::kCallOk).ok());

  CmdLine enroll("fiuEnroll");
  enroll.arg("template", Word{"fp_john"});
  enroll.arg("features", features({0.2, 0.4, 0.6}));
  ASSERT_TRUE(client_->call(fiu.address(), enroll, daemon::kCallOk).ok());

  CmdLine scan("fiuScan");
  scan.arg("features", features({0.2, 0.4, 0.6}));
  scan.arg("station", "hawk-box");
  ASSERT_TRUE(client_->call(fiu.address(), scan, daemon::kCallOk).ok());

  // The chain is asynchronous (notification + monitor actions): poll.
  bool located = false;
  for (int i = 0; i < 200 && !located; ++i) {
    auto user = aud_->user("john");
    located = user && user->location_room == "hawk" &&
              user->location_station == "hawk-box";
    if (!located) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(located);

  bool workspace_up = false;
  for (int i = 0; i < 200 && !workspace_up; ++i) {
    workspace_up = wss.workspace("john/default").has_value();
    if (!workspace_up) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(workspace_up);
  EXPECT_FALSE(monitor.events().empty());
}

TEST_F(IdentificationTest, IdMonitorRecordsFailedAttempts) {
  auto& fiu = host_->add_daemon<services::FiuDaemon>(config("fiu"));
  services::IdMonitorOptions options;
  options.auto_show_workspace = false;
  auto& monitor = host_->add_daemon<services::IdMonitorDaemon>(
      config("id-monitor"), options);
  ASSERT_TRUE(fiu.start().ok());
  ASSERT_TRUE(monitor.start().ok());
  ASSERT_TRUE(monitor.watch_device(fiu.address()).ok());

  CmdLine scan("fiuScan");
  scan.arg("features", features({0.1}));
  scan.arg("station", "door");
  (void)client_->call(fiu.address(), scan);

  bool recorded = false;
  for (int i = 0; i < 200 && !recorded; ++i) {
    for (const auto& e : monitor.events())
      recorded |= !e.positive && e.device == "fiu";
    if (!recorded) std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(recorded);
}

TEST_F(IdentificationTest, PoweredOffDevicesRefuseScans) {
  auto& fiu = host_->add_daemon<services::FiuDaemon>(config("fiu"));
  auto& reader = host_->add_daemon<services::IButtonDaemon>(config("ibutton"));
  ASSERT_TRUE(fiu.start().ok());
  ASSERT_TRUE(reader.start().ok());

  // Identification devices come up powered; power them down.
  ASSERT_TRUE(client_->call(fiu.address(), CmdLine("deviceOff"), daemon::kCallOk).ok());
  ASSERT_TRUE(client_->call(reader.address(), CmdLine("deviceOff"), daemon::kCallOk).ok());

  CmdLine scan("fiuScan");
  scan.arg("features", features({0.1, 0.2}));
  auto r1 = client_->call(fiu.address(), scan);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(cmdlang::is_error(r1.value()));

  CmdLine read("ibuttonRead");
  read.arg("serial", "IB-77");
  auto r2 = client_->call(reader.address(), read);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(cmdlang::is_error(r2.value()));

  // Power restored: the reader resolves John again.
  ASSERT_TRUE(client_->call(reader.address(), CmdLine("deviceOn"), daemon::kCallOk).ok());
  auto r3 = client_->call(reader.address(), read, daemon::kCallOk);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->get_text("user"), "john");
}
