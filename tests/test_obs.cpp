// Tests for the ace::obs observability layer: registry concurrency,
// histogram bucketing, span ring wraparound, and an end-to-end `metrics;`
// scrape of a live deployment.
#include <gtest/gtest.h>

#include <optional>
#include <thread>

#include "ace_test_env.hpp"
#include "cmdlang/parser.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

namespace {

TEST(MetricsRegistry, CounterConcurrentIncrementsAreExact) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.inc();
    });
  threads.clear();  // join
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.snapshot().counter_value("test.hits"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistry, SameNameReturnsSameCell) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("test.cell");
  obs::Counter& b = registry.counter("test.cell");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);

  obs::Gauge& g = registry.gauge("test.depth");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(registry.snapshot().gauge_value("test.depth"), 5);
}

TEST(MetricsRegistry, HistogramBucketBoundariesAreUpperInclusive) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("test.latency_us");

  // A sample exactly on a bound lands in that bound's bucket; one past it
  // lands in the next.
  h.observe_us(10);    // -> le_10
  h.observe_us(11);    // -> le_25
  h.observe_us(0);     // -> le_10
  h.observe_us(250000);   // -> le_250000 (last finite bound)
  h.observe_us(250001);   // -> +inf
  auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum_us, 10u + 11u + 0u + 250000u + 250001u);
  EXPECT_EQ(snap.buckets[0], 2u);   // le_10
  EXPECT_EQ(snap.buckets[1], 1u);   // le_25
  EXPECT_EQ(snap.buckets[obs::Histogram::kBucketCount - 2], 1u);
  EXPECT_EQ(snap.buckets[obs::Histogram::kBucketCount - 1], 1u);  // +inf
  EXPECT_DOUBLE_EQ(snap.mean_us(), (10.0 + 11 + 0 + 250000 + 250001) / 5);
}

TEST(MetricsRegistry, SpanFeedsHistogramAndRing) {
  obs::MetricsRegistry registry;
  {
    obs::Span span(registry, "test", "op");
  }
  {
    obs::Span span(registry, "test", "op");
    span.fail();
  }
  auto snap = registry.snapshot();
  const auto* hist = snap.histogram("test.op.latency_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);
  auto spans = registry.spans().recent();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].component, "test");
  EXPECT_EQ(spans[0].name, "op");
  EXPECT_TRUE(spans[0].ok);
  EXPECT_FALSE(spans[1].ok);
}

TEST(SpanBuffer, RingWrapsAndKeepsCounting) {
  obs::SpanBuffer ring(4);
  for (int i = 0; i < 10; ++i)
    ring.record(obs::SpanRecord{"test", "s" + std::to_string(i),
                                static_cast<std::uint64_t>(i), true});
  EXPECT_EQ(ring.total_recorded(), 10u);
  auto recent = ring.recent();
  ASSERT_EQ(recent.size(), 4u);  // capped at capacity
  // Oldest-first among the survivors: s6 s7 s8 s9.
  EXPECT_EQ(recent.front().name, "s6");
  EXPECT_EQ(recent.back().name, "s9");
}

// --- End-to-end: scrape a live deployment through the inherited command ---

class ObsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>(42);
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("ap", "user/obs-test");
  }

  // Scrapes `metrics;` from the ASD and returns the named counter, if any.
  std::optional<std::uint64_t> scrape_counter(const std::string& name) {
    auto reply = client_->call(deployment_->env.asd_address, CmdLine("metrics"),
                               daemon::kCallOk);
    if (!reply.ok()) return std::nullopt;
    auto counters = reply->get_vector("counters");
    if (!counters) return std::nullopt;
    for (const auto& elem : counters->elements) {
      if (!elem.is_string() && !elem.is_word()) continue;
      auto parts = util::split(elem.as_text(), '=');
      if (parts.size() == 2 && parts[0] == name) return std::stoull(parts[1]);
    }
    return std::nullopt;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
};

TEST_F(ObsEndToEndTest, MetricsCommandReportsRegistrations) {
  auto before = scrape_counter("asd.registrations");
  ASSERT_TRUE(before.has_value());

  CmdLine reg("register");
  reg.arg("name", Word{"obs_probe"});
  reg.arg("host", "ap");
  reg.arg("port", std::int64_t{4242});
  reg.arg("class", "Service/Synthetic");
  ASSERT_TRUE(
      client_->call(deployment_->env.asd_address, reg, daemon::kCallOk).ok());

  auto after = scrape_counter("asd.registrations");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, *before + 1);
}

TEST_F(ObsEndToEndTest, MetricsCommandReportsGaugesHistogramsAndNet) {
  CmdLine reg("register");
  reg.arg("name", Word{"obs_probe"});
  reg.arg("host", "ap");
  reg.arg("port", std::int64_t{4242});
  ASSERT_TRUE(
      client_->call(deployment_->env.asd_address, reg, daemon::kCallOk).ok());

  auto reply = client_->call(deployment_->env.asd_address, CmdLine("metrics"),
                             daemon::kCallOk);
  ASSERT_TRUE(reply.ok());

  // Gauge: the probe registration is live.
  auto gauges = reply->get_vector("gauges");
  ASSERT_TRUE(gauges);
  bool live_count_positive = false;
  for (const auto& elem : gauges->elements) {
    auto parts = util::split(elem.as_text(), '=');
    if (parts.size() == 2 && parts[0] == "asd.live_count")
      live_count_positive = std::stoll(parts[1]) >= 1;
  }
  EXPECT_TRUE(live_count_positive);

  // Histogram: dispatch latency has recorded the commands we just ran.
  auto histograms = reply->get_vector("histograms");
  ASSERT_TRUE(histograms);
  bool cmd_latency_seen = false;
  for (const auto& elem : histograms->elements) {
    auto fields = util::split(elem.as_text(), '|');
    if (fields.empty() || fields[0] != "daemon.cmd.latency_us") continue;
    for (const auto& field : fields) {
      auto kv = util::split(field, '=');
      if (kv.size() == 2 && kv[0] == "count")
        cmd_latency_seen = std::stoull(kv[1]) > 0;
    }
  }
  EXPECT_TRUE(cmd_latency_seen);

  // Network counters flow into the same deployment registry.
  auto frames = scrape_counter("net.frames_sent");
  ASSERT_TRUE(frames.has_value());
  EXPECT_GT(*frames, 0u);

  // The in-process view agrees with the scraped one.
  auto snapshot = deployment_->env.metrics().snapshot();
  EXPECT_GT(snapshot.counter_value("daemon.cmd.executed"), 0u);
  EXPECT_GT(snapshot.counter_value("client.calls"), 0u);
  EXPECT_GT(snapshot.counter_value("crypto.handshakes"), 0u);
  EXPECT_GT(snapshot.spans_recorded, 0u);
}

TEST_F(ObsEndToEndTest, NetworkStatsSnapshotIsConsistent) {
  // One request/reply exchange moves frames both ways.
  ASSERT_TRUE(client_
                  ->call(deployment_->env.asd_address, CmdLine("count"),
                         daemon::kCallOk)
                  .ok());
  net::NetworkStats stats = deployment_->env.network().stats();
  EXPECT_GT(stats.frames_sent, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.frames_received, 0u);
  EXPECT_GT(stats.bytes_received, 0u);
  // No sent>=received comparison here: lease-renewal traffic is in flight
  // and the per-counter relaxed loads give no cross-counter ordering.
}

TEST(ObsJson, SnapshotRendersAllSections) {
  obs::MetricsRegistry registry;
  registry.counter("a.hits").inc(2);
  registry.gauge("a.depth").set(-3);
  registry.histogram("a.latency_us").observe_us(42);
  { obs::Span span(registry, "a", "op"); }
  std::string json = obs::to_json(registry.snapshot());
  EXPECT_NE(json.find("\"a.hits\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"a.depth\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"a.latency_us\""), std::string::npos);
  EXPECT_NE(json.find("\"spans_recorded\": 1"), std::string::npos);
}

}  // namespace
