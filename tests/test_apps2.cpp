// Second applications suite: the full robust-workspace recovery story
// (Ch 6's reason for existing: "if user workspaces, applications, and
// robust services fail, they can quickly be recovered to their last known
// state"), O-Phone behaviour on lossy links, VNC input paths, and error
// paths of the mobile client and admin GUI.
#include <gtest/gtest.h>

#include "ace_test_env.hpp"
#include "apps/admin_gui.hpp"
#include "apps/mobile.hpp"
#include "apps/ophone.hpp"
#include "apps/vnc.hpp"
#include "media/audio.hpp"
#include "media/dsp.hpp"
#include "store/persistent_store.hpp"

using namespace ace;
using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::Word;

class Apps2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    deployment_ = std::make_unique<testenv::AceTestEnv>();
    ASSERT_TRUE(deployment_->start().ok());
    client_ = deployment_->make_client("laptop", "user/john");
  }

  daemon::DaemonConfig cfg(const std::string& name,
                           const std::string& room = "hawk") {
    daemon::DaemonConfig c;
    c.name = name;
    c.room = room;
    return c;
  }

  std::unique_ptr<testenv::AceTestEnv> deployment_;
  std::unique_ptr<daemon::AceClient> client_;
};

// ------------------------------------------------- robust workspace recovery

TEST_F(Apps2Test, WorkspaceSurvivesServerCrashViaPersistentStore) {
  daemon::DaemonHost store_host(deployment_->env, "store-host");
  daemon::DaemonConfig sc = cfg("store1", "machine-room");
  sc.port = 6000;
  auto& replica = store_host.add_daemon<store::PersistentStoreDaemon>(sc, 1);
  ASSERT_TRUE(replica.start().ok());

  // Incarnation 1 of John's workspace, with persistence enabled.
  daemon::DaemonHost host1(deployment_->env, "ws-host-1");
  auto& server1 = host1.add_daemon<apps::VncServerDaemon>(
      cfg("vnc-john-1", "machine-room"), "john", "default");
  server1.set_password("pw");
  server1.enable_persistence({replica.address()});
  ASSERT_TRUE(server1.start().ok());

  // John works: apps open, input typed, then the state is checkpointed.
  for (const char* app : {"editor", "slides", "terminal"}) {
    CmdLine run("vncRunApp");
    run.arg("command", app);
    ASSERT_TRUE(client_->call(server1.address(), run, daemon::kCallOk).ok());
  }
  CmdLine type("vncInput");
  type.arg("kind", Word{"key"});
  type.arg("key", "q");
  ASSERT_TRUE(client_->call(server1.address(), type, daemon::kCallOk).ok());
  std::uint64_t golden = server1.framebuffer_hash();
  ASSERT_TRUE(
      client_->call(server1.address(), CmdLine("vncCheckpoint"), daemon::kCallOk).ok());

  // The workspace host dies.
  host1.fail();

  // A replacement incarnation comes up elsewhere and restores from the
  // store: same owner/name -> same state namespace.
  daemon::DaemonHost host2(deployment_->env, "ws-host-2");
  auto& server2 = host2.add_daemon<apps::VncServerDaemon>(
      cfg("vnc-john-2", "machine-room"), "john", "default");
  server2.enable_persistence({replica.address()});
  ASSERT_TRUE(server2.start().ok());
  ASSERT_TRUE(client_->call(server2.address(), CmdLine("vncRestore"), daemon::kCallOk).ok());

  EXPECT_EQ(server2.framebuffer_hash(), golden);
  EXPECT_EQ(server2.windows().size(), 3u);
  // The restored password file works too (§5.4's WSS-managed passwords).
  EXPECT_EQ(server2.password(), "pw");

  // And a viewer can attach to the reincarnation and see the old content.
  daemon::DaemonHost ap(deployment_->env, "podium");
  auto& viewer = ap.add_daemon<apps::VncViewerDaemon>(cfg("viewer", "hall"));
  ASSERT_TRUE(viewer.start().ok());
  ASSERT_TRUE(viewer.attach(server2.address(), "pw").ok());
  auto deadline = std::chrono::steady_clock::now() + 2s;
  while (viewer.framebuffer_hash() != golden &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  EXPECT_EQ(viewer.framebuffer_hash(), golden);
}

// ----------------------------------------------------- O-Phone on lossy link

TEST_F(Apps2Test, OPhoneCountsLossAndKeepsTalking) {
  daemon::DaemonHost h1(deployment_->env, "office-a");
  daemon::DaemonHost h2(deployment_->env, "office-b");
  net::LinkPolicy lossy;
  lossy.datagram_loss = 0.3;
  deployment_->env.network().set_link("office-a", "office-b", lossy);

  auto& phone_a =
      h1.add_daemon<apps::OPhoneDaemon>(cfg("phone-a", "office-a"), true);
  auto& phone_b =
      h2.add_daemon<apps::OPhoneDaemon>(cfg("phone-b", "office-b"), true);
  ASSERT_TRUE(phone_a.start().ok());
  ASSERT_TRUE(phone_b.start().ok());

  CmdLine dial("phoneDial");
  dial.arg("peer", phone_b.address().to_string());
  ASSERT_TRUE(client_->call(phone_a.address(), dial, daemon::kCallOk).ok());

  constexpr int kFrames = 100;
  ASSERT_TRUE(phone_a
                  .speak(media::sine_wave(300, 9000,
                                          kFrames * media::kFrameSamples, 0))
                  .ok());
  auto deadline = std::chrono::steady_clock::now() + 3s;
  while (phone_b.frames_received() + phone_b.frames_lost() <
             static_cast<std::uint64_t>(kFrames) * 6 / 10 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);

  // Roughly 30% loss: some frames counted lost, most delivered, and the
  // voice that does arrive still carries the speaker's pitch.
  EXPECT_GT(phone_b.frames_received(), kFrames / 3u);
  EXPECT_GT(phone_b.frames_lost(), 5u);
  auto heard = phone_b.drain_audio(200);
  ASSERT_GE(heard.size(), 800u);
  double p300 =
      media::goertzel_power(heard, 0, 800, 300, media::kSampleRate);
  double p700 =
      media::goertzel_power(heard, 0, 800, 700, media::kSampleRate);
  EXPECT_GT(p300, 5.0 * p700);
}

// -------------------------------------------------------------- VNC details

TEST_F(Apps2Test, PointerAndKeyInputReachViewers) {
  daemon::DaemonHost host(deployment_->env, "ws-host");
  auto& server = host.add_daemon<apps::VncServerDaemon>(
      cfg("vnc", "machine-room"), "kate", "default");
  server.set_password("pw");
  ASSERT_TRUE(server.start().ok());
  auto& viewer = host.add_daemon<apps::VncViewerDaemon>(cfg("viewer"));
  ASSERT_TRUE(viewer.start().ok());
  ASSERT_TRUE(viewer.attach(server.address(), "pw").ok());

  CmdLine pointer("vncInput");
  pointer.arg("kind", Word{"pointer"});
  pointer.arg("x", 80);
  pointer.arg("y", 60);
  ASSERT_TRUE(client_->call(server.address(), pointer, daemon::kCallOk).ok());
  CmdLine key("vncInput");
  key.arg("kind", Word{"key"});
  key.arg("key", "a");
  ASSERT_TRUE(client_->call(server.address(), key, daemon::kCallOk).ok());

  auto deadline = std::chrono::steady_clock::now() + 2s;
  while (viewer.framebuffer_hash() != server.framebuffer_hash() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  EXPECT_EQ(viewer.framebuffer_hash(), server.framebuffer_hash());
  EXPECT_GE(viewer.updates_received(), 3u);  // initial + 2 input deltas
  EXPECT_GT(viewer.update_bytes_received(), 0u);
}

TEST_F(Apps2Test, SnapshotReportsAppsAndOwner) {
  daemon::DaemonHost host(deployment_->env, "ws-host");
  auto& server = host.add_daemon<apps::VncServerDaemon>(
      cfg("vnc", "machine-room"), "kate", "slides");
  ASSERT_TRUE(server.start().ok());
  CmdLine run("vncRunApp");
  run.arg("command", "deck");
  ASSERT_TRUE(client_->call(server.address(), run, daemon::kCallOk).ok());

  auto snap = client_->call(server.address(), CmdLine("vncSnapshot"), daemon::kCallOk);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->get_text("owner"), "kate");
  EXPECT_EQ(snap->get_text("name"), "slides");
  auto apps = snap->get_vector("apps");
  ASSERT_TRUE(apps.has_value());
  ASSERT_EQ(apps->elements.size(), 1u);
  EXPECT_NE(apps->elements[0].as_text().find("deck"), std::string::npos);
}

// ----------------------------------------------------------- error paths

TEST_F(Apps2Test, MobileClientReportsNoInstances) {
  apps::MobileServiceClient mobile(deployment_->env, *client_,
                                   "Service/Nothing/Like/This*");
  auto r = mobile.call(CmdLine("ping"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::Errc::unavailable);
}

TEST_F(Apps2Test, AdminGuiRejectsUnknownService) {
  apps::AdminGuiModel gui(deployment_->env, *client_);
  ASSERT_TRUE(gui.refresh().ok());
  auto r = gui.invoke("does-not-exist", CmdLine("ping"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, util::Errc::not_found);
}
