// io::SimDisk — the fault-injectable simulated disk under the store's WAL.
// One test per injected fault (torn tail, dropped fsync, bit rot) plus the
// durability semantics recovery depends on: crash drops un-fsynced tails,
// rename is atomic+durable, truncate is durable, and faults are
// deterministic under a fixed seed.

#include <gtest/gtest.h>

#include "io/sim_disk.hpp"
#include "store/wal.hpp"

namespace ace {
namespace {

using io::SimDisk;

util::Bytes bytes(const std::string& s) { return util::to_bytes(s); }

std::string text(const util::Result<util::Bytes>& r) {
  return r.ok() ? util::to_string(r.value()) : std::string("<error>");
}

TEST(SimDiskTest, AppendReadFsyncRoundTrip) {
  SimDisk disk;
  EXPECT_FALSE(disk.exists("a"));
  EXPECT_FALSE(disk.read("a").ok());
  ASSERT_TRUE(disk.append("a", bytes("hello ")).ok());
  ASSERT_TRUE(disk.append("a", bytes("world")).ok());
  EXPECT_TRUE(disk.exists("a"));
  // A live process sees its own un-fsynced writes.
  EXPECT_EQ(text(disk.read("a")), "hello world");
  EXPECT_EQ(disk.durable_size("a").value_or(99), 0u);
  ASSERT_TRUE(disk.fsync("a").ok());
  EXPECT_EQ(disk.durable_size("a").value_or(0), 11u);
  EXPECT_EQ(disk.size("a").value_or(0), 11u);
}

TEST(SimDiskTest, CrashDropsUnsyncedTail) {
  SimDisk disk;
  ASSERT_TRUE(disk.append("log", bytes("durable|")).ok());
  ASSERT_TRUE(disk.fsync("log").ok());
  ASSERT_TRUE(disk.append("log", bytes("volatile")).ok());
  disk.crash();
  EXPECT_EQ(text(disk.read("log")), "durable|");
  // The disk is usable right after the power event.
  ASSERT_TRUE(disk.append("log", bytes("again")).ok());
  EXPECT_EQ(text(disk.read("log")), "durable|again");
}

TEST(SimDiskTest, TornTailKeepsStrictPrefixOfPendingBytes) {
  SimDisk disk(7);
  ASSERT_TRUE(disk.append("log", bytes("durable|")).ok());
  ASSERT_TRUE(disk.fsync("log").ok());
  ASSERT_TRUE(disk.append("log", bytes("0123456789")).ok());
  disk.arm_torn_tail();
  disk.crash();
  const std::string after = text(disk.read("log"));
  // Some prefix of the tail may survive, but never all of it: at least
  // one byte is always lost, which is what makes the write "torn".
  EXPECT_GE(after.size(), 8u);
  EXPECT_LT(after.size(), 18u);
  EXPECT_EQ(after.substr(0, 8), "durable|");
  EXPECT_EQ(after, std::string("durable|0123456789").substr(0, after.size()));
}

TEST(SimDiskTest, DroppedFsyncReportsOkButLosesDataAtCrash) {
  SimDisk disk;
  disk.arm_fsync_drop(1);
  ASSERT_TRUE(disk.append("log", bytes("liar")).ok());
  ASSERT_TRUE(disk.fsync("log").ok());  // reports success...
  EXPECT_EQ(disk.durable_size("log").value_or(99), 0u);
  EXPECT_EQ(disk.stats().fsyncs_dropped, 1u);
  // ...the next fsync really persists (the fault was one-shot).
  ASSERT_TRUE(disk.append("log", bytes("!")).ok());
  ASSERT_TRUE(disk.fsync("log").ok());
  EXPECT_EQ(disk.durable_size("log").value_or(0), 5u);
  disk.crash();
  EXPECT_EQ(text(disk.read("log")), "liar!");
}

TEST(SimDiskTest, FsyncDropArmedUntilCrashWhenNegative) {
  SimDisk disk;
  disk.arm_fsync_drop(-1);
  ASSERT_TRUE(disk.append("log", bytes("gone")).ok());
  ASSERT_TRUE(disk.fsync("log").ok());
  ASSERT_TRUE(disk.fsync("log").ok());
  EXPECT_EQ(disk.durable_size("log").value_or(99), 0u);
  disk.crash();  // clears the armed fault and the tail with it
  EXPECT_EQ(text(disk.read("log")), "");
  ASSERT_TRUE(disk.append("log", bytes("back")).ok());
  ASSERT_TRUE(disk.fsync("log").ok());
  EXPECT_EQ(disk.durable_size("log").value_or(0), 4u);
}

TEST(SimDiskTest, BitRotFlipsExactlyOneDurableBit) {
  SimDisk disk(42);
  const std::string payload(64, 'x');
  ASSERT_TRUE(disk.append("blob", bytes(payload)).ok());
  ASSERT_TRUE(disk.fsync("blob").ok());
  ASSERT_TRUE(disk.inject_bit_rot("blob"));
  const auto after = disk.read("blob");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->size(), payload.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::uint8_t diff =
        (*after)[i] ^ static_cast<std::uint8_t>(payload[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);
  EXPECT_EQ(disk.stats().bit_rots, 1u);
}

TEST(SimDiskTest, BitRotNeedsDurableData) {
  SimDisk disk;
  EXPECT_FALSE(disk.inject_bit_rot());  // nothing on the platter yet
  ASSERT_TRUE(disk.append("f", bytes("pending-only")).ok());
  EXPECT_FALSE(disk.inject_bit_rot());
  ASSERT_TRUE(disk.fsync("f").ok());
  EXPECT_TRUE(disk.inject_bit_rot());
}

TEST(SimDiskTest, RenameIsAtomicAndDurable) {
  SimDisk disk;
  ASSERT_TRUE(disk.append("snap.tmp", bytes("snapshot")).ok());
  ASSERT_TRUE(disk.rename("snap.tmp", "snap.1").ok());
  EXPECT_FALSE(disk.exists("snap.tmp"));
  disk.crash();  // rename implies the data hit the platter
  EXPECT_EQ(text(disk.read("snap.1")), "snapshot");
  EXPECT_FALSE(disk.rename("missing", "x").ok());
}

TEST(SimDiskTest, TruncateIsDurableAndDropsTail) {
  SimDisk disk;
  ASSERT_TRUE(disk.append("log", bytes("0123456789")).ok());
  ASSERT_TRUE(disk.fsync("log").ok());
  ASSERT_TRUE(disk.append("log", bytes("pending")).ok());
  ASSERT_TRUE(disk.truncate("log", 4).ok());
  EXPECT_EQ(text(disk.read("log")), "0123");
  disk.crash();
  EXPECT_EQ(text(disk.read("log")), "0123");
}

TEST(SimDiskTest, ListFiltersByPrefixAndRemoveDeletes) {
  SimDisk disk;
  ASSERT_TRUE(disk.append("store1.wal.0", bytes("a")).ok());
  ASSERT_TRUE(disk.append("store1.snap.1", bytes("b")).ok());
  ASSERT_TRUE(disk.append("store2.wal.0", bytes("c")).ok());
  EXPECT_EQ(disk.list("store1.").size(), 2u);
  EXPECT_EQ(disk.list("").size(), 3u);
  ASSERT_TRUE(disk.remove("store1.wal.0").ok());
  EXPECT_EQ(disk.list("store1.").size(), 1u);
  EXPECT_FALSE(disk.remove("store1.wal.0").ok());
}

TEST(SimDiskTest, FaultsAreDeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    SimDisk disk(seed);
    EXPECT_TRUE(disk.append("f", bytes(std::string(32, 'a'))).ok());
    EXPECT_TRUE(disk.fsync("f").ok());
    EXPECT_TRUE(disk.append("f", bytes(std::string(32, 'b'))).ok());
    disk.arm_torn_tail();
    disk.crash();
    EXPECT_TRUE(disk.inject_bit_rot());
    return text(disk.read("f"));
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(1234), run(99999));  // different seed, different tear/flip
}

// The WAL framing over the disk: a torn tail is detected by CRC and the
// scan stops at the last whole record.
TEST(SimDiskTest, WalScanStopsAtTornRecord) {
  SimDisk disk(3);
  store::WalRecord a;
  a.kind = store::WalRecord::kPut;
  a.key = "/k/1";
  a.version = 41;
  a.data = bytes("v1");
  store::WalRecord b = a;
  b.key = "/k/2";
  b.version = 42;
  ASSERT_TRUE(disk.append("wal", store::encode_wal_record(a)).ok());
  ASSERT_TRUE(disk.fsync("wal").ok());
  ASSERT_TRUE(disk.append("wal", store::encode_wal_record(b)).ok());
  disk.arm_torn_tail();
  disk.crash();

  auto data = disk.read("wal");
  ASSERT_TRUE(data.ok());
  std::vector<std::string> keys;
  std::size_t valid = store::Wal::scan(
      *data, [&](const store::WalRecord& r) { keys.push_back(r.key); });
  ASSERT_EQ(keys.size(), 1u);  // the fsynced record survives, the torn one is dropped
  EXPECT_EQ(keys[0], "/k/1");
  EXPECT_EQ(valid, store::encode_wal_record(a).size());
}

}  // namespace
}  // namespace ace
