#include <gtest/gtest.h>

#include "keynote/assertion.hpp"
#include "keynote/checker.hpp"
#include "keynote/expr.hpp"

using namespace ace;
using namespace ace::keynote;

// ----------------------------------------------------- condition language

struct CondCase {
  const char* name;
  const char* expr;
  bool expect;
};

class ConditionTest : public ::testing::TestWithParam<CondCase> {
 protected:
  static ActionEnv env() {
    return {{"app_domain", "ace"},
            {"command", "ptzMove"},
            {"room", "hawk"},
            {"duration", "120"},
            {"level", "3.5"}};
  }
};

TEST_P(ConditionTest, Evaluates) {
  auto r = ConditionEvaluator::eval(GetParam().expr, env());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value(), GetParam().expect) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, ConditionTest,
    ::testing::Values(
        CondCase{"eq_true", "app_domain == \"ace\"", true},
        CondCase{"eq_false", "app_domain == \"web\"", false},
        CondCase{"neq", "command != \"shutdown\"", true},
        CondCase{"numeric_lt", "duration < 200", true},
        CondCase{"numeric_ge", "duration >= 120", true},
        CondCase{"numeric_float", "level > 3", true},
        CondCase{"and_both", "app_domain == \"ace\" && room == \"hawk\"", true},
        CondCase{"and_short", "app_domain == \"web\" && room == \"hawk\"",
                 false},
        CondCase{"or_second", "room == \"dove\" || room == \"hawk\"", true},
        CondCase{"not", "!(room == \"dove\")", true},
        CondCase{"parens", "(duration < 60 || duration > 100) && level < 4",
                 true},
        CondCase{"glob", "command ~= \"ptz*\"", true},
        CondCase{"glob_false", "command ~= \"proj*\"", false},
        CondCase{"missing_attr_empty", "nothere == \"\"", true},
        CondCase{"missing_attr_bare", "nothere", false},
        CondCase{"bare_attr_nonempty", "room", true},
        CondCase{"true_literal", "true", true},
        CondCase{"false_literal", "false", false},
        CondCase{"string_order", "room < \"zebra\"", true},
        CondCase{"numeric_eq_string_form", "duration == 120", true}),
    [](const ::testing::TestParamInfo<CondCase>& info) {
      return info.param.name;
    });

TEST(Conditions, EmptyIsVacuouslyTrue) {
  auto r = ConditionEvaluator::eval("", {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
}

TEST(Conditions, SyntaxErrors) {
  EXPECT_FALSE(ConditionEvaluator::check_syntax("a ==").ok());
  EXPECT_FALSE(ConditionEvaluator::check_syntax("(a == b").ok());
  EXPECT_FALSE(ConditionEvaluator::check_syntax("a == \"unterminated").ok());
  EXPECT_FALSE(ConditionEvaluator::check_syntax("&& b").ok());
  EXPECT_TRUE(ConditionEvaluator::check_syntax("a == b && c > 2").ok());
}

// ---------------------------------------------------- licensee expressions

TEST(Licensees, ParseSingleKey) {
  auto e = parse_licensees("\"alice\"");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, LicenseeExpr::Kind::key);
  EXPECT_EQ((*e)->key, "alice");
}

TEST(Licensees, ParseBareWordKey) {
  auto e = parse_licensees("ace-user:john");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->key, "ace-user:john");
}

TEST(Licensees, ParseDisjunctionConjunction) {
  auto e = parse_licensees("\"a\" || (\"b\" && \"c\")");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, LicenseeExpr::Kind::any_of);
  ASSERT_EQ((*e)->parts.size(), 2u);
  EXPECT_EQ((*e)->parts[1]->kind, LicenseeExpr::Kind::all_of);
}

TEST(Licensees, ParseThreshold) {
  auto e = parse_licensees("2-of(\"a\",\"b\",\"c\")");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, LicenseeExpr::Kind::threshold);
  EXPECT_EQ((*e)->threshold_k, 2);
  EXPECT_EQ((*e)->parts.size(), 3u);
}

TEST(Licensees, ThresholdOutOfRangeRejected) {
  EXPECT_FALSE(parse_licensees("4-of(\"a\",\"b\")").ok());
  EXPECT_FALSE(parse_licensees("0-of(\"a\")").ok());
}

TEST(Licensees, RoundTripThroughToString) {
  auto e = parse_licensees("\"a\" || 2-of(\"b\",\"c\",\"d\") && \"e\"");
  ASSERT_TRUE(e.ok());
  auto again = parse_licensees((*e)->to_string());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->to_string(), (*e)->to_string());
}

// -------------------------------------------------------------- assertions

TEST(Assertions, SerializeParseRoundTrip) {
  Assertion a;
  a.authorizer = "POLICY";
  a.licensees = licensee_any({licensee_key("admin"), licensee_key("ops")});
  a.conditions = "app_domain == \"ace\" && command ~= \"ptz*\"";
  a.comment = "camera policy";
  auto parsed = Assertion::parse(a.serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed->authorizer, "POLICY");
  EXPECT_EQ(parsed->conditions, a.conditions);
  EXPECT_EQ(parsed->comment, a.comment);
  EXPECT_EQ(parsed->licensees->to_string(), a.licensees->to_string());
}

TEST(Assertions, SignAndVerify) {
  KeyStore keys;
  keys.register_principal("admin", util::to_bytes("admin-secret"));
  Assertion a;
  a.authorizer = "admin";
  a.licensees = licensee_key("john");
  a.conditions = "command == \"ping\"";
  ASSERT_TRUE(keys.sign(a).ok());
  EXPECT_TRUE(keys.verify(a));

  a.conditions = "command == \"shutdown\"";  // tamper after signing
  EXPECT_FALSE(keys.verify(a));
}

TEST(Assertions, SignatureSurvivesSerialization) {
  KeyStore keys;
  keys.register_principal("admin", util::to_bytes("s3cret"));
  Assertion a;
  a.authorizer = "admin";
  a.licensees = licensee_key("john");
  ASSERT_TRUE(keys.sign(a).ok());
  auto parsed = Assertion::parse(a.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(keys.verify(parsed.value()));
}

TEST(Assertions, UnknownAuthorizerCannotSign) {
  KeyStore keys;
  Assertion a;
  a.authorizer = "ghost";
  a.licensees = licensee_key("x");
  EXPECT_FALSE(keys.sign(a).ok());
}

// -------------------------------------------------------------- compliance

class ComplianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    keys_.register_principal("admin", util::to_bytes("admin-key"));
    keys_.register_principal("dept-head", util::to_bytes("dept-key"));
  }

  Assertion policy(const std::string& licensees,
                   const std::string& conditions) {
    Assertion a;
    a.authorizer = kPolicyAuthorizer;
    a.licensees = parse_licensees(licensees).value();
    a.conditions = conditions;
    return a;
  }

  Assertion credential(const std::string& authorizer,
                       const std::string& licensees,
                       const std::string& conditions) {
    Assertion a;
    a.authorizer = authorizer;
    a.licensees = parse_licensees(licensees).value();
    a.conditions = conditions;
    EXPECT_TRUE(keys_.sign(a).ok());
    return a;
  }

  bool check(const std::string& requester,
             std::vector<Assertion> policies,
             std::vector<Assertion> credentials,
             ActionEnv action = {{"app_domain", "ace"},
                                 {"command", "ptzMove"}}) {
    ComplianceQuery q;
    q.requester = requester;
    q.action = std::move(action);
    q.policies = std::move(policies);
    q.credentials = std::move(credentials);
    auto r = ComplianceChecker::check(q, &keys_);
    EXPECT_TRUE(r.ok());
    return r.ok() && r->authorized;
  }

  KeyStore keys_;
};

TEST_F(ComplianceTest, DirectPolicyAuthorization) {
  EXPECT_TRUE(check("admin", {policy("\"admin\"", "")}, {}));
  EXPECT_FALSE(check("mallory", {policy("\"admin\"", "")}, {}));
}

TEST_F(ComplianceTest, PolicyConditionsGateAuthorization) {
  auto p = policy("\"admin\"", "command == \"ptzMove\"");
  EXPECT_TRUE(check("admin", {p}, {}));
  EXPECT_FALSE(check("admin", {p}, {},
                     {{"app_domain", "ace"}, {"command", "shutdown"}}));
}

TEST_F(ComplianceTest, OneHopDelegation) {
  auto p = policy("\"admin\"", "");
  auto c = credential("admin", "\"john\"", "command ~= \"ptz*\"");
  EXPECT_TRUE(check("john", {p}, {c}));
  EXPECT_FALSE(check("john", {p}, {c},
                     {{"app_domain", "ace"}, {"command", "shutdown"}}));
}

TEST_F(ComplianceTest, TwoHopDelegationChain) {
  auto p = policy("\"admin\"", "");
  auto c1 = credential("admin", "\"dept-head\"", "");
  auto c2 = credential("dept-head", "\"john\"", "");
  EXPECT_TRUE(check("john", {p}, {c1, c2}));
  // Without the middle link the chain is broken.
  EXPECT_FALSE(check("john", {p}, {c2}));
}

TEST_F(ComplianceTest, ForgedCredentialRejected) {
  auto p = policy("\"admin\"", "");
  auto c = credential("admin", "\"john\"", "");
  c.conditions = "true";  // tamper -> signature mismatch
  ComplianceQuery q;
  q.requester = "john";
  q.action = {{"command", "ptzMove"}};
  q.policies = {p};
  q.credentials = {c};
  auto r = ComplianceChecker::check(q, &keys_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->authorized);
  EXPECT_EQ(r->rejected_credentials.size(), 1u);
}

TEST_F(ComplianceTest, CredentialCannotClaimPolicy) {
  Assertion fake;
  fake.authorizer = kPolicyAuthorizer;
  fake.licensees = licensee_key("mallory");
  EXPECT_FALSE(check("mallory", {policy("\"admin\"", "")}, {fake}));
}

TEST_F(ComplianceTest, ConjunctionRequiresBothBranches) {
  keys_.register_principal("a", util::to_bytes("ka"));
  keys_.register_principal("b", util::to_bytes("kb"));
  auto p = policy("\"a\" && \"b\"", "");
  auto ca = credential("a", "\"john\"", "");
  auto cb = credential("b", "\"john\"", "");
  EXPECT_TRUE(check("john", {p}, {ca, cb}));
  EXPECT_FALSE(check("john", {p}, {ca}));
}

TEST_F(ComplianceTest, ThresholdLicensees) {
  keys_.register_principal("a", util::to_bytes("ka"));
  keys_.register_principal("b", util::to_bytes("kb"));
  keys_.register_principal("c", util::to_bytes("kc"));
  auto p = policy("2-of(\"a\",\"b\",\"c\")", "");
  auto ca = credential("a", "\"john\"", "");
  auto cb = credential("b", "\"john\"", "");
  EXPECT_FALSE(check("john", {p}, {ca}));
  EXPECT_TRUE(check("john", {p}, {ca, cb}));
}

TEST_F(ComplianceTest, DelegationCycleTerminates) {
  keys_.register_principal("x", util::to_bytes("kx"));
  keys_.register_principal("y", util::to_bytes("ky"));
  auto p = policy("\"x\"", "");
  auto cx = credential("x", "\"y\"", "");
  auto cy = credential("y", "\"x\"", "");  // cycle x -> y -> x
  EXPECT_FALSE(check("john", {p}, {cx, cy}));
  // But the cycle must not break legitimate resolution.
  auto cj = credential("y", "\"john\"", "");
  EXPECT_TRUE(check("john", {p}, {cx, cy, cj}));
}

TEST_F(ComplianceTest, MultiplePoliciesAnyMaySucceed) {
  auto p1 = policy("\"admin\"", "command == \"never\"");
  auto p2 = policy("\"admin\"", "");
  EXPECT_TRUE(check("admin", {p1, p2}, {}));
}
