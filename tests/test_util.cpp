#include <gtest/gtest.h>

#include <cctype>
#include <thread>

#include "util/bytes.hpp"
#include "util/queue.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace ace::util;
using namespace std::chrono_literals;

// ----------------------------------------------------------- MessageQueue

TEST(MessageQueue, FifoOrder) {
  MessageQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(MessageQueue, PopForTimesOutWhenEmpty) {
  MessageQueue<int> q;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(30ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(MessageQueue, CloseDrainsPendingThenReturnsNullopt) {
  MessageQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MessageQueue, CloseWakesBlockedConsumer) {
  MessageQueue<int> q;
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(20ms);
  q.close();
  consumer.join();
}

TEST(MessageQueue, BoundedQueueRejectsWhenFull) {
  MessageQueue<int> q(2);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_FALSE(q.push(3));
  q.pop();
  EXPECT_TRUE(q.push(3));
}

TEST(MessageQueue, ManyProducersManyConsumers) {
  MessageQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.close();
  threads[kProducers].join();
  threads[kProducers + 1].join();
  EXPECT_EQ(sum.load(), kProducers * kPerProducer * (kPerProducer + 1) / 2);
}

// ------------------------------------------------------------------ Bytes

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello world");
  w.blob({1, 2, 3});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_EQ(r.str().value(), "hello world");
  EXPECT_EQ(r.blob().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, UnderflowPoisonsReader) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_TRUE(r.failed());
  EXPECT_FALSE(r.u8().has_value());  // stays failed
}

TEST(Bytes, EmptyStringAndBlob) {
  ByteWriter w;
  w.str("");
  w.blob({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str().value(), "");
  EXPECT_TRUE(r.blob().value().empty());
}

TEST(Bytes, VarintRoundTrip) {
  const std::uint64_t cases[] = {0,        1,
                                 127,      128,  // 1-byte/2-byte boundary
                                 300,      16383,
                                 16384,    0xdeadbeef,
                                 (1ULL << 63),   std::uint64_t(-1)};
  for (std::uint64_t v : cases) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.varint().value(), v) << v;
    EXPECT_TRUE(r.at_end()) << v;
  }
}

TEST(Bytes, VarintEncodingIsCompact) {
  ByteWriter w;
  w.varint(5);  // the common wire call-id case
  EXPECT_EQ(w.bytes().size(), 1u);
  ByteWriter w2;
  w2.varint(128);
  EXPECT_EQ(w2.bytes().size(), 2u);
}

TEST(Bytes, VarintTruncatedAndOverlong) {
  // Truncated: continuation bit set but no next byte.
  Bytes truncated{0x80};
  ByteReader r(truncated);
  EXPECT_FALSE(r.varint().has_value());
  // Overlong: more than ten continuation bytes poisons the reader.
  Bytes overlong(11, 0x80);
  ByteReader r2(overlong);
  EXPECT_FALSE(r2.varint().has_value());
  EXPECT_TRUE(r2.failed());
}

TEST(Bytes, ToStringViewIsCopyFree) {
  Bytes b = to_bytes("view me");
  std::string_view v = to_string_view(b);
  EXPECT_EQ(v, "view me");
  EXPECT_EQ(static_cast<const void*>(v.data()),
            static_cast<const void*>(b.data()));
  EXPECT_TRUE(to_string_view(Bytes{}).empty());
}

TEST(Bytes, HexEncode) {
  EXPECT_EQ(hex_encode({0x00, 0xff, 0x0a}), "00ff0a");
  EXPECT_EQ(hex_encode({}), "");
}

TEST(Bytes, HexRoundTripAllByteValues) {
  Bytes all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<std::uint8_t>(i));
  const std::string hex = hex_encode(all);
  ASSERT_EQ(hex.size(), 512u);
  EXPECT_EQ(hex_decode(hex), all);
  // Both alphabets decode; encode emits lowercase.
  std::string upper = hex;
  for (char& c : upper) c = static_cast<char>(std::toupper(c));
  EXPECT_EQ(hex_decode(upper), all);
}

TEST(Bytes, HexDecodeRejectsMalformedInput) {
  EXPECT_TRUE(hex_decode("").empty());
  EXPECT_TRUE(hex_decode("abc").empty());   // odd length
  EXPECT_TRUE(hex_decode("zz").empty());    // non-hex character
  EXPECT_TRUE(hex_decode("0g").empty());    // bad low nibble
  EXPECT_TRUE(hex_decode("g0").empty());    // bad high nibble
  EXPECT_TRUE(hex_decode("00 11").empty()); // embedded whitespace
}

// Microbench-as-test: the table-driven codecs must round-trip 1 MB of
// pseudo-random bytes intact. (Timing is reported by bench_store E20; here
// we only pin correctness at wire-realistic sizes.)
TEST(Bytes, HexRoundTripOneMegabyte) {
  Rng rng(0xbe5);
  Bytes blob;
  blob.reserve(1 << 20);
  for (int i = 0; i < (1 << 20); ++i)
    blob.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  const std::string hex = hex_encode(blob);
  ASSERT_EQ(hex.size(), blob.size() * 2);
  EXPECT_EQ(hex_decode(hex), blob);
}

// -------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.next_gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NameLengthAndCharset) {
  Rng rng(17);
  auto name = rng.next_name(12);
  EXPECT_EQ(name.size(), 12u);
  for (char c : name)
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'));
}

// ---------------------------------------------------------------- strings

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
}

TEST(Strings, JoinInvertsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nhi"), "hi");
  EXPECT_EQ(trim("   "), "");
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool expect;
};

class GlobTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobTest, Matches) {
  const GlobCase& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.expect)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobTest,
    ::testing::Values(
        GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
        GlobCase{"abc", "abc", true}, GlobCase{"abc", "abd", false},
        GlobCase{"a*c", "abc", true}, GlobCase{"a*c", "ac", true},
        GlobCase{"a*c", "abdc", true}, GlobCase{"a*c", "abcd", false},
        GlobCase{"Service/*", "Service/Device/PTZ", true},
        GlobCase{"Service/Device/*", "Service/Monitor/HRM", false},
        GlobCase{"*HRM*", "Service/Monitor/HRM", true},
        GlobCase{"a?c", "abc", true}, GlobCase{"a?c", "ac", false},
        GlobCase{"**", "x", true}, GlobCase{"", "", true},
        GlobCase{"", "x", false},
        // Fast-path shapes: exact, "prefix*", "*suffix" — and near misses
        // that must still take the general matcher ('?' anywhere, interior
        // or multiple '*').
        GlobCase{"exact-name", "exact-name", true},
        GlobCase{"exact-name", "exact-name2", false},
        GlobCase{"exact-name", "exact-nam", false},
        GlobCase{"room-*", "room-db", true},
        GlobCase{"room-*", "room-", true},
        GlobCase{"room-*", "roomdb", false},
        GlobCase{"room-*", "room", false},
        GlobCase{"*-db", "room-db", true},
        GlobCase{"*-db", "-db", true},
        GlobCase{"*-db", "db", false},
        GlobCase{"*?", "", false}, GlobCase{"*?", "x", true},
        GlobCase{"?*", "", false}, GlobCase{"?*", "xy", true}));

// Each fast path in glob_match must agree with the general backtracking
// matcher (reproduced here as the reference) on every pattern/text pair.
TEST(Strings, GlobFastPathsMatchGeneralMatcher) {
  auto reference = [](std::string_view pattern, std::string_view text) {
    std::size_t p = 0, t = 0;
    std::size_t star = std::string_view::npos, mark = 0;
    while (t < text.size()) {
      if (p < pattern.size() &&
          (pattern[p] == '?' || pattern[p] == text[t])) {
        ++p;
        ++t;
      } else if (p < pattern.size() && pattern[p] == '*') {
        star = p++;
        mark = t;
      } else if (star != std::string_view::npos) {
        p = star + 1;
        t = ++mark;
      } else {
        return false;
      }
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
  };
  const std::vector<std::string> patterns = {
      "*",        "abc",   "abc*", "*abc", "a*c",  "*a*", "a?c",
      "Service/*", "*/HRM", "",     "?",    "ab*",  "*ab", "room-db"};
  const std::vector<std::string> texts = {
      "",      "a",        "abc",         "abcd",    "xabc", "room-db",
      "ab",    "Service/", "Service/HRM", "a/HRM",   "ac",   "axc"};
  for (const auto& p : patterns)
    for (const auto& t : texts)
      EXPECT_EQ(glob_match(p, t), reference(p, t)) << p << " vs " << t;
}

// ------------------------------------------------------------------ Result

TEST(Result, ValueAndError) {
  Result<int> ok_value(7);
  EXPECT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 7);

  Result<int> err(Errc::not_found, "missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, Errc::not_found);
  EXPECT_EQ(err.error().to_string(), "not_found: missing");
  EXPECT_EQ(err.value_or(42), 42);
}

TEST(Result, StatusDefaultsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status bad(Errc::timeout, "late");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::timeout);
}
