# Empty dependencies file for bench_workspace.
# This may be replaced when dependencies are built.
