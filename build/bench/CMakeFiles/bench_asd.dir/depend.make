# Empty dependencies file for bench_asd.
# This may be replaced when dependencies are built.
