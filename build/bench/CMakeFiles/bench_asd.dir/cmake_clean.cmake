file(REMOVE_RECURSE
  "CMakeFiles/bench_asd.dir/bench_asd.cpp.o"
  "CMakeFiles/bench_asd.dir/bench_asd.cpp.o.d"
  "bench_asd"
  "bench_asd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
