# Empty compiler generated dependencies file for bench_audio.
# This may be replaced when dependencies are built.
