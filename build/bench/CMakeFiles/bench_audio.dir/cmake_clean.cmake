file(REMOVE_RECURSE
  "CMakeFiles/bench_audio.dir/bench_audio.cpp.o"
  "CMakeFiles/bench_audio.dir/bench_audio.cpp.o.d"
  "bench_audio"
  "bench_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
