file(REMOVE_RECURSE
  "CMakeFiles/bench_cmdlang.dir/bench_cmdlang.cpp.o"
  "CMakeFiles/bench_cmdlang.dir/bench_cmdlang.cpp.o.d"
  "bench_cmdlang"
  "bench_cmdlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmdlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
