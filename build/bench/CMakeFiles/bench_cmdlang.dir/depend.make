# Empty dependencies file for bench_cmdlang.
# This may be replaced when dependencies are built.
