file(REMOVE_RECURSE
  "libace_store.a"
)
