# Empty compiler generated dependencies file for ace_store.
# This may be replaced when dependencies are built.
