file(REMOVE_RECURSE
  "CMakeFiles/ace_store.dir/persistent_store.cpp.o"
  "CMakeFiles/ace_store.dir/persistent_store.cpp.o.d"
  "CMakeFiles/ace_store.dir/robustness.cpp.o"
  "CMakeFiles/ace_store.dir/robustness.cpp.o.d"
  "CMakeFiles/ace_store.dir/store_client.cpp.o"
  "CMakeFiles/ace_store.dir/store_client.cpp.o.d"
  "libace_store.a"
  "libace_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
