file(REMOVE_RECURSE
  "libace_services.a"
)
