# Empty dependencies file for ace_services.
# This may be replaced when dependencies are built.
