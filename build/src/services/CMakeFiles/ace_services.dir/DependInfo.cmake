
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/asd.cpp" "src/services/CMakeFiles/ace_services.dir/asd.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/asd.cpp.o.d"
  "/root/repo/src/services/auth_db.cpp" "src/services/CMakeFiles/ace_services.dir/auth_db.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/auth_db.cpp.o.d"
  "/root/repo/src/services/identification.cpp" "src/services/CMakeFiles/ace_services.dir/identification.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/identification.cpp.o.d"
  "/root/repo/src/services/launchers.cpp" "src/services/CMakeFiles/ace_services.dir/launchers.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/launchers.cpp.o.d"
  "/root/repo/src/services/monitors.cpp" "src/services/CMakeFiles/ace_services.dir/monitors.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/monitors.cpp.o.d"
  "/root/repo/src/services/net_logger.cpp" "src/services/CMakeFiles/ace_services.dir/net_logger.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/net_logger.cpp.o.d"
  "/root/repo/src/services/room_db.cpp" "src/services/CMakeFiles/ace_services.dir/room_db.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/room_db.cpp.o.d"
  "/root/repo/src/services/streaming.cpp" "src/services/CMakeFiles/ace_services.dir/streaming.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/streaming.cpp.o.d"
  "/root/repo/src/services/tracking.cpp" "src/services/CMakeFiles/ace_services.dir/tracking.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/tracking.cpp.o.d"
  "/root/repo/src/services/user_db.cpp" "src/services/CMakeFiles/ace_services.dir/user_db.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/user_db.cpp.o.d"
  "/root/repo/src/services/workspace.cpp" "src/services/CMakeFiles/ace_services.dir/workspace.cpp.o" "gcc" "src/services/CMakeFiles/ace_services.dir/workspace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/daemon/CMakeFiles/ace_daemon.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/ace_media.dir/DependInfo.cmake"
  "/root/repo/build/src/cmdlang/CMakeFiles/ace_cmdlang.dir/DependInfo.cmake"
  "/root/repo/build/src/keynote/CMakeFiles/ace_keynote.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ace_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
