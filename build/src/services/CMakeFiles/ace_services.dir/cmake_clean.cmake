file(REMOVE_RECURSE
  "CMakeFiles/ace_services.dir/asd.cpp.o"
  "CMakeFiles/ace_services.dir/asd.cpp.o.d"
  "CMakeFiles/ace_services.dir/auth_db.cpp.o"
  "CMakeFiles/ace_services.dir/auth_db.cpp.o.d"
  "CMakeFiles/ace_services.dir/identification.cpp.o"
  "CMakeFiles/ace_services.dir/identification.cpp.o.d"
  "CMakeFiles/ace_services.dir/launchers.cpp.o"
  "CMakeFiles/ace_services.dir/launchers.cpp.o.d"
  "CMakeFiles/ace_services.dir/monitors.cpp.o"
  "CMakeFiles/ace_services.dir/monitors.cpp.o.d"
  "CMakeFiles/ace_services.dir/net_logger.cpp.o"
  "CMakeFiles/ace_services.dir/net_logger.cpp.o.d"
  "CMakeFiles/ace_services.dir/room_db.cpp.o"
  "CMakeFiles/ace_services.dir/room_db.cpp.o.d"
  "CMakeFiles/ace_services.dir/streaming.cpp.o"
  "CMakeFiles/ace_services.dir/streaming.cpp.o.d"
  "CMakeFiles/ace_services.dir/tracking.cpp.o"
  "CMakeFiles/ace_services.dir/tracking.cpp.o.d"
  "CMakeFiles/ace_services.dir/user_db.cpp.o"
  "CMakeFiles/ace_services.dir/user_db.cpp.o.d"
  "CMakeFiles/ace_services.dir/workspace.cpp.o"
  "CMakeFiles/ace_services.dir/workspace.cpp.o.d"
  "libace_services.a"
  "libace_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
