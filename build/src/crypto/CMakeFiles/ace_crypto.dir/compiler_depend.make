# Empty compiler generated dependencies file for ace_crypto.
# This may be replaced when dependencies are built.
