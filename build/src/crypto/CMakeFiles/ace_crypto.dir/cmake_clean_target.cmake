file(REMOVE_RECURSE
  "libace_crypto.a"
)
