file(REMOVE_RECURSE
  "CMakeFiles/ace_crypto.dir/certificate.cpp.o"
  "CMakeFiles/ace_crypto.dir/certificate.cpp.o.d"
  "CMakeFiles/ace_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/ace_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/ace_crypto.dir/channel.cpp.o"
  "CMakeFiles/ace_crypto.dir/channel.cpp.o.d"
  "CMakeFiles/ace_crypto.dir/dh.cpp.o"
  "CMakeFiles/ace_crypto.dir/dh.cpp.o.d"
  "CMakeFiles/ace_crypto.dir/sha256.cpp.o"
  "CMakeFiles/ace_crypto.dir/sha256.cpp.o.d"
  "libace_crypto.a"
  "libace_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
