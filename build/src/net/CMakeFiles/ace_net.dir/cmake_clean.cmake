file(REMOVE_RECURSE
  "CMakeFiles/ace_net.dir/network.cpp.o"
  "CMakeFiles/ace_net.dir/network.cpp.o.d"
  "libace_net.a"
  "libace_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
