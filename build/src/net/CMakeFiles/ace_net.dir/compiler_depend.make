# Empty compiler generated dependencies file for ace_net.
# This may be replaced when dependencies are built.
