file(REMOVE_RECURSE
  "libace_net.a"
)
