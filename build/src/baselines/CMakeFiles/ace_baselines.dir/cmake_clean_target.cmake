file(REMOVE_RECURSE
  "libace_baselines.a"
)
