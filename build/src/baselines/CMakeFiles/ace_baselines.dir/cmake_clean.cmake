file(REMOVE_RECURSE
  "CMakeFiles/ace_baselines.dir/centralized.cpp.o"
  "CMakeFiles/ace_baselines.dir/centralized.cpp.o.d"
  "CMakeFiles/ace_baselines.dir/jini.cpp.o"
  "CMakeFiles/ace_baselines.dir/jini.cpp.o.d"
  "CMakeFiles/ace_baselines.dir/rmi.cpp.o"
  "CMakeFiles/ace_baselines.dir/rmi.cpp.o.d"
  "libace_baselines.a"
  "libace_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
