# Empty dependencies file for ace_baselines.
# This may be replaced when dependencies are built.
