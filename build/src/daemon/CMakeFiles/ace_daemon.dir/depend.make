# Empty dependencies file for ace_daemon.
# This may be replaced when dependencies are built.
