
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/daemon/client.cpp" "src/daemon/CMakeFiles/ace_daemon.dir/client.cpp.o" "gcc" "src/daemon/CMakeFiles/ace_daemon.dir/client.cpp.o.d"
  "/root/repo/src/daemon/daemon.cpp" "src/daemon/CMakeFiles/ace_daemon.dir/daemon.cpp.o" "gcc" "src/daemon/CMakeFiles/ace_daemon.dir/daemon.cpp.o.d"
  "/root/repo/src/daemon/devices.cpp" "src/daemon/CMakeFiles/ace_daemon.dir/devices.cpp.o" "gcc" "src/daemon/CMakeFiles/ace_daemon.dir/devices.cpp.o.d"
  "/root/repo/src/daemon/environment.cpp" "src/daemon/CMakeFiles/ace_daemon.dir/environment.cpp.o" "gcc" "src/daemon/CMakeFiles/ace_daemon.dir/environment.cpp.o.d"
  "/root/repo/src/daemon/host.cpp" "src/daemon/CMakeFiles/ace_daemon.dir/host.cpp.o" "gcc" "src/daemon/CMakeFiles/ace_daemon.dir/host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ace_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cmdlang/CMakeFiles/ace_cmdlang.dir/DependInfo.cmake"
  "/root/repo/build/src/keynote/CMakeFiles/ace_keynote.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
