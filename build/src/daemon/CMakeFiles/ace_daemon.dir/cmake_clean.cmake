file(REMOVE_RECURSE
  "CMakeFiles/ace_daemon.dir/client.cpp.o"
  "CMakeFiles/ace_daemon.dir/client.cpp.o.d"
  "CMakeFiles/ace_daemon.dir/daemon.cpp.o"
  "CMakeFiles/ace_daemon.dir/daemon.cpp.o.d"
  "CMakeFiles/ace_daemon.dir/devices.cpp.o"
  "CMakeFiles/ace_daemon.dir/devices.cpp.o.d"
  "CMakeFiles/ace_daemon.dir/environment.cpp.o"
  "CMakeFiles/ace_daemon.dir/environment.cpp.o.d"
  "CMakeFiles/ace_daemon.dir/host.cpp.o"
  "CMakeFiles/ace_daemon.dir/host.cpp.o.d"
  "libace_daemon.a"
  "libace_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
