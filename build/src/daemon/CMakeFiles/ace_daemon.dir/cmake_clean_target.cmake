file(REMOVE_RECURSE
  "libace_daemon.a"
)
