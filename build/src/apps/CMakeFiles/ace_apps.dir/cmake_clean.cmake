file(REMOVE_RECURSE
  "CMakeFiles/ace_apps.dir/admin_gui.cpp.o"
  "CMakeFiles/ace_apps.dir/admin_gui.cpp.o.d"
  "CMakeFiles/ace_apps.dir/framebuffer.cpp.o"
  "CMakeFiles/ace_apps.dir/framebuffer.cpp.o.d"
  "CMakeFiles/ace_apps.dir/mobile.cpp.o"
  "CMakeFiles/ace_apps.dir/mobile.cpp.o.d"
  "CMakeFiles/ace_apps.dir/ophone.cpp.o"
  "CMakeFiles/ace_apps.dir/ophone.cpp.o.d"
  "CMakeFiles/ace_apps.dir/vnc.cpp.o"
  "CMakeFiles/ace_apps.dir/vnc.cpp.o.d"
  "CMakeFiles/ace_apps.dir/workspace_backend.cpp.o"
  "CMakeFiles/ace_apps.dir/workspace_backend.cpp.o.d"
  "libace_apps.a"
  "libace_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
