file(REMOVE_RECURSE
  "CMakeFiles/ace_media.dir/audio.cpp.o"
  "CMakeFiles/ace_media.dir/audio.cpp.o.d"
  "CMakeFiles/ace_media.dir/audio_services.cpp.o"
  "CMakeFiles/ace_media.dir/audio_services.cpp.o.d"
  "CMakeFiles/ace_media.dir/codec.cpp.o"
  "CMakeFiles/ace_media.dir/codec.cpp.o.d"
  "CMakeFiles/ace_media.dir/dsp.cpp.o"
  "CMakeFiles/ace_media.dir/dsp.cpp.o.d"
  "libace_media.a"
  "libace_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
