file(REMOVE_RECURSE
  "libace_media.a"
)
