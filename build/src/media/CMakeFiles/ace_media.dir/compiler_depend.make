# Empty compiler generated dependencies file for ace_media.
# This may be replaced when dependencies are built.
