file(REMOVE_RECURSE
  "CMakeFiles/ace_util.dir/bytes.cpp.o"
  "CMakeFiles/ace_util.dir/bytes.cpp.o.d"
  "CMakeFiles/ace_util.dir/log.cpp.o"
  "CMakeFiles/ace_util.dir/log.cpp.o.d"
  "CMakeFiles/ace_util.dir/rng.cpp.o"
  "CMakeFiles/ace_util.dir/rng.cpp.o.d"
  "CMakeFiles/ace_util.dir/strings.cpp.o"
  "CMakeFiles/ace_util.dir/strings.cpp.o.d"
  "libace_util.a"
  "libace_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
