file(REMOVE_RECURSE
  "libace_util.a"
)
