file(REMOVE_RECURSE
  "libace_keynote.a"
)
