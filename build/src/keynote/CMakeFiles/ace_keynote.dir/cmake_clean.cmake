file(REMOVE_RECURSE
  "CMakeFiles/ace_keynote.dir/assertion.cpp.o"
  "CMakeFiles/ace_keynote.dir/assertion.cpp.o.d"
  "CMakeFiles/ace_keynote.dir/checker.cpp.o"
  "CMakeFiles/ace_keynote.dir/checker.cpp.o.d"
  "CMakeFiles/ace_keynote.dir/expr.cpp.o"
  "CMakeFiles/ace_keynote.dir/expr.cpp.o.d"
  "libace_keynote.a"
  "libace_keynote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_keynote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
