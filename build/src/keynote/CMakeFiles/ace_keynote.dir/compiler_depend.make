# Empty compiler generated dependencies file for ace_keynote.
# This may be replaced when dependencies are built.
