
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keynote/assertion.cpp" "src/keynote/CMakeFiles/ace_keynote.dir/assertion.cpp.o" "gcc" "src/keynote/CMakeFiles/ace_keynote.dir/assertion.cpp.o.d"
  "/root/repo/src/keynote/checker.cpp" "src/keynote/CMakeFiles/ace_keynote.dir/checker.cpp.o" "gcc" "src/keynote/CMakeFiles/ace_keynote.dir/checker.cpp.o.d"
  "/root/repo/src/keynote/expr.cpp" "src/keynote/CMakeFiles/ace_keynote.dir/expr.cpp.o" "gcc" "src/keynote/CMakeFiles/ace_keynote.dir/expr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ace_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ace_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
