
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cmdlang/parser.cpp" "src/cmdlang/CMakeFiles/ace_cmdlang.dir/parser.cpp.o" "gcc" "src/cmdlang/CMakeFiles/ace_cmdlang.dir/parser.cpp.o.d"
  "/root/repo/src/cmdlang/semantics.cpp" "src/cmdlang/CMakeFiles/ace_cmdlang.dir/semantics.cpp.o" "gcc" "src/cmdlang/CMakeFiles/ace_cmdlang.dir/semantics.cpp.o.d"
  "/root/repo/src/cmdlang/value.cpp" "src/cmdlang/CMakeFiles/ace_cmdlang.dir/value.cpp.o" "gcc" "src/cmdlang/CMakeFiles/ace_cmdlang.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
