file(REMOVE_RECURSE
  "libace_cmdlang.a"
)
