# Empty dependencies file for ace_cmdlang.
# This may be replaced when dependencies are built.
