file(REMOVE_RECURSE
  "CMakeFiles/ace_cmdlang.dir/parser.cpp.o"
  "CMakeFiles/ace_cmdlang.dir/parser.cpp.o.d"
  "CMakeFiles/ace_cmdlang.dir/semantics.cpp.o"
  "CMakeFiles/ace_cmdlang.dir/semantics.cpp.o.d"
  "CMakeFiles/ace_cmdlang.dir/value.cpp.o"
  "CMakeFiles/ace_cmdlang.dir/value.cpp.o.d"
  "libace_cmdlang.a"
  "libace_cmdlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_cmdlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
