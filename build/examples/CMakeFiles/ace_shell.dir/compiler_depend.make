# Empty compiler generated dependencies file for ace_shell.
# This may be replaced when dependencies are built.
