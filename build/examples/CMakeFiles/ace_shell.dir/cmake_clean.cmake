file(REMOVE_RECURSE
  "CMakeFiles/ace_shell.dir/ace_shell.cpp.o"
  "CMakeFiles/ace_shell.dir/ace_shell.cpp.o.d"
  "ace_shell"
  "ace_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ace_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
