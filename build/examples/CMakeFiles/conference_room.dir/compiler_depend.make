# Empty compiler generated dependencies file for conference_room.
# This may be replaced when dependencies are built.
