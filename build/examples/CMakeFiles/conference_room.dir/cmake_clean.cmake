file(REMOVE_RECURSE
  "CMakeFiles/conference_room.dir/conference_room.cpp.o"
  "CMakeFiles/conference_room.dir/conference_room.cpp.o.d"
  "conference_room"
  "conference_room.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conference_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
