file(REMOVE_RECURSE
  "CMakeFiles/audio_conferencing.dir/audio_conferencing.cpp.o"
  "CMakeFiles/audio_conferencing.dir/audio_conferencing.cpp.o.d"
  "audio_conferencing"
  "audio_conferencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_conferencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
