# Empty dependencies file for audio_conferencing.
# This may be replaced when dependencies are built.
