# Empty dependencies file for new_user_onboarding.
# This may be replaced when dependencies are built.
