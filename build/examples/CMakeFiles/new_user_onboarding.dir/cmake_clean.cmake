file(REMOVE_RECURSE
  "CMakeFiles/new_user_onboarding.dir/new_user_onboarding.cpp.o"
  "CMakeFiles/new_user_onboarding.dir/new_user_onboarding.cpp.o.d"
  "new_user_onboarding"
  "new_user_onboarding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/new_user_onboarding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
