file(REMOVE_RECURSE
  "CMakeFiles/robust_failover.dir/robust_failover.cpp.o"
  "CMakeFiles/robust_failover.dir/robust_failover.cpp.o.d"
  "robust_failover"
  "robust_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
