# Empty compiler generated dependencies file for robust_failover.
# This may be replaced when dependencies are built.
