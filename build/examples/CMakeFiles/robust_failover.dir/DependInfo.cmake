
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/robust_failover.cpp" "examples/CMakeFiles/robust_failover.dir/robust_failover.cpp.o" "gcc" "examples/CMakeFiles/robust_failover.dir/robust_failover.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ace_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ace_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cmdlang/CMakeFiles/ace_cmdlang.dir/DependInfo.cmake"
  "/root/repo/build/src/keynote/CMakeFiles/ace_keynote.dir/DependInfo.cmake"
  "/root/repo/build/src/daemon/CMakeFiles/ace_daemon.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/ace_services.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/ace_store.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/ace_media.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ace_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ace_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
