file(REMOVE_RECURSE
  "CMakeFiles/test_services2.dir/test_services2.cpp.o"
  "CMakeFiles/test_services2.dir/test_services2.cpp.o.d"
  "test_services2"
  "test_services2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_services2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
