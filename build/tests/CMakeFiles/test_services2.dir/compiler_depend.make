# Empty compiler generated dependencies file for test_services2.
# This may be replaced when dependencies are built.
