file(REMOVE_RECURSE
  "CMakeFiles/test_keynote.dir/test_keynote.cpp.o"
  "CMakeFiles/test_keynote.dir/test_keynote.cpp.o.d"
  "test_keynote"
  "test_keynote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keynote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
