# Empty compiler generated dependencies file for test_keynote.
# This may be replaced when dependencies are built.
