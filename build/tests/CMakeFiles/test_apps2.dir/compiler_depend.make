# Empty compiler generated dependencies file for test_apps2.
# This may be replaced when dependencies are built.
