file(REMOVE_RECURSE
  "CMakeFiles/test_apps2.dir/test_apps2.cpp.o"
  "CMakeFiles/test_apps2.dir/test_apps2.cpp.o.d"
  "test_apps2"
  "test_apps2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
