# Empty compiler generated dependencies file for test_cmdlang.
# This may be replaced when dependencies are built.
