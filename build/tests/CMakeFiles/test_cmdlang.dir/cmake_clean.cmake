file(REMOVE_RECURSE
  "CMakeFiles/test_cmdlang.dir/test_cmdlang.cpp.o"
  "CMakeFiles/test_cmdlang.dir/test_cmdlang.cpp.o.d"
  "test_cmdlang"
  "test_cmdlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmdlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
