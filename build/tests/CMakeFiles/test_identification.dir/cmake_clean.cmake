file(REMOVE_RECURSE
  "CMakeFiles/test_identification.dir/test_identification.cpp.o"
  "CMakeFiles/test_identification.dir/test_identification.cpp.o.d"
  "test_identification"
  "test_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
