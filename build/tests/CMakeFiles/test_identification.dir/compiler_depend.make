# Empty compiler generated dependencies file for test_identification.
# This may be replaced when dependencies are built.
