#include "crypto/chacha20.hpp"

#include <cstring>

namespace ace::crypto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void chacha20_block(const ChaChaKey& key, const ChaChaNonce& nonce,
                    std::uint32_t counter, std::uint8_t out[64]) {
  std::uint32_t state[16];
  state[0] = 0x61707865; state[1] = 0x3320646e;
  state[2] = 0x79622d32; state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32(nonce.data() + 4 * i);

  std::uint32_t x[16];
  for (int i = 0; i < 16; ++i) x[i] = state[i];
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    std::uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t counter, util::Bytes& data) {
  chacha20_xor(key, nonce, counter, data.data(), data.size());
}

void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t counter, std::uint8_t* data, std::size_t n) {
  std::uint8_t keystream[64];
  std::size_t offset = 0;
  while (offset < n) {
    chacha20_block(key, nonce, counter++, keystream);
    std::size_t take = std::min<std::size_t>(64, n - offset);
    // XOR the keystream in 8-byte words. memcpy keeps it alignment-safe
    // (data may sit at any offset inside a frame) and compiles to plain
    // word loads/stores.
    std::uint8_t* out = data + offset;
    std::size_t i = 0;
    for (; i + sizeof(std::uint64_t) <= take; i += sizeof(std::uint64_t)) {
      std::uint64_t d, k;
      std::memcpy(&d, out + i, sizeof(d));
      std::memcpy(&k, keystream + i, sizeof(k));
      d ^= k;
      std::memcpy(out + i, &d, sizeof(d));
    }
    for (; i < take; ++i) out[i] ^= keystream[i];
    offset += take;
  }
}

ChaChaNonce nonce_from_sequence(std::uint64_t sequence, std::uint32_t salt) {
  ChaChaNonce nonce{};
  for (int i = 0; i < 8; ++i)
    nonce[i] = static_cast<std::uint8_t>(sequence >> (8 * i));
  for (int i = 0; i < 4; ++i)
    nonce[8 + i] = static_cast<std::uint8_t>(salt >> (8 * i));
  return nonce;
}

}  // namespace ace::crypto
