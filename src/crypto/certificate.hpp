// Identity certificates and the certificate authority for the ACE secure
// channel. A certificate binds a principal name to its static DH public key
// and is tagged by the CA (HMAC under the CA key — the simulation's stand-in
// for an RSA signature; every verifier holds the CA verification key).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/dh.hpp"
#include "crypto/sha256.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ace::crypto {

struct Certificate {
  std::string subject;              // principal name, e.g. "svc/asd@hawk"
  std::uint64_t static_public = 0;  // static DH public key
  std::uint64_t serial = 0;
  std::uint64_t expires_unix = 0;   // 0 = never (simulation default)
  util::Bytes tag;                  // CA authentication tag

  util::Bytes signed_payload() const;
  util::Bytes serialize() const;
  static std::optional<Certificate> parse(const util::Bytes& data);
};

// A principal's credentials: certificate plus the matching static private
// key. Issued by the CertificateAuthority.
struct Identity {
  Certificate certificate;
  std::uint64_t static_private = 0;

  const std::string& name() const { return certificate.subject; }
};

class CertificateAuthority {
 public:
  explicit CertificateAuthority(std::uint64_t seed = 0xaceca);

  // Issues a fresh identity (static DH key pair + CA-tagged certificate).
  Identity issue(const std::string& subject);

  // Verification key handed to every ACE host so daemons can verify peers.
  const util::Bytes& verification_key() const { return key_; }

  static bool verify(const Certificate& cert, const util::Bytes& ca_key);

 private:
  util::Bytes key_;
  util::Rng rng_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace ace::crypto
