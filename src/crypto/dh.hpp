// Diffie-Hellman key agreement over the multiplicative group mod the
// Mersenne prime 2^61 - 1.
//
// SUBSTITUTION NOTE (see DESIGN.md): the group is deliberately small — this
// reproduces the *structure* and cost profile of the paper's SSL key
// exchange inside the simulation; it is not production-strength crypto.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace ace::crypto {

inline constexpr std::uint64_t kDhPrime = (1ULL << 61) - 1;
inline constexpr std::uint64_t kDhGenerator = 3;

struct DhKeyPair {
  std::uint64_t private_key = 0;
  std::uint64_t public_key = 0;
};

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t mod);

DhKeyPair dh_generate(util::Rng& rng);

// shared = peer_public ^ my_private mod p
std::uint64_t dh_shared(std::uint64_t my_private, std::uint64_t peer_public);

}  // namespace ace::crypto
