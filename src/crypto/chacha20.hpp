// ChaCha20 stream cipher (RFC 8439 core). Used as the record cipher of the
// ACE secure channel, substituting the SSL bulk encryption of paper §3.1.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace ace::crypto {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

// XORs the ChaCha20 keystream into `data` in place (encrypt == decrypt).
void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t counter, util::Bytes& data);
// Range form: decrypts a sub-span of a frame in place (no payload copy).
void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t counter, std::uint8_t* data, std::size_t n);

// Convenience: builds a nonce from a 64-bit sequence number (little endian
// in the low 8 bytes), as the channel record layer does.
ChaChaNonce nonce_from_sequence(std::uint64_t sequence, std::uint32_t salt);

}  // namespace ace::crypto
