// Secure channel over a net::Connection — the simulation's SSL (paper §3.1).
//
// Handshake (Noise-KK-like): each side sends {nonce, ephemeral DH public,
// certificate}; both verify the peer certificate against the CA key, then
// exchange authenticators HMAC'd under the *static* DH shared secret over the
// handshake transcript. Session keys are HKDF-derived from the ephemeral and
// static shared secrets. Records are ChaCha20-encrypted and HMAC-tagged,
// with per-direction sequence numbers (replay/reorder detection).
//
// A plaintext mode exists solely for the E5 security-overhead ablation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include <functional>

#include "crypto/certificate.hpp"
#include "crypto/chacha20.hpp"
#include "net/network.hpp"
#include "net/reactor.hpp"
#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace ace::crypto {

namespace detail {
struct HandshakeCore;
struct AsyncHandshake;
}  // namespace detail

struct ChannelOptions {
  bool encrypt = true;     // false = plaintext passthrough (ablation only)
  std::uint64_t seed = 0;  // 0 = derive from a process-wide counter
  // Highest command-protocol version offered in the handshake hello; the
  // channel's negotiated_version() is min(ours, peer's). A v1 peer's hello
  // carries no version field and is taken as 1, so v1/v2 interoperate.
  // Plaintext channels skip the handshake and cannot negotiate: both ends
  // of a plaintext deployment must be configured with the same value.
  std::uint8_t protocol = 2;
  // Handshake outcomes and latency land here under `crypto.*` names
  // (daemon::Environment wires its registry in automatically).
  obs::MetricsRegistry* metrics = nullptr;
};

class SecureChannel {
 public:
  SecureChannel() = default;

  // Client side of the handshake. Consumes the connection. Blocks the
  // calling thread across the round trips.
  static util::Result<SecureChannel> connect(net::Connection conn,
                                             const Identity& self,
                                             const util::Bytes& ca_key,
                                             net::Duration timeout,
                                             ChannelOptions options = {});

  // Server side of the handshake.
  static util::Result<SecureChannel> accept(net::Connection conn,
                                            const Identity& self,
                                            const util::Bytes& ca_key,
                                            net::Duration timeout,
                                            ChannelOptions options = {});

  // Non-blocking handshakes: the same DH/certificate exchange driven as a
  // reactor state machine — each peer frame advances it on a core worker;
  // `timeout` arms a reactor timer that aborts (and closes the connection)
  // if the peer stalls. `done` is invoked exactly once, on a reactor
  // worker or (on an immediate failure / plaintext channel) on the calling
  // thread. This is what lets a daemon run thousands of concurrent
  // handshakes on O(pool) threads.
  using HandshakeCallback = std::function<void(util::Result<SecureChannel>)>;
  static void async_connect(net::Reactor& reactor, net::Connection conn,
                            const Identity& self, const util::Bytes& ca_key,
                            net::Duration timeout, ChannelOptions options,
                            HandshakeCallback done);
  static void async_accept(net::Reactor& reactor, net::Connection conn,
                           const Identity& self, const util::Bytes& ca_key,
                           net::Duration timeout, ChannelOptions options,
                           HandshakeCallback done);

  bool valid() const { return state_ != nullptr; }

  util::Status send(net::Frame frame);
  std::optional<net::Frame> recv(net::Duration timeout);

  // Async surface: decrypted plaintext frames delivered in order on a
  // reactor worker; handler(std::nullopt) once when the channel dies.
  // Stricter than the blocking shim on tampering: a record that fails MAC,
  // sequence or framing checks closes the channel (the blocking recv just
  // drops it), because a callback consumer has no per-call deadline with
  // which to notice a poisoned stream.
  net::Subscription on_frame(
      net::Reactor& reactor,
      std::function<void(std::optional<net::Frame>)> handler,
      net::AttachOptions options = {});

  void close();
  bool closed() const;

  // Authenticated peer principal name (from its certificate); empty in
  // plaintext mode.
  const std::string& peer_name() const;

  // Command-protocol version agreed at handshake (1 for legacy peers).
  // Governs the framing layered on top of this channel, not the record
  // format, which is version-independent.
  std::uint8_t negotiated_version() const;

 private:
  struct DirectionKeys {
    ChaChaKey cipher_key{};
    std::uint32_t nonce_salt = 0;
    util::Bytes mac_key;
    std::uint64_t sequence = 0;
  };

  struct State {
    net::Connection conn;
    bool encrypt = true;
    std::uint8_t version = 1;
    std::string peer;
    DirectionKeys send_keys;
    DirectionKeys recv_keys;
    std::mutex send_mu;
    std::mutex recv_mu;
  };

  // Shared handshake logic (crypto + transcript) lives in
  // detail::HandshakeCore; the blocking path loops recv/feed over it and
  // the async path feeds it from a reactor pump.
  friend struct detail::HandshakeCore;
  friend struct detail::AsyncHandshake;

  static util::Result<SecureChannel> handshake(net::Connection conn,
                                               const Identity& self,
                                               const util::Bytes& ca_key,
                                               net::Duration timeout,
                                               ChannelOptions options,
                                               bool is_client);

  // Verifies and decrypts one record in place (see recv). nullopt = forged
  // or replayed. Caller coordinates recv_mu.
  static std::optional<net::Frame> decrypt_record(State& state,
                                                  net::Frame record);

  std::shared_ptr<State> state_;
};

}  // namespace ace::crypto
