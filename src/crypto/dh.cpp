#include "crypto/dh.hpp"

namespace ace::crypto {

std::uint64_t mod_pow(std::uint64_t base, std::uint64_t exp,
                      std::uint64_t mod) {
  unsigned __int128 result = 1;
  unsigned __int128 b = base % mod;
  while (exp > 0) {
    if (exp & 1) result = result * b % mod;
    b = b * b % mod;
    exp >>= 1;
  }
  return static_cast<std::uint64_t>(result);
}

DhKeyPair dh_generate(util::Rng& rng) {
  DhKeyPair kp;
  // Private exponent in [2, p-2].
  kp.private_key = 2 + rng.next_below(kDhPrime - 3);
  kp.public_key = mod_pow(kDhGenerator, kp.private_key, kDhPrime);
  return kp;
}

std::uint64_t dh_shared(std::uint64_t my_private, std::uint64_t peer_public) {
  return mod_pow(peer_public, my_private, kDhPrime);
}

}  // namespace ace::crypto
