#include "crypto/certificate.hpp"

namespace ace::crypto {

util::Bytes Certificate::signed_payload() const {
  util::ByteWriter w;
  w.str(subject);
  w.u64(static_public);
  w.u64(serial);
  w.u64(expires_unix);
  return w.take();
}

util::Bytes Certificate::serialize() const {
  util::ByteWriter w;
  w.str(subject);
  w.u64(static_public);
  w.u64(serial);
  w.u64(expires_unix);
  w.blob(tag);
  return w.take();
}

std::optional<Certificate> Certificate::parse(const util::Bytes& data) {
  util::ByteReader r(data);
  Certificate c;
  auto subject = r.str();
  auto pub = r.u64();
  auto serial = r.u64();
  auto expires = r.u64();
  auto tag = r.blob();
  if (!subject || !pub || !serial || !expires || !tag) return std::nullopt;
  c.subject = std::move(*subject);
  c.static_public = *pub;
  c.serial = *serial;
  c.expires_unix = *expires;
  c.tag = std::move(*tag);
  return c;
}

CertificateAuthority::CertificateAuthority(std::uint64_t seed) : rng_(seed) {
  key_.resize(32);
  for (auto& b : key_) b = static_cast<std::uint8_t>(rng_.next());
}

Identity CertificateAuthority::issue(const std::string& subject) {
  Identity id;
  DhKeyPair kp = dh_generate(rng_);
  id.static_private = kp.private_key;
  id.certificate.subject = subject;
  id.certificate.static_public = kp.public_key;
  id.certificate.serial = next_serial_++;
  id.certificate.expires_unix = 0;
  Digest tag = hmac_sha256(key_, id.certificate.signed_payload());
  id.certificate.tag.assign(tag.begin(), tag.end());
  return id;
}

bool CertificateAuthority::verify(const Certificate& cert,
                                  const util::Bytes& ca_key) {
  Digest expected = hmac_sha256(ca_key, cert.signed_payload());
  if (cert.tag.size() != expected.size()) return false;
  // Constant-time comparison.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i)
    diff |= static_cast<std::uint8_t>(cert.tag[i] ^ expected[i]);
  return diff == 0;
}

}  // namespace ace::crypto
