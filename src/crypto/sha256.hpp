// SHA-256, HMAC-SHA256 and a simplified HKDF. Implemented from scratch for
// the ACE secure-channel substitution of the paper's SSL layer (§3.1).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/bytes.hpp"

namespace ace::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(const std::uint8_t* data, std::size_t n);
  void update(const util::Bytes& b) { update(b.data(), b.size()); }
  void update(std::string_view s) {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

Digest sha256(const util::Bytes& data);
Digest sha256(std::string_view data);

Digest hmac_sha256(const util::Bytes& key, const util::Bytes& message);
// Range form, for MACing a prefix of a buffer without copying it out.
Digest hmac_sha256(const util::Bytes& key, const std::uint8_t* message,
                   std::size_t n);

// HKDF-style key derivation: extract with `salt`, expand `length` bytes of
// output keyed material labelled by `info`.
util::Bytes hkdf(const util::Bytes& salt, const util::Bytes& ikm,
                 std::string_view info, std::size_t length);

util::Bytes digest_bytes(const Digest& d);

}  // namespace ace::crypto
