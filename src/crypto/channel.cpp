#include "crypto/channel.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

namespace ace::crypto {

namespace {

constexpr std::size_t kMacTagLen = 16;

std::uint64_t next_channel_seed() {
  static std::atomic<std::uint64_t> counter{0x5eedface};
  return counter.fetch_add(0x9e3779b97f4a7c15ULL);
}

util::Bytes u64_bytes(std::uint64_t v) {
  util::ByteWriter w;
  w.u64(v);
  return w.take();
}

struct Hello {
  util::Bytes nonce;  // 16 bytes
  std::uint64_t ephemeral_public = 0;
  Certificate certificate;
  std::uint8_t protocol = 1;

  util::Bytes serialize() const {
    util::ByteWriter w;
    w.blob(nonce);
    w.u64(ephemeral_public);
    w.blob(certificate.serialize());
    // Version negotiation rides as a trailing byte: v1 peers parse only
    // the three fields above and ignore the tail, so a v2 hello is still a
    // valid v1 hello. A v1 hello simply omits the byte.
    if (protocol > 1) w.u8(protocol);
    return w.take();
  }

  static std::optional<Hello> parse(const util::Bytes& data) {
    util::ByteReader r(data);
    Hello h;
    auto nonce = r.blob();
    auto eph = r.u64();
    auto cert_blob = r.blob();
    if (!nonce || !eph || !cert_blob) return std::nullopt;
    auto cert = Certificate::parse(*cert_blob);
    if (!cert) return std::nullopt;
    h.nonce = std::move(*nonce);
    h.ephemeral_public = *eph;
    h.certificate = std::move(*cert);
    if (r.remaining() >= 1) h.protocol = std::max<std::uint8_t>(1, *r.u8());
    return h;
  }
};

}  // namespace

util::Result<SecureChannel> SecureChannel::connect(net::Connection conn,
                                                   const Identity& self,
                                                   const util::Bytes& ca_key,
                                                   net::Duration timeout,
                                                   ChannelOptions options) {
  if (!options.metrics)
    return handshake(std::move(conn), self, ca_key, timeout, options,
                     /*is_client=*/true);
  obs::Span span(*options.metrics, "crypto", "handshake");
  auto r = handshake(std::move(conn), self, ca_key, timeout, options,
                     /*is_client=*/true);
  span.set_ok(r.ok());
  options.metrics
      ->counter(r.ok() ? "crypto.handshakes" : "crypto.handshake_failures")
      .inc();
  return r;
}

util::Result<SecureChannel> SecureChannel::accept(net::Connection conn,
                                                  const Identity& self,
                                                  const util::Bytes& ca_key,
                                                  net::Duration timeout,
                                                  ChannelOptions options) {
  if (!options.metrics)
    return handshake(std::move(conn), self, ca_key, timeout, options,
                     /*is_client=*/false);
  obs::Span span(*options.metrics, "crypto", "handshake");
  auto r = handshake(std::move(conn), self, ca_key, timeout, options,
                     /*is_client=*/false);
  span.set_ok(r.ok());
  options.metrics
      ->counter(r.ok() ? "crypto.handshakes" : "crypto.handshake_failures")
      .inc();
  return r;
}

namespace detail {

// The transport-independent half of the handshake: crypto, transcript and
// message sequencing. init() produces the local hello; each peer frame is
// fed to on_frame(), which appends any frames that must be sent in reply;
// once done, finish() wraps the connection. The blocking handshake() loops
// recv/feed over this; the async path feeds it from a reactor pump. Both
// speak the identical wire exchange:
//   client -> hello; server -> [hello, auth]; client -> auth.
// (The legacy lock-step code sent the server hello before the server auth
// too, so the bytes on the wire are unchanged.)
struct HandshakeCore {
  bool is_client = false;
  Identity self;
  util::Bytes ca_key;

  util::Bytes my_hello;
  std::uint8_t my_protocol = 1;
  DhKeyPair ephemeral{};
  util::Bytes expected_peer_auth;
  std::shared_ptr<SecureChannel::State> state;
  int frames_seen = 0;
  bool done = false;

  void init(bool client, const Identity& identity, const util::Bytes& ca,
            const ChannelOptions& options) {
    is_client = client;
    self = identity;
    ca_key = ca;
    state = std::make_shared<SecureChannel::State>();
    state->encrypt = true;

    util::Rng rng(options.seed ? options.seed : next_channel_seed());
    Hello mine;
    mine.nonce.resize(16);
    for (auto& b : mine.nonce) b = static_cast<std::uint8_t>(rng.next());
    ephemeral = dh_generate(rng);
    mine.ephemeral_public = ephemeral.public_key;
    mine.certificate = self.certificate;
    mine.protocol = std::max<std::uint8_t>(1, options.protocol);
    my_protocol = mine.protocol;
    my_hello = mine.serialize();
  }

  util::Status on_frame(const util::Bytes& frame,
                        std::vector<util::Bytes>& out) {
    if (frames_seen++ == 0) return on_peer_hello(frame, out);

    if (frame != expected_peer_auth)
      return util::Error{util::Errc::auth_error,
                         "handshake: peer authentication failed"};
    done = true;
    return {};
  }

  util::Status on_peer_hello(const util::Bytes& peer_hello_bytes,
                             std::vector<util::Bytes>& out) {
    auto peer_hello = Hello::parse(peer_hello_bytes);
    if (!peer_hello)
      return util::Error{util::Errc::parse_error, "handshake: bad hello"};
    if (!CertificateAuthority::verify(peer_hello->certificate, ca_key))
      return util::Error{util::Errc::auth_error,
                         "handshake: certificate verification failed"};

    // Transcript binds both hellos, client first.
    Sha256 th;
    th.update(is_client ? my_hello : peer_hello_bytes);
    th.update(is_client ? peer_hello_bytes : my_hello);
    Digest transcript = th.finish();
    util::Bytes transcript_bytes(transcript.begin(), transcript.end());

    std::uint64_t ephemeral_shared =
        dh_shared(ephemeral.private_key, peer_hello->ephemeral_public);
    std::uint64_t static_shared =
        dh_shared(self.static_private, peer_hello->certificate.static_public);

    // Mutual authentication: prove possession of the static private key.
    util::Bytes static_shared_bytes = u64_bytes(static_shared);
    auto authenticator = [&](const char* label) {
      util::Bytes msg = transcript_bytes;
      msg.insert(msg.end(), label,
                 label + std::char_traits<char>::length(label));
      Digest d = hmac_sha256(static_shared_bytes, msg);
      return util::Bytes(d.begin(), d.end());
    };
    util::Bytes my_auth = authenticator(is_client ? "client" : "server");
    expected_peer_auth = authenticator(is_client ? "server" : "client");

    // Session keys: 2 x (32B cipher key + 4B nonce salt + 32B mac key).
    util::Bytes ikm = u64_bytes(ephemeral_shared);
    util::Bytes ss = u64_bytes(static_shared);
    ikm.insert(ikm.end(), ss.begin(), ss.end());
    util::Bytes keys = hkdf(transcript_bytes, ikm, "ace-secure-channel", 136);

    auto load_direction = [&](std::size_t offset,
                              SecureChannel::DirectionKeys& dir) {
      std::copy(keys.begin() + offset, keys.begin() + offset + 32,
                dir.cipher_key.begin());
      dir.nonce_salt = static_cast<std::uint32_t>(keys[offset + 32]) |
                       static_cast<std::uint32_t>(keys[offset + 33]) << 8 |
                       static_cast<std::uint32_t>(keys[offset + 34]) << 16 |
                       static_cast<std::uint32_t>(keys[offset + 35]) << 24;
      dir.mac_key.assign(keys.begin() + offset + 36,
                         keys.begin() + offset + 68);
    };
    SecureChannel::DirectionKeys client_to_server, server_to_client;
    load_direction(0, client_to_server);
    load_direction(68, server_to_client);

    state->peer = peer_hello->certificate.subject;
    state->version = std::min(my_protocol, peer_hello->protocol);
    state->send_keys = is_client ? client_to_server : server_to_client;
    state->recv_keys = is_client ? server_to_client : client_to_server;

    if (!is_client) out.push_back(my_hello);
    out.push_back(std::move(my_auth));
    return {};
  }

  SecureChannel finish(net::Connection conn) {
    state->conn = std::move(conn);
    SecureChannel ch;
    ch.state_ = std::move(state);
    return ch;
  }
};

}  // namespace detail

util::Result<SecureChannel> SecureChannel::handshake(
    net::Connection conn, const Identity& self, const util::Bytes& ca_key,
    net::Duration timeout, ChannelOptions options, bool is_client) {
  if (!options.encrypt) {
    // Plaintext ablation mode: no handshake, raw frames pass through. No
    // negotiation either — the configured protocol is taken on trust
    // (see ChannelOptions::protocol).
    auto state = std::make_shared<State>();
    state->encrypt = false;
    state->conn = std::move(conn);
    state->version = std::max<std::uint8_t>(1, options.protocol);
    SecureChannel ch;
    ch.state_ = std::move(state);
    return ch;
  }

  detail::HandshakeCore core;
  core.init(is_client, self, ca_key, options);
  if (is_client) {
    if (auto s = conn.send(core.my_hello); !s.ok()) return s.error();
  }
  while (!core.done) {
    auto f = conn.recv(timeout);
    if (!f) {
      const char* what = core.frames_seen > 0 ? "handshake: no authenticator"
                         : is_client          ? "handshake: no server hello"
                                              : "handshake: no client hello";
      return util::Error{util::Errc::timeout, what};
    }
    std::vector<util::Bytes> out;
    if (auto s = core.on_frame(*f, out); !s.ok()) return s.error();
    for (auto& frame : out)
      if (auto s = conn.send(std::move(frame)); !s.ok()) return s.error();
  }
  return core.finish(std::move(conn));
}

namespace detail {

// One in-flight async handshake. Owns the connection until completion; the
// reactor pump and the timeout timer both hold a shared_ptr to the op, and
// whichever finishes first wins under mu/finished. complete() stops the
// pump, cancels the timer, closes the connection on failure and invokes
// `done` exactly once with no locks held.
struct AsyncHandshake {
  net::Reactor* reactor = nullptr;
  net::Connection conn;
  HandshakeCore core;
  SecureChannel::HandshakeCallback done;
  net::Subscription sub;
  net::Reactor::TimerId timer = 0;
  std::mutex mu;
  bool finished = false;
  obs::MetricsRegistry* metrics = nullptr;
  std::unique_ptr<obs::Span> span;

  static void start(net::Reactor& reactor, net::Connection conn,
                    const Identity& self, const util::Bytes& ca_key,
                    net::Duration timeout, ChannelOptions options,
                    bool is_client, SecureChannel::HandshakeCallback done) {
    if (!options.encrypt) {
      // Plaintext ablation: nothing to exchange — complete synchronously
      // (documented: `done` may run on the calling thread).
      auto state = std::make_shared<SecureChannel::State>();
      state->encrypt = false;
      state->version = std::max<std::uint8_t>(1, options.protocol);
      state->conn = std::move(conn);
      SecureChannel ch;
      ch.state_ = std::move(state);
      done(std::move(ch));
      return;
    }

    auto op = std::make_shared<AsyncHandshake>();
    op->reactor = &reactor;
    op->conn = std::move(conn);
    op->core.init(is_client, self, ca_key, options);
    op->done = std::move(done);
    op->metrics = options.metrics;
    if (options.metrics)
      op->span =
          std::make_unique<obs::Span>(*options.metrics, "crypto", "handshake");

    std::unique_lock lk(op->mu);
    if (is_client) {
      if (auto s = op->conn.send(op->core.my_hello); !s.ok()) {
        complete(op, std::move(lk), s.error());
        return;
      }
    }
    op->timer = reactor.post_after(
        timeout, [op] { on_timeout(op); });
    if (op->timer == 0) {  // reactor already stopping
      complete(op, std::move(lk),
               util::Error{util::Errc::unavailable, "handshake: reactor stopped"});
      return;
    }
    // Attach while holding op->mu: the pump's first handler invocation
    // blocks on the mutex until op->sub is assigned, so a completion from
    // inside the handler always sees (and can stop) the real subscription.
    op->sub = op->conn.on_frame(reactor, [op](std::optional<net::Frame> f) {
      on_peer_frame(op, std::move(f));
    });
  }

  static void on_peer_frame(const std::shared_ptr<AsyncHandshake>& op,
                            std::optional<net::Frame> frame) {
    std::unique_lock lk(op->mu);
    if (op->finished) return;
    if (!frame) {
      complete(op, std::move(lk),
               util::Error{util::Errc::closed, "handshake: connection closed"});
      return;
    }
    std::vector<util::Bytes> out;
    if (auto s = op->core.on_frame(*frame, out); !s.ok()) {
      complete(op, std::move(lk), s.error());
      return;
    }
    for (auto& reply : out) {
      if (auto s = op->conn.send(std::move(reply)); !s.ok()) {
        complete(op, std::move(lk), s.error());
        return;
      }
    }
    if (op->core.done)
      complete(op, std::move(lk), op->core.finish(std::move(op->conn)));
  }

  static void on_timeout(const std::shared_ptr<AsyncHandshake>& op) {
    std::unique_lock lk(op->mu);
    if (op->finished) return;
    op->timer = 0;  // we are the timer; nothing to cancel
    const char* what = op->core.frames_seen > 0 ? "handshake: no authenticator"
                       : op->core.is_client     ? "handshake: no server hello"
                                                : "handshake: no client hello";
    complete(op, std::move(lk), util::Error{util::Errc::timeout, what});
  }

  static void complete(const std::shared_ptr<AsyncHandshake>& op,
                       std::unique_lock<std::mutex> lk,
                       util::Result<SecureChannel> result) {
    op->finished = true;
    auto timer = std::exchange(op->timer, 0);
    lk.unlock();
    // Stop the pump with no locks held: a concurrent handler blocked on
    // op->mu must be able to run (it will observe `finished` and bail);
    // from inside the handler stop() detects the self-call and skips the
    // wait.
    if (timer) op->reactor->cancel(timer);
    op->sub.stop();
    if (!result.ok()) op->conn.close();
    if (op->span) {
      op->span->set_ok(result.ok());
      op->span.reset();
    }
    if (op->metrics)
      op->metrics
          ->counter(result.ok() ? "crypto.handshakes"
                                : "crypto.handshake_failures")
          .inc();
    auto done = std::move(op->done);
    op->done = nullptr;
    done(std::move(result));
  }
};

}  // namespace detail

void SecureChannel::async_connect(net::Reactor& reactor, net::Connection conn,
                                  const Identity& self,
                                  const util::Bytes& ca_key,
                                  net::Duration timeout, ChannelOptions options,
                                  HandshakeCallback done) {
  detail::AsyncHandshake::start(reactor, std::move(conn), self, ca_key, timeout,
                                options, /*is_client=*/true, std::move(done));
}

void SecureChannel::async_accept(net::Reactor& reactor, net::Connection conn,
                                 const Identity& self, const util::Bytes& ca_key,
                                 net::Duration timeout, ChannelOptions options,
                                 HandshakeCallback done) {
  detail::AsyncHandshake::start(reactor, std::move(conn), self, ca_key, timeout,
                                options, /*is_client=*/false, std::move(done));
}

util::Status SecureChannel::send(net::Frame frame) {
  if (!state_) return {util::Errc::invalid, "unconnected channel"};
  if (!state_->encrypt) return state_->conn.send(std::move(frame));

  std::scoped_lock lock(state_->send_mu);
  DirectionKeys& keys = state_->send_keys;
  std::uint64_t seq = keys.sequence++;
  chacha20_xor(keys.cipher_key, nonce_from_sequence(seq, keys.nonce_salt), 1,
               frame);
  util::ByteWriter record;
  record.u64(seq);
  record.raw(frame);
  Digest mac = hmac_sha256(keys.mac_key, record.bytes());
  record.raw(mac.data(), kMacTagLen);
  return state_->conn.send(record.take());
}

std::optional<net::Frame> SecureChannel::recv(net::Duration timeout) {
  if (!state_) return std::nullopt;
  if (!state_->encrypt) return state_->conn.recv(timeout);

  auto record = state_->conn.recv(timeout);
  if (!record) return std::nullopt;
  return decrypt_record(*state_, std::move(*record));
}

std::optional<net::Frame> SecureChannel::decrypt_record(State& state,
                                                        net::Frame record) {
  std::scoped_lock lock(state.recv_mu);
  DirectionKeys& keys = state.recv_keys;
  if (record.size() < 8 + kMacTagLen) return std::nullopt;

  // Verify and decrypt in place: the MAC runs over the record prefix and
  // the payload is decrypted where it lies, so the only data movement is
  // one memmove dropping the 8-byte header (no body/payload copies).
  std::size_t body_len = record.size() - kMacTagLen;
  Digest mac = hmac_sha256(keys.mac_key, record.data(), body_len);
  for (std::size_t i = 0; i < kMacTagLen; ++i)
    if (record[body_len + i] != mac[i]) return std::nullopt;  // forged

  util::ByteReader r(record.data(), 8);
  auto seq = r.u64();
  if (!seq || *seq != keys.sequence) return std::nullopt;  // replay/reorder
  keys.sequence++;

  chacha20_xor(keys.cipher_key, nonce_from_sequence(*seq, keys.nonce_salt), 1,
               record.data() + 8, body_len - 8);
  record.erase(record.begin(), record.begin() + 8);
  record.resize(body_len - 8);
  return record;
}

net::Subscription SecureChannel::on_frame(
    net::Reactor& reactor, std::function<void(std::optional<net::Frame>)> handler,
    net::AttachOptions options) {
  if (!state_) return {};
  auto st = state_;
  return st->conn.on_frame(
      reactor,
      [st, handler = std::move(handler)](std::optional<net::Frame> record) {
        if (!record) {
          handler(std::nullopt);
          return;
        }
        if (!st->encrypt) {
          handler(std::move(record));
          return;
        }
        auto plain = decrypt_record(*st, std::move(*record));
        if (!plain) {
          // A record that fails MAC/sequence/framing checks poisons the
          // stream for a callback consumer (no per-call deadline to notice
          // silence): kill the channel. The pump's final handler(nullopt)
          // fires via the closed connection.
          st->conn.close();
          return;
        }
        handler(std::move(plain));
      },
      options);
}

void SecureChannel::close() {
  if (state_) state_->conn.close();
}

bool SecureChannel::closed() const {
  return !state_ || state_->conn.closed();
}

const std::string& SecureChannel::peer_name() const {
  static const std::string kEmpty;
  return state_ ? state_->peer : kEmpty;
}

std::uint8_t SecureChannel::negotiated_version() const {
  return state_ ? state_->version : 1;
}

}  // namespace ace::crypto
