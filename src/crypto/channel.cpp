#include "crypto/channel.hpp"

#include <algorithm>
#include <atomic>

namespace ace::crypto {

namespace {

constexpr std::size_t kMacTagLen = 16;

std::uint64_t next_channel_seed() {
  static std::atomic<std::uint64_t> counter{0x5eedface};
  return counter.fetch_add(0x9e3779b97f4a7c15ULL);
}

util::Bytes u64_bytes(std::uint64_t v) {
  util::ByteWriter w;
  w.u64(v);
  return w.take();
}

struct Hello {
  util::Bytes nonce;  // 16 bytes
  std::uint64_t ephemeral_public = 0;
  Certificate certificate;
  std::uint8_t protocol = 1;

  util::Bytes serialize() const {
    util::ByteWriter w;
    w.blob(nonce);
    w.u64(ephemeral_public);
    w.blob(certificate.serialize());
    // Version negotiation rides as a trailing byte: v1 peers parse only
    // the three fields above and ignore the tail, so a v2 hello is still a
    // valid v1 hello. A v1 hello simply omits the byte.
    if (protocol > 1) w.u8(protocol);
    return w.take();
  }

  static std::optional<Hello> parse(const util::Bytes& data) {
    util::ByteReader r(data);
    Hello h;
    auto nonce = r.blob();
    auto eph = r.u64();
    auto cert_blob = r.blob();
    if (!nonce || !eph || !cert_blob) return std::nullopt;
    auto cert = Certificate::parse(*cert_blob);
    if (!cert) return std::nullopt;
    h.nonce = std::move(*nonce);
    h.ephemeral_public = *eph;
    h.certificate = std::move(*cert);
    if (r.remaining() >= 1) h.protocol = std::max<std::uint8_t>(1, *r.u8());
    return h;
  }
};

}  // namespace

util::Result<SecureChannel> SecureChannel::connect(net::Connection conn,
                                                   const Identity& self,
                                                   const util::Bytes& ca_key,
                                                   net::Duration timeout,
                                                   ChannelOptions options) {
  if (!options.metrics)
    return handshake(std::move(conn), self, ca_key, timeout, options,
                     /*is_client=*/true);
  obs::Span span(*options.metrics, "crypto", "handshake");
  auto r = handshake(std::move(conn), self, ca_key, timeout, options,
                     /*is_client=*/true);
  span.set_ok(r.ok());
  options.metrics
      ->counter(r.ok() ? "crypto.handshakes" : "crypto.handshake_failures")
      .inc();
  return r;
}

util::Result<SecureChannel> SecureChannel::accept(net::Connection conn,
                                                  const Identity& self,
                                                  const util::Bytes& ca_key,
                                                  net::Duration timeout,
                                                  ChannelOptions options) {
  if (!options.metrics)
    return handshake(std::move(conn), self, ca_key, timeout, options,
                     /*is_client=*/false);
  obs::Span span(*options.metrics, "crypto", "handshake");
  auto r = handshake(std::move(conn), self, ca_key, timeout, options,
                     /*is_client=*/false);
  span.set_ok(r.ok());
  options.metrics
      ->counter(r.ok() ? "crypto.handshakes" : "crypto.handshake_failures")
      .inc();
  return r;
}

util::Result<SecureChannel> SecureChannel::handshake(
    net::Connection conn, const Identity& self, const util::Bytes& ca_key,
    net::Duration timeout, ChannelOptions options, bool is_client) {
  auto state = std::make_shared<State>();
  state->encrypt = options.encrypt;

  if (!options.encrypt) {
    // Plaintext ablation mode: no handshake, raw frames pass through. No
    // negotiation either — the configured protocol is taken on trust
    // (see ChannelOptions::protocol).
    state->conn = std::move(conn);
    state->version = std::max<std::uint8_t>(1, options.protocol);
    SecureChannel ch;
    ch.state_ = std::move(state);
    return ch;
  }

  util::Rng rng(options.seed ? options.seed : next_channel_seed());

  Hello mine;
  mine.nonce.resize(16);
  for (auto& b : mine.nonce) b = static_cast<std::uint8_t>(rng.next());
  DhKeyPair ephemeral = dh_generate(rng);
  mine.ephemeral_public = ephemeral.public_key;
  mine.certificate = self.certificate;
  mine.protocol = std::max<std::uint8_t>(1, options.protocol);
  util::Bytes my_hello = mine.serialize();

  util::Bytes peer_hello_bytes;
  if (is_client) {
    if (auto s = conn.send(my_hello); !s.ok()) return s.error();
    auto f = conn.recv(timeout);
    if (!f) return util::Error{util::Errc::timeout, "handshake: no server hello"};
    peer_hello_bytes = std::move(*f);
  } else {
    auto f = conn.recv(timeout);
    if (!f) return util::Error{util::Errc::timeout, "handshake: no client hello"};
    peer_hello_bytes = std::move(*f);
    if (auto s = conn.send(my_hello); !s.ok()) return s.error();
  }

  auto peer_hello = Hello::parse(peer_hello_bytes);
  if (!peer_hello)
    return util::Error{util::Errc::parse_error, "handshake: bad hello"};
  if (!CertificateAuthority::verify(peer_hello->certificate, ca_key))
    return util::Error{util::Errc::auth_error,
                       "handshake: certificate verification failed"};

  // Transcript binds both hellos, client first.
  Sha256 th;
  th.update(is_client ? my_hello : peer_hello_bytes);
  th.update(is_client ? peer_hello_bytes : my_hello);
  Digest transcript = th.finish();
  util::Bytes transcript_bytes(transcript.begin(), transcript.end());

  std::uint64_t ephemeral_shared =
      dh_shared(ephemeral.private_key, peer_hello->ephemeral_public);
  std::uint64_t static_shared =
      dh_shared(self.static_private, peer_hello->certificate.static_public);

  // Mutual authentication: prove possession of the static private key.
  util::Bytes static_shared_bytes = u64_bytes(static_shared);
  auto authenticator = [&](const char* label) {
    util::Bytes msg = transcript_bytes;
    msg.insert(msg.end(), label, label + std::char_traits<char>::length(label));
    Digest d = hmac_sha256(static_shared_bytes, msg);
    return util::Bytes(d.begin(), d.end());
  };
  util::Bytes my_auth = authenticator(is_client ? "client" : "server");
  util::Bytes expected_peer_auth = authenticator(is_client ? "server" : "client");

  if (auto s = conn.send(my_auth); !s.ok()) return s.error();
  auto peer_auth = conn.recv(timeout);
  if (!peer_auth)
    return util::Error{util::Errc::timeout, "handshake: no authenticator"};
  if (*peer_auth != expected_peer_auth)
    return util::Error{util::Errc::auth_error,
                       "handshake: peer authentication failed"};

  // Session keys: 2 x (32B cipher key + 4B nonce salt + 32B mac key).
  util::Bytes ikm = u64_bytes(ephemeral_shared);
  util::Bytes ss = u64_bytes(static_shared);
  ikm.insert(ikm.end(), ss.begin(), ss.end());
  util::Bytes keys = hkdf(transcript_bytes, ikm, "ace-secure-channel", 136);

  auto load_direction = [&](std::size_t offset, DirectionKeys& dir) {
    std::copy(keys.begin() + offset, keys.begin() + offset + 32,
              dir.cipher_key.begin());
    dir.nonce_salt = static_cast<std::uint32_t>(keys[offset + 32]) |
                     static_cast<std::uint32_t>(keys[offset + 33]) << 8 |
                     static_cast<std::uint32_t>(keys[offset + 34]) << 16 |
                     static_cast<std::uint32_t>(keys[offset + 35]) << 24;
    dir.mac_key.assign(keys.begin() + offset + 36, keys.begin() + offset + 68);
  };
  DirectionKeys client_to_server, server_to_client;
  load_direction(0, client_to_server);
  load_direction(68, server_to_client);

  state->conn = std::move(conn);
  state->peer = peer_hello->certificate.subject;
  state->version = std::min(mine.protocol, peer_hello->protocol);
  state->send_keys = is_client ? client_to_server : server_to_client;
  state->recv_keys = is_client ? server_to_client : client_to_server;

  SecureChannel ch;
  ch.state_ = std::move(state);
  return ch;
}

util::Status SecureChannel::send(net::Frame frame) {
  if (!state_) return {util::Errc::invalid, "unconnected channel"};
  if (!state_->encrypt) return state_->conn.send(std::move(frame));

  std::scoped_lock lock(state_->send_mu);
  DirectionKeys& keys = state_->send_keys;
  std::uint64_t seq = keys.sequence++;
  chacha20_xor(keys.cipher_key, nonce_from_sequence(seq, keys.nonce_salt), 1,
               frame);
  util::ByteWriter record;
  record.u64(seq);
  record.raw(frame);
  Digest mac = hmac_sha256(keys.mac_key, record.bytes());
  record.raw(mac.data(), kMacTagLen);
  return state_->conn.send(record.take());
}

std::optional<net::Frame> SecureChannel::recv(net::Duration timeout) {
  if (!state_) return std::nullopt;
  if (!state_->encrypt) return state_->conn.recv(timeout);

  auto record = state_->conn.recv(timeout);
  if (!record) return std::nullopt;

  std::scoped_lock lock(state_->recv_mu);
  DirectionKeys& keys = state_->recv_keys;
  if (record->size() < 8 + kMacTagLen) return std::nullopt;

  // Verify and decrypt in place: the MAC runs over the record prefix and
  // the payload is decrypted where it lies, so the only data movement is
  // one memmove dropping the 8-byte header (no body/payload copies).
  std::size_t body_len = record->size() - kMacTagLen;
  Digest mac = hmac_sha256(keys.mac_key, record->data(), body_len);
  for (std::size_t i = 0; i < kMacTagLen; ++i)
    if ((*record)[body_len + i] != mac[i]) return std::nullopt;  // forged

  util::ByteReader r(record->data(), 8);
  auto seq = r.u64();
  if (!seq || *seq != keys.sequence) return std::nullopt;  // replay/reorder
  keys.sequence++;

  chacha20_xor(keys.cipher_key, nonce_from_sequence(*seq, keys.nonce_salt), 1,
               record->data() + 8, body_len - 8);
  record->erase(record->begin(), record->begin() + 8);
  record->resize(body_len - 8);
  return std::move(*record);
}

void SecureChannel::close() {
  if (state_) state_->conn.close();
}

bool SecureChannel::closed() const {
  return !state_ || state_->conn.closed();
}

const std::string& SecureChannel::peer_name() const {
  static const std::string kEmpty;
  return state_ ? state_->peer : kEmpty;
}

std::uint8_t SecureChannel::negotiated_version() const {
  return state_ ? state_->version : 1;
}

}  // namespace ace::crypto
