// Small string helpers shared across the ACE libraries.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ace::util {

std::vector<std::string> split(std::string_view s, char sep);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
std::string to_lower(std::string_view s);

// Case-sensitive glob match supporting '*' (any run) and '?' (any one char).
// Used by directory queries and notification filters.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace ace::util
