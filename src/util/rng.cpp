#include "util/rng.hpp"

#include <cmath>

namespace ace::util {

std::uint64_t Rng::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() {
  double u1 = next_double();
  double u2 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

std::string Rng::next_name(std::size_t n) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(kAlpha[next_below(sizeof(kAlpha) - 1)]);
  return s;
}

}  // namespace ace::util
