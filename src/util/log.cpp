#include "util/log.hpp"

#include <cstdio>

namespace ace::util {

namespace {
const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::scoped_lock lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::scoped_lock lock(mu_);
  return level_;
}

void Logger::set_capture(bool capture) {
  std::scoped_lock lock(mu_);
  capture_ = capture;
}

std::vector<std::string> Logger::captured() const {
  std::scoped_lock lock(mu_);
  return captured_;
}

void Logger::clear_captured() {
  std::scoped_lock lock(mu_);
  captured_.clear();
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& message) {
  std::scoped_lock lock(mu_);
  if (level < level_) return;
  std::string line = std::string("[") + level_tag(level) + "] " + component +
                     ": " + message;
  if (capture_) {
    captured_.push_back(std::move(line));
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace ace::util
