#include "util/bytes.hpp"

#include <array>

namespace ace::util {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

void ByteWriter::blob(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void ByteWriter::raw(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

bool ByteReader::need(std::size_t n) {
  if (failed_ || size_ - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (!need(1)) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  if (!need(2)) return std::nullopt;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (!need(4)) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (!need(8)) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::optional<std::int64_t> ByteReader::i64() {
  auto v = u64();
  if (!v) return std::nullopt;
  return static_cast<std::int64_t>(*v);
}

std::optional<std::int32_t> ByteReader::i32() {
  auto v = u32();
  if (!v) return std::nullopt;
  return static_cast<std::int32_t>(*v);
}

std::optional<std::int16_t> ByteReader::i16() {
  auto v = u16();
  if (!v) return std::nullopt;
  return static_cast<std::int16_t>(*v);
}

std::optional<double> ByteReader::f64() {
  auto bits = u64();
  if (!bits) return std::nullopt;
  double v;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

std::optional<std::uint64_t> ByteReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    auto b = u8();
    if (!b) return std::nullopt;
    v |= static_cast<std::uint64_t>(*b & 0x7f) << shift;
    if ((*b & 0x80) == 0) return v;
  }
  failed_ = true;  // > 10 continuation bytes: malformed
  return std::nullopt;
}

std::optional<std::string> ByteReader::str() {
  auto n = u32();
  if (!n || !need(*n)) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *n);
  pos_ += *n;
  return s;
}

std::optional<Bytes> ByteReader::blob() {
  auto n = u32();
  if (!n) return std::nullopt;
  return raw(*n);
}

std::optional<Bytes> ByteReader::raw(std::size_t n) {
  if (!need(n)) return std::nullopt;
  Bytes b(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return b;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

std::string_view to_string_view(const Bytes& b) {
  if (b.empty()) return {};
  return std::string_view(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string_view to_string_view(BytesView b) {
  if (b.empty()) return {};
  return std::string_view(reinterpret_cast<const char*>(b.data()), b.size());
}

std::uint32_t crc32(BytesView data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data)
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

namespace {

// 256 precomputed two-character cells: kHexPairs[b] is the hex spelling of
// byte b, written out with a single 2-byte copy per input byte.
const std::array<std::array<char, 2>, 256> kHexPairs = [] {
  const char* digits = "0123456789abcdef";
  std::array<std::array<char, 2>, 256> t{};
  for (int b = 0; b < 256; ++b) {
    t[static_cast<std::size_t>(b)][0] = digits[b >> 4];
    t[static_cast<std::size_t>(b)][1] = digits[b & 0xf];
  }
  return t;
}();

// Char -> nibble value, or -1 for anything that is not a hex digit.
const std::array<std::int8_t, 256> kNibbles = [] {
  std::array<std::int8_t, 256> t{};
  t.fill(-1);
  for (int c = '0'; c <= '9'; ++c) t[static_cast<std::size_t>(c)] =
      static_cast<std::int8_t>(c - '0');
  for (int c = 'a'; c <= 'f'; ++c) t[static_cast<std::size_t>(c)] =
      static_cast<std::int8_t>(c - 'a' + 10);
  for (int c = 'A'; c <= 'F'; ++c) t[static_cast<std::size_t>(c)] =
      static_cast<std::int8_t>(c - 'A' + 10);
  return t;
}();

}  // namespace

std::string hex_encode(const Bytes& b) {
  std::string out;
  out.resize(b.size() * 2);
  char* dst = out.data();
  for (std::uint8_t c : b) {
    const auto& pair = kHexPairs[c];
    dst[0] = pair[0];
    dst[1] = pair[1];
    dst += 2;
  }
  return out;
}

Bytes hex_decode(std::string_view hex) {
  Bytes out;
  if (hex.size() % 2 != 0) return out;
  out.resize(hex.size() / 2);
  std::uint8_t* dst = out.data();
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = kNibbles[static_cast<std::uint8_t>(hex[i])];
    const int lo = kNibbles[static_cast<std::uint8_t>(hex[i + 1])];
    if ((hi | lo) < 0) return {};
    *dst++ = static_cast<std::uint8_t>(hi << 4 | lo);
  }
  return out;
}

}  // namespace ace::util
