// Blocking multi-producer/multi-consumer message queue.
//
// This is the inter-thread fabric required by the ACE daemon design
// (paper §2.1.1): "All communications between these threads are carried
// out over message queues that trigger actions as these messages are
// sent from one thread to another."
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ace::util {

template <typename T>
class MessageQueue {
 public:
  explicit MessageQueue(std::size_t max_size = 0) : max_size_(max_size) {}

  MessageQueue(const MessageQueue&) = delete;
  MessageQueue& operator=(const MessageQueue&) = delete;

  // Enqueues a message. Returns false if the queue has been closed or is
  // bounded and full (messages are never silently dropped on a live queue).
  bool push(T value) {
    {
      std::scoped_lock lock(mu_);
      if (closed_) return false;
      if (max_size_ != 0 && items_.size() >= max_size_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until a message is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    return take_locked();
  }

  // Blocks up to `timeout`; std::nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    return take_locked();
  }

  // Blocks until `deadline` on a steady clock.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mu_);
    cv_.wait_until(lock, deadline,
                   [&] { return !items_.empty() || closed_; });
    return take_locked();
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    return take_locked();
  }

  // Closes the queue: pending messages may still be popped; pushes fail.
  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  // Reverts close() and discards anything left unconsumed, so the queue
  // can serve a fresh start() after a stop()/crash() of its owner.
  void reopen() {
    std::scoped_lock lock(mu_);
    closed_ = false;
    items_.clear();
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  std::optional<T> take_locked() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::size_t max_size_;
  bool closed_ = false;
};

}  // namespace ace::util
