// Blocking multi-producer/multi-consumer message queue.
//
// This is the inter-thread fabric required by the ACE daemon design
// (paper §2.1.1): "All communications between these threads are carried
// out over message queues that trigger actions as these messages are
// sent from one thread to another."
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace ace::util {

template <typename T>
class MessageQueue {
 public:
  explicit MessageQueue(std::size_t max_size = 0) : max_size_(max_size) {}

  MessageQueue(const MessageQueue&) = delete;
  MessageQueue& operator=(const MessageQueue&) = delete;

  // Enqueues a message. Returns false if the queue has been closed or is
  // bounded and full (messages are never silently dropped on a live queue).
  bool push(T value) {
    std::shared_ptr<const std::function<void()>> signal;
    {
      std::scoped_lock lock(mu_);
      if (closed_) return false;
      if (max_size_ != 0 && items_.size() >= max_size_) return false;
      items_.push_back(std::move(value));
      signal = signal_;
    }
    cv_.notify_one();
    if (signal) (*signal)();
    return true;
  }

  // Blocks until a message is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    return take_locked();
  }

  // Blocks up to `timeout`; std::nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    return take_locked();
  }

  // Blocks until `deadline` on a steady clock.
  std::optional<T> pop_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mu_);
    cv_.wait_until(lock, deadline,
                   [&] { return !items_.empty() || closed_; });
    return take_locked();
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    return take_locked();
  }

  // Pops the front message only if `ready(front)` says so. Returns
  // std::nullopt when the queue is empty or the head is not ready — the
  // non-blocking pop a reactor pump needs for time-gated delivery.
  template <typename Pred>
  std::optional<T> try_pop_when(Pred&& ready) {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    if (!ready(static_cast<const T&>(items_.front()))) return std::nullopt;
    return take_locked();
  }

  // Closes the queue: pending messages may still be popped; pushes fail.
  void close() {
    std::shared_ptr<const std::function<void()>> signal;
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
      signal = signal_;
    }
    cv_.notify_all();
    if (signal) (*signal)();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  // True once close() has been called and every message was consumed — the
  // terminal state after which a subscriber will never see another item.
  bool closed_and_empty() const {
    std::scoped_lock lock(mu_);
    return closed_ && items_.empty();
  }

  // Registers (or, with nullptr, clears) a readiness callback invoked after
  // every successful push and on close(). The callback runs on the
  // producer's thread, outside the queue lock, so it may do anything except
  // block indefinitely. One subscriber at a time: setting a new signal
  // replaces the old one. This is the edge the reactor pumps trigger on;
  // blocking pop() consumers coexist but a queue should have either poppers
  // or a signal-driven pump, not both fighting over messages.
  void set_signal(std::function<void()> signal) {
    std::shared_ptr<const std::function<void()>> cell;
    if (signal)
      cell = std::make_shared<const std::function<void()>>(std::move(signal));
    std::scoped_lock lock(mu_);
    signal_ = std::move(cell);
  }

  // Reverts close() and discards anything left unconsumed, so the queue
  // can serve a fresh start() after a stop()/crash() of its owner.
  void reopen() {
    std::scoped_lock lock(mu_);
    closed_ = false;
    items_.clear();
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  std::optional<T> take_locked() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    return out;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::size_t max_size_;
  bool closed_ = false;
  // Held as a shared_ptr so push/close can invoke it outside mu_ without
  // racing a concurrent set_signal.
  std::shared_ptr<const std::function<void()>> signal_;
};

}  // namespace ace::util
