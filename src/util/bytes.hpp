// Byte-buffer reader/writer used for wire framing, codecs, and the
// persistent-store object namespace. Little-endian fixed-width integers
// plus length-prefixed strings/blobs.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ace::util {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  // Unsigned LEB128 (7 bits per byte, low group first). One byte for
  // values < 128 — the common case for wire call-ids.
  void varint(std::uint64_t v);
  // Length-prefixed (u32) string.
  void str(std::string_view s);
  // Length-prefixed (u32) blob.
  void blob(const Bytes& b);
  // Raw bytes, no prefix.
  void raw(const std::uint8_t* data, std::size_t n);
  void raw(const Bytes& b) { raw(b.data(), b.size()); }

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// Non-owning reader. All accessors return std::nullopt on underflow and
// poison the reader (subsequent reads also fail) so callers can check once.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  std::optional<std::int32_t> i32();
  std::optional<std::int16_t> i16();
  std::optional<double> f64();
  std::optional<std::uint64_t> varint();
  std::optional<std::string> str();
  std::optional<Bytes> blob();
  std::optional<Bytes> raw(std::size_t n);

  bool failed() const { return failed_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  bool need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

Bytes to_bytes(std::string_view s);
std::string to_string(const Bytes& b);
// Non-owning text view over a byte buffer (copy-free frame decode).
std::string_view to_string_view(const Bytes& b);
std::string hex_encode(const Bytes& b);

}  // namespace ace::util
