// Byte-buffer reader/writer used for wire framing, codecs, and the
// persistent-store object namespace. Little-endian fixed-width integers
// plus length-prefixed strings/blobs.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ace::util {

using Bytes = std::vector<std::uint8_t>;

// Non-owning read view over contiguous bytes. Parsers take this so they can
// decode straight out of owned buffers (Bytes) or shared ones (SharedBytes)
// without a copy.
using BytesView = std::span<const std::uint8_t>;

// Ref-counted immutable payload with an offset/length window. This is the
// currency of the zero-copy media data plane: one serialized frame is
// wrapped once and every queue hop, fan-out sink and retained recording
// shares the same underlying buffer. Copying a SharedBytes copies two
// pointers; the bytes themselves are copied only by an explicit
// to_bytes()/copy_of(). Immutability is structural — there is no mutable
// accessor — so sharing across reactor workers needs no synchronization.
class SharedBytes {
 public:
  SharedBytes() = default;
  // Takes ownership of `b` (move in; an lvalue argument pays one copy at
  // the call site, never again afterwards). Intentionally implicit: it is
  // the migration path for every `send(Bytes)` call site.
  SharedBytes(Bytes b)
      : owner_(std::make_shared<const Bytes>(std::move(b))),
        offset_(0),
        size_(owner_->size()) {}

  static SharedBytes copy_of(BytesView v) {
    return SharedBytes(Bytes(v.begin(), v.end()));
  }

  const std::uint8_t* data() const {
    return owner_ ? owner_->data() + offset_ : nullptr;
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint8_t operator[](std::size_t i) const { return data()[i]; }

  BytesView view() const { return {data(), size_}; }
  operator BytesView() const { return view(); }

  // A narrower window sharing the same owner (no copy). Clamps to bounds.
  SharedBytes slice(std::size_t offset, std::size_t length) const {
    SharedBytes out;
    if (!owner_ || offset >= size_) return out;
    out.owner_ = owner_;
    out.offset_ = offset_ + offset;
    out.size_ = std::min(length, size_ - offset);
    return out;
  }

  // Materializes an owned copy (the only way bytes leave the shared arena).
  Bytes to_bytes() const { return Bytes(data(), data() + size_); }

  // How many SharedBytes alias this buffer (tests assert sharing).
  long use_count() const { return owner_.use_count(); }

  // Content equality (size + bytes), not owner identity.
  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data(), b.data(), a.size_) == 0);
  }

 private:
  std::shared_ptr<const Bytes> owner_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  // Unsigned LEB128 (7 bits per byte, low group first). One byte for
  // values < 128 — the common case for wire call-ids.
  void varint(std::uint64_t v);
  // Length-prefixed (u32) string.
  void str(std::string_view s);
  // Length-prefixed (u32) blob.
  void blob(const Bytes& b);
  // Raw bytes, no prefix.
  void raw(const std::uint8_t* data, std::size_t n);
  void raw(const Bytes& b) { raw(b.data(), b.size()); }

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

// Non-owning reader. All accessors return std::nullopt on underflow and
// poison the reader (subsequent reads also fail) so callers can check once.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& b) : data_(b.data()), size_(b.size()) {}
  explicit ByteReader(BytesView v) : data_(v.data()), size_(v.size()) {}
  explicit ByteReader(const SharedBytes& b)
      : data_(b.data()), size_(b.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint16_t> u16();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<std::int64_t> i64();
  std::optional<std::int32_t> i32();
  std::optional<std::int16_t> i16();
  std::optional<double> f64();
  std::optional<std::uint64_t> varint();
  std::optional<std::string> str();
  std::optional<Bytes> blob();
  std::optional<Bytes> raw(std::size_t n);

  bool failed() const { return failed_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  bool need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

Bytes to_bytes(std::string_view s);
std::string to_string(const Bytes& b);
std::string to_string(BytesView b);
// Non-owning text view over a byte buffer (copy-free frame decode).
std::string_view to_string_view(const Bytes& b);
std::string_view to_string_view(BytesView b);
// Table-driven hex codec. Store values cross the wire hex-encoded twice
// per read, so these are hot: encode emits both nibbles of each byte with
// one 2-char table lookup; decode maps each input char through a 256-entry
// nibble table (no branching per character). hex_decode returns empty on
// odd length or any non-hex character.
std::string hex_encode(const Bytes& b);
Bytes hex_decode(std::string_view hex);

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over the view. Used to frame
// WAL records and seal snapshot files so torn or bit-rotted bytes are
// detected before they are replayed into live state.
std::uint32_t crc32(BytesView data);

}  // namespace ace::util
