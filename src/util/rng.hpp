// Deterministic seedable RNG (splitmix64-based) used everywhere randomness
// is needed: simulated sensors, packet loss, placement tie-breaks, workload
// generators. Deterministic seeds keep tests and benches reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace ace::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  std::uint64_t next();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double next_double();

  // Standard-normal via Box-Muller.
  double next_gaussian();

  bool next_bool(double p_true);

  // Random lowercase alphanumeric identifier of length n.
  std::string next_name(std::size_t n);

 private:
  std::uint64_t state_;
};

}  // namespace ace::util
