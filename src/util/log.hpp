// Thread-safe leveled logger. Kept deliberately small: the ACE Network
// Logger *service* (paper §4.14) is the system-level log; this is only
// local process diagnostics.
#pragma once

#include <chrono>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace ace::util {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  // When enabled, records are retained in memory (for tests) instead of
  // being written to stderr.
  void set_capture(bool capture);
  std::vector<std::string> captured() const;
  void clear_captured();

  void log(LogLevel level, const std::string& component,
           const std::string& message);

 private:
  Logger() = default;

  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::warn;
  bool capture_ = false;
  std::vector<std::string> captured_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug(std::string component) {
  return detail::LogLine(LogLevel::debug, std::move(component));
}
inline detail::LogLine log_info(std::string component) {
  return detail::LogLine(LogLevel::info, std::move(component));
}
inline detail::LogLine log_warn(std::string component) {
  return detail::LogLine(LogLevel::warn, std::move(component));
}
inline detail::LogLine log_error(std::string component) {
  return detail::LogLine(LogLevel::error, std::move(component));
}

}  // namespace ace::util
