// Minimal expected/Result type used for fallible operations across ACE.
// (gcc 12 lacks std::expected; this covers the subset we need.)
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ace::util {

// Error codes shared across the ACE libraries. Kept coarse on purpose:
// command-level failures carry their detail in the reply command itself.
enum class Errc {
  ok = 0,
  closed,          // peer or queue closed
  timeout,         // deadline elapsed
  not_found,       // name/service/key lookup failed
  refused,         // connection or permission refused
  parse_error,     // command language syntax error
  semantic_error,  // command language semantic violation
  auth_error,      // authentication / authorization failure
  conflict,        // version conflict, duplicate registration
  unavailable,     // service/replica down or partitioned
  invalid,         // invalid argument or state
  io_error,        // generic transport failure
};

const char* errc_name(Errc c);

struct Error {
  Errc code = Errc::ok;
  std::string message;

  std::string to_string() const {
    std::string s = errc_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

inline const char* errc_name(Errc c) {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::closed: return "closed";
    case Errc::timeout: return "timeout";
    case Errc::not_found: return "not_found";
    case Errc::refused: return "refused";
    case Errc::parse_error: return "parse_error";
    case Errc::semantic_error: return "semantic_error";
    case Errc::auth_error: return "auth_error";
    case Errc::conflict: return "conflict";
    case Errc::unavailable: return "unavailable";
    case Errc::invalid: return "invalid";
    case Errc::io_error: return "io_error";
  }
  return "unknown";
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}        // NOLINT(implicit)
  Result(Error error) : state_(std::move(error)) {}    // NOLINT(implicit)
  Result(Errc code, std::string message = {})
      : state_(Error{code, std::move(message)}) {}

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  T& value() {
    assert(ok());
    return std::get<T>(state_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(state_);
  }
  T value_or(T fallback) const {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(state_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Error> state_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(implicit)
  Status(Errc code, std::string message = {})
      : error_(Error{code, std::move(message)}) {}

  static Status ok_status() { return Status(); }

  bool ok() const { return error_.code == Errc::ok; }
  explicit operator bool() const { return ok(); }
  const Error& error() const { return error_; }

 private:
  Error error_{};
};

}  // namespace ace::util
