#include "util/strings.hpp"

#include <cctype>

namespace ace::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Fast paths for the pattern shapes that dominate directory queries
  // ("*", exact names, class-prefix globs); anything else falls through to
  // the general matcher. `?` disqualifies every shortcut since it needs
  // positional matching.
  if (pattern == "*") return true;
  const std::size_t first_wild = pattern.find_first_of("*?");
  if (first_wild == std::string_view::npos) return pattern == text;
  if (pattern.find_first_of("*?", first_wild + 1) == std::string_view::npos &&
      pattern[first_wild] == '*') {
    if (first_wild == pattern.size() - 1)  // "prefix*"
      return starts_with(text, pattern.substr(0, first_wild));
    if (first_wild == 0)  // "*suffix"
      return ends_with(text, pattern.substr(1));
  }

  // Iterative wildcard match with backtracking on the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace ace::util
