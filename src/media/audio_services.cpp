#include "media/audio_services.hpp"

namespace ace::media {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::Word;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig with_data_channel(daemon::DaemonConfig config) {
  config.open_data_channel = true;
  return config;
}
}  // namespace

AudioElementDaemon::AudioElementDaemon(daemon::Environment& env,
                                       daemon::DaemonHost& host,
                                       daemon::DaemonConfig config)
    : ServiceDaemon(env, host, with_data_channel(std::move(config))) {
  register_command(
      CommandSpec("audioAddSink", "forward output frames to `dest`")
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto addr = net::Address::parse(cmd.get_text("dest"));
        if (!addr)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        add_sink(*addr);
        return cmdlang::make_ok();
      });
  register_command(
      CommandSpec("audioRemoveSink", "stop forwarding to `dest`")
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto addr = net::Address::parse(cmd.get_text("dest"));
        if (!addr)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        std::scoped_lock lock(sink_mu_);
        std::erase(sinks_, *addr);
        return cmdlang::make_ok();
      });
  register_command(
      CommandSpec("audioListSinks", "list forwarding destinations"),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::vector<std::string> out;
        for (const auto& s : sinks()) out.push_back(s.to_string());
        reply.arg("sinks", cmdlang::string_vector(std::move(out)));
        return reply;
      });
}

void AudioElementDaemon::add_sink(const net::Address& sink) {
  std::scoped_lock lock(sink_mu_);
  if (std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end())
    sinks_.push_back(sink);
}

std::vector<net::Address> AudioElementDaemon::sinks() const {
  std::scoped_lock lock(sink_mu_);
  return sinks_;
}

void AudioElementDaemon::on_datagram(const net::Datagram& datagram) {
  auto frame = AudioFrame::parse(datagram.payload);
  if (!frame) return;
  on_frame(*frame);
}

void AudioElementDaemon::forward(const AudioFrame& frame) {
  util::Bytes wire = frame.serialize();
  for (const net::Address& sink : sinks()) (void)send_datagram(sink, wire);
}

// ---------------------------------------------------------------- capture

AudioCaptureDaemon::AudioCaptureDaemon(daemon::Environment& env,
                                       daemon::DaemonHost& host,
                                       daemon::DaemonConfig config,
                                       std::string stream_tag)
    : AudioElementDaemon(env, host, std::move(config)),
      stream_tag_(std::move(stream_tag)) {
  using cmdlang::integer_arg;
  using cmdlang::real_arg;
  register_command(
      CommandSpec("captureGenerate",
                  "synthesize and emit `frames` frames of a test tone")
          .arg(integer_arg("frames").range(1, 10000))
          .arg(real_arg("frequency").optional_arg())
          .arg(real_arg("amplitude").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::int64_t frames = cmd.get_integer("frames");
        double freq = cmd.get_real("frequency", 440.0);
        double amp = cmd.get_real("amplitude", 8000.0);
        std::size_t phase = 0;
        for (std::int64_t i = 0; i < frames; ++i) {
          capture_push(sine_wave(freq, amp, kFrameSamples, phase));
          phase += kFrameSamples;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("frames", frames);
        return reply;
      });
}

void AudioCaptureDaemon::capture_push(
    const std::vector<std::int16_t>& samples) {
  std::scoped_lock lock(mu_);
  std::size_t offset = 0;
  while (offset < samples.size()) {
    AudioFrame frame;
    frame.stream = stream_tag_;
    frame.sequence = sequence_++;
    std::size_t take = std::min(kFrameSamples, samples.size() - offset);
    frame.samples.assign(samples.begin() + offset,
                         samples.begin() + offset + take);
    frame.samples.resize(kFrameSamples, 0);  // zero-pad the tail frame
    offset += take;
    forward(frame);
  }
}

// ------------------------------------------------------------------- mixer

AudioMixerDaemon::AudioMixerDaemon(daemon::Environment& env,
                                   daemon::DaemonHost& host,
                                   daemon::DaemonConfig config,
                                   std::string output_tag)
    : AudioElementDaemon(env, host, std::move(config)),
      output_tag_(std::move(output_tag)) {
  register_command(
      CommandSpec("mixerAddInput", "declare an input stream tag")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        std::string tag = cmd.get_text("stream");
        if (std::find(inputs_.begin(), inputs_.end(), tag) == inputs_.end())
          inputs_.push_back(tag);
        return cmdlang::make_ok();
      });
}

void AudioMixerDaemon::on_frame(const AudioFrame& frame) {
  std::optional<AudioFrame> ready;
  {
    std::scoped_lock lock(mu_);
    if (std::find(inputs_.begin(), inputs_.end(), frame.stream) ==
        inputs_.end())
      return;  // undeclared stream
    auto& slot = pending_[frame.sequence];
    slot[frame.stream] = frame;
    if (slot.size() == inputs_.size()) {
      AudioFrame mixed;
      mixed.stream = output_tag_;
      mixed.sequence = out_sequence_++;
      double gain = 1.0 / static_cast<double>(inputs_.size());
      for (const auto& [tag, f] : slot)
        mix_into(mixed.samples, f.samples, gain);
      pending_.erase(frame.sequence);
      // Bound memory on lossy streams.
      while (pending_.size() > 64) pending_.erase(pending_.begin());
      ready = std::move(mixed);
    }
  }
  if (ready) forward(*ready);
}

// --------------------------------------------------------- echo cancellation

EchoCancellationDaemon::EchoCancellationDaemon(
    daemon::Environment& env, daemon::DaemonHost& host,
    daemon::DaemonConfig config, std::string reference_tag,
    std::string input_tag, std::string output_tag)
    : AudioElementDaemon(env, host, std::move(config)),
      reference_tag_(std::move(reference_tag)),
      input_tag_(std::move(input_tag)),
      output_tag_(std::move(output_tag)) {
  register_command(CommandSpec("ecStats", "report echo-cancellation ERLE"),
                   [this](const CmdLine&, const CallerInfo&) {
                     CmdLine reply = cmdlang::make_ok();
                     reply.arg("erle_db", erle_db());
                     return reply;
                   });
}

double EchoCancellationDaemon::erle_db() const {
  std::scoped_lock lock(mu_);
  return canceller_.erle_db();
}

void EchoCancellationDaemon::on_frame(const AudioFrame& frame) {
  std::optional<AudioFrame> ready;
  {
    std::scoped_lock lock(mu_);
    if (frame.stream == reference_tag_) {
      pending_reference_[frame.sequence] = frame;
    } else if (frame.stream == input_tag_) {
      pending_input_[frame.sequence] = frame;
    } else {
      return;
    }
    // Process every sequence for which both halves have arrived, in order.
    while (!pending_input_.empty()) {
      auto in_it = pending_input_.begin();
      auto ref_it = pending_reference_.find(in_it->first);
      if (ref_it == pending_reference_.end()) break;
      AudioFrame out;
      out.stream = output_tag_;
      out.sequence = in_it->first;
      out.samples =
          canceller_.process(ref_it->second.samples, in_it->second.samples);
      pending_reference_.erase(ref_it);
      pending_input_.erase(in_it);
      ready = std::move(out);
      break;  // forward one per incoming frame; loop resumes on next arrival
    }
    while (pending_reference_.size() > 64)
      pending_reference_.erase(pending_reference_.begin());
    while (pending_input_.size() > 64)
      pending_input_.erase(pending_input_.begin());
  }
  if (ready) forward(*ready);
}

// -------------------------------------------------------------------- play

AudioPlayDaemon::AudioPlayDaemon(daemon::Environment& env,
                                 daemon::DaemonHost& host,
                                 daemon::DaemonConfig config)
    : AudioElementDaemon(env, host, std::move(config)) {
  register_command(CommandSpec("playStats", "report playback statistics"),
                   [this](const CmdLine&, const CallerInfo&) {
                     CmdLine reply = cmdlang::make_ok();
                     std::scoped_lock lock(mu_);
                     reply.arg("frames",
                               static_cast<std::int64_t>(frames_));
                     reply.arg("level_db", rms_db(played_));
                     return reply;
                   });
}

void AudioPlayDaemon::on_frame(const AudioFrame& frame) {
  {
    std::scoped_lock lock(mu_);
    played_.insert(played_.end(), frame.samples.begin(), frame.samples.end());
    frames_++;
  }
  forward(frame);  // a speaker can still feed monitors (e.g. echo reference)
}

std::vector<std::int16_t> AudioPlayDaemon::played() const {
  std::scoped_lock lock(mu_);
  return played_;
}

std::uint64_t AudioPlayDaemon::frames_played() const {
  std::scoped_lock lock(mu_);
  return frames_;
}

// ----------------------------------------------------------------- recorder

AudioRecorderDaemon::AudioRecorderDaemon(daemon::Environment& env,
                                         daemon::DaemonHost& host,
                                         daemon::DaemonConfig config)
    : AudioElementDaemon(env, host, std::move(config)) {
  register_command(
      CommandSpec("recStats", "report recording statistics")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::scoped_lock lock(mu_);
        auto it = recordings_.find(cmd.get_text("stream"));
        std::int64_t n =
            it == recordings_.end()
                ? 0
                : static_cast<std::int64_t>(it->second.size());
        reply.arg("samples", n);
        return reply;
      });
}

void AudioRecorderDaemon::on_frame(const AudioFrame& frame) {
  std::scoped_lock lock(mu_);
  auto& rec = recordings_[frame.stream];
  rec.insert(rec.end(), frame.samples.begin(), frame.samples.end());
}

std::vector<std::int16_t> AudioRecorderDaemon::recorded(
    const std::string& stream) const {
  std::scoped_lock lock(mu_);
  auto it = recordings_.find(stream);
  return it == recordings_.end() ? std::vector<std::int16_t>{} : it->second;
}

std::vector<std::string> AudioRecorderDaemon::recorded_streams() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [tag, rec] : recordings_) out.push_back(tag);
  return out;
}

// ----------------------------------------------------------- text-to-speech

TextToSpeechDaemon::TextToSpeechDaemon(daemon::Environment& env,
                                       daemon::DaemonHost& host,
                                       daemon::DaemonConfig config,
                                       std::string stream_tag)
    : AudioElementDaemon(env, host, std::move(config)),
      stream_tag_(std::move(stream_tag)) {
  register_command(
      CommandSpec("say", "synthesize `text` into the output stream")
          .arg(string_arg("text")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::vector<std::int16_t> audio = dtmf_encode(cmd.get_text("text"));
        std::scoped_lock lock(mu_);
        std::size_t offset = 0;
        std::int64_t frames = 0;
        while (offset < audio.size()) {
          AudioFrame frame;
          frame.stream = stream_tag_;
          frame.sequence = sequence_++;
          std::size_t take = std::min(kFrameSamples, audio.size() - offset);
          frame.samples.assign(audio.begin() + offset,
                               audio.begin() + offset + take);
          frame.samples.resize(kFrameSamples, 0);
          offset += take;
          forward(frame);
          frames++;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("frames", frames);
        return reply;
      });
}

// -------------------------------------------------------- speech-to-command

SpeechToCommandDaemon::SpeechToCommandDaemon(daemon::Environment& env,
                                             daemon::DaemonHost& host,
                                             daemon::DaemonConfig config)
    : AudioElementDaemon(env, host, std::move(config)) {
  register_command(
      CommandSpec("stcSetTarget",
                  "service that decoded voice commands are executed on")
          .arg(string_arg("service")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto addr = net::Address::parse(cmd.get_text("service"));
        if (!addr)
          return cmdlang::make_error(util::Errc::invalid,
                                     "service must be host:port");
        std::scoped_lock lock(mu_);
        target_ = *addr;
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("stcFlush",
                  "decode the accumulated audio of `stream` as a command")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::vector<std::int16_t> audio;
        net::Address target;
        {
          std::scoped_lock lock(mu_);
          auto it = buffers_.find(cmd.get_text("stream"));
          if (it == buffers_.end() || it->second.empty())
            return cmdlang::make_error(util::Errc::not_found,
                                       "no audio buffered for stream");
          // Trim trailing zero padding introduced by frame alignment.
          audio = std::move(it->second);
          buffers_.erase(it);
          while (!audio.empty() && audio.back() == 0) audio.pop_back();
          std::size_t stride = kDtmfSymbolSamples + kDtmfGapSamples;
          audio.resize(((audio.size() + stride - 1) / stride) * stride, 0);
          target = target_;
        }
        auto text = dtmf_decode(audio);
        if (!text)
          return cmdlang::make_error(util::Errc::parse_error,
                                     "could not decode tone sequence");
        auto parsed = cmdlang::Parser::parse(*text);
        if (!parsed.ok())
          return cmdlang::make_error(util::Errc::parse_error,
                                     "decoded text is not a command: " +
                                         parsed.error().message);
        {
          std::scoped_lock lock(mu_);
          decoded_.push_back(parsed->to_string());
        }
        CmdLine event("voiceCommand");
        event.arg("text", *text);
        emit_notification(event);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("decoded", parsed->to_string());
        if (!target.host.empty()) {
          auto result = control_client().call(target, parsed.value());
          reply.arg("executed", Word{result.ok() ? "yes" : "no"});
        }
        return reply;
      });
}

void SpeechToCommandDaemon::on_frame(const AudioFrame& frame) {
  std::scoped_lock lock(mu_);
  auto& buf = buffers_[frame.stream];
  buf.insert(buf.end(), frame.samples.begin(), frame.samples.end());
}

std::vector<std::string> SpeechToCommandDaemon::decoded_commands() const {
  std::scoped_lock lock(mu_);
  return decoded_;
}

}  // namespace ace::media
