#include "media/audio_services.hpp"

namespace ace::media {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::Word;
using daemon::CallerInfo;

AudioElementDaemon::AudioElementDaemon(daemon::Environment& env,
                                       daemon::DaemonHost& host,
                                       daemon::DaemonConfig config)
    : RoutedMediaDaemon(env, host, std::move(config)) {
  // The element's ingest behavior is itself a routed stage: an O(1) header
  // parse over the shared wire buffer, then the subclass hook. Installed on
  // the catch-all route; tagged routes inherit it unless they override
  // stages explicitly.
  router().register_stage(
      "audio",
      [this](std::string_view, const util::SharedBytes& payload)
          -> std::optional<util::SharedBytes> {
        auto view = AudioFrameView::parse(payload.view());
        if (!view) return std::nullopt;
        return on_frame_view(*view, payload);
      });
  (void)router().set_stages(kCatchAllTag, {"audio"});

  register_command(
      CommandSpec("audioAddSink",
                  "forward output frames to `dest` (catch-all route alias)")
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto addr = net::Address::parse(cmd.get_text("dest"));
        if (!addr)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        add_sink(*addr);
        return cmdlang::make_ok();
      });
  register_command(
      CommandSpec("audioRemoveSink", "stop forwarding to `dest`")
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto addr = net::Address::parse(cmd.get_text("dest"));
        if (!addr)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        (void)router().remove_sink(kCatchAllTag, *addr);
        return cmdlang::make_ok();
      });
  register_command(
      CommandSpec("audioListSinks", "list forwarding destinations"),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::vector<std::string> out;
        for (const auto& s : sinks()) out.push_back(s.to_string());
        reply.arg("sinks", cmdlang::string_vector(std::move(out)));
        return reply;
      });
}

void AudioElementDaemon::add_sink(const net::Address& sink) {
  router().add_sink(kCatchAllTag, sink);
}

std::vector<net::Address> AudioElementDaemon::sinks() const {
  auto route = router().lookup(kCatchAllTag);
  return route ? route->sinks : std::vector<net::Address>{};
}

void AudioElementDaemon::emit_frame(std::string_view stream,
                                    std::uint32_t sequence,
                                    std::span<const std::int16_t> samples) {
  emit(serialize_frame(stream, sequence, samples));
}

util::SharedBytes AudioElementDaemon::legacy_ingest(
    const util::SharedBytes& payload) {
  // Before the router, every element fully decoded the frame on arrival and
  // re-serialized it to forward: two payload-sized copies per hop.
  auto frame = AudioFrame::parse(payload.view());
  if (!frame) return payload;
  bytes_copied_counter().inc(2 * payload.size());
  return util::SharedBytes(frame->serialize());
}

// ---------------------------------------------------------------- capture

AudioCaptureDaemon::AudioCaptureDaemon(daemon::Environment& env,
                                       daemon::DaemonHost& host,
                                       daemon::DaemonConfig config,
                                       std::string stream_tag)
    : AudioElementDaemon(env, host, std::move(config)),
      stream_tag_(std::move(stream_tag)) {
  using cmdlang::integer_arg;
  using cmdlang::real_arg;
  register_command(
      CommandSpec("captureGenerate",
                  "synthesize and emit `frames` frames of a test tone")
          .arg(integer_arg("frames").range(1, 10000))
          .arg(real_arg("frequency").optional_arg())
          .arg(real_arg("amplitude").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::int64_t frames = cmd.get_integer("frames");
        double freq = cmd.get_real("frequency", 440.0);
        double amp = cmd.get_real("amplitude", 8000.0);
        std::size_t phase = 0;
        for (std::int64_t i = 0; i < frames; ++i) {
          capture_push(sine_wave(freq, amp, kFrameSamples, phase));
          phase += kFrameSamples;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("frames", frames);
        return reply;
      });
}

void AudioCaptureDaemon::capture_push(
    const std::vector<std::int16_t>& samples) {
  std::scoped_lock lock(mu_);
  std::size_t offset = 0;
  std::vector<std::int16_t> frame(kFrameSamples);
  while (offset < samples.size()) {
    std::size_t take = std::min(kFrameSamples, samples.size() - offset);
    std::copy(samples.begin() + offset, samples.begin() + offset + take,
              frame.begin());
    std::fill(frame.begin() + take, frame.end(), 0);  // zero-pad tail frame
    offset += take;
    emit_frame(stream_tag_, sequence_++, frame);
  }
}

// ------------------------------------------------------------------- mixer

AudioMixerDaemon::AudioMixerDaemon(daemon::Environment& env,
                                   daemon::DaemonHost& host,
                                   daemon::DaemonConfig config,
                                   std::string output_tag)
    : AudioElementDaemon(env, host, std::move(config)),
      output_tag_(std::move(output_tag)) {
  register_command(
      CommandSpec("mixerAddInput", "declare an input stream tag")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        std::string tag = cmd.get_text("stream");
        if (std::find(inputs_.begin(), inputs_.end(), tag) == inputs_.end())
          inputs_.push_back(tag);
        return cmdlang::make_ok();
      });
}

std::optional<util::SharedBytes> AudioMixerDaemon::on_frame_view(
    const AudioFrameView& view, const util::SharedBytes& payload) {
  std::scoped_lock lock(mu_);
  if (std::find(inputs_.begin(), inputs_.end(), view.stream) == inputs_.end())
    return std::nullopt;  // undeclared stream
  auto& slot = pending_[view.sequence];
  slot[std::string(view.stream)] = payload;  // retain the shared wire buffer
  if (slot.size() != inputs_.size()) return std::nullopt;  // still gathering
  // Codec boundary: decode every contributing frame once, straight from the
  // retained wire bytes, and serialize the mix once.
  std::vector<std::int16_t> mixed;
  double gain = 1.0 / static_cast<double>(inputs_.size());
  for (const auto& [tag, buf] : slot) {
    if (auto v = AudioFrameView::parse(buf.view()))
      mix_view_into(mixed, *v, gain);
  }
  pending_.erase(view.sequence);
  // Bound memory on lossy streams.
  while (pending_.size() > 64) pending_.erase(pending_.begin());
  return serialize_frame(output_tag_, out_sequence_++, mixed);
}

// --------------------------------------------------------- echo cancellation

EchoCancellationDaemon::EchoCancellationDaemon(
    daemon::Environment& env, daemon::DaemonHost& host,
    daemon::DaemonConfig config, std::string reference_tag,
    std::string input_tag, std::string output_tag)
    : AudioElementDaemon(env, host, std::move(config)),
      reference_tag_(std::move(reference_tag)),
      input_tag_(std::move(input_tag)),
      output_tag_(std::move(output_tag)) {
  register_command(CommandSpec("ecStats", "report echo-cancellation ERLE"),
                   [this](const CmdLine&, const CallerInfo&) {
                     CmdLine reply = cmdlang::make_ok();
                     reply.arg("erle_db", erle_db());
                     return reply;
                   });
}

double EchoCancellationDaemon::erle_db() const {
  std::scoped_lock lock(mu_);
  return canceller_.erle_db();
}

std::optional<util::SharedBytes> EchoCancellationDaemon::on_frame_view(
    const AudioFrameView& view, const util::SharedBytes& payload) {
  std::scoped_lock lock(mu_);
  if (view.stream == reference_tag_) {
    pending_reference_[view.sequence] = payload;
  } else if (view.stream == input_tag_) {
    pending_input_[view.sequence] = payload;
  } else {
    return std::nullopt;
  }
  std::optional<util::SharedBytes> ready;
  // Process every sequence for which both halves have arrived, in order.
  while (!pending_input_.empty()) {
    auto in_it = pending_input_.begin();
    auto ref_it = pending_reference_.find(in_it->first);
    if (ref_it == pending_reference_.end()) break;
    auto ref = AudioFrameView::parse(ref_it->second.view());
    auto in = AudioFrameView::parse(in_it->second.view());
    if (ref && in) {
      // Codec boundary: the adaptive filter needs decoded samples.
      std::vector<std::int16_t> out =
          canceller_.process(ref->samples(), in->samples());
      ready = serialize_frame(output_tag_, in_it->first, out);
    }
    pending_reference_.erase(ref_it);
    pending_input_.erase(in_it);
    break;  // forward one per incoming frame; loop resumes on next arrival
  }
  while (pending_reference_.size() > 64)
    pending_reference_.erase(pending_reference_.begin());
  while (pending_input_.size() > 64)
    pending_input_.erase(pending_input_.begin());
  return ready;
}

// -------------------------------------------------------------------- play

AudioPlayDaemon::AudioPlayDaemon(daemon::Environment& env,
                                 daemon::DaemonHost& host,
                                 daemon::DaemonConfig config)
    : AudioElementDaemon(env, host, std::move(config)) {
  register_command(CommandSpec("playStats", "report playback statistics"),
                   [this](const CmdLine&, const CallerInfo&) {
                     CmdLine reply = cmdlang::make_ok();
                     std::vector<std::int16_t> window = played();
                     std::scoped_lock lock(mu_);
                     reply.arg("frames",
                               static_cast<std::int64_t>(frames_));
                     reply.arg("level_db", rms_db(window));
                     return reply;
                   });
}

std::optional<util::SharedBytes> AudioPlayDaemon::on_frame_view(
    const AudioFrameView& view, const util::SharedBytes& payload) {
  {
    std::scoped_lock lock(mu_);
    // Retain a view of the wire buffer — no sample is copied until someone
    // asks for played(). Evict beyond the window.
    ring_.push_back(payload);
    ring_samples_ += view.sample_count;
    while (ring_samples_ > window_samples_ && ring_.size() > 1) {
      auto front = AudioFrameView::parse(ring_.front().view());
      ring_samples_ -= front ? front->sample_count : 0;
      ring_.pop_front();
    }
    frames_++;
    last_payload_ = payload;
  }
  return payload;  // a speaker can still feed monitors (e.g. echo reference)
}

std::vector<std::int16_t> AudioPlayDaemon::played() const {
  std::scoped_lock lock(mu_);
  std::vector<std::int16_t> out;
  out.reserve(ring_samples_);
  for (const util::SharedBytes& buf : ring_)
    if (auto v = AudioFrameView::parse(buf.view())) v->append_samples(out);
  return out;
}

std::uint64_t AudioPlayDaemon::frames_played() const {
  std::scoped_lock lock(mu_);
  return frames_;
}

void AudioPlayDaemon::set_window(std::size_t samples) {
  std::scoped_lock lock(mu_);
  window_samples_ = samples;
  while (ring_samples_ > window_samples_ && ring_.size() > 1) {
    auto front = AudioFrameView::parse(ring_.front().view());
    ring_samples_ -= front ? front->sample_count : 0;
    ring_.pop_front();
  }
}

util::SharedBytes AudioPlayDaemon::last_payload() const {
  std::scoped_lock lock(mu_);
  return last_payload_;
}

// ----------------------------------------------------------------- recorder

AudioRecorderDaemon::AudioRecorderDaemon(daemon::Environment& env,
                                         daemon::DaemonHost& host,
                                         daemon::DaemonConfig config)
    : AudioElementDaemon(env, host, std::move(config)) {
  register_command(
      CommandSpec("recStats", "report recording statistics")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::scoped_lock lock(mu_);
        auto it = recordings_.find(cmd.get_text("stream"));
        std::int64_t n = it == recordings_.end()
                             ? 0
                             : static_cast<std::int64_t>(it->second.samples);
        reply.arg("samples", n);
        return reply;
      });
}

std::optional<util::SharedBytes> AudioRecorderDaemon::on_frame_view(
    const AudioFrameView& view, const util::SharedBytes& payload) {
  std::scoped_lock lock(mu_);
  Ring& rec = recordings_[std::string(view.stream)];
  rec.frames.push_back(payload);  // shared view; decode happens on readout
  rec.samples += view.sample_count;
  while (rec.samples > window_samples_ && rec.frames.size() > 1) {
    auto front = AudioFrameView::parse(rec.frames.front().view());
    rec.samples -= front ? front->sample_count : 0;
    rec.frames.pop_front();
  }
  return std::nullopt;  // recorders are terminal
}

std::vector<std::int16_t> AudioRecorderDaemon::recorded(
    const std::string& stream) const {
  std::scoped_lock lock(mu_);
  auto it = recordings_.find(stream);
  if (it == recordings_.end()) return {};
  std::vector<std::int16_t> out;
  out.reserve(it->second.samples);
  for (const util::SharedBytes& buf : it->second.frames)
    if (auto v = AudioFrameView::parse(buf.view())) v->append_samples(out);
  return out;
}

std::vector<std::string> AudioRecorderDaemon::recorded_streams() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [tag, rec] : recordings_) out.push_back(tag);
  return out;
}

void AudioRecorderDaemon::set_window(std::size_t samples) {
  std::scoped_lock lock(mu_);
  window_samples_ = samples;
  for (auto& [tag, rec] : recordings_) {
    while (rec.samples > window_samples_ && rec.frames.size() > 1) {
      auto front = AudioFrameView::parse(rec.frames.front().view());
      rec.samples -= front ? front->sample_count : 0;
      rec.frames.pop_front();
    }
  }
}

// ----------------------------------------------------------- text-to-speech

TextToSpeechDaemon::TextToSpeechDaemon(daemon::Environment& env,
                                       daemon::DaemonHost& host,
                                       daemon::DaemonConfig config,
                                       std::string stream_tag)
    : AudioElementDaemon(env, host, std::move(config)),
      stream_tag_(std::move(stream_tag)) {
  register_command(
      CommandSpec("say", "synthesize `text` into the output stream")
          .arg(string_arg("text")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::vector<std::int16_t> audio = dtmf_encode(cmd.get_text("text"));
        std::scoped_lock lock(mu_);
        std::size_t offset = 0;
        std::int64_t frames = 0;
        std::vector<std::int16_t> frame(kFrameSamples);
        while (offset < audio.size()) {
          std::size_t take = std::min(kFrameSamples, audio.size() - offset);
          std::copy(audio.begin() + offset, audio.begin() + offset + take,
                    frame.begin());
          std::fill(frame.begin() + take, frame.end(), 0);
          offset += take;
          emit_frame(stream_tag_, sequence_++, frame);
          frames++;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("frames", frames);
        return reply;
      });
}

// -------------------------------------------------------- speech-to-command

SpeechToCommandDaemon::SpeechToCommandDaemon(daemon::Environment& env,
                                             daemon::DaemonHost& host,
                                             daemon::DaemonConfig config)
    : AudioElementDaemon(env, host, std::move(config)) {
  register_command(
      CommandSpec("stcSetTarget",
                  "service that decoded voice commands are executed on")
          .arg(string_arg("service")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto addr = net::Address::parse(cmd.get_text("service"));
        if (!addr)
          return cmdlang::make_error(util::Errc::invalid,
                                     "service must be host:port");
        std::scoped_lock lock(mu_);
        target_ = *addr;
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("stcFlush",
                  "decode the accumulated audio of `stream` as a command")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::vector<std::int16_t> audio;
        net::Address target;
        {
          std::scoped_lock lock(mu_);
          auto it = buffers_.find(cmd.get_text("stream"));
          if (it == buffers_.end() || it->second.empty())
            return cmdlang::make_error(util::Errc::not_found,
                                       "no audio buffered for stream");
          // Trim trailing zero padding introduced by frame alignment.
          audio = std::move(it->second);
          buffers_.erase(it);
          while (!audio.empty() && audio.back() == 0) audio.pop_back();
          std::size_t stride = kDtmfSymbolSamples + kDtmfGapSamples;
          audio.resize(((audio.size() + stride - 1) / stride) * stride, 0);
          target = target_;
        }
        auto text = dtmf_decode(audio);
        if (!text)
          return cmdlang::make_error(util::Errc::parse_error,
                                     "could not decode tone sequence");
        auto parsed = cmdlang::Parser::parse(*text);
        if (!parsed.ok())
          return cmdlang::make_error(util::Errc::parse_error,
                                     "decoded text is not a command: " +
                                         parsed.error().message);
        {
          std::scoped_lock lock(mu_);
          decoded_.push_back(parsed->to_string());
        }
        CmdLine event("voiceCommand");
        event.arg("text", *text);
        emit_notification(event);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("decoded", parsed->to_string());
        if (!target.host.empty()) {
          auto result = control_client().call(target, parsed.value());
          reply.arg("executed", Word{result.ok() ? "yes" : "no"});
        }
        return reply;
      });
}

std::optional<util::SharedBytes> SpeechToCommandDaemon::on_frame_view(
    const AudioFrameView& view, const util::SharedBytes& payload) {
  (void)payload;
  std::scoped_lock lock(mu_);
  view.append_samples(buffers_[std::string(view.stream)]);
  return std::nullopt;  // terminal: audio is buffered until stcFlush
}

std::vector<std::string> SpeechToCommandDaemon::decoded_commands() const {
  std::scoped_lock lock(mu_);
  return decoded_;
}

}  // namespace ace::media
