// Tag-routed zero-copy media data plane (ISSUE 7; HAL "halmap" style).
//
// Every media datagram — AudioFrame and MediaPacket alike — begins with a
// length-prefixed stream tag. The FrameRouter maps that tag to an ordered
// list of processing stages plus a set of downstream sinks, so a media
// daemon can dispatch a frame with an O(1) header peek and a table lookup
// instead of a full parse. Routes are installed through authorized control
// commands (routeAdd / routeRemove / routeTable); the per-frame data path
// performs no authorization work at all — the KeyNote check happened once,
// at route-install time (provisioned-policy model, DESIGN.md §security).
//
// Stage contract: a stage receives the frame tag and the shared wire
// payload and returns
//   * the SAME SharedBytes        — pure observation, zero-copy pass-through;
//   * a NEW SharedBytes           — a transform (decode once, re-serialize
//                                   once); the result is fanned out to every
//                                   sink without further copies;
//   * std::nullopt                — the frame was consumed (aggregated,
//                                   buffered or rejected); nothing is sent.
//
// Routes are copy-on-write: lookup() returns an immutable snapshot that
// stays valid while concurrent routeAdd/routeRemove calls swap the table.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "daemon/daemon.hpp"
#include "util/bytes.hpp"

namespace ace::media {

// Reads only the leading length-prefixed stream tag of a media datagram —
// no allocation, no payload scan. Returns nullopt on a malformed header.
std::optional<std::string_view> peek_tag(util::BytesView data);

// The catch-all route tag: stages/sinks installed under it apply to every
// tag that has no specific route (and its sinks merge with tagged routes).
inline constexpr const char* kCatchAllTag = "*";

using StageFn = std::function<std::optional<util::SharedBytes>(
    std::string_view tag, const util::SharedBytes& payload)>;

class FrameRouter {
 public:
  // An immutable compiled route snapshot. Stage functions are resolved from
  // the registry at install time, never on the frame path.
  struct CompiledRoute {
    std::vector<std::string> stage_names;
    std::vector<StageFn> stages;
    std::vector<net::Address> sinks;
  };

  // Named stages a route may reference. Registration happens at daemon
  // construction; installing a route that names an unknown stage fails.
  void register_stage(const std::string& name, StageFn fn);
  std::vector<std::string> stage_names() const;

  // Replaces the stage list of `tag`'s route (creating the route if new).
  util::Status set_stages(const std::string& tag,
                          const std::vector<std::string>& names);
  void add_sink(const std::string& tag, const net::Address& sink);
  // Returns false if the route or sink did not exist.
  bool remove_sink(const std::string& tag, const net::Address& sink);
  bool remove_route(const std::string& tag);

  // O(log routes) snapshot lookup; nullptr when `tag` has no route.
  std::shared_ptr<const CompiledRoute> lookup(std::string_view tag) const;

  // Table dump for routeTable: {tag, route snapshot} pairs, sorted by tag.
  std::vector<std::pair<std::string, std::shared_ptr<const CompiledRoute>>>
  table() const;

 private:
  // Clones tag's current route for mutation; publish with publish_locked.
  CompiledRoute clone_locked(const std::string& tag) const;
  void publish_locked(const std::string& tag, CompiledRoute route);

  mutable std::mutex mu_;
  std::map<std::string, StageFn> stage_registry_;
  std::map<std::string, std::shared_ptr<const CompiledRoute>, std::less<>>
      routes_;
};

// Base class for media daemons that move frames through the router: owns a
// FrameRouter, registers the route* commands, and implements the zero-copy
// datagram path (peek tag → lookup → stages → batched sink fan-out).
//
// Deployment-wide counters (Environment metrics):
//   media.frames_routed    frames matched to a route
//   media.frames_dropped   frames with no tag or no route
//   media.bytes_copied     payload bytes copied on the data path (zero on
//                          pure fan-out; legacy mode shows the old cost)
//   media.datagrams_fanned sink sends (each a view, not a copy)
//   media.route_installs   routeAdd/routeRemove-style table mutations
class RoutedMediaDaemon : public daemon::ServiceDaemon {
 public:
  RoutedMediaDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                    daemon::DaemonConfig config);

  FrameRouter& router() { return router_; }
  const FrameRouter& router() const { return router_; }

  // E18 ablation: reproduce the pre-router per-hop costs (own the wire
  // bytes on ingest, full AudioFrame decode + re-encode in audio elements,
  // one payload copy and one network transaction per sink).
  void set_legacy_copy_mode(bool on) { legacy_copy_mode_.store(on); }
  bool legacy_copy_mode() const { return legacy_copy_mode_.load(); }

  struct RouteStats {
    std::uint64_t frames = 0;  // frames that matched a route
    std::uint64_t bytes = 0;   // their payload bytes
    std::uint64_t fanout = 0;  // sink sends
  };
  RouteStats route_stats() const;

 protected:
  void on_datagram(const net::Datagram& datagram) final;

  // Routes a locally produced frame by its own tag: the frame goes to the
  // tag route's sinks plus the catch-all sinks, without running stages.
  void emit(const util::SharedBytes& payload);

  // Legacy-mode ingest cost model; overridden by AudioElementDaemon to add
  // the historical full decode + re-encode. Must count media.bytes_copied.
  virtual util::SharedBytes legacy_ingest(const util::SharedBytes& payload);

  obs::Counter& bytes_copied_counter() { return bytes_copied_; }

 private:
  void send_to_sinks(const FrameRouter::CompiledRoute* primary,
                     const FrameRouter::CompiledRoute* catch_all,
                     const util::SharedBytes& payload);

  FrameRouter router_;
  std::atomic<bool> legacy_copy_mode_{false};

  obs::Counter& frames_routed_;
  obs::Counter& frames_dropped_;
  obs::Counter& bytes_copied_;
  obs::Counter& datagrams_fanned_;
  obs::Counter& route_installs_;

  std::atomic<std::uint64_t> local_frames_{0};
  std::atomic<std::uint64_t> local_bytes_{0};
  std::atomic<std::uint64_t> local_fanout_{0};
};

}  // namespace ace::media
