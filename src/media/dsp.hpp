// DSP primitives for the §4.15 audio pipeline:
//  * NLMS adaptive echo canceller (the Echo Cancellation service: "removes
//    redundant audio signals (with an arbitrary amount of delay) from an
//    input audio signal"),
//  * Goertzel tone detection and DTMF symbol coding — the working substrate
//    for the Text-to-Speech / Speech-to-Command simulation (commands are
//    carried as audible tone sequences and decoded back to ACE commands).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ace::media {

// ------------------------------------------------------ NLMS echo canceller

class EchoCanceller {
 public:
  // `taps` bounds the echo-path delay that can be modelled (in samples).
  explicit EchoCanceller(std::size_t taps = 128, double mu = 0.6);

  // Processes one block: `reference` is the far-end signal being played
  // locally; `input` is the microphone pickup (near speech + echo).
  // Returns the echo-cancelled signal.
  std::vector<std::int16_t> process(const std::vector<std::int16_t>& reference,
                                    const std::vector<std::int16_t>& input);

  // Echo Return Loss Enhancement over everything processed so far (dB).
  double erle_db() const;

  void reset();

 private:
  std::size_t taps_;
  double mu_;
  std::vector<double> weights_;
  // Reference delay line as a circular buffer: head_ is the slot holding
  // the newest sample; logical position k (0 = newest) lives at
  // (head_ + k) % taps_. Avoids the O(taps) shift per sample the naive
  // delay line pays — the arithmetic (and thus the output) is unchanged
  // because taps are still visited newest-to-oldest.
  std::vector<double> history_;
  std::size_t head_ = 0;
  // Running sum of squares over the delay line. Samples are int16-valued,
  // so each update is exact in double arithmetic (squares < 2^30, window
  // sum < 2^53) and the running sum never drifts from a fresh recompute.
  double window_energy_ = 0.0;
  double in_energy_ = 0.0;
  double out_energy_ = 0.0;
};

// --------------------------------------------------------- Goertzel / DTMF

// Power of `frequency_hz` in `samples` via the Goertzel recurrence.
double goertzel_power(const std::vector<std::int16_t>& samples,
                      std::size_t offset, std::size_t length,
                      double frequency_hz, int sample_rate);

inline constexpr std::size_t kDtmfSymbolSamples = 80;  // 10 ms @ 8 kHz
inline constexpr std::size_t kDtmfGapSamples = 40;

// Encodes arbitrary bytes as a DTMF-16 tone sequence (two symbols per
// byte); decode inverts it. Empty result on decode failure.
std::vector<std::int16_t> dtmf_encode(const std::string& text,
                                      double amplitude = 12000.0);
std::optional<std::string> dtmf_decode(const std::vector<std::int16_t>& audio);

}  // namespace ace::media
