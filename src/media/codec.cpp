#include "media/codec.hpp"

#include <algorithm>

namespace ace::media {

namespace {

constexpr int kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

constexpr int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                 -1, -1, -1, -1, 2, 4, 6, 8};

std::uint8_t encode_sample(int sample, AdpcmState& st) {
  int step = kStepTable[st.step_index];
  int diff = sample - st.predictor;
  std::uint8_t code = 0;
  if (diff < 0) {
    code = 8;
    diff = -diff;
  }
  int delta = step >> 3;
  if (diff >= step) {
    code |= 4;
    diff -= step;
    delta += step;
  }
  step >>= 1;
  if (diff >= step) {
    code |= 2;
    diff -= step;
    delta += step;
  }
  step >>= 1;
  if (diff >= step) {
    code |= 1;
    delta += step;
  }
  if (code & 8)
    st.predictor -= delta;
  else
    st.predictor += delta;
  st.predictor = std::clamp(st.predictor, -32768, 32767);
  st.step_index = std::clamp(st.step_index + kIndexTable[code], 0, 88);
  return code;
}

std::int16_t decode_sample(std::uint8_t code, AdpcmState& st) {
  int step = kStepTable[st.step_index];
  int delta = step >> 3;
  if (code & 4) delta += step;
  if (code & 2) delta += step >> 1;
  if (code & 1) delta += step >> 2;
  if (code & 8)
    st.predictor -= delta;
  else
    st.predictor += delta;
  st.predictor = std::clamp(st.predictor, -32768, 32767);
  st.step_index = std::clamp(st.step_index + kIndexTable[code], 0, 88);
  return static_cast<std::int16_t>(st.predictor);
}

}  // namespace

util::Bytes adpcm_encode(const std::vector<std::int16_t>& pcm,
                         AdpcmState& state) {
  util::Bytes out;
  out.reserve((pcm.size() + 1) / 2);
  for (std::size_t i = 0; i < pcm.size(); i += 2) {
    std::uint8_t lo = encode_sample(pcm[i], state);
    std::uint8_t hi =
        i + 1 < pcm.size() ? encode_sample(pcm[i + 1], state) : 0;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

std::vector<std::int16_t> adpcm_decode(const util::Bytes& data,
                                       std::size_t sample_count,
                                       AdpcmState& state) {
  std::vector<std::int16_t> out;
  out.reserve(sample_count);
  for (std::uint8_t byte : data) {
    if (out.size() < sample_count)
      out.push_back(decode_sample(byte & 0x0f, state));
    if (out.size() < sample_count)
      out.push_back(decode_sample(byte >> 4, state));
  }
  return out;
}

util::Bytes rle_video_encode(const VideoFrame& frame,
                             const VideoFrame* reference) {
  util::ByteWriter w;
  bool inter = reference && reference->width == frame.width &&
               reference->height == frame.height;
  w.u8(inter ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(frame.width));
  w.u32(static_cast<std::uint32_t>(frame.height));

  // Residual (or raw) plane.
  std::size_t n = frame.pixels.size();
  util::Bytes plane(n);
  for (std::size_t i = 0; i < n; ++i) {
    plane[i] = inter ? static_cast<std::uint8_t>(frame.pixels[i] -
                                                 reference->pixels[i])
                     : frame.pixels[i];
  }

  // Byte-oriented RLE: (count, value) pairs with 255-max runs.
  std::size_t i = 0;
  while (i < n) {
    std::uint8_t value = plane[i];
    std::size_t run = 1;
    while (i + run < n && plane[i + run] == value && run < 255) ++run;
    w.u8(static_cast<std::uint8_t>(run));
    w.u8(value);
    i += run;
  }
  return w.take();
}

std::optional<VideoFrame> rle_video_decode(const util::Bytes& data,
                                           const VideoFrame* reference) {
  util::ByteReader r(data);
  auto inter = r.u8();
  auto width = r.u32();
  auto height = r.u32();
  if (!inter || !width || !height) return std::nullopt;
  VideoFrame frame;
  frame.width = static_cast<int>(*width);
  frame.height = static_cast<int>(*height);
  std::size_t n = static_cast<std::size_t>(*width) * *height;
  frame.pixels.reserve(n);
  while (frame.pixels.size() < n) {
    auto run = r.u8();
    auto value = r.u8();
    if (!run || !value || *run == 0) return std::nullopt;
    for (std::uint8_t k = 0; k < *run && frame.pixels.size() < n; ++k)
      frame.pixels.push_back(*value);
  }
  if (*inter) {
    if (!reference || reference->pixels.size() != n) return std::nullopt;
    for (std::size_t i = 0; i < n; ++i)
      frame.pixels[i] =
          static_cast<std::uint8_t>(frame.pixels[i] + reference->pixels[i]);
  }
  return frame;
}

VideoFrame synthetic_frame(int width, int height, int t) {
  VideoFrame f;
  f.width = width;
  f.height = height;
  f.pixels.resize(static_cast<std::size_t>(width) * height);
  // Static background gradient.
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      f.pixels[static_cast<std::size_t>(y) * width + x] =
          static_cast<std::uint8_t>((x + 2 * y) & 0x3f);
  // Moving bright square.
  int size = std::max(4, width / 8);
  int px = (t * 3) % std::max(1, width - size);
  int py = (t * 2) % std::max(1, height - size);
  for (int y = py; y < py + size && y < height; ++y)
    for (int x = px; x < px + size && x < width; ++x)
      f.pixels[static_cast<std::size_t>(y) * width + x] = 0xe0;
  return f;
}

}  // namespace ace::media
