#include "media/audio.hpp"

#include <algorithm>
#include <cmath>

namespace ace::media {

util::Bytes AudioFrame::serialize() const {
  util::ByteWriter w;
  w.str(stream);
  w.u32(sequence);
  w.u32(static_cast<std::uint32_t>(samples.size()));
  for (std::int16_t s : samples) w.i16(s);
  return w.take();
}

std::optional<AudioFrame> AudioFrame::parse(util::BytesView data) {
  util::ByteReader r(data);
  AudioFrame f;
  auto stream = r.str();
  auto seq = r.u32();
  auto n = r.u32();
  if (!stream || !seq || !n) return std::nullopt;
  f.stream = std::move(*stream);
  f.sequence = *seq;
  f.samples.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto s = r.i16();
    if (!s) return std::nullopt;
    f.samples.push_back(*s);
  }
  return f;
}

std::optional<AudioFrameView> AudioFrameView::parse(util::BytesView data) {
  // Wire layout (AudioFrame::serialize): u32 tag_len | tag | u32 sequence |
  // u32 sample_count | sample_count × i16 LE. Decoded with raw offsets —
  // no allocation, no per-sample work.
  auto rd_u32 = [&](std::size_t at) {
    return static_cast<std::uint32_t>(data[at]) |
           static_cast<std::uint32_t>(data[at + 1]) << 8 |
           static_cast<std::uint32_t>(data[at + 2]) << 16 |
           static_cast<std::uint32_t>(data[at + 3]) << 24;
  };
  if (data.size() < 4) return std::nullopt;
  std::size_t tag_len = rd_u32(0);
  if (data.size() < 4 + tag_len + 8) return std::nullopt;
  AudioFrameView v;
  v.stream = std::string_view(reinterpret_cast<const char*>(data.data()) + 4,
                              tag_len);
  v.sequence = rd_u32(4 + tag_len);
  v.sample_count = rd_u32(4 + tag_len + 4);
  if (data.size() < 4 + tag_len + 8 + 2 * v.sample_count) return std::nullopt;
  v.sample_data = data.data() + 4 + tag_len + 8;
  return v;
}

std::vector<std::int16_t> AudioFrameView::samples() const {
  std::vector<std::int16_t> out;
  append_samples(out);
  return out;
}

void AudioFrameView::append_samples(std::vector<std::int16_t>& out) const {
  std::size_t base = out.size();
  out.resize(base + sample_count);
  for (std::size_t i = 0; i < sample_count; ++i) out[base + i] = sample(i);
}

util::SharedBytes serialize_frame(std::string_view stream,
                                  std::uint32_t sequence,
                                  std::span<const std::int16_t> samples) {
  util::ByteWriter w;
  w.str(stream);
  w.u32(sequence);
  w.u32(static_cast<std::uint32_t>(samples.size()));
  for (std::int16_t s : samples) w.i16(s);
  return util::SharedBytes(w.take());
}

void mix_view_into(std::vector<std::int16_t>& acc, const AudioFrameView& src,
                   double gain) {
  if (acc.size() < src.sample_count) acc.resize(src.sample_count, 0);
  for (std::size_t i = 0; i < src.sample_count; ++i) {
    double v = static_cast<double>(acc[i]) + gain * src.sample(i);
    acc[i] = static_cast<std::int16_t>(std::clamp(v, -32767.0, 32767.0));
  }
}

std::vector<std::int16_t> sine_wave(double frequency_hz, double amplitude,
                                    std::size_t n, std::size_t phase_offset) {
  std::vector<std::int16_t> out(n);
  const double w = 2.0 * 3.14159265358979323846 * frequency_hz / kSampleRate;
  for (std::size_t i = 0; i < n; ++i) {
    double v = amplitude * std::sin(w * static_cast<double>(i + phase_offset));
    out[i] = static_cast<std::int16_t>(
        std::clamp(v, -32767.0, 32767.0));
  }
  return out;
}

void mix_into(std::vector<std::int16_t>& acc,
              const std::vector<std::int16_t>& src, double gain) {
  if (acc.size() < src.size()) acc.resize(src.size(), 0);
  for (std::size_t i = 0; i < src.size(); ++i) {
    double v = static_cast<double>(acc[i]) + gain * src[i];
    acc[i] = static_cast<std::int16_t>(std::clamp(v, -32767.0, 32767.0));
  }
}

double rms(const std::vector<std::int16_t>& samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  for (std::int16_t s : samples) acc += static_cast<double>(s) * s;
  return std::sqrt(acc / static_cast<double>(samples.size()));
}

double rms_db(const std::vector<std::int16_t>& samples) {
  double r = rms(samples);
  if (r < 1e-9) return -120.0;
  return 20.0 * std::log10(r / 32767.0);
}

}  // namespace ace::media
