// The Fig 15 audio pipeline services (paper §4.15): Audio Capture, Audio
// Mixer, Echo Cancellation, Audio Play, Audio Recorder, Text-to-Speech and
// Speech-to-Command — each a RoutedMediaDaemon streaming AudioFrames over
// its data channel, composable into the paper's two-site conferencing graph
// together with the Distribution service (src/services/streaming.hpp).
//
// Data-plane discipline (docs/media.md): observe stages (play metering,
// recording) work on AudioFrameView — an O(1) header decode over the shared
// wire buffer — and pass the buffer through untouched; transform stages
// (mixer, echo cancellation) decode samples once and re-serialize once, and
// the result fans out to every sink as views of a single SharedBytes.
//
// Text-to-Speech / Speech-to-Command substitution (DESIGN.md): synthesized
// "speech" is a DTMF tone sequence; the recognizer runs real Goertzel
// detection and parses the recovered text as an ACE command.
#pragma once

#include <deque>
#include <map>
#include <mutex>

#include "media/audio.hpp"
#include "media/dsp.hpp"
#include "media/router.hpp"

namespace ace::media {

// Retention window for play/recorder sample history (60 s @ 8 kHz). Bounds
// what used to be unbounded growth; see set_window().
inline constexpr std::size_t kDefaultWindowSamples = 60 * kSampleRate;

// Shared base for the Fig 15 elements: installs an "audio" ingest stage on
// the catch-all route that parses the frame header in place (no sample is
// touched) and hands the view to on_frame_view(). The audioAddSink command
// family is kept as an alias for catch-all route edits.
class AudioElementDaemon : public RoutedMediaDaemon {
 public:
  AudioElementDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config);

  // Programmatic sink management (mirrors the audioAddSink command):
  // catch-all route sinks, merged into every tagged route's fan-out.
  void add_sink(const net::Address& sink);

  std::vector<net::Address> sinks() const;

 protected:
  // Subclass hook: one audio frame arrived. `payload` is the shared wire
  // buffer the view borrows from. Return semantics are the stage contract
  // (router.hpp): same payload = observe, new buffer = transform, nullopt =
  // consumed. Default consumes.
  virtual std::optional<util::SharedBytes> on_frame_view(
      const AudioFrameView& view, const util::SharedBytes& payload) {
    (void)view;
    (void)payload;
    return std::nullopt;
  }

  // Serializes once and routes the frame by its tag (plus catch-all sinks).
  void emit_frame(std::string_view stream, std::uint32_t sequence,
                  std::span<const std::int16_t> samples);

  // Pre-router ingest for the E18 ablation: full AudioFrame decode plus
  // re-encode per hop, exactly what every element used to pay.
  util::SharedBytes legacy_ingest(const util::SharedBytes& payload) override;
};

// Digitizes a (synthetic) microphone signal into the pipeline (§4.15 item 7).
class AudioCaptureDaemon : public AudioElementDaemon {
 public:
  AudioCaptureDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, std::string stream_tag);

  // Pushes raw samples as one or more frames into the pipeline.
  void capture_push(const std::vector<std::int16_t>& samples);

  const std::string& stream_tag() const { return stream_tag_; }

 private:
  std::string stream_tag_;
  std::uint32_t sequence_ = 0;
  std::mutex mu_;
};

// Combines multiple audio streams into one (§4.15 item 1). Inputs are
// declared with mixerAddInput; frames are aligned by sequence number and
// mixed — straight from the retained wire buffers — once every input has
// contributed.
class AudioMixerDaemon : public AudioElementDaemon {
 public:
  AudioMixerDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                   daemon::DaemonConfig config, std::string output_tag);

 protected:
  std::optional<util::SharedBytes> on_frame_view(
      const AudioFrameView& view, const util::SharedBytes& payload) override;

 private:
  std::string output_tag_;
  std::mutex mu_;
  std::vector<std::string> inputs_;
  // sequence → input tag → retained wire buffer (views stay parseable).
  std::map<std::uint32_t, std::map<std::string, util::SharedBytes>> pending_;
  std::uint32_t out_sequence_ = 0;
};

// Removes the far-end echo from the microphone stream (§4.15 item 3).
class EchoCancellationDaemon : public AudioElementDaemon {
 public:
  EchoCancellationDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                         daemon::DaemonConfig config,
                         std::string reference_tag, std::string input_tag,
                         std::string output_tag);

  double erle_db() const;

 protected:
  std::optional<util::SharedBytes> on_frame_view(
      const AudioFrameView& view, const util::SharedBytes& payload) override;

 private:
  std::string reference_tag_, input_tag_, output_tag_;
  mutable std::mutex mu_;
  EchoCanceller canceller_;
  std::map<std::uint32_t, util::SharedBytes> pending_reference_;
  std::map<std::uint32_t, util::SharedBytes> pending_input_;
};

// Terminal sink standing in for a speaker (§4.15 item 6). Keeps a bounded
// ring of played frames — shared views of the wire buffers, decoded only
// when played() is called.
class AudioPlayDaemon : public AudioElementDaemon {
 public:
  AudioPlayDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                  daemon::DaemonConfig config);

  std::vector<std::int16_t> played() const;
  std::uint64_t frames_played() const;

  // Retention window in samples; older frames are evicted.
  void set_window(std::size_t samples);

  // The most recent frame's wire buffer (zero-copy invariant tests).
  util::SharedBytes last_payload() const;

 protected:
  std::optional<util::SharedBytes> on_frame_view(
      const AudioFrameView& view, const util::SharedBytes& payload) override;

 private:
  mutable std::mutex mu_;
  std::deque<util::SharedBytes> ring_;
  std::size_t ring_samples_ = 0;
  std::size_t window_samples_ = kDefaultWindowSamples;
  std::uint64_t frames_ = 0;
  util::SharedBytes last_payload_;
};

// Records everything it receives, per stream, within a bounded window
// (§4.15 item 5).
class AudioRecorderDaemon : public AudioElementDaemon {
 public:
  AudioRecorderDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                      daemon::DaemonConfig config);

  std::vector<std::int16_t> recorded(const std::string& stream) const;
  std::vector<std::string> recorded_streams() const;

  // Per-stream retention window in samples; older frames are evicted.
  void set_window(std::size_t samples);

 protected:
  std::optional<util::SharedBytes> on_frame_view(
      const AudioFrameView& view, const util::SharedBytes& payload) override;

 private:
  struct Ring {
    std::deque<util::SharedBytes> frames;
    std::size_t samples = 0;
  };
  mutable std::mutex mu_;
  std::map<std::string, Ring> recordings_;
  std::size_t window_samples_ = kDefaultWindowSamples;
};

// Converts text into an audible signal (§4.15 item 2).
class TextToSpeechDaemon : public AudioElementDaemon {
 public:
  TextToSpeechDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, std::string stream_tag);

 private:
  std::string stream_tag_;
  std::uint32_t sequence_ = 0;
  std::mutex mu_;
};

// Analyses the audio for voice commands and converts them into ACE service
// commands (§4.15 item 8). Decoded commands are executed against the
// configured target service; every decode also fires a `voiceCommand`
// notification.
class SpeechToCommandDaemon : public AudioElementDaemon {
 public:
  SpeechToCommandDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                        daemon::DaemonConfig config);

  std::vector<std::string> decoded_commands() const;

 protected:
  std::optional<util::SharedBytes> on_frame_view(
      const AudioFrameView& view, const util::SharedBytes& payload) override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::int16_t>> buffers_;
  net::Address target_;
  std::vector<std::string> decoded_;
};

}  // namespace ace::media
