// The Fig 15 audio pipeline services (paper §4.15): Audio Capture, Audio
// Mixer, Echo Cancellation, Audio Play, Audio Recorder, Text-to-Speech and
// Speech-to-Command — each a ServiceDaemon streaming AudioFrames over its
// data channel, composable into the paper's two-site conferencing graph
// together with the Distribution service (src/services/streaming.hpp).
//
// Text-to-Speech / Speech-to-Command substitution (DESIGN.md): synthesized
// "speech" is a DTMF tone sequence; the recognizer runs real Goertzel
// detection and parses the recovered text as an ACE command.
#pragma once

#include <deque>
#include <map>
#include <mutex>

#include "daemon/daemon.hpp"
#include "media/audio.hpp"
#include "media/dsp.hpp"

namespace ace::media {

// Shared base: manages downstream sinks and frame fan-out.
class AudioElementDaemon : public daemon::ServiceDaemon {
 public:
  AudioElementDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config);

  // Programmatic sink management (mirrors the audioAddSink command).
  void add_sink(const net::Address& sink);

 protected:
  void on_datagram(const net::Datagram& datagram) final;

  // Subclass hook: one parsed audio frame arrived on the data channel.
  virtual void on_frame(const AudioFrame& frame) { (void)frame; }

  // Sends `frame` to every registered sink.
  void forward(const AudioFrame& frame);

  std::vector<net::Address> sinks() const;

 private:
  mutable std::mutex sink_mu_;
  std::vector<net::Address> sinks_;
};

// Digitizes a (synthetic) microphone signal into the pipeline (§4.15 item 7).
class AudioCaptureDaemon : public AudioElementDaemon {
 public:
  AudioCaptureDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, std::string stream_tag);

  // Pushes raw samples as one or more frames into the pipeline.
  void capture_push(const std::vector<std::int16_t>& samples);

  const std::string& stream_tag() const { return stream_tag_; }

 private:
  std::string stream_tag_;
  std::uint32_t sequence_ = 0;
  std::mutex mu_;
};

// Combines multiple audio streams into one (§4.15 item 1). Inputs are
// declared with mixerAddInput; frames are aligned by sequence number and
// mixed once every input has contributed.
class AudioMixerDaemon : public AudioElementDaemon {
 public:
  AudioMixerDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                   daemon::DaemonConfig config, std::string output_tag);

 protected:
  void on_frame(const AudioFrame& frame) override;

 private:
  std::string output_tag_;
  std::mutex mu_;
  std::vector<std::string> inputs_;
  std::map<std::uint32_t, std::map<std::string, AudioFrame>> pending_;
  std::uint32_t out_sequence_ = 0;
};

// Removes the far-end echo from the microphone stream (§4.15 item 3).
class EchoCancellationDaemon : public AudioElementDaemon {
 public:
  EchoCancellationDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                         daemon::DaemonConfig config,
                         std::string reference_tag, std::string input_tag,
                         std::string output_tag);

  double erle_db() const;

 protected:
  void on_frame(const AudioFrame& frame) override;

 private:
  std::string reference_tag_, input_tag_, output_tag_;
  mutable std::mutex mu_;
  EchoCanceller canceller_;
  std::map<std::uint32_t, AudioFrame> pending_reference_;
  std::map<std::uint32_t, AudioFrame> pending_input_;
};

// Terminal sink standing in for a speaker (§4.15 item 6).
class AudioPlayDaemon : public AudioElementDaemon {
 public:
  AudioPlayDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                  daemon::DaemonConfig config);

  std::vector<std::int16_t> played() const;
  std::uint64_t frames_played() const;

 protected:
  void on_frame(const AudioFrame& frame) override;

 private:
  mutable std::mutex mu_;
  std::vector<std::int16_t> played_;
  std::uint64_t frames_ = 0;
};

// Records everything it receives, per stream (§4.15 item 5).
class AudioRecorderDaemon : public AudioElementDaemon {
 public:
  AudioRecorderDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                      daemon::DaemonConfig config);

  std::vector<std::int16_t> recorded(const std::string& stream) const;
  std::vector<std::string> recorded_streams() const;

 protected:
  void on_frame(const AudioFrame& frame) override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::int16_t>> recordings_;
};

// Converts text into an audible signal (§4.15 item 2).
class TextToSpeechDaemon : public AudioElementDaemon {
 public:
  TextToSpeechDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, std::string stream_tag);

 private:
  std::string stream_tag_;
  std::uint32_t sequence_ = 0;
  std::mutex mu_;
};

// Analyses the audio for voice commands and converts them into ACE service
// commands (§4.15 item 8). Decoded commands are executed against the
// configured target service; every decode also fires a `voiceCommand`
// notification.
class SpeechToCommandDaemon : public AudioElementDaemon {
 public:
  SpeechToCommandDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                        daemon::DaemonConfig config);

  std::vector<std::string> decoded_commands() const;

 protected:
  void on_frame(const AudioFrame& frame) override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<std::int16_t>> buffers_;
  net::Address target_;
  std::vector<std::string> decoded_;
};

}  // namespace ace::media
