// Audio frame model for the ACE media pipeline (paper §4.15, Fig 15).
// 16-bit mono PCM frames with sequence numbers and stream tags, carried
// over daemon data channels (UDP-like) as the paper's data threads do.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace ace::media {

inline constexpr int kSampleRate = 8000;          // telephony rate
inline constexpr std::size_t kFrameSamples = 160; // 20 ms @ 8 kHz

struct AudioFrame {
  std::string stream;           // stream tag, e.g. "room-hawk-mic"
  std::uint32_t sequence = 0;
  std::vector<std::int16_t> samples;

  util::Bytes serialize() const;
  static std::optional<AudioFrame> parse(util::BytesView data);
};

// Zero-copy decode of a serialized AudioFrame: header fields plus a raw
// pointer to the little-endian i16 sample bytes *inside the wire buffer*.
// Parsing is O(header) — no sample is touched until a consumer asks. The
// view borrows the buffer it was parsed from; keep the owning SharedBytes
// alive for as long as the view is used.
struct AudioFrameView {
  std::string_view stream;
  std::uint32_t sequence = 0;
  const std::uint8_t* sample_data = nullptr;  // i16 LE, in place
  std::size_t sample_count = 0;

  static std::optional<AudioFrameView> parse(util::BytesView data);

  std::int16_t sample(std::size_t i) const {
    return static_cast<std::int16_t>(
        static_cast<std::uint16_t>(sample_data[2 * i]) |
        static_cast<std::uint16_t>(sample_data[2 * i + 1]) << 8);
  }
  // Decodes all samples (the codec-boundary copy, paid only when a stage
  // actually transforms or consumes audio).
  std::vector<std::int16_t> samples() const;
  void append_samples(std::vector<std::int16_t>& out) const;
};

// One-pass serialization of a frame into a shared immutable buffer — the
// single materialization a transforming stage pays before zero-copy fan-out.
util::SharedBytes serialize_frame(std::string_view stream,
                                  std::uint32_t sequence,
                                  std::span<const std::int16_t> samples);

// Accumulates `gain * view` into `acc` straight from wire bytes.
void mix_view_into(std::vector<std::int16_t>& acc, const AudioFrameView& src,
                   double gain);

// Signal helpers shared by capture simulation, tests and benches.
std::vector<std::int16_t> sine_wave(double frequency_hz, double amplitude,
                                    std::size_t n, std::size_t phase_offset);
void mix_into(std::vector<std::int16_t>& acc,
              const std::vector<std::int16_t>& src, double gain);
double rms(const std::vector<std::int16_t>& samples);
double rms_db(const std::vector<std::int16_t>& samples);

}  // namespace ace::media
