// Audio frame model for the ACE media pipeline (paper §4.15, Fig 15).
// 16-bit mono PCM frames with sequence numbers and stream tags, carried
// over daemon data channels (UDP-like) as the paper's data threads do.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace ace::media {

inline constexpr int kSampleRate = 8000;          // telephony rate
inline constexpr std::size_t kFrameSamples = 160; // 20 ms @ 8 kHz

struct AudioFrame {
  std::string stream;           // stream tag, e.g. "room-hawk-mic"
  std::uint32_t sequence = 0;
  std::vector<std::int16_t> samples;

  util::Bytes serialize() const;
  static std::optional<AudioFrame> parse(const util::Bytes& data);
};

// Signal helpers shared by capture simulation, tests and benches.
std::vector<std::int16_t> sine_wave(double frequency_hz, double amplitude,
                                    std::size_t n, std::size_t phase_offset);
void mix_into(std::vector<std::int16_t>& acc,
              const std::vector<std::int16_t>& src, double gain);
double rms(const std::vector<std::int16_t>& samples);
double rms_db(const std::vector<std::int16_t>& samples);

}  // namespace ace::media
