#include "media/router.hpp"

#include <algorithm>

namespace ace::media {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using daemon::CallerInfo;

std::optional<std::string_view> peek_tag(util::BytesView data) {
  if (data.size() < 4) return std::nullopt;
  std::size_t len = static_cast<std::size_t>(data[0]) |
                    static_cast<std::size_t>(data[1]) << 8 |
                    static_cast<std::size_t>(data[2]) << 16 |
                    static_cast<std::size_t>(data[3]) << 24;
  if (data.size() < 4 + len) return std::nullopt;
  return std::string_view(reinterpret_cast<const char*>(data.data()) + 4, len);
}

// ---------------------------------------------------------------- FrameRouter

void FrameRouter::register_stage(const std::string& name, StageFn fn) {
  std::scoped_lock lock(mu_);
  stage_registry_[name] = std::move(fn);
}

std::vector<std::string> FrameRouter::stage_names() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, fn] : stage_registry_) out.push_back(name);
  return out;
}

FrameRouter::CompiledRoute FrameRouter::clone_locked(
    const std::string& tag) const {
  auto it = routes_.find(tag);
  return it == routes_.end() ? CompiledRoute{} : *it->second;
}

void FrameRouter::publish_locked(const std::string& tag, CompiledRoute route) {
  routes_[tag] =
      std::make_shared<const CompiledRoute>(std::move(route));
}

util::Status FrameRouter::set_stages(const std::string& tag,
                                     const std::vector<std::string>& names) {
  std::scoped_lock lock(mu_);
  CompiledRoute route = clone_locked(tag);
  route.stage_names.clear();
  route.stages.clear();
  for (const std::string& name : names) {
    auto it = stage_registry_.find(name);
    if (it == stage_registry_.end())
      return util::Error{util::Errc::not_found, "unknown stage: " + name};
    route.stage_names.push_back(name);
    route.stages.push_back(it->second);
  }
  publish_locked(tag, std::move(route));
  return util::Status::ok_status();
}

void FrameRouter::add_sink(const std::string& tag, const net::Address& sink) {
  std::scoped_lock lock(mu_);
  CompiledRoute route = clone_locked(tag);
  if (std::find(route.sinks.begin(), route.sinks.end(), sink) !=
      route.sinks.end())
    return;
  route.sinks.push_back(sink);
  publish_locked(tag, std::move(route));
}

bool FrameRouter::remove_sink(const std::string& tag,
                              const net::Address& sink) {
  std::scoped_lock lock(mu_);
  auto it = routes_.find(tag);
  if (it == routes_.end()) return false;
  CompiledRoute route = *it->second;
  auto removed = std::erase(route.sinks, sink);
  if (removed == 0) return false;
  publish_locked(tag, std::move(route));
  return true;
}

bool FrameRouter::remove_route(const std::string& tag) {
  std::scoped_lock lock(mu_);
  return routes_.erase(tag) > 0;
}

std::shared_ptr<const FrameRouter::CompiledRoute> FrameRouter::lookup(
    std::string_view tag) const {
  std::scoped_lock lock(mu_);
  auto it = routes_.find(tag);
  return it == routes_.end() ? nullptr : it->second;
}

std::vector<std::pair<std::string, std::shared_ptr<const FrameRouter::CompiledRoute>>>
FrameRouter::table() const {
  std::scoped_lock lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<const CompiledRoute>>>
      out;
  out.reserve(routes_.size());
  for (const auto& [tag, route] : routes_) out.emplace_back(tag, route);
  return out;
}

// ---------------------------------------------------------- RoutedMediaDaemon

namespace {
daemon::DaemonConfig with_data_channel(daemon::DaemonConfig config) {
  config.open_data_channel = true;
  return config;
}
}  // namespace

RoutedMediaDaemon::RoutedMediaDaemon(daemon::Environment& env,
                                     daemon::DaemonHost& host,
                                     daemon::DaemonConfig config)
    : ServiceDaemon(env, host, with_data_channel(std::move(config))),
      frames_routed_(env.metrics().counter("media.frames_routed")),
      frames_dropped_(env.metrics().counter("media.frames_dropped")),
      bytes_copied_(env.metrics().counter("media.bytes_copied")),
      datagrams_fanned_(env.metrics().counter("media.datagrams_fanned")),
      route_installs_(env.metrics().counter("media.route_installs")) {
  // Route installation is a control-plane command: it flows through the
  // daemon's authorized dispatch (KeyNote, when enforcement is on), which
  // is precisely what lets the per-frame path skip authorization entirely.
  register_command(
      CommandSpec("routeAdd",
                  "install stages and/or a sink for a stream tag "
                  "(`*` = catch-all)")
          .arg(string_arg("stream"))
          .arg(string_arg("dest").optional_arg().describe(
              "sink address host:port"))
          .arg(cmdlang::vector_arg("stages", cmdlang::ArgType::vector_string)
                   .optional_arg()
                   .describe("ordered stage names; replaces the tag's list")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string tag = cmd.get_text("stream");
        bool changed = false;
        if (auto vec = cmd.get_vector("stages")) {
          std::vector<std::string> names;
          for (const auto& elem : vec->elements) {
            if (elem.is_string() || elem.is_word())
              names.push_back(elem.as_text());
          }
          auto status = router_.set_stages(tag, names);
          if (!status.ok())
            return cmdlang::make_error(status.error().code,
                                       status.error().message);
          changed = true;
        }
        if (cmd.has("dest")) {
          auto addr = net::Address::parse(cmd.get_text("dest"));
          if (!addr)
            return cmdlang::make_error(util::Errc::invalid,
                                       "dest must be host:port");
          router_.add_sink(tag, *addr);
          changed = true;
        }
        if (!changed)
          return cmdlang::make_error(util::Errc::invalid,
                                     "routeAdd needs dest= and/or stages=");
        route_installs_.inc();
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("routeRemove",
                  "remove one sink of a stream tag, or the whole route")
          .arg(string_arg("stream"))
          .arg(string_arg("dest").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string tag = cmd.get_text("stream");
        bool removed;
        if (cmd.has("dest")) {
          auto addr = net::Address::parse(cmd.get_text("dest"));
          if (!addr)
            return cmdlang::make_error(util::Errc::invalid,
                                       "dest must be host:port");
          removed = router_.remove_sink(tag, *addr);
        } else {
          removed = router_.remove_route(tag);
        }
        if (!removed)
          return cmdlang::make_error(util::Errc::not_found, "no such route");
        route_installs_.inc();
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("routeTable", "dump the frame-routing table"),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::vector<std::string> rows;
        for (const auto& [tag, route] : router_.table()) {
          std::string row = tag + " stages=";
          for (std::size_t i = 0; i < route->stage_names.size(); ++i)
            row += (i ? "+" : "") + route->stage_names[i];
          row += " sinks=";
          for (std::size_t i = 0; i < route->sinks.size(); ++i)
            row += (i ? "+" : "") + route->sinks[i].to_string();
          rows.push_back(std::move(row));
        }
        reply.arg("routes", cmdlang::string_vector(std::move(rows)));
        reply.arg("stages", cmdlang::string_vector(router_.stage_names()));
        return reply;
      });
}

util::SharedBytes RoutedMediaDaemon::legacy_ingest(
    const util::SharedBytes& payload) {
  // Pre-router daemons took ownership of the wire bytes on arrival.
  bytes_copied_.inc(payload.size());
  return util::SharedBytes(payload.to_bytes());
}

void RoutedMediaDaemon::on_datagram(const net::Datagram& datagram) {
  auto tag = peek_tag(datagram.payload.view());
  if (!tag) {
    frames_dropped_.inc();
    return;
  }
  auto route = router_.lookup(*tag);
  auto catch_all = router_.lookup(kCatchAllTag);
  if (!route && !catch_all) {
    frames_dropped_.inc();
    return;
  }
  frames_routed_.inc();
  local_frames_.fetch_add(1, std::memory_order_relaxed);
  local_bytes_.fetch_add(datagram.payload.size(), std::memory_order_relaxed);

  util::SharedBytes current = datagram.payload;
  if (legacy_copy_mode_.load(std::memory_order_relaxed))
    current = legacy_ingest(current);

  // A tag-specific stage list overrides the catch-all's; a tag route that
  // installs only sinks inherits the daemon's catch-all ingest stages.
  const FrameRouter::CompiledRoute* stage_src =
      route && !route->stages.empty() ? route.get() : catch_all.get();
  if (stage_src) {
    for (const StageFn& stage : stage_src->stages) {
      auto out = stage(*tag, current);
      if (!out) return;  // consumed (aggregated/buffered) — nothing to send
      current = std::move(*out);
    }
  }

  if (current.data() == datagram.payload.data() &&
      current.size() == datagram.payload.size()) {
    // Pure observation: fan the original buffer out, zero copies.
    send_to_sinks(route.get(), catch_all.get(), current);
  } else {
    // Transformed: the stage may have re-tagged the frame; route the new
    // buffer by its own tag.
    emit(current);
  }
}

void RoutedMediaDaemon::emit(const util::SharedBytes& payload) {
  auto tag = peek_tag(payload.view());
  if (!tag) return;
  auto route = router_.lookup(*tag);
  auto catch_all = router_.lookup(kCatchAllTag);
  send_to_sinks(route.get(), catch_all.get(), payload);
}

void RoutedMediaDaemon::send_to_sinks(
    const FrameRouter::CompiledRoute* primary,
    const FrameRouter::CompiledRoute* catch_all,
    const util::SharedBytes& payload) {
  std::vector<net::Address> dests;
  if (primary) dests = primary->sinks;
  if (catch_all) {
    for (const net::Address& sink : catch_all->sinks)
      if (std::find(dests.begin(), dests.end(), sink) == dests.end())
        dests.push_back(sink);
  }
  if (dests.empty()) return;
  datagrams_fanned_.inc(dests.size());
  local_fanout_.fetch_add(dests.size(), std::memory_order_relaxed);
  if (legacy_copy_mode_.load(std::memory_order_relaxed)) {
    // Pre-router fan-out: one payload copy and one network transaction per
    // sink (the E18 baseline).
    for (const net::Address& sink : dests) {
      bytes_copied_.inc(payload.size());
      (void)send_datagram(sink, util::SharedBytes(payload.to_bytes()));
    }
    return;
  }
  // One shared buffer, N views, one network transaction.
  (void)send_datagrams(dests, payload);
}

RoutedMediaDaemon::RouteStats RoutedMediaDaemon::route_stats() const {
  RouteStats s;
  s.frames = local_frames_.load(std::memory_order_relaxed);
  s.bytes = local_bytes_.load(std::memory_order_relaxed);
  s.fanout = local_fanout_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ace::media
