// Real codecs behind the ACE Converter service (paper §4.12): the paper
// converts raw camera video to MPEG before storage; we implement working
// stand-ins with the same role — IMA ADPCM (4:1) for audio and a
// delta+run-length coder for synthetic video frames (see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace ace::media {

// ---------------------------------------------------------------- IMA ADPCM

// Encoder/decoder state carried across frames of one stream.
struct AdpcmState {
  int predictor = 0;
  int step_index = 0;
};

// Encodes 16-bit PCM to 4-bit IMA ADPCM nibbles (two samples per byte).
util::Bytes adpcm_encode(const std::vector<std::int16_t>& pcm,
                         AdpcmState& state);
std::vector<std::int16_t> adpcm_decode(const util::Bytes& data,
                                       std::size_t sample_count,
                                       AdpcmState& state);

// --------------------------------------------------------------- RLE video

// A simple 8-bit grayscale frame.
struct VideoFrame {
  int width = 0;
  int height = 0;
  util::Bytes pixels;  // width*height bytes

  bool valid() const {
    return width > 0 && height > 0 &&
           pixels.size() == static_cast<std::size_t>(width) * height;
  }
};

// Intra/inter coder: the first frame is RLE-coded directly; subsequent
// frames are delta-coded against `reference` then RLE-coded (zero runs
// compress static content, the dominant case for room cameras).
util::Bytes rle_video_encode(const VideoFrame& frame,
                             const VideoFrame* reference);
std::optional<VideoFrame> rle_video_decode(const util::Bytes& data,
                                           const VideoFrame* reference);

// Synthetic camera content for tests/benches: a moving bright square over a
// static background — mimics a conference-room feed.
VideoFrame synthetic_frame(int width, int height, int t);

}  // namespace ace::media
