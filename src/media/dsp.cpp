#include "media/dsp.hpp"

#include <algorithm>
#include <cmath>

#include "media/audio.hpp"

namespace ace::media {

EchoCanceller::EchoCanceller(std::size_t taps, double mu)
    : taps_(taps), mu_(mu), weights_(taps, 0.0), history_(taps, 0.0) {}

void EchoCanceller::reset() {
  std::fill(weights_.begin(), weights_.end(), 0.0);
  std::fill(history_.begin(), history_.end(), 0.0);
  head_ = 0;
  window_energy_ = 0.0;
  in_energy_ = 0.0;
  out_energy_ = 0.0;
}

std::vector<std::int16_t> EchoCanceller::process(
    const std::vector<std::int16_t>& reference,
    const std::vector<std::int16_t>& input) {
  std::size_t n = std::min(reference.size(), input.size());
  std::vector<std::int16_t> out(input.size());
  for (std::size_t i = 0; i < n; ++i) {
    // Step the circular delay line back one slot; head_ now holds the
    // newest reference sample, logical tap k sits at (head_ + k) % taps_.
    head_ = (head_ + taps_ - 1) % taps_;
    const double entering = static_cast<double>(reference[i]);
    const double leaving = history_[head_];
    // The window energy is maintained incrementally. int16 samples square
    // to integers < 2^30 and the window sum stays < 2^53, so every update
    // is exact in double — this never drifts from the recomputed sum.
    window_energy_ += entering * entering - leaving * leaving;
    history_[head_] = entering;

    // The dot product visits taps newest-to-oldest in two linear segments,
    // each spread over four accumulators: a single running sum is a serial
    // chain of dependent adds (~4 cycles each), which is what bounds the
    // naive loop — four independent chains let the FPU pipeline them.
    const double* h = history_.data();
    const double* w = weights_.data();
    const std::size_t n1 = taps_ - head_;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t k = 0;
    for (; k + 4 <= n1; k += 4) {
      a0 += w[k] * h[head_ + k];
      a1 += w[k + 1] * h[head_ + k + 1];
      a2 += w[k + 2] * h[head_ + k + 2];
      a3 += w[k + 3] * h[head_ + k + 3];
    }
    for (; k < n1; ++k) a0 += w[k] * h[head_ + k];
    for (; k + 4 <= taps_; k += 4) {
      a0 += w[k] * h[k - n1];
      a1 += w[k + 1] * h[k + 1 - n1];
      a2 += w[k + 2] * h[k + 2 - n1];
      a3 += w[k + 3] * h[k + 3 - n1];
    }
    for (; k < taps_; ++k) a0 += w[k] * h[k - n1];
    double estimate = (a0 + a1) + (a2 + a3);
    double energy = window_energy_ + 1e-6;
    double desired = static_cast<double>(input[i]);
    double err = desired - estimate;

    // NLMS update.
    double scale = mu_ * err / energy;
    for (std::size_t s = head_; s < taps_; ++s)
      weights_[s - head_] += scale * history_[s];
    for (std::size_t s = 0; s < head_; ++s)
      weights_[taps_ - head_ + s] += scale * history_[s];

    in_energy_ += desired * desired;
    out_energy_ += err * err;
    out[i] = static_cast<std::int16_t>(std::clamp(err, -32767.0, 32767.0));
  }
  for (std::size_t i = n; i < input.size(); ++i) out[i] = input[i];
  return out;
}

double EchoCanceller::erle_db() const {
  if (out_energy_ < 1e-9 || in_energy_ < 1e-9) return 0.0;
  return 10.0 * std::log10(in_energy_ / out_energy_);
}

double goertzel_power(const std::vector<std::int16_t>& samples,
                      std::size_t offset, std::size_t length,
                      double frequency_hz, int sample_rate) {
  if (offset + length > samples.size()) length = samples.size() - offset;
  if (length == 0) return 0.0;
  double w = 2.0 * 3.14159265358979323846 * frequency_hz / sample_rate;
  double coeff = 2.0 * std::cos(w);
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (std::size_t i = 0; i < length; ++i) {
    s0 = coeff * s1 - s2 + static_cast<double>(samples[offset + i]);
    s2 = s1;
    s1 = s0;
  }
  return s1 * s1 + s2 * s2 - coeff * s1 * s2;
}

namespace {

constexpr double kRows[4] = {697.0, 770.0, 852.0, 941.0};
constexpr double kCols[4] = {1209.0, 1336.0, 1477.0, 1633.0};

void append_symbol(std::vector<std::int16_t>& out, int symbol,
                   double amplitude) {
  double row = kRows[symbol >> 2];
  double col = kCols[symbol & 3];
  std::size_t base = out.size();
  out.resize(base + kDtmfSymbolSamples + kDtmfGapSamples, 0);
  const double wr = 2.0 * 3.14159265358979323846 * row / kSampleRate;
  const double wc = 2.0 * 3.14159265358979323846 * col / kSampleRate;
  for (std::size_t i = 0; i < kDtmfSymbolSamples; ++i) {
    double v = amplitude * 0.5 * (std::sin(wr * i) + std::sin(wc * i));
    out[base + i] =
        static_cast<std::int16_t>(std::clamp(v, -32767.0, 32767.0));
  }
}

// Detects the symbol in one window, or -1 when no clean tone pair is found.
int detect_symbol(const std::vector<std::int16_t>& audio, std::size_t offset) {
  double row_power[4], col_power[4];
  for (int i = 0; i < 4; ++i) {
    row_power[i] =
        goertzel_power(audio, offset, kDtmfSymbolSamples, kRows[i], kSampleRate);
    col_power[i] =
        goertzel_power(audio, offset, kDtmfSymbolSamples, kCols[i], kSampleRate);
  }
  int best_row = 0, best_col = 0;
  for (int i = 1; i < 4; ++i) {
    if (row_power[i] > row_power[best_row]) best_row = i;
    if (col_power[i] > col_power[best_col]) best_col = i;
  }
  // Require the winning tones to dominate (twist/SNR guard).
  double row_rest = 0.0, col_rest = 0.0;
  for (int i = 0; i < 4; ++i) {
    if (i != best_row) row_rest = std::max(row_rest, row_power[i]);
    if (i != best_col) col_rest = std::max(col_rest, col_power[i]);
  }
  if (row_power[best_row] < 4.0 * row_rest + 1e3) return -1;
  if (col_power[best_col] < 4.0 * col_rest + 1e3) return -1;
  return best_row << 2 | best_col;
}

}  // namespace

std::vector<std::int16_t> dtmf_encode(const std::string& text,
                                      double amplitude) {
  std::vector<std::int16_t> out;
  out.reserve(text.size() * 2 * (kDtmfSymbolSamples + kDtmfGapSamples));
  for (unsigned char c : text) {
    append_symbol(out, c >> 4, amplitude);
    append_symbol(out, c & 0x0f, amplitude);
  }
  return out;
}

std::optional<std::string> dtmf_decode(
    const std::vector<std::int16_t>& audio) {
  const std::size_t stride = kDtmfSymbolSamples + kDtmfGapSamples;
  std::string text;
  int pending_hi = -1;
  for (std::size_t offset = 0; offset + kDtmfSymbolSamples <= audio.size();
       offset += stride) {
    int symbol = detect_symbol(audio, offset);
    if (symbol < 0) return std::nullopt;
    if (pending_hi < 0) {
      pending_hi = symbol;
    } else {
      text.push_back(static_cast<char>(pending_hi << 4 | symbol));
      pending_hi = -1;
    }
  }
  if (pending_hi >= 0) return std::nullopt;  // odd symbol count
  return text;
}

}  // namespace ace::media
