// Centralized-placement baseline (paper §8.1).
//
// "Unlike ACE, Ninja groups these bases together and all services execute
//  on these clusters and communicate to devices via the Internet or local
//  area network. ACE, on the other hand, attempts to distribute its
//  computing power ... This not only reduces network traffic to local
//  devices but also makes response times to these local services much more
//  efficient."
//
// PlacementExperiment builds the same room (client + PTZ camera) under two
// placements — the camera's controlling daemon on a host in the room
// (ACE-style) or on a remote cluster host behind a configurable WAN latency
// (Ninja-base-style) — and measures device-command round-trip time.
// Experiment E11 sweeps the cluster latency to locate the response-time gap.
#pragma once

#include <memory>

#include "daemon/devices.hpp"
#include "daemon/host.hpp"
#include "services/asd.hpp"

namespace ace::baselines {

enum class Placement { distributed, centralized };

class PlacementExperiment {
 public:
  // `cluster_latency` is the one-way latency between the room and the
  // central cluster; in-room links are `room_latency`.
  PlacementExperiment(Placement placement,
                      std::chrono::microseconds cluster_latency,
                      std::chrono::microseconds room_latency =
                          std::chrono::microseconds(50));

  // Issues one ptzMove command from the in-room client and returns the
  // observed round-trip time.
  util::Result<std::chrono::microseconds> device_command_rtt();

  daemon::Environment& env() { return *env_; }

 private:
  std::unique_ptr<daemon::Environment> env_;
  std::unique_ptr<daemon::DaemonHost> room_host_;
  std::unique_ptr<daemon::DaemonHost> cluster_host_;
  daemon::PtzCameraDaemon* camera_ = nullptr;
  std::unique_ptr<daemon::AceClient> client_;
};

}  // namespace ace::baselines
