// Jini-style discovery baseline (paper §8.4).
//
// Jini clients find the lookup service by *multicast*: discovery request
// packets go to every reachable host until a lookup service responds. ACE
// instead fixes the ASD at a well-known socket ("the location of which is
// known to all ACE daemons", §2.4). Experiment E11 compares the two: number
// of discovery messages and time-to-first-lookup as the environment grows.
//
// Our simulated network has no true multicast, so the discovery client
// emulates it the way multicast behaves on a LAN segment: one probe
// datagram lands on the discovery port of every host. The lookup service
// itself then supports Jini-style join/lookup with leases, mirroring the
// feature set the paper credits Jini with.
#pragma once

#include "daemon/daemon.hpp"

namespace ace::baselines {

inline constexpr std::uint16_t kJiniDiscoveryPort = 4160;

// The lookup service: answers discovery probes on its data channel and
// serves join/lookup commands.
class JiniLookupDaemon : public daemon::ServiceDaemon {
 public:
  JiniLookupDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                   daemon::DaemonConfig config);

  // Commands:
  //   jiniJoin name= host= port= attributes=?;    -> ok lease=
  //   jiniLookup attributes=<glob>;               -> ok services={...}

 protected:
  void on_datagram(const net::Datagram& datagram) override;

 private:
  struct Entry {
    std::string name;
    net::Address address;
    std::string attributes;
  };
  std::mutex mu_;
  std::vector<Entry> entries_;
};

struct JiniDiscoveryResult {
  net::Address lookup_service;   // command address of the responder
  int probes_sent = 0;
  int responses_received = 0;
  std::chrono::microseconds elapsed{0};
};

// Emulated multicast discovery: probes the discovery port of every host in
// `segment_hosts` and waits for the first lookup-service response.
util::Result<JiniDiscoveryResult> jini_discover(
    daemon::Environment& env, net::Host& from,
    const std::vector<std::string>& segment_hosts,
    std::chrono::milliseconds timeout);

}  // namespace ace::baselines
