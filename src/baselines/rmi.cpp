#include "baselines/rmi.hpp"

#include <functional>

namespace ace::baselines {

namespace {

// Java Object Serialization stream constants (subset).
constexpr std::uint16_t kStreamMagic = 0xaced;
constexpr std::uint16_t kStreamVersion = 5;
constexpr std::uint8_t kTcObject = 0x73;
constexpr std::uint8_t kTcClassDesc = 0x72;
constexpr std::uint8_t kTcReference = 0x71;
constexpr std::uint8_t kTcString = 0x74;
constexpr std::uint8_t kTcEndBlockData = 0x78;

constexpr std::uint64_t kFakeSerialVersionUid = 0x42acef00dULL;

const char* type_descriptor(const RmiValue& v) {
  switch (v.v.index()) {
    case 0: return "J";                    // long
    case 1: return "D";                    // double
    case 2: return "Ljava/lang/String;";
    default: return "Ljava/util/ArrayList;";
  }
}

const char* class_name_of(const RmiValue& v) {
  switch (v.v.index()) {
    case 0: return "java.lang.Long";
    case 1: return "java.lang.Double";
    case 2: return "java.lang.String";
    default: return "java.util.ArrayList";
  }
}

}  // namespace

void RmiMarshaller::write_class_descriptor(
    util::ByteWriter& w, const std::string& class_name,
    const std::vector<std::string>& field_types) {
  if (cache_descriptors_) {
    auto it = sent_descriptors_.find(class_name);
    if (it != sent_descriptors_.end()) {
      w.u8(kTcReference);
      w.u32(it->second);
      return;
    }
    sent_descriptors_[class_name] = next_handle_++;
  }
  w.u8(kTcClassDesc);
  w.str(class_name);
  w.u64(kFakeSerialVersionUid);
  w.u8(0x02);  // SC_SERIALIZABLE flags
  w.u16(static_cast<std::uint16_t>(field_types.size()));
  int i = 0;
  for (const std::string& t : field_types) {
    w.u8(static_cast<std::uint8_t>(t[0]));
    w.str("field" + std::to_string(i++));
    if (t.size() > 1) {
      w.u8(kTcString);
      w.str(t);  // object field type descriptor string
    }
  }
  w.u8(kTcEndBlockData);
}

void RmiMarshaller::write_value(util::ByteWriter& w,
                                const std::string& field_name,
                                const RmiValue& value) {
  w.u8(kTcObject);
  write_class_descriptor(w, class_name_of(value), {type_descriptor(value)});
  w.str(field_name);
  switch (value.v.index()) {
    case 0:
      w.u8('J');
      w.i64(std::get<std::int64_t>(value.v));
      break;
    case 1:
      w.u8('D');
      w.f64(std::get<double>(value.v));
      break;
    case 2:
      w.u8('S');
      w.u8(kTcString);
      w.str(std::get<std::string>(value.v));
      break;
    default: {
      w.u8('L');
      const auto& list = std::get<RmiValueList>(value.v);
      w.u32(static_cast<std::uint32_t>(list.size()));
      for (const RmiValue& elem : list) write_value(w, "element", elem);
      break;
    }
  }
}

std::optional<RmiValue> RmiMarshaller::read_value(util::ByteReader& r,
                                                  std::string* field_name) {
  auto marker = r.u8();
  if (!marker || *marker != kTcObject) return std::nullopt;
  auto desc_marker = r.u8();
  if (!desc_marker) return std::nullopt;
  if (*desc_marker == kTcReference) {
    if (!r.u32()) return std::nullopt;
  } else if (*desc_marker == kTcClassDesc) {
    auto class_name = r.str();
    auto uid = r.u64();
    auto flags = r.u8();
    auto field_count = r.u16();
    if (!class_name || !uid || !flags || !field_count) return std::nullopt;
    for (std::uint16_t i = 0; i < *field_count; ++i) {
      auto type_char = r.u8();
      auto name = r.str();
      if (!type_char || !name) return std::nullopt;
      if (*type_char == 'L') {
        auto str_marker = r.u8();
        auto type_name = r.str();
        if (!str_marker || !type_name) return std::nullopt;
      }
    }
    if (!r.u8()) return std::nullopt;  // end block data
  } else {
    return std::nullopt;
  }
  auto name = r.str();
  if (!name) return std::nullopt;
  if (field_name) *field_name = *name;
  auto kind = r.u8();
  if (!kind) return std::nullopt;
  switch (*kind) {
    case 'J': {
      auto v = r.i64();
      if (!v) return std::nullopt;
      return RmiValue(*v);
    }
    case 'D': {
      auto v = r.f64();
      if (!v) return std::nullopt;
      return RmiValue(*v);
    }
    case 'S': {
      if (!r.u8()) return std::nullopt;  // TC_STRING
      auto v = r.str();
      if (!v) return std::nullopt;
      return RmiValue(std::move(*v));
    }
    case 'L': {
      auto count = r.u32();
      if (!count) return std::nullopt;
      RmiValueList list;
      list.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto elem = read_value(r, nullptr);
        if (!elem) return std::nullopt;
        list.push_back(std::move(*elem));
      }
      return RmiValue(std::move(list));
    }
    default:
      return std::nullopt;
  }
}

util::Bytes RmiMarshaller::marshal(const RmiInvocation& invocation) {
  util::ByteWriter w;
  w.u16(kStreamMagic);
  w.u16(kStreamVersion);
  // The remote call header: object id + interface hash + method string.
  w.u8(kTcObject);
  write_class_descriptor(w, invocation.interface_name,
                         {"Ljava/rmi/server/RemoteCall;"});
  w.u64(kFakeSerialVersionUid);  // operation hash
  w.u8(kTcString);
  w.str(invocation.method_name);
  w.u16(static_cast<std::uint16_t>(invocation.arguments.size()));
  for (const auto& [name, value] : invocation.arguments)
    write_value(w, name, value);
  return w.take();
}

util::Result<RmiInvocation> RmiMarshaller::unmarshal(const util::Bytes& data) {
  util::ByteReader r(data);
  auto magic = r.u16();
  auto version = r.u16();
  if (!magic || *magic != kStreamMagic || !version)
    return util::Error{util::Errc::parse_error, "bad stream magic"};
  auto marker = r.u8();
  if (!marker || *marker != kTcObject)
    return util::Error{util::Errc::parse_error, "expected call object"};
  RmiInvocation inv;
  auto desc_marker = r.u8();
  if (!desc_marker)
    return util::Error{util::Errc::parse_error, "truncated descriptor"};
  if (*desc_marker == kTcReference) {
    auto handle = r.u32();
    if (!handle)
      return util::Error{util::Errc::parse_error, "bad reference"};
    auto it = seen_descriptors_.find(*handle);
    if (it == seen_descriptors_.end())
      return util::Error{util::Errc::parse_error, "unknown handle"};
    inv.interface_name = it->second;
  } else if (*desc_marker == kTcClassDesc) {
    auto class_name = r.str();
    if (!class_name)
      return util::Error{util::Errc::parse_error, "bad class name"};
    inv.interface_name = *class_name;
    if (cache_descriptors_)
      seen_descriptors_[next_handle_++] = inv.interface_name;
    r.u64();  // uid
    r.u8();   // flags
    auto field_count = r.u16();
    if (!field_count)
      return util::Error{util::Errc::parse_error, "bad descriptor"};
    for (std::uint16_t i = 0; i < *field_count; ++i) {
      auto type_char = r.u8();
      auto name = r.str();
      if (!type_char || !name)
        return util::Error{util::Errc::parse_error, "bad field"};
      if (*type_char == 'L') {
        r.u8();
        r.str();
      }
    }
    r.u8();  // end block data
  } else {
    return util::Error{util::Errc::parse_error, "unexpected marker"};
  }
  r.u64();  // operation hash
  auto str_marker = r.u8();
  auto method = r.str();
  if (!str_marker || !method)
    return util::Error{util::Errc::parse_error, "bad method"};
  inv.method_name = *method;
  auto arg_count = r.u16();
  if (!arg_count)
    return util::Error{util::Errc::parse_error, "bad arg count"};
  for (std::uint16_t i = 0; i < *arg_count; ++i) {
    std::string field_name;
    auto value = read_value(r, &field_name);
    if (!value)
      return util::Error{util::Errc::parse_error, "bad argument"};
    inv.arguments.emplace_back(std::move(field_name), std::move(*value));
  }
  return inv;
}

void RmiDispatcher::register_method(const std::string& interface_name,
                                    const std::string& method_name,
                                    Handler handler) {
  handlers_[interface_name + "." + method_name] = std::move(handler);
}

util::Result<RmiValue> RmiDispatcher::dispatch(
    const RmiInvocation& invocation) const {
  auto it = handlers_.find(invocation.interface_name + "." +
                           invocation.method_name);
  if (it == handlers_.end())
    return util::Error{util::Errc::not_found, "no such remote method"};
  return it->second(invocation);
}

}  // namespace ace::baselines
