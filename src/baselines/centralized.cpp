#include "baselines/centralized.hpp"

namespace ace::baselines {

using cmdlang::CmdLine;

PlacementExperiment::PlacementExperiment(
    Placement placement, std::chrono::microseconds cluster_latency,
    std::chrono::microseconds room_latency) {
  env_ = std::make_unique<daemon::Environment>(7);
  room_host_ = std::make_unique<daemon::DaemonHost>(*env_, "room-host");
  cluster_host_ = std::make_unique<daemon::DaemonHost>(*env_, "cluster");

  net::LinkPolicy wan;
  wan.latency = cluster_latency;
  env_->network().set_link("room-host", "cluster", wan);
  net::LinkPolicy lan;
  lan.latency = room_latency;
  env_->network().set_link("room-host", "access-point", lan);

  daemon::DaemonHost* camera_home =
      placement == Placement::distributed ? room_host_.get()
                                          : cluster_host_.get();

  daemon::DaemonConfig config;
  config.name = "ptz-camera";
  config.room = "hawk";
  config.register_with_asd = false;  // direct-addressed micro-experiment
  config.register_with_room_db = false;
  config.log_to_net_logger = false;
  camera_ = &camera_home->add_daemon<daemon::PtzCameraDaemon>(
      std::move(config), daemon::vcc4_spec());
  (void)camera_->start();

  // The commanding client sits in the room (e.g. the podium access point).
  auto& ap = env_->network().add_host("access-point");
  if (placement == Placement::centralized) {
    net::LinkPolicy ap_wan;
    ap_wan.latency = cluster_latency;
    env_->network().set_link("access-point", "cluster", ap_wan);
  }
  client_ = std::make_unique<daemon::AceClient>(
      *env_, ap, env_->issue_identity("user/operator"));

  CmdLine on("deviceOn");
  (void)client_->call(camera_->address(), on);
}

util::Result<std::chrono::microseconds>
PlacementExperiment::device_command_rtt() {
  CmdLine move("ptzMove");
  move.arg("pan", 12.5);
  move.arg("tilt", 4.0);
  move.arg("zoom", 2.0);
  auto start = std::chrono::steady_clock::now();
  auto reply = client_->call(camera_->address(), move);
  auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  if (!reply.ok()) return reply.error();
  if (cmdlang::is_error(reply.value()))
    return cmdlang::reply_error(reply.value());
  return elapsed;
}

}  // namespace ace::baselines
