// RMI-style remote invocation baseline.
//
// The paper claims (§2.2, §8.1) that the ACE command language "allows for a
// very lightweight form of communication ... much more lightweight than
// utilizing something like RMI", whose "bytecode transmissions ... may be
// large". To *measure* that claim (experiment E1) we reproduce the shape of
// Java RMI marshalling: a serialized invocation carries full class
// descriptors (class name, serialVersionUID, per-field type descriptors and
// names) ahead of the values, as the Java Object Serialization stream does
// on first transmission; an optional descriptor cache models an established
// connection where descriptors have already been sent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ace::baselines {

struct RmiValue;
using RmiValueList = std::vector<RmiValue>;

struct RmiValue {
  std::variant<std::int64_t, double, std::string, RmiValueList> v;

  RmiValue() : v(std::int64_t{0}) {}
  RmiValue(std::int64_t x) : v(x) {}                  // NOLINT(implicit)
  RmiValue(double x) : v(x) {}                        // NOLINT(implicit)
  RmiValue(std::string x) : v(std::move(x)) {}        // NOLINT(implicit)
  RmiValue(const char* x) : v(std::string(x)) {}      // NOLINT(implicit)
  RmiValue(RmiValueList x) : v(std::move(x)) {}       // NOLINT(implicit)

  friend bool operator==(const RmiValue&, const RmiValue&) = default;
};

// A remote method invocation: interface + method + named arguments (the
// argument objects carry their own class descriptors on the wire).
struct RmiInvocation {
  std::string interface_name;  // e.g. "edu.ku.ittc.ace.PTZCamera"
  std::string method_name;
  std::vector<std::pair<std::string, RmiValue>> arguments;

  friend bool operator==(const RmiInvocation&, const RmiInvocation&) = default;
};

class RmiMarshaller {
 public:
  // When `cache_descriptors` is true, class descriptors already sent on
  // this marshaller are replaced by back-references (Java's TC_REFERENCE),
  // modelling a warm connection.
  explicit RmiMarshaller(bool cache_descriptors = false)
      : cache_descriptors_(cache_descriptors) {}

  util::Bytes marshal(const RmiInvocation& invocation);
  util::Result<RmiInvocation> unmarshal(const util::Bytes& data);

  void reset_cache() { sent_descriptors_.clear(); seen_descriptors_.clear(); }

 private:
  void write_value(util::ByteWriter& w, const std::string& field_name,
                   const RmiValue& value);
  std::optional<RmiValue> read_value(util::ByteReader& r,
                                     std::string* field_name);
  void write_class_descriptor(util::ByteWriter& w,
                              const std::string& class_name,
                              const std::vector<std::string>& field_types);

  bool cache_descriptors_;
  std::map<std::string, std::uint32_t> sent_descriptors_;
  std::map<std::uint32_t, std::string> seen_descriptors_;
  std::uint32_t next_handle_ = 0x7e0000;  // Java's baseWireHandle
};

// Remote dispatch endpoint: registry of interface.method -> handler.
class RmiDispatcher {
 public:
  using Handler = std::function<RmiValue(const RmiInvocation&)>;

  void register_method(const std::string& interface_name,
                       const std::string& method_name, Handler handler);
  util::Result<RmiValue> dispatch(const RmiInvocation& invocation) const;

 private:
  std::map<std::string, Handler> handlers_;
};

}  // namespace ace::baselines
