#include "baselines/jini.hpp"

#include "util/strings.hpp"

namespace ace::baselines {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig jini_defaults(daemon::DaemonConfig config) {
  config.open_data_channel = true;
  config.port = kJiniDiscoveryPort;
  config.register_with_asd = false;  // a rival directory does not use ours
  config.register_with_room_db = false;
  config.log_to_net_logger = false;
  if (config.service_class.empty())
    config.service_class = "Baseline/JiniLookup";
  return config;
}
}  // namespace

JiniLookupDaemon::JiniLookupDaemon(daemon::Environment& env,
                                   daemon::DaemonHost& host,
                                   daemon::DaemonConfig config)
    : ServiceDaemon(env, host, jini_defaults(std::move(config))) {
  register_command(
      CommandSpec("jiniJoin", "register a service with the lookup service")
          .arg(word_arg("name"))
          .arg(string_arg("host"))
          .arg(integer_arg("port").range(1, 65535))
          .arg(string_arg("attributes").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        Entry e;
        e.name = cmd.get_text("name");
        e.address = net::Address{
            cmd.get_text("host"),
            static_cast<std::uint16_t>(cmd.get_integer("port"))};
        e.attributes = cmd.get_text("attributes");
        std::scoped_lock lock(mu_);
        entries_.push_back(std::move(e));
        CmdLine reply = cmdlang::make_ok();
        reply.arg("lease", static_cast<std::int64_t>(30000));
        return reply;
      });

  register_command(
      CommandSpec("jiniLookup", "find services by attribute glob")
          .arg(string_arg("attributes")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string glob = cmd.get_text("attributes");
        std::vector<std::string> out;
        {
          std::scoped_lock lock(mu_);
          for (const Entry& e : entries_)
            if (util::glob_match(glob, e.attributes))
              out.push_back(e.name + "|" + e.address.to_string());
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("services", cmdlang::string_vector(std::move(out)));
        return reply;
      });
}

void JiniLookupDaemon::on_datagram(const net::Datagram& datagram) {
  // Discovery protocol: any datagram starting with "jini-discovery" gets a
  // unicast response announcing our command address.
  std::string text = util::to_string(datagram.payload);
  if (!util::starts_with(text, "jini-discovery")) return;
  std::string response = "jini-announce " + address().to_string();
  (void)send_datagram(datagram.from, util::to_bytes(response));
}

util::Result<JiniDiscoveryResult> jini_discover(
    daemon::Environment& env, net::Host& from,
    const std::vector<std::string>& segment_hosts,
    std::chrono::milliseconds timeout) {
  auto socket = from.open_datagram();
  if (!socket.ok()) return socket.error();
  auto start = std::chrono::steady_clock::now();

  JiniDiscoveryResult result;
  // Multicast emulation: the probe lands on every host on the segment.
  for (const std::string& host : segment_hosts) {
    (void)(*socket)->send_to(net::Address{host, kJiniDiscoveryPort},
                             util::to_bytes("jini-discovery request"));
    result.probes_sent++;
  }

  auto deadline = start + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    auto dg = (*socket)->recv(std::chrono::duration_cast<net::Duration>(
        deadline - std::chrono::steady_clock::now()));
    if (!dg) break;
    std::string text = util::to_string(dg->payload);
    if (!util::starts_with(text, "jini-announce ")) continue;
    auto addr = net::Address::parse(text.substr(14));
    if (!addr) continue;
    result.responses_received++;
    result.lookup_service = *addr;
    result.elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    (void)env;
    return result;
  }
  return util::Error{util::Errc::timeout, "no lookup service responded"};
}

}  // namespace ace::baselines
