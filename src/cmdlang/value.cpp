#include "cmdlang/value.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace ace::cmdlang {

const char* value_type_name(ValueType t) {
  switch (t) {
    case ValueType::integer: return "integer";
    case ValueType::real: return "float";
    case ValueType::word: return "word";
    case ValueType::string: return "string";
    case ValueType::vector: return "vector";
    case ValueType::array: return "array";
  }
  return "?";
}

bool operator==(const Vector& a, const Vector& b) {
  return a.element_type == b.element_type && a.elements == b.elements;
}

bool operator==(const Array& a, const Array& b) {
  return a.vectors == b.vectors;
}

bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

bool operator==(const Argument& a, const Argument& b) {
  return a.name == b.name && a.value == b.value;
}

bool operator==(const CmdLine& a, const CmdLine& b) {
  return a.name_ == b.name_ && a.args_ == b.args_;
}

ValueType Value::type() const {
  if (is_integer()) return ValueType::integer;
  if (is_real()) return ValueType::real;
  if (is_word()) return ValueType::word;
  if (is_string()) return ValueType::string;
  if (is_vector()) return ValueType::vector;
  return ValueType::array;
}

double Value::as_real() const {
  if (is_integer()) return static_cast<double>(as_integer());
  return std::get<double>(v_);
}

const std::string& Value::as_text() const {
  if (is_word()) return as_word();
  return as_string();
}

namespace {

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_valid_word(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!is_word_char(c)) return false;
  // A bare word must not look like a number, or the parser would read it
  // back as one.
  if (std::isdigit(static_cast<unsigned char>(s[0]))) return false;
  return true;
}

std::string quote_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string format_real(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  // Guarantee it reads back as FLOAT, not INTEGER.
  if (s.find_first_of(".eE") == std::string::npos &&
      s.find_first_of("nN") == std::string::npos) {
    s += ".0";
  }
  return s;
}

}  // namespace

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::integer:
      return std::to_string(as_integer());
    case ValueType::real:
      return format_real(std::get<double>(v_));
    case ValueType::word: {
      // Words that violate the WORD production (e.g. "machine-room") are
      // emitted quoted; they round-trip as strings, which every word-typed
      // argument accepts.
      const std::string& w = as_word();
      return is_valid_word(w) ? w : quote_string(w);
    }
    case ValueType::string:
      // Always quoted so the value round-trips as a STRING. (The paper's
      // grammar also admits bare words as strings on input.)
      return quote_string(as_string());
    case ValueType::vector: {
      std::string out = "{";
      const Vector& vec = as_vector();
      for (std::size_t i = 0; i < vec.elements.size(); ++i) {
        if (i) out += ",";
        out += vec.elements[i].to_string();
      }
      out += "}";
      return out;
    }
    case ValueType::array: {
      std::string out = "{";
      const Array& arr = as_array();
      for (std::size_t i = 0; i < arr.vectors.size(); ++i) {
        if (i) out += ",";
        out += Value(arr.vectors[i]).to_string();
      }
      out += "}";
      return out;
    }
  }
  return {};
}

const Value* CmdLine::find(const std::string& name) const {
  for (const auto& a : args_)
    if (a.name == name) return &a.value;
  return nullptr;
}

std::int64_t CmdLine::get_integer(const std::string& name,
                                  std::int64_t fallback) const {
  const Value* v = find(name);
  if (!v || !v->is_integer()) return fallback;
  return v->as_integer();
}

double CmdLine::get_real(const std::string& name, double fallback) const {
  const Value* v = find(name);
  if (!v || (!v->is_real() && !v->is_integer())) return fallback;
  return v->as_real();
}

std::string CmdLine::get_text(const std::string& name,
                              const std::string& fallback) const {
  const Value* v = find(name);
  if (!v || (!v->is_word() && !v->is_string())) return fallback;
  return v->as_text();
}

std::optional<Vector> CmdLine::get_vector(const std::string& name) const {
  const Value* v = find(name);
  if (!v || !v->is_vector()) return std::nullopt;
  return v->as_vector();
}

std::optional<Array> CmdLine::get_array(const std::string& name) const {
  const Value* v = find(name);
  if (!v || !v->is_array()) return std::nullopt;
  return v->as_array();
}

std::string CmdLine::to_string() const {
  std::string out = name_;
  for (const auto& a : args_) {
    out += " ";
    out += a.name;
    out += "=";
    out += a.value.to_string();
  }
  out += ";";
  return out;
}

CmdLine make_ok() { return CmdLine("ok"); }

CmdLine make_error(util::Errc code, const std::string& message) {
  CmdLine c("error");
  c.arg("code", Word{util::errc_name(code)});
  c.arg("message", message);
  return c;
}

bool is_ok(const CmdLine& reply) { return reply.name() == "ok"; }
bool is_error(const CmdLine& reply) { return reply.name() == "error"; }

util::Error reply_error(const CmdLine& reply) {
  if (!is_error(reply))
    return util::Error{util::Errc::ok, ""};
  std::string code = reply.get_text("code");
  util::Errc errc = util::Errc::io_error;
  for (int i = 0; i <= static_cast<int>(util::Errc::io_error); ++i) {
    if (code == util::errc_name(static_cast<util::Errc>(i))) {
      errc = static_cast<util::Errc>(i);
      break;
    }
  }
  return util::Error{errc, reply.get_text("message")};
}

Vector int_vector(std::vector<std::int64_t> values) {
  Vector v;
  v.element_type = ValueType::integer;
  for (auto x : values) v.elements.emplace_back(x);
  return v;
}

Vector real_vector(std::vector<double> values) {
  Vector v;
  v.element_type = ValueType::real;
  for (auto x : values) v.elements.emplace_back(x);
  return v;
}

Vector string_vector(std::vector<std::string> values) {
  Vector v;
  v.element_type = ValueType::string;
  for (auto& x : values) v.elements.emplace_back(std::move(x));
  return v;
}

Vector word_vector(std::vector<std::string> values) {
  Vector v;
  v.element_type = ValueType::word;
  for (auto& x : values) v.elements.emplace_back(Word{std::move(x)});
  return v;
}

}  // namespace ace::cmdlang
