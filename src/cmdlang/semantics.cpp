#include "cmdlang/semantics.hpp"

#include <algorithm>

namespace ace::cmdlang {

const char* arg_type_name(ArgType t) {
  switch (t) {
    case ArgType::integer: return "integer";
    case ArgType::real: return "float";
    case ArgType::word: return "word";
    case ArgType::string: return "string";
    case ArgType::text: return "text";
    case ArgType::vector_integer: return "vector<integer>";
    case ArgType::vector_real: return "vector<float>";
    case ArgType::vector_word: return "vector<word>";
    case ArgType::vector_string: return "vector<string>";
    case ArgType::array: return "array";
    case ArgType::any: return "any";
  }
  return "?";
}

ArgSpec integer_arg(std::string name) {
  ArgSpec s; s.name = std::move(name); s.type = ArgType::integer; return s;
}
ArgSpec real_arg(std::string name) {
  ArgSpec s; s.name = std::move(name); s.type = ArgType::real; return s;
}
ArgSpec word_arg(std::string name) {
  ArgSpec s; s.name = std::move(name); s.type = ArgType::word; return s;
}
ArgSpec string_arg(std::string name) {
  ArgSpec s; s.name = std::move(name); s.type = ArgType::string; return s;
}
ArgSpec text_arg(std::string name) {
  ArgSpec s; s.name = std::move(name); s.type = ArgType::text; return s;
}
ArgSpec vector_arg(std::string name, ArgType type) {
  ArgSpec s; s.name = std::move(name); s.type = type; return s;
}
ArgSpec array_arg(std::string name) {
  ArgSpec s; s.name = std::move(name); s.type = ArgType::array; return s;
}
ArgSpec any_arg(std::string name) {
  ArgSpec s; s.name = std::move(name); s.type = ArgType::any; return s;
}

void SemanticRegistry::add(CommandSpec spec) {
  specs_[spec.name] = std::move(spec);
}

const CommandSpec* SemanticRegistry::find(const std::string& name) const {
  auto it = specs_.find(name);
  return it == specs_.end() ? nullptr : &it->second;
}

std::vector<std::string> SemanticRegistry::command_names() const {
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) names.push_back(name);
  return names;
}

namespace {

bool type_matches(ArgType expected, const Value& value) {
  switch (expected) {
    case ArgType::integer:
      return value.is_integer();
    case ArgType::real:
      return value.is_real() || value.is_integer();
    case ArgType::word:
      // Accepts quoted strings as well: identifiers that are not lexically
      // valid WORDs (hyphenated names) arrive quoted.
      return value.is_word() || value.is_string();
    case ArgType::string:
    case ArgType::text:
      return value.is_string() || value.is_word();
    case ArgType::vector_integer:
      return value.is_vector() &&
             (value.as_vector().elements.empty() ||
              value.as_vector().element_type == ValueType::integer);
    case ArgType::vector_real:
      return value.is_vector() &&
             (value.as_vector().elements.empty() ||
              value.as_vector().element_type == ValueType::real ||
              value.as_vector().element_type == ValueType::integer);
    case ArgType::vector_word:
      return value.is_vector() &&
             (value.as_vector().elements.empty() ||
              value.as_vector().element_type == ValueType::word);
    case ArgType::vector_string:
      return value.is_vector() &&
             (value.as_vector().elements.empty() ||
              value.as_vector().element_type == ValueType::string ||
              value.as_vector().element_type == ValueType::word);
    case ArgType::array:
      return value.is_array();
    case ArgType::any:
      return true;
  }
  return false;
}

}  // namespace

util::Status SemanticRegistry::check_arg(const CommandSpec& spec,
                                         const ArgSpec& arg,
                                         const Value& value) {
  if (!type_matches(arg.type, value)) {
    return util::Error{util::Errc::semantic_error,
                       "command '" + spec.name + "' argument '" + arg.name +
                           "' expects " + arg_type_name(arg.type) + ", got " +
                           value_type_name(value.type())};
  }
  if (value.is_integer()) {
    std::int64_t v = value.as_integer();
    if ((arg.min_integer && v < *arg.min_integer) ||
        (arg.max_integer && v > *arg.max_integer)) {
      return util::Error{util::Errc::semantic_error,
                         "command '" + spec.name + "' argument '" + arg.name +
                             "' out of range: " + std::to_string(v)};
    }
  }
  if (value.is_real() || value.is_integer()) {
    double v = value.as_real();
    if ((arg.min_real && v < *arg.min_real) ||
        (arg.max_real && v > *arg.max_real)) {
      return util::Error{util::Errc::semantic_error,
                         "command '" + spec.name + "' argument '" + arg.name +
                             "' out of range"};
    }
  }
  if (!arg.one_of.empty() && (value.is_word() || value.is_string())) {
    const std::string& text = value.as_text();
    if (std::find(arg.one_of.begin(), arg.one_of.end(), text) ==
        arg.one_of.end()) {
      return util::Error{util::Errc::semantic_error,
                         "command '" + spec.name + "' argument '" + arg.name +
                             "' has unsupported value '" + text + "'"};
    }
  }
  return util::Status::ok_status();
}

util::Status SemanticRegistry::validate(const CmdLine& cmd) const {
  const CommandSpec* spec = find(cmd.name());
  if (!spec) {
    return util::Error{util::Errc::semantic_error,
                       "unknown command '" + cmd.name() + "'"};
  }
  for (const ArgSpec& arg : spec->args) {
    const Value* value = cmd.find(arg.name);
    if (!value) {
      if (arg.required) {
        return util::Error{util::Errc::semantic_error,
                           "command '" + spec->name +
                               "' missing required argument '" + arg.name +
                               "'"};
      }
      continue;
    }
    if (auto s = check_arg(*spec, arg, *value); !s.ok()) return s;
  }
  if (!spec->allow_extra_args) {
    for (const Argument& given : cmd.args()) {
      bool known = std::any_of(
          spec->args.begin(), spec->args.end(),
          [&](const ArgSpec& a) { return a.name == given.name; });
      if (!known) {
        return util::Error{util::Errc::semantic_error,
                           "command '" + spec->name +
                               "' does not accept argument '" + given.name +
                               "'"};
      }
    }
  }
  return util::Status::ok_status();
}

}  // namespace ace::cmdlang
