// The ACE Command Parser (paper §2.2, Fig 5): converts a transmitted command
// string back into an ACECmdLine object, "check[ing] the incoming string for
// syntactic ... correctness". Semantic validation against a daemon's command
// definitions lives in semantics.hpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cmdlang/value.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ace::cmdlang {

struct ParseError {
  std::size_t position = 0;  // byte offset into the input
  std::string message;

  util::Error to_error() const {
    return util::Error{util::Errc::parse_error,
                       message + " (at offset " + std::to_string(position) +
                           ")"};
  }
};

class Parser {
 public:
  // Parses exactly one command terminated by ';'.
  static util::Result<CmdLine> parse(std::string_view input);

  // Copy-free entry point for wire frames: parses directly out of the
  // received byte buffer instead of requiring a Bytes→string conversion.
  static util::Result<CmdLine> parse(const util::Bytes& input) {
    return parse(util::to_string_view(input));
  }

  // Parses a ';'-separated sequence of commands (e.g. a script).
  static util::Result<std::vector<CmdLine>> parse_all(std::string_view input);
};

}  // namespace ace::cmdlang
