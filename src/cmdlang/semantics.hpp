// Per-daemon command semantics (paper §2.2/§2.3):
//
// "For each unique daemon implementation, a set of command and argument
//  semantics must be defined, within the basic language structure, and
//  tailored to fit the specific capabilities of that service daemon."
//
// The parser checks syntax; a SemanticRegistry checks the parsed CmdLine
// against the receiving daemon's declared commands and argument schemas.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cmdlang/value.hpp"
#include "util/result.hpp"

namespace ace::cmdlang {

enum class ArgType {
  integer,
  real,       // accepts integer (numeric widening)
  word,
  string,     // accepts word or quoted string
  text,       // word or string
  vector_integer,
  vector_real,
  vector_word,
  vector_string,
  array,
  any,
};

const char* arg_type_name(ArgType t);

struct ArgSpec {
  std::string name;
  ArgType type = ArgType::any;
  bool required = true;
  std::optional<std::int64_t> min_integer;
  std::optional<std::int64_t> max_integer;
  std::optional<double> min_real;
  std::optional<double> max_real;
  std::vector<std::string> one_of;  // allowed word/string values
  std::string help;

  // Fluent builders.
  ArgSpec& optional_arg() { required = false; return *this; }
  ArgSpec& range(std::int64_t lo, std::int64_t hi) {
    min_integer = lo; max_integer = hi; return *this;
  }
  ArgSpec& range_real(double lo, double hi) {
    min_real = lo; max_real = hi; return *this;
  }
  ArgSpec& choices(std::vector<std::string> values) {
    one_of = std::move(values); return *this;
  }
  ArgSpec& describe(std::string text) { help = std::move(text); return *this; }
};

struct CommandSpec {
  std::string name;
  std::vector<ArgSpec> args;
  bool allow_extra_args = false;
  // Concurrent commands have thread-safe handlers and may execute directly
  // on the receiving connection's command thread instead of being
  // serialized through the daemon's control thread. Required for commands
  // on peer-to-peer hot paths (e.g. persistent-store replication) where
  // control-thread serialization would convoy the whole cluster.
  bool concurrent = false;
  std::string help;

  CommandSpec() = default;
  CommandSpec(std::string n, std::string h = {})
      : name(std::move(n)), help(std::move(h)) {}

  CommandSpec& arg(ArgSpec spec) {
    args.push_back(std::move(spec));
    return *this;
  }
  CommandSpec& extra_ok() {
    allow_extra_args = true;
    return *this;
  }
  CommandSpec& concurrent_ok() {
    concurrent = true;
    return *this;
  }
};

// Convenience ArgSpec constructors.
ArgSpec integer_arg(std::string name);
ArgSpec real_arg(std::string name);
ArgSpec word_arg(std::string name);
ArgSpec string_arg(std::string name);
ArgSpec text_arg(std::string name);
ArgSpec vector_arg(std::string name, ArgType type);
ArgSpec array_arg(std::string name);
ArgSpec any_arg(std::string name);

class SemanticRegistry {
 public:
  void add(CommandSpec spec);
  const CommandSpec* find(const std::string& name) const;
  std::vector<std::string> command_names() const;
  std::size_t size() const { return specs_.size(); }

  // Validates a parsed command against the registered semantics:
  // unknown command, missing required args, unknown args, type and range
  // violations all fail with Errc::semantic_error.
  util::Status validate(const CmdLine& cmd) const;

 private:
  static util::Status check_arg(const CommandSpec& spec, const ArgSpec& arg,
                                const Value& value);

  std::map<std::string, CommandSpec> specs_;
};

}  // namespace ace::cmdlang
