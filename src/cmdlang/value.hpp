// The ACE command value model and ACECmdLine object (paper §2.2).
//
// "Every command that is to be issued to an ACE service is first built as an
//  ACECmdLine object. This object is then converted into a string ... and is
//  then transmitted over the network to the receiving side."
//
// Value types follow the paper's grammar: INTEGER, FLOAT, WORD, STRING,
// VECTOR (homogeneous list of scalars) and ARRAY (list of vectors).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/result.hpp"

namespace ace::cmdlang {

enum class ValueType {
  integer,
  real,
  word,
  string,
  vector,
  array,
};

const char* value_type_name(ValueType t);

class Value;

// A homogeneous vector of scalar values, e.g. {1,2,3} or {"a","b"}.
struct Vector {
  ValueType element_type = ValueType::integer;
  std::vector<Value> elements;

  friend bool operator==(const Vector&, const Vector&);
};

// A list of vectors, e.g. {{1,2},{3,4}}.
struct Array {
  std::vector<Vector> vectors;

  friend bool operator==(const Array&, const Array&);
};

// Distinguishes bare words ("on", "hawk") from quoted strings.
struct Word {
  std::string text;
  friend bool operator==(const Word&, const Word&) = default;
};

class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  Value(std::int64_t v) : v_(v) {}                       // NOLINT(implicit)
  Value(int v) : v_(static_cast<std::int64_t>(v)) {}     // NOLINT(implicit)
  Value(double v) : v_(v) {}                             // NOLINT(implicit)
  Value(Word v) : v_(std::move(v)) {}                    // NOLINT(implicit)
  Value(std::string v) : v_(std::move(v)) {}             // NOLINT(implicit)
  Value(const char* v) : v_(std::string(v)) {}           // NOLINT(implicit)
  Value(Vector v) : v_(std::move(v)) {}                  // NOLINT(implicit)
  Value(Array v) : v_(std::move(v)) {}                   // NOLINT(implicit)

  ValueType type() const;

  bool is_integer() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_word() const { return std::holds_alternative<Word>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_vector() const { return std::holds_alternative<Vector>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }

  std::int64_t as_integer() const { return std::get<std::int64_t>(v_); }
  // Accepts an integer where a real is expected (numeric widening).
  double as_real() const;
  const std::string& as_word() const { return std::get<Word>(v_).text; }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  // Word or string as text.
  const std::string& as_text() const;
  const Vector& as_vector() const { return std::get<Vector>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }

  // Serializes this value in ACE command-language syntax.
  std::string to_string() const;

  friend bool operator==(const Value&, const Value&);

 private:
  std::variant<std::int64_t, double, Word, std::string, Vector, Array> v_;
};

struct Argument {
  std::string name;
  Value value;
  friend bool operator==(const Argument&, const Argument&);
};

// The ACECmdLine object.
class CmdLine {
 public:
  CmdLine() = default;
  explicit CmdLine(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  CmdLine& arg(std::string name, Value value) {
    args_.push_back({std::move(name), std::move(value)});
    return *this;
  }

  const std::vector<Argument>& args() const { return args_; }
  bool has(const std::string& name) const { return find(name) != nullptr; }
  const Value* find(const std::string& name) const;

  // Typed accessors; return fallback when the argument is missing or has a
  // different type.
  std::int64_t get_integer(const std::string& name,
                           std::int64_t fallback = 0) const;
  double get_real(const std::string& name, double fallback = 0.0) const;
  std::string get_text(const std::string& name,
                       const std::string& fallback = {}) const;
  std::optional<Vector> get_vector(const std::string& name) const;
  std::optional<Array> get_array(const std::string& name) const;

  // Serializes per the paper's grammar: `name arg=value arg=value;`
  std::string to_string() const;

  friend bool operator==(const CmdLine&, const CmdLine&);

 private:
  std::string name_;
  std::vector<Argument> args_;
};

// Reply conventions shared by all ACE daemons. A reply is itself an ACE
// command: `ok ...results...;` or `error code=<word> message=<string>;`
// ("return commands are used to reply on the status of the attempted
//  command such as successful or failed" — paper §2.2).
CmdLine make_ok();
CmdLine make_error(util::Errc code, const std::string& message);
bool is_ok(const CmdLine& reply);
bool is_error(const CmdLine& reply);
util::Error reply_error(const CmdLine& reply);

// Helpers for vector construction.
Vector int_vector(std::vector<std::int64_t> values);
Vector real_vector(std::vector<double> values);
Vector string_vector(std::vector<std::string> values);
Vector word_vector(std::vector<std::string> values);

}  // namespace ace::cmdlang
