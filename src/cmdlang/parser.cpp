#include "cmdlang/parser.hpp"

#include <cctype>
#include <cstdlib>

namespace ace::cmdlang {

namespace {

enum class TokKind {
  word,     // bare identifier
  integer,  // 42, -7
  real,     // 3.14, -2e5
  string,   // "quoted"
  equals,
  comma,
  lbrace,
  rbrace,
  semicolon,
  end,
};

struct Token {
  TokKind kind;
  std::string text;   // words & strings
  std::int64_t ival = 0;
  double rval = 0.0;
  std::size_t pos = 0;
};

bool is_word_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Lexer {
 public:
  explicit Lexer(std::string_view input) : in_(input) {}

  util::Result<Token> next() {
    skip_space();
    Token t;
    t.pos = pos_;
    if (pos_ >= in_.size()) {
      t.kind = TokKind::end;
      return t;
    }
    char c = in_[pos_];
    switch (c) {
      case '=': ++pos_; t.kind = TokKind::equals; return t;
      case ',': ++pos_; t.kind = TokKind::comma; return t;
      case '{': ++pos_; t.kind = TokKind::lbrace; return t;
      case '}': ++pos_; t.kind = TokKind::rbrace; return t;
      case ';': ++pos_; t.kind = TokKind::semicolon; return t;
      case '"': return lex_string();
      default: break;
    }
    if (c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c)))
      return lex_number();
    if (is_word_char(c)) return lex_word();
    return fail("unexpected character '" + std::string(1, c) + "'");
  }

  std::size_t position() const { return pos_; }

 private:
  util::Error fail(const std::string& message) const {
    return ParseError{pos_, message}.to_error();
  }

  void skip_space() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_])))
      ++pos_;
  }

  util::Result<Token> lex_string() {
    Token t;
    t.pos = pos_;
    t.kind = TokKind::string;
    ++pos_;  // opening quote
    while (pos_ < in_.size() && in_[pos_] != '"') {
      char c = in_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= in_.size()) return fail("dangling escape in string");
        t.text.push_back(in_[pos_ + 1]);
        pos_ += 2;
      } else {
        t.text.push_back(c);
        ++pos_;
      }
    }
    if (pos_ >= in_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return t;
  }

  util::Result<Token> lex_number() {
    Token t;
    t.pos = pos_;
    std::size_t start = pos_;
    if (in_[pos_] == '-' || in_[pos_] == '+') ++pos_;
    bool has_digits = false;
    bool is_real = false;
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        has_digits = true;
        ++pos_;
      } else if (c == '.') {
        if (is_real) break;
        is_real = true;
        ++pos_;
      } else if (c == 'e' || c == 'E') {
        // exponent: e[+-]?digits
        std::size_t save = pos_;
        ++pos_;
        if (pos_ < in_.size() && (in_[pos_] == '-' || in_[pos_] == '+'))
          ++pos_;
        if (pos_ < in_.size() &&
            std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
          is_real = true;
          while (pos_ < in_.size() &&
                 std::isdigit(static_cast<unsigned char>(in_[pos_])))
            ++pos_;
        } else {
          pos_ = save;
        }
        break;
      } else {
        break;
      }
    }
    if (!has_digits) return fail("malformed number");
    // Reject '3abc' style tokens.
    if (pos_ < in_.size() && is_word_char(in_[pos_]))
      return fail("malformed number (trailing word characters)");
    std::string text(in_.substr(start, pos_ - start));
    if (is_real) {
      t.kind = TokKind::real;
      t.rval = std::strtod(text.c_str(), nullptr);
    } else {
      t.kind = TokKind::integer;
      t.ival = std::strtoll(text.c_str(), nullptr, 10);
    }
    return t;
  }

  util::Result<Token> lex_word() {
    Token t;
    t.pos = pos_;
    t.kind = TokKind::word;
    while (pos_ < in_.size() && is_word_char(in_[pos_]))
      t.text.push_back(in_[pos_++]);
    return t;
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

class ParserImpl {
 public:
  explicit ParserImpl(std::string_view input) : lexer_(input) {}

  util::Result<CmdLine> parse_command() {
    if (auto s = advance(); !s.ok()) return s.error();
    if (current_.kind == TokKind::end)
      return fail("empty input, expected command name");
    if (current_.kind != TokKind::word)
      return fail("expected command name word");
    CmdLine cmd(current_.text);
    if (auto s = advance(); !s.ok()) return s.error();

    while (current_.kind != TokKind::semicolon) {
      if (current_.kind == TokKind::end)
        return fail("unterminated command, expected ';'");
      // Optional comma separators between arguments (paper grammar allows
      // both space and ',' separated ARGLISTs).
      if (current_.kind == TokKind::comma) {
        if (auto s = advance(); !s.ok()) return s.error();
        continue;
      }
      if (current_.kind != TokKind::word)
        return fail("expected argument name");
      std::string arg_name = current_.text;
      if (auto s = advance(); !s.ok()) return s.error();
      if (current_.kind != TokKind::equals)
        return fail("expected '=' after argument name '" + arg_name + "'");
      if (auto s = advance(); !s.ok()) return s.error();
      auto value = parse_value();
      if (!value.ok()) return value.error();
      cmd.arg(std::move(arg_name), std::move(value.value()));
    }
    return cmd;
  }

  util::Result<std::vector<CmdLine>> parse_sequence() {
    std::vector<CmdLine> out;
    for (;;) {
      std::size_t before = lexer_.position();
      auto cmd = parse_command();
      if (!cmd.ok()) {
        // Distinguish clean end-of-input from a real error.
        if (out.empty() || lexer_.position() != before) {
          if (at_clean_end_) return out;
          return cmd.error();
        }
        return out;
      }
      out.push_back(std::move(cmd.value()));
      // Peek: if only whitespace remains we are done.
      Lexer probe = lexer_;
      auto t = probe.next();
      if (t.ok() && t->kind == TokKind::end) return out;
    }
  }

 private:
  util::Error fail(const std::string& message) {
    if (current_.kind == TokKind::end) at_clean_end_ = true;
    return ParseError{current_.pos, message}.to_error();
  }

  util::Status advance() {
    auto t = lexer_.next();
    if (!t.ok()) return t.error();
    current_ = std::move(t.value());
    return util::Status::ok_status();
  }

  util::Result<Value> parse_value() {
    switch (current_.kind) {
      case TokKind::integer: {
        Value v(current_.ival);
        if (auto s = advance(); !s.ok()) return s.error();
        return v;
      }
      case TokKind::real: {
        Value v(current_.rval);
        if (auto s = advance(); !s.ok()) return s.error();
        return v;
      }
      case TokKind::word: {
        Value v(Word{current_.text});
        if (auto s = advance(); !s.ok()) return s.error();
        return v;
      }
      case TokKind::string: {
        Value v(current_.text);
        if (auto s = advance(); !s.ok()) return s.error();
        return v;
      }
      case TokKind::lbrace:
        return parse_braced();
      default:
        return fail("expected a value");
    }
  }

  // Parses either a VECTOR {1,2,3} or an ARRAY {{1,2},{3}} — disambiguated
  // by whether the first element is itself braced.
  util::Result<Value> parse_braced() {
    if (auto s = advance(); !s.ok()) return s.error();  // consume '{'
    if (current_.kind == TokKind::lbrace) {
      Array arr;
      for (;;) {
        auto vec = parse_vector_literal();
        if (!vec.ok()) return vec.error();
        arr.vectors.push_back(std::move(vec.value()));
        if (current_.kind == TokKind::comma) {
          if (auto s = advance(); !s.ok()) return s.error();
          continue;
        }
        break;
      }
      if (current_.kind != TokKind::rbrace)
        return fail("expected '}' closing array");
      if (auto s = advance(); !s.ok()) return s.error();
      return Value(std::move(arr));
    }
    auto vec = parse_vector_elements();
    if (!vec.ok()) return vec.error();
    return Value(std::move(vec.value()));
  }

  // Assumes '{' already consumed; parses elements up to and including '}'.
  util::Result<Vector> parse_vector_elements() {
    Vector vec;
    bool first = true;
    while (current_.kind != TokKind::rbrace) {
      if (current_.kind == TokKind::end)
        return fail("unterminated vector, expected '}'");
      if (!first) {
        if (current_.kind != TokKind::comma)
          return fail("expected ',' between vector elements");
        if (auto s = advance(); !s.ok()) return s.error();
      }
      auto elem = parse_scalar();
      if (!elem.ok()) return elem.error();
      ValueType t = elem->type();
      if (first) {
        vec.element_type = t;
      } else if (t != vec.element_type) {
        // Paper: vectors are homogeneous. Permit int→float widening.
        if (vec.element_type == ValueType::real && t == ValueType::integer) {
          // ok, element widened below
        } else if (vec.element_type == ValueType::integer &&
                   t == ValueType::real) {
          vec.element_type = ValueType::real;
        } else {
          return fail("mixed element types in vector");
        }
      }
      vec.elements.push_back(std::move(elem.value()));
      first = false;
    }
    if (auto s = advance(); !s.ok()) return s.error();  // consume '}'
    return vec;
  }

  // Parses a full '{...}' vector literal (for array members).
  util::Result<Vector> parse_vector_literal() {
    if (current_.kind != TokKind::lbrace)
      return fail("expected '{' starting vector");
    if (auto s = advance(); !s.ok()) return s.error();
    return parse_vector_elements();
  }

  util::Result<Value> parse_scalar() {
    switch (current_.kind) {
      case TokKind::integer: {
        Value v(current_.ival);
        if (auto s = advance(); !s.ok()) return s.error();
        return v;
      }
      case TokKind::real: {
        Value v(current_.rval);
        if (auto s = advance(); !s.ok()) return s.error();
        return v;
      }
      case TokKind::word: {
        Value v(Word{current_.text});
        if (auto s = advance(); !s.ok()) return s.error();
        return v;
      }
      case TokKind::string: {
        Value v(current_.text);
        if (auto s = advance(); !s.ok()) return s.error();
        return v;
      }
      default:
        return fail("expected scalar vector element");
    }
  }

  Lexer lexer_;
  Token current_{};
  bool at_clean_end_ = false;
};

}  // namespace

util::Result<CmdLine> Parser::parse(std::string_view input) {
  ParserImpl impl(input);
  return impl.parse_command();
}

util::Result<std::vector<CmdLine>> Parser::parse_all(std::string_view input) {
  ParserImpl impl(input);
  return impl.parse_sequence();
}

}  // namespace ace::cmdlang
