#include "keynote/checker.hpp"

#include <map>
#include <set>

namespace ace::keynote {

namespace {

// Delegation is resolved recursively: a licensee key K "supports" the
// request if K is the requester itself, or K has issued a (verified)
// credential whose conditions hold for the action and whose licensee
// expression is satisfied. Cycles evaluate to false on the in-progress
// path, which is sound for the monotone two-valued semantics.
class Resolver {
 public:
  Resolver(const ComplianceQuery& query,
           const std::vector<const Assertion*>& credentials)
      : query_(query) {
    for (const Assertion* a : credentials)
      by_authorizer_[a->authorizer].push_back(a);
  }

  util::Result<bool> assertion_holds(const Assertion& a) {
    if (!a.conditions.empty()) {
      auto cond = ConditionEvaluator::eval(a.conditions, query_.action);
      if (!cond.ok()) return cond;
      if (!cond.value()) return false;
    }
    if (!a.licensees) return false;
    return licensee_satisfied(*a.licensees);
  }

 private:
  util::Result<bool> licensee_satisfied(const LicenseeExpr& e) {
    switch (e.kind) {
      case LicenseeExpr::Kind::key:
        return key_supports(e.key);
      case LicenseeExpr::Kind::all_of: {
        for (const auto& part : e.parts) {
          auto v = licensee_satisfied(*part);
          if (!v.ok()) return v;
          if (!v.value()) return false;
        }
        return true;
      }
      case LicenseeExpr::Kind::any_of: {
        for (const auto& part : e.parts) {
          auto v = licensee_satisfied(*part);
          if (!v.ok()) return v;
          if (v.value()) return true;
        }
        return false;
      }
      case LicenseeExpr::Kind::threshold: {
        int satisfied = 0;
        for (const auto& part : e.parts) {
          auto v = licensee_satisfied(*part);
          if (!v.ok()) return v;
          if (v.value()) ++satisfied;
        }
        return satisfied >= e.threshold_k;
      }
    }
    return false;
  }

  util::Result<bool> key_supports(const PrincipalKey& key) {
    if (key == query_.requester) return true;
    auto memo = memo_.find(key);
    if (memo != memo_.end()) return memo->second;
    if (in_progress_.contains(key)) return false;  // cycle guard
    in_progress_.insert(key);
    bool supports = false;
    auto it = by_authorizer_.find(key);
    if (it != by_authorizer_.end()) {
      for (const Assertion* a : it->second) {
        auto v = assertion_holds(*a);
        if (!v.ok()) {
          in_progress_.erase(key);
          return v;
        }
        if (v.value()) {
          supports = true;
          break;
        }
      }
    }
    in_progress_.erase(key);
    memo_[key] = supports;
    return supports;
  }

  const ComplianceQuery& query_;
  std::map<PrincipalKey, std::vector<const Assertion*>> by_authorizer_;
  std::map<PrincipalKey, bool> memo_;
  std::set<PrincipalKey> in_progress_;
};

}  // namespace

util::Result<ComplianceResult> ComplianceChecker::check(
    const ComplianceQuery& query, const KeyStore* keys) {
  ComplianceResult result;

  std::vector<const Assertion*> usable;
  usable.reserve(query.credentials.size());
  for (const Assertion& c : query.credentials) {
    if (c.is_policy()) continue;  // credentials may not claim POLICY
    if (keys && !keys->verify(c)) {
      result.rejected_credentials.push_back(c.authorizer + ": " + c.comment);
      continue;
    }
    usable.push_back(&c);
  }

  Resolver resolver(query, usable);
  for (const Assertion& policy : query.policies) {
    if (!policy.is_policy()) continue;
    auto v = resolver.assertion_holds(policy);
    if (!v.ok()) return v.error();
    if (v.value()) {
      result.authorized = true;
      return result;
    }
  }
  result.authorized = false;
  return result;
}

}  // namespace ace::keynote
