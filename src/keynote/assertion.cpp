#include "keynote/assertion.hpp"

#include <cctype>

#include "crypto/sha256.hpp"
#include "util/strings.hpp"

namespace ace::keynote {

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string LicenseeExpr::to_string() const {
  switch (kind) {
    case Kind::key:
      return quote(key);
    case Kind::all_of: {
      std::string out = "(";
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += " && ";
        out += parts[i]->to_string();
      }
      return out + ")";
    }
    case Kind::any_of: {
      std::string out = "(";
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += " || ";
        out += parts[i]->to_string();
      }
      return out + ")";
    }
    case Kind::threshold: {
      std::string out = std::to_string(threshold_k) + "-of(";
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i) out += ",";
        out += parts[i]->to_string();
      }
      return out + ")";
    }
  }
  return {};
}

LicenseePtr licensee_key(PrincipalKey key) {
  auto e = std::make_shared<LicenseeExpr>();
  e->kind = LicenseeExpr::Kind::key;
  e->key = std::move(key);
  return e;
}

LicenseePtr licensee_all(std::vector<LicenseePtr> parts) {
  auto e = std::make_shared<LicenseeExpr>();
  e->kind = LicenseeExpr::Kind::all_of;
  e->parts = std::move(parts);
  return e;
}

LicenseePtr licensee_any(std::vector<LicenseePtr> parts) {
  auto e = std::make_shared<LicenseeExpr>();
  e->kind = LicenseeExpr::Kind::any_of;
  e->parts = std::move(parts);
  return e;
}

LicenseePtr licensee_threshold(int k, std::vector<LicenseePtr> parts) {
  auto e = std::make_shared<LicenseeExpr>();
  e->kind = LicenseeExpr::Kind::threshold;
  e->threshold_k = k;
  e->parts = std::move(parts);
  return e;
}

namespace {

// Recursive-descent parser for licensee expressions.
class LicenseeParser {
 public:
  explicit LicenseeParser(const std::string& src) : src_(src) {}

  util::Result<LicenseePtr> parse() {
    auto e = parse_or();
    if (!e.ok()) return e;
    skip_space();
    if (pos_ != src_.size())
      return fail("trailing characters in licensee expression");
    return e;
  }

 private:
  util::Error fail(const std::string& m) const {
    return util::Error{util::Errc::parse_error,
                       "licensees: " + m + " (offset " + std::to_string(pos_) +
                           ")"};
  }

  void skip_space() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
  }

  bool consume(const char* tok) {
    skip_space();
    std::size_t n = std::char_traits<char>::length(tok);
    if (src_.compare(pos_, n, tok) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  util::Result<LicenseePtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    std::vector<LicenseePtr> parts{lhs.value()};
    while (consume("||")) {
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs;
      parts.push_back(rhs.value());
    }
    if (parts.size() == 1) return parts[0];
    return licensee_any(std::move(parts));
  }

  util::Result<LicenseePtr> parse_and() {
    auto lhs = parse_primary();
    if (!lhs.ok()) return lhs;
    std::vector<LicenseePtr> parts{lhs.value()};
    while (consume("&&")) {
      auto rhs = parse_primary();
      if (!rhs.ok()) return rhs;
      parts.push_back(rhs.value());
    }
    if (parts.size() == 1) return parts[0];
    return licensee_all(std::move(parts));
  }

  util::Result<LicenseePtr> parse_primary() {
    skip_space();
    if (pos_ >= src_.size()) return fail("unexpected end");
    if (src_[pos_] == '(') {
      ++pos_;
      auto inner = parse_or();
      if (!inner.ok()) return inner;
      if (!consume(")")) return fail("expected ')'");
      return inner;
    }
    if (src_[pos_] == '"') return parse_key();
    if (std::isdigit(static_cast<unsigned char>(src_[pos_])))
      return parse_threshold();
    // Bare word key (convenience).
    std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '_' || src_[pos_] == ':' || src_[pos_] == '-' ||
            src_[pos_] == '/' || src_[pos_] == '.' || src_[pos_] == '@'))
      ++pos_;
    if (pos_ == start) return fail("expected key, '(' or threshold");
    return licensee_key(src_.substr(start, pos_ - start));
  }

  util::Result<LicenseePtr> parse_key() {
    ++pos_;  // opening quote
    std::string key;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        key.push_back(src_[pos_ + 1]);
        pos_ += 2;
      } else {
        key.push_back(src_[pos_++]);
      }
    }
    if (pos_ >= src_.size()) return fail("unterminated key");
    ++pos_;  // closing quote
    return licensee_key(std::move(key));
  }

  util::Result<LicenseePtr> parse_threshold() {
    int k = 0;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_])))
      k = k * 10 + (src_[pos_++] - '0');
    if (!consume("-of")) return fail("expected '-of' after threshold count");
    if (!consume("(")) return fail("expected '(' after '-of'");
    std::vector<LicenseePtr> parts;
    for (;;) {
      auto part = parse_or();
      if (!part.ok()) return part;
      parts.push_back(part.value());
      if (consume(",")) continue;
      break;
    }
    if (!consume(")")) return fail("expected ')' closing threshold");
    if (k <= 0 || static_cast<std::size_t>(k) > parts.size())
      return fail("threshold out of range");
    return licensee_threshold(k, std::move(parts));
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<LicenseePtr> parse_licensees(const std::string& source) {
  return LicenseeParser(source).parse();
}

std::string Assertion::body_text() const {
  std::string out = "keynote-version: 2\n";
  out += "authorizer: " + quote(authorizer) + "\n";
  out += "licensees: " + (licensees ? licensees->to_string() : "()") + "\n";
  if (!conditions.empty()) out += "conditions: " + conditions + "\n";
  if (!comment.empty()) out += "comment: " + comment + "\n";
  return out;
}

std::string Assertion::serialize() const {
  std::string out = body_text();
  if (!signature.empty())
    out += "signature: " + util::hex_encode(signature) + "\n";
  return out;
}

util::Result<Assertion> Assertion::parse(const std::string& text) {
  Assertion a;
  bool saw_authorizer = false;
  for (const std::string& raw_line : util::split(text, '\n')) {
    std::string line = util::trim(raw_line);
    if (line.empty()) continue;
    auto colon = line.find(':');
    if (colon == std::string::npos)
      return util::Error{util::Errc::parse_error,
                         "assertion: missing ':' in line '" + line + "'"};
    std::string field = util::to_lower(util::trim(line.substr(0, colon)));
    std::string value = util::trim(line.substr(colon + 1));
    if (field == "keynote-version") {
      // accepted, ignored
    } else if (field == "authorizer") {
      std::string v = value;
      if (v.size() >= 2 && v.front() == '"' && v.back() == '"')
        v = v.substr(1, v.size() - 2);
      a.authorizer = v;
      saw_authorizer = true;
    } else if (field == "licensees") {
      auto e = parse_licensees(value);
      if (!e.ok()) return e.error();
      a.licensees = e.value();
    } else if (field == "conditions") {
      a.conditions = value;
    } else if (field == "comment") {
      a.comment = value;
    } else if (field == "signature") {
      a.signature.clear();
      if (value.size() % 2 != 0)
        return util::Error{util::Errc::parse_error, "bad signature hex"};
      for (std::size_t i = 0; i < value.size(); i += 2) {
        auto nibble = [](char c) -> int {
          if (c >= '0' && c <= '9') return c - '0';
          if (c >= 'a' && c <= 'f') return c - 'a' + 10;
          if (c >= 'A' && c <= 'F') return c - 'A' + 10;
          return -1;
        };
        int hi = nibble(value[i]);
        int lo = nibble(value[i + 1]);
        if (hi < 0 || lo < 0)
          return util::Error{util::Errc::parse_error, "bad signature hex"};
        a.signature.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
      }
    } else {
      return util::Error{util::Errc::parse_error,
                         "assertion: unknown field '" + field + "'"};
    }
  }
  if (!saw_authorizer)
    return util::Error{util::Errc::parse_error, "assertion: no authorizer"};
  if (!a.licensees)
    return util::Error{util::Errc::parse_error, "assertion: no licensees"};
  return a;
}

void KeyStore::register_principal(const PrincipalKey& key,
                                  util::Bytes secret) {
  secrets_[key] = std::move(secret);
}

bool KeyStore::known(const PrincipalKey& key) const {
  return secrets_.contains(key);
}

util::Status KeyStore::sign(Assertion& assertion) const {
  auto it = secrets_.find(assertion.authorizer);
  if (it == secrets_.end())
    return {util::Errc::not_found,
            "no key for authorizer '" + assertion.authorizer + "'"};
  crypto::Digest tag =
      crypto::hmac_sha256(it->second, util::to_bytes(assertion.body_text()));
  assertion.signature.assign(tag.begin(), tag.end());
  return util::Status::ok_status();
}

bool KeyStore::verify(const Assertion& assertion) const {
  auto it = secrets_.find(assertion.authorizer);
  if (it == secrets_.end()) return false;
  crypto::Digest tag =
      crypto::hmac_sha256(it->second, util::to_bytes(assertion.body_text()));
  if (assertion.signature.size() != tag.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < tag.size(); ++i)
    diff |= static_cast<std::uint8_t>(assertion.signature[i] ^ tag[i]);
  return diff == 0;
}

}  // namespace ace::keynote
