// KeyNote compliance checker (RFC 2704 query semantics, two compliance
// values). Answers: do the POLICY assertions, together with the supplied
// signed credentials, authorize `requester` to perform the action described
// by the attribute environment? (Paper §3.2, Fig 10: "These assertions are
// passed onto KeyNote, which is used to determine if a proper assertion or
// chain of assertions are present".)
#pragma once

#include <vector>

#include "keynote/assertion.hpp"
#include "keynote/expr.hpp"

namespace ace::keynote {

struct ComplianceQuery {
  PrincipalKey requester;
  ActionEnv action;
  std::vector<Assertion> policies;     // authorizer == "POLICY", trusted
  std::vector<Assertion> credentials;  // must verify against the key store
};

struct ComplianceResult {
  bool authorized = false;
  // Diagnostics: credentials rejected because their signature failed.
  std::vector<std::string> rejected_credentials;
};

class ComplianceChecker {
 public:
  // `keys` verifies credential signatures; pass nullptr to trust all
  // credentials (testing only).
  static util::Result<ComplianceResult> check(const ComplianceQuery& query,
                                              const KeyStore* keys);
};

}  // namespace ace::keynote
