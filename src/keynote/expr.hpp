// KeyNote condition-expression language (RFC 2704 §4 subset).
//
// Conditions are boolean expressions over the *action attribute set* — the
// name/value environment describing the attempted action (e.g. app_domain,
// command, room, duration). Grammar:
//
//   expr   := or
//   or     := and ('||' and)*
//   and    := not ('&&' not)*
//   not    := '!' not | primary
//   primary:= '(' expr ')' | comparison | 'true' | 'false'
//   cmp    := operand op operand          op in {==,!=,<,<=,>,>=,~=}
//   operand:= attribute-name | "string" | number
//
// '~=' is glob match (pattern on the right). Comparisons are numeric when
// both operands parse as numbers, lexicographic otherwise. Missing
// attributes evaluate to the empty string (RFC 2704 behaviour).
#pragma once

#include <map>
#include <string>

#include "util/result.hpp"

namespace ace::keynote {

using ActionEnv = std::map<std::string, std::string>;

class ConditionEvaluator {
 public:
  // Evaluates `source` against `env`. Empty source is vacuously true.
  static util::Result<bool> eval(const std::string& source,
                                 const ActionEnv& env);

  // Parses without evaluating (syntax check for stored assertions).
  static util::Status check_syntax(const std::string& source);
};

}  // namespace ace::keynote
