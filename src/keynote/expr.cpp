#include "keynote/expr.hpp"

#include <cctype>
#include <cstdlib>
#include <optional>

#include "util/strings.hpp"

namespace ace::keynote {

namespace {

struct Operand {
  std::string text;      // resolved value
  bool from_env = false; // attribute reference (affects nothing further)
};

class Evaluator {
 public:
  Evaluator(const std::string& src, const ActionEnv* env)
      : src_(src), env_(env) {}

  util::Result<bool> run() {
    auto v = parse_or();
    if (!v.ok()) return v;
    skip_space();
    if (pos_ != src_.size()) return fail("trailing characters");
    return v;
  }

 private:
  util::Error fail(const std::string& m) const {
    return util::Error{util::Errc::parse_error,
                       "conditions: " + m + " (offset " +
                           std::to_string(pos_) + ")"};
  }

  void skip_space() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
  }

  bool peek(const char* tok) {
    skip_space();
    return src_.compare(pos_, std::char_traits<char>::length(tok), tok) == 0;
  }

  bool consume(const char* tok) {
    if (!peek(tok)) return false;
    pos_ += std::char_traits<char>::length(tok);
    return true;
  }

  util::Result<bool> parse_or() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    bool value = lhs.value();
    while (consume("||")) {
      auto rhs = parse_and();
      if (!rhs.ok()) return rhs;
      value = value || rhs.value();
    }
    return value;
  }

  util::Result<bool> parse_and() {
    auto lhs = parse_not();
    if (!lhs.ok()) return lhs;
    bool value = lhs.value();
    while (consume("&&")) {
      auto rhs = parse_not();
      if (!rhs.ok()) return rhs;
      value = value && rhs.value();
    }
    return value;
  }

  util::Result<bool> parse_not() {
    if (consume("!")) {
      auto inner = parse_not();
      if (!inner.ok()) return inner;
      return !inner.value();
    }
    return parse_primary();
  }

  util::Result<bool> parse_primary() {
    skip_space();
    if (pos_ >= src_.size()) return fail("unexpected end of conditions");
    if (consume("(")) {
      auto inner = parse_or();
      if (!inner.ok()) return inner;
      if (!consume(")")) return fail("expected ')'");
      return inner;
    }
    // 'true'/'false' literals only when not followed by a comparison op:
    // handled below via operand parsing + optional comparison.
    auto lhs = parse_operand();
    if (!lhs.ok()) return lhs.error();

    skip_space();
    std::string op;
    for (const char* candidate :
         {"==", "!=", "<=", ">=", "~=", "<", ">"}) {
      if (consume(candidate)) {
        op = candidate;
        break;
      }
    }
    if (op.empty()) {
      // Bare operand: 'true'/'false' keywords, otherwise non-empty test.
      const std::string& t = lhs.value().text;
      if (!lhs.value().from_env) {
        if (t == "true") return true;
        if (t == "false") return false;
      }
      return !t.empty();
    }

    auto rhs = parse_operand();
    if (!rhs.ok()) return rhs.error();
    return compare(lhs.value().text, op, rhs.value().text);
  }

  static std::optional<double> as_number(const std::string& s) {
    if (s.empty()) return std::nullopt;
    char* end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size()) return std::nullopt;
    return v;
  }

  static bool compare(const std::string& a, const std::string& op,
                      const std::string& b) {
    if (op == "~=") return util::glob_match(b, a);
    auto na = as_number(a);
    auto nb = as_number(b);
    if (na && nb) {
      if (op == "==") return *na == *nb;
      if (op == "!=") return *na != *nb;
      if (op == "<") return *na < *nb;
      if (op == "<=") return *na <= *nb;
      if (op == ">") return *na > *nb;
      if (op == ">=") return *na >= *nb;
    }
    if (op == "==") return a == b;
    if (op == "!=") return a != b;
    if (op == "<") return a < b;
    if (op == "<=") return a <= b;
    if (op == ">") return a > b;
    if (op == ">=") return a >= b;
    return false;
  }

  util::Result<Operand> parse_operand() {
    skip_space();
    if (pos_ >= src_.size()) return fail("expected operand");
    char c = src_[pos_];
    Operand out;
    if (c == '"') {
      ++pos_;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
          out.text.push_back(src_[pos_ + 1]);
          pos_ += 2;
        } else {
          out.text.push_back(src_[pos_++]);
        }
      }
      if (pos_ >= src_.size()) return fail("unterminated string");
      ++pos_;
      return out;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      std::size_t start = pos_;
      ++pos_;
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
              src_[pos_] == '-' || src_[pos_] == '+'))
        ++pos_;
      out.text = src_.substr(start, pos_ - start);
      return out;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_'))
        ++pos_;
      std::string name = src_.substr(start, pos_ - start);
      if (name == "true" || name == "false") {
        out.text = name;
        return out;
      }
      out.from_env = true;
      if (env_) {
        auto it = env_->find(name);
        out.text = it == env_->end() ? "" : it->second;
      }
      return out;
    }
    return fail(std::string("unexpected character '") + c + "'");
  }

  const std::string& src_;
  const ActionEnv* env_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<bool> ConditionEvaluator::eval(const std::string& source,
                                            const ActionEnv& env) {
  std::string trimmed = util::trim(source);
  if (trimmed.empty()) return true;
  return Evaluator(trimmed, &env).run();
}

util::Status ConditionEvaluator::check_syntax(const std::string& source) {
  std::string trimmed = util::trim(source);
  if (trimmed.empty()) return util::Status::ok_status();
  ActionEnv empty;
  auto r = Evaluator(trimmed, &empty).run();
  if (!r.ok()) return r.error();
  return util::Status::ok_status();
}

}  // namespace ace::keynote
