// KeyNote trust-management assertions (after RFC 2704), as integrated into
// ACE (paper §3.2): "Both users and services shall have credentials and
// assertions defined for what can and can't be done within an ACE."
//
// An assertion states: the AUTHORIZER delegates authority for actions
// satisfying CONDITIONS to the principals matching LICENSEES. Policy roots
// use the distinguished authorizer "POLICY" and need no signature;
// credentials are signed by their authorizer (HMAC tag in this simulation —
// see DESIGN.md substitutions).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ace::keynote {

using PrincipalKey = std::string;  // key identifier, e.g. "ace-user:john"

inline constexpr const char* kPolicyAuthorizer = "POLICY";

// Licensee expression tree: a single key, conjunction, disjunction, or
// k-of-n threshold.
struct LicenseeExpr {
  enum class Kind { key, all_of, any_of, threshold };

  Kind kind = Kind::key;
  PrincipalKey key;                                  // kind == key
  std::vector<std::shared_ptr<LicenseeExpr>> parts;  // composite kinds
  int threshold_k = 0;                               // kind == threshold

  std::string to_string() const;
};

using LicenseePtr = std::shared_ptr<LicenseeExpr>;

LicenseePtr licensee_key(PrincipalKey key);
LicenseePtr licensee_all(std::vector<LicenseePtr> parts);
LicenseePtr licensee_any(std::vector<LicenseePtr> parts);
LicenseePtr licensee_threshold(int k, std::vector<LicenseePtr> parts);

// Parses e.g.: "alice" || ("bob" && "carol") || 2-of("x","y","z")
util::Result<LicenseePtr> parse_licensees(const std::string& source);

struct Assertion {
  PrincipalKey authorizer;
  LicenseePtr licensees;
  std::string conditions;  // condition-expression source; empty = always true
  std::string comment;
  util::Bytes signature;

  bool is_policy() const { return authorizer == kPolicyAuthorizer; }

  // Canonical text form (the signed payload excludes the signature line).
  std::string body_text() const;
  std::string serialize() const;
  static util::Result<Assertion> parse(const std::string& text);
};

// Principal key registry used to sign and verify credentials. In real
// KeyNote these are public keys; in the simulation each principal key id
// maps to an HMAC secret shared with verifiers.
class KeyStore {
 public:
  void register_principal(const PrincipalKey& key, util::Bytes secret);
  bool known(const PrincipalKey& key) const;

  // Signs the assertion in place with the authorizer's secret.
  util::Status sign(Assertion& assertion) const;
  bool verify(const Assertion& assertion) const;

 private:
  std::map<PrincipalKey, util::Bytes> secrets_;
};

}  // namespace ace::keynote
