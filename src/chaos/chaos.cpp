#include "chaos/chaos.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace ace::chaos {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::service_crash: return "service_crash";
    case FaultKind::service_restart: return "service_restart";
    case FaultKind::link_down: return "link_down";
    case FaultKind::link_up: return "link_up";
    case FaultKind::host_isolate: return "host_isolate";
    case FaultKind::host_heal: return "host_heal";
    case FaultKind::latency_spike: return "latency_spike";
    case FaultKind::latency_restore: return "latency_restore";
    case FaultKind::loss_burst: return "loss_burst";
    case FaultKind::loss_restore: return "loss_restore";
    case FaultKind::disk_torn_tail: return "disk_torn_tail";
    case FaultKind::disk_fsync_drop: return "disk_fsync_drop";
    case FaultKind::disk_bit_rot: return "disk_bit_rot";
    case FaultKind::room_partition: return "room_partition";
    case FaultKind::room_heal: return "room_heal";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::ostringstream out;
  out << "+" << at.count() << "ms " << chaos::to_string(kind) << " " << a;
  if (!b.empty()) out << "<->" << b;
  if (kind == FaultKind::latency_spike) out << " latency=" << latency.count() << "us";
  if (kind == FaultKind::loss_burst) out << " loss=" << loss;
  if (kind == FaultKind::disk_fsync_drop) out << " count=" << count;
  return out.str();
}

namespace {

std::string pair_key(const std::string& a, const std::string& b) {
  return a < b ? a + "|" + b : b + "|" + a;
}

// Busy-until bookkeeping: at most one fault at a time per service, per
// link, and per host, so every heal event restores exactly the state its
// fault displaced and the end-of-schedule network is provably whole.
struct BusyMaps {
  std::map<std::string, milliseconds> service;
  std::map<std::string, milliseconds> host;
  std::map<std::string, milliseconds> link;

  static bool free_at(const std::map<std::string, milliseconds>& m,
                      const std::string& key, milliseconds t) {
    auto it = m.find(key);
    return it == m.end() || it->second <= t;
  }

  bool link_free(const std::string& a, const std::string& b,
                 milliseconds t) const {
    return free_at(link, pair_key(a, b), t) && free_at(host, a, t) &&
           free_at(host, b, t);
  }
};

}  // namespace

Schedule generate_schedule(std::uint64_t seed, const ScheduleParams& params,
                           const Targets& targets) {
  Schedule schedule;
  schedule.seed = seed;
  schedule.duration = params.duration;
  schedule.targets = targets;

  util::Rng rng(seed);
  // [lo, hi) in whole milliseconds; collapses to lo when the range is empty.
  auto uniform_ms = [&rng](milliseconds lo, milliseconds hi) {
    if (hi <= lo) return lo;
    return lo + milliseconds(static_cast<std::int64_t>(
                    rng.next_below(static_cast<std::uint64_t>(
                        (hi - lo).count()))));
  };

  BusyMaps busy;
  // When a crash window is open (crash emitted, restart not yet due) the
  // service counts against params.max_concurrent_crashes.
  std::map<std::string, milliseconds> crash_down_until;
  const auto& hosts = targets.hosts;

  milliseconds t =
      uniform_ms(params.mean_interval / 2, params.mean_interval * 3 / 2);
  while (t < params.duration) {
    milliseconds room = params.duration - t;
    if (room <= params.min_fault) break;
    milliseconds max_len = std::min(params.max_fault, room - milliseconds(1));

    // Deterministically enumerate what each class could hit right now.
    std::vector<std::string> idle_services;
    for (const auto& s : targets.services)
      if (BusyMaps::free_at(busy.service, s, t)) idle_services.push_back(s);

    std::vector<std::pair<std::string, std::string>> idle_links;
    for (std::size_t i = 0; i < hosts.size(); ++i)
      for (std::size_t j = i + 1; j < hosts.size(); ++j)
        if (busy.link_free(hosts[i], hosts[j], t))
          idle_links.emplace_back(hosts[i], hosts[j]);

    std::vector<std::string> idle_hosts;
    for (const auto& h : hosts) {
      if (hosts.size() < 2 || !BusyMaps::free_at(busy.host, h, t)) continue;
      bool links_free = true;
      for (const auto& other : hosts)
        if (other != h && !busy.link_free(h, other, t)) links_free = false;
      if (links_free) idle_hosts.push_back(h);
    }

    struct Option {
      FaultKind kind;
      int weight;
    };
    int active_crashes = 0;
    for (const auto& [name, until] : crash_down_until)
      if (until > t) ++active_crashes;

    std::vector<Option> options;
    if (!idle_services.empty() && params.weight_service_crash > 0 &&
        (params.max_concurrent_crashes <= 0 ||
         active_crashes < params.max_concurrent_crashes))
      options.push_back({FaultKind::service_crash, params.weight_service_crash});
    if (!idle_links.empty()) {
      if (params.weight_link_down > 0)
        options.push_back({FaultKind::link_down, params.weight_link_down});
      if (params.weight_latency_spike > 0)
        options.push_back(
            {FaultKind::latency_spike, params.weight_latency_spike});
      if (params.weight_loss_burst > 0)
        options.push_back({FaultKind::loss_burst, params.weight_loss_burst});
    }
    if (!idle_hosts.empty() && params.weight_host_isolate > 0)
      options.push_back({FaultKind::host_isolate, params.weight_host_isolate});
    if (!targets.disks.empty() && params.weight_disk_fault > 0)
      options.push_back({FaultKind::disk_torn_tail, params.weight_disk_fault});

    // Room pairs whose entire cross-link set is idle. A room partition
    // claims every one of those links, so its heal restores exactly the
    // severed set and never fights a single-link fault's heal.
    std::vector<std::pair<std::size_t, std::size_t>> idle_room_pairs;
    if (params.weight_room_partition > 0) {
      for (std::size_t i = 0; i < targets.rooms.size(); ++i) {
        for (std::size_t j = i + 1; j < targets.rooms.size(); ++j) {
          bool all_free = true;
          for (const auto& ha : targets.rooms[i].hosts)
            for (const auto& hb : targets.rooms[j].hosts)
              if (!busy.link_free(ha, hb, t)) all_free = false;
          if (all_free) idle_room_pairs.emplace_back(i, j);
        }
      }
      if (!idle_room_pairs.empty())
        options.push_back(
            {FaultKind::room_partition, params.weight_room_partition});
    }

    if (options.empty()) {
      t += uniform_ms(params.mean_interval / 2, params.mean_interval * 3 / 2);
      continue;
    }

    int total = 0;
    for (const auto& o : options) total += o.weight;
    auto pick = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(total)));
    FaultKind kind = options.back().kind;
    for (const auto& o : options) {
      if (pick < o.weight) {
        kind = o.kind;
        break;
      }
      pick -= o.weight;
    }

    milliseconds len = max_len <= params.min_fault
                           ? max_len
                           : uniform_ms(params.min_fault, max_len);

    switch (kind) {
      case FaultKind::service_crash: {
        const auto& name =
            idle_services[rng.next_below(idle_services.size())];
        schedule.events.push_back({t, FaultKind::service_crash, name});
        if (params.restart_services)
          schedule.events.push_back(
              {t + len, FaultKind::service_restart, name});
        busy.service[name] =
            t + (params.restart_services ? len : milliseconds(0)) +
            params.service_cooldown;
        crash_down_until[name] =
            params.restart_services ? t + len : params.duration;
        break;
      }
      case FaultKind::link_down: {
        const auto& [a, b] = idle_links[rng.next_below(idle_links.size())];
        schedule.events.push_back({t, FaultKind::link_down, a, b});
        schedule.events.push_back({t + len, FaultKind::link_up, a, b});
        busy.link[pair_key(a, b)] = t + len;
        break;
      }
      case FaultKind::latency_spike: {
        const auto& [a, b] = idle_links[rng.next_below(idle_links.size())];
        schedule.events.push_back(
            {t, FaultKind::latency_spike, a, b, params.spike_latency});
        schedule.events.push_back({t + len, FaultKind::latency_restore, a, b});
        busy.link[pair_key(a, b)] = t + len;
        break;
      }
      case FaultKind::loss_burst: {
        const auto& [a, b] = idle_links[rng.next_below(idle_links.size())];
        FaultEvent burst{t, FaultKind::loss_burst, a, b};
        burst.loss = params.burst_loss;
        schedule.events.push_back(burst);
        schedule.events.push_back({t + len, FaultKind::loss_restore, a, b});
        busy.link[pair_key(a, b)] = t + len;
        break;
      }
      case FaultKind::host_isolate: {
        const auto& h = idle_hosts[rng.next_below(idle_hosts.size())];
        schedule.events.push_back({t, FaultKind::host_isolate, h});
        schedule.events.push_back({t + len, FaultKind::host_heal, h});
        busy.host[h] = t + len;
        break;
      }
      case FaultKind::disk_torn_tail: {
        // The option entry stands for the whole disk-fault class; the
        // concrete sub-fault and target disk are drawn here. Arms are
        // instantaneous, so there is no heal pairing and no busy window.
        const auto& d = targets.disks[rng.next_below(targets.disks.size())];
        FaultEvent event{t, FaultKind::disk_torn_tail, d};
        switch (rng.next_below(params.disk_bit_rot ? 3 : 2)) {
          case 0:
            break;  // torn tail
          case 1:
            event.kind = FaultKind::disk_fsync_drop;
            event.count = params.fsync_drop_count;
            break;
          default:
            event.kind = FaultKind::disk_bit_rot;
            break;
        }
        schedule.events.push_back(event);
        break;
      }
      case FaultKind::room_partition: {
        const auto& [i, j] =
            idle_room_pairs[rng.next_below(idle_room_pairs.size())];
        const auto& ra = targets.rooms[i];
        const auto& rb = targets.rooms[j];
        schedule.events.push_back(
            {t, FaultKind::room_partition, ra.room, rb.room});
        schedule.events.push_back({t + len, FaultKind::room_heal, ra.room,
                                   rb.room});
        for (const auto& ha : ra.hosts)
          for (const auto& hb : rb.hosts) busy.link[pair_key(ha, hb)] = t + len;
        break;
      }
      default:
        break;
    }

    t += uniform_ms(params.mean_interval / 2, params.mean_interval * 3 / 2);
  }

  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  return schedule;
}

ChaosEngine::ChaosEngine(daemon::Environment& env, Schedule schedule)
    : env_(env), schedule_(std::move(schedule)) {
  auto& m = env_.metrics();
  obs_events_ = &m.counter("chaos.events");
  obs_crashes_ = &m.counter("chaos.service_crashes");
  obs_restarts_ = &m.counter("chaos.service_restarts");
  obs_link_faults_ = &m.counter("chaos.link_faults");
  obs_latency_spikes_ = &m.counter("chaos.latency_spikes");
  obs_loss_bursts_ = &m.counter("chaos.loss_bursts");
  obs_disk_faults_ = &m.counter("chaos.disk_faults");
  obs_room_partitions_ = &m.counter("chaos.room_partitions");
  obs_active_faults_ = &m.gauge("chaos.active_faults");
}

ChaosEngine::~ChaosEngine() { stop(); }

void ChaosEngine::add_service(const std::string& name,
                              daemon::ServiceDaemon* daemon) {
  services_[name] = daemon;
}

void ChaosEngine::add_disk(const std::string& name, io::SimDisk* disk) {
  disks_[name] = disk;
}

void ChaosEngine::start() {
  if (injector_.joinable()) return;
  done_.store(false);
  injector_ = std::jthread([this](std::stop_token st) { run(st); });
}

void ChaosEngine::join() {
  if (injector_.joinable()) injector_.join();
}

void ChaosEngine::stop() {
  if (injector_.joinable()) {
    injector_.request_stop();
    injector_.join();
  }
}

std::vector<ChaosEngine::AppliedEvent> ChaosEngine::log() const {
  std::scoped_lock lock(mu_);
  return log_;
}

void ChaosEngine::run(std::stop_token st) {
  const auto start = steady_clock::now();
  for (const auto& event : schedule_.events) {
    const auto due = start + event.at;
    while (!st.stop_requested()) {
      auto now = steady_clock::now();
      if (now >= due) break;
      std::this_thread::sleep_for(
          std::min<steady_clock::duration>(due - now, milliseconds(10)));
    }
    if (st.stop_requested()) break;

    AppliedEvent record;
    record.event = event;
    apply(event, record);
    record.applied_at = std::chrono::duration_cast<milliseconds>(
        steady_clock::now() - start);
    std::scoped_lock lock(mu_);
    log_.push_back(std::move(record));
  }
  done_.store(true);
}

void ChaosEngine::set_partition(const std::string& a, const std::string& b,
                                bool down) {
  env_.network().set_partitioned(a, b, down);
}

void ChaosEngine::apply(const FaultEvent& event, AppliedEvent& out) {
  obs_events_->inc();
  auto& net = env_.network();
  switch (event.kind) {
    case FaultKind::service_crash: {
      auto it = services_.find(event.a);
      if (it == services_.end() || !it->second->running()) break;
      it->second->crash();
      // A disk registered under the same name makes this a machine power
      // event, not just a process kill: un-fsynced tails are lost (or
      // torn, if a torn-tail fault was armed).
      auto disk = disks_.find(event.a);
      if (disk != disks_.end()) disk->second->crash();
      obs_crashes_->inc();
      obs_active_faults_->add(1);
      out.applied = true;
      break;
    }
    case FaultKind::service_restart: {
      auto it = services_.find(event.a);
      if (it == services_.end() || it->second->running()) break;
      out.applied = it->second->start().ok();
      if (out.applied) {
        obs_restarts_->inc();
        obs_active_faults_->add(-1);
      }
      break;
    }
    case FaultKind::link_down:
      set_partition(event.a, event.b, true);
      obs_link_faults_->inc();
      obs_active_faults_->add(1);
      out.applied = true;
      break;
    case FaultKind::link_up:
      set_partition(event.a, event.b, false);
      obs_active_faults_->add(-1);
      out.applied = true;
      break;
    case FaultKind::host_isolate:
      for (const auto& other : schedule_.targets.hosts)
        if (other != event.a) set_partition(event.a, other, true);
      obs_link_faults_->inc();
      obs_active_faults_->add(1);
      out.applied = true;
      break;
    case FaultKind::host_heal:
      for (const auto& other : schedule_.targets.hosts)
        if (other != event.a) set_partition(event.a, other, false);
      obs_active_faults_->add(-1);
      out.applied = true;
      break;
    case FaultKind::latency_spike: {
      auto saved = net.link(event.a, event.b);
      saved_links_[pair_key(event.a, event.b)] = saved;
      net::LinkPolicy spiked = saved;
      spiked.latency = event.latency;
      net.set_link(event.a, event.b, spiked);
      obs_latency_spikes_->inc();
      obs_active_faults_->add(1);
      out.applied = true;
      break;
    }
    case FaultKind::loss_burst: {
      auto saved = net.link(event.a, event.b);
      saved_links_[pair_key(event.a, event.b)] = saved;
      net::LinkPolicy lossy = saved;
      lossy.datagram_loss = event.loss;
      net.set_link(event.a, event.b, lossy);
      obs_loss_bursts_->inc();
      obs_active_faults_->add(1);
      out.applied = true;
      break;
    }
    case FaultKind::latency_restore:
    case FaultKind::loss_restore: {
      auto it = saved_links_.find(pair_key(event.a, event.b));
      if (it == saved_links_.end()) break;
      net.set_link(event.a, event.b, it->second);
      saved_links_.erase(it);
      obs_active_faults_->add(-1);
      out.applied = true;
      break;
    }
    case FaultKind::disk_torn_tail:
    case FaultKind::disk_fsync_drop:
    case FaultKind::disk_bit_rot: {
      auto it = disks_.find(event.a);
      if (it == disks_.end()) break;
      if (event.kind == FaultKind::disk_torn_tail)
        it->second->arm_torn_tail();
      else if (event.kind == FaultKind::disk_fsync_drop)
        it->second->arm_fsync_drop(event.count);
      else
        out.applied = it->second->inject_bit_rot();
      if (event.kind != FaultKind::disk_bit_rot) out.applied = true;
      obs_disk_faults_->inc();
      break;
    }
    case FaultKind::room_partition:
    case FaultKind::room_heal: {
      const Targets::RoomGroup* ra = nullptr;
      const Targets::RoomGroup* rb = nullptr;
      for (const auto& r : schedule_.targets.rooms) {
        if (r.room == event.a) ra = &r;
        if (r.room == event.b) rb = &r;
      }
      if (ra == nullptr || rb == nullptr) break;
      const bool down = event.kind == FaultKind::room_partition;
      for (const auto& ha : ra->hosts)
        for (const auto& hb : rb->hosts) set_partition(ha, hb, down);
      if (down) {
        obs_room_partitions_->inc();
        obs_active_faults_->add(1);
      } else {
        obs_active_faults_->add(-1);
      }
      out.applied = true;
      break;
    }
  }
}

std::uint64_t seed_from_env(std::uint64_t fallback) {
  const char* raw = std::getenv("ACE_CHAOS_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  std::uint64_t parsed = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace ace::chaos
