// ace::chaos — deterministic fault injection for an ACE deployment.
//
// The paper's reliability story (lease-based liveness §2.4, the
// watcher/restarter of §5.2, the 3-way replicated store of Ch 6) is about
// *recovering* from failures, yet until now faults were injected ad hoc by
// individual tests. This engine drives the substrate's existing hooks —
// net::Host::set_down, Network::set_partitioned, per-link latency/loss
// policies, ServiceDaemon::crash — from a declarative schedule: a timeline
// of fault events generated from a single RNG seed.
//
// Determinism contract: generate_schedule(seed, params, targets) is a pure
// function — the same inputs always yield the identical event timeline
// (asserted by tests), so any chaos run, and any failure it exposes, can be
// replayed from its seed. The *application* of the schedule is wall-clock
// driven: event ordering and per-event schedule offsets are exact, while
// interleaving with concurrent traffic is only as reproducible as the
// thread scheduler.
//
// Every fault the generator emits is paired with a heal event inside the
// schedule horizon, so a completed run always leaves the network whole and
// every crash-injected service restarted (unless params.restart_services is
// false, in which case recovery is delegated to the fabric itself — the
// Robustness Manager relaunch path — and only crash events are emitted).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/daemon.hpp"
#include "io/sim_disk.hpp"
#include "net/network.hpp"

namespace ace::chaos {

enum class FaultKind {
  service_crash,    // ServiceDaemon::crash() on target `a`
  service_restart,  // ServiceDaemon::start() on target `a` (heal of crash)
  link_down,        // partition the a<->b link
  link_up,          // heal the a<->b link
  host_isolate,     // partition host `a` from every other target host
  host_heal,        // heal host `a`'s partitions
  latency_spike,    // raise a<->b latency to `latency`
  latency_restore,  // restore the pre-spike a<->b policy
  loss_burst,       // raise a<->b datagram loss to `loss`
  loss_restore,     // restore the pre-burst a<->b policy
  // Disk faults (instantaneous arms on io::SimDisk `a`; no paired heal —
  // the next SimDisk::crash() consumes/clears the armed state). Emitted
  // only when Targets.disks is non-empty and weight_disk_fault > 0, so
  // default schedules are bit-identical to pre-disk ones.
  disk_torn_tail,   // arm a torn tail for disk `a`'s next power loss
  disk_fsync_drop,  // disk `a` silently drops its next `count` fsyncs
  disk_bit_rot,     // flip one durable bit on disk `a` right now
  // Inter-room faults (federation experiments): partition every link
  // between room `a`'s hosts and room `b`'s hosts, leaving intra-room
  // traffic untouched. Emitted only when Targets.rooms has >= 2 groups and
  // weight_room_partition > 0, so pre-federation schedules stay
  // byte-identical.
  room_partition,   // sever all a-room <-> b-room host links
  room_heal,        // restore them
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  std::chrono::milliseconds at{0};  // offset from schedule start
  FaultKind kind = FaultKind::service_crash;
  std::string a;  // service name (crash/restart) or host name
  std::string b;  // peer host for link events, empty otherwise
  std::chrono::microseconds latency{0};  // latency_spike only
  double loss = 0.0;                     // loss_burst only
  int count = 0;                         // disk_fsync_drop only

  std::string to_string() const;
  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

// What the generator may aim at. Hosts carrying infrastructure the
// experiment wants reliable (e.g. the ASD's machine) are simply omitted.
struct Targets {
  // One federated room: the hosts whose links a room_partition severs.
  // Room hosts need not appear in `hosts` (single-link faults and room
  // partitions are independently targetable).
  struct RoomGroup {
    std::string room;
    std::vector<std::string> hosts;
    friend bool operator==(const RoomGroup&, const RoomGroup&) = default;
  };

  std::vector<std::string> services;  // crashable service daemon names
  std::vector<std::string> hosts;     // hosts for link/partition faults
  std::vector<std::string> disks;     // SimDisk names for disk faults
  std::vector<RoomGroup> rooms;       // room groups for inter-room faults
};

struct ScheduleParams {
  std::chrono::milliseconds duration{5000};
  // Mean gap between consecutive fault injections (uniform in
  // [mean_interval/2, 3*mean_interval/2)).
  std::chrono::milliseconds mean_interval{400};
  // How long an injected fault persists before its heal event (uniform in
  // [min_fault, max_fault), clamped so the heal lands before `duration`).
  std::chrono::milliseconds min_fault{200};
  std::chrono::milliseconds max_fault{1200};
  // When false, service crashes are emitted without a paired
  // service_restart: recovery is the fabric's job (Robustness Manager via
  // lease expiry -> SAL -> HAL), which is what an MTTR experiment measures.
  bool restart_services = true;
  // After crashing a service, leave it alone for this long (gives the
  // fabric's detection+relaunch path room before the next hit).
  std::chrono::milliseconds service_cooldown{4000};
  // Cap on services down (crashed, not yet restarted) at the same instant;
  // 0 = unlimited. Lets quorum experiments torture an N-replica cluster
  // while guaranteeing the fault floor a W-quorum needs (e.g. cap 1 keeps
  // 2 of 3 store replicas alive through any schedule).
  int max_concurrent_crashes = 0;
  // Relative weights of the fault classes (0 disables a class).
  int weight_service_crash = 4;
  int weight_link_down = 3;
  int weight_host_isolate = 1;
  int weight_latency_spike = 2;
  int weight_loss_burst = 2;
  // Disk faults (torn tail / dropped fsync / bit rot, picked uniformly).
  // 0 by default: enabling them must be explicit, and leaving them off
  // keeps every pre-existing (seed, params) schedule byte-identical.
  int weight_disk_fault = 0;
  // Inter-room partitions (federation experiments, E21). 0 by default for
  // the same reason as disk faults: existing (seed, params) schedules must
  // stay byte-identical unless a run opts in.
  int weight_room_partition = 0;
  // Magnitudes.
  std::chrono::microseconds spike_latency{5000};
  double burst_loss = 0.5;
  int fsync_drop_count = 4;  // fsyncs swallowed per disk_fsync_drop event
  // Whether the disk-fault class may draw disk_bit_rot. Durability-torture
  // runs disable it: bit rot attacks data replication already acked as
  // durable, which is an anti-entropy repair story, not a WAL one.
  bool disk_bit_rot = true;
};

struct Schedule {
  std::uint64_t seed = 0;
  std::chrono::milliseconds duration{0};
  Targets targets;                 // copied in so appliers know the host set
  std::vector<FaultEvent> events;  // sorted by `at`, ties in emit order
};

// Pure function of its arguments: same (seed, params, targets) -> identical
// event vector. See the determinism contract above.
Schedule generate_schedule(std::uint64_t seed, const ScheduleParams& params,
                           const Targets& targets);

// Applies a schedule to a live deployment. Service targets are registered
// by name; link/partition events act directly on env.network(). The engine
// records every application in an ordered log and mirrors activity into the
// deployment registry (`chaos.*` metrics).
class ChaosEngine {
 public:
  struct AppliedEvent {
    FaultEvent event;
    std::chrono::milliseconds applied_at{0};  // actual offset when applied
    bool applied = false;  // false: target unknown / already in that state
  };

  ChaosEngine(daemon::Environment& env, Schedule schedule);
  ~ChaosEngine();

  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // Registers a crashable service daemon under its schedule target name.
  void add_service(const std::string& name, daemon::ServiceDaemon* daemon);
  // Registers a simulated disk under a schedule target name. When a disk
  // shares its name with a crashable service, a service_crash on that name
  // is treated as a machine power event: the daemon dies AND the disk
  // loses (or tears, if armed) its un-fsynced tails.
  void add_disk(const std::string& name, io::SimDisk* disk);

  void start();          // spawns the injector thread
  void join();           // blocks until the schedule has fully run
  void stop();           // aborts early (already-applied faults stay)
  bool done() const { return done_.load(); }

  const Schedule& schedule() const { return schedule_; }
  std::vector<AppliedEvent> log() const;

 private:
  void run(std::stop_token st);
  void apply(const FaultEvent& event, AppliedEvent& out);
  void set_partition(const std::string& a, const std::string& b, bool down);

  daemon::Environment& env_;
  Schedule schedule_;
  std::map<std::string, daemon::ServiceDaemon*> services_;
  std::map<std::string, io::SimDisk*> disks_;
  // Pre-fault link policies, keyed "a|b", saved by spikes/bursts and
  // restored by their heal events.
  std::map<std::string, net::LinkPolicy> saved_links_;

  mutable std::mutex mu_;
  std::vector<AppliedEvent> log_;
  std::atomic<bool> done_{false};
  std::jthread injector_;

  // Cached obs cells (deployment registry, `chaos.*` names).
  obs::Counter* obs_events_;
  obs::Counter* obs_crashes_;
  obs::Counter* obs_restarts_;
  obs::Counter* obs_link_faults_;
  obs::Counter* obs_latency_spikes_;
  obs::Counter* obs_loss_bursts_;
  obs::Counter* obs_disk_faults_;
  obs::Counter* obs_room_partitions_;
  obs::Gauge* obs_active_faults_;
};

// Reads the chaos seed for tests/benches: ACE_CHAOS_SEED when set (so CI
// can sweep seeds), else `fallback`.
std::uint64_t seed_from_env(std::uint64_t fallback);

}  // namespace ace::chaos
